module uavres

go 1.24
