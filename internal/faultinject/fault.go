// Package faultinject implements the paper's IMU fault model and the
// injector that corrupts sensor output before the flight controller reads
// it — the role the dedicated fault-injection tool plays in the paper's
// VMware-hosted platform.
//
// Seven injection primitives (Table I's "Can be represented by" column)
// are applied to one of three targets (Accelerometer, Gyrometer, or the
// whole IMU) inside a time window [Start, Start+Duration). The registry in
// registry.go maps the fourteen surveyed real-world fault classes to these
// primitives.
//
// Beyond the paper's sensor rows, the injector also models actuator faults
// addressing individual rotors — loss-of-effectiveness, stuck, and float
// primitives on TargetRotor — following fdcl-ftc's actuator fault set, so
// redundancy campaigns can contrast IMU and rotor failures on the same
// harness.
package faultinject

import (
	"fmt"
	"strings"
	"time"

	"uavres/internal/mathx"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// Primitive is one of the seven injectable faulty-value generators.
type Primitive int

// The seven primitives, in the order the paper lists them in III-A.
const (
	// FixedValue injects a random-but-constant value drawn once per
	// injection window.
	FixedValue Primitive = iota + 1
	// Zeros injects all-zero output ("no updates/zeros").
	Zeros
	// Freeze repeats the last value seen before the window started.
	Freeze
	// Random injects a fresh uniform in-range value every sample.
	Random
	// MinValue injects the sensor's minimum allowed (negative) value.
	MinValue
	// MaxValue injects the sensor's maximum allowed value.
	MaxValue
	// Noise adds a "not so drastic" random perturbation to the true value.
	Noise

	// Actuator primitives follow the sensor rows; they apply only to
	// TargetRotor and corrupt motor commands instead of sensor samples.

	// LossOfEffectiveness scales one rotor's command by Injection.Factor
	// (partial prop damage / thrust loss).
	LossOfEffectiveness
	// StuckRotor holds one rotor at its last pre-window command (ESC
	// desync / controller lockup).
	StuckRotor
	// FloatRotor drives one rotor to zero thrust (motor/ESC burnout; the
	// rotor free-wheels).
	FloatRotor
)

// Primitives lists the paper's seven sensor injection primitives.
func Primitives() []Primitive {
	return []Primitive{FixedValue, Zeros, Freeze, Random, MinValue, MaxValue, Noise}
}

// ActuatorPrimitives lists the rotor fault primitives.
func ActuatorPrimitives() []Primitive {
	return []Primitive{LossOfEffectiveness, StuckRotor, FloatRotor}
}

// Actuator reports whether p corrupts motor commands rather than sensor
// samples.
func (p Primitive) Actuator() bool {
	return p == LossOfEffectiveness || p == StuckRotor || p == FloatRotor
}

// String implements fmt.Stringer with the paper's table labels.
func (p Primitive) String() string {
	switch p {
	case FixedValue:
		return "Fixed Value"
	case Zeros:
		return "Zeros"
	case Freeze:
		return "Freeze"
	case Random:
		return "Random"
	case MinValue:
		return "Min"
	case MaxValue:
		return "Max"
	case Noise:
		return "Noise"
	case LossOfEffectiveness:
		return "LoE"
	case StuckRotor:
		return "Stuck"
	case FloatRotor:
		return "Float"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// ParsePrimitive converts a case-insensitive label ("freeze", "min",
// "fixed value", "fixed") to a Primitive.
func ParsePrimitive(s string) (Primitive, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fixed value", "fixed", "fixedvalue":
		return FixedValue, nil
	case "zeros", "zero":
		return Zeros, nil
	case "freeze":
		return Freeze, nil
	case "random":
		return Random, nil
	case "min", "minvalue", "min value":
		return MinValue, nil
	case "max", "maxvalue", "max value":
		return MaxValue, nil
	case "noise":
		return Noise, nil
	case "loe", "loss-of-effectiveness", "lossofeffectiveness":
		return LossOfEffectiveness, nil
	case "stuck":
		return StuckRotor, nil
	case "float":
		return FloatRotor, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown primitive %q", s)
	}
}

// Target selects which IMU component an injection corrupts.
type Target int

// The three injection targets studied in the paper.
const (
	// TargetAccel corrupts only the accelerometer axes.
	TargetAccel Target = iota + 1
	// TargetGyro corrupts only the gyroscope axes.
	TargetGyro
	// TargetIMU corrupts both (the paper's "entire IMU" case).
	TargetIMU
	// TargetRotor corrupts the motor command of the rotor selected by
	// Injection.Rotor (actuator primitives only).
	TargetRotor
)

// Targets lists the paper's three sensor injection targets. TargetRotor is
// deliberately excluded: callers enumerating IMU fault axes (spec matrix
// targets, per-fault aggregation of sensor rows) must not silently grow an
// actuator row.
func Targets() []Target { return []Target{TargetAccel, TargetGyro, TargetIMU} }

// String implements fmt.Stringer with the paper's labels.
func (t Target) String() string {
	switch t {
	case TargetAccel:
		return "Acc"
	case TargetGyro:
		return "Gyro"
	case TargetIMU:
		return "IMU"
	case TargetRotor:
		return "Rotor"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// ParseTarget converts a case-insensitive label ("acc", "gyro", "imu").
func ParseTarget(s string) (Target, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "acc", "accel", "accelerometer":
		return TargetAccel, nil
	case "gyro", "gyrometer", "gyroscope":
		return TargetGyro, nil
	case "imu", "both":
		return TargetIMU, nil
	case "rotor", "actuator", "motor":
		return TargetRotor, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown target %q", s)
	}
}

// Scope selects how many of the vehicle's redundant IMUs the fault
// strikes.
type Scope int

// Injection scopes.
const (
	// ScopeAllUnits (the zero value) corrupts every redundant IMU — the
	// paper's assumption: "the fault is assumed to affect all redundant
	// sensors". Sensor isolation can never find a healthy unit.
	ScopeAllUnits Scope = iota
	// ScopePrimaryUnit corrupts only IMU unit 0, so the failsafe's
	// isolation stage can recover by switching — the ablation of the
	// paper's all-units assumption.
	ScopePrimaryUnit
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeAllUnits:
		return "all-units"
	case ScopePrimaryUnit:
		return "primary-unit"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// ParseScope converts a case-insensitive label ("all", "all-units",
// "primary", "primary-unit") to a Scope. The empty string is the paper's
// default, ScopeAllUnits.
func ParseScope(s string) (Scope, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "all", "all-units", "allunits":
		return ScopeAllUnits, nil
	case "primary", "primary-unit", "primaryunit":
		return ScopePrimaryUnit, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown scope %q", s)
	}
}

// Injection describes one fault-injection experiment: what to inject,
// where, and when. The paper uses Start = 90 s and Duration in
// {2, 5, 10, 30} s.
type Injection struct {
	Primitive Primitive     `json:"primitive"`
	Target    Target        `json:"target"`
	Start     time.Duration `json:"start"`
	Duration  time.Duration `json:"duration"`
	// Scope selects which redundant IMUs are affected (default: all,
	// the paper's assumption).
	Scope Scope `json:"scope,omitempty"`
	// Seed drives the primitive's randomness (Fixed draw, Random stream,
	// Noise stream) independently of the environment randomness.
	Seed int64 `json:"seed"`
	// Rotor selects which rotor an actuator injection strikes
	// (TargetRotor only; must be a valid index for the flown airframe).
	Rotor int `json:"rotor,omitempty"`
	// Factor is the LossOfEffectiveness thrust multiplier in [0, 1);
	// zero means DefaultLoEFactor.
	Factor float64 `json:"factor,omitempty"`
}

// DefaultLoEFactor is the LossOfEffectiveness multiplier used when an
// injection leaves Factor zero: the damaged rotor keeps 30% of its
// commanded thrust.
const DefaultLoEFactor = 0.3

// SensorTarget reports whether the injection corrupts the IMU sample
// stream (as opposed to motor commands).
func (in Injection) SensorTarget() bool { return in.Target != TargetRotor }

// LoEFactor returns the effective LossOfEffectiveness multiplier.
func (in Injection) LoEFactor() float64 {
	if in.Factor > 0 {
		return in.Factor
	}
	return DefaultLoEFactor
}

// AffectsUnit reports whether the fault strikes IMU unit i.
func (in Injection) AffectsUnit(i int) bool {
	return in.Scope == ScopeAllUnits || i == 0
}

// Label returns the paper's naming convention, e.g. "Gyro Freeze".
func (in Injection) Label() string {
	return in.Target.String() + " " + in.Primitive.String()
}

// Validate reports whether the injection is well-formed.
func (in Injection) Validate() error {
	switch in.Primitive {
	case FixedValue, Zeros, Freeze, Random, MinValue, MaxValue, Noise,
		LossOfEffectiveness, StuckRotor, FloatRotor:
	default:
		return fmt.Errorf("faultinject: invalid primitive %d", int(in.Primitive))
	}
	switch in.Target {
	case TargetAccel, TargetGyro, TargetIMU, TargetRotor:
	default:
		return fmt.Errorf("faultinject: invalid target %d", int(in.Target))
	}
	if in.Primitive.Actuator() != (in.Target == TargetRotor) {
		return fmt.Errorf("faultinject: primitive %s requires %s target",
			in.Primitive, map[bool]string{true: "a rotor", false: "a sensor"}[in.Primitive.Actuator()])
	}
	if in.Target == TargetRotor {
		if in.Rotor < 0 || in.Rotor >= physics.MaxRotors {
			return fmt.Errorf("faultinject: rotor index %d outside [0, %d)", in.Rotor, physics.MaxRotors)
		}
		if in.Scope != ScopeAllUnits {
			return fmt.Errorf("faultinject: IMU scope %s is meaningless for a rotor fault", in.Scope)
		}
	} else if in.Rotor != 0 {
		return fmt.Errorf("faultinject: rotor index set on sensor target %s", in.Target)
	}
	if in.Factor != 0 && in.Primitive != LossOfEffectiveness { //lint:allow floatcmp zero is the explicit "use default" sentinel
		return fmt.Errorf("faultinject: factor is only valid for LoE, not %s", in.Primitive)
	}
	if in.Factor < 0 || in.Factor >= 1 {
		return fmt.Errorf("faultinject: LoE factor %v outside [0, 1)", in.Factor)
	}
	if in.Start < 0 {
		return fmt.Errorf("faultinject: negative start %v", in.Start)
	}
	if in.Duration <= 0 {
		return fmt.Errorf("faultinject: non-positive duration %v", in.Duration)
	}
	switch in.Scope {
	case ScopeAllUnits, ScopePrimaryUnit:
	default:
		return fmt.Errorf("faultinject: invalid scope %d", int(in.Scope))
	}
	return nil
}

// NoiseAmpFraction scales the Noise primitive's perturbation amplitude as a
// fraction of the sensor full-scale range — "not so drastic" relative to
// the range, but large against normal flight signal levels.
const NoiseAmpFraction = 0.10

// Injector applies one Injection to an IMU sample stream. It is not safe
// for concurrent use; each simulated vehicle owns one.
type Injector struct {
	inj Injection
	rng *mathx.Rand

	startSec float64
	endSec   float64

	// Lazily captured state.
	windowEntered bool
	frozen        sensors.IMUSample
	fixedAccel    mathx.Vec3
	fixedGyro     mathx.Vec3
	frozenCmd     physics.Rotors // last pre-window motor commands (StuckRotor)

	applied int // number of corrupted samples
}

// New returns an injector for the given experiment description.
func New(inj Injection) (*Injector, error) {
	if err := inj.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		inj:      inj,
		rng:      mathx.NewRand(inj.Seed),
		startSec: inj.Start.Seconds(),
		endSec:   inj.Start.Seconds() + inj.Duration.Seconds(),
	}, nil
}

// InjectorSnapshot captures the injector's dynamic state (checkpointing).
type InjectorSnapshot struct {
	rng           mathx.RandState
	windowEntered bool
	frozen        sensors.IMUSample
	fixedAccel    mathx.Vec3
	fixedGyro     mathx.Vec3
	frozenCmd     physics.Rotors
	applied       int
}

// Snapshot captures the primitive's randomness stream and lazily captured
// window state.
func (j *Injector) Snapshot() InjectorSnapshot {
	return InjectorSnapshot{
		rng:           j.rng.State(),
		windowEntered: j.windowEntered,
		frozen:        j.frozen,
		fixedAccel:    j.fixedAccel,
		fixedGyro:     j.fixedGyro,
		frozenCmd:     j.frozenCmd,
		applied:       j.applied,
	}
}

// Restore reinstates a state captured with Snapshot. The injector must
// describe the same Injection as at capture time (the window bounds and
// seed are construction parameters, not dynamic state).
func (j *Injector) Restore(s InjectorSnapshot) {
	j.rng.SetState(s.rng)
	j.windowEntered = s.windowEntered
	j.frozen = s.frozen
	j.fixedAccel = s.fixedAccel
	j.fixedGyro = s.fixedGyro
	j.frozenCmd = s.frozenCmd
	j.applied = s.applied
}

// SeedFreeze installs the last pre-window sample, as if the injector had
// observed the sample stream up to that point. A run forked from a
// checkpoint taken before this injector's window uses it so the Freeze
// primitive replays the exact value a straight-through run would capture.
func (j *Injector) SeedFreeze(s sensors.IMUSample) { j.frozen = s }

// SeedStuck installs the last pre-window motor commands, the actuator
// analogue of SeedFreeze: a run forked from a checkpoint taken before this
// injector's window uses it so StuckRotor holds the exact command a
// straight-through run would capture.
func (j *Injector) SeedStuck(cmd physics.Rotors) { j.frozenCmd = cmd }

// Injection returns the experiment description.
func (j *Injector) Injection() Injection { return j.inj }

// Active reports whether the fault window covers sim time t.
func (j *Injector) Active(t float64) bool {
	return t >= j.startSec && t < j.endSec
}

// AppliedSamples returns how many samples were corrupted so far.
func (j *Injector) AppliedSamples() int { return j.applied }

// Apply corrupts the sample if its timestamp falls inside the fault window;
// outside the window samples pass through untouched. The pre-window sample
// stream is also observed so Freeze can capture the last good value.
func (j *Injector) Apply(s sensors.IMUSample) sensors.IMUSample {
	if !j.Active(s.T) {
		if s.T < j.startSec {
			j.frozen = s // remember the most recent pre-fault sample
		}
		return s
	}
	if !j.windowEntered {
		j.windowEntered = true
		// Fixed values are drawn once per injection, uniform in range,
		// independently per axis — "a Random constant value".
		j.fixedAccel = j.uniformVec(sensors.AccelRange)
		j.fixedGyro = j.uniformVec(sensors.GyroRange)
	}
	j.applied++

	if j.inj.Target == TargetAccel || j.inj.Target == TargetIMU {
		s.Accel = j.corrupt(s.Accel, j.frozen.Accel, j.fixedAccel, sensors.AccelRange)
	}
	if j.inj.Target == TargetGyro || j.inj.Target == TargetIMU {
		s.Gyro = j.corrupt(s.Gyro, j.frozen.Gyro, j.fixedGyro, sensors.GyroRange)
	}
	return s
}

// ApplyActuator corrupts the motor command vector if control-cycle time t
// falls inside the fault window; outside the window commands pass through
// untouched. The pre-window command stream is observed so StuckRotor can
// hold the last healthy command.
func (j *Injector) ApplyActuator(t float64, cmd physics.Rotors) physics.Rotors {
	if !j.Active(t) {
		if t < j.startSec {
			j.frozenCmd = cmd // remember the most recent pre-fault commands
		}
		return cmd
	}
	j.applied++
	r := j.inj.Rotor
	switch j.inj.Primitive {
	case LossOfEffectiveness:
		cmd[r] *= j.inj.LoEFactor()
	case StuckRotor:
		cmd[r] = j.frozenCmd[r]
	case FloatRotor:
		cmd[r] = 0
	}
	return cmd
}

func (j *Injector) corrupt(value, frozen, fixed mathx.Vec3, rangeLimit float64) mathx.Vec3 {
	switch j.inj.Primitive {
	case FixedValue:
		return fixed
	case Zeros:
		return mathx.Zero3
	case Freeze:
		return frozen
	case Random:
		return j.uniformVec(rangeLimit)
	case MinValue:
		return mathx.V3(-rangeLimit, -rangeLimit, -rangeLimit)
	case MaxValue:
		return mathx.V3(rangeLimit, rangeLimit, rangeLimit)
	case Noise:
		amp := NoiseAmpFraction * rangeLimit
		return value.Add(j.uniformVec(amp)).Clamp(rangeLimit)
	default:
		return value
	}
}

// uniformVec draws a vector with each component uniform in [-amp, amp].
func (j *Injector) uniformVec(amp float64) mathx.Vec3 {
	return mathx.Vec3{
		X: (2*j.rng.Float64() - 1) * amp,
		Y: (2*j.rng.Float64() - 1) * amp,
		Z: (2*j.rng.Float64() - 1) * amp,
	}
}
