package faultinject

import "testing"

// TestFaultRegistryCoversTableI checks the registry reproduces the paper's
// Table I — all fourteen surveyed IMU fault classes, each mapping to valid
// primitives and targets with citations — plus the three actuator classes
// the rotor extension adds.
func TestFaultRegistryCoversTableI(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d classes, want Table I's 14 plus 3 actuator classes", len(reg))
	}
	wantNames := map[string]Primitive{
		"Instability":          Random,
		"Bias error":           Noise,
		"Gyro drift":           Noise,
		"Acc drift":            Noise,
		"Constant output":      Freeze,
		"Damaged IMU":          Zeros,
		"Gyro failure":         Zeros,
		"Acc failure":          Zeros,
		"Acoustic attack":      Random,
		"False data injection": FixedValue,
		"Physical isolation":   Zeros,
		"Hardware trojan":      FixedValue,
		"Malicious software":   Zeros,
		"OS system attack":     MinValue,
		"Prop damage":          LossOfEffectiveness,
		"ESC desync":           StuckRotor,
		"Motor burnout":        FloatRotor,
	}
	seen := map[string]bool{}
	for _, fc := range reg {
		seen[fc.Name] = true
		wantFirst, ok := wantNames[fc.Name]
		if !ok {
			t.Errorf("unexpected fault class %q", fc.Name)
			continue
		}
		if len(fc.Primitives) == 0 || fc.Primitives[0] != wantFirst {
			t.Errorf("%s: first primitive = %v, want %v", fc.Name, fc.Primitives, wantFirst)
		}
		if len(fc.Targets) == 0 {
			t.Errorf("%s: no targets", fc.Name)
		}
		if len(fc.References) == 0 {
			t.Errorf("%s: no references", fc.Name)
		}
		if fc.Description == "" {
			t.Errorf("%s: empty description", fc.Name)
		}
	}
	for name := range wantNames {
		if !seen[name] {
			t.Errorf("missing fault class %q", name)
		}
	}
}

// TestEveryPrimitiveGrounded checks each of the seven primitives represents
// at least one real-world fault class — the model has no synthetic
// primitives without a surveyed counterpart.
func TestEveryPrimitiveGrounded(t *testing.T) {
	cov := PrimitiveCoverage()
	for _, p := range Primitives() {
		if len(cov[p]) == 0 {
			t.Errorf("primitive %v maps to no fault class", p)
		}
	}
}

// TestComponentSpecificClasses checks the gyro/acc-specific classes do not
// claim the other component.
func TestComponentSpecificClasses(t *testing.T) {
	for _, fc := range Registry() {
		switch fc.Name {
		case "Gyro drift", "Gyro failure":
			if len(fc.Targets) != 1 || fc.Targets[0] != TargetGyro {
				t.Errorf("%s targets = %v, want [Gyro]", fc.Name, fc.Targets)
			}
		case "Acc drift", "Acc failure":
			if len(fc.Targets) != 1 || fc.Targets[0] != TargetAccel {
				t.Errorf("%s targets = %v, want [Acc]", fc.Name, fc.Targets)
			}
		case "Damaged IMU":
			if len(fc.Targets) != 1 || fc.Targets[0] != TargetIMU {
				t.Errorf("%s targets = %v, want [IMU]", fc.Name, fc.Targets)
			}
		}
	}
}
