package faultinject

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"uavres/internal/mathx"
	"uavres/internal/sensors"
)

func mkInjector(t *testing.T, p Primitive, target Target) *Injector {
	t.Helper()
	j, err := New(Injection{
		Primitive: p, Target: target,
		Start: 90 * time.Second, Duration: 10 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func sample(t float64) sensors.IMUSample {
	return sensors.IMUSample{
		T:     t,
		Accel: mathx.V3(0.5, -0.3, -9.7),
		Gyro:  mathx.V3(0.01, -0.02, 0.03),
	}
}

func TestInjectionValidate(t *testing.T) {
	valid := Injection{Primitive: Zeros, Target: TargetIMU, Start: time.Second, Duration: 2 * time.Second}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid injection rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Injection)
	}{
		{"bad_primitive", func(in *Injection) { in.Primitive = 99 }},
		{"bad_target", func(in *Injection) { in.Target = 0 }},
		{"neg_start", func(in *Injection) { in.Start = -time.Second }},
		{"zero_duration", func(in *Injection) { in.Duration = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := valid
			tt.mutate(&in)
			if err := in.Validate(); err == nil {
				t.Error("invalid injection accepted")
			}
			if _, err := New(in); err == nil {
				t.Error("New accepted invalid injection")
			}
		})
	}
}

func TestWindowContainment(t *testing.T) {
	j := mkInjector(t, Zeros, TargetIMU)
	// Before, inside, and after the [90, 100) window.
	for _, tc := range []struct {
		t      float64
		active bool
	}{
		{0, false}, {89.999, false}, {90, true}, {95, true},
		{99.999, true}, {100, false}, {200, false},
	} {
		if got := j.Active(tc.t); got != tc.active {
			t.Errorf("Active(%v) = %v, want %v", tc.t, got, tc.active)
		}
	}
}

func TestPassThroughOutsideWindow(t *testing.T) {
	j := mkInjector(t, Random, TargetIMU)
	in := sample(10)
	if got := j.Apply(in); got != in {
		t.Errorf("pre-window sample modified: %+v", got)
	}
	in = sample(150)
	if got := j.Apply(in); got != in {
		t.Errorf("post-window sample modified: %+v", got)
	}
	if j.AppliedSamples() != 0 {
		t.Errorf("AppliedSamples = %d, want 0", j.AppliedSamples())
	}
}

func TestZerosPrimitive(t *testing.T) {
	j := mkInjector(t, Zeros, TargetIMU)
	got := j.Apply(sample(95))
	if got.Accel != mathx.Zero3 || got.Gyro != mathx.Zero3 {
		t.Errorf("Zeros produced %+v", got)
	}
	if got.T != 95 {
		t.Error("timestamp must be preserved")
	}
}

func TestMinMaxPrimitives(t *testing.T) {
	jMin := mkInjector(t, MinValue, TargetIMU)
	got := jMin.Apply(sample(95))
	wantA := -sensors.AccelRange
	wantG := -sensors.GyroRange
	if got.Accel != mathx.V3(wantA, wantA, wantA) || got.Gyro != mathx.V3(wantG, wantG, wantG) {
		t.Errorf("Min produced %+v", got)
	}

	jMax := mkInjector(t, MaxValue, TargetIMU)
	got = jMax.Apply(sample(95))
	if got.Accel != mathx.V3(-wantA, -wantA, -wantA) || got.Gyro != mathx.V3(-wantG, -wantG, -wantG) {
		t.Errorf("Max produced %+v", got)
	}
}

func TestFreezeHoldsLastPreFaultValue(t *testing.T) {
	j := mkInjector(t, Freeze, TargetIMU)
	// Stream several pre-fault samples; the last one must be held.
	j.Apply(sensors.IMUSample{T: 80, Accel: mathx.V3(1, 1, 1), Gyro: mathx.V3(2, 2, 2)})
	last := sensors.IMUSample{T: 89.9, Accel: mathx.V3(0.7, 0.1, -9.9), Gyro: mathx.V3(0.05, 0, 0)}
	j.Apply(last)
	for _, tt := range []float64{90, 94, 99.9} {
		got := j.Apply(sample(tt))
		if got.Accel != last.Accel || got.Gyro != last.Gyro {
			t.Errorf("Freeze at t=%v produced %+v, want held %+v", tt, got, last)
		}
	}
}

func TestFixedValueConstantWithinWindow(t *testing.T) {
	j := mkInjector(t, FixedValue, TargetIMU)
	first := j.Apply(sample(90))
	second := j.Apply(sample(95))
	if first.Accel != second.Accel || first.Gyro != second.Gyro {
		t.Error("FixedValue changed between samples")
	}
	if first.Accel.MaxAbs() > sensors.AccelRange || first.Gyro.MaxAbs() > sensors.GyroRange {
		t.Error("FixedValue out of sensor range")
	}
	// Different seeds draw different constants.
	j2, err := New(Injection{Primitive: FixedValue, Target: TargetIMU, Start: 90 * time.Second, Duration: 10 * time.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	other := j2.Apply(sample(90))
	if other.Accel == first.Accel {
		t.Error("different seeds drew identical fixed value")
	}
}

func TestRandomChangesEverySample(t *testing.T) {
	j := mkInjector(t, Random, TargetIMU)
	a := j.Apply(sample(91))
	b := j.Apply(sample(91.004))
	if a.Accel == b.Accel && a.Gyro == b.Gyro {
		t.Error("Random produced identical consecutive samples")
	}
	for _, s := range []sensors.IMUSample{a, b} {
		if s.Accel.MaxAbs() > sensors.AccelRange || s.Gyro.MaxAbs() > sensors.GyroRange {
			t.Errorf("Random out of range: %+v", s)
		}
	}
}

func TestNoisePerturbsAroundTruth(t *testing.T) {
	j := mkInjector(t, Noise, TargetIMU)
	in := sample(95)
	var maxDev float64
	n := 1000
	for i := 0; i < n; i++ {
		got := j.Apply(in)
		dev := got.Accel.Sub(in.Accel).MaxAbs()
		if dev > maxDev {
			maxDev = dev
		}
		if dev > NoiseAmpFraction*sensors.AccelRange+1e-9 {
			t.Fatalf("noise deviation %v exceeds amplitude", dev)
		}
		gDev := got.Gyro.Sub(in.Gyro).MaxAbs()
		if gDev > NoiseAmpFraction*sensors.GyroRange+1e-9 {
			t.Fatalf("gyro noise deviation %v exceeds amplitude", gDev)
		}
	}
	if maxDev < 0.5*NoiseAmpFraction*sensors.AccelRange {
		t.Errorf("noise too timid: max deviation %v", maxDev)
	}
}

func TestTargetSelectivity(t *testing.T) {
	in := sample(95)
	accOnly := mkInjector(t, Zeros, TargetAccel)
	got := accOnly.Apply(in)
	if got.Accel != mathx.Zero3 {
		t.Error("TargetAccel did not corrupt accel")
	}
	if got.Gyro != in.Gyro {
		t.Error("TargetAccel corrupted gyro")
	}

	gyroOnly := mkInjector(t, Zeros, TargetGyro)
	got = gyroOnly.Apply(in)
	if got.Gyro != mathx.Zero3 {
		t.Error("TargetGyro did not corrupt gyro")
	}
	if got.Accel != in.Accel {
		t.Error("TargetGyro corrupted accel")
	}
}

func TestAppliedSamplesCount(t *testing.T) {
	j := mkInjector(t, Zeros, TargetIMU)
	j.Apply(sample(50))
	j.Apply(sample(92))
	j.Apply(sample(93))
	j.Apply(sample(150))
	if got := j.AppliedSamples(); got != 2 {
		t.Errorf("AppliedSamples = %d, want 2", got)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	mk := func() *Injector {
		j, err := New(Injection{Primitive: Random, Target: TargetIMU, Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		tm := 90 + float64(i)*0.004
		if a.Apply(sample(tm)) != b.Apply(sample(tm)) {
			t.Fatal("same-seed injectors diverged")
		}
	}
}

func TestLabels(t *testing.T) {
	in := Injection{Primitive: Freeze, Target: TargetGyro}
	if got := in.Label(); got != "Gyro Freeze" {
		t.Errorf("Label = %q", got)
	}
	if got := (Injection{Primitive: FixedValue, Target: TargetIMU}).Label(); got != "IMU Fixed Value" {
		t.Errorf("Label = %q", got)
	}
}

func TestParsePrimitiveRoundTrip(t *testing.T) {
	for _, p := range Primitives() {
		got, err := ParsePrimitive(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePrimitive(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePrimitive("bogus"); err == nil {
		t.Error("ParsePrimitive accepted bogus label")
	}
}

func TestParseTargetRoundTrip(t *testing.T) {
	for _, tg := range Targets() {
		got, err := ParseTarget(tg.String())
		if err != nil || got != tg {
			t.Errorf("ParseTarget(%q) = %v, %v", tg.String(), got, err)
		}
	}
	if _, err := ParseTarget("wing"); err == nil {
		t.Error("ParseTarget accepted bogus label")
	}
}

// Property: regardless of primitive, corrupted outputs never exceed the
// sensor's physical range (an injector cannot produce values the real
// hardware could not emit), and samples outside the window are untouched.
func TestInjectorRangeAndWindowProperty(t *testing.T) {
	prims := Primitives()
	f := func(primIdx uint8, targetIdx uint8, seed int64, tRaw float64) bool {
		p := prims[int(primIdx)%len(prims)]
		tg := Targets()[int(targetIdx)%3]
		j, err := New(Injection{Primitive: p, Target: tg, Start: 90 * time.Second, Duration: 10 * time.Second, Seed: seed})
		if err != nil {
			return false
		}
		tm := math.Mod(math.Abs(tRaw), 200)
		if math.IsNaN(tm) {
			tm = 0
		}
		in := sample(tm)
		// Prime the freeze buffer like a real stream would.
		j.Apply(sample(0))
		got := j.Apply(in)
		if !j.Active(tm) {
			return got == in
		}
		return got.Accel.MaxAbs() <= sensors.AccelRange+1e-9 &&
			got.Gyro.MaxAbs() <= sensors.GyroRange+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScopeAffectsUnit(t *testing.T) {
	all := Injection{Primitive: Zeros, Target: TargetIMU, Duration: time.Second}
	for i := 0; i < 3; i++ {
		if !all.AffectsUnit(i) {
			t.Errorf("all-units scope skips unit %d", i)
		}
	}
	one := all
	one.Scope = ScopePrimaryUnit
	if !one.AffectsUnit(0) || one.AffectsUnit(1) || one.AffectsUnit(2) {
		t.Error("primary-unit scope wrong")
	}
}

func TestScopeValidation(t *testing.T) {
	in := Injection{Primitive: Zeros, Target: TargetIMU, Duration: time.Second, Scope: 99}
	if err := in.Validate(); err == nil {
		t.Error("invalid scope accepted")
	}
}

func TestScopeStrings(t *testing.T) {
	if ScopeAllUnits.String() != "all-units" || ScopePrimaryUnit.String() != "primary-unit" {
		t.Error("scope strings wrong")
	}
}
