package faultinject

// FaultClass is one surveyed real-world IMU fault or attack from the
// paper's Table I, together with the injection primitives that represent
// it and the targets it can strike.
type FaultClass struct {
	// Name is the Table I fault label.
	Name string
	// Description summarizes the fault's cause.
	Description string
	// Primitives are the injection primitives representing this class.
	Primitives []Primitive
	// Targets are the components the class can affect.
	Targets []Target
	// References cite the Table I sources (bracketed reference numbers).
	References []string
}

// Registry returns the paper's complete Table I fault model: fourteen
// fault classes spanning hardware malfunctions, aging, environmental
// effects, and deliberate attacks, each mapped to injection primitives.
func Registry() []FaultClass {
	all := []Target{TargetAccel, TargetGyro, TargetIMU}
	return []FaultClass{
		{
			Name:        "Instability",
			Description: "Random output values due to factors like radiation or temperature",
			Primitives:  []Primitive{Random},
			Targets:     all,
			References:  []string{"[19]", "[20]", "[21]", "[22]"},
		},
		{
			Name:        "Bias error",
			Description: "Noise-sourced error from old sensors or temperature",
			Primitives:  []Primitive{Noise},
			Targets:     all,
			References:  []string{"[19]", "[22]", "[23]", "[24]"},
		},
		{
			Name:        "Gyro drift",
			Description: "Constant measurement error from aging, noise, or thermal bias",
			Primitives:  []Primitive{Noise},
			Targets:     []Target{TargetGyro},
			References:  []string{"[19]", "[20]", "[25]", "[26]"},
		},
		{
			Name:        "Acc drift",
			Description: "Constant measurement error from aging, noise, or thermal bias",
			Primitives:  []Primitive{Noise},
			Targets:     []Target{TargetAccel},
			References:  []string{"[19]", "[20]", "[27]", "[28]"},
		},
		{
			Name:        "Constant output",
			Description: "Update lag delivering the same frozen values constantly",
			Primitives:  []Primitive{Freeze},
			Targets:     all,
			References:  []string{"[19]"},
		},
		{
			Name:        "Damaged IMU",
			Description: "Age or external damage failing all IMU sensors",
			Primitives:  []Primitive{Zeros},
			Targets:     []Target{TargetIMU},
			References:  []string{"[29]", "[30]"},
		},
		{
			Name:        "Gyro failure",
			Description: "Damaged or failed gyroscope",
			Primitives:  []Primitive{Zeros},
			Targets:     []Target{TargetGyro},
			References:  []string{"[30]", "[31]", "[32]", "[33]"},
		},
		{
			Name:        "Acc failure",
			Description: "Damaged or failed accelerometer",
			Primitives:  []Primitive{Zeros},
			Targets:     []Target{TargetAccel},
			References:  []string{"[30]", "[31]", "[34]"},
		},
		{
			Name:        "Acoustic attack",
			Description: "Broadband pulsed or CW acoustic energy destabilizing MEMS sensors",
			Primitives:  []Primitive{Random},
			Targets:     all,
			References:  []string{"[35]", "[36]"},
		},
		{
			Name:        "False data injection",
			Description: "Fake data series injected into the sensor stream",
			Primitives:  []Primitive{FixedValue},
			Targets:     all,
			References:  []string{"[37]", "[38]", "[39]"},
		},
		{
			Name:        "Physical isolation",
			Description: "One or all sensors attacked to stop responding",
			Primitives:  []Primitive{Zeros},
			Targets:     all,
			References:  []string{"[40]"},
		},
		{
			Name:        "Hardware trojan",
			Description: "Modified electronic hardware (tampered circuit, resized logic gate)",
			Primitives:  []Primitive{FixedValue},
			Targets:     all,
			References:  []string{"[41]"},
		},
		{
			Name:        "Malicious software",
			Description: "Compromised GCS or flight controller software",
			Primitives:  []Primitive{Zeros, Random},
			Targets:     all,
			References:  []string{"[35]"},
		},
		{
			Name:        "OS system attack",
			Description: "Attacks through the flight controller's system software",
			Primitives:  []Primitive{MinValue, MaxValue, FixedValue},
			Targets:     all,
			References:  []string{"[42]"},
		},

		// Actuator fault classes, beyond the paper's Table I: the rotor
		// failure modes the redundancy campaign contrasts with IMU faults
		// (fmdtools' per-rotor fault modes; fdcl-ftc's actuator fault set).
		{
			Name:        "Prop damage",
			Description: "Chipped or delaminated propeller losing part of its thrust",
			Primitives:  []Primitive{LossOfEffectiveness},
			Targets:     []Target{TargetRotor},
			References:  []string{"fmdtools", "fdcl-ftc"},
		},
		{
			Name:        "ESC desync",
			Description: "ESC commutation lockup holding the rotor at its last command",
			Primitives:  []Primitive{StuckRotor},
			Targets:     []Target{TargetRotor},
			References:  []string{"fmdtools"},
		},
		{
			Name:        "Motor burnout",
			Description: "Winding or ESC burnout leaving the rotor free-wheeling at zero thrust",
			Primitives:  []Primitive{FloatRotor},
			Targets:     []Target{TargetRotor},
			References:  []string{"fdcl-ftc"},
		},
	}
}

// PrimitiveCoverage returns, for each primitive, the fault-class names it
// represents. Every primitive in the model is grounded in at least one
// surveyed real-world fault.
func PrimitiveCoverage() map[Primitive][]string {
	cov := make(map[Primitive][]string)
	for _, fc := range Registry() {
		for _, p := range fc.Primitives {
			cov[p] = append(cov[p], fc.Name)
		}
	}
	return cov
}
