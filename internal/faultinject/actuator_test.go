package faultinject

import (
	"testing"
	"time"

	"uavres/internal/physics"
)

func mkActuator(t *testing.T, in Injection) *Injector {
	t.Helper()
	j, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func actuatorInjection(p Primitive, rotor int) Injection {
	return Injection{
		Primitive: p, Target: TargetRotor, Rotor: rotor,
		Start: 90 * time.Second, Duration: 10 * time.Second,
		Scope: ScopeAllUnits,
	}
}

func TestActuatorValidate(t *testing.T) {
	if err := actuatorInjection(LossOfEffectiveness, 0).Validate(); err != nil {
		t.Errorf("valid LoE rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Injection)
	}{
		{"sensor_primitive_on_rotor", func(in *Injection) { in.Primitive = Zeros }},
		{"actuator_primitive_on_gyro", func(in *Injection) { in.Target = TargetGyro }},
		{"rotor_out_of_range", func(in *Injection) { in.Rotor = physics.MaxRotors }},
		{"negative_rotor", func(in *Injection) { in.Rotor = -1 }},
		{"scoped_rotor_fault", func(in *Injection) { in.Scope = ScopePrimaryUnit }},
		{"factor_above_one", func(in *Injection) { in.Factor = 1.0 }},
		{"negative_factor", func(in *Injection) { in.Factor = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := actuatorInjection(LossOfEffectiveness, 0)
			tt.mutate(&in)
			if err := in.Validate(); err == nil {
				t.Error("invalid actuator injection accepted")
			}
		})
	}
	// Factor is LoE-only; a sensor injection carrying one is malformed.
	in := Injection{Primitive: Freeze, Target: TargetGyro, Start: time.Second,
		Duration: time.Second, Factor: 0.5}
	if err := in.Validate(); err == nil {
		t.Error("sensor injection with Factor accepted")
	}
	// A sensor injection naming a rotor is malformed too.
	in = Injection{Primitive: Freeze, Target: TargetGyro, Start: time.Second,
		Duration: time.Second, Rotor: 2}
	if err := in.Validate(); err == nil {
		t.Error("sensor injection with Rotor accepted")
	}
}

func TestSensorTargetClassification(t *testing.T) {
	for _, tg := range Targets() {
		in := Injection{Target: tg}
		if !in.SensorTarget() {
			t.Errorf("%v classified as actuator", tg)
		}
	}
	if (Injection{Target: TargetRotor}).SensorTarget() {
		t.Error("TargetRotor classified as sensor")
	}
	for _, p := range ActuatorPrimitives() {
		if !p.Actuator() {
			t.Errorf("%v not classified as actuator primitive", p)
		}
	}
	for _, p := range Primitives() {
		if p.Actuator() {
			t.Errorf("sensor primitive %v classified as actuator", p)
		}
	}
}

func TestActuatorParseRoundTrip(t *testing.T) {
	for _, p := range ActuatorPrimitives() {
		got, err := ParsePrimitive(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePrimitive(%q) = %v, %v", p.String(), got, err)
		}
	}
	if tg, err := ParseTarget("rotor"); err != nil || tg != TargetRotor {
		t.Errorf("ParseTarget(rotor) = %v, %v", tg, err)
	}
}

// TestLoERotorScaling checks loss-of-effectiveness multiplies only the
// faulted rotor and only inside the window.
func TestLoERotorScaling(t *testing.T) {
	in := actuatorInjection(LossOfEffectiveness, 1)
	in.Factor = 0.25
	j := mkActuator(t, in)
	cmd := physics.Rotors{0.8, 0.8, 0.8, 0.8}

	pre := j.ApplyActuator(10, cmd)
	if pre != cmd {
		t.Errorf("pre-window commands mutated: %v", pre)
	}
	mid := j.ApplyActuator(95, cmd)
	want := cmd
	want[1] = 0.8 * 0.25
	if mid != want {
		t.Errorf("in-window = %v, want %v", mid, want)
	}
	post := j.ApplyActuator(120, cmd)
	if post != cmd {
		t.Errorf("post-window commands mutated: %v", post)
	}
	if j.AppliedSamples() != 1 {
		t.Errorf("AppliedSamples = %d, want 1", j.AppliedSamples())
	}
}

// TestLoEDefaultFactor checks Factor 0 falls back to DefaultLoEFactor.
func TestLoEDefaultFactor(t *testing.T) {
	j := mkActuator(t, actuatorInjection(LossOfEffectiveness, 0))
	out := j.ApplyActuator(95, physics.Rotors{1, 1, 1, 1})
	if out[0] != DefaultLoEFactor {
		t.Errorf("default LoE output %v, want %v", out[0], DefaultLoEFactor)
	}
}

// TestStuckRotorFreezesLastCommand checks the stuck primitive holds the
// last pre-window command for the faulted rotor.
func TestStuckRotorFreezesLastCommand(t *testing.T) {
	j := mkActuator(t, actuatorInjection(StuckRotor, 2))
	j.ApplyActuator(89, physics.Rotors{0.1, 0.2, 0.33, 0.4}) // records frozenCmd
	out := j.ApplyActuator(95, physics.Rotors{0.9, 0.9, 0.9, 0.9})
	if out[2] != 0.33 {
		t.Errorf("stuck rotor = %v, want frozen 0.33", out[2])
	}
	for _, i := range []int{0, 1, 3} {
		if out[i] != 0.9 {
			t.Errorf("healthy rotor %d = %v, want 0.9", i, out[i])
		}
	}
}

// TestStuckSeedMatchesForkPath checks SeedStuck plants the same frozen
// command a straight-through pre-window call would have recorded — the
// invariant the checkpoint fork relies on.
func TestStuckSeedMatchesForkPath(t *testing.T) {
	cmd := physics.Rotors{0.5, 0.6, 0.7, 0.8}
	straight := mkActuator(t, actuatorInjection(StuckRotor, 0))
	straight.ApplyActuator(89.9, cmd)

	forked := mkActuator(t, actuatorInjection(StuckRotor, 0))
	forked.SeedStuck(cmd)

	in := physics.Rotors{0.2, 0.2, 0.2, 0.2}
	a, b := straight.ApplyActuator(95, in), forked.ApplyActuator(95, in)
	if a != b {
		t.Errorf("straight %v != seeded %v", a, b)
	}
}

// TestFloatRotorZeroes checks the float primitive (free-spinning,
// unpowered motor) forces the faulted rotor's command to zero.
func TestFloatRotorZeroes(t *testing.T) {
	j := mkActuator(t, actuatorInjection(FloatRotor, 3))
	out := j.ApplyActuator(95, physics.Rotors{0.7, 0.7, 0.7, 0.7})
	if out[3] != 0 {
		t.Errorf("float rotor = %v, want 0", out[3])
	}
}

// TestActuatorSnapshotRestoresFrozenCmd checks the injector snapshot
// carries the stuck-command capture across checkpoint/restore.
func TestActuatorSnapshotRestoresFrozenCmd(t *testing.T) {
	j := mkActuator(t, actuatorInjection(StuckRotor, 1))
	j.ApplyActuator(89, physics.Rotors{0.11, 0.22, 0.33, 0.44})
	snap := j.Snapshot()

	j2 := mkActuator(t, actuatorInjection(StuckRotor, 1))
	j2.Restore(snap)
	out := j2.ApplyActuator(95, physics.Rotors{0.9, 0.9, 0.9, 0.9})
	if out[1] != 0.22 {
		t.Errorf("restored stuck rotor = %v, want 0.22", out[1])
	}
}

func TestActuatorLabels(t *testing.T) {
	in := actuatorInjection(LossOfEffectiveness, 0)
	if in.Label() == "" {
		t.Error("empty actuator label")
	}
}
