package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func quatAlmostEq(a, b Quat, tol float64) bool {
	// q and -q are the same rotation.
	if a.W*b.W+a.X*b.X+a.Y*b.Y+a.Z*b.Z < 0 {
		b = Quat{-b.W, -b.X, -b.Y, -b.Z}
	}
	return almostEq(a.W, b.W, tol) && almostEq(a.X, b.X, tol) &&
		almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestQuatIdentityRotation(t *testing.T) {
	v := V3(1, 2, 3)
	if got := QuatIdentity().Rotate(v); !vecAlmostEq(got, v, 1e-12) {
		t.Errorf("identity rotate = %v, want %v", got, v)
	}
}

func TestQuatAxisAngle90Deg(t *testing.T) {
	// 90 degrees about Z maps X to Y.
	q := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	got := q.Rotate(V3(1, 0, 0))
	if !vecAlmostEq(got, V3(0, 1, 0), 1e-12) {
		t.Errorf("rotate = %v, want (0,1,0)", got)
	}
	// Inverse rotation maps back.
	back := q.RotateInv(got)
	if !vecAlmostEq(back, V3(1, 0, 0), 1e-12) {
		t.Errorf("rotateInv = %v, want (1,0,0)", back)
	}
}

func TestQuatZeroAxisIsIdentity(t *testing.T) {
	if got := QuatFromAxisAngle(Zero3, 1.5); got != QuatIdentity() {
		t.Errorf("zero axis = %v, want identity", got)
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	tests := []struct{ roll, pitch, yaw float64 }{
		{0, 0, 0},
		{0.3, -0.2, 1.1},
		{-1.0, 0.5, -2.5},
		{0.01, 0.02, 3.0},
		{math.Pi / 4, math.Pi / 4, math.Pi / 4},
	}
	for _, tt := range tests {
		q := QuatFromEuler(tt.roll, tt.pitch, tt.yaw)
		r, p, y := q.Euler()
		if !almostEq(r, tt.roll, 1e-9) || !almostEq(p, tt.pitch, 1e-9) || !almostEq(y, tt.yaw, 1e-9) {
			t.Errorf("round trip (%v,%v,%v) -> (%v,%v,%v)", tt.roll, tt.pitch, tt.yaw, r, p, y)
		}
	}
}

func TestQuatGimbalLockPitchClamped(t *testing.T) {
	q := QuatFromEuler(0, math.Pi/2, 0)
	_, p, _ := q.Euler()
	if !almostEq(p, math.Pi/2, 1e-9) {
		t.Errorf("pitch at gimbal lock = %v, want pi/2", p)
	}
}

func TestQuatRotationMatrixAgrees(t *testing.T) {
	q := QuatFromEuler(0.4, -0.3, 2.0)
	v := V3(1, -2, 0.5)
	got := q.RotationMatrix().MulVec(v)
	want := q.Rotate(v)
	if !vecAlmostEq(got, want, 1e-12) {
		t.Errorf("matrix rotate = %v, quat rotate = %v", got, want)
	}
}

func TestQuatIntegrateConstantRate(t *testing.T) {
	// Integrating 90 deg/s about body Z for 1 s in small steps reaches
	// 90 degrees of yaw.
	q := QuatIdentity()
	omega := V3(0, 0, math.Pi/2)
	const steps = 1000
	for i := 0; i < steps; i++ {
		q = q.Integrate(omega, 1.0/steps)
	}
	_, _, yaw := q.Euler()
	if !almostEq(yaw, math.Pi/2, 1e-6) {
		t.Errorf("yaw after integration = %v, want pi/2", yaw)
	}
	if !almostEq(q.Norm(), 1, 1e-12) {
		t.Errorf("norm drifted to %v", q.Norm())
	}
}

func TestQuatTiltAngle(t *testing.T) {
	tests := []struct {
		name string
		q    Quat
		want float64
	}{
		{"level", QuatIdentity(), 0},
		{"rolled_90", QuatFromEuler(math.Pi/2, 0, 0), math.Pi / 2},
		{"inverted", QuatFromEuler(math.Pi, 0, 0), math.Pi},
		{"yaw_only", QuatFromEuler(0, 0, 2.0), 0},
		{"pitch_45", QuatFromEuler(0, math.Pi/4, 0), math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.q.TiltAngle(); !almostEq(got, tt.want, 1e-9) {
				t.Errorf("TiltAngle = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestQuatAngleTo(t *testing.T) {
	a := QuatFromAxisAngle(V3(0, 0, 1), 0.3)
	b := QuatFromAxisAngle(V3(0, 0, 1), 0.8)
	if got := a.AngleTo(b); !almostEq(got, 0.5, 1e-9) {
		t.Errorf("AngleTo = %v, want 0.5", got)
	}
	if got := a.AngleTo(a); !almostEq(got, 0, 1e-6) {
		t.Errorf("AngleTo self = %v, want 0", got)
	}
}

func TestQuatNormalizedDegenerate(t *testing.T) {
	for _, bad := range []Quat{{}, {W: math.NaN()}, {X: math.Inf(1)}} {
		if got := bad.Normalized(); got != QuatIdentity() {
			t.Errorf("Normalized(%v) = %v, want identity", bad, got)
		}
	}
}

// Property: QuatFromMatrix(q.RotationMatrix()) == q up to sign.
func TestQuatMatrixRoundTrip(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		q := randQuat(a, b, c, d)
		back := QuatFromMatrix(q.RotationMatrix())
		return quatAlmostEq(q, back, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Exercise all four Shepperd branches with rotations near 180 degrees
	// about each axis.
	for _, q := range []Quat{
		QuatIdentity(),
		QuatFromAxisAngle(V3(1, 0, 0), 3.1),
		QuatFromAxisAngle(V3(0, 1, 0), 3.1),
		QuatFromAxisAngle(V3(0, 0, 1), 3.1),
	} {
		if back := QuatFromMatrix(q.RotationMatrix()); !quatAlmostEq(q, back, 1e-9) {
			t.Errorf("round trip %v -> %v", q, back)
		}
	}
}

// randQuat builds a well-formed unit quaternion from four arbitrary floats.
func randQuat(a, b, c, d float64) Quat {
	q := Quat{clampInput(a) + 0.1, clampInput(b), clampInput(c), clampInput(d)}
	return q.Normalized()
}

// Property: rotation preserves vector length.
func TestQuatRotatePreservesNorm(t *testing.T) {
	f := func(a, b, c, d, vx, vy, vz float64) bool {
		q := randQuat(a, b, c, d)
		v := V3(clampInput(vx), clampInput(vy), clampInput(vz))
		return almostEq(q.Rotate(v).Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: composition q.Mul(r).Rotate(v) == q.Rotate(r.Rotate(v)).
func TestQuatCompositionProperty(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i, vx, vy, vz float64) bool {
		q := randQuat(a, b, c, d)
		r := randQuat(e, g, h, i)
		v := V3(clampInput(vx), clampInput(vy), clampInput(vz))
		lhs := q.Mul(r).Rotate(v)
		rhs := q.Rotate(r.Rotate(v))
		return vecAlmostEq(lhs, rhs, 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: q.Mul(q.Conj()) is the identity for unit quaternions.
func TestQuatConjIsInverse(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		q := randQuat(a, b, c, d)
		return quatAlmostEq(q.Mul(q.Conj()), QuatIdentity(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RotVec round-trip — integrating the rotation vector of a small
// rotation reproduces it.
func TestQuatRotVecSmallAngle(t *testing.T) {
	f := func(x, y, z float64) bool {
		rv := V3(math.Mod(clampInput(x), 0.1), math.Mod(clampInput(y), 0.1), math.Mod(clampInput(z), 0.1))
		q := QuatFromRotVec(rv)
		if !almostEq(q.Norm(), 1, 1e-9) {
			return false
		}
		// The rotation angle equals |rv|.
		return almostEq(q.AngleTo(QuatIdentity()), rv.Norm(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
