package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec3Arithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Vec3
		want Vec3
	}{
		{"add", V3(1, 2, 3).Add(V3(4, 5, 6)), V3(5, 7, 9)},
		{"sub", V3(1, 2, 3).Sub(V3(4, 5, 6)), V3(-3, -3, -3)},
		{"scale", V3(1, -2, 3).Scale(2), V3(2, -4, 6)},
		{"neg", V3(1, -2, 3).Neg(), V3(-1, 2, -3)},
		{"hadamard", V3(1, 2, 3).Hadamard(V3(2, 3, 4)), V3(2, 6, 12)},
		{"cross_xy", V3(1, 0, 0).Cross(V3(0, 1, 0)), V3(0, 0, 1)},
		{"cross_yz", V3(0, 1, 0).Cross(V3(0, 0, 1)), V3(1, 0, 0)},
		{"lerp_mid", V3(0, 0, 0).Lerp(V3(2, 4, 6), 0.5), V3(1, 2, 3)},
		{"xy", V3(3, 4, 5).XY(), V3(3, 4, 0)},
		{"clamp", V3(10, -10, 0.5).Clamp(1), V3(1, -1, 0.5)},
		{"clampvec", V3(10, -10, 0.5).ClampVec(V3(2, 3, 0.1)), V3(2, -3, 0.1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !vecAlmostEq(tt.got, tt.want, 1e-12) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVec3NormAndDist(t *testing.T) {
	v := V3(3, 4, 0)
	if got := v.Norm(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.NormSq(); !almostEq(got, 25, 1e-12) {
		t.Errorf("NormSq = %v, want 25", got)
	}
	if got := v.NormXY(); !almostEq(got, 5, 1e-12) {
		t.Errorf("NormXY = %v, want 5", got)
	}
	if got := V3(1, 1, 1).Dist(V3(1, 1, 3)); !almostEq(got, 2, 1e-12) {
		t.Errorf("Dist = %v, want 2", got)
	}
	if got := V3(0, 0, 9).DistXY(V3(3, 4, -7)); !almostEq(got, 5, 1e-12) {
		t.Errorf("DistXY = %v, want 5 (Z must be ignored)", got)
	}
}

func TestVec3NormalizedZeroSafe(t *testing.T) {
	if got := Zero3.Normalized(); got != Zero3 {
		t.Errorf("Normalized zero vector = %v, want zero", got)
	}
	n := V3(0, -7, 0).Normalized()
	if !vecAlmostEq(n, V3(0, -1, 0), 1e-12) {
		t.Errorf("Normalized = %v, want (0,-1,0)", n)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, bad := range []Vec3{
		{math.NaN(), 0, 0}, {0, math.Inf(1), 0}, {0, 0, math.Inf(-1)},
	} {
		if bad.IsFinite() {
			t.Errorf("%v reported finite", bad)
		}
	}
}

func TestVec3MaxAbs(t *testing.T) {
	if got := V3(-7, 2, 3).MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}

func TestClampScalar(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-5, 0, 10, 0}, {15, 0, 10, 10}, {0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestWrapPi(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{math.Pi / 2, math.Pi / 2},
		{2 * math.Pi, 0},
		{-7 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := WrapPi(tt.in); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("WrapPi(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	if got := Deg2Rad(180); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("Deg2Rad(180) = %v", got)
	}
	if got := Rad2Deg(math.Pi / 2); !almostEq(got, 90, 1e-12) {
		t.Errorf("Rad2Deg(pi/2) = %v", got)
	}
}

// Property: cross product is perpendicular to both operands and
// anti-commutative.
func TestVec3CrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V3(clampInput(ax), clampInput(ay), clampInput(az)), V3(clampInput(bx), clampInput(by), clampInput(bz))
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Norm()*b.Norm())
		return almostEq(c.Dot(a), 0, tol) &&
			almostEq(c.Dot(b), 0, tol) &&
			vecAlmostEq(c, b.Cross(a).Neg(), tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestVec3TriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a := V3(clampInput(ax), clampInput(ay), clampInput(az))
		b := V3(clampInput(bx), clampInput(by), clampInput(bz))
		c := V3(clampInput(cx), clampInput(cy), clampInput(cz))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampInput maps arbitrary quick-generated floats into a sane finite range
// so properties aren't defeated by overflow to Inf.
func clampInput(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
