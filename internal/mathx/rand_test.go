package mathx

import (
	"math"
	"testing"
)

func TestRandDeterministicBySeed(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical 64-bit draws", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0, 1)", f)
		}
	}
}

func TestRandInt63NonNegative(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63() = %d negative", v)
		}
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

// TestRandSnapshotResume is the property checkpointing rests on: a stream
// restored from State continues bit-identically, including across a cached
// Box-Muller/polar spare deviate.
func TestRandSnapshotResume(t *testing.T) {
	r := NewRand(555)
	// Burn an odd number of normal deviates so a spare is cached.
	for i := 0; i < 7; i++ {
		r.NormFloat64()
	}
	st := r.State()
	var want []float64
	for i := 0; i < 64; i++ {
		want = append(want, r.NormFloat64(), r.Float64(), float64(r.Int63()))
	}

	fork := NewRand(0)
	fork.SetState(st)
	for i := 0; i < 64; i++ {
		got := []float64{fork.NormFloat64(), fork.Float64(), float64(fork.Int63())}
		for k, g := range got {
			if g != want[3*i+k] {
				t.Fatalf("restored stream diverged at draw %d.%d: got %v want %v", i, k, g, want[3*i+k])
			}
		}
	}
}

func TestParseNormPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want NormPolicy
		ok   bool
	}{
		{"", NormPolar, true},
		{"polar", NormPolar, true},
		{"ziggurat", NormZiggurat, true},
		{"box-muller", NormPolar, false},
		{"Polar", NormPolar, false},
	}
	for _, c := range cases {
		got, err := ParseNormPolicy(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseNormPolicy(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseNormPolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if NormPolar.String() != "polar" || NormZiggurat.String() != "ziggurat" {
		t.Errorf("policy String() mismatch: %q %q", NormPolar, NormZiggurat)
	}
}

// TestNewRandPolicyPolarBitCompatible pins the acceptance property of the
// policy layer: a polar-policy stream is the historical stream, bit for bit.
func TestNewRandPolicyPolarBitCompatible(t *testing.T) {
	a := NewRand(42)
	b := NewRandPolicy(42, NormPolar)
	for i := 0; i < 1000; i++ {
		if a.NormFloat64() != b.NormFloat64() {
			t.Fatalf("polar policy diverged from NewRand at draw %d", i)
		}
	}
}

func TestZigguratMoments(t *testing.T) {
	r := NewRandPolicy(123, NormZiggurat)
	const n = 200000
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
		sumCube += x * x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("ziggurat mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("ziggurat variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("ziggurat third moment = %v, want ~0", skew)
	}
}

// TestZigguratTailCoverage forces the slow paths: in a large sample both
// tails beyond the base-layer split point must be populated, roughly
// symmetrically, at about the theoretical 2·Φ(-r) ≈ 5.75e-4 rate.
func TestZigguratTailCoverage(t *testing.T) {
	r := NewRandPolicy(77, NormZiggurat)
	const n = 2000000
	var lo, hi int
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		if x <= -zigTailR {
			lo++
		} else if x >= zigTailR {
			hi++
		}
	}
	total := lo + hi
	if total < 600 || total > 1800 {
		t.Errorf("tail draws = %d of %d, want ~%d", total, n, int(5.75e-4*n))
	}
	if lo == 0 || hi == 0 {
		t.Errorf("tail draws one-sided: lo=%d hi=%d", lo, hi)
	}
}

// TestZigguratSnapshotResume mirrors TestRandSnapshotResume under the
// ziggurat policy: RandState carries no policy, so the fork must be
// constructed with the same policy and then continues bit-identically.
func TestZigguratSnapshotResume(t *testing.T) {
	r := NewRandPolicy(555, NormZiggurat)
	for i := 0; i < 7; i++ {
		r.NormFloat64()
	}
	st := r.State()
	var want []float64
	for i := 0; i < 256; i++ {
		want = append(want, r.NormFloat64(), r.Float64())
	}

	fork := NewRandPolicy(0, NormZiggurat)
	fork.SetState(st)
	for i := 0; i < 256; i++ {
		if g := fork.NormFloat64(); g != want[2*i] {
			t.Fatalf("restored ziggurat stream diverged at norm draw %d: got %v want %v", i, g, want[2*i])
		}
		if g := fork.Float64(); g != want[2*i+1] {
			t.Fatalf("restored ziggurat stream diverged at uniform draw %d", i)
		}
	}
}

// TestChildInheritsPolicy pins the fork-split contract: Child derives its
// seed exactly as the historical NewRand(r.Int63()) idiom and carries the
// parent's policy, so a whole tree of streams follows one campaign-level
// policy choice deterministically.
func TestChildInheritsPolicy(t *testing.T) {
	parent := NewRandPolicy(9001, NormZiggurat)
	mirror := NewRandPolicy(9001, NormZiggurat)

	child := parent.Child()
	if child.Policy() != NormZiggurat {
		t.Fatalf("child policy = %v, want ziggurat", child.Policy())
	}
	oldIdiom := NewRandPolicy(mirror.Int63(), NormZiggurat)
	for i := 0; i < 500; i++ {
		if child.NormFloat64() != oldIdiom.NormFloat64() {
			t.Fatalf("Child() seed derivation diverged from NewRand(Int63()) at draw %d", i)
		}
	}

	// Splitting is reproducible: same parent state, same child stream.
	p2 := NewRandPolicy(9001, NormZiggurat)
	c2 := p2.Child()
	c1 := NewRandPolicy(9001, NormZiggurat).Child()
	for i := 0; i < 500; i++ {
		if c1.NormFloat64() != c2.NormFloat64() {
			t.Fatalf("fork split not reproducible at draw %d", i)
		}
	}

	if NewRand(1).Child().Policy() != NormPolar {
		t.Fatalf("polar child policy lost")
	}
}
