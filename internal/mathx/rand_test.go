package mathx

import (
	"math"
	"testing"
)

func TestRandDeterministicBySeed(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical 64-bit draws", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0, 1)", f)
		}
	}
}

func TestRandInt63NonNegative(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63() = %d negative", v)
		}
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

// TestRandSnapshotResume is the property checkpointing rests on: a stream
// restored from State continues bit-identically, including across a cached
// Box-Muller/polar spare deviate.
func TestRandSnapshotResume(t *testing.T) {
	r := NewRand(555)
	// Burn an odd number of normal deviates so a spare is cached.
	for i := 0; i < 7; i++ {
		r.NormFloat64()
	}
	st := r.State()
	var want []float64
	for i := 0; i < 64; i++ {
		want = append(want, r.NormFloat64(), r.Float64(), float64(r.Int63()))
	}

	fork := NewRand(0)
	fork.SetState(st)
	for i := 0; i < 64; i++ {
		got := []float64{fork.NormFloat64(), fork.Float64(), float64(fork.Int63())}
		for k, g := range got {
			if g != want[3*i+k] {
				t.Fatalf("restored stream diverged at draw %d.%d: got %v want %v", i, k, g, want[3*i+k])
			}
		}
	}
}
