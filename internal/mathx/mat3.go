package mathx

import (
	"fmt"
	"math"
)

// Mat3 is a 3x3 matrix in row-major order: M[row][col].
type Mat3 struct {
	M [3][3]float64
}

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{M: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// Diag3 returns a diagonal matrix with the given diagonal entries.
func Diag3(x, y, z float64) Mat3 {
	return Mat3{M: [3][3]float64{{x, 0, 0}, {0, y, 0}, {0, 0, z}}}
}

// DiagV returns a diagonal matrix whose diagonal is v.
func DiagV(v Vec3) Mat3 { return Diag3(v.X, v.Y, v.Z) }

// Skew returns the skew-symmetric cross-product matrix [v]x such that
// Skew(v).MulVec(w) == v.Cross(w).
func Skew(v Vec3) Mat3 {
	return Mat3{M: [3][3]float64{
		{0, -v.Z, v.Y},
		{v.Z, 0, -v.X},
		{-v.Y, v.X, 0},
	}}
}

// Add returns a + b.
func (a Mat3) Add(b Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = a.M[i][j] + b.M[i][j]
		}
	}
	return out
}

// Sub returns a - b.
func (a Mat3) Sub(b Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = a.M[i][j] - b.M[i][j]
		}
	}
	return out
}

// Scale returns a with every entry multiplied by s.
func (a Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = a.M[i][j] * s
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func (a Mat3) Mul(b Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = a.M[i][0]*b.M[0][j] + a.M[i][1]*b.M[1][j] + a.M[i][2]*b.M[2][j]
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*v.
func (a Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		X: a.M[0][0]*v.X + a.M[0][1]*v.Y + a.M[0][2]*v.Z,
		Y: a.M[1][0]*v.X + a.M[1][1]*v.Y + a.M[1][2]*v.Z,
		Z: a.M[2][0]*v.X + a.M[2][1]*v.Y + a.M[2][2]*v.Z,
	}
}

// Transpose returns the transpose of a.
func (a Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.M[i][j] = a.M[j][i]
		}
	}
	return out
}

// Det returns the determinant of a.
func (a Mat3) Det() float64 {
	m := a.M
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Inverse returns the inverse of a and whether the matrix was invertible.
// A matrix with |det| below 1e-300 is treated as singular.
func (a Mat3) Inverse() (Mat3, bool) {
	d := a.Det()
	if math.Abs(d) < 1e-300 {
		return Mat3{}, false
	}
	m := a.M
	inv := Mat3{M: [3][3]float64{
		{m[1][1]*m[2][2] - m[1][2]*m[2][1], m[0][2]*m[2][1] - m[0][1]*m[2][2], m[0][1]*m[1][2] - m[0][2]*m[1][1]},
		{m[1][2]*m[2][0] - m[1][0]*m[2][2], m[0][0]*m[2][2] - m[0][2]*m[2][0], m[0][2]*m[1][0] - m[0][0]*m[1][2]},
		{m[1][0]*m[2][1] - m[1][1]*m[2][0], m[0][1]*m[2][0] - m[0][0]*m[2][1], m[0][0]*m[1][1] - m[0][1]*m[1][0]},
	}}
	return inv.Scale(1 / d), true
}

// Trace returns the sum of the diagonal entries.
func (a Mat3) Trace() float64 { return a.M[0][0] + a.M[1][1] + a.M[2][2] }

// Row returns row i as a vector. i must be in [0, 2].
func (a Mat3) Row(i int) Vec3 { return Vec3{a.M[i][0], a.M[i][1], a.M[i][2]} }

// Col returns column j as a vector. j must be in [0, 2].
func (a Mat3) Col(j int) Vec3 { return Vec3{a.M[0][j], a.M[1][j], a.M[2][j]} }

// String implements fmt.Stringer.
func (a Mat3) String() string {
	return fmt.Sprintf("[%v; %v; %v]", a.Row(0), a.Row(1), a.Row(2))
}
