package mathx

import "math"

// LowPass is a first-order discrete low-pass filter (exponential smoothing)
// parameterized by cutoff frequency. The zero value passes input through
// until Init or the first Update fixes the state.
type LowPass struct {
	alpha   float64
	state   float64
	primed  bool
	cutHz   float64
	stepSec float64
}

// NewLowPass returns a low-pass filter with the given cutoff frequency (Hz)
// for samples arriving every dt seconds. A non-positive cutoff disables
// filtering (the filter becomes a pass-through).
func NewLowPass(cutoffHz, dt float64) *LowPass {
	lp := &LowPass{cutHz: cutoffHz, stepSec: dt}
	lp.alpha = lowPassAlpha(cutoffHz, dt)
	return lp
}

func lowPassAlpha(cutoffHz, dt float64) float64 {
	if cutoffHz <= 0 || dt <= 0 {
		return 1
	}
	rc := 1 / (2 * math.Pi * cutoffHz)
	return dt / (rc + dt)
}

// Init seeds the filter state.
func (lp *LowPass) Init(x float64) {
	lp.state = x
	lp.primed = true
}

// Update feeds one sample and returns the filtered value.
func (lp *LowPass) Update(x float64) float64 {
	if !lp.primed {
		lp.Init(x)
		return x
	}
	lp.state += lp.alpha * (x - lp.state)
	return lp.state
}

// Value returns the current filtered value.
func (lp *LowPass) Value() float64 { return lp.state }

// LowPassState is the snapshot-able state of a LowPass (the coefficients
// are configuration, re-derived on construction, so only the dynamic state
// is captured).
type LowPassState struct {
	State  float64
	Primed bool
}

// Snapshot captures the filter's dynamic state.
func (lp *LowPass) Snapshot() LowPassState {
	return LowPassState{State: lp.state, Primed: lp.primed}
}

// Restore reinstates a state captured with Snapshot.
func (lp *LowPass) Restore(s LowPassState) {
	lp.state = s.State
	lp.primed = s.Primed
}

// LowPass3 filters a Vec3 component-wise with a shared cutoff.
type LowPass3 struct {
	x, y, z LowPass
}

// NewLowPass3 returns a vector low-pass filter; see NewLowPass.
func NewLowPass3(cutoffHz, dt float64) *LowPass3 {
	a := lowPassAlpha(cutoffHz, dt)
	return &LowPass3{
		x: LowPass{alpha: a, cutHz: cutoffHz, stepSec: dt},
		y: LowPass{alpha: a, cutHz: cutoffHz, stepSec: dt},
		z: LowPass{alpha: a, cutHz: cutoffHz, stepSec: dt},
	}
}

// Init seeds the filter state.
func (lp *LowPass3) Init(v Vec3) {
	lp.x.Init(v.X)
	lp.y.Init(v.Y)
	lp.z.Init(v.Z)
}

// Update feeds one sample and returns the filtered vector.
func (lp *LowPass3) Update(v Vec3) Vec3 {
	return Vec3{lp.x.Update(v.X), lp.y.Update(v.Y), lp.z.Update(v.Z)}
}

// Value returns the current filtered vector.
func (lp *LowPass3) Value() Vec3 { return Vec3{lp.x.Value(), lp.y.Value(), lp.z.Value()} }

// LowPass3State is the snapshot-able state of a LowPass3.
type LowPass3State struct {
	X, Y, Z LowPassState
}

// Snapshot captures the filter's dynamic state.
func (lp *LowPass3) Snapshot() LowPass3State {
	return LowPass3State{X: lp.x.Snapshot(), Y: lp.y.Snapshot(), Z: lp.z.Snapshot()}
}

// Restore reinstates a state captured with Snapshot.
func (lp *LowPass3) Restore(s LowPass3State) {
	lp.x.Restore(s.X)
	lp.y.Restore(s.Y)
	lp.z.Restore(s.Z)
}

// Derivative estimates a signal's time derivative with a low-pass smoothed
// finite difference, the standard D-term implementation in flight
// controllers (avoids amplifying sensor noise).
type Derivative struct {
	lp   LowPass
	prev float64
	dt   float64
	seen bool
}

// NewDerivative returns a derivative estimator for samples every dt
// seconds, smoothed at cutoffHz.
func NewDerivative(cutoffHz, dt float64) *Derivative {
	return &Derivative{lp: LowPass{alpha: lowPassAlpha(cutoffHz, dt)}, dt: dt}
}

// Update feeds one sample and returns the smoothed derivative.
func (d *Derivative) Update(x float64) float64 {
	if !d.seen {
		d.prev = x
		d.seen = true
		return 0
	}
	raw := (x - d.prev) / d.dt
	d.prev = x
	return d.lp.Update(raw)
}

// Reset clears the estimator state.
func (d *Derivative) Reset() {
	d.seen = false
	d.lp.primed = false
	d.lp.state = 0
}

// DerivativeState is the snapshot-able state of a Derivative.
type DerivativeState struct {
	LP   LowPassState
	Prev float64
	Seen bool
}

// Snapshot captures the estimator's dynamic state.
func (d *Derivative) Snapshot() DerivativeState {
	return DerivativeState{LP: d.lp.Snapshot(), Prev: d.prev, Seen: d.seen}
}

// Restore reinstates a state captured with Snapshot.
func (d *Derivative) Restore(s DerivativeState) {
	d.lp.Restore(s.LP)
	d.prev = s.Prev
	d.seen = s.Seen
}

// RateLimiter limits the slew rate of a signal to maxRatePerSec.
type RateLimiter struct {
	max   float64
	dt    float64
	state float64
	seen  bool
}

// NewRateLimiter returns a slew-rate limiter for samples every dt seconds.
func NewRateLimiter(maxRatePerSec, dt float64) *RateLimiter {
	return &RateLimiter{max: maxRatePerSec, dt: dt}
}

// Update feeds the desired value and returns the slew-limited value.
func (r *RateLimiter) Update(x float64) float64 {
	if !r.seen {
		r.state = x
		r.seen = true
		return x
	}
	maxStep := r.max * r.dt
	r.state += Clamp(x-r.state, -maxStep, maxStep)
	return r.state
}
