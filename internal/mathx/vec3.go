// Package mathx provides the small linear-algebra and signal-processing
// toolkit used throughout the simulator: 3-vectors, 3x3 matrices, unit
// quaternions, discrete filters, and summary statistics.
//
// All types are plain values with no hidden state; operations return new
// values rather than mutating receivers, which keeps the physics and
// estimation code referentially transparent and easy to test.
package mathx

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector. The frame (world NED, body FRD, ...) is
// by convention of the caller.
type Vec3 struct {
	X, Y, Z float64
}

// V3 builds a Vec3 from components.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Zero3 is the zero vector.
var Zero3 = Vec3{}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged (there is no meaningful direction to preserve).
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	//lint:allow floatcmp exact zero-norm guard before dividing by the norm
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Hadamard returns the element-wise product of v and w.
func (v Vec3) Hadamard(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Clamp returns v with every component clamped to [-limit, limit].
// limit must be non-negative.
func (v Vec3) Clamp(limit float64) Vec3 {
	return Vec3{
		X: Clamp(v.X, -limit, limit),
		Y: Clamp(v.Y, -limit, limit),
		Z: Clamp(v.Z, -limit, limit),
	}
}

// ClampVec returns v with each component i clamped to [-limits[i], limits[i]].
func (v Vec3) ClampVec(limits Vec3) Vec3 {
	return Vec3{
		X: Clamp(v.X, -limits.X, limits.X),
		Y: Clamp(v.Y, -limits.Y, limits.Y),
		Z: Clamp(v.Z, -limits.Z, limits.Z),
	}
}

// XY returns the horizontal (X, Y) part of v with Z zeroed.
func (v Vec3) XY() Vec3 { return Vec3{v.X, v.Y, 0} }

// NormXY returns the horizontal length of v.
func (v Vec3) NormXY() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// DistXY returns the horizontal distance between v and w.
func (v Vec3) DistXY(w Vec3) float64 { return math.Hypot(v.X-w.X, v.Y-w.Y) }

// IsFinite reports whether all components are finite (no NaN or Inf).
func (v Vec3) IsFinite() bool {
	return isFinite(v.X) && isFinite(v.Y) && isFinite(v.Z)
}

// MaxAbs returns the largest absolute component value.
func (v Vec3) MaxAbs() float64 {
	return math.Max(math.Abs(v.X), math.Max(math.Abs(v.Y), math.Abs(v.Z)))
}

// Lerp linearly interpolates from v to w by t in [0, 1].
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return v.Add(w.Sub(v).Scale(t))
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z)
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// WrapPi wraps an angle in radians to (-pi, pi].
func WrapPi(a float64) float64 {
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
