package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func matAlmostEq(a, b Mat3, tol float64) bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(a.M[i][j], b.M[i][j], tol) {
				return false
			}
		}
	}
	return true
}

func TestMat3IdentityMul(t *testing.T) {
	a := Mat3{M: [3][3]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}}
	if got := Identity3().Mul(a); !matAlmostEq(got, a, 1e-12) {
		t.Errorf("I*A = %v, want %v", got, a)
	}
	if got := a.Mul(Identity3()); !matAlmostEq(got, a, 1e-12) {
		t.Errorf("A*I = %v, want %v", got, a)
	}
}

func TestMat3MulVec(t *testing.T) {
	a := Diag3(2, 3, 4)
	if got := a.MulVec(V3(1, 1, 1)); !vecAlmostEq(got, V3(2, 3, 4), 1e-12) {
		t.Errorf("diag mulvec = %v", got)
	}
}

func TestMat3Inverse(t *testing.T) {
	a := Mat3{M: [3][3]float64{{2, 0, 1}, {1, 1, 0}, {0, 3, 1}}}
	inv, ok := a.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	if got := a.Mul(inv); !matAlmostEq(got, Identity3(), 1e-9) {
		t.Errorf("A*inv(A) = %v, want identity", got)
	}
}

func TestMat3InverseSingular(t *testing.T) {
	singular := Mat3{M: [3][3]float64{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}}
	if _, ok := singular.Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestMat3SkewMatchesCross(t *testing.T) {
	v, w := V3(1, -2, 3), V3(0.5, 4, -1)
	if got, want := Skew(v).MulVec(w), v.Cross(w); !vecAlmostEq(got, want, 1e-12) {
		t.Errorf("Skew(v)w = %v, v×w = %v", got, want)
	}
}

func TestMat3TraceDetRowCol(t *testing.T) {
	a := Mat3{M: [3][3]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}}
	if got := a.Trace(); got != 16 {
		t.Errorf("Trace = %v, want 16", got)
	}
	if got := a.Det(); !almostEq(got, -3, 1e-12) {
		t.Errorf("Det = %v, want -3", got)
	}
	if got := a.Row(1); got != V3(4, 5, 6) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := a.Col(2); got != V3(3, 6, 10) {
		t.Errorf("Col(2) = %v", got)
	}
}

func TestMat3AddSubScale(t *testing.T) {
	a := Diag3(1, 2, 3)
	b := Diag3(4, 5, 6)
	if got := a.Add(b); !matAlmostEq(got, Diag3(5, 7, 9), 1e-12) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !matAlmostEq(got, Diag3(3, 3, 3), 1e-12) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !matAlmostEq(got, Diag3(2, 4, 6), 1e-12) {
		t.Errorf("Scale = %v", got)
	}
}

// Property: (AB)^T == B^T A^T.
func TestMat3TransposeProduct(t *testing.T) {
	f := func(a, b [9]float64) bool {
		A := mat3FromArray(a)
		B := mat3FromArray(b)
		return matAlmostEq(A.Mul(B).Transpose(), B.Transpose().Mul(A.Transpose()), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: det(AB) == det(A)det(B).
func TestMat3DetMultiplicative(t *testing.T) {
	f := func(a, b [9]float64) bool {
		A := mat3FromArray(a)
		B := mat3FromArray(b)
		lhs := A.Mul(B).Det()
		rhs := A.Det() * B.Det()
		tol := 1e-6 * (1 + abs(lhs) + abs(rhs))
		return almostEq(lhs, rhs, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mat3FromArray(a [9]float64) Mat3 {
	var m Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.M[i][j] = math.Mod(clampInput(a[i*3+j]), 100)
		}
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
