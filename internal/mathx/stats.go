package mathx

import (
	"math"
	"sort"
)

// Running accumulates streaming summary statistics (Welford's algorithm)
// without storing samples. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 { return r.max }

// Merge folds the statistics of other into r (Chan et al. parallel merge),
// so per-worker accumulators can be combined after a campaign fan-out.
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n1, n2 := float64(r.n), float64(other.n)
	delta := other.mean - r.mean
	total := n1 + n2
	r.mean += delta * n2 / total
	r.m2 += other.m2 + delta*delta*n1*n2/total
	r.n += other.n
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It copies and sorts internally;
// an empty slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }
