package mathx

import "math"

// Rand is a small, fast, snapshot-able PRNG (splitmix64 core) exposing the
// method surface the simulation needs from math/rand: Float64, Int63, and
// NormFloat64. Unlike math/rand.Rand its complete state is exportable via
// State/SetState, which is what makes simulation checkpointing possible:
// a forked run can resume every noise stream bit-exactly where the
// checkpointed run left it.
//
// The zero value is a valid generator seeded with 0. Not safe for
// concurrent use; each consumer owns its own stream.
type Rand struct {
	s         uint64
	spare     float64 // cached second deviate from the polar method
	haveSpare bool
}

// RandState is the complete, exportable state of a Rand.
type RandState struct {
	S         uint64  `json:"s"`
	Spare     float64 `json:"spare,omitempty"`
	HaveSpare bool    `json:"have_spare,omitempty"`
}

// NewRand returns a generator seeded with seed. Distinct seeds yield
// streams that are effectively independent (splitmix64's increment is a
// full-period odd constant).
func NewRand(seed int64) *Rand {
	return &Rand{s: uint64(seed)}
}

// next advances the splitmix64 state and returns the next 64-bit output.
func (r *Rand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.next() }

// Int63 returns a non-negative uniformly distributed 63-bit integer,
// mirroring math/rand.Int63 (used to derive child-stream seeds).
func (r *Rand) Int63() int64 { return int64(r.next() >> 1) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate using the Marsaglia polar
// method. The second deviate of each pair is cached in the state (and
// captured by State), so a restored stream continues exactly.
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		//lint:allow floatcmp exact zero guard before dividing by s
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// State returns the complete generator state.
func (r *Rand) State() RandState {
	return RandState{S: r.s, Spare: r.spare, HaveSpare: r.haveSpare}
}

// SetState restores a state previously captured with State.
func (r *Rand) SetState(s RandState) {
	r.s = s.S
	r.spare = s.Spare
	r.haveSpare = s.HaveSpare
}
