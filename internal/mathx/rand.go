package mathx

import (
	"fmt"
	"math"
)

// NormPolicy names the normal-deviate algorithm a Rand uses. It is
// configuration, not dynamic state: State/SetState round-trips leave it
// untouched (the same way ekf.Filter carries its cfg through snapshot
// restores), and Child streams inherit it, so one policy choice at the
// campaign level governs every derived noise stream.
type NormPolicy uint8

const (
	// NormPolar is the Marsaglia polar method — the default, kept
	// bit-compatible with every previously recorded campaign.
	NormPolar NormPolicy = iota
	// NormZiggurat is a 128-layer ziggurat (Marsaglia-Tsang layout,
	// Doornik-style float tables computed at init): most draws cost one
	// uniform, one table compare, and one multiply — no Log or Sqrt on
	// the fast path — at the price of a different (equally valid)
	// deviate stream.
	NormZiggurat
)

// String names the policy as specs and bench metadata spell it.
func (p NormPolicy) String() string {
	if p == NormZiggurat {
		return "ziggurat"
	}
	return "polar"
}

// ParseNormPolicy resolves a spec/flag spelling of a policy. The empty
// string means the default (polar), so configs can omit the knob.
func ParseNormPolicy(s string) (NormPolicy, error) {
	switch s {
	case "", "polar":
		return NormPolar, nil
	case "ziggurat":
		return NormZiggurat, nil
	default:
		return NormPolar, fmt.Errorf("mathx: unknown RNG policy %q (want polar or ziggurat)", s)
	}
}

// Rand is a small, fast, snapshot-able PRNG (splitmix64 core) exposing the
// method surface the simulation needs from math/rand: Float64, Int63, and
// NormFloat64. Unlike math/rand.Rand its complete state is exportable via
// State/SetState, which is what makes simulation checkpointing possible:
// a forked run can resume every noise stream bit-exactly where the
// checkpointed run left it.
//
// The zero value is a valid generator seeded with 0. Not safe for
// concurrent use; each consumer owns its own stream.
type Rand struct {
	s         uint64
	spare     float64 // cached second deviate from the polar method
	haveSpare bool
	policy    NormPolicy // configuration, not state: absent from RandState
}

// RandState is the complete, exportable state of a Rand.
type RandState struct {
	S         uint64  `json:"s"`
	Spare     float64 `json:"spare,omitempty"`
	HaveSpare bool    `json:"have_spare,omitempty"`
}

// NewRand returns a generator seeded with seed using the default polar
// normal policy. Distinct seeds yield streams that are effectively
// independent (splitmix64's increment is a full-period odd constant).
func NewRand(seed int64) *Rand {
	return &Rand{s: uint64(seed)}
}

// NewRandPolicy returns a generator seeded with seed whose NormFloat64
// uses the given policy. NewRandPolicy(seed, NormPolar) is NewRand(seed).
func NewRandPolicy(seed int64, p NormPolicy) *Rand {
	return &Rand{s: uint64(seed), policy: p}
}

// Policy returns the generator's normal-deviate policy.
func (r *Rand) Policy() NormPolicy { return r.policy }

// Child derives a new stream seeded from this one, inheriting the policy.
// The seed derivation (Int63) is identical to the historical
// NewRand(rng.Int63()) idiom, so polar-policy children are bit-compatible
// with every recorded campaign.
func (r *Rand) Child() *Rand {
	return NewRandPolicy(r.Int63(), r.policy)
}

// next advances the splitmix64 state and returns the next 64-bit output.
func (r *Rand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.next() }

// Int63 returns a non-negative uniformly distributed 63-bit integer,
// mirroring math/rand.Int63 (used to derive child-stream seeds).
func (r *Rand) Int63() int64 { return int64(r.next() >> 1) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate using the generator's
// policy: the Marsaglia polar method by default, or the ziggurat when the
// stream was built with NormZiggurat. The polar method's second deviate is
// cached in the state (and captured by State), so a restored stream
// continues exactly; the ziggurat holds no extra state beyond the uniform
// stream, so RandState round-trips it for free.
func (r *Rand) NormFloat64() float64 {
	if r.policy == NormZiggurat {
		return r.zigNormFloat64()
	}
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		//lint:allow floatcmp exact zero guard before dividing by s
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// State returns the complete generator state.
func (r *Rand) State() RandState {
	return RandState{S: r.s, Spare: r.spare, HaveSpare: r.haveSpare}
}

// SetState restores a state previously captured with State. The policy is
// configuration and stays as constructed.
func (r *Rand) SetState(s RandState) {
	r.s = s.S
	r.spare = s.Spare
	r.haveSpare = s.HaveSpare
}

// Ziggurat tables for the standard normal, 128 layers. zigX[i] is layer
// i's right edge (zigX[0] is the base layer's virtual width V/f(R), which
// makes the rectangle test below uniform across layers); zigRatio[i] =
// zigX[i+1]/zigX[i] is the precomputed inside-rectangle threshold. The
// tables are deterministic constants; computing them at init keeps the
// source readable without 128-entry literal blocks.
const (
	zigLayers = 128
	// zigTailR is the base-layer split point r: beyond it the tail is
	// sampled exactly; V is the equal area of every layer.
	zigTailR = 3.442619855899
	zigV     = 9.91256303526217e-3
)

var (
	zigX     [zigLayers + 1]float64
	zigRatio [zigLayers]float64
)

func init() {
	f := math.Exp(-0.5 * zigTailR * zigTailR)
	zigX[0] = zigV / f
	zigX[1] = zigTailR
	zigX[zigLayers] = 0
	for i := 2; i < zigLayers; i++ {
		zigX[i] = math.Sqrt(-2 * math.Log(zigV/zigX[i-1]+f))
		f = math.Exp(-0.5 * zigX[i] * zigX[i])
	}
	for i := 0; i < zigLayers; i++ {
		zigRatio[i] = zigX[i+1] / zigX[i]
	}
}

// zigNormFloat64 draws one deviate via the ziggurat: pick a layer and a
// signed uniform; inside the layer's rectangle the draw is done, otherwise
// fall through to the exact tail (layer 0) or the wedge rejection test.
func (r *Rand) zigNormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		i := r.next() & (zigLayers - 1)
		if math.Abs(u) < zigRatio[i] {
			return u * zigX[i]
		}
		if i == 0 {
			return r.zigTail(u < 0)
		}
		x := u * zigX[i]
		f0 := math.Exp(-0.5 * (zigX[i]*zigX[i] - x*x))
		f1 := math.Exp(-0.5 * (zigX[i+1]*zigX[i+1] - x*x))
		if f1+r.Float64()*(f0-f1) < 1.0 {
			return x
		}
	}
}

// zigTail samples the normal tail beyond zigTailR exactly (Marsaglia's
// method). A zero uniform yields -Inf intermediates that simply fail the
// acceptance test, so the loop is total.
func (r *Rand) zigTail(negative bool) float64 {
	for {
		x := math.Log(r.Float64()) / zigTailR // x <= 0
		y := math.Log(r.Float64())
		if -2*y >= x*x {
			if negative {
				return x - zigTailR
			}
			return zigTailR - x
		}
	}
}
