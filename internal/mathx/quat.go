package mathx

import (
	"fmt"
	"math"
)

// Quat is a unit quaternion representing a rotation, stored as
// (W, X, Y, Z) with W the scalar part. By convention throughout the
// simulator a Quat rotates vectors from the body frame to the world frame
// (Hamilton convention, right-handed).
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle returns the rotation of angle radians about the given
// axis. The axis need not be normalized; a zero axis yields the identity.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	n := axis.Norm()
	//lint:allow floatcmp exact zero-norm guard before dividing by the norm
	if n == 0 {
		return QuatIdentity()
	}
	// Sincos shares one argument reduction between the two values and is
	// bit-identical to separate Sin/Cos calls (same kernel polynomials).
	sinHalf, cosHalf := math.Sincos(angle / 2)
	s := sinHalf / n
	return Quat{W: cosHalf, X: axis.X * s, Y: axis.Y * s, Z: axis.Z * s}
}

// QuatFromEuler builds a rotation from aerospace Euler angles
// (roll about X, pitch about Y, yaw about Z), applied in yaw-pitch-roll
// order (ZYX convention), radians.
func QuatFromEuler(roll, pitch, yaw float64) Quat {
	sr, cr := math.Sincos(roll / 2)
	sp, cp := math.Sincos(pitch / 2)
	sy, cy := math.Sincos(yaw / 2)
	return Quat{
		W: cr*cp*cy + sr*sp*sy,
		X: sr*cp*cy - cr*sp*sy,
		Y: cr*sp*cy + sr*cp*sy,
		Z: cr*cp*sy - sr*sp*cy,
	}
}

// QuatFromRotVec builds a rotation from a rotation vector (axis * angle).
func QuatFromRotVec(rv Vec3) Quat {
	angle := rv.Norm()
	if angle < 1e-12 {
		// First-order small-angle expansion keeps prediction smooth.
		return Quat{W: 1, X: rv.X / 2, Y: rv.Y / 2, Z: rv.Z / 2}.Normalized()
	}
	return QuatFromAxisAngle(rv, angle)
}

// QuatFromMatrix converts a rotation matrix (body → world) to a unit
// quaternion using Shepperd's method, choosing the numerically largest
// component first.
func QuatFromMatrix(m Mat3) Quat {
	tr := m.Trace()
	var q Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = Quat{
			W: s / 4,
			X: (m.M[2][1] - m.M[1][2]) / s,
			Y: (m.M[0][2] - m.M[2][0]) / s,
			Z: (m.M[1][0] - m.M[0][1]) / s,
		}
	case m.M[0][0] > m.M[1][1] && m.M[0][0] > m.M[2][2]:
		s := math.Sqrt(1+m.M[0][0]-m.M[1][1]-m.M[2][2]) * 2
		q = Quat{
			W: (m.M[2][1] - m.M[1][2]) / s,
			X: s / 4,
			Y: (m.M[0][1] + m.M[1][0]) / s,
			Z: (m.M[0][2] + m.M[2][0]) / s,
		}
	case m.M[1][1] > m.M[2][2]:
		s := math.Sqrt(1+m.M[1][1]-m.M[0][0]-m.M[2][2]) * 2
		q = Quat{
			W: (m.M[0][2] - m.M[2][0]) / s,
			X: (m.M[0][1] + m.M[1][0]) / s,
			Y: s / 4,
			Z: (m.M[1][2] + m.M[2][1]) / s,
		}
	default:
		s := math.Sqrt(1+m.M[2][2]-m.M[0][0]-m.M[1][1]) * 2
		q = Quat{
			W: (m.M[1][0] - m.M[0][1]) / s,
			X: (m.M[0][2] + m.M[2][0]) / s,
			Y: (m.M[1][2] + m.M[2][1]) / s,
			Z: s / 4,
		}
	}
	return q.Normalized()
}

// Mul returns the Hamilton product q*r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit norm. A zero quaternion becomes the
// identity, so downstream rotation code never sees an invalid rotation.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	//lint:allow floatcmp exact zero-norm guard before dividing by the norm
	if n == 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return QuatIdentity()
	}
	return Quat{W: q.W / n, X: q.X / n, Y: q.Y / n, Z: q.Z / n}
}

// Rotate applies the rotation to v (body → world under the simulator's
// convention).
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = v + 2*qv × (qv × v + w*v)
	qv := Vec3{q.X, q.Y, q.Z}
	t := qv.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(qv.Cross(t))
}

// RotateInv applies the inverse rotation to v (world → body).
func (q Quat) RotateInv(v Vec3) Vec3 { return q.Conj().Rotate(v) }

// RotationMatrix returns the equivalent rotation matrix (body → world).
func (q Quat) RotationMatrix() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{M: [3][3]float64{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}}
}

// Euler returns the (roll, pitch, yaw) aerospace Euler angles in radians.
func (q Quat) Euler() (roll, pitch, yaw float64) {
	// Roll (x-axis rotation).
	sinr := 2 * (q.W*q.X + q.Y*q.Z)
	cosr := 1 - 2*(q.X*q.X+q.Y*q.Y)
	roll = math.Atan2(sinr, cosr)

	// Pitch (y-axis rotation), clamped at the gimbal-lock singularity.
	sinp := 2 * (q.W*q.Y - q.Z*q.X)
	if math.Abs(sinp) >= 1 {
		pitch = math.Copysign(math.Pi/2, sinp)
	} else {
		pitch = math.Asin(sinp)
	}

	// Yaw (z-axis rotation).
	siny := 2 * (q.W*q.Z + q.X*q.Y)
	cosy := 1 - 2*(q.Y*q.Y+q.Z*q.Z)
	yaw = math.Atan2(siny, cosy)
	return roll, pitch, yaw
}

// Integrate advances the rotation by body angular rate omega (rad/s) over
// dt seconds using the exact exponential map, and renormalizes.
func (q Quat) Integrate(omega Vec3, dt float64) Quat {
	dq := QuatFromRotVec(omega.Scale(dt))
	return q.Mul(dq).Normalized()
}

// AngleTo returns the absolute rotation angle in radians between q and r.
func (q Quat) AngleTo(r Quat) float64 {
	d := q.Conj().Mul(r)
	w := Clamp(math.Abs(d.W), 0, 1)
	return 2 * math.Acos(w)
}

// TiltAngle returns the angle in radians between the body Z axis and the
// world vertical — 0 for level hover, pi for fully inverted. It is the
// quantity the crash detector uses to decide a flip-over.
func (q Quat) TiltAngle() float64 {
	// World down expressed in the body frame; its Z component is cos(tilt).
	bodyDown := q.RotateInv(Vec3{0, 0, 1})
	return math.Acos(Clamp(bodyDown.Z, -1, 1))
}

// IsFinite reports whether all components are finite.
func (q Quat) IsFinite() bool {
	return isFinite(q.W) && isFinite(q.X) && isFinite(q.Y) && isFinite(q.Z)
}

// String implements fmt.Stringer.
func (q Quat) String() string {
	return fmt.Sprintf("q(%.4g, %.4g, %.4g, %.4g)", q.W, q.X, q.Y, q.Z)
}
