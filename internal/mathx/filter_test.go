package mathx

import (
	"math"
	"testing"
)

func TestLowPassConvergesToConstant(t *testing.T) {
	lp := NewLowPass(5, 0.01)
	var got float64
	for i := 0; i < 1000; i++ {
		got = lp.Update(10)
	}
	if !almostEq(got, 10, 1e-6) {
		t.Errorf("converged to %v, want 10", got)
	}
}

func TestLowPassFirstSamplePrimes(t *testing.T) {
	lp := NewLowPass(1, 0.01)
	if got := lp.Update(42); got != 42 {
		t.Errorf("first sample = %v, want 42 (must prime, not decay from 0)", got)
	}
}

func TestLowPassZeroCutoffIsPassThrough(t *testing.T) {
	lp := NewLowPass(0, 0.01)
	lp.Init(0)
	if got := lp.Update(7); got != 7 {
		t.Errorf("pass-through got %v, want 7", got)
	}
}

func TestLowPassAttenuatesHighFrequency(t *testing.T) {
	// A 50 Hz sine through a 2 Hz low-pass should come out much smaller.
	const dt = 0.001
	lp := NewLowPass(2, dt)
	var maxOut float64
	for i := 0; i < 5000; i++ {
		ti := float64(i) * dt
		out := lp.Update(math.Sin(2 * math.Pi * 50 * ti))
		if i > 1000 && math.Abs(out) > maxOut {
			maxOut = math.Abs(out)
		}
	}
	if maxOut > 0.1 {
		t.Errorf("high-frequency leakage %v, want < 0.1", maxOut)
	}
}

func TestLowPass3ComponentWise(t *testing.T) {
	lp := NewLowPass3(5, 0.01)
	lp.Init(Zero3)
	var got Vec3
	for i := 0; i < 1000; i++ {
		got = lp.Update(V3(1, 2, 3))
	}
	if !vecAlmostEq(got, V3(1, 2, 3), 1e-6) {
		t.Errorf("converged to %v", got)
	}
	if !vecAlmostEq(lp.Value(), got, 0) {
		t.Errorf("Value() = %v, want %v", lp.Value(), got)
	}
}

func TestDerivativeOfRamp(t *testing.T) {
	const dt = 0.001
	d := NewDerivative(30, dt)
	var got float64
	for i := 0; i < 2000; i++ {
		got = d.Update(3 * float64(i) * dt) // slope 3
	}
	if !almostEq(got, 3, 1e-3) {
		t.Errorf("derivative = %v, want 3", got)
	}
}

func TestDerivativeFirstSampleZero(t *testing.T) {
	d := NewDerivative(30, 0.001)
	if got := d.Update(100); got != 0 {
		t.Errorf("first derivative sample = %v, want 0", got)
	}
}

func TestDerivativeReset(t *testing.T) {
	d := NewDerivative(30, 0.001)
	d.Update(0)
	d.Update(1)
	d.Reset()
	if got := d.Update(500); got != 0 {
		t.Errorf("after reset, first sample = %v, want 0", got)
	}
}

func TestRateLimiter(t *testing.T) {
	rl := NewRateLimiter(10, 0.1) // max step 1 per update
	if got := rl.Update(0); got != 0 {
		t.Fatalf("prime = %v", got)
	}
	if got := rl.Update(5); !almostEq(got, 1, 1e-12) {
		t.Errorf("step 1 = %v, want 1", got)
	}
	if got := rl.Update(5); !almostEq(got, 2, 1e-12) {
		t.Errorf("step 2 = %v, want 2", got)
	}
	// Downward slew is limited too.
	if got := rl.Update(-5); !almostEq(got, 1, 1e-12) {
		t.Errorf("down step = %v, want 1", got)
	}
}

func TestRateLimiterReachesTarget(t *testing.T) {
	rl := NewRateLimiter(100, 0.01)
	rl.Update(0)
	var got float64
	for i := 0; i < 200; i++ {
		got = rl.Update(50)
	}
	if !almostEq(got, 50, 1e-9) {
		t.Errorf("settled at %v, want 50", got)
	}
}
