package mathx

import "math"

// ApproxEqual reports whether a and b agree to within tol (absolute
// difference). It is the tolerance compare the floatcmp analyzer points
// to: accumulated floating-point state must never be compared with ==,
// whose result flips with any reordering of arithmetic. NaN never
// compares equal to anything, matching IEEE semantics.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
