package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if !almostEq(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; unbiased is 32/7.
	if !almostEq(r.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Error("empty Running must report zeros")
	}
}

func TestRunningSingleSampleVarZero(t *testing.T) {
	var r Running
	r.Add(3)
	if r.Var() != 0 {
		t.Errorf("Var of single sample = %v", r.Var())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Running
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEq(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !almostEq(a.Var(), whole.Var(), 1e-9) {
		t.Errorf("merged Var = %v, want %v", a.Var(), whole.Var())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var empty, filled Running
	filled.Add(1)
	filled.Add(3)

	target := filled
	target.Merge(empty)
	if target.N() != 2 || target.Mean() != 2 {
		t.Error("merging empty changed stats")
	}

	var dst Running
	dst.Merge(filled)
	if dst.N() != 2 || dst.Mean() != 2 {
		t.Error("merging into empty lost stats")
	}
}

func TestMeanAndMedian(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Median even = %v", got)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {-5, 10}, {105, 40}, {50, 25},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

// Property: Running.Mean matches the batch Mean, and min <= mean <= max.
func TestRunningMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			xs = append(xs, math.Mod(clampInput(x), 1e4))
		}
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		tol := 1e-7 * (1 + math.Abs(r.Mean()))
		return almostEq(r.Mean(), Mean(xs), tol) &&
			r.Min() <= r.Mean()+tol && r.Mean() <= r.Max()+tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
