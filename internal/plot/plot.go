// Package plot renders simple SVG charts from flight data — the
// counterpart of the paper's Figures 3-5 (trajectory views) and Figure 2
// (bubble layers). Pure stdlib: the SVG is written by hand, which keeps
// the output small, deterministic, and dependency-free.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named polyline.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data points (equal length).
	X, Y []float64
	// Color is any SVG color (empty: auto-assigned).
	Color string
	// Dashed draws a dashed stroke (reference/planned paths).
	Dashed bool
}

// Marker is one annotated point (fault onset, crash site, ...).
type Marker struct {
	X, Y  float64
	Label string
	Color string
}

// Chart is a 2-D line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Series []Series
	Marks  []Marker
	// EqualAspect forces equal X/Y scaling (trajectory maps).
	EqualAspect bool
}

var autoColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// validData reports whether v is plottable.
func validData(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// WriteSVG renders the chart.
func (c Chart) WriteSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const marginL, marginR, marginT, marginB = 64, 20, 40, 48
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	if plotW <= 0 || plotH <= 0 {
		return fmt.Errorf("plot: chart %dx%d too small", width, height)
	}

	// Data bounds over all series and markers.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	consider := func(x, y float64) {
		if !validData(x) || !validData(y) {
			return
		}
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	for _, s := range c.Series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			consider(s.X[i], s.Y[i])
		}
	}
	for _, m := range c.Marks {
		consider(m.X, m.Y)
	}
	if minX > maxX || minY > maxY {
		return fmt.Errorf("plot: no plottable data")
	}
	//lint:allow floatcmp exact guard: only a truly degenerate range breaks the scale
	if maxX == minX {
		maxX = minX + 1
	}
	//lint:allow floatcmp exact guard: only a truly degenerate range breaks the scale
	if maxY == minY {
		maxY = minY + 1
	}
	// 5% padding.
	padX := (maxX - minX) * 0.05
	padY := (maxY - minY) * 0.05
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	if c.EqualAspect {
		// Expand the smaller span so units/pixel match.
		spanX, spanY := maxX-minX, maxY-minY
		unitX, unitY := spanX/plotW, spanY/plotH
		if unitX > unitY {
			grow := (unitX*plotH - spanY) / 2
			minY, maxY = minY-grow, maxY+grow
		} else {
			grow := (unitY*plotW - spanX) / 2
			minX, maxX = minX-grow, maxX+grow
		}
	}

	sx := func(x float64) float64 { return float64(marginL) + (x-minX)/(maxX-minX)*plotW }
	sy := func(y float64) float64 { return float64(marginT) + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)

	// Axes and grid.
	fmt.Fprintf(&b, `<g stroke="#ccc" stroke-width="1">`+"\n")
	for i := 0; i <= 5; i++ {
		gx := float64(marginL) + plotW*float64(i)/5
		gy := float64(marginT) + plotH*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f"/>`+"\n", gx, marginT, gx, float64(marginT)+plotH)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", marginL, gy, float64(marginL)+plotW, gy)
	}
	fmt.Fprint(&b, "</g>\n")
	fmt.Fprintf(&b, `<g font-family="sans-serif" font-size="11" fill="#333">`+"\n")
	for i := 0; i <= 5; i++ {
		vx := minX + (maxX-minX)*float64(i)/5
		vy := maxY - (maxY-minY)*float64(i)/5
		gx := float64(marginL) + plotW*float64(i)/5
		gy := float64(marginT) + plotH*float64(i)/5
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			gx, float64(marginT)+plotH+16, formatTick(vx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-6, gy+4, formatTick(vy))
	}
	fmt.Fprint(&b, "</g>\n")

	// Series.
	for i, s := range c.Series {
		color := s.Color
		if color == "" {
			color = autoColors[i%len(autoColors)]
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8"%s points="`, color, dash)
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for j := 0; j < n; j++ {
			if !validData(s.X[j]) || !validData(s.Y[j]) {
				continue
			}
			fmt.Fprintf(&b, "%.1f,%.1f ", sx(s.X[j]), sy(s.Y[j]))
		}
		fmt.Fprint(&b, `"/>`+"\n")
	}

	// Markers.
	for _, m := range c.Marks {
		if !validData(m.X) || !validData(m.Y) {
			continue
		}
		color := m.Color
		if color == "" {
			color = "#d62728"
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s"/>`+"\n", sx(m.X), sy(m.Y), color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n",
			sx(m.X)+6, sy(m.Y)-6, color, escape(m.Label))
	}

	// Legend.
	fmt.Fprintf(&b, `<g font-family="sans-serif" font-size="12">`+"\n")
	lx, ly := float64(marginL)+8, float64(marginT)+14
	for i, s := range c.Series {
		color := s.Color
		if color == "" {
			color = autoColors[i%len(autoColors)]
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" fill="#111">%s</text>`+"\n", lx+24, ly, escape(s.Name))
		ly += 16
	}
	fmt.Fprint(&b, "</g>\n")

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold" fill="#111">%s</text>`+"\n",
		marginL, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" fill="#111">%s</text>`+"\n",
		float64(marginL)+plotW/2, height-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" fill="#111" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, escape(c.YLabel))

	fmt.Fprint(&b, "</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
