package plot

import (
	"io"

	"uavres/internal/mission"
	"uavres/internal/sim"
)

// TrajectoryFigure renders a paper-style figure: the mission's planned
// route (dashed) against the flown true and estimated trajectories, with
// the fault-onset point marked — the view in the paper's Figures 3-5.
func TrajectoryFigure(w io.Writer, m mission.Mission, res sim.Result, faultStartSec float64) error {
	planned := Series{Name: "planned route", Dashed: true, Color: "#555"}
	planned.X = append(planned.X, m.Start.Y)
	planned.Y = append(planned.Y, m.Start.X)
	for _, wp := range m.Waypoints {
		planned.X = append(planned.X, wp.Y)
		planned.Y = append(planned.Y, wp.X)
	}

	flown := Series{Name: "flown (truth)", Color: "#1f77b4"}
	estimated := Series{Name: "EKF estimate", Color: "#2ca02c"}
	var marks []Marker
	for _, p := range res.Trajectory {
		flown.X = append(flown.X, p.TruePos.Y)
		flown.Y = append(flown.Y, p.TruePos.X)
		estimated.X = append(estimated.X, p.EstPos.Y)
		estimated.Y = append(estimated.Y, p.EstPos.X)
	}
	if faultStartSec > 0 {
		for _, p := range res.Trajectory {
			if p.T >= faultStartSec {
				marks = append(marks, Marker{X: p.TruePos.Y, Y: p.TruePos.X, Label: "fault onset", Color: "#ff7f0e"})
				break
			}
		}
	}
	if n := len(res.Trajectory); n > 0 && !res.Outcome.Completed() {
		last := res.Trajectory[n-1]
		marks = append(marks, Marker{X: last.TruePos.Y, Y: last.TruePos.X, Label: string(res.Outcome.String()), Color: "#d62728"})
	}

	chart := Chart{
		Title:       res.Label() + " — " + m.Name,
		XLabel:      "east (m)",
		YLabel:      "north (m)",
		EqualAspect: true,
		Series:      []Series{planned, flown, estimated},
		Marks:       marks,
	}
	return chart.WriteSVG(w)
}

// AltitudeFigure renders altitude-over-time for a flight, marking the
// fault window — the vertical companion of the trajectory view.
func AltitudeFigure(w io.Writer, res sim.Result, faultStartSec, faultEndSec float64) error {
	trueAlt := Series{Name: "altitude (truth)", Color: "#1f77b4"}
	estAlt := Series{Name: "altitude (EKF)", Color: "#2ca02c"}
	for _, p := range res.Trajectory {
		trueAlt.X = append(trueAlt.X, p.T)
		trueAlt.Y = append(trueAlt.Y, -p.TruePos.Z)
		estAlt.X = append(estAlt.X, p.T)
		estAlt.Y = append(estAlt.Y, -p.EstPos.Z)
	}
	var marks []Marker
	for _, p := range res.Trajectory {
		if faultStartSec > 0 && p.T >= faultStartSec {
			marks = append(marks, Marker{X: p.T, Y: -p.TruePos.Z, Label: "fault on", Color: "#ff7f0e"})
			break
		}
	}
	for _, p := range res.Trajectory {
		if faultEndSec > 0 && p.T >= faultEndSec {
			marks = append(marks, Marker{X: p.T, Y: -p.TruePos.Z, Label: "fault off", Color: "#9467bd"})
			break
		}
	}
	chart := Chart{
		Title:  res.Label() + " — altitude",
		XLabel: "time (s)",
		YLabel: "altitude (m)",
		Series: []Series{trueAlt, estAlt},
		Marks:  marks,
	}
	return chart.WriteSVG(w)
}

// BubbleFigure renders the two-layer bubble radii against the drone's
// deviation over time (the paper's Figure 2 concept, as a time series).
func BubbleFigure(w io.Writer, times, deviations, inner, outer []float64) error {
	chart := Chart{
		Title:  "two-layer bubble: deviation vs. radii",
		XLabel: "time (s)",
		YLabel: "meters",
		Series: []Series{
			{Name: "deviation from route", X: times, Y: deviations, Color: "#d62728"},
			{Name: "inner (alert) bubble", X: times, Y: inner, Color: "#1f77b4", Dashed: true},
			{Name: "outer (safety) bubble", X: times, Y: outer, Color: "#2ca02c", Dashed: true},
		},
	}
	return chart.WriteSVG(w)
}
