package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/sim"
)

func simpleChart() Chart {
	return Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}, Dashed: true},
		},
		Marks: []Marker{{X: 1, Y: 1, Label: "cross"}},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := simpleChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "test chart", "cross",
		"stroke-dasharray", // the dashed series
		">a<", ">b<",       // legend entries
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2", strings.Count(svg, "<polyline"))
	}
}

func TestWriteSVGEscapesLabels(t *testing.T) {
	c := simpleChart()
	c.Title = `danger <script> & "quotes"`
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Error("unescaped markup in SVG output")
	}
	if !strings.Contains(buf.String(), "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}

func TestWriteSVGRejectsEmptyData(t *testing.T) {
	c := Chart{Series: []Series{{Name: "none"}}}
	if err := c.WriteSVG(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
}

func TestWriteSVGSkipsNonFinite(t *testing.T) {
	c := Chart{
		Series: []Series{{
			Name: "nan",
			X:    []float64{0, 1, 2, 3},
			Y:    []float64{0, math.NaN(), math.Inf(1), 3},
		}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Error("non-finite values leaked into SVG")
	}
}

func TestWriteSVGConstantSeries(t *testing.T) {
	// A constant series (zero Y span) must not divide by zero.
	c := Chart{Series: []Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}}}}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<polyline") {
		t.Error("flat series not drawn")
	}
}

func TestEqualAspect(t *testing.T) {
	c := Chart{
		EqualAspect: true,
		Width:       400, Height: 400,
		Series: []Series{{Name: "line", X: []float64{0, 100}, Y: []float64{0, 1}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}

func testMissionAndResult() (mission.Mission, sim.Result) {
	m := mission.Mission{
		ID: 1, Name: "fig test", CruiseSpeedMS: 3, AltitudeM: 15,
		Drone:     mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 100, Y: 50, Z: -15}},
	}
	res := sim.Result{MissionID: 1, Outcome: sim.OutcomeCrash, CrashReason: "hard impact"}
	for i := 0; i <= 60; i++ {
		tm := float64(i)
		res.Trajectory = append(res.Trajectory, sim.TrajPoint{
			T:       tm,
			TruePos: mathx.V3(tm*1.5, tm*0.7, -15),
			EstPos:  mathx.V3(tm*1.5+0.2, tm*0.7-0.1, -14.9),
		})
	}
	return m, res
}

func TestTrajectoryFigure(t *testing.T) {
	m, res := testMissionAndResult()
	var buf bytes.Buffer
	if err := TrajectoryFigure(&buf, m, res, 30); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"planned route", "flown (truth)", "EKF estimate", "fault onset", "crash"} {
		if !strings.Contains(svg, want) {
			t.Errorf("trajectory figure missing %q", want)
		}
	}
}

func TestAltitudeFigure(t *testing.T) {
	_, res := testMissionAndResult()
	var buf bytes.Buffer
	if err := AltitudeFigure(&buf, res, 30, 40); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"altitude (truth)", "fault on", "fault off"} {
		if !strings.Contains(svg, want) {
			t.Errorf("altitude figure missing %q", want)
		}
	}
}

func TestBubbleFigure(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	var buf bytes.Buffer
	err := BubbleFigure(&buf, times,
		[]float64{0.1, 0.5, 7, 2},
		[]float64{5.8, 5.8, 5.8, 5.8},
		[]float64{5.8, 6.1, 9.2, 6.0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inner (alert) bubble") {
		t.Error("bubble figure missing series")
	}
}
