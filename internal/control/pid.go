// Package control implements the cascaded flight controller that replaces
// PX4's multicopter control stack in the paper's setup: position →
// velocity → attitude → body-rate loops feeding the mixer.
//
// The loop structure mirrors PX4 in the one respect the paper's results
// hinge on: the innermost body-rate loop consumes the RAW gyroscope
// stream, not the EKF attitude, while the outer loops consume EKF
// estimates. This is why gyro faults destabilize the vehicle within
// milliseconds while accelerometer faults merely corrupt navigation.
package control

import (
	"uavres/internal/mathx"
)

// PID is a scalar PID controller with integral anti-windup clamping and a
// low-pass filtered derivative term.
type PID struct {
	// Kp, Ki, Kd are the proportional, integral, and derivative gains.
	Kp, Ki, Kd float64
	// IntLimit bounds the absolute integral contribution (anti-windup).
	IntLimit float64
	// OutLimit bounds the absolute output; zero means unbounded.
	OutLimit float64

	integral float64
	deriv    *mathx.Derivative
}

// NewPID returns a PID for a loop running every dt seconds; the derivative
// term is low-pass filtered at derivCutoffHz.
func NewPID(kp, ki, kd, intLimit, outLimit, derivCutoffHz, dt float64) *PID {
	return &PID{
		Kp: kp, Ki: ki, Kd: kd,
		IntLimit: intLimit, OutLimit: outLimit,
		deriv: mathx.NewDerivative(derivCutoffHz, dt),
	}
}

// Update computes the control output for the given error over dt seconds.
func (c *PID) Update(err, dt float64) float64 {
	c.integral += err * c.Ki * dt
	c.integral = mathx.Clamp(c.integral, -c.IntLimit, c.IntLimit)
	out := c.Kp*err + c.integral + c.Kd*c.deriv.Update(err)
	if c.OutLimit > 0 {
		out = mathx.Clamp(out, -c.OutLimit, c.OutLimit)
	}
	return out
}

// Reset clears integral and derivative state.
func (c *PID) Reset() {
	c.integral = 0
	c.deriv.Reset()
}

// Integral returns the current integral contribution (diagnostics).
func (c *PID) Integral() float64 { return c.integral }

// PIDState is the snapshot-able dynamic state of one PID loop.
type PIDState struct {
	Integral float64
	Deriv    mathx.DerivativeState
}

// Snapshot captures the integral and derivative-filter state.
func (c *PID) Snapshot() PIDState {
	return PIDState{Integral: c.integral, Deriv: c.deriv.Snapshot()}
}

// Restore reinstates a state captured with Snapshot.
func (c *PID) Restore(s PIDState) {
	c.integral = s.Integral
	c.deriv.Restore(s.Deriv)
}

// PID3 applies three independent PID controllers to a vector error.
type PID3 struct {
	x, y, z *PID
}

// NewPID3 builds a vector PID with per-axis gains. Gains are given as
// vectors so the vertical axis can be tuned separately.
func NewPID3(kp, ki, kd mathx.Vec3, intLimit, outLimit mathx.Vec3, derivCutoffHz, dt float64) *PID3 {
	return &PID3{
		x: NewPID(kp.X, ki.X, kd.X, intLimit.X, outLimit.X, derivCutoffHz, dt),
		y: NewPID(kp.Y, ki.Y, kd.Y, intLimit.Y, outLimit.Y, derivCutoffHz, dt),
		z: NewPID(kp.Z, ki.Z, kd.Z, intLimit.Z, outLimit.Z, derivCutoffHz, dt),
	}
}

// Update computes the vector control output.
func (c *PID3) Update(err mathx.Vec3, dt float64) mathx.Vec3 {
	return mathx.Vec3{
		X: c.x.Update(err.X, dt),
		Y: c.y.Update(err.Y, dt),
		Z: c.z.Update(err.Z, dt),
	}
}

// Reset clears all three axes.
func (c *PID3) Reset() {
	c.x.Reset()
	c.y.Reset()
	c.z.Reset()
}

// PID3State is the snapshot-able dynamic state of a vector PID.
type PID3State struct {
	X, Y, Z PIDState
}

// Snapshot captures all three axes.
func (c *PID3) Snapshot() PID3State {
	return PID3State{X: c.x.Snapshot(), Y: c.y.Snapshot(), Z: c.z.Snapshot()}
}

// Restore reinstates a state captured with Snapshot.
func (c *PID3) Restore(s PID3State) {
	c.x.Restore(s.X)
	c.y.Restore(s.Y)
	c.z.Restore(s.Z)
}
