package control

import (
	"math"
	"testing"

	"uavres/internal/mathx"
)

func TestPIDProportional(t *testing.T) {
	c := NewPID(2, 0, 0, 0, 0, 30, 0.01)
	if got := c.Update(3, 0.01); got != 6 {
		t.Errorf("P-only output = %v, want 6", got)
	}
}

func TestPIDIntegralAccumulatesAndClamps(t *testing.T) {
	c := NewPID(0, 1, 0, 0.5, 0, 30, 0.01)
	var out float64
	for i := 0; i < 1000; i++ {
		out = c.Update(1, 0.01)
	}
	if math.Abs(out-0.5) > 1e-9 {
		t.Errorf("integral output = %v, want clamped at 0.5", out)
	}
	if got := c.Integral(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Integral() = %v", got)
	}
}

func TestPIDOutputLimit(t *testing.T) {
	c := NewPID(100, 0, 0, 0, 5, 30, 0.01)
	if got := c.Update(10, 0.01); got != 5 {
		t.Errorf("output = %v, want clamped 5", got)
	}
	if got := c.Update(-10, 0.01); got != -5 {
		t.Errorf("output = %v, want clamped -5", got)
	}
}

func TestPIDDerivativeOpposesChange(t *testing.T) {
	c := NewPID(0, 0, 1, 0, 0, 50, 0.01)
	c.Update(0, 0.01)
	// Error jumping upward gives a positive derivative term.
	got := c.Update(1, 0.01)
	if got <= 0 {
		t.Errorf("derivative response = %v, want > 0", got)
	}
}

func TestPIDReset(t *testing.T) {
	c := NewPID(1, 1, 1, 10, 0, 30, 0.01)
	for i := 0; i < 100; i++ {
		c.Update(2, 0.01)
	}
	c.Reset()
	if c.Integral() != 0 {
		t.Error("Reset did not clear integral")
	}
	// After reset, a zero error yields zero output.
	if got := c.Update(0, 0.01); got != 0 {
		t.Errorf("output after reset = %v, want 0", got)
	}
}

func TestPID3IndependentAxes(t *testing.T) {
	c := NewPID3(
		mathx.V3(1, 2, 3), mathx.Zero3, mathx.Zero3,
		mathx.V3(1, 1, 1), mathx.Zero3, 30, 0.01,
	)
	got := c.Update(mathx.V3(1, 1, 1), 0.01)
	want := mathx.V3(1, 2, 3)
	if got != want {
		t.Errorf("PID3 output = %v, want %v", got, want)
	}
}
