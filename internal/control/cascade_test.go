package control

import (
	"math"
	"testing"
	"testing/quick"

	"uavres/internal/mathx"
	"uavres/internal/physics"
)

// flyClosedLoop runs the controller against the true physics with perfect
// state feedback for the given duration, returning the body. This isolates
// controller correctness from estimation.
func flyClosedLoop(t *testing.T, start physics.State, sp Setpoint, seconds float64) *physics.Body {
	t.Helper()
	params := physics.DefaultParams()
	body, err := physics.NewBody(params, physics.CalmWind())
	if err != nil {
		t.Fatal(err)
	}
	body.SetState(start)
	ctl := New(DefaultGains(), params, 0.004)
	const dt = 0.002
	steps := int(seconds / dt)
	for i := 0; i < steps; i++ {
		if i%2 == 0 { // control at 250 Hz, physics at 500 Hz
			st := body.State()
			est := Estimate{Att: st.Att, Vel: st.Vel, Pos: st.Pos}
			cmd, _ := ctl.Update(0.004, est, body.AngularRate(), sp)
			body.SetMotorCommands(cmd)
		}
		body.Step(dt)
	}
	return body
}

func hoverStart(alt float64) physics.State {
	hover := physics.DefaultParams().HoverThrustFraction()
	s := physics.State{Att: mathx.QuatIdentity()}
	s.Pos.Z = -alt
	for i := range s.Rotor {
		s.Rotor[i] = hover
	}
	return s
}

func TestHoldsPositionAtHover(t *testing.T) {
	sp := Setpoint{Pos: mathx.V3(0, 0, -15), CruiseSpeed: 5}
	body := flyClosedLoop(t, hoverStart(15), sp, 10)
	st := body.State()
	if st.Pos.Dist(sp.Pos) > 0.3 {
		t.Errorf("hover position error = %v m", st.Pos.Dist(sp.Pos))
	}
	if st.Vel.Norm() > 0.2 {
		t.Errorf("hover residual velocity = %v", st.Vel.Norm())
	}
}

func TestClimbsToAltitude(t *testing.T) {
	sp := Setpoint{Pos: mathx.V3(0, 0, -30), CruiseSpeed: 5, MaxClimb: 3}
	body := flyClosedLoop(t, hoverStart(10), sp, 15)
	if alt := body.State().AltitudeM(); math.Abs(alt-30) > 0.5 {
		t.Errorf("altitude = %v, want 30", alt)
	}
}

func TestFliesToHorizontalWaypoint(t *testing.T) {
	sp := Setpoint{Pos: mathx.V3(40, -25, -15), Yaw: math.Atan2(-25, 40), CruiseSpeed: 8}
	body := flyClosedLoop(t, hoverStart(15), sp, 25)
	st := body.State()
	if d := st.Pos.Dist(sp.Pos); d > 1.0 {
		t.Errorf("waypoint distance after 25 s = %v m", d)
	}
	if st.Att.TiltAngle() > 0.1 {
		t.Errorf("residual tilt = %v rad", st.Att.TiltAngle())
	}
}

func TestCruiseSpeedRespected(t *testing.T) {
	params := physics.DefaultParams()
	body, err := physics.NewBody(params, physics.CalmWind())
	if err != nil {
		t.Fatal(err)
	}
	body.SetState(hoverStart(15))
	ctl := New(DefaultGains(), params, 0.004)
	sp := Setpoint{Pos: mathx.V3(500, 0, -15), CruiseSpeed: 6}
	var maxSpeed float64
	const dt = 0.002
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			st := body.State()
			est := Estimate{Att: st.Att, Vel: st.Vel, Pos: st.Pos}
			cmd, _ := ctl.Update(0.004, est, body.AngularRate(), sp)
			body.SetMotorCommands(cmd)
		}
		body.Step(dt)
		if v := body.State().Vel.NormXY(); v > maxSpeed {
			maxSpeed = v
		}
	}
	if maxSpeed > 6.6 { // 10% margin over the commanded cruise
		t.Errorf("max horizontal speed = %v, cruise limit 6", maxSpeed)
	}
	if maxSpeed < 5 {
		t.Errorf("max horizontal speed = %v, vehicle barely moved", maxSpeed)
	}
}

func TestYawTracking(t *testing.T) {
	sp := Setpoint{Pos: mathx.V3(0, 0, -15), Yaw: 1.2, CruiseSpeed: 5}
	body := flyClosedLoop(t, hoverStart(15), sp, 8)
	_, _, yaw := body.State().Att.Euler()
	if math.Abs(mathx.WrapPi(yaw-1.2)) > 0.05 {
		t.Errorf("yaw = %v, want 1.2", yaw)
	}
}

func TestRecoversFromInitialTilt(t *testing.T) {
	start := hoverStart(20)
	start.Att = mathx.QuatFromEuler(0.5, -0.4, 0) // ~30 deg initial upset
	sp := Setpoint{Pos: mathx.V3(0, 0, -20), CruiseSpeed: 5}
	body := flyClosedLoop(t, start, sp, 10)
	st := body.State()
	if st.Att.TiltAngle() > 0.05 {
		t.Errorf("tilt after recovery = %v rad", st.Att.TiltAngle())
	}
	if st.Pos.Dist(sp.Pos) > 2 {
		t.Errorf("position error after upset recovery = %v", st.Pos.Dist(sp.Pos))
	}
}

func TestDescendRateLimited(t *testing.T) {
	params := physics.DefaultParams()
	body, err := physics.NewBody(params, physics.CalmWind())
	if err != nil {
		t.Fatal(err)
	}
	body.SetState(hoverStart(50))
	ctl := New(DefaultGains(), params, 0.004)
	sp := Setpoint{Pos: mathx.V3(0, 0, -5), CruiseSpeed: 5, MaxDescend: 1.5}
	var maxSink float64
	const dt = 0.002
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			st := body.State()
			est := Estimate{Att: st.Att, Vel: st.Vel, Pos: st.Pos}
			cmd, _ := ctl.Update(0.004, est, body.AngularRate(), sp)
			body.SetMotorCommands(cmd)
		}
		body.Step(dt)
		if v := body.State().Vel.Z; v > maxSink {
			maxSink = v
		}
	}
	if maxSink > 1.8 {
		t.Errorf("max sink rate = %v m/s, limit 1.5", maxSink)
	}
}

func TestTiltLimit(t *testing.T) {
	f := limitTilt(mathx.V3(100, 0, -9.81), mathx.Deg2Rad(35))
	tilt := math.Atan2(f.NormXY(), -f.Z)
	if tilt > mathx.Deg2Rad(35)+1e-9 {
		t.Errorf("tilt after limit = %v deg", mathx.Rad2Deg(tilt))
	}
	// Within limits the vector is untouched.
	in := mathx.V3(1, 1, -9.81)
	if got := limitTilt(in, mathx.Deg2Rad(35)); got != in {
		t.Errorf("in-envelope vector modified: %v", got)
	}
}

func TestAttitudeFromThrustLevel(t *testing.T) {
	ctl := New(DefaultGains(), physics.DefaultParams(), 0.004)
	// Pure vertical thrust with yaw 0 is identity attitude.
	q := ctl.attitudeFromThrust(mathx.V3(0, 0, -9.81), 0)
	if q.AngleTo(mathx.QuatIdentity()) > 1e-9 {
		t.Errorf("level attitude = %v", q)
	}
	// Thrust tipped toward +X pitches forward (negative pitch in FRD... the
	// body -Z must align with the thrust direction).
	q = ctl.attitudeFromThrust(mathx.V3(3, 0, -9.81), 0)
	up := q.Rotate(mathx.V3(0, 0, -1))
	want := mathx.V3(3, 0, -9.81).Normalized()
	if up.Sub(want).Norm() > 1e-9 {
		t.Errorf("body up = %v, want %v", up, want)
	}
}

func TestControllerOutputsInRange(t *testing.T) {
	params := physics.DefaultParams()
	ctl := New(DefaultGains(), params, 0.004)
	// Garbage gyro (fault-like) must still produce valid motor commands.
	est := Estimate{Att: mathx.QuatIdentity(), Pos: mathx.V3(0, 0, -10)}
	cmd, _ := ctl.Update(0.004, est, mathx.V3(-35, 35, -35), Setpoint{Pos: mathx.V3(0, 0, -10)})
	for i, c := range cmd {
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Errorf("cmd[%d] = %v", i, c)
		}
	}
}

// TestControllerRejectsSteadyWind: under a constant 3 m/s crosswind the
// cascade's velocity integral must hold the hover position.
func TestControllerRejectsSteadyWind(t *testing.T) {
	params := physics.DefaultParams()
	wind := physics.NewWind(mathx.V3(0, 3, 0), 0, 1, nil)
	body, err := physics.NewBody(params, wind)
	if err != nil {
		t.Fatal(err)
	}
	body.SetState(hoverStart(15))
	ctl := New(DefaultGains(), params, 0.004)
	sp := Setpoint{Pos: mathx.V3(0, 0, -15), CruiseSpeed: 5}
	const dt = 0.002
	for i := 0; i < 10000; i++ { // 20 s
		if i%2 == 0 {
			st := body.State()
			est := Estimate{Att: st.Att, Vel: st.Vel, Pos: st.Pos}
			cmd, _ := ctl.Update(0.004, est, body.AngularRate(), sp)
			body.SetMotorCommands(cmd)
		}
		body.Step(dt)
	}
	if d := body.State().Pos.Dist(sp.Pos); d > 1.0 {
		t.Errorf("hover error under 3 m/s wind = %.2f m", d)
	}
}

// Property: the controller never emits NaN or out-of-range motor commands
// for arbitrary finite inputs — garbage sensor data must not corrupt the
// actuator path.
func TestControllerOutputAlwaysValid(t *testing.T) {
	params := physics.DefaultParams()
	prop := func(px, py, pz, vx, vy, vz, gx, gy, gz, qx, qy, qz float64) bool {
		ctl := New(DefaultGains(), params, 0.004)
		bound := func(x, lim float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, lim)
		}
		est := Estimate{
			Att: mathx.QuatFromEuler(bound(qx, math.Pi), bound(qy, math.Pi/2), bound(qz, math.Pi)),
			Vel: mathx.V3(bound(vx, 1e3), bound(vy, 1e3), bound(vz, 1e3)),
			Pos: mathx.V3(bound(px, 1e6), bound(py, 1e6), bound(pz, 1e6)),
		}
		gyro := mathx.V3(bound(gx, 40), bound(gy, 40), bound(gz, 40))
		sp := Setpoint{Pos: mathx.V3(0, 0, -15), CruiseSpeed: 5}
		cmd, diag := ctl.Update(0.004, est, gyro, sp)
		for _, c := range cmd {
			if math.IsNaN(c) || c < 0 || c > 1 {
				return false
			}
		}
		return !math.IsNaN(diag.ThrustN)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
