package control

import (
	"math"

	"uavres/internal/mathx"
	"uavres/internal/physics"
)

// Gains collects the cascade's tuning constants.
type Gains struct {
	// PosP is the position-error → velocity-setpoint gain (horizontal,
	// horizontal, vertical).
	PosP mathx.Vec3
	// VelP/VelI are the velocity-loop PID gains producing an acceleration
	// setpoint.
	VelP mathx.Vec3
	VelI mathx.Vec3
	// AttP is the attitude-error → rate-setpoint gain.
	AttP mathx.Vec3
	// RateP/RateI/RateD are the body-rate loop gains producing an angular
	// acceleration setpoint (multiplied by inertia into torque).
	RateP mathx.Vec3
	RateI mathx.Vec3
	RateD mathx.Vec3
	// MaxTiltRad limits commanded tilt.
	MaxTiltRad float64
	// MaxRate limits commanded body rates (roll/pitch X,Y; yaw Z), rad/s.
	MaxRate mathx.Vec3
	// MaxAccel limits the commanded horizontal acceleration (m/s^2).
	MaxAccel float64
}

// DefaultGains returns tuning for the physics.DefaultParams airframe.
func DefaultGains() Gains {
	return Gains{
		PosP:       mathx.V3(0.95, 0.95, 1.2),
		VelP:       mathx.V3(3.0, 3.0, 4.0),
		VelI:       mathx.V3(0.6, 0.6, 1.2),
		AttP:       mathx.V3(7.0, 7.0, 3.0),
		RateP:      mathx.V3(18, 18, 10),
		RateI:      mathx.V3(6, 6, 4),
		RateD:      mathx.V3(0.12, 0.12, 0),
		MaxTiltRad: mathx.Deg2Rad(35),
		MaxRate:    mathx.V3(3.8, 3.8, 1.6),
		MaxAccel:   6,
	}
}

// Estimate is the navigation solution the outer loops consume (from the
// EKF; never ground truth).
type Estimate struct {
	Att mathx.Quat
	Vel mathx.Vec3
	Pos mathx.Vec3
}

// Setpoint is the guidance command for one control cycle.
type Setpoint struct {
	// Pos is the position target (NED m).
	Pos mathx.Vec3
	// VelFF is a feed-forward velocity added to the position loop output
	// (used for trajectory tracking and forced descent during landing).
	VelFF mathx.Vec3
	// Yaw is the heading target (rad).
	Yaw float64
	// CruiseSpeed limits horizontal speed (m/s).
	CruiseSpeed float64
	// MaxClimb and MaxDescend limit vertical speed (m/s, both positive).
	MaxClimb   float64
	MaxDescend float64
}

// Diag exposes intermediate cascade quantities for logging and tests.
type Diag struct {
	VelSp    mathx.Vec3
	AccSp    mathx.Vec3
	AttSp    mathx.Quat
	RateSp   mathx.Vec3
	ThrustN  float64
	TorqueNm mathx.Vec3
}

// Controller is the cascaded flight controller. Not safe for concurrent
// use; each vehicle owns one.
type Controller struct {
	gains  Gains
	params physics.Params
	mixer  physics.Mixer

	velPID  *PID3
	ratePID *PID3

	// alloc, when non-nil, replaces the healthy mixer's allocation with a
	// reconfigured (condemned-rotor) pseudo-inverse. Derived state: the
	// vehicle re-installs it from the rotor monitor after any restore.
	//lint:allow snapshotcomplete derived from the rotor monitor's condemned set; vehicle reapplies on restore
	alloc *physics.Allocator

	// Cached sin/cos of the yaw setpoint, keyed on the exact input. The
	// guidance yaw is piecewise constant per mission leg, so the trig
	// pair is computed once per leg instead of at every control step.
	// Derived state: deliberately absent from ControllerSnapshot.
	//lint:allow snapshotcomplete derived trig cache keyed on the exact yaw input; recomputed on any change
	cacheYaw, cacheSinYaw, cacheCosYaw float64
}

// New returns a controller for the given airframe, with loops running
// every dt seconds.
func New(gains Gains, params physics.Params, dt float64) *Controller {
	return &Controller{
		gains:  gains,
		params: params,
		mixer:  physics.NewMixer(params),
		velPID: NewPID3(
			gains.VelP, gains.VelI, mathx.Zero3,
			mathx.V3(3, 3, 4),  // integral clamp (m/s^2)
			mathx.V3(8, 8, 12), // acceleration clamp (m/s^2)
			10, dt,
		),
		ratePID: NewPID3(
			gains.RateP, gains.RateI, gains.RateD,
			mathx.V3(8, 8, 4),    // integral clamp (rad/s^2)
			mathx.V3(80, 80, 40), // angular accel clamp (rad/s^2)
			30, dt,
		),
	}
}

// SetAllocator installs (or, with nil, removes) a reconfigured allocation
// that overrides the healthy mixer when distributing the wrench.
func (c *Controller) SetAllocator(a *physics.Allocator) { c.alloc = a }

// Reset clears all integrators (rearm / mode change).
func (c *Controller) Reset() {
	c.velPID.Reset()
	c.ratePID.Reset()
}

// ControllerSnapshot captures the cascade's dynamic state: the velocity
// and rate loop integrators and derivative filters (checkpointing).
type ControllerSnapshot struct {
	vel  PID3State
	rate PID3State
}

// Snapshot captures both PID loops.
func (c *Controller) Snapshot() ControllerSnapshot {
	return ControllerSnapshot{vel: c.velPID.Snapshot(), rate: c.ratePID.Snapshot()}
}

// Restore reinstates a state captured with Snapshot.
func (c *Controller) Restore(s ControllerSnapshot) {
	c.velPID.Restore(s.vel)
	c.ratePID.Restore(s.rate)
}

// Update runs one full cascade cycle and returns normalized motor
// commands. est comes from the EKF; gyroRaw is the raw (possibly
// fault-corrupted) gyro stream feeding the innermost loop.
func (c *Controller) Update(dt float64, est Estimate, gyroRaw mathx.Vec3, sp Setpoint) (physics.Rotors, Diag) {
	var d Diag

	// --- Position loop: position error -> velocity setpoint.
	posErr := sp.Pos.Sub(est.Pos)
	velSp := posErr.Hadamard(c.gains.PosP).Add(sp.VelFF)
	// Horizontal speed limit.
	cruise := sp.CruiseSpeed
	if cruise <= 0 {
		cruise = 5
	}
	if h := velSp.NormXY(); h > cruise {
		scale := cruise / h
		velSp.X *= scale
		velSp.Y *= scale
	}
	maxClimb, maxDescend := sp.MaxClimb, sp.MaxDescend
	if maxClimb <= 0 {
		maxClimb = 3
	}
	if maxDescend <= 0 {
		maxDescend = 1.5
	}
	velSp.Z = mathx.Clamp(velSp.Z, -maxClimb, maxDescend) // NED: -Z is up
	d.VelSp = velSp

	// --- Velocity loop: velocity error -> acceleration setpoint.
	accSp := c.velPID.Update(velSp.Sub(est.Vel), dt)
	if h := accSp.NormXY(); h > c.gains.MaxAccel {
		scale := c.gains.MaxAccel / h
		accSp.X *= scale
		accSp.Y *= scale
	}
	d.AccSp = accSp

	// --- Acceleration -> thrust vector and attitude setpoint.
	// Desired specific force (thrust/mass) must provide accSp and cancel
	// gravity: f = accSp - g_NED, pointing mostly up (-Z).
	fSp := accSp.Sub(mathx.V3(0, 0, physics.Gravity))
	if fSp.Z > -1 {
		fSp.Z = -1 // never command a downward or zero thrust vector
	}
	fSp = limitTilt(fSp, c.gains.MaxTiltRad)
	attSp := c.attitudeFromThrust(fSp, sp.Yaw)
	d.AttSp = attSp

	// Thrust magnitude: project the desired specific force on the CURRENT
	// body up-axis so tilt transients do not lose altitude. Both vectors
	// point "up" (negative NED Z), so the projection is positive.
	bodyUp := est.Att.Rotate(mathx.V3(0, 0, -1))
	thrustN := c.params.MassKg * math.Max(0.5, fSp.Dot(bodyUp))
	maxThrust := c.mixer.MaxTotalThrustN() * 0.95
	thrustN = mathx.Clamp(thrustN, 0.05*maxThrust, maxThrust)
	d.ThrustN = thrustN

	// --- Attitude loop: quaternion error -> body rate setpoint.
	qErr := est.Att.Conj().Mul(attSp)
	if qErr.W < 0 { // shortest rotation
		qErr = mathx.Quat{W: -qErr.W, X: -qErr.X, Y: -qErr.Y, Z: -qErr.Z}
	}
	attErrVec := mathx.V3(qErr.X, qErr.Y, qErr.Z).Scale(2)
	rateSp := attErrVec.Hadamard(c.gains.AttP).ClampVec(c.gains.MaxRate)
	d.RateSp = rateSp

	// --- Rate loop on RAW gyro: rate error -> angular accel -> torque.
	alphaSp := c.ratePID.Update(rateSp.Sub(gyroRaw), dt)
	torque := alphaSp.Hadamard(c.params.Inertia)
	d.TorqueNm = torque

	if c.alloc != nil {
		return c.alloc.Allocate(thrustN, torque), d
	}
	return c.mixer.Allocate(thrustN, torque), d
}

// limitTilt restricts the thrust vector's angle from vertical while
// preserving its vertical component.
func limitTilt(f mathx.Vec3, maxTilt float64) mathx.Vec3 {
	up := -f.Z // positive
	if up <= 0 {
		return f
	}
	maxHoriz := up * math.Tan(maxTilt)
	if h := f.NormXY(); h > maxHoriz {
		scale := maxHoriz / h
		f.X *= scale
		f.Y *= scale
	}
	return f
}

// attitudeFromThrust builds the attitude whose body -Z axis aligns with
// the desired thrust direction and whose heading is yaw.
func (c *Controller) attitudeFromThrust(fSp mathx.Vec3, yaw float64) mathx.Quat {
	//lint:allow floatcmp cache key is the exact previous input; any change recomputes
	if yaw != c.cacheYaw || (c.cacheSinYaw == 0 && c.cacheCosYaw == 0) {
		c.cacheYaw = yaw
		c.cacheSinYaw, c.cacheCosYaw = math.Sin(yaw), math.Cos(yaw)
	}
	sy, cy := c.cacheSinYaw, c.cacheCosYaw
	zB := fSp.Neg().Normalized() // body +Z (down) opposes thrust
	xC := mathx.V3(cy, sy, 0)
	yB := zB.Cross(xC)
	if yB.Norm() < 1e-6 {
		// Degenerate: thrust nearly horizontal along heading; fall back.
		yB = mathx.V3(-sy, cy, 0)
	}
	yB = yB.Normalized()
	xB := yB.Cross(zB)
	var m mathx.Mat3
	for i, col := range []mathx.Vec3{xB, yB, zB} {
		m.M[0][i] = col.X
		m.M[1][i] = col.Y
		m.M[2][i] = col.Z
	}
	return mathx.QuatFromMatrix(m)
}
