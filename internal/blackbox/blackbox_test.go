package blackbox

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/sim"
)

func crashResult() core.CaseResult {
	return core.CaseResult{
		Case: core.Case{
			ID: "m01-zeros-accel-s1", MissionID: 1, Seed: 42,
			Injection: &faultinject.Injection{
				Primitive: faultinject.Zeros, Target: faultinject.TargetAccel,
				Start: 90 * time.Second, Duration: 5 * time.Second,
			},
		},
		Result: sim.Result{
			MissionID: 1, Outcome: sim.OutcomeCrash, CrashReason: "ground impact",
			FlightDurationSec: 97.5, DistanceKm: 0.31, OuterViolations: 3,
			Diagnostics: &sim.Diagnostics{
				FirstOuterViolationSec: 93, GPSFusions: 480, GPSGateRejects: 12,
				TrajectoryTail: []sim.TrajPoint{
					{T: 95, TruePos: mathx.V3(1, 2, -15), EstPos: mathx.V3(1, 2, -14), TiltDeg: 12},
					{T: 96, TruePos: mathx.V3(1, 3, -9), EstPos: mathx.V3(5, 3, -13), TiltDeg: 48},
				},
			},
		},
	}
}

func TestShouldDump(t *testing.T) {
	crash := crashResult()
	if !ShouldDump(crash) {
		t.Error("crash case not dumped")
	}
	violated := core.CaseResult{Result: sim.Result{Outcome: sim.OutcomeCompleted, OuterViolations: 1}}
	if !ShouldDump(violated) {
		t.Error("outer-violation case not dumped")
	}
	clean := core.CaseResult{Result: sim.Result{Outcome: sim.OutcomeCompleted}}
	if ShouldDump(clean) {
		t.Error("clean completion dumped")
	}
	infra := core.CaseResult{Err: "unknown mission", Result: sim.Result{Outcome: sim.OutcomeCrash}}
	if ShouldDump(infra) {
		t.Error("infra error dumped")
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "blackbox")
	res := crashResult()
	d := FromCase(res, "deadbeef")
	path, err := Write(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "m01-zeros-accel-s1.blackbox.json" {
		t.Errorf("unexpected filename %s", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, d)
	}
	if got.Outcome != "crash" || got.SpecHash != "deadbeef" || got.Seed != 42 {
		t.Errorf("fields lost: %+v", got)
	}
	if len(got.Diagnostics.TrajectoryTail) != 2 {
		t.Errorf("tail lost: %+v", got.Diagnostics)
	}
}

func TestFilenameScrubsSeparators(t *testing.T) {
	d := Dump{CaseID: "../evil/case:1"}
	name := d.Filename()
	if filepath.Base(name) != name {
		t.Errorf("filename %q escapes its directory", name)
	}
	if name != ".._evil_case_1.blackbox.json" {
		t.Errorf("scrubbed name = %q", name)
	}
}

func TestLoadRejects(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"garbage.json":    "{not json",
		"no-case.json":    `{"version":1,"outcome":"crash"}`,
		"no-outcome.json": `{"version":1,"case_id":"x"}`,
		"future.json":     `{"version":99,"case_id":"x","outcome":"crash"}`,
		"zero-ver.json":   `{"case_id":"x","outcome":"crash"}`,
	}
	for name, content := range cases {
		if _, err := Load(write(name, content)); err == nil {
			t.Errorf("%s loaded without error", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}
