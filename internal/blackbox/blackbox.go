// Package blackbox archives failed campaign cases as standalone
// flight-recorder files. A dump is the per-case evidence that the
// aggregate outcome tables flatten away — the last seconds of trajectory,
// the EKF innovation/gate-reject statistics, and the drained trace ring —
// written as one JSON file per crash/violation case so a failing paper
// case is an inspectable artifact, not just a row in campaign_results.
package blackbox

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/sim"
)

// Version is the dump format version; Load rejects files from the future.
const Version = 1

// Dump is one case's black-box record. It embeds the full Diagnostics
// block (trajectory tail, trace events, EKF health statistics) plus
// enough case identity to re-run the exact flight.
type Dump struct {
	Version   int    `json:"version"`
	CaseID    string `json:"case_id"`
	MissionID int    `json:"mission_id"`
	Seed      int64  `json:"seed"`
	SpecHash  string `json:"spec_hash,omitempty"`

	Injection *faultinject.Injection `json:"injection,omitempty"`

	Outcome           string  `json:"outcome"`
	CrashReason       string  `json:"crash_reason,omitempty"`
	FailsafeCause     string  `json:"failsafe_cause,omitempty"`
	FlightDurationSec float64 `json:"flight_duration_sec"`
	DistanceKm        float64 `json:"distance_km"`
	InnerViolations   int     `json:"inner_violations"`
	OuterViolations   int     `json:"outer_violations"`
	WaypointsReached  int     `json:"waypoints_reached"`

	Diagnostics *sim.Diagnostics `json:"diagnostics,omitempty"`
}

// ShouldDump reports whether a finished case warrants a black-box file:
// a crash outcome, or any outer-bubble (containment) violation. Infra
// errors carry no flight to record; completed, contained flights are not
// failures.
func ShouldDump(res core.CaseResult) bool {
	if res.Err != "" {
		return false
	}
	return res.Result.Outcome == sim.OutcomeCrash || res.Result.OuterViolations > 0
}

// FromCase builds the dump for a finished case. Call it from
// Runner.OnResult, which still sees the full result — the runner strips
// Diagnostics from what it retains afterwards.
func FromCase(res core.CaseResult, specHash string) Dump {
	r := res.Result
	return Dump{
		Version:   Version,
		CaseID:    res.Case.ID,
		MissionID: res.Case.MissionID,
		Seed:      res.Case.Seed,
		SpecHash:  specHash,

		Injection: res.Case.Injection,

		Outcome:           r.Outcome.String(),
		CrashReason:       r.CrashReason,
		FailsafeCause:     r.FailsafeCause,
		FlightDurationSec: r.FlightDurationSec,
		DistanceKm:        r.DistanceKm,
		InnerViolations:   r.InnerViolations,
		OuterViolations:   r.OuterViolations,
		WaypointsReached:  r.WaypointsReached,

		Diagnostics: r.Diagnostics,
	}
}

// Filename is the dump's file name within its directory: the case ID
// (already a filesystem-safe slug) plus the black-box extension.
func (d Dump) Filename() string {
	id := d.CaseID
	if id == "" {
		id = "case"
	}
	// Case IDs are slugs by construction; scrub separators anyway so a
	// hostile results file cannot escape the dump directory.
	id = strings.Map(func(r rune) rune {
		if r == '/' || r == '\\' || r == ':' {
			return '_'
		}
		return r
	}, id)
	return id + ".blackbox.json"
}

// Write persists the dump under dir (created if missing) and returns the
// file path.
func Write(dir string, d Dump) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("blackbox: %w", err)
	}
	data, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return "", fmt.Errorf("blackbox: marshal %s: %w", d.CaseID, err)
	}
	path := filepath.Join(dir, d.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("blackbox: %w", err)
	}
	return path, nil
}

// Load reads and validates one dump file.
func Load(path string) (Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Dump{}, fmt.Errorf("blackbox: %w", err)
	}
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return Dump{}, fmt.Errorf("blackbox: parse %s: %w", path, err)
	}
	if d.Version < 1 || d.Version > Version {
		return Dump{}, fmt.Errorf("blackbox: %s: unsupported version %d", path, d.Version)
	}
	if d.CaseID == "" {
		return Dump{}, fmt.Errorf("blackbox: %s: missing case_id", path)
	}
	if d.Outcome == "" {
		return Dump{}, fmt.Errorf("blackbox: %s: missing outcome", path)
	}
	return d, nil
}
