package paperdata

import (
	"strings"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/sim"
)

func TestPublishedTablesComplete(t *testing.T) {
	if got := len(TableII()); got != 5 {
		t.Errorf("Table II rows = %d, want 5 (gold + 4 durations)", got)
	}
	if got := len(TableIII()); got != 22 {
		t.Errorf("Table III rows = %d, want 22 (gold + 21 faults)", got)
	}
	if got := len(TableIV()); got != 8 {
		t.Errorf("Table IV rows = %d, want 8 (gold + 4 durations + 3 components)", got)
	}
}

func TestPublishedValuesSanity(t *testing.T) {
	for _, r := range TableIII() {
		if r.CompletedPct < 0 || r.CompletedPct > 100 {
			t.Errorf("%s: completion %v out of range", r.Label, r.CompletedPct)
		}
		if r.DurationSec <= 0 {
			t.Errorf("%s: duration %v", r.Label, r.DurationSec)
		}
	}
	// Crash + failsafe split of failures sums to 100 for faulty rows.
	for _, r := range TableIV() {
		if r.Label == "Gold Run" {
			continue
		}
		if sum := r.CrashPct + r.FailsafePct; sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: crash+failsafe = %v", r.Label, sum)
		}
	}
}

func TestTableIIILabelsMatchInjectorLabels(t *testing.T) {
	// Every published fault label must be producible by the injector's
	// Label() — otherwise comparisons silently miss rows.
	valid := map[string]bool{}
	for _, tg := range faultinject.Targets() {
		for _, p := range faultinject.Primitives() {
			valid[faultinject.Injection{Primitive: p, Target: tg}.Label()] = true
		}
	}
	for _, r := range TableIII() {
		if r.Label == "Gold Run" {
			continue
		}
		if !valid[r.Label] {
			t.Errorf("published label %q does not match any injector label", r.Label)
		}
	}
}

// synthetic builds a results set that matches the paper's shape so the
// checks pass, then mutates it to verify checks can fail.
func synthetic(goldOK bool, accZerosPct float64) []core.CaseResult {
	var out []core.CaseResult
	mk := func(inj *faultinject.Injection, outcome sim.Outcome, inner int, dur float64) core.CaseResult {
		return core.CaseResult{
			Case: core.Case{ID: "s", MissionID: 1, Injection: inj},
			Result: sim.Result{
				Outcome: outcome, InnerViolations: inner,
				FlightDurationSec: dur,
			},
		}
	}
	goldOutcome := sim.OutcomeCompleted
	goldViol := 0
	if !goldOK {
		goldViol = 3
	}
	out = append(out, mk(nil, goldOutcome, goldViol, 480))

	durations := []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second}
	for _, tg := range faultinject.Targets() {
		for _, p := range faultinject.Primitives() {
			for di, d := range durations {
				inj := &faultinject.Injection{Primitive: p, Target: tg, Start: 90 * time.Second, Duration: d}
				outcome := sim.OutcomeCrash
				dur := 100.0
				switch {
				case tg == faultinject.TargetAccel && p == faultinject.Zeros:
					// Complete accZerosPct of the time (deterministic by
					// duration index).
					if float64(di)/4*100 < accZerosPct {
						outcome = sim.OutcomeCompleted
						dur = 470
					}
				case tg == faultinject.TargetGyro && di >= 2:
					outcome = sim.OutcomeFailsafe
				}
				out = append(out, mk(inj, outcome, 5+di*5, dur))
			}
		}
	}
	return out
}

func TestCompareShapeChecksOnSyntheticData(t *testing.T) {
	checks := Compare(synthetic(true, 100))
	if len(checks) < 10 {
		t.Fatalf("checks = %d, want a meaningful battery", len(checks))
	}
	byName := map[string]Check{}
	for _, c := range checks {
		byName[c.Name] = c
	}
	if c := byName["gold runs complete with zero violations"]; !c.Holds {
		t.Errorf("gold check failed on clean synthetic data: %+v", c)
	}
	if c := byName["Acc Zeros handled better than Acc Min"]; !c.Holds {
		t.Errorf("acc-zeros check failed: %+v", c)
	}
	if c := byName["Gyro Min never completes"]; !c.Holds {
		t.Errorf("gyro-min check failed: %+v", c)
	}
}

func TestCompareDetectsViolatedShape(t *testing.T) {
	checks := Compare(synthetic(false, 0)) // broken gold + fatal Acc Zeros
	byName := map[string]Check{}
	for _, c := range checks {
		byName[c.Name] = c
	}
	if c := byName["gold runs complete with zero violations"]; c.Holds {
		t.Error("gold check passed despite violations")
	}
	if c := byName["Acc Zeros handled better than Acc Min"]; c.Holds {
		t.Error("acc-zeros check passed despite 0% completion")
	}
}

func TestRenderReport(t *testing.T) {
	out := Render(Compare(synthetic(true, 100)))
	if !strings.Contains(out, "shape checks:") {
		t.Errorf("report missing summary: %q", out[:60])
	}
	if !strings.Contains(out, "[PASS]") {
		t.Error("report has no passing checks")
	}
	if !strings.Contains(out, "paper:") || !strings.Contains(out, "measured:") {
		t.Error("report missing paper/measured lines")
	}
}

func TestSideBySide(t *testing.T) {
	measured := []core.GroupStats{
		{Label: "Gold Run", CompletedPct: 100, DurationSec: 473},
		{Label: "2 seconds", CompletedPct: 27.1, DurationSec: 197},
	}
	out := SideBySide(TableII(), measured)
	if !strings.Contains(out, "Gold Run") || !strings.Contains(out, "491.26") {
		t.Errorf("side-by-side missing published row:\n%s", out)
	}
	if !strings.Contains(out, "473.0") {
		t.Errorf("side-by-side missing measured row:\n%s", out)
	}
	if !strings.Contains(out, "(missing)") {
		t.Error("rows without measurements should be marked missing")
	}
}
