// Package paperdata holds the numbers published in the paper's evaluation
// tables and compares a campaign's measured results against them. The
// reproduction targets the paper's qualitative shape — orderings, trends,
// crossover points — not its absolute values, and the comparison report
// checks exactly those shape properties.
package paperdata

import (
	"fmt"
	"strings"

	"uavres/internal/core"
	"uavres/internal/mathx"
)

// Row mirrors one table row as published.
type Row struct {
	Label        string
	Inner        float64
	Outer        float64
	CompletedPct float64
	DurationSec  float64
	DistanceKm   float64
}

// FailureRow mirrors one Table IV row as published.
type FailureRow struct {
	Label       string
	FailedPct   float64
	CrashPct    float64
	FailsafePct float64
}

// TableII returns the paper's Table II (grouped by injection duration).
func TableII() []Row {
	return []Row{
		{"Gold Run", 0, 0, 100, 491.26, 3.65},
		{"2 seconds", 18.30, 17.81, 20, 188.87, 0.98},
		{"5 seconds", 20.16, 16.79, 15.23, 146.07, 0.81},
		{"10 seconds", 20.97, 19.16, 11.42, 151.90, 0.69},
		{"30 seconds", 24.47, 21.65, 10.47, 154.70, 0.75},
	}
}

// TableIII returns the paper's Table III (grouped by fault type).
func TableIII() []Row {
	return []Row{
		{"Gold Run", 0, 0, 100, 491.26, 3.65},
		{"Acc Zeros", 23.36, 17.5, 67.5, 338.67, 2.45},
		{"Acc Noise", 25.23, 13.48, 60, 306.11, 2.22},
		{"Acc Freeze", 23.40, 15.82, 42.5, 244.09, 1.80},
		{"Acc Random", 20.13, 16.34, 5, 110.76, 0.55},
		{"Acc Min", 20.57, 24.25, 5, 137.18, 0.51},
		{"Acc Max", 41.32, 35.32, 2.5, 103.35, 0.73},
		{"Acc Fixed Value", 40.30, 36.51, 2.5, 103.99, 0.75},
		{"Gyro Zeros", 18.88, 18.15, 40, 223.21, 1.20},
		{"Gyro Fixed Value", 17.51, 15.90, 17.5, 159.57, 0.49},
		{"Gyro Freeze", 19.11, 21.5, 15, 145.92, 0.98},
		{"Gyro Noise", 16.01, 20.67, 10, 156.43, 0.52},
		{"Gyro Random", 16.75, 16.36, 2.5, 169.28, 0.47},
		{"Gyro Max", 16.32, 14.13, 2.5, 135.50, 0.44},
		{"Gyro Min", 19.73, 14.86, 0, 104.41, 0.47},
		{"IMU Max", 14.19, 17.34, 17.5, 212.30, 0.46},
		{"IMU Zeros", 18.17, 16.55, 2.5, 104.43, 0.52},
		{"IMU Noise", 21.19, 17.61, 2.5, 143.73, 0.48},
		{"IMU Random", 16, 15.03, 2.5, 104.66, 0.53},
		{"IMU Fixed Value", 15.67, 14.28, 2.5, 110.45, 0.53},
		{"IMU Min", 18.63, 17.61, 0, 155.08, 0.46},
		{"IMU Freeze", 18.03, 16.71, 0, 98.93, 0.46},
	}
}

// TableIV returns the paper's Table IV (failure analysis).
func TableIV() []FailureRow {
	return []FailureRow{
		{"Gold Run", 0, 0, 0},
		{"2 seconds", 80, 73, 27},
		{"5 seconds", 84.77, 73, 27},
		{"10 seconds", 88.58, 70, 30},
		{"30 seconds", 89.53, 34, 66},
		{"Acc", 73.22, 77.2, 22.8},
		{"Gyro", 87.5, 63.1, 36.9},
		{"IMU", 96.08, 47.2, 52.8},
	}
}

// Check is one shape assertion with its verdict.
type Check struct {
	Name     string
	Paper    string
	Measured string
	Holds    bool
}

// Compare evaluates the paper's headline shape properties against
// measured campaign results and returns the checks plus a pass count.
func Compare(results []core.CaseResult) []Check {
	var checks []Check
	add := func(name, paper, measured string, holds bool) {
		checks = append(checks, Check{Name: name, Paper: paper, Measured: measured, Holds: holds})
	}

	gold := core.GoldStats(results)
	byDur := core.ByDuration(results)
	byFault := core.ByFault(results)
	byComp := core.ByComponent(results)

	// Gold reference: perfect completion, zero violations.
	add("gold runs complete with zero violations",
		"100% completed, 0 violations",
		fmt.Sprintf("%.1f%% completed, %.2f/%.2f violations", gold.CompletedPct, gold.InnerViolations, gold.OuterViolations),
		mathx.ApproxEqual(gold.CompletedPct, 100, 1e-9) &&
			mathx.ApproxEqual(gold.InnerViolations, 0, 1e-9) &&
			mathx.ApproxEqual(gold.OuterViolations, 0, 1e-9))

	// Completion declines monotonically with duration.
	if len(byDur) == 4 {
		monotone := true
		for i := 1; i < len(byDur); i++ {
			if byDur[i].CompletedPct > byDur[i-1].CompletedPct+1e-9 {
				monotone = false
			}
		}
		add("completion declines with injection duration",
			"20 > 15.23 > 11.42 > 10.47 %",
			fmt.Sprintf("%.1f > %.1f > %.1f > %.1f %%",
				byDur[0].CompletedPct, byDur[1].CompletedPct, byDur[2].CompletedPct, byDur[3].CompletedPct),
			monotone)

		// Even 2-second faults fail the large majority of missions.
		add("2-second faults already fail most missions",
			"80% failed at 2 s",
			fmt.Sprintf("%.1f%% failed at 2 s", byDur[0].FailedPct),
			byDur[0].FailedPct >= 60)

		// Failsafe share grows with duration.
		add("failsafe share grows with duration",
			"27% at 2 s -> 66% at 30 s",
			fmt.Sprintf("%.1f%% at 2 s -> %.1f%% at 30 s", byDur[0].FailsafePct, byDur[3].FailsafePct),
			byDur[3].FailsafePct > byDur[0].FailsafePct)

		// Violations grow with duration (first vs last row). This check is
		// strict: in this simulator, flights under severe 30-second faults
		// terminate so quickly that few tracking instants remain to
		// violate, which can invert the paper's mild upward trend — a
		// known divergence recorded in EXPERIMENTS.md when it fails.
		add("inner violations grow with duration",
			"18.30 at 2 s -> 24.47 at 30 s",
			fmt.Sprintf("%.2f at 2 s -> %.2f at 30 s", byDur[0].InnerViolations, byDur[3].InnerViolations),
			byDur[3].InnerViolations >= byDur[0].InnerViolations)
	}

	// Component severity ordering: Acc < Gyro, Acc < IMU.
	if len(byComp) == 3 {
		acc, gyro, imu := byComp[0], byComp[1], byComp[2]
		add("component failure ordering Acc < Gyro",
			"73.22% < 87.5%",
			fmt.Sprintf("%.1f%% vs %.1f%%", acc.FailedPct, gyro.FailedPct),
			acc.FailedPct < gyro.FailedPct)
		add("component failure ordering Acc < IMU",
			"73.22% < 96.08%",
			fmt.Sprintf("%.1f%% vs %.1f%%", acc.FailedPct, imu.FailedPct),
			acc.FailedPct < imu.FailedPct)
		add("IMU faults are near-total mission killers",
			"96.08% failed",
			fmt.Sprintf("%.1f%% failed", imu.FailedPct),
			imu.FailedPct >= 85)
	}

	// Within accelerometer faults: Zeros/Noise/Freeze survivable,
	// Fixed/Min/Max near-total failure, matching the paper's surprise
	// that "Zeros were better handled than the Min and Max values".
	get := func(label string) (core.GroupStats, bool) { return core.Find(byFault, label) }
	if zeros, ok1 := get("Acc Zeros"); ok1 {
		if minRow, ok2 := get("Acc Min"); ok2 {
			add("Acc Zeros handled better than Acc Min",
				"67.5% vs 5%",
				fmt.Sprintf("%.1f%% vs %.1f%%", zeros.CompletedPct, minRow.CompletedPct),
				zeros.CompletedPct > minRow.CompletedPct+20)
		}
		if maxRow, ok2 := get("Acc Max"); ok2 {
			add("Acc Zeros handled better than Acc Max",
				"67.5% vs 2.5%",
				fmt.Sprintf("%.1f%% vs %.1f%%", zeros.CompletedPct, maxRow.CompletedPct),
				zeros.CompletedPct > maxRow.CompletedPct+20)
		}
	}
	if noise, ok := get("Acc Noise"); ok {
		if fixed, ok2 := get("Acc Fixed Value"); ok2 {
			add("Acc Noise survivable, Acc Fixed fatal",
				"60% vs 2.5%",
				fmt.Sprintf("%.1f%% vs %.1f%%", noise.CompletedPct, fixed.CompletedPct),
				noise.CompletedPct > 40 && fixed.CompletedPct < 20)
		}
	}
	// Gyro faults: uniformly severe; Min at 0%.
	if gmin, ok := get("Gyro Min"); ok {
		add("Gyro Min never completes",
			"0%",
			fmt.Sprintf("%.1f%%", gmin.CompletedPct),
			mathx.ApproxEqual(gmin.CompletedPct, 0, 1e-9))
	}
	// IMU Min and Freeze: total failure even at 2 s.
	for _, label := range []string{"IMU Min", "IMU Freeze"} {
		if row, ok := get(label); ok {
			add(label+" is a complete mission failure",
				"0%",
				fmt.Sprintf("%.1f%%", row.CompletedPct),
				mathx.ApproxEqual(row.CompletedPct, 0, 1e-9))
		}
	}
	// Failed-run mean durations: severe faults end flights early.
	if len(byDur) == 4 && gold.DurationSec > 0 {
		add("faulty flights are far shorter than gold",
			"gold 491 s vs faulty means 146-189 s",
			fmt.Sprintf("gold %.0f s vs faulty means %.0f-%.0f s", gold.DurationSec, minDuration(byDur), maxDuration(byDur)),
			maxDuration(byDur) < gold.DurationSec*0.6)
	}
	return checks
}

func minDuration(rows []core.GroupStats) float64 {
	m := rows[0].DurationSec
	for _, r := range rows[1:] {
		if r.DurationSec < m {
			m = r.DurationSec
		}
	}
	return m
}

func maxDuration(rows []core.GroupStats) float64 {
	m := rows[0].DurationSec
	for _, r := range rows[1:] {
		if r.DurationSec > m {
			m = r.DurationSec
		}
	}
	return m
}

// Render writes the comparison as a readable report, shape checks first.
func Render(checks []Check) string {
	var b strings.Builder
	passed := 0
	for _, c := range checks {
		if c.Holds {
			passed++
		}
	}
	fmt.Fprintf(&b, "paper-vs-measured shape checks: %d/%d hold\n\n", passed, len(checks))
	for _, c := range checks {
		mark := "PASS"
		if !c.Holds {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s\n       paper:    %s\n       measured: %s\n", mark, c.Name, c.Paper, c.Measured)
	}
	return b.String()
}

// SideBySide renders measured rows next to the published rows for one
// metric table (matching rows by label).
func SideBySide(published []Row, measured []core.GroupStats) string {
	idx := map[string]core.GroupStats{}
	for _, m := range measured {
		idx[m.Label] = m
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s | %21s | %21s\n", "", "paper (compl / dur)", "measured (compl / dur)")
	for _, p := range published {
		m, exists := idx[p.Label]
		measCol := "        (missing)"
		if exists {
			measCol = fmt.Sprintf("%6.1f%% / %6.1fs", m.CompletedPct, m.DurationSec)
		}
		fmt.Fprintf(&b, "%-20s | %7.1f%% / %7.2fs | %s\n", p.Label, p.CompletedPct, p.DurationSec, measCol)
	}
	return b.String()
}
