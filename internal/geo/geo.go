// Package geo provides geodetic coordinate handling for the simulated
// U-space area: WGS-84 latitude/longitude/altitude positions, conversion to
// and from a local north-east-down (NED) tangent frame, and great-circle
// distances. Missions are authored in geographic coordinates (as in the
// Valencia scenario the paper uses) while physics and estimation run in the
// local NED frame.
package geo

import (
	"errors"
	"fmt"
	"math"

	"uavres/internal/mathx"
)

// WGS-84 ellipsoid constants.
const (
	// EarthSemiMajorM is the WGS-84 semi-major axis in meters.
	EarthSemiMajorM = 6378137.0
	// EarthFlattening is the WGS-84 flattening.
	EarthFlattening = 1 / 298.257223563
)

// FeetToMeters converts feet to meters (the paper states the Valencia
// scenario's ceiling as 60 feet).
func FeetToMeters(ft float64) float64 { return ft * 0.3048 }

// LLA is a geodetic position: latitude/longitude in degrees, altitude in
// meters above the reference ellipsoid.
type LLA struct {
	LatDeg float64 `json:"lat_deg"`
	LonDeg float64 `json:"lon_deg"`
	AltM   float64 `json:"alt_m"`
}

// String implements fmt.Stringer.
func (p LLA) String() string {
	return fmt.Sprintf("(%.6f°, %.6f°, %.1fm)", p.LatDeg, p.LonDeg, p.AltM)
}

// ErrInvalidLatitude is returned for latitudes outside [-90, 90].
var ErrInvalidLatitude = errors.New("geo: latitude out of range [-90, 90]")

// Validate reports whether the position is a plausible geodetic coordinate.
func (p LLA) Validate() error {
	if p.LatDeg < -90 || p.LatDeg > 90 || math.IsNaN(p.LatDeg) {
		return fmt.Errorf("%w: %v", ErrInvalidLatitude, p.LatDeg)
	}
	if p.LonDeg < -180 || p.LonDeg > 180 || math.IsNaN(p.LonDeg) {
		return fmt.Errorf("geo: longitude %v out of range [-180, 180]", p.LonDeg)
	}
	return nil
}

// Frame is a local NED tangent frame anchored at an origin LLA. Positions
// within the 25 km^2 mission area are far below the distances where the
// flat-earth approximation breaks down, matching the fidelity Gazebo's
// default spherical-coordinates plugin provides.
type Frame struct {
	origin LLA
	// Precomputed meters-per-degree at the origin latitude.
	mPerDegLat float64
	mPerDegLon float64
}

// NewFrame returns a local NED frame anchored at origin.
func NewFrame(origin LLA) (*Frame, error) {
	if err := origin.Validate(); err != nil {
		return nil, fmt.Errorf("geo: invalid frame origin: %w", err)
	}
	latRad := mathx.Deg2Rad(origin.LatDeg)
	// Radii of curvature on the WGS-84 ellipsoid.
	e2 := EarthFlattening * (2 - EarthFlattening)
	s2 := math.Sin(latRad) * math.Sin(latRad)
	rm := EarthSemiMajorM * (1 - e2) / math.Pow(1-e2*s2, 1.5) // meridional
	rn := EarthSemiMajorM / math.Sqrt(1-e2*s2)                // prime vertical
	return &Frame{
		origin:     origin,
		mPerDegLat: mathx.Deg2Rad(1) * rm,
		mPerDegLon: mathx.Deg2Rad(1) * rn * math.Cos(latRad),
	}, nil
}

// Origin returns the frame's anchor position.
func (f *Frame) Origin() LLA { return f.origin }

// ToNED converts a geodetic position to local NED meters relative to the
// frame origin. NED Z is positive down, so a point above the origin has a
// negative Z.
func (f *Frame) ToNED(p LLA) mathx.Vec3 {
	return mathx.Vec3{
		X: (p.LatDeg - f.origin.LatDeg) * f.mPerDegLat,
		Y: (p.LonDeg - f.origin.LonDeg) * f.mPerDegLon,
		Z: -(p.AltM - f.origin.AltM),
	}
}

// ToLLA converts local NED meters back to a geodetic position.
func (f *Frame) ToLLA(ned mathx.Vec3) LLA {
	return LLA{
		LatDeg: f.origin.LatDeg + ned.X/f.mPerDegLat,
		LonDeg: f.origin.LonDeg + ned.Y/f.mPerDegLon,
		AltM:   f.origin.AltM - ned.Z,
	}
}

// Distance returns the great-circle surface distance in meters between two
// positions (haversine on the WGS-84 mean sphere), ignoring altitude.
func Distance(a, b LLA) float64 {
	const meanRadius = 6371008.8
	lat1 := mathx.Deg2Rad(a.LatDeg)
	lat2 := mathx.Deg2Rad(b.LatDeg)
	dLat := lat2 - lat1
	dLon := mathx.Deg2Rad(b.LonDeg - a.LonDeg)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * meanRadius * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Bearing returns the initial bearing in radians from a to b, measured
// clockwise from north in (-pi, pi].
func Bearing(a, b LLA) float64 {
	lat1 := mathx.Deg2Rad(a.LatDeg)
	lat2 := mathx.Deg2Rad(b.LatDeg)
	dLon := mathx.Deg2Rad(b.LonDeg - a.LonDeg)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	return math.Atan2(y, x)
}
