package geo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"uavres/internal/mathx"
)

// valencia is the approximate center of the paper's mission area.
var valencia = LLA{LatDeg: 39.4699, LonDeg: -0.3763, AltM: 0}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       LLA
		wantErr bool
	}{
		{"ok", valencia, false},
		{"lat_high", LLA{LatDeg: 91}, true},
		{"lat_low", LLA{LatDeg: -91}, true},
		{"lat_nan", LLA{LatDeg: math.NaN()}, true},
		{"lon_high", LLA{LonDeg: 181}, true},
		{"lon_low", LLA{LonDeg: -181}, true},
		{"poles", LLA{LatDeg: 90, LonDeg: 180}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate(%v) err = %v, wantErr %v", tt.p, err, tt.wantErr)
			}
		})
	}
}

func TestValidateErrorIdentity(t *testing.T) {
	err := LLA{LatDeg: 100}.Validate()
	if !errors.Is(err, ErrInvalidLatitude) {
		t.Errorf("error %v does not wrap ErrInvalidLatitude", err)
	}
}

func TestNewFrameRejectsBadOrigin(t *testing.T) {
	if _, err := NewFrame(LLA{LatDeg: 95}); err == nil {
		t.Error("NewFrame accepted invalid origin")
	}
}

func TestToNEDOriginIsZero(t *testing.T) {
	f, err := NewFrame(valencia)
	if err != nil {
		t.Fatal(err)
	}
	ned := f.ToNED(valencia)
	if ned.Norm() > 1e-9 {
		t.Errorf("origin maps to %v, want zero", ned)
	}
}

func TestToNEDAxes(t *testing.T) {
	f, err := NewFrame(valencia)
	if err != nil {
		t.Fatal(err)
	}
	// A point strictly north has +X, strictly east has +Y, above has -Z.
	north := f.ToNED(LLA{LatDeg: valencia.LatDeg + 0.01, LonDeg: valencia.LonDeg})
	if north.X <= 0 || math.Abs(north.Y) > 1e-6 {
		t.Errorf("north point NED = %v", north)
	}
	east := f.ToNED(LLA{LatDeg: valencia.LatDeg, LonDeg: valencia.LonDeg + 0.01})
	if east.Y <= 0 || math.Abs(east.X) > 1e-6 {
		t.Errorf("east point NED = %v", east)
	}
	up := f.ToNED(LLA{LatDeg: valencia.LatDeg, LonDeg: valencia.LonDeg, AltM: 18})
	if !(up.Z < 0) || math.Abs(up.Z+18) > 1e-9 {
		t.Errorf("18m-up point NED = %v, want Z=-18", up)
	}
}

func TestNEDRoundTrip(t *testing.T) {
	f, err := NewFrame(valencia)
	if err != nil {
		t.Fatal(err)
	}
	points := []mathx.Vec3{
		{}, {X: 100}, {Y: -2500}, {Z: -18.3},
		{X: 2500, Y: 2500, Z: -60}, {X: -1234.5, Y: 987.6, Z: -5},
	}
	for _, p := range points {
		back := f.ToNED(f.ToLLA(p))
		if back.Dist(p) > 1e-6 {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
}

func TestOneDegreeLatitudeScale(t *testing.T) {
	f, err := NewFrame(valencia)
	if err != nil {
		t.Fatal(err)
	}
	oneDegNorth := f.ToNED(LLA{LatDeg: valencia.LatDeg + 1, LonDeg: valencia.LonDeg})
	// One degree of latitude is ~110.9 km at 39.5°N.
	if oneDegNorth.X < 110e3 || oneDegNorth.X > 112e3 {
		t.Errorf("1° latitude = %v m, want ~110.9 km", oneDegNorth.X)
	}
}

func TestDistanceKnownValue(t *testing.T) {
	// Valencia to Madrid is roughly 303 km.
	madrid := LLA{LatDeg: 40.4168, LonDeg: -3.7038}
	d := Distance(valencia, madrid)
	if d < 295e3 || d > 315e3 {
		t.Errorf("Valencia-Madrid = %v m, want ~303 km", d)
	}
	if Distance(valencia, valencia) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestDistanceMatchesNEDLocally(t *testing.T) {
	f, err := NewFrame(valencia)
	if err != nil {
		t.Fatal(err)
	}
	p := LLA{LatDeg: valencia.LatDeg + 0.02, LonDeg: valencia.LonDeg + 0.015}
	haversine := Distance(valencia, p)
	planar := f.ToNED(p).NormXY()
	if math.Abs(haversine-planar) > 0.005*haversine {
		t.Errorf("haversine %v vs planar %v differ > 0.5%%", haversine, planar)
	}
}

func TestBearingCardinal(t *testing.T) {
	tests := []struct {
		name string
		to   LLA
		want float64
	}{
		{"north", LLA{LatDeg: valencia.LatDeg + 0.01, LonDeg: valencia.LonDeg}, 0},
		{"east", LLA{LatDeg: valencia.LatDeg, LonDeg: valencia.LonDeg + 0.01}, math.Pi / 2},
		{"south", LLA{LatDeg: valencia.LatDeg - 0.01, LonDeg: valencia.LonDeg}, math.Pi},
		{"west", LLA{LatDeg: valencia.LatDeg, LonDeg: valencia.LonDeg - 0.01}, -math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Bearing(valencia, tt.to)
			if math.Abs(mathx.WrapPi(got-tt.want)) > 0.02 {
				t.Errorf("Bearing = %v rad, want %v", got, tt.want)
			}
		})
	}
}

func TestFeetToMeters(t *testing.T) {
	if got := FeetToMeters(60); math.Abs(got-18.288) > 1e-9 {
		t.Errorf("60 ft = %v m, want 18.288", got)
	}
}

// Property: NED round trip is the identity for offsets within the mission
// area scale (±10 km, ±100 m altitude).
func TestNEDRoundTripProperty(t *testing.T) {
	f, err := NewFrame(valencia)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x, y, z float64) bool {
		p := mathx.Vec3{
			X: math.Mod(boundedInput(x), 10e3),
			Y: math.Mod(boundedInput(y), 10e3),
			Z: math.Mod(boundedInput(z), 100),
		}
		return f.ToNED(f.ToLLA(p)).Dist(p) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func boundedInput(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}
