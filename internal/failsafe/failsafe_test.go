package failsafe

import (
	"testing"

	"uavres/internal/ekf"
	"uavres/internal/mathx"
	"uavres/internal/sensors"
)

func quietSample(t float64) sensors.IMUSample {
	return sensors.IMUSample{T: t, Accel: mathx.V3(0, 0, -9.8), Gyro: mathx.V3(0.05, 0, 0)}
}

func spinningSample(t float64) sensors.IMUSample {
	// 120 deg/s: twice the paper's 60 deg/s default threshold.
	return sensors.IMUSample{T: t, Accel: mathx.V3(0, 0, -9.8), Gyro: mathx.V3(mathx.Deg2Rad(120), 0, 0)}
}

func testIMUSet(t *testing.T) *sensors.RedundantIMUs {
	t.Helper()
	set, err := sensors.NewRedundantIMUs(3, sensors.DefaultIMUSpec(), mathx.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// drive feeds the monitor a fixed sample function at 50 Hz over [t0, t1).
func drive(m *Monitor, set *sensors.RedundantIMUs, t0, t1 float64, f func(float64) sensors.IMUSample, h ekf.Health) Phase {
	var p Phase
	for t := t0; t < t1; t += 0.02 {
		p = m.Update(Observation{T: t, IMU: f(t), Health: h, EstVelHorizMS: 3, MaxSpeedMS: 5}, set)
	}
	return p
}

func TestNominalStaysNominal(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	p := drive(m, testIMUSet(t), 0, 30, quietSample, ekf.Health{})
	if p != PhaseNominal {
		t.Errorf("phase = %v, want nominal", p)
	}
	if m.Cause() != CauseNone {
		t.Errorf("cause = %v, want none", m.Cause())
	}
}

func TestGyroThresholdTripsAfterPersistence(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	set := testIMUSet(t)
	// Short spike below the persistence window: no isolation.
	drive(m, set, 0, 0.3, spinningSample, ekf.Health{})
	if got := drive(m, set, 0.3, 1.0, quietSample, ekf.Health{}); got != PhaseNominal {
		t.Errorf("phase after sub-persistence spike = %v", got)
	}
	// Sustained rate: isolation begins.
	p := drive(m, set, 1.0, 2.0, spinningSample, ekf.Health{})
	if p != PhaseIsolating {
		t.Errorf("phase = %v, want isolating", p)
	}
	if m.Cause() != CauseGyroRate {
		t.Errorf("cause = %v, want gyro-rate", m.Cause())
	}
}

func TestFailsafeActivatesAfterIsolationDelay(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMonitor(cfg)
	set := testIMUSet(t)
	p := drive(m, set, 0, 10, spinningSample, ekf.Health{})
	if p != PhaseActive {
		t.Fatalf("phase = %v, want active", p)
	}
	// The paper: failsafe takes a minimum of 1900 ms (isolation stage).
	// Detection itself needs GyroPersistSec first.
	elapsed := m.ActivatedAt() - cfg.GyroPersistSec
	if elapsed < cfg.IsolationDelaySec {
		t.Errorf("failsafe after %v s of isolation, want >= %v", elapsed, cfg.IsolationDelaySec)
	}
	if m.Switches() != set.Count() {
		t.Errorf("switched %d sensors, want all %d", m.Switches(), set.Count())
	}
}

func TestRecoveryDuringIsolationStandsDown(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	set := testIMUSet(t)
	// Trip detection, then recover before the isolation delay elapses:
	// like a 2-second fault window ending.
	drive(m, set, 0, 1.2, spinningSample, ekf.Health{})
	if m.Phase() != PhaseIsolating {
		t.Fatalf("setup failed: phase = %v", m.Phase())
	}
	p := drive(m, set, 1.2, 5, quietSample, ekf.Health{})
	if p != PhaseNominal {
		t.Errorf("phase after recovery = %v, want nominal", p)
	}
	if m.ActivatedAt() != 0 {
		t.Error("failsafe recorded activation despite recovery")
	}
}

func TestFailsafeLatches(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	set := testIMUSet(t)
	drive(m, set, 0, 10, spinningSample, ekf.Health{})
	if m.Phase() != PhaseActive {
		t.Fatal("setup failed")
	}
	// Recovery after activation must not clear it: flight is terminated.
	p := drive(m, set, 10, 15, quietSample, ekf.Health{})
	if p != PhaseActive {
		t.Errorf("failsafe un-latched to %v", p)
	}
}

func TestAccelImplausibilityPath(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	full := func(t float64) sensors.IMUSample {
		return sensors.IMUSample{T: t, Accel: mathx.V3(sensors.AccelRange, 0, 0)}
	}
	p := drive(m, testIMUSet(t), 0, 1.5, full, ekf.Health{})
	if p != PhaseIsolating || m.Cause() != CauseAccelImplausible {
		t.Errorf("phase=%v cause=%v, want isolating/accel-implausible", p, m.Cause())
	}
}

func TestAccelWithinCapabilityDoesNotTrip(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	brisk := func(t float64) sensors.IMUSample {
		return sensors.IMUSample{T: t, Accel: mathx.V3(5, 5, -15)} // aggressive but plausible
	}
	if p := drive(m, testIMUSet(t), 0, 5, brisk, ekf.Health{}); p != PhaseNominal {
		t.Errorf("plausible accel tripped detector: %v", p)
	}
}

func TestEKFAidingPath(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	h := ekf.Health{GPSRejectSec: 7.0}
	if p := drive(m, testIMUSet(t), 0, 0.1, quietSample, h); p != PhaseIsolating {
		t.Errorf("phase = %v, want isolating on GPS rejection", p)
	}
	if m.Cause() != CauseEKFAiding {
		t.Errorf("cause = %v", m.Cause())
	}
}

func TestEKFDivergencePathImmediate(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	p := m.Update(Observation{T: 1, IMU: quietSample(1), Health: ekf.Health{Diverged: true}}, nil)
	if p != PhaseIsolating || m.Cause() != CauseEKFDiverged {
		t.Errorf("phase=%v cause=%v", p, m.Cause())
	}
}

func TestNilIMUSetStillActivates(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	var p Phase
	for tm := 0.0; tm < 10; tm += 0.02 {
		p = m.Update(Observation{T: tm, IMU: spinningSample(tm)}, nil)
	}
	if p != PhaseActive {
		t.Errorf("single-IMU vehicle never activated failsafe: %v", p)
	}
}

func TestVelocityEnvelopePath(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	set := testIMUSet(t)
	// Estimated ground speed of 20 m/s on a 5 m/s airframe: impossible.
	// Detection needs VelEnvelopePersistSec (1 s); stop before the
	// isolation stage (1.9 s more) completes.
	var p Phase
	for tm := 0.0; tm < 2.5; tm += 0.02 {
		p = m.Update(Observation{T: tm, IMU: quietSample(tm), EstVelHorizMS: 20, MaxSpeedMS: 5}, set)
	}
	if p != PhaseIsolating || m.Cause() != CauseVelEnvelope {
		t.Errorf("phase=%v cause=%v, want isolating/velocity-envelope", p, m.Cause())
	}
	// Continuing past the isolation delay activates failsafe.
	for tm := 2.5; tm < 5; tm += 0.02 {
		p = m.Update(Observation{T: tm, IMU: quietSample(tm), EstVelHorizMS: 20, MaxSpeedMS: 5}, set)
	}
	if p != PhaseActive {
		t.Errorf("phase after isolation = %v, want active", p)
	}
}

func TestStuckSensorPath(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	// The stuck flag arrives pre-debounced from the mitigation guard:
	// isolation starts on the first observation carrying it.
	p := m.Update(Observation{T: 1, IMU: quietSample(1), StuckSensor: true}, nil)
	if p != PhaseIsolating || m.Cause() != CauseStuckSensor {
		t.Errorf("phase=%v cause=%v, want isolating/stuck-sensor", p, m.Cause())
	}
}

func TestVelocityEnvelopeIgnoresPlausibleSpeed(t *testing.T) {
	m := NewMonitor(DefaultConfig())
	set := testIMUSet(t)
	for tm := 0.0; tm < 5; tm += 0.02 {
		if p := m.Update(Observation{T: tm, IMU: quietSample(tm), EstVelHorizMS: 7, MaxSpeedMS: 5}, set); p != PhaseNominal {
			t.Fatalf("modest overspeed tripped envelope: %v", p)
		}
	}
}

func TestConfigurableGyroThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GyroRateThreshold = mathx.Deg2Rad(200) // raised threshold
	m := NewMonitor(cfg)
	if p := drive(m, testIMUSet(t), 0, 5, spinningSample, ekf.Health{}); p != PhaseNominal {
		t.Errorf("120 deg/s tripped a 200 deg/s threshold: %v", p)
	}
}

func TestCrashDetectorHardImpact(t *testing.T) {
	c := NewCrashDetector(DefaultConfig())
	c.Update(10, false, 0, 0) // airborne: nothing
	if c.Crashed() {
		t.Fatal("airborne crash")
	}
	c.Update(11, true, 8.0, 0) // 8 m/s touchdown
	if !c.Crashed() || c.Reason() != "hard impact" || c.At() != 11 {
		t.Errorf("crashed=%v reason=%q at=%v", c.Crashed(), c.Reason(), c.At())
	}
}

func TestCrashDetectorFlipOver(t *testing.T) {
	c := NewCrashDetector(DefaultConfig())
	c.Update(5, true, 1.0, mathx.Deg2Rad(90))
	if !c.Crashed() || c.Reason() != "flip-over" {
		t.Errorf("crashed=%v reason=%q", c.Crashed(), c.Reason())
	}
}

func TestCrashDetectorGentleLandingOK(t *testing.T) {
	c := NewCrashDetector(DefaultConfig())
	c.Update(100, true, 0.8, 0.05)
	if c.Crashed() {
		t.Error("gentle landing classified as crash")
	}
}

func TestCrashLatches(t *testing.T) {
	c := NewCrashDetector(DefaultConfig())
	c.Update(5, true, 9, 0)
	c.Update(6, true, 0, 0) // settled afterwards
	if !c.Crashed() || c.At() != 5 {
		t.Error("crash latch lost")
	}
}

func TestPhaseAndCauseStrings(t *testing.T) {
	if PhaseNominal.String() != "nominal" || PhaseIsolating.String() != "isolating" || PhaseActive.String() != "failsafe" {
		t.Error("phase strings wrong")
	}
	for c, want := range map[Cause]string{
		CauseNone: "none", CauseGyroRate: "gyro-rate",
		CauseAccelImplausible: "accel-implausible",
		CauseEKFAiding:        "ekf-aiding", CauseEKFDiverged: "ekf-diverged",
		CauseVelEnvelope: "velocity-envelope",
	} {
		if c.String() != want {
			t.Errorf("cause %d = %q, want %q", int(c), c.String(), want)
		}
	}
}
