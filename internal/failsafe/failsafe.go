// Package failsafe implements the flight controller's protective layer as
// the paper describes it (Section IV-C): sensor-health monitoring, an
// isolation stage that rotates through redundant IMUs before giving up
// (taking a minimum of 1900 ms), and a failsafe state machine whose
// activation — like PX4's failure detector — terminates the flight.
//
// Detection asymmetry, quoted from the paper, is modelled directly:
//
//   - Gyrometer: an explicit rate threshold, 60 deg/s by default
//     (configurable), trips the detector.
//   - Accelerometer: no explicit threshold exists; detection relies on
//     vehicle capability bounds and on the EKF's innovation health.
//   - IMU (both): either path can trip the detector.
package failsafe

import (
	"uavres/internal/ekf"
	"uavres/internal/mathx"
	"uavres/internal/sensors"
)

// Config holds detection thresholds and timing.
type Config struct {
	// GyroRateThreshold is the sustained body-rate magnitude that marks
	// the gyro unhealthy (rad/s). The paper's default is 60 deg/s.
	GyroRateThreshold float64
	// GyroPersistSec is how long the rate must stay above threshold.
	GyroPersistSec float64
	// AccelPlausible is the specific-force magnitude beyond the vehicle's
	// physical capability (m/s^2); sustained readings above it mark the
	// accelerometer unhealthy.
	AccelPlausible float64
	// AccelPersistSec is how long accel implausibility must persist.
	AccelPersistSec float64
	// GPSRejectSecLimit and BaroRejectSecLimit are how long EKF aiding
	// rejection may last before the inertial solution is distrusted.
	GPSRejectSecLimit  float64
	BaroRejectSecLimit float64
	// VelEnvelopeFactor flags the estimated horizontal speed exceeding
	// this multiple of the vehicle's specified top speed — the paper's
	// accelerometer detection path, which "relies on factors such as
	// vehicle specifications and airspeed" instead of a threshold.
	// Zero disables the check.
	VelEnvelopeFactor float64
	// VelEnvelopePersistSec is how long the envelope violation must hold.
	VelEnvelopePersistSec float64
	// IsolationDelaySec is the minimum time spent cycling redundant
	// sensors before failsafe may activate (paper: >= 1900 ms).
	IsolationDelaySec float64
	// SwitchIntervalSec is the evaluation time per redundant sensor.
	SwitchIntervalSec float64
	// CrashImpactSpeed is the touchdown speed separating a landing from a
	// crash (m/s).
	CrashImpactSpeed float64
	// CrashTiltRad is the ground-contact tilt beyond which the vehicle is
	// considered crashed (flipped over).
	CrashTiltRad float64
}

// DefaultConfig mirrors the paper's quoted PX4 defaults.
func DefaultConfig() Config {
	return Config{
		GyroRateThreshold:     mathx.Deg2Rad(60),
		GyroPersistSec:        0.5,
		AccelPlausible:        130, // near full scale: only saturation-level output trips it
		AccelPersistSec:       1.0,
		GPSRejectSecLimit:     6.0,
		BaroRejectSecLimit:    8.0,
		VelEnvelopeFactor:     1.8,
		VelEnvelopePersistSec: 1.0,
		IsolationDelaySec:     1.9,
		SwitchIntervalSec:     0.4,
		CrashImpactSpeed:      2.5,
		CrashTiltRad:          mathx.Deg2Rad(60),
	}
}

// Phase is the failsafe state machine's state.
type Phase int

// Failsafe phases, in escalation order.
const (
	// PhaseNominal means no anomaly is being tracked.
	PhaseNominal Phase = iota + 1
	// PhaseIsolating means an anomaly is present and redundant sensors
	// are being rotated in search of a healthy unit.
	PhaseIsolating
	// PhaseActive means failsafe has engaged: the flight is terminated.
	PhaseActive
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseNominal:
		return "nominal"
	case PhaseIsolating:
		return "isolating"
	case PhaseActive:
		return "failsafe"
	default:
		return "unknown"
	}
}

// Cause identifies which detection path tripped.
type Cause int

// Detection causes.
const (
	CauseNone Cause = iota
	CauseGyroRate
	CauseAccelImplausible
	CauseEKFAiding
	CauseEKFDiverged
	CauseVelEnvelope
	CauseStuckSensor
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseGyroRate:
		return "gyro-rate"
	case CauseAccelImplausible:
		return "accel-implausible"
	case CauseEKFAiding:
		return "ekf-aiding"
	case CauseEKFDiverged:
		return "ekf-diverged"
	case CauseVelEnvelope:
		return "velocity-envelope"
	case CauseStuckSensor:
		return "stuck-sensor"
	default:
		return "unknown"
	}
}

// Observation is one monitor input: the corrupted-sensor view plus the
// navigation solution's plausibility context.
type Observation struct {
	// T is the sim time (s).
	T float64
	// IMU is the latest (possibly corrupted) primary-IMU sample.
	IMU sensors.IMUSample
	// Health is the EKF's self-assessment.
	Health ekf.Health
	// EstVelHorizMS is the EKF's horizontal ground-speed estimate.
	EstVelHorizMS float64
	// MaxSpeedMS is the vehicle's specified top speed (capability bound).
	MaxSpeedMS float64
	// StuckSensor is set by the mitigation layer's stuck-output guard
	// (identical consecutive samples — the Freeze/Zeros signature).
	StuckSensor bool
}

// Monitor is the failsafe state machine. Not safe for concurrent use.
type Monitor struct {
	cfg Config

	phase Phase
	cause Cause

	gyroHighSince  float64
	accelHighSince float64
	velHighSince   float64
	gyroHigh       bool
	accelHigh      bool
	velHigh        bool

	isolationStart float64
	lastSwitch     float64
	switches       int

	activatedAt float64
}

// NewMonitor returns a monitor in the nominal phase.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg, phase: PhaseNominal}
}

// Phase returns the current state-machine phase.
func (m *Monitor) Phase() Phase { return m.phase }

// Cause returns the detection path that initiated isolation/failsafe.
func (m *Monitor) Cause() Cause { return m.cause }

// ActivatedAt returns the sim time failsafe engaged (0 if it has not).
func (m *Monitor) ActivatedAt() float64 { return m.activatedAt }

// Switches returns how many redundant-sensor switches were performed.
func (m *Monitor) Switches() int { return m.switches }

// MonitorSnapshot captures the state machine's complete dynamic state
// (checkpointing). The configuration is a construction parameter and is
// not part of the snapshot.
type MonitorSnapshot struct {
	m Monitor
}

// Snapshot captures the monitor's state.
func (m *Monitor) Snapshot() MonitorSnapshot {
	s := MonitorSnapshot{m: *m}
	s.m.cfg = Config{} // state only; the target keeps its own config
	return s
}

// Restore reinstates a state captured with Snapshot.
func (m *Monitor) Restore(s MonitorSnapshot) {
	cfg := m.cfg
	*m = s.m
	m.cfg = cfg
}

// Update advances the monitor with the latest observation. imus is the
// redundant set the isolation stage rotates; a nil set disables switching
// (single-IMU vehicle). Returns the current phase.
func (m *Monitor) Update(obs Observation, imus *sensors.RedundantIMUs) Phase {
	t := obs.T
	if m.phase == PhaseActive {
		return m.phase
	}

	anomaly := m.detect(obs)

	switch m.phase {
	case PhaseNominal:
		if anomaly != CauseNone {
			m.phase = PhaseIsolating
			m.cause = anomaly
			m.isolationStart = t
			m.lastSwitch = t
			m.switches = 0
		}
	case PhaseIsolating:
		if anomaly == CauseNone {
			// Sensor recovered (fault window ended or switch found a
			// healthy unit): stand down.
			m.phase = PhaseNominal
			m.cause = CauseNone
			return m.phase
		}
		m.cause = anomaly
		// Rotate redundant sensors at the evaluation cadence. The paper
		// assumes the fault affects all redundant sensors, so rotation
		// never actually helps — but it must be attempted, and it is what
		// makes failsafe take >= 1900 ms.
		if imus != nil && t-m.lastSwitch >= m.cfg.SwitchIntervalSec && !imus.Exhausted(m.switches) {
			imus.SwitchPrimary()
			m.switches++
			m.lastSwitch = t
		}
		exhausted := imus == nil || imus.Exhausted(m.switches)
		if t-m.isolationStart >= m.cfg.IsolationDelaySec && exhausted {
			m.phase = PhaseActive
			m.activatedAt = t
		}
	}
	return m.phase
}

// detect evaluates all detection paths and returns the first tripped
// cause, or CauseNone.
func (m *Monitor) detect(obs Observation) Cause {
	t, imu, health := obs.T, obs.IMU, obs.Health
	if health.Diverged {
		return CauseEKFDiverged
	}
	if obs.StuckSensor {
		// The guard has already applied its own persistence window.
		return CauseStuckSensor
	}

	// Gyro path: explicit threshold with persistence.
	if imu.Gyro.Norm() > m.cfg.GyroRateThreshold {
		if !m.gyroHigh {
			m.gyroHigh = true
			m.gyroHighSince = t
		}
	} else {
		m.gyroHigh = false
	}
	if m.gyroHigh && t-m.gyroHighSince >= m.cfg.GyroPersistSec {
		return CauseGyroRate
	}

	// Accel path: no explicit threshold — plausibility vs. the vehicle's
	// physical capability, with persistence.
	if imu.Accel.Norm() > m.cfg.AccelPlausible {
		if !m.accelHigh {
			m.accelHigh = true
			m.accelHighSince = t
		}
	} else {
		m.accelHigh = false
	}
	if m.accelHigh && t-m.accelHighSince >= m.cfg.AccelPersistSec {
		return CauseAccelImplausible
	}

	// Velocity-envelope path: the navigation solution claims a speed the
	// airframe cannot physically reach ("vehicle specifications and
	// airspeed" — the paper's accelerometer detection factors).
	if m.cfg.VelEnvelopeFactor > 0 && obs.MaxSpeedMS > 0 {
		if obs.EstVelHorizMS > m.cfg.VelEnvelopeFactor*obs.MaxSpeedMS {
			if !m.velHigh {
				m.velHigh = true
				m.velHighSince = t
			}
		} else {
			m.velHigh = false
		}
		if m.velHigh && t-m.velHighSince >= m.cfg.VelEnvelopePersistSec {
			return CauseVelEnvelope
		}
	}

	// EKF aiding path: inertial solution rejected by references too long.
	if m.cfg.GPSRejectSecLimit > 0 && health.GPSRejectSec > m.cfg.GPSRejectSecLimit {
		return CauseEKFAiding
	}
	if m.cfg.BaroRejectSecLimit > 0 && health.BaroRejectSec > m.cfg.BaroRejectSecLimit {
		return CauseEKFAiding
	}
	return CauseNone
}

// CrashDetector classifies ground impacts from ground-truth physics state,
// playing the role of the simulation platform's collision monitoring.
type CrashDetector struct {
	cfg     Config
	crashed bool
	at      float64
	reason  string
}

// NewCrashDetector returns a detector with the given thresholds.
func NewCrashDetector(cfg Config) *CrashDetector {
	return &CrashDetector{cfg: cfg}
}

// Crashed reports whether a crash has been latched.
func (c *CrashDetector) Crashed() bool { return c.crashed }

// At returns the crash time (0 if none).
func (c *CrashDetector) At() float64 { return c.at }

// Reason returns a human-readable crash classification.
func (c *CrashDetector) Reason() string { return c.reason }

// CrashSnapshot captures the crash detector's dynamic state
// (checkpointing).
type CrashSnapshot struct {
	crashed bool
	at      float64
	reason  string
}

// Snapshot captures the latch state.
func (c *CrashDetector) Snapshot() CrashSnapshot {
	return CrashSnapshot{crashed: c.crashed, at: c.at, reason: c.reason}
}

// Restore reinstates a state captured with Snapshot.
func (c *CrashDetector) Restore(s CrashSnapshot) {
	c.crashed = s.crashed
	c.at = s.at
	c.reason = s.reason
}

// Update feeds ground-truth observations: whether the vehicle is on the
// ground, its touchdown speed, and its tilt. Once latched, a crash is
// permanent.
func (c *CrashDetector) Update(t float64, onGround bool, touchdownSpeed float64, tilt float64) {
	if c.crashed || !onGround {
		return
	}
	if touchdownSpeed > c.cfg.CrashImpactSpeed {
		c.crashed = true
		c.at = t
		c.reason = "hard impact"
		return
	}
	if tilt > c.cfg.CrashTiltRad {
		c.crashed = true
		c.at = t
		c.reason = "flip-over"
	}
}
