package sim

import (
	"fmt"

	"uavres/internal/bubble"
	"uavres/internal/control"
	"uavres/internal/ekf"
	"uavres/internal/failsafe"
	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/mitigation"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// Checkpoint is a complete mid-run snapshot of a Vehicle. A campaign's
// cases share long fault-free prefixes (every injection starts at the same
// T+90 s), so the runner simulates the prefix once, snapshots, and forks
// one resumed vehicle per sibling case — each bit-identical to a
// straight-through run (see TestForkBitIdentical).
//
// A checkpoint is immutable after Snapshot and safe to fork from multiple
// goroutines concurrently: every mutable buffer (trajectory, median
// windows) is deep-copied on capture and again on restore.
type Checkpoint struct {
	cfg Config
	m   mission.Mission
	inj *faultinject.Injection // injection the prefix ran under (nil: gold)

	step int
	done bool
	res  Result // Trajectory deep-copied

	body        physics.BodySnapshot
	imus        sensors.RedundantIMUsSnapshot
	gps         sensors.GPSSnapshot
	baro        sensors.BaroSnapshot
	mag         sensors.MagSnapshot
	injector    faultinject.InjectorSnapshot
	hasInjector bool
	filter      ekf.FilterSnapshot
	mitigate    mitigation.PipelineSnapshot
	rotorMon    mitigation.RotorMonitorSnapshot
	hasRotorMon bool
	ctl         control.ControllerSnapshot
	monitor     failsafe.MonitorSnapshot
	crash       failsafe.CrashSnapshot
	guide       guidance // all-value state; mission slices are read-only
	tracker     bubble.TrackerSnapshot
	rec         recorderSnapshot

	lastIMU     sensors.IMUSample
	lastClean   sensors.IMUSample
	haveIMU     bool
	sp          control.Setpoint
	monitorTick sensors.Ticker
	gravityTick sensors.Ticker
	guideTick   sensors.Ticker
	beenAir     bool
	voteStrikes int
	prevEstPos  mathx.Vec3
	havePrevEst bool
	distM       float64
}

// T returns the sim time of the first step a forked vehicle will execute.
func (c *Checkpoint) T() float64 { return float64(c.step) * c.cfg.PhysicsDt }

// Snapshot captures the vehicle's complete dynamic state.
func (v *Vehicle) Snapshot() *Checkpoint {
	c := &Checkpoint{
		cfg:  v.cfg,
		m:    v.m,
		inj:  v.inj,
		step: v.step,
		done: v.done,
		res:  v.res,

		body:     v.body.Snapshot(),
		imus:     v.imus.Snapshot(),
		gps:      v.gps.Snapshot(),
		baro:     v.baro.Snapshot(),
		mag:      v.mag.Snapshot(),
		filter:   v.filter.Snapshot(),
		mitigate: v.mitigate.Snapshot(),
		ctl:      v.ctl.Snapshot(),
		monitor:  v.monitor.Snapshot(),
		crash:    v.crash.Snapshot(),
		guide:    *v.guide,
		tracker:  v.tracker.Snapshot(),
		rec:      v.rec.snapshot(),

		lastIMU:     v.lastIMU,
		lastClean:   v.lastClean,
		haveIMU:     v.haveIMU,
		sp:          v.sp,
		monitorTick: v.monitorTick,
		gravityTick: v.gravityTick,
		guideTick:   v.guideTick,
		beenAir:     v.beenAir,
		voteStrikes: v.voteStrikes,
		prevEstPos:  v.prevEstPos,
		havePrevEst: v.havePrevEst,
		distM:       v.distM,
	}
	if v.injector != nil {
		c.injector = v.injector.Snapshot()
		c.hasInjector = true
	}
	if v.rotorMon != nil {
		c.rotorMon = v.rotorMon.Snapshot()
		c.hasRotorMon = true
	}
	if v.res.Trajectory != nil {
		c.res.Trajectory = make([]TrajPoint, len(v.res.Trajectory), cap(v.res.Trajectory))
		copy(c.res.Trajectory, v.res.Trajectory)
	}
	return c
}

// Fork resumes the checkpoint as a new vehicle running the SAME injection
// the prefix ran under. The fork and its source share no mutable state.
func (c *Checkpoint) Fork(obs Observer) (*Vehicle, error) {
	v, err := NewVehicle(c.cfg, c.m, c.inj, obs)
	if err != nil {
		return nil, err
	}
	if err := v.restoreFrom(c); err != nil {
		return nil, err
	}
	if v.injector != nil {
		v.injector.Restore(c.injector)
	}
	return v, nil
}

// ForkWithInjection resumes the checkpoint as a new vehicle running a
// DIFFERENT injection. This is only valid when the two experiments are
// indistinguishable up to the checkpoint:
//
//   - the checkpoint precedes the new injection's window (no executed step
//     observed a corrupted sample or command),
//   - the fork's injection family (sensor vs actuator) matches the prefix
//     injector's, because a sensor injector overwrites every affected
//     unit's sample with the primary's even before the window opens while
//     an actuator injector leaves the sample stream alone, and
//   - within the sensor family, the fork's scope matches the prefix
//     injector's, for the same pre-window overwrite reason.
//
// A sensor fork's Freeze state is seeded from the checkpoint's last clean
// sample, an actuator fork's Stuck state from the checkpoint's last motor
// commands — exactly what a straight-through injector would have captured.
func (c *Checkpoint) ForkWithInjection(inj *faultinject.Injection, obs Observer) (*Vehicle, error) {
	if (inj == nil) != (c.inj == nil) {
		return nil, fmt.Errorf("sim: fork injection presence differs from checkpoint prefix")
	}
	if inj != nil {
		if c.step > 0 && float64(c.step-1)*c.cfg.PhysicsDt >= inj.Start.Seconds() {
			return nil, fmt.Errorf("sim: checkpoint at t=%.3fs is past injection start %v",
				float64(c.step-1)*c.cfg.PhysicsDt, inj.Start)
		}
		if inj.SensorTarget() != c.inj.SensorTarget() {
			return nil, fmt.Errorf("sim: fork injection family (%s) differs from checkpoint prefix (%s)",
				injectionFamily(inj), injectionFamily(c.inj))
		}
		if inj.Scope != c.inj.Scope {
			return nil, fmt.Errorf("sim: fork scope %v differs from checkpoint scope %v",
				inj.Scope, c.inj.Scope)
		}
	}
	v, err := NewVehicle(c.cfg, c.m, inj, obs)
	if err != nil {
		return nil, err
	}
	if err := v.restoreFrom(c); err != nil {
		return nil, err
	}
	if v.injector != nil {
		if v.inj.SensorTarget() {
			if v.haveIMU {
				v.injector.SeedFreeze(v.lastClean)
			}
		} else {
			v.injector.SeedStuck(v.body.MotorCommands())
		}
	}
	return v, nil
}

// injectionFamily names the side of the fault model an injection lives on.
func injectionFamily(inj *faultinject.Injection) string {
	if inj.SensorTarget() {
		return "sensor"
	}
	return "actuator"
}

// restoreFrom reinstates every dynamic field from the checkpoint except
// the injector (the two fork flavours differ there). The vehicle must be
// freshly built from the checkpoint's cfg and mission.
func (v *Vehicle) restoreFrom(c *Checkpoint) error {
	if err := v.body.Restore(c.body); err != nil {
		return err
	}
	if err := v.imus.Restore(c.imus); err != nil {
		return err
	}
	if err := v.gps.Restore(c.gps); err != nil {
		return err
	}
	if err := v.baro.Restore(c.baro); err != nil {
		return err
	}
	if err := v.mag.Restore(c.mag); err != nil {
		return err
	}
	v.filter.Restore(c.filter)
	if err := v.mitigate.Restore(c.mitigate); err != nil {
		return err
	}
	v.ctl.Restore(c.ctl)
	if v.rotorMon != nil && c.hasRotorMon {
		v.rotorMon.Restore(c.rotorMon)
		// The controller's allocator override is derived state: rebuild it
		// from the restored condemned set.
		if v.cfg.Mitigation.ReconfigAllocation {
			v.ctl.SetAllocator(v.reconfiguredAllocator())
		}
	}
	v.monitor.Restore(c.monitor)
	v.crash.Restore(c.crash)
	g := c.guide
	v.guide = &g
	v.tracker.Restore(c.tracker)
	if err := v.rec.restore(c.rec); err != nil {
		return err
	}

	v.step = c.step
	v.done = c.done
	v.res = c.res
	// The result identifies THIS run's experiment, not the prefix's.
	v.res.MissionID = v.m.ID
	v.res.Injection = v.inj
	if c.res.Trajectory != nil {
		v.res.Trajectory = make([]TrajPoint, len(c.res.Trajectory), cap(c.res.Trajectory))
		copy(v.res.Trajectory, c.res.Trajectory)
	}

	v.lastIMU = c.lastIMU
	v.lastClean = c.lastClean
	v.haveIMU = c.haveIMU
	v.sp = c.sp
	v.monitorTick = c.monitorTick
	v.gravityTick = c.gravityTick
	v.guideTick = c.guideTick
	v.beenAir = c.beenAir
	v.voteStrikes = c.voteStrikes
	v.prevEstPos = c.prevEstPos
	v.havePrevEst = c.havePrevEst
	v.distM = c.distM
	return nil
}
