package sim

import (
	"math"

	"uavres/internal/control"
	"uavres/internal/mathx"
	"uavres/internal/mission"
)

// flightPhase is the mission executor's state.
type flightPhase int

const (
	phaseTakeoff flightPhase = iota + 1
	phaseCruise
	phaseLand
	phaseDone
)

// guidance turns a mission plan into controller setpoints — the simulated
// counterpart of PX4's navigator/commander pairing.
type guidance struct {
	mission mission.Mission
	phase   flightPhase
	wpIdx   int

	climbRate   float64
	descendRate float64
	// landedSince is the sim time touchdown was first seen, or -1 while
	// airborne (0 is a valid timestamp, so it cannot be the sentinel).
	landedSince float64
	reached     int
	holdYaw     float64
	haveYaw     bool
}

func newGuidance(m mission.Mission) *guidance {
	return &guidance{
		mission:     m,
		phase:       phaseTakeoff,
		climbRate:   1.5,
		descendRate: 1.0,
		landedSince: -1,
	}
}

// waypointsReached returns route progress.
func (g *guidance) waypointsReached() int { return g.reached }

// done reports whether the mission executor finished (landed + disarmed).
func (g *guidance) done() bool { return g.phase == phaseDone }

// acceptRadius is the waypoint acceptance distance for the mission's speed.
func (g *guidance) acceptRadius() float64 {
	return math.Max(2, g.mission.CruiseSpeedMS*1.2)
}

// legYaw returns the bearing of the active leg, which is also the heading
// setpoint (the vehicle flies nose-along-track, giving the EKF's GPS
// course aiding a valid reference). Near and past the final waypoint the
// bearing is held rather than recomputed — a bearing derived from a
// sub-meter vector is noise and would spin the heading setpoint.
func (g *guidance) legYaw(estPos mathx.Vec3) float64 {
	var target mathx.Vec3
	if g.wpIdx < len(g.mission.Waypoints) {
		target = g.mission.Waypoints[g.wpIdx]
	} else {
		if g.haveYaw {
			return g.holdYaw
		}
		target = g.mission.Waypoints[len(g.mission.Waypoints)-1]
	}
	d := target.Sub(estPos)
	if d.NormXY() < math.Max(3, g.acceptRadius()) {
		if g.haveYaw {
			return g.holdYaw
		}
		if d.NormXY() < 1e-6 {
			return 0
		}
	}
	g.holdYaw = math.Atan2(d.Y, d.X)
	g.haveYaw = true
	return g.holdYaw
}

// update advances the executor and returns the current setpoint. estPos is
// the EKF position (guidance has no truth access); onGroundTruth and t
// feed the landing/disarm transition, which on real vehicles comes from
// land-detector logic.
func (g *guidance) update(t float64, estPos mathx.Vec3, estSpeed float64, onGroundTruth bool) control.Setpoint {
	m := g.mission
	cruiseAlt := -m.AltitudeM

	switch g.phase {
	case phaseTakeoff:
		target := mathx.V3(m.Start.X, m.Start.Y, cruiseAlt)
		if math.Abs(estPos.Z-cruiseAlt) < 1.0 {
			g.phase = phaseCruise
		}
		return control.Setpoint{
			Pos: target, Yaw: g.legYaw(estPos),
			CruiseSpeed: m.CruiseSpeedMS, MaxClimb: g.climbRate,
		}

	case phaseCruise:
		wp := m.Waypoints[g.wpIdx]
		if estPos.DistXY(wp) < g.acceptRadius() {
			g.reached++
			g.wpIdx++
			if g.wpIdx >= len(m.Waypoints) {
				g.phase = phaseLand
				return g.update(t, estPos, estSpeed, onGroundTruth)
			}
			wp = m.Waypoints[g.wpIdx]
		}
		// Leg following: the position target is a lookahead point ON the
		// active leg, not the waypoint itself. Direct-to-waypoint pursuit
		// converges to the path only as the waypoint nears, leaving
		// corner-cut cross-track errors standing for hundreds of meters.
		return control.Setpoint{
			Pos: g.legTarget(estPos, wp), Yaw: g.legYaw(estPos),
			CruiseSpeed: m.CruiseSpeedMS, MaxClimb: g.climbRate, MaxDescend: g.descendRate,
		}

	case phaseLand:
		last := m.Waypoints[len(m.Waypoints)-1]
		// The vertical target sits well below ground so that estimation
		// bias (baro offset ~0.5 m) cannot stall the descent short of
		// touchdown; ground contact, not the position loop, ends it.
		target := mathx.V3(last.X, last.Y, 3.0)
		if onGroundTruth && estSpeed < 0.5 {
			if g.landedSince < 0 {
				g.landedSince = t
			} else if t-g.landedSince > 1.0 {
				g.phase = phaseDone
			}
		} else {
			g.landedSince = -1
		}
		return control.Setpoint{
			Pos: target, Yaw: g.legYaw(estPos),
			CruiseSpeed: 1.5, MaxDescend: g.descendRate,
		}

	default: // phaseDone
		last := m.Waypoints[len(m.Waypoints)-1]
		return control.Setpoint{Pos: mathx.V3(last.X, last.Y, 3.0), CruiseSpeed: 1}
	}
}

// legTarget projects the vehicle onto the active leg and returns a
// lookahead point along it — straight-line path following.
func (g *guidance) legTarget(estPos, wp mathx.Vec3) mathx.Vec3 {
	var from mathx.Vec3
	if g.wpIdx == 0 {
		from = mathx.V3(g.mission.Start.X, g.mission.Start.Y, -g.mission.AltitudeM)
	} else {
		from = g.mission.Waypoints[g.wpIdx-1]
	}
	leg := wp.Sub(from)
	legLen := leg.Norm()
	if legLen < 1e-6 {
		return wp
	}
	dir := leg.Scale(1 / legLen)
	along := estPos.Sub(from).Dot(dir)
	lookahead := math.Max(6, g.mission.CruiseSpeedMS*2.5)
	along = mathx.Clamp(along+lookahead, 0, legLen)
	return from.Add(dir.Scale(along))
}
