package sim

import (
	"math"
	"testing"

	"uavres/internal/mathx"
	"uavres/internal/mission"
)

func guideMission() mission.Mission {
	return mission.Mission{
		ID: 1, Name: "guide test", CruiseSpeedMS: 4, AltitudeM: 15,
		Drone: mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 6},
		Start: mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{
			{X: 100, Y: 0, Z: -15},
			{X: 100, Y: 80, Z: -15},
		},
	}
}

func TestGuidanceTakeoffTargetsCruiseAltitude(t *testing.T) {
	g := newGuidance(guideMission())
	sp := g.update(0, mathx.V3(0, 0, -0.1), 0, true)
	if sp.Pos.Z != -15 || sp.Pos.X != 0 || sp.Pos.Y != 0 {
		t.Errorf("takeoff target = %v", sp.Pos)
	}
	if g.phase != phaseTakeoff {
		t.Errorf("phase = %v", g.phase)
	}
}

func TestGuidanceTransitionsToCruiseNearAltitude(t *testing.T) {
	g := newGuidance(guideMission())
	g.update(10, mathx.V3(0, 0, -14.5), 0.5, false)
	if g.phase != phaseCruise {
		t.Errorf("phase = %v, want cruise", g.phase)
	}
}

func TestGuidanceLegTargetStaysOnLeg(t *testing.T) {
	g := newGuidance(guideMission())
	g.phase = phaseCruise
	// 10 m cross-track off the first leg (which runs along +X at Y=0).
	sp := g.update(20, mathx.V3(40, 10, -15), 4, false)
	// The lookahead target lies ON the leg (Y = 0), ahead of the vehicle.
	if math.Abs(sp.Pos.Y) > 1e-9 {
		t.Errorf("leg target off the path: %v", sp.Pos)
	}
	if sp.Pos.X <= 40 {
		t.Errorf("leg target not ahead: %v", sp.Pos)
	}
}

func TestGuidanceWaypointAcceptanceAndProgress(t *testing.T) {
	g := newGuidance(guideMission())
	g.phase = phaseCruise
	// Within the acceptance radius of waypoint 0.
	g.update(30, mathx.V3(98, 0, -15), 4, false)
	if g.waypointsReached() != 1 || g.wpIdx != 1 {
		t.Errorf("reached=%d wpIdx=%d", g.waypointsReached(), g.wpIdx)
	}
	// Then within acceptance of the final waypoint: phase goes to land.
	g.update(60, mathx.V3(100, 78, -15), 4, false)
	if g.phase != phaseLand {
		t.Errorf("phase = %v, want land", g.phase)
	}
}

func TestGuidanceLandingDisarmsAfterSettling(t *testing.T) {
	g := newGuidance(guideMission())
	g.phase = phaseLand
	g.wpIdx = len(g.mission.Waypoints)
	g.haveYaw = true
	// On ground, slow, for over a second of updates.
	g.update(100, mathx.V3(100, 80, -0.05), 0.1, true)
	g.update(100.5, mathx.V3(100, 80, -0.05), 0.1, true)
	if g.done() {
		t.Fatal("disarmed before the settle window elapsed")
	}
	g.update(101.2, mathx.V3(100, 80, -0.05), 0.1, true)
	if !g.done() {
		t.Error("not disarmed after settling on ground")
	}
}

func TestGuidanceLandingResetOnBounce(t *testing.T) {
	g := newGuidance(guideMission())
	g.phase = phaseLand
	g.wpIdx = len(g.mission.Waypoints)
	g.haveYaw = true
	g.update(100, mathx.V3(100, 80, -0.05), 0.1, true)
	// Bounce: airborne again resets the settle clock.
	g.update(100.6, mathx.V3(100, 80, -0.6), 1.2, false)
	g.update(101.3, mathx.V3(100, 80, -0.05), 0.1, true)
	if g.done() {
		t.Error("disarmed despite bounce interrupting the settle window")
	}
}

func TestGuidanceYawTurnsOntoNewLeg(t *testing.T) {
	g := newGuidance(guideMission())
	g.phase = phaseCruise
	// Far from the waypoint: bearing toward it (+X → yaw 0).
	sp := g.update(20, mathx.V3(10, 0, -15), 4, false)
	if math.Abs(sp.Yaw) > 0.05 {
		t.Errorf("leg yaw = %v, want ~0", sp.Yaw)
	}
	// Reaching waypoint 0 advances to leg 2 (+Y): yaw turns to ~pi/2.
	sp = g.update(40, mathx.V3(99.7, 0.2, -15), 4, false)
	if math.Abs(sp.Yaw-math.Pi/2) > 0.05 {
		t.Errorf("yaw after turn = %v, want ~pi/2", sp.Yaw)
	}
}

func TestGuidanceYawHeldDuringLanding(t *testing.T) {
	g := newGuidance(guideMission())
	g.phase = phaseCruise
	// Establish a bearing on leg 2 first.
	g.update(40, mathx.V3(99.7, 0.2, -15), 4, false)
	g.update(50, mathx.V3(100, 40, -15), 4, false)
	// Arrive at the final waypoint: land phase begins; yaw must hold the
	// last stable bearing instead of spinning on sub-meter noise.
	sp := g.update(70, mathx.V3(100.1, 79.8, -15), 4, false)
	if g.phase != phaseLand {
		t.Fatalf("phase = %v, want land", g.phase)
	}
	held := sp.Yaw
	for i := 0; i < 5; i++ {
		noisy := mathx.V3(100+0.3*float64(i%2), 80-0.2*float64(i%3), -10)
		sp = g.update(71+float64(i), noisy, 0.8, false)
		if sp.Yaw != held {
			t.Fatalf("landing yaw changed: %v -> %v", held, sp.Yaw)
		}
	}
}
