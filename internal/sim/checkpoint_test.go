package sim

import (
	"reflect"
	"testing"
	"time"

	"uavres/internal/faultinject"
)

// sameResult compares two Results for bit-identity (no tolerances: a fork
// must reproduce a straight-through run exactly).
func sameResult(t *testing.T, label string, straight, forked Result) {
	t.Helper()
	if forked.Outcome != straight.Outcome {
		t.Errorf("%s: outcome fork=%v straight=%v (%s%s vs %s%s)", label,
			forked.Outcome, straight.Outcome,
			forked.FailsafeCause, forked.CrashReason,
			straight.FailsafeCause, straight.CrashReason)
	}
	if forked.FlightDurationSec != straight.FlightDurationSec {
		t.Errorf("%s: duration fork=%v straight=%v", label, forked.FlightDurationSec, straight.FlightDurationSec)
	}
	if forked.DistanceKm != straight.DistanceKm {
		t.Errorf("%s: distance fork=%v straight=%v", label, forked.DistanceKm, straight.DistanceKm)
	}
	if forked.InnerViolations != straight.InnerViolations || forked.OuterViolations != straight.OuterViolations {
		t.Errorf("%s: violations fork=%d/%d straight=%d/%d", label,
			forked.InnerViolations, forked.OuterViolations,
			straight.InnerViolations, straight.OuterViolations)
	}
	if forked.WaypointsReached != straight.WaypointsReached {
		t.Errorf("%s: waypoints fork=%d straight=%d", label, forked.WaypointsReached, straight.WaypointsReached)
	}
	if forked.FailsafeCause != straight.FailsafeCause || forked.CrashReason != straight.CrashReason {
		t.Errorf("%s: cause fork=%q/%q straight=%q/%q", label,
			forked.FailsafeCause, forked.CrashReason, straight.FailsafeCause, straight.CrashReason)
	}
	if len(forked.Trajectory) != len(straight.Trajectory) {
		t.Errorf("%s: trajectory length fork=%d straight=%d", label, len(forked.Trajectory), len(straight.Trajectory))
		return
	}
	for i := range straight.Trajectory {
		if forked.Trajectory[i] != straight.Trajectory[i] {
			t.Errorf("%s: trajectory[%d] fork=%+v straight=%+v", label, i,
				forked.Trajectory[i], straight.Trajectory[i])
			return
		}
	}
	// The flight-data-recorder block must fork bit-identically too: every
	// trace event, first-violation time, and counter — and each fork owns
	// its own instruments, so nothing here can be cross-contaminated by a
	// sibling fork.
	if !reflect.DeepEqual(forked.Diagnostics, straight.Diagnostics) {
		t.Errorf("%s: diagnostics differ\nfork:     %+v\nstraight: %+v", label,
			forked.Diagnostics, straight.Diagnostics)
	}
}

// TestForkBitIdentical is the checkpoint-and-fork correctness bar: for
// every primitive x target combination, a run forked from a mid-flight
// checkpoint must be bit-identical to the same case simulated straight
// through. The prefix runs under a DIFFERENT sibling injection (same
// scope and start, as the campaign runner groups them), exercising the
// ForkWithInjection path the runner uses.
func TestForkBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	m := shortMission()
	const startSec = 20.0

	// Representative prefix injection: the runner picks the group's first
	// case. FixedValue/IMU is a different primitive AND target from most
	// forks below, which makes the test stricter.
	rep := &faultinject.Injection{
		Primitive: faultinject.FixedValue, Target: faultinject.TargetIMU,
		Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second, Seed: 77,
	}
	prefix, err := NewVehicle(cfg, m, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix.RunUntil(startSec)
	cp := prefix.Snapshot()
	if cp.T() != startSec {
		t.Fatalf("checkpoint at t=%v, want %v", cp.T(), startSec)
	}

	for _, p := range faultinject.Primitives() {
		for _, target := range faultinject.Targets() {
			inj := &faultinject.Injection{
				Primitive: p, Target: target,
				Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second,
				Seed: 1234,
			}
			label := inj.Label()

			straight, err := Run(cfg, m, inj, nil)
			if err != nil {
				t.Fatalf("%s straight: %v", label, err)
			}

			fork, err := cp.ForkWithInjection(inj, nil)
			if err != nil {
				t.Fatalf("%s fork: %v", label, err)
			}
			sameResult(t, label, straight, fork.RunToEnd())
		}
	}
}

// TestForkSameInjection covers Checkpoint.Fork: resuming the checkpoint's
// own case reproduces the straight-through run even when the checkpoint
// is taken mid-window (the injector's rng stream is part of the state).
func TestForkSameInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	m := shortMission()
	inj := &faultinject.Injection{
		Primitive: faultinject.Noise, Target: faultinject.TargetGyro,
		Start: 15 * time.Second, Duration: 10 * time.Second, Seed: 5,
	}

	straight, err := Run(cfg, m, inj, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint INSIDE the fault window: Fork must restore the injector's
	// rng mid-stream and the already-drawn fixed values.
	v, err := NewVehicle(cfg, m, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.RunUntil(18)
	fork, err := v.Snapshot().Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "mid-window fork", straight, fork.RunToEnd())
}

// TestForkGold covers gold runs: a fault-free prefix forked once per use.
func TestForkGold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	m := shortMission()

	straight, err := Run(cfg, m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	v, err := NewVehicle(cfg, m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.RunUntil(25)
	cp := v.Snapshot()
	fork, err := cp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "gold fork", straight, fork.RunToEnd())

	// The checkpoint stays forkable after the first fork consumed it.
	fork2, err := cp.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "gold second fork", straight, fork2.RunToEnd())
}

// TestForkRejectsInvalid: forking with a new injection is refused when the
// checkpoint is past the window start or the scope differs, and when
// injection presence differs from the prefix.
func TestForkRejectsInvalid(t *testing.T) {
	cfg := DefaultConfig()
	m := shortMission()
	rep := &faultinject.Injection{
		Primitive: faultinject.Zeros, Target: faultinject.TargetGyro,
		Start: 20 * time.Second, Duration: 5 * time.Second, Seed: 1,
	}
	v, err := NewVehicle(cfg, m, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	v.RunUntil(25)
	cp := v.Snapshot()

	past := *rep
	if _, err := cp.ForkWithInjection(&past, nil); err == nil {
		t.Error("fork past window start accepted")
	}

	scoped := *rep
	scoped.Start = 40 * time.Second
	scoped.Scope = faultinject.ScopePrimaryUnit
	if _, err := cp.ForkWithInjection(&scoped, nil); err == nil {
		t.Error("fork with different scope accepted")
	}

	if _, err := cp.ForkWithInjection(nil, nil); err == nil {
		t.Error("gold fork from faulty prefix accepted")
	}
}
