// Package sim assembles the full simulated vehicle — physics, sensors,
// fault injector, EKF, cascaded controller, failsafe monitor, and U-space
// bubble tracker — and runs one mission to an outcome. It is the
// counterpart of the paper's Gazebo+PX4 vehicle under the fault-injection
// platform.
package sim

import (
	"fmt"

	"uavres/internal/control"
	"uavres/internal/ekf"
	"uavres/internal/failsafe"
	"uavres/internal/mathx"
	"uavres/internal/mitigation"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// Config collects every knob of a simulated flight. Zero values are filled
// in by Defaults; construct via DefaultConfig and override fields.
type Config struct {
	// PhysicsDt is the integration step (s).
	PhysicsDt float64
	// MaxSimTime aborts runs that neither complete nor fail (s).
	MaxSimTime float64
	// Seed drives environment randomness (wind, sensor noise). The fault
	// injector has its own seed inside the Injection.
	Seed int64
	// RNGPolicy names the normal-deviate sampler for every environment
	// noise stream: "" or "polar" (the default, bit-compatible with all
	// recorded campaigns) or "ziggurat" (see mathx.ParseNormPolicy). The
	// fault injector's own stream stays polar regardless, so an
	// injection's deviates are policy-invariant.
	RNGPolicy string

	// WindMeanMS and WindGustStd parameterize the wind model; the mean
	// direction is drawn from the seed.
	WindMeanMS  float64
	WindGustStd float64

	// IMUCount is the number of redundant IMUs (PX4-style: 3).
	IMUCount int
	// RedundancyVoting enables per-sample cross-IMU consistency checks:
	// a primary unit whose output diverges from the median of all units
	// is switched out within a few samples (PX4-style redundancy
	// management). Under the paper's all-units fault assumption every
	// unit agrees and voting never fires; it matters for the
	// ScopePrimaryUnit ablation.
	RedundancyVoting bool
	// VoteAccelTol and VoteGyroTol are the voter's per-axis tolerances
	// (m/s^2, rad/s). Zero values fall back to defaults.
	VoteAccelTol float64
	VoteGyroTol  float64
	// VotePersistSamples is how many consecutive outlier samples trigger
	// a switch (zero: default 5, i.e. 20 ms at 250 Hz).
	VotePersistSamples int

	// RiskR is the outer-bubble risk factor (paper: 1).
	RiskR float64
	// TrackingInterval is the U-space tracker cadence (s).
	TrackingInterval float64

	// ShieldRateLoop, when true, feeds the body-rate loop an uncorrupted
	// rate signal (ground truth standing in for a hypothetical
	// fault-filtered source) while the EKF still sees the faulty stream.
	// ShieldEKF is the complement: the EKF receives clean samples while
	// the rate loop consumes the corrupted gyro. Together they form the
	// factorial ablation decomposing WHERE gyro-fault damage enters
	// (DESIGN.md: ablation benches).
	ShieldRateLoop bool
	ShieldEKF      bool

	// RecordTrajectory enables trajectory capture at 1 Hz (figures).
	RecordTrajectory bool

	// CovSettleSec keeps the EKF covariance on the exact per-step path for
	// this long after a fault window closes. On a faulted flight the exact
	// path covers everything from launch through the fault window plus
	// this margin — a pre-fault covariance difference, however small,
	// would be amplified by the fault's chaotic dynamics and change
	// verdicts — so decimated propagation runs only on the post-settle
	// tail (and on the whole of fault-free flights). Only meaningful when
	// EKF.CovarianceDecimation > 1. Zero means no settle margin.
	CovSettleSec float64

	// Airframe, Gains, EKF, and Failsafe configure the subsystems.
	Airframe physics.Params
	Gains    control.Gains
	EKF      ekf.Config
	Failsafe failsafe.Config
	// Mitigation configures the optional software fault-mitigation
	// pipeline on the IMU stream (zero value: disabled, the paper's
	// baseline).
	Mitigation mitigation.Config

	// Sensor specs.
	IMUSpec  sensors.IMUSpec
	GPSSpec  sensors.GPSSpec
	BaroSpec sensors.BaroSpec
	MagSpec  sensors.MagSpec
}

// DefaultConfig returns the campaign's reference configuration.
func DefaultConfig() Config {
	return Config{
		PhysicsDt:        0.002,
		MaxSimTime:       900,
		Seed:             1,
		WindMeanMS:       0.8,
		WindGustStd:      0.25,
		IMUCount:         3,
		RedundancyVoting: true,
		VoteAccelTol:     3.0,
		VoteGyroTol:      0.3,
		RiskR:            1,
		TrackingInterval: 1,
		CovSettleSec:     10,
		Airframe:         physics.DefaultParams(),
		Gains:            control.DefaultGains(),
		EKF:              ekf.DefaultConfig(),
		Failsafe:         failsafe.DefaultConfig(),
		IMUSpec:          sensors.DefaultIMUSpec(),
		GPSSpec:          sensors.DefaultGPSSpec(),
		BaroSpec:         sensors.DefaultBaroSpec(),
		MagSpec:          sensors.DefaultMagSpec(),
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.PhysicsDt <= 0 || c.PhysicsDt > 0.01 {
		return fmt.Errorf("sim: physics dt %v outside (0, 0.01]", c.PhysicsDt)
	}
	if c.MaxSimTime <= 0 {
		return fmt.Errorf("sim: non-positive max sim time %v", c.MaxSimTime)
	}
	if c.IMUCount < 1 {
		return fmt.Errorf("sim: IMU count %d < 1", c.IMUCount)
	}
	if c.CovSettleSec < 0 {
		return fmt.Errorf("sim: negative covariance settle window %v", c.CovSettleSec)
	}
	if _, err := mathx.ParseNormPolicy(c.RNGPolicy); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Airframe.Validate(); err != nil {
		return err
	}
	if err := c.Mitigation.Validate(); err != nil {
		return err
	}
	return c.IMUSpec.Validate()
}

// windFromSeed derives a deterministic mean-wind vector from the seed.
func windFromSeed(c Config, dirUnit mathx.Vec3) mathx.Vec3 {
	return dirUnit.Scale(c.WindMeanMS)
}
