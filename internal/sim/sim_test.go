package sim

import (
	"math"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/geo"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/mitigation"
)

// shortMission is a fast-running route for unit-level checks.
func shortMission() mission.Mission {
	return mission.Mission{
		ID: 99, Name: "short test hop", CruiseSpeedMS: 3.33, AltitudeM: 15,
		Drone:     mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 0, Y: 100, Z: -15}},
	}
}

func TestShortGoldRunCompletes(t *testing.T) {
	res, err := Run(DefaultConfig(), shortMission(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCompleted {
		t.Fatalf("outcome = %v (%s%s)", res.Outcome, res.FailsafeCause, res.CrashReason)
	}
	if res.InnerViolations != 0 || res.OuterViolations != 0 {
		t.Errorf("violations inner=%d outer=%d", res.InnerViolations, res.OuterViolations)
	}
	if res.FlightDurationSec < 40 || res.FlightDurationSec > 90 {
		t.Errorf("duration = %v, want ~55 s", res.FlightDurationSec)
	}
	// EKF-estimated distance ≈ 100 m route + 2x15 m vertical.
	if res.DistanceKm < 0.11 || res.DistanceKm > 0.16 {
		t.Errorf("distance = %v km, want ~0.13", res.DistanceKm)
	}
	if res.WaypointsReached != 1 {
		t.Errorf("waypoints reached = %d", res.WaypointsReached)
	}
}

func TestRunValidatesInputs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhysicsDt = -1
	if _, err := Run(cfg, shortMission(), nil, nil); err == nil {
		t.Error("invalid config accepted")
	}
	bad := shortMission()
	bad.Waypoints = nil
	if _, err := Run(DefaultConfig(), bad, nil, nil); err == nil {
		t.Error("invalid mission accepted")
	}
	badInj := &faultinject.Injection{Primitive: 99, Target: faultinject.TargetIMU, Duration: time.Second}
	if _, err := Run(DefaultConfig(), shortMission(), badInj, nil); err == nil {
		t.Error("invalid injection accepted")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 33
	inj := &faultinject.Injection{
		Primitive: faultinject.Noise, Target: faultinject.TargetAccel,
		Start: 20 * time.Second, Duration: 5 * time.Second, Seed: 7,
	}
	a, err := Run(cfg, shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome || a.FlightDurationSec != b.FlightDurationSec ||
		a.InnerViolations != b.InnerViolations || a.DistanceKm != b.DistanceKm {
		t.Errorf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestObserverReceivesTelemetry(t *testing.T) {
	var n int
	var last Telemetry
	res, err := Run(DefaultConfig(), shortMission(), nil, func(tel Telemetry) {
		n++
		last = tel
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~1 Hz over the flight duration.
	want := int(res.FlightDurationSec)
	if n < want-3 || n > want+3 {
		t.Errorf("telemetry samples = %d, want ~%d", n, want)
	}
	if last.MissionID != 99 || last.T == 0 {
		t.Errorf("last telemetry = %+v", last)
	}
}

func TestTrajectoryRecording(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	res, err := Run(cfg, shortMission(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) < 40 {
		t.Fatalf("trajectory points = %d, want ~55", len(res.Trajectory))
	}
	// Trajectory must show the climb to 15 m.
	var maxAlt float64
	for _, p := range res.Trajectory {
		maxAlt = math.Max(maxAlt, -p.TruePos.Z)
	}
	if maxAlt < 13 {
		t.Errorf("max altitude in trajectory = %v, want ~15", maxAlt)
	}
}

// TestGyroFaultCrashesOrFailsafes verifies the paper's central asymmetry:
// a full-scale gyro fault destroys the flight within seconds even at the
// shortest (2 s) injection, via the raw-gyro rate loop.
func TestGyroFaultFailsEvenAtTwoSeconds(t *testing.T) {
	inj := &faultinject.Injection{
		Primitive: faultinject.MinValue, Target: faultinject.TargetGyro,
		Start: 20 * time.Second, Duration: 2 * time.Second, Seed: 1,
	}
	res, err := Run(DefaultConfig(), shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeCompleted {
		t.Fatal("Gyro Min completed; the paper reports 0% completion")
	}
	if res.FlightDurationSec > 40 {
		t.Errorf("failure took %v s; expected within seconds of onset", res.FlightDurationSec)
	}
}

// TestAccelNoiseSurvivable verifies the other side of the asymmetry:
// accelerometer noise corrupts navigation but the EKF + controller ride it
// out (paper: 60% completion for Acc Noise).
func TestAccelNoiseSurvivable(t *testing.T) {
	inj := &faultinject.Injection{
		Primitive: faultinject.Noise, Target: faultinject.TargetAccel,
		Start: 20 * time.Second, Duration: 10 * time.Second, Seed: 1,
	}
	res, err := Run(DefaultConfig(), shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCompleted {
		t.Errorf("Acc Noise outcome = %v (%s%s)", res.Outcome, res.FailsafeCause, res.CrashReason)
	}
}

// TestIMURandomFailsFast: random values on both sensors crash quickly and
// violently (paper Fig. 5).
func TestIMURandomFailsFast(t *testing.T) {
	inj := &faultinject.Injection{
		Primitive: faultinject.Random, Target: faultinject.TargetIMU,
		Start: 20 * time.Second, Duration: 30 * time.Second, Seed: 1,
	}
	res, err := Run(DefaultConfig(), shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeCompleted {
		t.Fatal("IMU Random completed; paper reports 2.5%")
	}
	if res.FlightDurationSec > 30 {
		t.Errorf("IMU Random failure at %v s, want fast", res.FlightDurationSec)
	}
}

// TestFaultPathAblation decomposes where gyro-fault damage enters: with
// BOTH the rate loop and the EKF shielded the mission completes; with
// either path exposed, a full-scale gyro fault still kills it. This is the
// factorial ablation behind BenchmarkAblationRateSource — and the reason
// the paper's call for EKF-level mitigation alone would not be enough.
func TestFaultPathAblation(t *testing.T) {
	inj := &faultinject.Injection{
		Primitive: faultinject.Zeros, Target: faultinject.TargetGyro,
		Start: 20 * time.Second, Duration: 10 * time.Second, Seed: 1,
	}
	run := func(shieldRate, shieldEKF bool) Outcome {
		cfg := DefaultConfig()
		cfg.ShieldRateLoop = shieldRate
		cfg.ShieldEKF = shieldEKF
		res, err := Run(cfg, shortMission(), inj, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outcome
	}
	if got := run(true, true); got != OutcomeCompleted {
		t.Errorf("both paths shielded: %v, want completed", got)
	}
	if got := run(false, false); got == OutcomeCompleted {
		t.Error("no shielding completed a full-scale gyro fault")
	}
	if got := run(true, false); got == OutcomeCompleted {
		t.Error("EKF-exposed run completed: attitude corruption should kill it")
	}
	if got := run(false, true); got == OutcomeCompleted {
		t.Error("rate-loop-exposed run completed: rate corruption should kill it")
	}
}

func TestFaultBeforeTakeoffWindowPassesThrough(t *testing.T) {
	// An injection window that ends before flight events matter: freeze
	// during the first second on the pad.
	inj := &faultinject.Injection{
		Primitive: faultinject.Freeze, Target: faultinject.TargetAccel,
		Start: 0, Duration: 500 * time.Millisecond, Seed: 1,
	}
	res, err := Run(DefaultConfig(), shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCompleted {
		t.Errorf("pad-window fault outcome = %v (%s%s)", res.Outcome, res.FailsafeCause, res.CrashReason)
	}
}

// TestMitigationPipeline verifies the paper's proposed software
// mitigations change outcomes the way DESIGN.md section 8 claims: a
// frozen gyro's uncontrolled crash becomes a controlled stuck-sensor
// termination detected within ~100 ms, and clean flights are unaffected.
func TestMitigationPipeline(t *testing.T) {
	mitigated := DefaultConfig()
	mitigated.Mitigation = mitigation.DefaultConfig()

	freeze := &faultinject.Injection{
		Primitive: faultinject.Freeze, Target: faultinject.TargetGyro,
		Start: 20 * time.Second, Duration: 10 * time.Second, Seed: 3,
	}
	res, err := Run(mitigated, shortMission(), freeze, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeFailsafe || res.FailsafeCause != "stuck-sensor" {
		t.Errorf("mitigated gyro freeze = %v/%s, want failsafe/stuck-sensor",
			res.Outcome, res.FailsafeCause)
	}

	gold, err := Run(mitigated, shortMission(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gold.Outcome != OutcomeCompleted || gold.InnerViolations != 0 {
		t.Errorf("mitigated gold run degraded: %v, %d violations", gold.Outcome, gold.InnerViolations)
	}
}

// TestMitigationMaskingHazard documents the pipeline's sharpest edge: a
// low-pass smoothing stage can hide a noisy-gyro fault from the
// failsafe's 60°/s threshold while the vehicle remains uncontrollable —
// the baseline's controlled termination becomes a crash. Detection must
// run on the raw stream (as the stuck guard does), never after smoothing.
func TestMitigationMaskingHazard(t *testing.T) {
	m := mission.Valencia()[4]
	inj := &faultinject.Injection{
		Primitive: faultinject.Noise, Target: faultinject.TargetGyro,
		Start: 90 * time.Second, Duration: 10 * time.Second, Seed: 4,
	}
	baselineCfg := DefaultConfig()
	baselineCfg.Seed = 4
	baseline, err := Run(baselineCfg, m, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Outcome != OutcomeFailsafe {
		t.Fatalf("baseline outcome = %v, want failsafe (gyro-rate)", baseline.Outcome)
	}

	smoothed := baselineCfg
	smoothed.Mitigation = mitigation.Config{MedianWindow: 5, LowPassHz: 20}
	masked, err := Run(smoothed, m, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Outcome == OutcomeFailsafe && masked.FailsafeCause == "gyro-rate" &&
		masked.FlightDurationSec <= baseline.FlightDurationSec {
		t.Errorf("smoothing did not delay or mask detection (outcome %v at %.1f s); "+
			"the masking hazard this test documents has disappeared — re-evaluate DESIGN.md section 8",
			masked.Outcome, masked.FlightDurationSec)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeCompleted: "completed", OutcomeCrash: "crash",
		OutcomeFailsafe: "failsafe", OutcomeTimeout: "timeout",
	} {
		if o.String() != want {
			t.Errorf("%d = %q", int(o), o.String())
		}
	}
	if !OutcomeCompleted.Completed() || OutcomeCrash.Completed() {
		t.Error("Completed() predicate wrong")
	}
}

func TestResultLabel(t *testing.T) {
	if got := (Result{}).Label(); got != "Gold Run" {
		t.Errorf("gold label = %q", got)
	}
	r := Result{Injection: &faultinject.Injection{Primitive: faultinject.Zeros, Target: faultinject.TargetGyro}}
	if got := r.Label(); got != "Gyro Zeros" {
		t.Errorf("label = %q", got)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad_dt", func(c *Config) { c.PhysicsDt = 0.5 }},
		{"bad_maxtime", func(c *Config) { c.MaxSimTime = 0 }},
		{"bad_imus", func(c *Config) { c.IMUCount = 0 }},
		{"bad_airframe", func(c *Config) { c.Airframe.MassKg = 0 }},
		{"bad_imuspec", func(c *Config) { c.IMUSpec.RateHz = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestAllGoldMissionsComplete is the scenario-level integration gate: all
// ten Valencia missions must complete fault-free with zero violations
// (the paper's Gold Run row). Slow (~7 s); skipped in -short runs.
func TestAllGoldMissionsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("full gold sweep is slow")
	}
	cfg := DefaultConfig()
	var dur, dist float64
	for _, m := range mission.Valencia() {
		cfg.Seed = int64(1000 + m.ID)
		res, err := Run(cfg, m, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeCompleted {
			t.Errorf("mission %d gold outcome = %v (%s%s)", m.ID, res.Outcome, res.FailsafeCause, res.CrashReason)
		}
		if res.InnerViolations != 0 || res.OuterViolations != 0 {
			t.Errorf("mission %d gold violations inner=%d outer=%d", m.ID, res.InnerViolations, res.OuterViolations)
		}
		dur += res.FlightDurationSec
		dist += res.DistanceKm
	}
	meanDur := dur / 10
	if meanDur < 420 || meanDur > 540 {
		t.Errorf("gold mean duration %v s, want in the neighbourhood of the paper's 491 s", meanDur)
	}
	t.Logf("gold means: duration=%.1f s (paper 491.26), distance=%.2f km (paper 3.65)", meanDur, dist/10)
}

// TestRedundancyScopeAblation challenges the paper's "fault affects all
// redundant sensors" assumption: when the same gyro faults strike only
// one of the three IMUs, cross-unit consistency voting switches it out
// within ~20 ms and every mission completes. The all-units scope remains
// as fatal as the paper reports.
func TestRedundancyScopeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run ablation")
	}
	m := mission.Valencia()[4]
	// Zeros/Freeze on the gyro at cruise are near-plausible readings
	// (true rates are small), so whether voting catches the fault before
	// the slow destabilization exceeds the failsafe envelope depends on
	// the noise realization. It does for 9 of the env seeds in 0..9; this
	// pins one of them rather than the default seed.
	cfg := DefaultConfig()
	cfg.Seed = 2
	for _, p := range []faultinject.Primitive{faultinject.MinValue, faultinject.Zeros, faultinject.Freeze} {
		allUnits := &faultinject.Injection{
			Primitive: p, Target: faultinject.TargetGyro,
			Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 3,
			Scope: faultinject.ScopeAllUnits,
		}
		res, err := Run(cfg, m, allUnits, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == OutcomeCompleted {
			t.Errorf("gyro %v all-units completed; the paper's assumption makes it fatal", p)
		}

		oneUnit := *allUnits
		oneUnit.Scope = faultinject.ScopePrimaryUnit
		res, err = Run(cfg, m, &oneUnit, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeCompleted {
			t.Errorf("gyro %v primary-unit = %v (%s%s); voting should rescue it",
				p, res.Outcome, res.FailsafeCause, res.CrashReason)
		}
	}
}

// TestVotingSilentWithoutRedundantDisagreement: with voting enabled and an
// all-units fault, the primary never gets switched by the voter (all units
// agree), so results match the paper's single-stream behaviour.
func TestVotingDoesNotDisturbGold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RedundancyVoting = true
	res, err := Run(cfg, shortMission(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCompleted || res.InnerViolations != 0 {
		t.Errorf("gold with voting: %v, %d violations", res.Outcome, res.InnerViolations)
	}
}

// TestTimeoutOutcome: a MaxSimTime too short to finish classifies as
// timeout with the full duration recorded.
func TestTimeoutOutcome(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSimTime = 20 // the hop needs ~55 s
	res, err := Run(cfg, shortMission(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeTimeout {
		t.Errorf("outcome = %v, want timeout", res.Outcome)
	}
	if res.FlightDurationSec != 20 {
		t.Errorf("duration = %v, want MaxSimTime", res.FlightDurationSec)
	}
}

// TestFaultDuringTakeoff: the injection window is legal anywhere in the
// flight; a gyro fault during the climb is just as fatal.
func TestFaultDuringTakeoff(t *testing.T) {
	inj := &faultinject.Injection{
		Primitive: faultinject.MinValue, Target: faultinject.TargetGyro,
		Start: 3 * time.Second, Duration: 5 * time.Second, Seed: 1,
	}
	res, err := Run(DefaultConfig(), shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeCompleted {
		t.Error("full-scale gyro fault during takeoff completed")
	}
	if res.FlightDurationSec > 30 {
		t.Errorf("takeoff fault took %v s to end the flight", res.FlightDurationSec)
	}
}

// TestFaultWindowNeverReached: an injection scheduled beyond the flight's
// natural end must leave the mission untouched.
func TestFaultWindowNeverReached(t *testing.T) {
	inj := &faultinject.Injection{
		Primitive: faultinject.MinValue, Target: faultinject.TargetIMU,
		Start: 800 * time.Second, Duration: 30 * time.Second, Seed: 1,
	}
	res, err := Run(DefaultConfig(), shortMission(), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCompleted || res.InnerViolations != 0 {
		t.Errorf("never-activated fault: %v, %d violations", res.Outcome, res.InnerViolations)
	}
}

// TestGeoAuthoredMissionFlies: a mission defined in geodetic coordinates
// (the form U-space exchanges) flies end to end through the same stack.
func TestGeoAuthoredMissionFlies(t *testing.T) {
	frame, err := mission.ValenciaFrame()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mission.FromGeo(7, "geo-authored", frame,
		mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		3.3, 15,
		[]geo.LLA{
			{LatDeg: 39.4699, LonDeg: -0.3763},
			{LatDeg: 39.4708, LonDeg: -0.3763, AltM: 15},
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(), m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeCompleted {
		t.Errorf("geo mission outcome = %v (%s%s)", res.Outcome, res.FailsafeCause, res.CrashReason)
	}
}
