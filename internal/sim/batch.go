package sim

import (
	"fmt"

	"uavres/internal/ekf"
	"uavres/internal/faultinject"
	"uavres/internal/physics"
)

// Batch steps every fork of one checkpoint in lockstep: one donor vehicle
// advances the shared environment streams (sensor noise, wind gust) once
// per tick, and each fork composes those deviates with its own diverged
// truth via stepEnv. Environment noise is state-independent and every
// component owns its own stream, so the shared draws are bit-identical to
// what each fork's own streams would produce — the scalar and batch paths
// yield byte-identical Results (TestBatchBitIdentical).
//
// The forks' hot per-tick state (EKF filter, rigid body) is restored into
// contiguous structure-of-arrays slabs so the kernels stream over the
// batch with amortized cache traffic instead of chasing per-fork heap
// allocations.
//
// The one lockstep hazard is the primary-IMU schedule: RedundantIMUs.Due
// advances only the primary unit's ticker, so a fork that switches
// primaries (redundancy voting, or the failsafe isolation stage rotating
// sensors) acquires a sampling schedule the donor no longer mirrors —
// starting the tick AFTER the switch. Batch detects the switch at the end
// of the tick it happens in and DETACHES the fork: the donor's stream
// states are exactly what the fork's own streams would hold at that tick
// (identical draw schedule from the shared checkpoint), so they are copied
// into the fork, which then continues inside the same loop drawing for
// itself. Detached forks cost scalar-path draws but never re-run.
type Batch struct {
	donor    *Vehicle
	forks    []*Vehicle
	detached []bool
	primary  int // the checkpoint's primary unit index; donor never switches
	env      envDraws

	// Contiguous hot-state slabs the forks' pointers are re-aimed at.
	filters []ekf.Filter
	bodies  []physics.Body
}

// NewBatch forks one vehicle per injection from the checkpoint, all or
// nothing: any invalid fork (scope mismatch, window overlap — see
// ForkWithInjection) fails the whole batch so the caller can fall back to
// the scalar path case by case.
func NewBatch(cp *Checkpoint, injs []*faultinject.Injection) (*Batch, error) {
	if len(injs) == 0 {
		return nil, fmt.Errorf("sim: empty batch")
	}
	donor, err := cp.Fork(nil)
	if err != nil {
		return nil, err
	}
	b := &Batch{
		donor:    donor,
		forks:    make([]*Vehicle, len(injs)),
		detached: make([]bool, len(injs)),
		primary:  donor.imus.Primary(),
		filters:  make([]ekf.Filter, len(injs)),
		bodies:   make([]physics.Body, len(injs)),
	}
	for i, inj := range injs {
		v, err := cp.ForkWithInjection(inj, nil)
		if err != nil {
			return nil, fmt.Errorf("sim: batch fork %d: %w", i, err)
		}
		// Move the hot state into the slabs. Filter is all-value state;
		// Body's only pointer field is its wind process, which the batch
		// path never steps (the donor owns the shared wind).
		b.filters[i] = *v.filter
		v.filter = &b.filters[i]
		b.bodies[i] = *v.body
		v.body = &b.bodies[i]
		b.forks[i] = v
	}
	return b, nil
}

// detach transplants the donor's environment-stream states into fork i and
// removes it from lockstep. Valid only at the end of the tick the fork's
// primary switched in: through that tick the fork's draw schedule was
// still the donor's, so the donor's stream positions are bit-exactly where
// the fork's own streams would be after a straight scalar run.
func (b *Batch) detach(i int) error {
	v := b.forks[i]
	if err := v.imus.AdoptNoiseStreams(b.donor.imus); err != nil {
		return err
	}
	if err := v.gps.Restore(b.donor.gps.Snapshot()); err != nil {
		return err
	}
	if err := v.baro.Restore(b.donor.baro.Snapshot()); err != nil {
		return err
	}
	if err := v.mag.Restore(b.donor.mag.Snapshot()); err != nil {
		return err
	}
	if err := v.body.AdoptWind(b.donor.body); err != nil {
		return err
	}
	b.detached[i] = true
	return nil
}

// Run steps all forks in lockstep to their outcomes and returns the
// finalized results (index-aligned with the injections) plus the detached
// mask (observability: detached[i] means fork i switched its primary IMU
// and finished on per-fork draws). All results are valid either way.
func (b *Batch) Run() ([]Result, []bool, error) {
	for {
		lockstep, active := false, false
		for i, v := range b.forks {
			if v.done || v.step >= v.steps {
				continue
			}
			active = true
			if !b.detached[i] {
				lockstep = true
			}
		}
		if !active {
			break
		}
		if lockstep {
			b.donor.drawEnv(&b.env)
		}
		for i, v := range b.forks {
			if v.done || v.step >= v.steps {
				continue
			}
			if b.detached[i] {
				v.stepEnv(nil)
				continue
			}
			v.stepEnv(&b.env)
			if v.imus.Primary() != b.primary {
				if err := b.detach(i); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	results := make([]Result, len(b.forks))
	for i, v := range b.forks {
		results[i] = v.finalize()
	}
	return results, b.detached, nil
}
