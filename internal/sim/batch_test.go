package sim

import (
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mission"
)

// TestBatchBitIdentical is the batch runner's correctness bar, mirroring
// TestForkBitIdentical: all 21 primitive x target combinations stepped in
// one lockstep batch must yield Results byte-identical to straight-through
// scalar runs — outcome, duration, distance, trajectory, and the full
// flight-data-recorder diagnostics block. This includes forks the failsafe
// isolation stage detaches mid-run (primary rotation), which finish on
// transplanted per-fork streams.
func TestBatchBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	m := shortMission()
	const startSec = 20.0

	rep := &faultinject.Injection{
		Primitive: faultinject.FixedValue, Target: faultinject.TargetIMU,
		Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second, Seed: 77,
	}
	prefix, err := NewVehicle(cfg, m, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix.RunUntil(startSec)
	cp := prefix.Snapshot()

	var injs []*faultinject.Injection
	for _, p := range faultinject.Primitives() {
		for _, target := range faultinject.Targets() {
			injs = append(injs, &faultinject.Injection{
				Primitive: p, Target: target,
				Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second,
				Seed: 1234,
			})
		}
	}

	b, err := NewBatch(cp, injs)
	if err != nil {
		t.Fatal(err)
	}
	results, detached, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}

	anyDetached := false
	for i, inj := range injs {
		anyDetached = anyDetached || detached[i]
		label := inj.Label()
		straight, err := Run(cfg, m, inj, nil)
		if err != nil {
			t.Fatalf("%s straight: %v", label, err)
		}
		sameResult(t, label, straight, results[i])
	}
	if !anyDetached {
		t.Error("no fork detached; expected the failsafe isolation stage to rotate primaries in at least one case")
	}
}

// TestBatchDetachesOnPrimarySwitch pins the lockstep-hazard handling on
// the voting path: a primary-scope gyro fault that redundancy voting
// rescues by switching primaries must detach from the batch (its IMU
// schedule leaves the donor's) and still finish bit-identical to the
// scalar run on its transplanted streams.
func TestBatchDetachesOnPrimarySwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("long primary-scope run")
	}
	m := mission.Valencia()[4]
	cfg := DefaultConfig()
	cfg.Seed = 2 // see TestRedundancyScopeAblation: voting rescues this seed

	rep := &faultinject.Injection{
		Primitive: faultinject.Zeros, Target: faultinject.TargetGyro,
		Start: 90 * time.Second, Duration: 30 * time.Second, Seed: 3,
		Scope: faultinject.ScopePrimaryUnit,
	}
	prefix, err := NewVehicle(cfg, m, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix.RunUntil(85)

	freeze := *rep
	freeze.Primitive = faultinject.Freeze
	injs := []*faultinject.Injection{rep, &freeze}
	b, err := NewBatch(prefix.Snapshot(), injs)
	if err != nil {
		t.Fatal(err)
	}
	results, detached, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	anyDetached := false
	for _, d := range detached {
		anyDetached = anyDetached || d
	}
	if !anyDetached {
		t.Fatal("no fork detached despite voting-driven primary switches")
	}
	for i, inj := range injs {
		straight, err := Run(cfg, m, inj, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, inj.Label(), straight, results[i])
	}
}

// TestBatchZigguratPolicy runs the batch under the non-default RNG policy:
// the run must complete, be deterministic, and stay bit-identical to the
// scalar path under the same policy (the equivalence proof is
// policy-independent).
func TestBatchZigguratPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	cfg.RNGPolicy = "ziggurat"
	m := shortMission()
	const startSec = 20.0

	injs := []*faultinject.Injection{
		{Primitive: faultinject.Noise, Target: faultinject.TargetGyro,
			Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second, Seed: 9},
		{Primitive: faultinject.Zeros, Target: faultinject.TargetAccel,
			Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second, Seed: 9},
	}

	prefix, err := NewVehicle(cfg, m, injs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix.RunUntil(startSec)
	b, err := NewBatch(prefix.Snapshot(), injs)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}

	for i, inj := range injs {
		straight, err := Run(cfg, m, inj, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "ziggurat "+inj.Label(), straight, results[i])

		// Determinism: a second straight run reproduces the first.
		again, err := Run(cfg, m, inj, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "ziggurat repeat "+inj.Label(), straight, again)
	}
}

// TestZigguratPolicyChangesStream sanity-checks that the policy knob is
// actually wired through: the same case under polar and ziggurat must not
// produce identical trajectories (the noise streams differ).
func TestZigguratPolicyChangesStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	m := shortMission()
	polar, err := Run(cfg, m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RNGPolicy = "ziggurat"
	zig, err := Run(cfg, m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(polar.Trajectory) == 0 || len(zig.Trajectory) == 0 {
		t.Fatal("missing trajectories")
	}
	same := len(polar.Trajectory) == len(zig.Trajectory)
	if same {
		for i := range polar.Trajectory {
			if polar.Trajectory[i] != zig.Trajectory[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("polar and ziggurat runs produced identical trajectories; policy not wired through")
	}
}
