package sim

import (
	"fmt"

	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/obs"
)

// Outcome classifies how a mission ended, matching the paper's categories.
type Outcome int

// Mission outcomes.
const (
	// OutcomeCompleted means all waypoints were reached and the vehicle
	// landed and disarmed without crash or failsafe.
	OutcomeCompleted Outcome = iota + 1
	// OutcomeCrash means the vehicle impacted the ground or flipped over.
	OutcomeCrash
	// OutcomeFailsafe means the failsafe state machine terminated the
	// flight.
	OutcomeFailsafe
	// OutcomeTimeout means the vehicle neither finished nor visibly
	// failed within MaxSimTime (reported with the failsafe group in
	// failure tables: the operator would have terminated it).
	OutcomeTimeout
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeCrash:
		return "crash"
	case OutcomeFailsafe:
		return "failsafe"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Completed reports whether the mission succeeded.
func (o Outcome) Completed() bool { return o == OutcomeCompleted }

// TrajPoint is one trajectory capture (1 Hz when recording is enabled).
type TrajPoint struct {
	T       float64    `json:"t"`
	TruePos mathx.Vec3 `json:"true_pos"`
	EstPos  mathx.Vec3 `json:"est_pos"`
	TiltDeg float64    `json:"tilt_deg"`
}

// Result is the full record of one simulated mission, carrying every
// metric the paper's tables aggregate.
type Result struct {
	// MissionID identifies the Valencia mission (1..10).
	MissionID int `json:"mission_id"`
	// Injection is nil for gold (fault-free) runs.
	Injection *faultinject.Injection `json:"injection,omitempty"`
	// Outcome classifies the ending.
	Outcome Outcome `json:"outcome"`
	// FlightDurationSec is takeoff start to land/disarm, crash, or
	// failsafe activation (the paper's Flight Duration metric).
	FlightDurationSec float64 `json:"flight_duration_sec"`
	// DistanceKm is the EKF-estimated distance traveled (the paper's
	// Distance Traveled metric).
	DistanceKm float64 `json:"distance_km"`
	// InnerViolations and OuterViolations count bubble excursions at
	// tracking instants.
	InnerViolations int `json:"inner_violations"`
	OuterViolations int `json:"outer_violations"`
	// WaypointsReached counts route progress.
	WaypointsReached int `json:"waypoints_reached"`
	// FailsafeCause and CrashReason detail failures.
	FailsafeCause string `json:"failsafe_cause,omitempty"`
	CrashReason   string `json:"crash_reason,omitempty"`
	// Trajectory is non-nil when Config.RecordTrajectory was set.
	Trajectory []TrajPoint `json:"trajectory,omitempty"`
	// Diagnostics is the flight-data-recorder block (always populated by
	// finalize; nil only for results predating the recorder).
	Diagnostics *Diagnostics `json:"diagnostics,omitempty"`
}

// Diagnostics is the per-case flight-data-recorder block: the failure
// timeline and estimator statistics the aggregate outcome tables flatten
// away. Times are sim seconds; -1 means "never happened".
type Diagnostics struct {
	// FirstInnerViolationSec and FirstOuterViolationSec are when each
	// bubble was first broken (-1: never).
	FirstInnerViolationSec float64 `json:"first_inner_violation_sec"`
	FirstOuterViolationSec float64 `json:"first_outer_violation_sec"`
	// DistanceAtFirstOuterKm is the tracker's distance estimate when the
	// outer (containment) bubble was first broken (-1: never broken).
	DistanceAtFirstOuterKm float64 `json:"distance_at_first_outer_km"`
	// MaxTiltDeg is the largest true tilt seen at monitor rate.
	MaxTiltDeg float64 `json:"max_tilt_deg"`
	// EKF aiding statistics (cumulative over the flight).
	GPSFusions      int64   `json:"gps_fusions"`
	GPSGateRejects  int64   `json:"gps_gate_rejects"`
	BaroFusions     int64   `json:"baro_fusions"`
	BaroGateRejects int64   `json:"baro_gate_rejects"`
	MaxGPSRatio     float64 `json:"max_gps_ratio"`
	MaxBaroRatio    float64 `json:"max_baro_ratio"`
	EKFResets       int     `json:"ekf_resets"`
	// Redundancy and mitigation activity.
	SensorSwitches        int64 `json:"sensor_switches"`
	MitigationEngagements int64 `json:"mitigation_engagements"`
	// Trace is the retained event timeline (oldest-first); TraceDropped
	// counts events evicted from the ring; TraceSummary tallies retained
	// events per kind.
	Trace        []obs.Event    `json:"trace,omitempty"`
	TraceDropped int64          `json:"trace_dropped,omitempty"`
	TraceSummary map[string]int `json:"trace_summary,omitempty"`
	// TrajectoryTail is the black-box flight path: the last
	// BlackBoxTailSec seconds of tracking observations before the flight
	// ended, captured even when full trajectory recording is off.
	// Populated only for the cases the black-box dumper archives —
	// crashes and outer-bubble violations — to keep campaign results
	// files lean and benign flights allocation-free.
	TrajectoryTail []TrajPoint `json:"trajectory_tail,omitempty"`
}

// Label returns the injection label or "Gold Run".
func (r Result) Label() string {
	if r.Injection == nil {
		return "Gold Run"
	}
	return r.Injection.Label()
}
