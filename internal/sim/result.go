package sim

import (
	"fmt"

	"uavres/internal/faultinject"
	"uavres/internal/mathx"
)

// Outcome classifies how a mission ended, matching the paper's categories.
type Outcome int

// Mission outcomes.
const (
	// OutcomeCompleted means all waypoints were reached and the vehicle
	// landed and disarmed without crash or failsafe.
	OutcomeCompleted Outcome = iota + 1
	// OutcomeCrash means the vehicle impacted the ground or flipped over.
	OutcomeCrash
	// OutcomeFailsafe means the failsafe state machine terminated the
	// flight.
	OutcomeFailsafe
	// OutcomeTimeout means the vehicle neither finished nor visibly
	// failed within MaxSimTime (reported with the failsafe group in
	// failure tables: the operator would have terminated it).
	OutcomeTimeout
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeCrash:
		return "crash"
	case OutcomeFailsafe:
		return "failsafe"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Completed reports whether the mission succeeded.
func (o Outcome) Completed() bool { return o == OutcomeCompleted }

// TrajPoint is one trajectory capture (1 Hz when recording is enabled).
type TrajPoint struct {
	T       float64    `json:"t"`
	TruePos mathx.Vec3 `json:"true_pos"`
	EstPos  mathx.Vec3 `json:"est_pos"`
	TiltDeg float64    `json:"tilt_deg"`
}

// Result is the full record of one simulated mission, carrying every
// metric the paper's tables aggregate.
type Result struct {
	// MissionID identifies the Valencia mission (1..10).
	MissionID int `json:"mission_id"`
	// Injection is nil for gold (fault-free) runs.
	Injection *faultinject.Injection `json:"injection,omitempty"`
	// Outcome classifies the ending.
	Outcome Outcome `json:"outcome"`
	// FlightDurationSec is takeoff start to land/disarm, crash, or
	// failsafe activation (the paper's Flight Duration metric).
	FlightDurationSec float64 `json:"flight_duration_sec"`
	// DistanceKm is the EKF-estimated distance traveled (the paper's
	// Distance Traveled metric).
	DistanceKm float64 `json:"distance_km"`
	// InnerViolations and OuterViolations count bubble excursions at
	// tracking instants.
	InnerViolations int `json:"inner_violations"`
	OuterViolations int `json:"outer_violations"`
	// WaypointsReached counts route progress.
	WaypointsReached int `json:"waypoints_reached"`
	// FailsafeCause and CrashReason detail failures.
	FailsafeCause string `json:"failsafe_cause,omitempty"`
	CrashReason   string `json:"crash_reason,omitempty"`
	// Trajectory is non-nil when Config.RecordTrajectory was set.
	Trajectory []TrajPoint `json:"trajectory,omitempty"`
}

// Label returns the injection label or "Gold Run".
func (r Result) Label() string {
	if r.Injection == nil {
		return "Gold Run"
	}
	return r.Injection.Label()
}
