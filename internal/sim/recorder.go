package sim

import (
	"uavres/internal/ekf"
	"uavres/internal/obs"
)

// phaseCount covers the flightPhase values 1..4 (takeoff..done).
const phaseCount = 4

var phaseNames = [phaseCount]string{"takeoff", "cruise", "land", "done"}

// recorder is the vehicle's flight-data recorder: a per-run metrics
// registry plus a trace-event ring, updated from inside the step loop.
// Every update is allocation-free (resolved instruments, static detail
// strings) so the recorder rides the 500 Hz loop without touching the
// hot-path budget. It is driven exclusively by sim time — never the wall
// clock — so recorded values are deterministic and fork bit-identically.
type recorder struct {
	reg   *obs.Registry
	trace *obs.TraceBuffer

	// Resolved instruments (lock-free to update). The pointers are fixed
	// at construction; the instrument VALUES round-trip through
	// reg.Snapshot/Restore in snapshot/restore below.
	inner       *obs.Counter //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed
	outer       *obs.Counter //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed
	gpsRejects  *obs.Counter //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed
	baroRejects *obs.Counter //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed
	ekfResets   *obs.Counter //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed
	switches    *obs.Counter //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed
	mitigations *obs.Counter //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed
	maxTilt     *obs.Gauge   //lint:allow snapshotcomplete value round-trips via reg, pointer is fixed

	// Edge-detection and first-occurrence state; all value fields, so the
	// recorderSnapshot copy is a plain struct copy.
	st recorderState
}

// BlackBoxTailSec is the black-box window: how many trailing seconds of
// tracking observations the recorder retains for post-crash dumps. It is
// a package constant, not a Config field, because spec.Fingerprint
// hashes the full Config — a tunable here would invalidate every case
// hash and resume cache in existence.
const BlackBoxTailSec = 30

// blackBoxTailCap sizes the tail ring: tracking runs at 1 Hz (the
// u-space default), so the window plus one boundary observation.
const blackBoxTailCap = BlackBoxTailSec + 1

// recorderState is the recorder's scalar state: rising-edge latches (trace
// events fire on streak starts, not every instant) and first-occurrence
// timestamps (-1 until seen). It also embeds the black-box tail ring as
// plain value fields, so checkpoint snapshots copy it with the struct and
// forks stay bit-identical to straight-through runs.
type recorderState struct {
	// steps/phaseSteps are plain ints, not registry counters: the vehicle
	// is single-goroutine and these are the only instruments touched on
	// every 500 Hz step, so even an uncontended atomic add is measurable
	// overhead. The registry exposes them through gauge funcs that read
	// this state at snapshot time.
	steps      int64
	phaseSteps [phaseCount]int64

	lastPhase       flightPhase
	injActive       bool
	innerActive     bool
	outerActive     bool
	gpsStreak       bool
	baroStreak      bool
	prevGPSRejects  int64
	prevBaroRejects int64
	prevResets      int
	prevStuck       bool
	firstInnerT     float64
	firstOuterT     float64
	distFirstOuterM float64

	// Black-box tail ring (oldest at tailStart when full).
	tail      [blackBoxTailCap]TrajPoint
	tailStart int
	tailN     int
}

// newRecorder builds the registry, registers every instrument once (the
// step loop only ever touches resolved instruments), and seeds the edge
// state. dt is the physics step used to derive per-phase seconds.
func newRecorder(dt float64) *recorder {
	reg := obs.NewRegistry()
	r := &recorder{
		reg:   reg,
		trace: obs.NewTraceBuffer(obs.DefaultTraceCapacity),
		st:    recorderState{firstInnerT: -1, firstOuterT: -1, distFirstOuterM: -1},
	}
	reg.GaugeFunc("sim_steps_total", func() float64 { return float64(r.st.steps) })
	for i, n := range phaseNames {
		reg.GaugeFunc("sim_steps_phase_"+n, func() float64 { return float64(r.st.phaseSteps[i]) })
		reg.GaugeFunc("sim_seconds_phase_"+n, func() float64 { return float64(r.st.phaseSteps[i]) * dt })
	}
	r.inner = reg.Counter("bubble_inner_violations_total")
	r.outer = reg.Counter("bubble_outer_violations_total")
	r.gpsRejects = reg.Counter("ekf_gps_gate_rejects_total")
	r.baroRejects = reg.Counter("ekf_baro_gate_rejects_total")
	r.ekfResets = reg.Counter("ekf_resets_total")
	r.switches = reg.Counter("imu_primary_switches_total")
	r.mitigations = reg.Counter("mitigation_engagements_total")
	r.maxTilt = reg.Gauge("sim_max_tilt_deg")
	return r
}

// onStep counts one physics step against the current phase. It runs on
// every 500 Hz step, so it is plain increments only.
func (r *recorder) onStep(p flightPhase) {
	r.st.steps++
	if p >= 1 && int(p) <= phaseCount {
		r.st.phaseSteps[p-1]++
	}
}

// onPhase emits a trace event when the guidance phase changes.
func (r *recorder) onPhase(t float64, p flightPhase) {
	if p == r.st.lastPhase {
		return
	}
	r.st.lastPhase = p
	detail := p.label()
	if p >= 1 && int(p) <= phaseCount {
		detail = phaseNames[p-1]
	}
	r.trace.Append(obs.Event{T: t, Kind: obs.EventPhase, Detail: detail})
}

// onInjection tracks the fault window's edges.
func (r *recorder) onInjection(t float64, active bool) {
	if active == r.st.injActive {
		return
	}
	r.st.injActive = active
	kind := obs.EventInjectEnd
	if active {
		kind = obs.EventInjectStart
	}
	r.trace.Append(obs.Event{T: t, Kind: kind})
}

// onMitigation tracks the stuck-sensor latch's rising edge.
func (r *recorder) onMitigation(t float64, stuck bool) {
	if stuck && !r.st.prevStuck {
		r.mitigations.Inc()
		r.trace.Append(obs.Event{T: t, Kind: obs.EventMitigation})
	}
	r.st.prevStuck = stuck
}

// onRotorReconfig records the rotor-FDI monitor condemning a rotor — an
// actuator-side mitigation engagement, traced under the same counter and
// event kind as the sensor pipeline's latches.
func (r *recorder) onRotorReconfig(t float64) {
	r.mitigations.Inc()
	r.trace.Append(obs.Event{T: t, Kind: obs.EventMitigation, Detail: "rotor-reconfig"})
}

// onSensorSwitch records redundancy management switching the primary IMU.
func (r *recorder) onSensorSwitch(t float64) {
	r.switches.Inc()
	r.trace.Append(obs.Event{T: t, Kind: obs.EventSensorSwitch})
}

// afterGPS folds post-FuseGPS health into counters; trace events fire on
// the first rejection of a streak (every rejection still counts).
func (r *recorder) afterGPS(t float64, h ekf.Health) {
	r.gpsRejects.Add(h.GPSGateRejects - r.st.prevGPSRejects)
	rejected := h.GPSGateRejects > r.st.prevGPSRejects
	r.st.prevGPSRejects = h.GPSGateRejects
	if rejected && !r.st.gpsStreak {
		r.trace.Append(obs.Event{T: t, Kind: obs.EventGateReject, Detail: "gps", Value: h.LastGPSRatio})
	}
	r.st.gpsStreak = rejected
	r.onResets(t, h)
}

// afterBaro mirrors afterGPS for the barometer aiding path.
func (r *recorder) afterBaro(t float64, h ekf.Health) {
	r.baroRejects.Add(h.BaroGateRejects - r.st.prevBaroRejects)
	rejected := h.BaroGateRejects > r.st.prevBaroRejects
	r.st.prevBaroRejects = h.BaroGateRejects
	if rejected && !r.st.baroStreak {
		r.trace.Append(obs.Event{T: t, Kind: obs.EventGateReject, Detail: "baro", Value: h.LastBaroRatio})
	}
	r.st.baroStreak = rejected
	r.onResets(t, h)
}

// onResets detects filter reset-on-timeout events from the health report.
func (r *recorder) onResets(t float64, h ekf.Health) {
	if h.Resets > r.st.prevResets {
		r.ekfResets.Add(int64(h.Resets - r.st.prevResets))
		r.st.prevResets = h.Resets
		r.trace.Append(obs.Event{T: t, Kind: obs.EventEKFReset})
	}
}

// onTilt keeps the running tilt maximum (50 Hz monitor rate).
func (r *recorder) onTilt(tiltDeg float64) { r.maxTilt.Max(tiltDeg) }

// onTrack folds one tracking observation: bubble-violation rising edges,
// first-violation timestamps, and the distance flown when the outer bubble
// was first broken. distM is the tracker's distance estimate so far.
func (r *recorder) onTrack(t float64, innerViolated, outerViolated bool, distM float64) {
	if innerViolated {
		r.inner.Inc()
		if !r.st.innerActive {
			r.trace.Append(obs.Event{T: t, Kind: obs.EventInnerViolation})
		}
		if r.st.firstInnerT < 0 {
			r.st.firstInnerT = t
		}
	}
	r.st.innerActive = innerViolated
	if outerViolated {
		r.outer.Inc()
		if !r.st.outerActive {
			r.trace.Append(obs.Event{T: t, Kind: obs.EventOuterViolation})
		}
		if r.st.firstOuterT < 0 {
			r.st.firstOuterT = t
			r.st.distFirstOuterM = distM
		}
	}
	r.st.outerActive = outerViolated
}

// onTailPoint folds one tracking observation into the black-box ring,
// evicting the oldest point once the window is full. Allocation-free: the
// ring is a fixed array inside recorderState.
func (r *recorder) onTailPoint(p TrajPoint) {
	if r.st.tailN < blackBoxTailCap {
		r.st.tail[(r.st.tailStart+r.st.tailN)%blackBoxTailCap] = p
		r.st.tailN++
		return
	}
	r.st.tail[r.st.tailStart] = p
	r.st.tailStart = (r.st.tailStart + 1) % blackBoxTailCap
}

// tailPoints returns the retained tail oldest-first (nil when empty).
func (r *recorder) tailPoints() []TrajPoint {
	if r.st.tailN == 0 {
		return nil
	}
	out := make([]TrajPoint, r.st.tailN)
	for i := 0; i < r.st.tailN; i++ {
		out[i] = r.st.tail[(r.st.tailStart+i)%blackBoxTailCap]
	}
	return out
}

// onOutcome records the terminal event. detail must be a pre-built string
// (outcome paths run once, so this is off the hot path anyway).
func (r *recorder) onOutcome(t float64, kind obs.EventKind, detail string) {
	r.trace.Append(obs.Event{T: t, Kind: kind, Detail: detail})
}

// recorderSnapshot captures the recorder for checkpointing. Forked
// vehicles restore it into their own fresh registry and ring, so sibling
// forks never share instruments (obs.Registry.Restore's contract).
type recorderSnapshot struct {
	metrics obs.Snapshot
	trace   obs.TraceSnapshot
	st      recorderState
}

func (r *recorder) snapshot() recorderSnapshot {
	return recorderSnapshot{metrics: r.reg.Snapshot(), trace: r.trace.Snapshot(), st: r.st}
}

func (r *recorder) restore(s recorderSnapshot) error {
	r.st = s.st
	r.trace.Restore(s.trace)
	return r.reg.Restore(s.metrics)
}

// diagnostics assembles the per-case diagnostics block from the recorder
// and the filter's health report. withTail attaches the black-box
// trajectory ring (crash/violation flights only — see finalize). It reads but
// never mutates state, so finalize stays safe to call repeatedly.
func (r *recorder) diagnostics(h ekf.Health, withTail bool) *Diagnostics {
	distKm := -1.0
	if r.st.distFirstOuterM >= 0 {
		distKm = r.st.distFirstOuterM / 1000
	}
	d := &Diagnostics{
		FirstInnerViolationSec: r.st.firstInnerT,
		FirstOuterViolationSec: r.st.firstOuterT,
		DistanceAtFirstOuterKm: distKm,
		MaxTiltDeg:             r.maxTilt.Value(),
		GPSFusions:             h.GPSFusions,
		GPSGateRejects:         h.GPSGateRejects,
		BaroFusions:            h.BaroFusions,
		BaroGateRejects:        h.BaroGateRejects,
		MaxGPSRatio:            h.MaxGPSRatio,
		MaxBaroRatio:           h.MaxBaroRatio,
		EKFResets:              h.Resets,
		SensorSwitches:         r.switches.Value(),
		MitigationEngagements:  r.mitigations.Value(),
		Trace:                  r.trace.Events(),
		TraceDropped:           r.trace.Dropped(),
		TraceSummary:           r.trace.CountByKind(),
	}
	if withTail {
		d.TrajectoryTail = r.tailPoints()
	}
	return d
}
