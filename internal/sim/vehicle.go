package sim

import (
	"fmt"
	"math"
	"strconv"

	"uavres/internal/bubble"
	"uavres/internal/control"
	"uavres/internal/ekf"
	"uavres/internal/failsafe"
	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/mitigation"
	"uavres/internal/obs"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// Telemetry is the 1 Hz tracker-rate observation delivered to an optional
// observer (the telemetry/U-space pipeline or a live monitor).
type Telemetry struct {
	T         float64
	MissionID int
	EstPos    mathx.Vec3
	EstVel    mathx.Vec3
	TruePos   mathx.Vec3
	Airspeed  float64
	Bubble    bubble.Sample
	Phase     string
	Health    ekf.Health
	EstState  ekf.State
	TrueAtt   mathx.Quat
}

// Observer receives tracker-rate telemetry during a run.
type Observer func(Telemetry)

// Run simulates one mission to completion under the given configuration.
// inj is nil for a gold (fault-free) run. obs may be nil.
func Run(cfg Config, m mission.Mission, inj *faultinject.Injection, obs Observer) (Result, error) {
	v, err := NewVehicle(cfg, m, inj, obs)
	if err != nil {
		return Result{}, err
	}
	return v.RunToEnd(), nil
}

// Vehicle is one fully assembled simulated drone mid-run: physics, wind,
// sensors, fault injector, EKF, controller, failsafe, guidance, and the
// U-space tracker, plus the step-loop state that used to live in Run's
// locals. Factoring it out of Run makes a run interruptible: Snapshot
// captures everything, and Checkpoint.Fork resumes bit-identically —
// the basis of checkpoint-and-fork campaign execution.
type Vehicle struct {
	//lint:allow snapshotcomplete address-taken read-only in stepOnce; forks are rebuilt from the checkpoint's cfg by NewVehicle
	cfg Config
	m   mission.Mission
	inj *faultinject.Injection
	obs Observer

	wind *physics.Wind
	body *physics.Body
	imus *sensors.RedundantIMUs
	gps  *sensors.GPS
	baro *sensors.Baro
	mag  *sensors.Mag
	//lint:allow snapshotcomplete deliberately outside restoreFrom: Fork and ForkWithInjection restore different injectors
	injector *faultinject.Injector
	filter   *ekf.Filter
	mitigate *mitigation.Pipeline
	rotorMon *mitigation.RotorMonitor
	ctl      *control.Controller
	monitor  *failsafe.Monitor
	crash    *failsafe.CrashDetector
	guide    *guidance
	tracker  *bubble.Tracker
	rec      *recorder

	res  Result
	done bool

	// Step-loop state.
	step        int // next physics step index; sim time = step * PhysicsDt
	steps       int
	imuDt       float64
	lastIMU     sensors.IMUSample // post-mitigation primary sample
	lastClean   sensors.IMUSample // pre-injection primary sample
	haveIMU     bool
	sp          control.Setpoint
	monitorTick sensors.Ticker
	gravityTick sensors.Ticker
	guideTick   sensors.Ticker
	beenAir     bool
	voteStrikes int
	prevEstPos  mathx.Vec3
	havePrevEst bool
	distM       float64

	// Derived constants (from cfg; never snapshotted).
	votePersist   int
	voteAccelTol  float64
	voteGyroTol   float64
	distCapPerObs float64
	//lint:allow snapshotcomplete scratch buffer fully overwritten by SampleAllInto before every use
	sampleBuf []sensors.IMUSample // reused by SampleAllInto
	// covFullUntil bounds the sim time before which the EKF covariance is
	// forced to the exact per-step path on a faulted flight: everything up
	// to the end of the fault window plus CovSettleSec of settle margin.
	// The pre-fault prefix must stay exact too, not just the window: any
	// covariance difference at injection time — however small — is
	// amplified by the fault's chaotic dynamics and scrambles the
	// crash/failsafe verdict, defeating the k=4 == k=1 outcome guarantee.
	// Decimation therefore pays off on the post-settle tail of faulted
	// flights and on the whole of fault-free ones. Derived from this
	// vehicle's own injection, so checkpoint forks recompute it for THEIR
	// injection. Negative means never forced (gold runs).
	covFullUntil float64
}

// NewVehicle assembles a vehicle at mission start. inj is nil for a gold
// run; obs may be nil.
func NewVehicle(cfg Config, m mission.Mission, inj *faultinject.Injection, obs Observer) (*Vehicle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}

	// The root environment stream carries the campaign's RNG policy; every
	// derived per-component stream inherits it via Child. The seed
	// derivation is bit-identical to the historical NewRand(rng.Int63())
	// chain, so polar-policy runs reproduce every recorded campaign.
	pol, _ := mathx.ParseNormPolicy(cfg.RNGPolicy) // already validated above
	rng := mathx.NewRandPolicy(cfg.Seed, pol)

	// Environment: wind direction drawn from the run seed.
	dir := rng.Float64() * 2 * math.Pi
	wind := physics.NewWind(
		windFromSeed(cfg, mathx.V3(math.Cos(dir), math.Sin(dir), 0)),
		cfg.WindGustStd, 2.0,
		rng.Child(),
	)

	body, err := physics.NewBody(cfg.Airframe, wind)
	if err != nil {
		return nil, err
	}
	body.SetState(physics.State{Pos: m.Start, Att: mathx.QuatIdentity()})

	imus, err := sensors.NewRedundantIMUs(cfg.IMUCount, cfg.IMUSpec, rng.Child())
	if err != nil {
		return nil, err
	}
	gps := sensors.NewGPS(cfg.GPSSpec, rng.Child())
	baro := sensors.NewBaro(cfg.BaroSpec, rng.Child())
	mag := sensors.NewMag(cfg.MagSpec, rng.Child())

	var injector *faultinject.Injector
	if inj != nil {
		injector, err = faultinject.New(*inj)
		if err != nil {
			return nil, err
		}
		if !inj.SensorTarget() && inj.Rotor >= cfg.Airframe.Layout.Rotors() {
			return nil, fmt.Errorf("sim: rotor fault on rotor %d but airframe %s has %d rotors",
				inj.Rotor, cfg.Airframe.Layout, cfg.Airframe.Layout.Rotors())
		}
	}

	filter := ekf.New(cfg.EKF)
	filter.Reset(ekf.State{Att: mathx.QuatIdentity(), Pos: m.Start})

	mitigate, err := mitigation.NewPipeline(cfg.Mitigation)
	if err != nil {
		return nil, err
	}

	tracker, err := bubble.NewTracker(m, cfg.RiskR, cfg.TrackingInterval)
	if err != nil {
		return nil, err
	}

	v := &Vehicle{
		cfg:      cfg,
		m:        m,
		inj:      inj,
		obs:      obs,
		wind:     wind,
		body:     body,
		imus:     imus,
		gps:      gps,
		baro:     baro,
		mag:      mag,
		injector: injector,
		filter:   filter,
		mitigate: mitigate,
		ctl:      control.New(cfg.Gains, cfg.Airframe, 1/cfg.IMUSpec.RateHz),
		monitor:  failsafe.NewMonitor(cfg.Failsafe),
		crash:    failsafe.NewCrashDetector(cfg.Failsafe),
		guide:    newGuidance(m),
		tracker:  tracker,
		rec:      newRecorder(cfg.PhysicsDt),

		res:         Result{MissionID: m.ID, Injection: inj},
		steps:       int(cfg.MaxSimTime / cfg.PhysicsDt),
		imuDt:       1 / cfg.IMUSpec.RateHz,
		monitorTick: sensors.NewTicker(50),
		gravityTick: sensors.NewTicker(25),
		guideTick:   sensors.NewTicker(50),
		prevEstPos:  m.Start,

		votePersist:   cfg.VotePersistSamples,
		voteAccelTol:  cfg.VoteAccelTol,
		voteGyroTol:   cfg.VoteGyroTol,
		distCapPerObs: 3 * m.Drone.MaxSpeedMS * cfg.TrackingInterval,
		sampleBuf:     make([]sensors.IMUSample, 0, imus.Count()),
		covFullUntil:  -1,
	}
	if inj != nil {
		v.covFullUntil = (inj.Start + inj.Duration).Seconds() + cfg.CovSettleSec
	}
	if v.votePersist <= 0 {
		v.votePersist = 5
	}
	if v.voteAccelTol <= 0 {
		v.voteAccelTol = 3.0
	}
	if v.voteGyroTol <= 0 {
		v.voteGyroTol = 0.3
	}
	if cfg.Mitigation.RotorFDIEnabled() {
		v.rotorMon = mitigation.NewRotorMonitor(
			cfg.Mitigation, cfg.Airframe.Layout.Rotors(), cfg.Airframe.MotorTau, v.imuDt)
	}
	if cfg.RecordTrajectory {
		interval := cfg.TrackingInterval
		if interval <= 0 {
			interval = bubble.DefaultTrackingInterval
		}
		v.res.Trajectory = make([]TrajPoint, 0, int(cfg.MaxSimTime/interval)+1)
	}
	// On the pad the controller needs an initial setpoint.
	v.sp = v.guide.update(0, m.Start, 0, true)
	return v, nil
}

// T returns the sim time of the next step to execute (s).
func (v *Vehicle) T() float64 { return float64(v.step) * v.cfg.PhysicsDt }

// Done reports whether the run reached an outcome before MaxSimTime.
func (v *Vehicle) Done() bool { return v.done }

// RunToEnd executes remaining steps until an outcome or MaxSimTime and
// returns the final result.
func (v *Vehicle) RunToEnd() Result {
	for !v.done && v.step < v.steps {
		v.stepOnce()
	}
	return v.finalize()
}

// RunUntil executes steps while sim time is below tLimit seconds (and no
// outcome has been reached). The next step to execute after return is the
// first with t >= tLimit, which makes the split point exact: forking at
// tLimit and running straight through execute identical step sequences.
func (v *Vehicle) RunUntil(tLimit float64) {
	for !v.done && v.step < v.steps && float64(v.step)*v.cfg.PhysicsDt < tLimit {
		v.stepOnce()
	}
}

// finalize derives the Result fields computed after the step loop. It does
// not mutate the vehicle, so it is safe to call more than once.
func (v *Vehicle) finalize() Result {
	res := v.res
	if res.Outcome == 0 {
		res.Outcome = OutcomeTimeout
		res.FlightDurationSec = v.cfg.MaxSimTime
	}
	res.DistanceKm = v.distM / 1000
	res.InnerViolations = v.tracker.InnerViolations()
	res.OuterViolations = v.tracker.OuterViolations()
	res.WaypointsReached = v.guide.waypointsReached()
	// The black-box tail is attached only to the flights the black-box
	// dumper archives — crashes and containment violations: campaign
	// results stay lean (and benign timeouts allocation-free) while
	// every dumped case carries the trajectory evidence.
	withTail := res.Outcome == OutcomeCrash || res.OuterViolations > 0
	res.Diagnostics = v.rec.diagnostics(v.filter.Health(), withTail)
	return res
}

// Metrics returns a point-in-time snapshot of the vehicle's flight-data
// recorder registry (per-phase step counts, violation and gate-reject
// counters, tilt maximum).
func (v *Vehicle) Metrics() obs.Snapshot { return v.rec.reg.Snapshot() }

// envDraws carries one tick's environment deviates, drawn once from a
// donor vehicle's streams (drawEnv) and composed into every lockstep fork
// (stepEnv). All environment noise is state-independent — sensor noise is
// additive to ground truth and the wind gust is a pure function of time —
// and each component owns its own stream, so the same deviates are exactly
// what each fork's own streams would have produced from the shared
// checkpoint. The buffers are reused across ticks.
type envDraws struct {
	imuDue   bool
	imuNoise []sensors.IMUNoise
	gpsDue   bool
	gpsNoise sensors.GPSNoise
	baroDue  bool
	baroNoise float64
	magDue   bool
	magNoise float64
	wind     mathx.Vec3
}

// drawEnv advances only the vehicle's environment streams by one physics
// step, consuming exactly the deviates stepOnce would, and records them in
// env. The caller is the batch runner's donor vehicle: no physics, EKF,
// control, or guidance runs, and the vehicle must never be stepped for
// real afterwards. The donor's IMU schedule is the unswitched primary's;
// forks that switch primaries are ejected by the batch before their
// schedule can diverge.
func (v *Vehicle) drawEnv(env *envDraws) {
	t := float64(v.step) * v.cfg.PhysicsDt
	env.imuDue = v.imus.Due(t)
	if env.imuDue {
		env.imuNoise = v.imus.DrawNoiseInto(env.imuNoise)
	}
	env.gpsDue = v.gps.Due(t)
	if env.gpsDue {
		env.gpsNoise = v.gps.DrawNoise()
	}
	env.baroDue = v.baro.Due(t)
	if env.baroDue {
		env.baroNoise = v.baro.DrawNoise()
	}
	env.magDue = v.mag.Due(t)
	if env.magDue {
		env.magNoise = v.mag.DrawNoise()
	}
	env.wind = v.body.StepWind(v.cfg.PhysicsDt)
	v.step++
}

// stepOnce advances the simulation by one physics step, drawing all
// environment noise from the vehicle's own streams.
func (v *Vehicle) stepOnce() { v.stepEnv(nil) }

// stepEnv advances the simulation by one physics step. With a nil env it
// draws environment noise from the vehicle's own streams (the scalar
// path); otherwise it composes the shared deviates in env and leaves its
// own environment streams untouched (the batch path). Both paths execute
// bit-identical arithmetic.
func (v *Vehicle) stepEnv(env *envDraws) {
	cfg := &v.cfg
	t := float64(v.step) * cfg.PhysicsDt

	// --- Sense (250 Hz), corrupt, estimate, control.
	if v.imus.Due(t) {
		var all []sensors.IMUSample
		if env == nil {
			all = v.imus.SampleAllInto(v.sampleBuf, t, v.body.SpecificForce(), v.body.AngularRate())
		} else {
			all = v.imus.SampleAllWith(v.sampleBuf, t, v.body.SpecificForce(), v.body.AngularRate(), env.imuNoise)
		}
		v.sampleBuf = all
		clean := all[v.imus.Primary()]
		v.lastClean = clean
		if v.injector != nil {
			if v.inj.SensorTarget() {
				// The fault corrupts the sensor output stream: every
				// affected unit reads the same corrupted values.
				corrupted := v.injector.Apply(clean)
				for i := range all {
					if v.inj.AffectsUnit(i) {
						all[i] = corrupted
					}
				}
			}
			v.rec.onInjection(t, v.injector.Active(t))
		}
		raw := all[v.imus.Primary()]

		// Cross-IMU consistency voting (redundancy management): a
		// primary that persistently disagrees with the unit majority
		// is switched out long before the failsafe-level checks see
		// anything.
		if cfg.RedundancyVoting {
			if sensors.VoteOutlier(all, v.imus.Primary(), v.voteAccelTol, v.voteGyroTol) {
				v.voteStrikes++
				if v.voteStrikes >= v.votePersist {
					v.imus.SwitchPrimary()
					v.rec.onSensorSwitch(t)
					v.voteStrikes = 0
					raw = all[v.imus.Primary()]
					// The outgoing unit polluted recent predictions:
					// reopen uncertainty and coarse-realign attitude
					// from the incoming (trusted) unit.
					v.filter.NotifySensorSwitch()
					v.filter.RealignLevel(raw.Accel)
				}
			} else {
				v.voteStrikes = 0
			}
		}
		if cfg.Mitigation.Enabled() {
			// The mitigation pipeline sits where a real flight stack
			// would deploy it: after the (possibly faulty) sensor
			// output, before every consumer.
			raw, _ = v.mitigate.Apply(raw)
			v.rec.onMitigation(t, v.mitigate.StuckDetected())
		}
		v.lastIMU = raw
		v.haveIMU = true

		ekfSample := raw
		if cfg.ShieldEKF {
			ekfSample = clean // ablation: estimation path protected
		}
		if v.injector != nil {
			// Faulted flight: covariance at full rate from launch through
			// the fault window plus settle margin (see covFullUntil), so
			// decimation can neither seed a pre-fault difference for the
			// fault to amplify nor blur the fault-response transient.
			v.filter.SetCovarianceFullRate(t < v.covFullUntil)
		}
		v.filter.Predict(ekfSample, v.imuDt)
		if v.gravityTick.Due(t) {
			v.filter.FuseGravity(ekfSample)
		}

		est := v.filter.State()
		rateFeedback := raw.Gyro
		if cfg.ShieldRateLoop {
			rateFeedback = clean.Gyro // ablation: control path protected
		}
		cmd, _ := v.ctl.Update(v.imuDt, control.Estimate{Att: est.Att, Vel: est.Vel, Pos: est.Pos}, rateFeedback, v.sp)
		if v.rotorMon != nil {
			// FDI compares what the controller intends against what the
			// rotors measurably did; the fault acts between the two.
			if v.rotorMon.Observe(cmd, v.body.RotorStates()) {
				v.onRotorCondemned(t)
			}
		}
		if v.injector != nil && !v.inj.SensorTarget() {
			// Actuator faults corrupt the command on its way to the ESC.
			cmd = v.injector.ApplyActuator(t, cmd)
		}
		v.body.SetMotorCommands(cmd)
	}

	// Hoist the per-step state copies: the body state is constant until
	// body.Step below, and the filter state is constant once the aiding
	// fusions for this step have run, so each is copied at most once per
	// step instead of per consumer.
	gpsDue := v.gps.Due(t)
	baroDue := v.baro.Due(t)
	magDue := v.mag.Due(t)
	monitorDue := v.monitorTick.Due(t)
	guideDue := v.guideTick.Due(t)
	trackDue := v.tracker.Due(t)

	var bst physics.State
	if gpsDue || baroDue || magDue || monitorDue || guideDue || trackDue {
		bst = v.body.State()
	}

	if gpsDue {
		var s sensors.GPSSample
		if env == nil {
			s = v.gps.Sample(t, bst.Pos, bst.Vel)
		} else {
			s = v.gps.SampleWith(t, bst.Pos, bst.Vel, env.gpsNoise)
		}
		v.filter.FuseGPS(s)
		v.rec.afterGPS(t, v.filter.Health())
	}
	if baroDue {
		var s sensors.BaroSample
		if env == nil {
			s = v.baro.Sample(t, bst.AltitudeM())
		} else {
			s = v.baro.SampleWith(t, bst.AltitudeM(), env.baroNoise)
		}
		v.filter.FuseBaro(s)
		v.rec.afterBaro(t, v.filter.Health())
	}
	if magDue {
		// The magnetometer is not a fault-injection target (paper
		// Section I): it reads true heading plus its own error model.
		_, _, trueYaw := bst.Att.Euler()
		var s sensors.MagSample
		if env == nil {
			s = v.mag.Sample(t, trueYaw)
		} else {
			s = v.mag.SampleWith(t, trueYaw, env.magNoise)
		}
		v.filter.FuseMag(s)
	}

	var est ekf.State
	if monitorDue || guideDue || trackDue {
		est = v.filter.State()
	}

	// --- Protective layer (50 Hz).
	if monitorDue && v.haveIMU {
		fobs := failsafe.Observation{
			T: t, IMU: v.lastIMU, Health: v.filter.Health(),
			EstVelHorizMS: est.Vel.NormXY(),
			MaxSpeedMS:    v.m.Drone.MaxSpeedMS,
			StuckSensor:   v.mitigate.StuckDetected(),
		}
		v.rec.onTilt(mathx.Rad2Deg(bst.Att.TiltAngle()))
		if v.monitor.Update(fobs, v.imus) == failsafe.PhaseActive {
			// Flight termination: record and stop.
			v.res.Outcome = OutcomeFailsafe
			v.res.FailsafeCause = v.monitor.Cause().String()
			v.res.FlightDurationSec = t
			v.rec.onOutcome(t, obs.EventFailsafe, v.res.FailsafeCause)
			v.done = true
			return
		}
		if bst.AltitudeM() > 2 {
			v.beenAir = true
		}
		if v.beenAir {
			v.crash.Update(t, bst.OnGround(), v.body.TouchdownSpeed(), bst.Att.TiltAngle())
			if v.crash.Crashed() {
				v.res.Outcome = OutcomeCrash
				v.res.CrashReason = v.crash.Reason()
				v.res.FlightDurationSec = t
				v.rec.onOutcome(t, obs.EventCrash, v.res.CrashReason)
				v.done = true
				return
			}
		}
		if !bst.IsFinite() {
			// Integration blow-up counts as a crash: the vehicle is
			// physically gone.
			v.res.Outcome = OutcomeCrash
			v.res.CrashReason = "state blow-up"
			v.res.FlightDurationSec = t
			v.rec.onOutcome(t, obs.EventCrash, v.res.CrashReason)
			v.done = true
			return
		}
	}

	// --- Guidance (50 Hz).
	if guideDue {
		v.sp = v.guide.update(t, est.Pos, est.Vel.Norm(), bst.OnGround())
		v.rec.onPhase(t, v.guide.phase)
		if v.guide.done() {
			v.res.Outcome = OutcomeCompleted
			v.res.FlightDurationSec = t
			v.rec.onOutcome(t, obs.EventComplete, "")
			v.done = true
			return
		}
	}

	// --- U-space tracking (1 Hz): bubbles, distance, telemetry.
	if trackDue {
		if s, ok := v.tracker.Observe(t, est.Pos, v.body.Airspeed()); ok {
			if v.havePrevEst {
				d := est.Pos.Dist(v.prevEstPos)
				// Tracker plausibility filter: a diverged estimate can
				// teleport; the tracking system bounds per-interval travel
				// by the drone's physical capability.
				v.distM += math.Min(d, v.distCapPerObs)
			}
			v.prevEstPos = est.Pos
			v.havePrevEst = true
			v.rec.onTrack(t, s.InnerViolated, s.OuterViolated, v.distM)

			point := TrajPoint{
				T: t, TruePos: bst.Pos, EstPos: est.Pos,
				TiltDeg: mathx.Rad2Deg(bst.Att.TiltAngle()),
			}
			// The black-box ring captures the tail unconditionally; the
			// full trajectory only when the (figure-oriented) flag asks.
			v.rec.onTailPoint(point)
			if cfg.RecordTrajectory {
				v.res.Trajectory = append(v.res.Trajectory, point)
			}
			if v.obs != nil {
				v.obs(Telemetry{
					T: t, MissionID: v.m.ID,
					EstPos: est.Pos, EstVel: est.Vel,
					TruePos: bst.Pos, Airspeed: v.body.Airspeed(),
					Bubble: s, Phase: v.guide.phase.label(),
					Health: v.filter.Health(), EstState: est, TrueAtt: bst.Att,
				})
			}
		}
	}

	if env == nil {
		v.body.Step(cfg.PhysicsDt)
	} else {
		v.body.StepWithWind(cfg.PhysicsDt, env.wind)
	}
	v.rec.onStep(v.guide.phase)
	v.step++
}

// onRotorCondemned reacts to the FDI monitor latching a new condemned
// rotor: record the event and, when configured, re-solve the control
// allocation around the condemned set.
func (v *Vehicle) onRotorCondemned(t float64) {
	v.rec.onRotorReconfig(t)
	if v.cfg.Mitigation.ReconfigAllocation {
		v.ctl.SetAllocator(v.reconfiguredAllocator())
	}
}

// reconfiguredAllocator maps the monitor's current condemned set to a
// weighted allocation, or nil when the airframe cannot be reconfigured
// (nothing condemned, or too few healthy rotors — then the vehicle keeps
// flying on the nominal allocation and the failsafe judges the outcome).
func (v *Vehicle) reconfiguredAllocator() *physics.Allocator {
	if v.rotorMon == nil || !v.rotorMon.AnyCondemned() {
		return nil
	}
	w := v.rotorMon.Weights(v.cfg.Airframe.Layout, v.cfg.Mitigation.OppositeDerate)
	a, err := v.body.Mixer().ReconfiguredAllocator(w)
	if err != nil {
		return nil
	}
	return a
}

// label formats the phase for telemetry without allocating on the common
// path (the 1 Hz observer used to Sprintf this every sample).
func (p flightPhase) label() string {
	switch p {
	case phaseTakeoff:
		return "1"
	case phaseCruise:
		return "2"
	case phaseLand:
		return "3"
	case phaseDone:
		return "4"
	default:
		return strconv.Itoa(int(p))
	}
}
