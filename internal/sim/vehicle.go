package sim

import (
	"fmt"
	"math"
	"math/rand"

	"uavres/internal/bubble"
	"uavres/internal/control"
	"uavres/internal/ekf"
	"uavres/internal/failsafe"
	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/mitigation"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// Telemetry is the 1 Hz tracker-rate observation delivered to an optional
// observer (the telemetry/U-space pipeline or a live monitor).
type Telemetry struct {
	T         float64
	MissionID int
	EstPos    mathx.Vec3
	EstVel    mathx.Vec3
	TruePos   mathx.Vec3
	Airspeed  float64
	Bubble    bubble.Sample
	Phase     string
	Health    ekf.Health
	EstState  ekf.State
	TrueAtt   mathx.Quat
}

// Observer receives tracker-rate telemetry during a run.
type Observer func(Telemetry)

// Run simulates one mission to completion under the given configuration.
// inj is nil for a gold (fault-free) run. obs may be nil.
func Run(cfg Config, m mission.Mission, inj *faultinject.Injection, obs Observer) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Environment: wind direction drawn from the run seed.
	dir := rng.Float64() * 2 * math.Pi
	wind := physics.NewWind(
		windFromSeed(cfg, mathx.V3(math.Cos(dir), math.Sin(dir), 0)),
		cfg.WindGustStd, 2.0,
		rand.New(rand.NewSource(rng.Int63())),
	)

	body, err := physics.NewBody(cfg.Airframe, wind)
	if err != nil {
		return Result{}, err
	}
	start := physics.State{Pos: m.Start, Att: mathx.QuatIdentity()}
	body.SetState(start)

	imus, err := sensors.NewRedundantIMUs(cfg.IMUCount, cfg.IMUSpec, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		return Result{}, err
	}
	gps := sensors.NewGPS(cfg.GPSSpec, rand.New(rand.NewSource(rng.Int63())))
	baro := sensors.NewBaro(cfg.BaroSpec, rand.New(rand.NewSource(rng.Int63())))
	mag := sensors.NewMag(cfg.MagSpec, rand.New(rand.NewSource(rng.Int63())))

	var injector *faultinject.Injector
	if inj != nil {
		injector, err = faultinject.New(*inj)
		if err != nil {
			return Result{}, err
		}
	}

	filter := ekf.New(cfg.EKF)
	filter.Reset(ekf.State{Att: mathx.QuatIdentity(), Pos: m.Start})

	mitigate, err := mitigation.NewPipeline(cfg.Mitigation)
	if err != nil {
		return Result{}, err
	}

	ctl := control.New(cfg.Gains, cfg.Airframe, 1/cfg.IMUSpec.RateHz)
	monitor := failsafe.NewMonitor(cfg.Failsafe)
	crash := failsafe.NewCrashDetector(cfg.Failsafe)
	guide := newGuidance(m)

	tracker, err := bubble.NewTracker(m, cfg.RiskR, cfg.TrackingInterval)
	if err != nil {
		return Result{}, err
	}

	res := Result{MissionID: m.ID, Injection: inj}

	var (
		t             float64
		imuDt         = 1 / cfg.IMUSpec.RateHz
		lastIMU       sensors.IMUSample
		haveIMU       bool
		sp            control.Setpoint
		monitorTick   = sensors.NewTicker(50)
		gravityTick   = sensors.NewTicker(25)
		guideTick     = sensors.NewTicker(50)
		beenAirborne  bool
		voteStrikes   int
		votePersist   = cfg.VotePersistSamples
		voteAccelTol  = cfg.VoteAccelTol
		voteGyroTol   = cfg.VoteGyroTol
		prevEstPos    = m.Start
		havePrevEst   bool
		distM         float64
		distCapPerObs = 3 * m.Drone.MaxSpeedMS * cfg.TrackingInterval
	)
	if votePersist <= 0 {
		votePersist = 5
	}
	if voteAccelTol <= 0 {
		voteAccelTol = 3.0
	}
	if voteGyroTol <= 0 {
		voteGyroTol = 0.3
	}
	// On the pad the controller needs an initial setpoint.
	sp = guide.update(0, m.Start, 0, true)

	steps := int(cfg.MaxSimTime / cfg.PhysicsDt)
	for i := 0; i < steps; i++ {
		t = float64(i) * cfg.PhysicsDt

		// --- Sense (250 Hz), corrupt, estimate, control.
		if imus.Due(t) {
			all := imus.SampleAll(t, body.SpecificForce(), body.AngularRate())
			clean := all[imus.Primary()]
			if injector != nil {
				// The fault corrupts the sensor output stream: every
				// affected unit reads the same corrupted values.
				corrupted := injector.Apply(clean)
				for i := range all {
					if inj.AffectsUnit(i) {
						all[i] = corrupted
					}
				}
			}
			raw := all[imus.Primary()]

			// Cross-IMU consistency voting (redundancy management): a
			// primary that persistently disagrees with the unit majority
			// is switched out long before the failsafe-level checks see
			// anything.
			if cfg.RedundancyVoting {
				if sensors.VoteOutlier(all, imus.Primary(), voteAccelTol, voteGyroTol) {
					voteStrikes++
					if voteStrikes >= votePersist {
						imus.SwitchPrimary()
						voteStrikes = 0
						raw = all[imus.Primary()]
						// The outgoing unit polluted recent predictions:
						// reopen uncertainty and coarse-realign attitude
						// from the incoming (trusted) unit.
						filter.NotifySensorSwitch()
						filter.RealignLevel(raw.Accel)
					}
				} else {
					voteStrikes = 0
				}
			}
			if cfg.Mitigation.Enabled() {
				// The mitigation pipeline sits where a real flight stack
				// would deploy it: after the (possibly faulty) sensor
				// output, before every consumer.
				raw, _ = mitigate.Apply(raw)
			}
			lastIMU = raw
			haveIMU = true

			ekfSample := raw
			if cfg.ShieldEKF {
				ekfSample = clean // ablation: estimation path protected
			}
			filter.Predict(ekfSample, imuDt)
			if gravityTick.Due(t) {
				filter.FuseGravity(ekfSample)
			}

			est := filter.State()
			rateFeedback := raw.Gyro
			if cfg.ShieldRateLoop {
				rateFeedback = clean.Gyro // ablation: control path protected
			}
			cmd, _ := ctl.Update(imuDt, control.Estimate{Att: est.Att, Vel: est.Vel, Pos: est.Pos}, rateFeedback, sp)
			body.SetMotorCommands(cmd)
		}
		if gps.Due(t) {
			st := body.State()
			filter.FuseGPS(gps.Sample(t, st.Pos, st.Vel))
		}
		if baro.Due(t) {
			filter.FuseBaro(baro.Sample(t, body.State().AltitudeM()))
		}
		if mag.Due(t) {
			// The magnetometer is not a fault-injection target (paper
			// Section I): it reads true heading plus its own error model.
			_, _, trueYaw := body.State().Att.Euler()
			filter.FuseMag(mag.Sample(t, trueYaw))
		}

		// --- Protective layer (50 Hz).
		if monitorTick.Due(t) && haveIMU {
			obs := failsafe.Observation{
				T: t, IMU: lastIMU, Health: filter.Health(),
				EstVelHorizMS: filter.State().Vel.NormXY(),
				MaxSpeedMS:    m.Drone.MaxSpeedMS,
				StuckSensor:   mitigate.StuckDetected(),
			}
			if monitor.Update(obs, imus) == failsafe.PhaseActive {
				// Flight termination: record and stop.
				res.Outcome = OutcomeFailsafe
				res.FailsafeCause = monitor.Cause().String()
				res.FlightDurationSec = t
				break
			}
			st := body.State()
			if st.AltitudeM() > 2 {
				beenAirborne = true
			}
			if beenAirborne {
				crash.Update(t, st.OnGround(), body.TouchdownSpeed(), st.Att.TiltAngle())
				if crash.Crashed() {
					res.Outcome = OutcomeCrash
					res.CrashReason = crash.Reason()
					res.FlightDurationSec = t
					break
				}
			}
			if !st.IsFinite() {
				// Integration blow-up counts as a crash: the vehicle is
				// physically gone.
				res.Outcome = OutcomeCrash
				res.CrashReason = "state blow-up"
				res.FlightDurationSec = t
				break
			}
		}

		// --- Guidance (50 Hz).
		if guideTick.Due(t) {
			est := filter.State()
			sp = guide.update(t, est.Pos, est.Vel.Norm(), body.State().OnGround())
			if guide.done() {
				res.Outcome = OutcomeCompleted
				res.FlightDurationSec = t
				break
			}
		}

		// --- U-space tracking (1 Hz): bubbles, distance, telemetry.
		est := filter.State()
		if s, ok := tracker.Observe(t, est.Pos, body.Airspeed()); ok {
			if havePrevEst {
				d := est.Pos.Dist(prevEstPos)
				// Tracker plausibility filter: a diverged estimate can
				// teleport; the tracking system bounds per-interval travel
				// by the drone's physical capability.
				distM += math.Min(d, distCapPerObs)
			}
			prevEstPos = est.Pos
			havePrevEst = true

			if cfg.RecordTrajectory {
				res.Trajectory = append(res.Trajectory, TrajPoint{
					T: t, TruePos: body.State().Pos, EstPos: est.Pos,
					TiltDeg: mathx.Rad2Deg(body.State().Att.TiltAngle()),
				})
			}
			if obs != nil {
				obs(Telemetry{
					T: t, MissionID: m.ID,
					EstPos: est.Pos, EstVel: est.Vel,
					TruePos: body.State().Pos, Airspeed: body.Airspeed(),
					Bubble: s, Phase: fmt.Sprintf("%d", guide.phase),
					Health: filter.Health(), EstState: est, TrueAtt: body.State().Att,
				})
			}
		}

		body.Step(cfg.PhysicsDt)
	}

	if res.Outcome == 0 {
		res.Outcome = OutcomeTimeout
		res.FlightDurationSec = cfg.MaxSimTime
	}
	res.DistanceKm = distM / 1000
	res.InnerViolations = tracker.InnerViolations()
	res.OuterViolations = tracker.OuterViolations()
	res.WaypointsReached = guide.waypointsReached()
	return res, nil
}
