package sim

import (
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/physics"
)

// actuatorCfg is the configuration the actuator fork/batch tests share: a
// hexa airframe (variable-width rotor state is the refactor's riskiest
// surface) with the rotor-FDI stack armed so detection, condemnation, and
// allocator reconfiguration all sit inside the checkpointed state.
func actuatorCfg() Config {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	cfg.Airframe.Layout = physics.HexaX
	cfg.Mitigation = cfg.Mitigation.RotorDefaults()
	return cfg
}

func actuatorInj(p faultinject.Primitive, rotor int, startSec float64) *faultinject.Injection {
	return &faultinject.Injection{
		Primitive: p, Target: faultinject.TargetRotor, Rotor: rotor,
		Start:    time.Duration(startSec * float64(time.Second)),
		Duration: 30 * time.Second,
		Scope:    faultinject.ScopeAllUnits,
	}
}

// TestForkBitIdenticalActuator extends the checkpoint fork's correctness
// bar to the actuator family: every rotor-fault primitive forked off a
// shared pre-fault prefix must finish byte-identical to a straight-through
// run — including the rotor monitor's strike counters and the swapped-in
// reconfigured allocator.
func TestForkBitIdenticalActuator(t *testing.T) {
	cfg := actuatorCfg()
	m := shortMission()
	const startSec = 20.0

	rep := actuatorInj(faultinject.StuckRotor, 0, startSec)
	prefix, err := NewVehicle(cfg, m, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix.RunUntil(startSec)
	cp := prefix.Snapshot()

	for _, p := range faultinject.ActuatorPrimitives() {
		for _, rotor := range []int{0, 2} {
			inj := actuatorInj(p, rotor, startSec)
			label := inj.Label()

			straight, err := Run(cfg, m, inj, nil)
			if err != nil {
				t.Fatalf("%s straight: %v", label, err)
			}
			fork, err := cp.ForkWithInjection(inj, nil)
			if err != nil {
				t.Fatalf("%s fork: %v", label, err)
			}
			sameResult(t, label, straight, fork.RunToEnd())
		}
	}

	// Cross-family forks are rejected: a sensor injection cannot reuse an
	// actuator prefix (the pre-window mutation schedules differ).
	sensor := &faultinject.Injection{
		Primitive: faultinject.Freeze, Target: faultinject.TargetGyro,
		Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second, Seed: 9,
	}
	if _, err := cp.ForkWithInjection(sensor, nil); err == nil {
		t.Error("sensor fork accepted off an actuator prefix")
	}
}

// TestBatchBitIdenticalActuator mirrors TestForkBitIdenticalActuator on
// the lockstep batch runner.
func TestBatchBitIdenticalActuator(t *testing.T) {
	cfg := actuatorCfg()
	m := shortMission()
	const startSec = 20.0

	rep := actuatorInj(faultinject.StuckRotor, 0, startSec)
	prefix, err := NewVehicle(cfg, m, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix.RunUntil(startSec)

	var injs []*faultinject.Injection
	for _, p := range faultinject.ActuatorPrimitives() {
		for _, rotor := range []int{0, 2} {
			injs = append(injs, actuatorInj(p, rotor, startSec))
		}
	}
	b, err := NewBatch(prefix.Snapshot(), injs)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, inj := range injs {
		straight, err := Run(cfg, m, inj, nil)
		if err != nil {
			t.Fatalf("%s straight: %v", inj.Label(), err)
		}
		sameResult(t, inj.Label(), straight, results[i])
	}
}

// TestAirframeRedundancyE2E pins the headline redundancy result the
// airframe axis exists to demonstrate: a free-spinning rotor (float, the
// total-failure mode) crashes the quad — three healthy rotors cannot span
// the wrench space, so reconfiguration is impossible — while the octo
// completes the same mission, and on the hexa the FDI-driven
// reconfiguration is the difference between a failsafe abort and mission
// completion.
func TestAirframeRedundancyE2E(t *testing.T) {
	m := shortMission()
	inj := actuatorInj(faultinject.FloatRotor, 0, 20)

	run := func(layout physics.Airframe, reconfig bool) Result {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Airframe.Layout = layout
		if reconfig {
			cfg.Mitigation = cfg.Mitigation.RotorDefaults()
		}
		res, err := Run(cfg, m, inj, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	if res := run(physics.QuadX, true); res.Outcome != OutcomeCrash {
		t.Errorf("quad float outcome = %v (%s%s), want crash",
			res.Outcome, res.FailsafeCause, res.CrashReason)
	}
	if res := run(physics.OctoX, true); res.Outcome != OutcomeCompleted {
		t.Errorf("octo float outcome = %v (%s%s), want completed",
			res.Outcome, res.FailsafeCause, res.CrashReason)
	}
	if res := run(physics.HexaX, false); res.Outcome != OutcomeFailsafe {
		t.Errorf("hexa float without reconfig = %v (%s%s), want failsafe",
			res.Outcome, res.FailsafeCause, res.CrashReason)
	}
	res := run(physics.HexaX, true)
	if res.Outcome != OutcomeCompleted {
		t.Errorf("hexa float with reconfig = %v (%s%s), want completed",
			res.Outcome, res.FailsafeCause, res.CrashReason)
	}
	if res.Diagnostics.MitigationEngagements == 0 {
		t.Error("hexa reconfig run recorded no mitigation engagements")
	}
}
