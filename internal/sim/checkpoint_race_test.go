package sim

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"uavres/internal/faultinject"
)

// TestConcurrentForkMatchesSerial stresses the Checkpoint immutability
// contract under the race detector: many goroutines fork the SAME
// checkpoint via ForkWithInjection concurrently and run their vehicles to
// the end; every result must be deeply equal to a serial fork of the same
// injection. Any shared mutable state between checkpoint and forks (or
// between sibling forks) shows up either as a -race report or as a result
// mismatch.
func TestConcurrentForkMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordTrajectory = true
	m := shortMission()
	const startSec = 20.0

	rep := &faultinject.Injection{
		Primitive: faultinject.FixedValue, Target: faultinject.TargetIMU,
		Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second, Seed: 77,
	}
	prefix, err := NewVehicle(cfg, m, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefix.RunUntil(startSec)
	cp := prefix.Snapshot()

	injections := []*faultinject.Injection{}
	for i, p := range []faultinject.Primitive{
		faultinject.Zeros, faultinject.MinValue, faultinject.Noise, faultinject.Freeze,
	} {
		for _, target := range faultinject.Targets() {
			injections = append(injections, &faultinject.Injection{
				Primitive: p, Target: target,
				Start: time.Duration(startSec) * time.Second, Duration: 5 * time.Second,
				Seed: int64(1000 + i),
			})
		}
	}

	// Serial reference: one fork per injection, run sequentially.
	want := make([]Result, len(injections))
	for i, inj := range injections {
		v, err := cp.ForkWithInjection(inj, nil)
		if err != nil {
			t.Fatalf("%s serial fork: %v", inj.Label(), err)
		}
		want[i] = v.RunToEnd()
	}

	// Concurrent: every injection forked from the shared checkpoint at
	// once, twice over (sibling forks of the SAME injection race too).
	const repeats = 2
	got := make([][]Result, repeats)
	errs := make([][]error, repeats)
	var wg sync.WaitGroup
	for r := 0; r < repeats; r++ {
		got[r] = make([]Result, len(injections))
		errs[r] = make([]error, len(injections))
		for i, inj := range injections {
			wg.Add(1)
			go func(r, i int, inj *faultinject.Injection) {
				defer wg.Done()
				v, err := cp.ForkWithInjection(inj, nil)
				if err != nil {
					errs[r][i] = err
					return
				}
				got[r][i] = v.RunToEnd()
			}(r, i, inj)
		}
	}
	wg.Wait()

	for r := 0; r < repeats; r++ {
		for i, inj := range injections {
			if errs[r][i] != nil {
				t.Errorf("%s concurrent fork (round %d): %v", inj.Label(), r, errs[r][i])
				continue
			}
			if !reflect.DeepEqual(got[r][i], want[i]) {
				t.Errorf("%s: concurrent fork result differs from serial (round %d)", inj.Label(), r)
			}
		}
	}
}
