package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/sim"
)

func TestPlanMatchesPaperCount(t *testing.T) {
	cases := Plan(mission.Valencia(), 1)
	// 10 missions x (21 injection types x 4 durations) + 10 gold = 850.
	if len(cases) != 850 {
		t.Fatalf("plan has %d cases, paper runs 850", len(cases))
	}
	var gold, faulty int
	ids := map[string]bool{}
	missionSeed := map[int]int64{}
	injSeeds := map[int64]int{}
	for _, c := range cases {
		if ids[c.ID] {
			t.Errorf("duplicate case ID %q", c.ID)
		}
		ids[c.ID] = true
		// Environment seeds are shared across one mission's cases (that is
		// what makes prefixes forkable) and distinct between missions.
		if s, ok := missionSeed[c.MissionID]; ok {
			if c.Seed != s {
				t.Errorf("case %s: env seed %d, mission %d uses %d", c.ID, c.Seed, c.MissionID, s)
			}
		} else {
			missionSeed[c.MissionID] = c.Seed
		}
		if c.Injection == nil {
			gold++
			continue
		}
		faulty++
		injSeeds[c.Injection.Seed]++
		if err := c.Injection.Validate(); err != nil {
			t.Errorf("case %s: invalid injection: %v", c.ID, err)
		}
		if c.Injection.Start != InjectionStartSec*time.Second {
			t.Errorf("case %s: start %v, want 90 s", c.ID, c.Injection.Start)
		}
	}
	if gold != 10 || faulty != 840 {
		t.Errorf("gold=%d faulty=%d, want 10/840", gold, faulty)
	}
	envSeeds := map[int64]bool{}
	for _, s := range missionSeed {
		if envSeeds[s] {
			t.Errorf("env seed %d shared between missions", s)
		}
		envSeeds[s] = true
	}
	// Injection randomness stays unique per case.
	for s, n := range injSeeds {
		if n > 1 {
			t.Errorf("injection seed %d reused %d times", s, n)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	a := Plan(mission.Valencia(), 42)
	b := Plan(mission.Valencia(), 42)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Seed != b[i].Seed {
			t.Fatalf("plan not deterministic at %d", i)
		}
	}
	c := Plan(mission.Valencia(), 43)
	if a[0].Seed == c[0].Seed {
		t.Error("different base seeds produced identical case seeds")
	}
}

func TestPlanCaseIDFormat(t *testing.T) {
	cases := Plan(mission.Valencia(), 1)
	want := map[string]bool{
		"m01-gold":               false,
		"m04-gyro-freeze-10s":    false,
		"m10-imu-fixedvalue-30s": false,
		"m07-acc-random-2s":      false,
		"m03-gyro-min-5s":        false,
	}
	for _, c := range cases {
		if _, ok := want[c.ID]; ok {
			want[c.ID] = true
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("expected case ID %q not generated", id)
		}
	}
}

// mkResult builds a synthetic CaseResult for aggregation tests.
func mkResult(missionID int, inj *faultinject.Injection, outcome sim.Outcome, inner, outer int, dur, dist float64) CaseResult {
	id := "synthetic"
	return CaseResult{
		Case: Case{ID: id, MissionID: missionID, Injection: inj},
		Result: sim.Result{
			MissionID: missionID, Injection: inj, Outcome: outcome,
			InnerViolations: inner, OuterViolations: outer,
			FlightDurationSec: dur, DistanceKm: dist,
		},
	}
}

func inj(p faultinject.Primitive, tg faultinject.Target, d time.Duration) *faultinject.Injection {
	return &faultinject.Injection{Primitive: p, Target: tg, Start: 90 * time.Second, Duration: d}
}

func TestAggregateMath(t *testing.T) {
	results := []CaseResult{
		mkResult(1, nil, sim.OutcomeCompleted, 0, 0, 490, 3.6),
		mkResult(2, nil, sim.OutcomeCompleted, 0, 0, 492, 3.7),
		mkResult(1, inj(faultinject.Zeros, faultinject.TargetAccel, 2*time.Second), sim.OutcomeCompleted, 10, 5, 480, 3.0),
		mkResult(2, inj(faultinject.Zeros, faultinject.TargetAccel, 2*time.Second), sim.OutcomeCrash, 20, 15, 100, 0.5),
		mkResult(3, inj(faultinject.Zeros, faultinject.TargetAccel, 2*time.Second), sim.OutcomeFailsafe, 30, 25, 120, 0.6),
		mkResult(4, inj(faultinject.Zeros, faultinject.TargetAccel, 2*time.Second), sim.OutcomeTimeout, 0, 0, 900, 2.0),
	}
	gold := GoldStats(results)
	if gold.N != 2 || gold.CompletedPct != 100 || gold.DurationSec != 491 {
		t.Errorf("gold stats = %+v", gold)
	}

	rows := ByDuration(results)
	if len(rows) != 1 {
		t.Fatalf("duration groups = %d", len(rows))
	}
	g := rows[0]
	if g.Label != "2 seconds" || g.N != 4 {
		t.Fatalf("row = %+v", g)
	}
	if g.CompletedPct != 25 || g.FailedPct != 75 {
		t.Errorf("completion = %v/%v", g.CompletedPct, g.FailedPct)
	}
	if g.InnerViolations != 15 { // (10+20+30+0)/4
		t.Errorf("inner mean = %v, want 15", g.InnerViolations)
	}
	// Of 3 failures: 1 crash, 2 failsafe-group (failsafe + timeout).
	if g.CrashPct < 33.3 || g.CrashPct > 33.4 {
		t.Errorf("crash pct = %v, want 33.3", g.CrashPct)
	}
	if g.FailsafePct < 66.6 || g.FailsafePct > 66.7 {
		t.Errorf("failsafe pct = %v, want 66.7", g.FailsafePct)
	}
}

func TestByFaultGroupingAndOrder(t *testing.T) {
	results := []CaseResult{
		mkResult(1, inj(faultinject.Zeros, faultinject.TargetAccel, 2*time.Second), sim.OutcomeCompleted, 0, 0, 480, 3),
		mkResult(1, inj(faultinject.Noise, faultinject.TargetAccel, 2*time.Second), sim.OutcomeCrash, 0, 0, 100, 1),
		mkResult(1, inj(faultinject.Zeros, faultinject.TargetGyro, 2*time.Second), sim.OutcomeCrash, 0, 0, 100, 1),
		mkResult(1, inj(faultinject.Zeros, faultinject.TargetIMU, 2*time.Second), sim.OutcomeCrash, 0, 0, 100, 1),
	}
	rows := ByFault(results)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Acc rows first (sorted by completion desc), then Gyro, then IMU.
	wantOrder := []string{"Acc Zeros", "Acc Noise", "Gyro Zeros", "IMU Zeros"}
	for i, w := range wantOrder {
		if rows[i].Label != w {
			t.Errorf("row %d = %q, want %q", i, rows[i].Label, w)
		}
	}
}

func TestByComponent(t *testing.T) {
	results := []CaseResult{
		mkResult(1, inj(faultinject.Zeros, faultinject.TargetAccel, 2*time.Second), sim.OutcomeCompleted, 0, 0, 480, 3),
		mkResult(1, inj(faultinject.Zeros, faultinject.TargetGyro, 2*time.Second), sim.OutcomeCrash, 0, 0, 100, 1),
	}
	rows := ByComponent(results)
	if len(rows) != 2 {
		t.Fatalf("component rows = %d", len(rows))
	}
	if rows[0].Label != "Acc" || rows[1].Label != "Gyro" {
		t.Errorf("order = %q, %q", rows[0].Label, rows[1].Label)
	}
	if rows[0].FailedPct != 0 || rows[1].FailedPct != 100 {
		t.Errorf("failure split wrong: %+v", rows)
	}
}

func TestInfrastructureErrorsExcluded(t *testing.T) {
	results := []CaseResult{
		mkResult(1, nil, sim.OutcomeCompleted, 0, 0, 490, 3.6),
		{Case: Case{ID: "broken", MissionID: 7}, Err: "boom"},
	}
	if got := GoldStats(results); got.N != 1 {
		t.Errorf("gold N = %d, errored case not excluded", got.N)
	}
}

func TestFindRow(t *testing.T) {
	rows := []GroupStats{{Label: "a"}, {Label: "b", N: 3}}
	if got, exists := Find(rows, "b"); !exists || got.N != 3 {
		t.Errorf("Find = %+v, %v", got, exists)
	}
	if _, exists := Find(rows, "zzz"); exists {
		t.Error("Find located a missing label")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	in := []CaseResult{
		mkResult(1, inj(faultinject.Freeze, faultinject.TargetIMU, 5*time.Second), sim.OutcomeFailsafe, 3, 2, 99.5, 0.4),
		mkResult(2, nil, sim.OutcomeCompleted, 0, 0, 490, 3.6),
	}
	var buf bytes.Buffer
	if err := SaveResults(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("loaded %d results", len(out))
	}
	if out[0].Result.Outcome != sim.OutcomeFailsafe || out[0].Result.InnerViolations != 3 {
		t.Errorf("round trip lost data: %+v", out[0].Result)
	}
	if out[0].Case.Injection == nil || out[0].Case.Injection.Primitive != faultinject.Freeze {
		t.Errorf("round trip lost injection: %+v", out[0].Case)
	}
	if out[1].Case.Injection != nil {
		t.Error("gold case grew an injection")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadResults(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRenderTables(t *testing.T) {
	results := []CaseResult{
		mkResult(1, nil, sim.OutcomeCompleted, 0, 0, 490, 3.6),
		mkResult(1, inj(faultinject.Zeros, faultinject.TargetAccel, 2*time.Second), sim.OutcomeCompleted, 10, 5, 480, 3.0),
		mkResult(1, inj(faultinject.MinValue, faultinject.TargetGyro, 30*time.Second), sim.OutcomeCrash, 20, 15, 100, 0.5),
	}
	t2 := RenderTableII(results)
	for _, want := range []string{"Gold Run", "2 seconds", "30 seconds", "Completed"} {
		if !strings.Contains(t2, want) {
			t.Errorf("table II missing %q:\n%s", want, t2)
		}
	}
	t3 := RenderTableIII(results)
	for _, want := range []string{"Acc Zeros", "Gyro Min"} {
		if !strings.Contains(t3, want) {
			t.Errorf("table III missing %q", want)
		}
	}
	t4 := RenderTableIV(results)
	for _, want := range []string{"Acc", "Gyro", "Crash (%)", "Failsafe (%)"} {
		if !strings.Contains(t4, want) {
			t.Errorf("table IV missing %q", want)
		}
	}
	t1 := RenderFaultModel()
	for _, want := range []string{"Acoustic attack", "Hardware trojan", "Freeze"} {
		if !strings.Contains(t1, want) {
			t.Errorf("table I missing %q", want)
		}
	}
}

// shortScenario is a miniature mission set for runner tests.
func shortScenario() []mission.Mission {
	return []mission.Mission{
		{
			ID: 1, Name: "hop", CruiseSpeedMS: 3.33, AltitudeM: 15,
			Drone:     mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
			Start:     mathx.V3(0, 0, 0),
			Waypoints: []mathx.Vec3{{X: 0, Y: 80, Z: -15}},
		},
	}
}

func TestRunnerExecutesCases(t *testing.T) {
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = 2
	var progressCalls int
	r.Progress = func(done, total int) { progressCalls++ }
	cases := []Case{
		{ID: "gold", MissionID: 1, Seed: 5},
		{ID: "fault", MissionID: 1, Seed: 6, Injection: inj(faultinject.MinValue, faultinject.TargetGyro, 2*time.Second)},
		{ID: "missing-mission", MissionID: 77, Seed: 7},
	}
	// The fault at t=90 lands after this short mission finishes; shift it.
	cases[1].Injection.Start = 20 * time.Second

	results := r.RunAll(context.Background(), cases)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != "" || results[0].Result.Outcome != sim.OutcomeCompleted {
		t.Errorf("gold case: %+v", results[0])
	}
	if results[1].Err != "" || results[1].Result.Outcome == sim.OutcomeCompleted {
		t.Errorf("gyro-min case completed: %+v", results[1])
	}
	if results[2].Err == "" {
		t.Error("unknown mission did not error")
	}
	if progressCalls != 3 {
		t.Errorf("progress calls = %d", progressCalls)
	}
}

func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func(workers int) []CaseResult {
		r := NewRunner()
		r.Missions = shortScenario()
		r.Workers = workers
		cases := []Case{
			{ID: "a", MissionID: 1, Seed: 11},
			{ID: "b", MissionID: 1, Seed: 12, Injection: &faultinject.Injection{
				Primitive: faultinject.Noise, Target: faultinject.TargetAccel,
				Start: 20 * time.Second, Duration: 5 * time.Second, Seed: 3,
			}},
			{ID: "c", MissionID: 1, Seed: 13, Injection: &faultinject.Injection{
				Primitive: faultinject.Zeros, Target: faultinject.TargetGyro,
				Start: 20 * time.Second, Duration: 2 * time.Second, Seed: 4,
			}},
		}
		return r.RunAll(context.Background(), cases)
	}
	one := mk(1)
	three := mk(3)
	for i := range one {
		if one[i].Result.Outcome != three[i].Result.Outcome ||
			one[i].Result.FlightDurationSec != three[i].Result.FlightDurationSec {
			t.Errorf("case %d differs across worker counts: %+v vs %+v", i, one[i].Result, three[i].Result)
		}
	}
}

func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before scheduling
	r := NewRunner()
	r.Missions = shortScenario()
	cases := []Case{{ID: "x", MissionID: 1, Seed: 1}, {ID: "y", MissionID: 1, Seed: 2}}
	results := r.RunAll(ctx, cases)
	cancelled := 0
	for _, cr := range results {
		if cr.Err == "cancelled" {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no case marked cancelled after pre-cancelled context")
	}
}

func TestSortByID(t *testing.T) {
	rs := []CaseResult{{Case: Case{ID: "b"}}, {Case: Case{ID: "a"}}}
	SortByID(rs)
	if rs[0].Case.ID != "a" {
		t.Error("not sorted")
	}
}

// TestRunnerCheckpointMatchesStraight: the checkpoint-and-fork execution
// path must produce byte-for-byte the results of straight-through
// execution for a group of cases sharing one environment seed.
func TestRunnerCheckpointMatchesStraight(t *testing.T) {
	mkCases := func() []Case {
		var cases []Case
		cases = append(cases, Case{ID: "gold", MissionID: 1, Seed: 21})
		for _, p := range faultinject.Primitives() {
			for _, target := range faultinject.Targets() {
				cases = append(cases, Case{
					ID: "f-" + p.String() + "-" + target.String(), MissionID: 1, Seed: 21,
					Injection: &faultinject.Injection{
						Primitive: p, Target: target,
						Start: 20 * time.Second, Duration: 5 * time.Second,
						Seed: int64(100*int(p) + int(target)),
					},
				})
			}
		}
		return cases
	}

	run := func(checkpoint bool) []CaseResult {
		r := NewRunner()
		r.Missions = shortScenario()
		r.Workers = 4
		r.Checkpoint = checkpoint
		return r.RunAll(context.Background(), mkCases())
	}

	straight := run(false)
	forked := run(true)
	if len(straight) != len(forked) {
		t.Fatalf("result counts differ: %d vs %d", len(straight), len(forked))
	}
	for i := range straight {
		s, f := straight[i], forked[i]
		if s.Err != f.Err {
			t.Errorf("%s: err %q vs %q", s.Case.ID, s.Err, f.Err)
		}
		if s.Result.Outcome != f.Result.Outcome ||
			s.Result.FlightDurationSec != f.Result.FlightDurationSec ||
			s.Result.DistanceKm != f.Result.DistanceKm ||
			s.Result.InnerViolations != f.Result.InnerViolations ||
			s.Result.OuterViolations != f.Result.OuterViolations ||
			s.Result.WaypointsReached != f.Result.WaypointsReached ||
			s.Result.FailsafeCause != f.Result.FailsafeCause ||
			s.Result.CrashReason != f.Result.CrashReason {
			t.Errorf("%s: checkpointed result differs:\n straight %+v\n forked   %+v",
				s.Case.ID, s.Result, f.Result)
		}
		if !reflect.DeepEqual(s.Result.Diagnostics, f.Result.Diagnostics) {
			t.Errorf("%s: diagnostics differ between straight and forked:\n straight %+v\n forked   %+v",
				s.Case.ID, s.Result.Diagnostics, f.Result.Diagnostics)
		}
	}
}

// progressRecord captures one Progress callback.
type progressRecord struct{ done, total int }

// checkProgress asserts the satellite-task contract: Progress is invoked
// exactly once per case with monotonically increasing done and a constant
// total, ending at done == total.
func checkProgress(t *testing.T, label string, calls []progressRecord, total int) {
	t.Helper()
	if len(calls) != total {
		t.Fatalf("%s: progress called %d times for %d cases", label, len(calls), total)
	}
	for i, c := range calls {
		if c.done != i+1 {
			t.Errorf("%s: call %d reported done=%d, want %d", label, i, c.done, i+1)
		}
		if c.total != total {
			t.Errorf("%s: call %d reported total=%d, want %d", label, i, c.total, total)
		}
	}
}

// progressCases builds a case mix with a forkable group (two faulty cases
// sharing mission, seed, scope, and start), a gold run, and an erroring
// case — every path Progress must still fire on.
func progressCases() []Case {
	mk := func(p faultinject.Primitive, seed int64) *faultinject.Injection {
		return &faultinject.Injection{
			Primitive: p, Target: faultinject.TargetGyro,
			Start: 20 * time.Second, Duration: 2 * time.Second, Seed: seed,
		}
	}
	return []Case{
		{ID: "gold", MissionID: 1, Seed: 31},
		{ID: "f1", MissionID: 1, Seed: 31, Injection: mk(faultinject.Zeros, 1)},
		{ID: "f2", MissionID: 1, Seed: 31, Injection: mk(faultinject.Noise, 2)},
		{ID: "broken", MissionID: 99, Seed: 31},
	}
}

func TestRunnerProgressContract(t *testing.T) {
	for _, checkpoint := range []bool{false, true} {
		label := "straight"
		if checkpoint {
			label = "checkpoint"
		}
		r := NewRunner()
		r.Missions = shortScenario()
		r.Workers = 3
		r.Checkpoint = checkpoint
		var calls []progressRecord
		r.Progress = func(done, total int) { calls = append(calls, progressRecord{done, total}) }
		cases := progressCases()
		r.RunAll(context.Background(), cases)
		checkProgress(t, label, calls, len(cases))
	}
}

// TestRunnerMetrics: with an Obs registry and an injected clock, RunAll
// accounts for every case exactly once, splits forked vs straight
// execution, tallies outcomes and errors, and records stage timing from
// the injected clock only.
func TestRunnerMetrics(t *testing.T) {
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = 2
	r.Checkpoint = true
	r.Obs = obs.NewRegistry()
	var fake struct {
		mu sync.Mutex
		t  float64
	}
	r.Clock = func() float64 {
		fake.mu.Lock()
		defer fake.mu.Unlock()
		fake.t += 0.125
		return fake.t
	}
	cases := progressCases()
	r.RunAll(context.Background(), cases)

	val := func(name string) int64 { return r.Obs.Counter(name).Value() }
	if got := val("campaign_cases_total"); got != int64(len(cases)) {
		t.Errorf("cases_total = %d, want %d", got, len(cases))
	}
	if val("campaign_case_errors_total") != 1 {
		t.Errorf("errors = %d, want 1 (the unknown-mission case)", val("campaign_case_errors_total"))
	}
	// The f1/f2 pair shares a prefix: one checkpoint built, two forks.
	if val("campaign_prefixes_built_total") != 1 {
		t.Errorf("prefixes = %d, want 1", val("campaign_prefixes_built_total"))
	}
	if val("campaign_cases_forked_total") != 2 {
		t.Errorf("forked = %d, want 2", val("campaign_cases_forked_total"))
	}
	if got := val("campaign_cases_forked_total") + val("campaign_cases_straight_total"); got != int64(len(cases)) {
		t.Errorf("forked+straight = %d, want %d", got, len(cases))
	}
	outcomes := val("campaign_outcome_completed_total") + val("campaign_outcome_crash_total") +
		val("campaign_outcome_failsafe_total") + val("campaign_outcome_timeout_total")
	if outcomes != int64(len(cases))-1 {
		t.Errorf("outcome counters sum to %d, want %d", outcomes, len(cases)-1)
	}
	h := r.Obs.Histogram("campaign_case_seconds", caseSecondsBounds)
	if h.Count() != int64(len(cases)) {
		t.Errorf("case_seconds count = %d, want %d", h.Count(), len(cases))
	}
	if h.Sum() <= 0 {
		t.Error("case_seconds sum is zero with a ticking clock")
	}
	if r.Obs.Gauge("campaign_checkpoint_stage_seconds").Value() <= 0 {
		t.Error("checkpoint stage seconds not recorded")
	}
	if r.Obs.Gauge("campaign_run_stage_seconds").Value() <= 0 {
		t.Error("run stage seconds not recorded")
	}
}

// TestRunnerNoClockStaysZero: without an injected clock the runner never
// invents wall time (the timing metrics read zero but counting still works).
func TestRunnerNoClockStaysZero(t *testing.T) {
	r := NewRunner()
	r.Missions = shortScenario()
	r.Obs = obs.NewRegistry()
	cases := []Case{{ID: "gold", MissionID: 1, Seed: 31}}
	r.RunAll(context.Background(), cases)
	if got := r.Obs.Counter("campaign_cases_total").Value(); got != 1 {
		t.Errorf("cases_total = %d, want 1", got)
	}
	if sum := r.Obs.Histogram("campaign_case_seconds", caseSecondsBounds).Sum(); sum != 0 {
		t.Errorf("case_seconds sum = %v without a clock", sum)
	}
}
