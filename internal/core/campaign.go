// Package core orchestrates the paper's fault-injection campaign: it
// plans the 850 experiment cases (21 injection types x 10 missions x 4
// durations + 10 gold runs), fans them out over a worker pool, and
// aggregates results into the paper's Tables II, III, and IV.
package core

import (
	"fmt"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/sim"
)

// InjectionStartSec is when faults begin: the paper injects at the
// 90-second mark after take-off.
const InjectionStartSec = 90

// Durations are the paper's four injection durations.
func Durations() []time.Duration {
	return []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second}
}

// Case is one experiment: a mission plus an optional injection.
type Case struct {
	// ID is a stable, human-readable case identifier,
	// e.g. "m04-gyro-freeze-10s" or "m04-gold".
	ID string `json:"id"`
	// MissionID selects the Valencia mission (1..10).
	MissionID int `json:"mission_id"`
	// Injection is nil for gold runs.
	Injection *faultinject.Injection `json:"injection,omitempty"`
	// Seed drives the run's environment randomness.
	Seed int64 `json:"seed"`
	// Airframe names the rotor layout the case flies ("hexa-x", "octo-x");
	// empty means the default quad-x, so pre-airframe plans and stored
	// results keep their fingerprints.
	Airframe string `json:"airframe,omitempty"`
	// Hash is the case's content fingerprint: a stable digest of the
	// experiment description plus the code-relevant simulation config
	// (see internal/spec.Fingerprint). Cases planned outside the spec
	// compiler leave it empty; resume never reuses a hashless case.
	Hash string `json:"hash,omitempty"`
}

// Plan generates the full campaign: for every mission, every target x
// primitive (21 injection types), every duration — 840 faulty cases —
// plus one gold case per mission: 850 total, matching the paper's count.
// baseSeed makes the whole campaign reproducible.
//
// Every case of one mission shares one environment seed: the paper's
// experiment varies the FAULT between cases, not the weather, and the
// shared seed is what lets the runner simulate the common 90-second
// pre-injection prefix once per mission and fork it per case
// (checkpoint-and-fork; see Runner). Injection randomness stays per-case
// via the injection's own seed.
func Plan(missions []mission.Mission, baseSeed int64) []Case {
	durations := Durations()
	cases := make([]Case, 0, len(missions)*(len(durations)*21+1))
	for _, m := range missions {
		envSeed := CaseSeed(baseSeed, m.ID, 0, 0, 0)
		cases = append(cases, Case{
			ID:        fmt.Sprintf("m%02d-gold", m.ID),
			MissionID: m.ID,
			Seed:      envSeed,
		})
		for _, target := range faultinject.Targets() {
			for _, prim := range faultinject.Primitives() {
				for _, dur := range durations {
					inj := &faultinject.Injection{
						Primitive: prim,
						Target:    target,
						Start:     InjectionStartSec * time.Second,
						Duration:  dur,
						Seed:      CaseSeed(baseSeed+1, m.ID, int(target), int(prim), int(dur.Seconds())),
					}
					cases = append(cases, Case{
						ID: fmt.Sprintf("m%02d-%s-%s-%ds", m.ID,
							Slug(target.String()), Slug(prim.String()), int(dur.Seconds())),
						MissionID: m.ID,
						Injection: inj,
						Seed:      envSeed,
					})
				}
			}
		}
	}
	return cases
}

// CaseSeed derives a deterministic, well-spread seed for one case
// (splitmix64-style mixing). It is the "mixed" seed policy of the spec
// compiler (internal/spec) and the seed function of the legacy Plan;
// both must agree bit-for-bit, which is why it lives here once.
func CaseSeed(base int64, mission, target, prim, durSec int) int64 {
	x := uint64(base)*0x9E3779B97F4A7C15 ^
		uint64(mission)*0xBF58476D1CE4E5B9 ^
		uint64(target)*0x94D049BB133111EB ^
		uint64(prim)*0xD6E8FEB86659FD93 ^
		uint64(durSec)*0xA0761D6478BD642F
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x >> 1) // keep it positive
}

// Slug lowercases a paper label and compresses spaces away
// ("Fixed Value" -> "fixedvalue"): the case-ID naming convention shared
// by Plan and the spec compiler.
func Slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ':
			// compress spaces away: "Fixed Value" -> "fixedvalue"
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// CaseResult pairs a case with its outcome.
type CaseResult struct {
	Case   Case       `json:"case"`
	Result sim.Result `json:"result"`
	// Err records a per-case execution failure (infrastructure, not
	// flight failure); successful runs leave it empty.
	Err string `json:"err,omitempty"`
}
