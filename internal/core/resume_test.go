package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/obs"
	"uavres/internal/sim"
)

// hashedCases builds a small campaign with fingerprints, reusing the
// runner-test scenario.
func hashedCases() []Case {
	mk := func(p faultinject.Primitive, seed int64) *faultinject.Injection {
		return &faultinject.Injection{
			Primitive: p, Target: faultinject.TargetGyro,
			Start: 20 * time.Second, Duration: 2 * time.Second, Seed: seed,
		}
	}
	cases := []Case{
		{ID: "gold", MissionID: 1, Seed: 31},
		{ID: "f1", MissionID: 1, Seed: 31, Injection: mk(faultinject.Zeros, 1)},
		{ID: "f2", MissionID: 1, Seed: 31, Injection: mk(faultinject.Noise, 2)},
		{ID: "f3", MissionID: 1, Seed: 31, Injection: mk(faultinject.Freeze, 3)},
	}
	for i := range cases {
		cases[i].Hash = "h-" + cases[i].ID
	}
	return cases
}

// TestResumeRunsOnlyMissingCases: a partial results file leads to only
// the missing cases executing, asserted through the runner's own
// campaign_cases_total metric.
func TestResumeRunsOnlyMissingCases(t *testing.T) {
	cases := hashedCases()

	// First pass: run everything, keep the streamed results.
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = 2
	full := r.RunAll(context.Background(), cases)
	for _, cr := range full {
		if cr.Err != "" {
			t.Fatalf("first pass case %s errored: %s", cr.Case.ID, cr.Err)
		}
	}

	// Simulate an interrupted campaign: the file holds only two results.
	partial := full[:2]
	plan := PlanResume(cases, partial)
	if len(plan.Reused) != 2 || len(plan.Run) != 2 {
		t.Fatalf("resume plan: %d reused, %d to run, want 2/2", len(plan.Reused), len(plan.Run))
	}
	if plan.Run[0].ID != "f2" || plan.Run[1].ID != "f3" {
		t.Fatalf("resume runs %q, %q; want f2, f3", plan.Run[0].ID, plan.Run[1].ID)
	}

	// Second pass executes exactly the missing cases: runner metrics are
	// the witness.
	r2 := NewRunner()
	r2.Missions = shortScenario()
	r2.Obs = obs.NewRegistry()
	rerun := r2.RunAll(context.Background(), plan.Run)
	if got := r2.Obs.Counter("campaign_cases_total").Value(); got != 2 {
		t.Fatalf("resume executed %d cases, want 2", got)
	}
	// The re-run is bit-identical to the first pass (same seeds, same
	// config): resume cannot change verdicts.
	for i, cr := range rerun {
		orig := full[2+i]
		if cr.Result.Outcome != orig.Result.Outcome || cr.Result.FlightDurationSec != orig.Result.FlightDurationSec {
			t.Errorf("%s: resumed result differs: %+v vs %+v", cr.Case.ID, cr.Result, orig.Result)
		}
	}

	// A completed file resumes to zero work.
	done := PlanResume(cases, full)
	if len(done.Run) != 0 || len(done.Reused) != len(cases) {
		t.Fatalf("complete file: %d to run, %d reused", len(done.Run), len(done.Reused))
	}
}

// TestResumeStaleHashReruns: a prior result whose fingerprint no longer
// matches the compiled case is re-executed, not reused.
func TestResumeStaleHashReruns(t *testing.T) {
	cases := hashedCases()
	prior := make([]CaseResult, len(cases))
	for i, c := range cases {
		prior[i] = CaseResult{Case: c, Result: sim.Result{Outcome: sim.OutcomeCompleted}}
	}
	// The config changed under f1: its compiled hash moved.
	cases[1].Hash = "h-f1-v2"
	plan := PlanResume(cases, prior)
	if plan.Stale != 1 || len(plan.Run) != 1 || plan.Run[0].ID != "f1" {
		t.Fatalf("stale plan: stale=%d run=%v", plan.Stale, ids(plan.Run))
	}
	if len(plan.Reused) != 3 {
		t.Fatalf("reused %d, want 3", len(plan.Reused))
	}
}

// TestResumeNeverTrustsHashlessCases: without fingerprints (legacy
// files, hand-built cases) everything re-runs.
func TestResumeNeverTrustsHashlessCases(t *testing.T) {
	cases := hashedCases()
	prior := make([]CaseResult, len(cases))
	for i, c := range cases {
		prior[i] = CaseResult{Case: c, Result: sim.Result{Outcome: sim.OutcomeCompleted}}
	}
	for i := range cases {
		cases[i].Hash = ""
		prior[i].Case.Hash = ""
	}
	plan := PlanResume(cases, prior)
	if len(plan.Run) != len(cases) {
		t.Fatalf("hashless resume reused %d cases", len(plan.Reused))
	}
}

// TestResumeErroredCasesRerun: execution errors (including cancellation)
// are infrastructure failures, not outcomes — they re-run.
func TestResumeErroredCasesRerun(t *testing.T) {
	cases := hashedCases()
	prior := []CaseResult{
		{Case: cases[0], Result: sim.Result{Outcome: sim.OutcomeCompleted}},
		{Case: cases[1], Err: "cancelled"},
	}
	plan := PlanResume(cases, prior)
	if plan.Errored != 1 {
		t.Fatalf("errored = %d, want 1", plan.Errored)
	}
	if got := ids(plan.Run); len(got) != 3 || got[0] != "f1" {
		t.Fatalf("run = %v, want f1 first", got)
	}
}

func ids(cs []Case) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}

// writeResults streams results exactly as cmd/campaign does.
func writeResults(t *testing.T, results []CaseResult, closed bool) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewResultsWriter(&buf)
	for _, r := range results {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if closed {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

func resumeResults() []CaseResult {
	return []CaseResult{
		mkResult(1, inj(faultinject.Freeze, faultinject.TargetIMU, 5*time.Second), sim.OutcomeFailsafe, 3, 2, 99.5, 0.4),
		mkResult(2, nil, sim.OutcomeCompleted, 0, 0, 490, 3.6),
	}
}

func TestLoadPartialResultsComplete(t *testing.T) {
	text := writeResults(t, resumeResults(), true)
	got, truncated, err := LoadPartialResults(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("complete file reported truncated")
	}
	if len(got) != 2 || got[0].Result.Outcome != sim.OutcomeFailsafe {
		t.Fatalf("loaded %d results: %+v", len(got), got)
	}
}

// TestLoadPartialResultsTruncated: a file cut off mid-element (the
// process died writing) yields the clean prefix and truncated=true.
func TestLoadPartialResultsTruncated(t *testing.T) {
	text := writeResults(t, resumeResults(), false) // no closing bracket
	for _, cut := range []string{
		text,                 // unterminated array, whole elements
		text[:len(text)*3/4], // torn element
		text[:len(text)/2],   // torn earlier
		"",                   // nothing written yet
	} {
		got, truncated, err := LoadPartialResults(strings.NewReader(cut))
		if err != nil {
			t.Fatalf("cut %d bytes: %v", len(cut), err)
		}
		if !truncated {
			t.Errorf("cut %d bytes: not reported truncated", len(cut))
		}
		for _, cr := range got {
			if cr.Case.ID == "" {
				t.Errorf("cut %d bytes: torn element surfaced: %+v", len(cut), cr)
			}
		}
	}
}

// TestLoadPartialResultsHeaderOnly: a campaign interrupted before (or
// right after) its first case leaves just the run-metadata element.
// That is the zero-progress resume — no prior results, no error —
// whether the array was closed cleanly or cut off.
func TestLoadPartialResultsHeaderOnly(t *testing.T) {
	for _, tc := range []struct {
		name      string
		closed    bool
		wantTrunc bool
	}{
		{"closed", true, false},
		{"truncated", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := NewResultsWriter(&buf)
			if err := w.WriteHeader(ResultsHeader{RunnerMode: "batch", BatchWidth: 32}); err != nil {
				t.Fatal(err)
			}
			if tc.closed {
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
			}
			got, truncated, err := LoadPartialResults(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Errorf("header-only file yielded %d results: %+v", len(got), got)
			}
			if truncated != tc.wantTrunc {
				t.Errorf("truncated = %v, want %v", truncated, tc.wantTrunc)
			}
		})
	}
}

// TestLoadPartialResultsCorruptHeader: a garbled header line is a real
// error naming its line — resume must refuse the file, not silently
// treat it as zero progress and overwrite it.
func TestLoadPartialResultsCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewResultsWriter(&buf)
	if err := w.WriteHeader(ResultsHeader{RunnerMode: "batch"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range resumeResults() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	text := strings.Replace(buf.String(), `"header"`, `"header" ###`, 1)
	_, _, err := LoadPartialResults(strings.NewReader(text))
	if err == nil {
		t.Fatal("corrupt header accepted")
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error does not name a line: %v", err)
	}
}

// TestLoadPartialResultsCorrupt: corruption inside the file is a real
// error and it names the line, not a panic and not a silent partial.
func TestLoadPartialResultsCorrupt(t *testing.T) {
	text := writeResults(t, resumeResults(), true)
	lines := strings.Split(text, "\n")
	// Garble a line inside the first element.
	corruptLine := 3
	lines[corruptLine-1] = `   "mission_id": ###,`
	corrupt := strings.Join(lines, "\n")

	_, _, err := LoadPartialResults(strings.NewReader(corrupt))
	if err == nil {
		t.Fatal("corrupt file loaded without error")
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error does not name a line: %v", err)
	}
	// Not-an-array documents are rejected too.
	if _, _, err := LoadPartialResults(strings.NewReader(`{"a":1}`)); err == nil {
		t.Error("non-array document accepted")
	}
}
