package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ResultsWriter streams campaign results as an incrementally written JSON
// array, element by element, so a campaign can persist each case as it
// finishes instead of accumulating all of them in memory first. The output
// is read back by LoadResults; wire Write into Runner.OnResult to bound
// resident memory at the in-flight cases (see Runner.OnResult).
//
// Write and Close must be called from one goroutine at a time —
// Runner.OnResult already serializes its calls.
type ResultsWriter struct {
	w      io.Writer
	enc    *json.Encoder
	n      int
	closed bool
}

// NewResultsWriter returns a writer streaming a JSON array to w. Nothing
// is written until the first Write; Close finishes the array (an empty
// campaign yields "[]").
func NewResultsWriter(w io.Writer) *ResultsWriter {
	enc := json.NewEncoder(w)
	enc.SetIndent(" ", " ")
	return &ResultsWriter{w: w, enc: enc}
}

// Write appends one result to the array.
func (rw *ResultsWriter) Write(res CaseResult) error {
	if rw.closed {
		return fmt.Errorf("core: write to closed results writer")
	}
	sep := "[\n "
	if rw.n > 0 {
		sep = ","
	}
	if _, err := io.WriteString(rw.w, sep); err != nil {
		return fmt.Errorf("core: streaming result: %w", err)
	}
	if err := rw.enc.Encode(res); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	rw.n++
	return nil
}

// Close terminates the JSON array. It does not close the underlying
// writer. Close is idempotent; Write after Close errors.
func (rw *ResultsWriter) Close() error {
	if rw.closed {
		return nil
	}
	rw.closed = true
	end := "]\n"
	if rw.n == 0 {
		end = "[]\n"
	}
	if _, err := io.WriteString(rw.w, end); err != nil {
		return fmt.Errorf("core: closing results stream: %w", err)
	}
	return nil
}

// ResultsFileWriter is a ResultsWriter that owns its destination file and
// buffers writes; Close flushes and closes the file.
type ResultsFileWriter struct {
	ResultsWriter
	f  *os.File
	bw *bufio.Writer
}

// NewResultsFileWriter creates path (truncating any existing file) and
// returns a streaming writer over it.
func NewResultsFileWriter(path string) (*ResultsFileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	bw := bufio.NewWriter(f)
	w := &ResultsFileWriter{f: f, bw: bw}
	w.ResultsWriter = *NewResultsWriter(bw)
	return w, nil
}

// Close finishes the JSON array, flushes, and closes the file.
func (w *ResultsFileWriter) Close() error {
	err := w.ResultsWriter.Close()
	if ferr := w.bw.Flush(); err == nil {
		err = ferr
	}
	if ferr := w.f.Close(); err == nil {
		err = ferr
	}
	return err
}
