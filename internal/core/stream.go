package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ResultsWriter streams campaign results as an incrementally written JSON
// array, element by element, so a campaign can persist each case as it
// finishes instead of accumulating all of them in memory first. The output
// is read back by LoadResults; wire Write into Runner.OnResult to bound
// resident memory at the in-flight cases (see Runner.OnResult).
//
// Write and Close must be called from one goroutine at a time —
// Runner.OnResult already serializes its calls.
type ResultsWriter struct {
	w      io.Writer
	enc    *json.Encoder
	n      int
	closed bool
}

// NewResultsWriter returns a writer streaming a JSON array to w. Nothing
// is written until the first Write; Close finishes the array (an empty
// campaign yields "[]").
func NewResultsWriter(w io.Writer) *ResultsWriter {
	enc := json.NewEncoder(w)
	enc.SetIndent(" ", " ")
	return &ResultsWriter{w: w, enc: enc}
}

// ResultsHeader is the run-metadata element a campaign can write as the
// array's FIRST entry, wrapped as {"header": {...}} so readers can tell it
// from a case result. It records how the results were produced — the
// execution mode and the RNG policy — so two results files are never
// compared across modes silently. LoadPartialResults skips header
// elements, so resume works unchanged over headered files.
type ResultsHeader struct {
	// SpecHash identifies the compiled campaign (spec.CampaignSpec.Hash).
	SpecHash string `json:"spec_hash,omitempty"`
	// RNGPolicy is the environment sampler name ("polar" or "ziggurat").
	RNGPolicy string `json:"rng_policy"`
	// RunnerMode is "batch" (lockstep fork batches) or "scalar".
	RunnerMode string `json:"runner_mode"`
	// BatchWidth is the lockstep batch cap (0 when RunnerMode is scalar).
	BatchWidth int `json:"batch_width,omitempty"`
	// Workers is the pool size the campaign ran with.
	Workers int `json:"workers,omitempty"`
}

// resultsElement is the read-side shape of one array element: either a
// header wrapper or a plain case result.
type resultsElement struct {
	Header *ResultsHeader `json:"header"`
	CaseResult
}

// WriteHeader writes the run-metadata element. It must be called before
// the first Write.
func (rw *ResultsWriter) WriteHeader(h ResultsHeader) error {
	if rw.closed {
		return fmt.Errorf("core: write to closed results writer")
	}
	if rw.n > 0 {
		return fmt.Errorf("core: results header must be the first element (have %d results already)", rw.n)
	}
	if _, err := io.WriteString(rw.w, "[\n "); err != nil {
		return fmt.Errorf("core: streaming header: %w", err)
	}
	if err := rw.enc.Encode(struct {
		Header ResultsHeader `json:"header"`
	}{h}); err != nil {
		return fmt.Errorf("core: encoding header: %w", err)
	}
	rw.n++
	return nil
}

// Write appends one result to the array.
func (rw *ResultsWriter) Write(res CaseResult) error {
	if rw.closed {
		return fmt.Errorf("core: write to closed results writer")
	}
	sep := "[\n "
	if rw.n > 0 {
		sep = ","
	}
	if _, err := io.WriteString(rw.w, sep); err != nil {
		return fmt.Errorf("core: streaming result: %w", err)
	}
	if err := rw.enc.Encode(res); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	rw.n++
	return nil
}

// Close terminates the JSON array. It does not close the underlying
// writer. Close is idempotent; Write after Close errors.
func (rw *ResultsWriter) Close() error {
	if rw.closed {
		return nil
	}
	rw.closed = true
	end := "]\n"
	if rw.n == 0 {
		end = "[]\n"
	}
	if _, err := io.WriteString(rw.w, end); err != nil {
		return fmt.Errorf("core: closing results stream: %w", err)
	}
	return nil
}

// ResultsFileWriter is a ResultsWriter that owns its destination file and
// buffers writes; Close flushes and closes the file.
type ResultsFileWriter struct {
	ResultsWriter
	f  *os.File
	bw *bufio.Writer
}

// NewResultsFileWriter creates path (truncating any existing file) and
// returns a streaming writer over it.
func NewResultsFileWriter(path string) (*ResultsFileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	bw := bufio.NewWriter(f)
	w := &ResultsFileWriter{f: f, bw: bw}
	w.ResultsWriter = *NewResultsWriter(bw)
	return w, nil
}

// Close finishes the JSON array, flushes, and closes the file.
func (w *ResultsFileWriter) Close() error {
	err := w.ResultsWriter.Close()
	if ferr := w.bw.Flush(); err == nil {
		err = ferr
	}
	if ferr := w.f.Close(); err == nil {
		err = ferr
	}
	return err
}
