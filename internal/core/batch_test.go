package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/obs"
)

// batchCases builds one prefix group of all 21 primitive x target
// combinations plus a gold case (which can never batch).
func batchCases() []Case {
	cases := []Case{{ID: "gold", MissionID: 1, Seed: 21}}
	for _, p := range faultinject.Primitives() {
		for _, target := range faultinject.Targets() {
			cases = append(cases, Case{
				ID: "f-" + p.String() + "-" + target.String(), MissionID: 1, Seed: 21,
				Injection: &faultinject.Injection{
					Primitive: p, Target: target,
					Start: 20 * time.Second, Duration: 5 * time.Second,
					Seed: int64(100*int(p) + int(target)),
				},
			})
		}
	}
	return cases
}

// TestRunnerBatchMatchesScalar: the lockstep batch path must produce
// byte-for-byte the results of the scalar forked path, including with a
// batch width that splits the prefix group into multiple chunks.
func TestRunnerBatchMatchesScalar(t *testing.T) {
	run := func(batch bool, width int) []CaseResult {
		r := NewRunner()
		r.Missions = shortScenario()
		r.Workers = 4
		r.Batch = batch
		r.BatchWidth = width
		return r.RunAll(context.Background(), batchCases())
	}

	scalar := run(false, 0)
	for _, width := range []int{0, 5} {
		batched := run(true, width)
		if len(scalar) != len(batched) {
			t.Fatalf("width %d: result counts differ: %d vs %d", width, len(scalar), len(batched))
		}
		for i := range scalar {
			s, b := scalar[i], batched[i]
			if s.Err != b.Err {
				t.Errorf("width %d %s: err %q vs %q", width, s.Case.ID, s.Err, b.Err)
			}
			if s.Result.Outcome != b.Result.Outcome ||
				s.Result.FlightDurationSec != b.Result.FlightDurationSec ||
				s.Result.DistanceKm != b.Result.DistanceKm ||
				s.Result.InnerViolations != b.Result.InnerViolations ||
				s.Result.OuterViolations != b.Result.OuterViolations ||
				s.Result.WaypointsReached != b.Result.WaypointsReached ||
				s.Result.FailsafeCause != b.Result.FailsafeCause ||
				s.Result.CrashReason != b.Result.CrashReason {
				t.Errorf("width %d %s: batch result differs:\n scalar %+v\n batch  %+v",
					width, s.Case.ID, s.Result, b.Result)
			}
			if !reflect.DeepEqual(s.Result.Diagnostics, b.Result.Diagnostics) {
				t.Errorf("width %d %s: diagnostics differ between scalar and batch", width, s.Case.ID)
			}
		}
	}
}

// TestRunnerBatchMetrics: batched cases are counted both as forked (they
// are forks) and in the dedicated batched counter; the gold singleton
// stays scalar.
func TestRunnerBatchMetrics(t *testing.T) {
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = 2
	r.Obs = obs.NewRegistry()
	cases := batchCases()
	r.RunAll(context.Background(), cases)

	val := func(name string) int64 { return r.Obs.Counter(name).Value() }
	faulty := int64(len(cases) - 1)
	if got := val("campaign_cases_batched_total"); got != faulty {
		t.Errorf("batched = %d, want %d", got, faulty)
	}
	if got := val("campaign_cases_forked_total"); got != faulty {
		t.Errorf("forked = %d, want %d", got, faulty)
	}
	if got := val("campaign_cases_straight_total"); got != 1 {
		t.Errorf("straight = %d, want 1 (the gold case)", got)
	}
	if got := val("campaign_cases_total"); got != int64(len(cases)) {
		t.Errorf("cases_total = %d, want %d", got, len(cases))
	}
}
