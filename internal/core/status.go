package core

import "uavres/internal/obs"

// Status is one point-in-time view of a running campaign, the payload of
// cmd/campaign's -status-addr JSON and SSE endpoints. Every dynamic field
// is derived from the shared obs.Registry the Runner already updates, so
// producing a snapshot costs a handful of atomic loads and never touches
// the worker pool.
type Status struct {
	SpecHash   string `json:"spec_hash,omitempty"`
	RunnerMode string `json:"runner_mode"`
	RNGPolicy  string `json:"rng_policy,omitempty"`
	BatchWidth int    `json:"batch_width"`
	Workers    int    `json:"workers"`

	CasesTotal  int   `json:"cases_total"`
	CasesDone   int64 `json:"cases_done"`
	CasesCached int64 `json:"cases_cached"`

	// CacheHits/CacheMisses count result-store lookups (Runner.Cache);
	// CacheHitRatio is hits/(hits+misses), 0 until the first lookup.
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	Completed int64 `json:"completed"`
	Crashed   int64 `json:"crashed"`
	Failsafed int64 `json:"failsafed"`
	TimedOut  int64 `json:"timed_out"`
	Errors    int64 `json:"errors"`

	ActiveWorkers int   `json:"active_workers"`
	ActiveBatches int   `json:"active_batches"`
	TraceDropped  int64 `json:"trace_dropped"`

	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	MeanCaseSeconds float64 `json:"mean_case_seconds"`
	ETASeconds      float64 `json:"eta_seconds"`
	Done            bool    `json:"done"`
}

// StatusConfig carries the static facts a StatusSource reports alongside
// the live counters.
type StatusConfig struct {
	// Total is the campaign's case count including resume-cached cases.
	Total      int
	SpecHash   string
	RNGPolicy  string
	RunnerMode string
	BatchWidth int
	Workers    int
	// Clock supplies wall time for elapsed/ETA; nil means obs.Stopped()
	// (elapsed stays zero, ETA still derives from case_seconds).
	Clock obs.Clock
}

// StatusSource resolves the campaign instruments once and renders Status
// snapshots on demand. It must share the registry the Runner observes;
// registration is idempotent, so construction order does not matter.
type StatusSource struct {
	cfg   StatusConfig
	start float64

	cases   *obs.Counter
	cached  *obs.Counter
	errors  *obs.Counter
	dropped *obs.Counter

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter

	completed *obs.Counter
	crashed   *obs.Counter
	failsafed *obs.Counter
	timedOut  *obs.Counter

	activeWorkers *obs.Gauge
	activeBatches *obs.Gauge
	caseSeconds   *obs.Histogram
}

// NewStatusSource builds a source over reg. The clock is read once here
// to anchor ElapsedSeconds.
func NewStatusSource(reg *obs.Registry, cfg StatusConfig) *StatusSource {
	if cfg.Clock == nil {
		cfg.Clock = obs.Stopped()
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &StatusSource{
		cfg:   cfg,
		start: cfg.Clock(),

		cases:   reg.Counter("campaign_cases_total"),
		cached:  reg.Counter("campaign_cases_cached_total"),
		errors:  reg.Counter("campaign_case_errors_total"),
		dropped: reg.Counter("campaign_trace_dropped_total"),

		cacheHits:   reg.Counter("campaign_cache_hits_total"),
		cacheMisses: reg.Counter("campaign_cache_misses_total"),

		completed: reg.Counter("campaign_outcome_completed_total"),
		crashed:   reg.Counter("campaign_outcome_crash_total"),
		failsafed: reg.Counter("campaign_outcome_failsafe_total"),
		timedOut:  reg.Counter("campaign_outcome_timeout_total"),

		activeWorkers: reg.Gauge("campaign_active_workers"),
		activeBatches: reg.Gauge("campaign_active_batches"),
		caseSeconds:   reg.Histogram("campaign_case_seconds", caseSecondsBounds),
	}
}

// AddCached records n resume-cache hits (cases finished without running).
func (s *StatusSource) AddCached(n int) {
	s.cached.Add(int64(n))
}

// Snapshot renders the current status. ETA assumes the remaining cases
// cost the observed mean case-seconds each, spread across the worker
// pool — the same wall-time split the case_seconds histogram records —
// and reads zero until the first case lands.
func (s *StatusSource) Snapshot() Status {
	run := s.cases.Value()
	cached := s.cached.Value()
	done := run + cached
	st := Status{
		SpecHash:   s.cfg.SpecHash,
		RunnerMode: s.cfg.RunnerMode,
		RNGPolicy:  s.cfg.RNGPolicy,
		BatchWidth: s.cfg.BatchWidth,
		Workers:    s.cfg.Workers,

		CasesTotal:  s.cfg.Total,
		CasesDone:   done,
		CasesCached: cached,

		Completed: s.completed.Value(),
		Crashed:   s.crashed.Value(),
		Failsafed: s.failsafed.Value(),
		TimedOut:  s.timedOut.Value(),
		Errors:    s.errors.Value(),

		CacheHits:   s.cacheHits.Value(),
		CacheMisses: s.cacheMisses.Value(),

		ActiveWorkers: int(s.activeWorkers.Value()),
		ActiveBatches: int(s.activeBatches.Value()),
		TraceDropped:  s.dropped.Value(),

		ElapsedSeconds: s.cfg.Clock() - s.start,
		Done:           s.cfg.Total > 0 && done >= int64(s.cfg.Total),
	}
	if n := s.caseSeconds.Count(); n > 0 {
		st.MeanCaseSeconds = s.caseSeconds.Sum() / float64(n)
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRatio = float64(st.CacheHits) / float64(lookups)
	}
	if remaining := int64(s.cfg.Total) - done; remaining > 0 && st.MeanCaseSeconds > 0 {
		st.ETASeconds = float64(remaining) * st.MeanCaseSeconds / float64(s.cfg.Workers)
	}
	return st
}

// MarkCachedCases emits one closed cache-hit case span per reused result
// under parent, so a resumed campaign's trace still carries every case:
// per-case span count equals the case count in the results file whether
// a case ran or was replayed from the resume cache.
func MarkCachedCases(tr *obs.Tracer, parent obs.SpanID, results []CaseResult) {
	for _, res := range results {
		id := tr.Start("case", parent,
			obs.StrAttr("id", res.Case.ID),
			obs.BoolAttr("cache_hit", true),
			obs.StrAttr("outcome", cachedOutcome(res)))
		tr.End(id)
	}
}

// cachedOutcome labels a reused result for its cache-hit span.
func cachedOutcome(res CaseResult) string {
	if res.Err != "" {
		return "error"
	}
	return res.Result.Outcome.String()
}
