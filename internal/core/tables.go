package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// RenderTableII renders the paper's Table II: average summary of all
// missions for all faults, grouped by injection duration.
func RenderTableII(results []CaseResult) string {
	var b strings.Builder
	b.WriteString("TABLE II: Average summary of all missions for all faults, grouped by injection duration.\n")
	writeMetricHeader(&b, "Injection Duration")
	writeMetricRow(&b, GoldStats(results))
	for _, row := range ByDuration(results) {
		writeMetricRow(&b, row)
	}
	return b.String()
}

// RenderTableIII renders the paper's Table III: average summary grouped by
// the 21 fault types.
func RenderTableIII(results []CaseResult) string {
	var b strings.Builder
	b.WriteString("TABLE III: Average summary of all missions and durations, grouped by fault.\n")
	writeMetricHeader(&b, "Injection Type")
	writeMetricRow(&b, GoldStats(results))
	for _, row := range ByFault(results) {
		writeMetricRow(&b, row)
	}
	return b.String()
}

// RenderTableIV renders the paper's Table IV: mission failure analysis by
// duration and by component, with the crash/failsafe split of failures.
func RenderTableIV(results []CaseResult) string {
	var b strings.Builder
	b.WriteString("TABLE IV: Mission failure analysis.\n")
	fmt.Fprintf(&b, "%-20s %26s %10s %13s\n",
		"Injection Type", "Total Missions Failed (%)", "Crash (%)", "Failsafe (%)")
	writeFailureRow(&b, GoldStats(results))
	for _, row := range ByDuration(results) {
		writeFailureRow(&b, row)
	}
	for _, row := range ByComponent(results) {
		writeFailureRow(&b, row)
	}
	return b.String()
}

// RenderAirframeTable renders the redundancy comparison: the same fault
// matrix flown on each airframe in the plan, with the metric summary and
// the crash/failsafe split side by side. Single-airframe result sets
// render a one-row table (legacy quad-only campaigns).
func RenderAirframeTable(results []CaseResult) string {
	var b strings.Builder
	b.WriteString("REDUNDANCY: Average summary of all missions and faults, grouped by airframe.\n")
	rows := ByAirframe(results)
	writeMetricHeader(&b, "Airframe")
	for _, row := range rows {
		writeMetricRow(&b, row)
	}
	fmt.Fprintf(&b, "%-20s %26s %10s %13s\n",
		"Airframe", "Total Missions Failed (%)", "Crash (%)", "Failsafe (%)")
	for _, row := range rows {
		writeFailureRow(&b, row)
	}
	return b.String()
}

func writeMetricHeader(b *strings.Builder, keyCol string) {
	fmt.Fprintf(b, "%-20s %10s %10s %15s %15s %14s\n",
		keyCol, "Inner (#)", "Outer (#)", "Completed (%)", "Duration (sec)", "Distance (km)")
}

func writeMetricRow(b *strings.Builder, g GroupStats) {
	fmt.Fprintf(b, "%-20s %10.2f %10.2f %14.2f%% %15.2f %14.2f\n",
		g.Label, g.InnerViolations, g.OuterViolations, g.CompletedPct, g.DurationSec, g.DistanceKm)
}

func writeFailureRow(b *strings.Builder, g GroupStats) {
	fmt.Fprintf(b, "%-20s %25.2f%% %9.1f%% %12.1f%%\n",
		g.Label, g.FailedPct, g.CrashPct, g.FailsafePct)
}

// RenderFaultModel renders the paper's Table I (the fault-model registry).
func RenderFaultModel() string {
	var b strings.Builder
	b.WriteString("TABLE I: Fault Model for IMUs Used in Drones.\n")
	fmt.Fprintf(&b, "%-22s %-22s %-14s %s\n", "Fault", "Represented by", "Targets", "References")
	for _, fc := range Registry() {
		prims := make([]string, 0, len(fc.Primitives))
		for _, p := range fc.Primitives {
			prims = append(prims, p.String())
		}
		targets := make([]string, 0, len(fc.Targets))
		for _, t := range fc.Targets {
			targets = append(targets, t.String())
		}
		fmt.Fprintf(&b, "%-22s %-22s %-14s %s\n",
			fc.Name, strings.Join(prims, "/"), strings.Join(targets, ","), strings.Join(fc.References, " "))
	}
	return b.String()
}

// Registry re-exports the fault model for table rendering without forcing
// callers through the faultinject package.
var Registry = registryFunc

// SaveResults writes campaign results as JSON.
func SaveResults(w io.Writer, results []CaseResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("core: encoding results: %w", err)
	}
	return nil
}

// LoadResults reads campaign results from JSON, skipping any run-metadata
// header element (see ResultsWriter.WriteHeader).
func LoadResults(r io.Reader) ([]CaseResult, error) {
	_, out, err := LoadResultsWithHeader(r)
	return out, err
}

// LoadResultsWithHeader is LoadResults plus the run-metadata header, when
// the file carries one (nil otherwise). Only the first header element is
// returned.
func LoadResultsWithHeader(r io.Reader) (*ResultsHeader, []CaseResult, error) {
	var els []resultsElement
	if err := json.NewDecoder(r).Decode(&els); err != nil {
		return nil, nil, fmt.Errorf("core: decoding results: %w", err)
	}
	var hdr *ResultsHeader
	out := make([]CaseResult, 0, len(els))
	for _, el := range els {
		if el.Header != nil {
			if hdr == nil {
				hdr = el.Header
			}
			continue
		}
		out = append(out, el.CaseResult)
	}
	return hdr, out, nil
}

// SaveResultsFile and LoadResultsFile are the file-path conveniences the
// campaign and tables commands share.
func SaveResultsFile(path string, results []CaseResult) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := SaveResults(f, results); err != nil {
		return err
	}
	return f.Close()
}

// LoadResultsFile reads campaign results from a JSON file.
func LoadResultsFile(path string) ([]CaseResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadResults(f)
}

// LoadResultsFileWithHeader is LoadResultsWithHeader over a file path.
func LoadResultsFileWithHeader(path string) (*ResultsHeader, []CaseResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadResultsWithHeader(f)
}
