package core

import "sort"

// ShardCases partitions cases into at most n shards for distribution
// across worker processes, never splitting a prefix group: every set of
// cases that could share one simulated checkpoint prefix (same mission,
// environment seed, injection scope, and start — see casePrefixKey)
// lands in one shard, so checkpoint-and-fork and lockstep batching
// still apply inside each worker exactly as they do in-process. Cases
// that cannot fork (gold runs, immediate injections) travel as
// singleton groups.
//
// Assignment is deterministic: groups are ordered largest-first (ties
// by prefix key, then by first case index) and greedily placed on the
// least-loaded shard (ties to the lowest shard index) — the classic LPT
// balance, reproducible for a given campaign. Each shard's cases keep
// their input order; empty shards are dropped.
func ShardCases(cases []Case, n int) [][]Case {
	if len(cases) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}

	// Group indices by prefix key; zero-key cases each form their own
	// singleton group.
	type group struct {
		key  prefixKey
		idxs []int
	}
	byKey := map[prefixKey]int{}
	var groups []group
	for i, c := range cases {
		k := casePrefixKey(c)
		if k == (prefixKey{}) {
			groups = append(groups, group{idxs: []int{i}})
			continue
		}
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, group{key: k})
		}
		groups[gi].idxs = append(groups[gi].idxs, i)
	}

	// Largest-first, deterministic tiebreak: prefix-key order is the
	// total order sortPrefixKeys defines; singletons (zero key) tie-break
	// on their first case index.
	sort.SliceStable(groups, func(a, b int) bool {
		ga, gb := groups[a], groups[b]
		if len(ga.idxs) != len(gb.idxs) {
			return len(ga.idxs) > len(gb.idxs)
		}
		if ga.key != gb.key {
			return lessPrefixKey(ga.key, gb.key)
		}
		return ga.idxs[0] < gb.idxs[0]
	})

	shardIdxs := make([][]int, n)
	loads := make([]int, n)
	for _, g := range groups {
		best := 0
		for s := 1; s < n; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		shardIdxs[best] = append(shardIdxs[best], g.idxs...)
		loads[best] += len(g.idxs)
	}

	out := make([][]Case, 0, n)
	for _, idxs := range shardIdxs {
		if len(idxs) == 0 {
			continue
		}
		sort.Ints(idxs)
		shard := make([]Case, len(idxs))
		for j, i := range idxs {
			shard[j] = cases[i]
		}
		out = append(out, shard)
	}
	return out
}
