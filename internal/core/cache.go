package core

// ResultCache is a fingerprint-keyed cache of finished case results the
// Runner consults before scheduling any simulation. A case whose
// content hash (Case.Hash, see internal/spec.Fingerprint) resolves to a
// stored result is returned as a cache hit without touching a worker;
// every freshly simulated result is offered back through Store. The
// canonical implementation is internal/store's content-addressed
// on-disk store; -resume's results-file replay is the degenerate
// in-memory form.
//
// Lookup must be safe for concurrent use with Store only if the caller
// makes it so: the Runner performs all lookups up front on one
// goroutine and serializes Store calls under the same lock as OnResult.
type ResultCache interface {
	// Lookup returns the stored result for a content hash. A miss — or
	// anything the implementation cannot verify (corrupt object, torn
	// write) — returns ok=false; the case then simulates normally.
	Lookup(hash string) (CaseResult, bool)
	// Store offers a finished result for caching. Implementations must
	// tolerate duplicate offers (two campaigns racing the same cell) and
	// must never fail the campaign: persistence errors are surfaced out
	// of band, not returned.
	Store(res CaseResult)
}

// memoryCache is the trivial map-backed ResultCache used by tests and by
// resume-style replay of an in-memory result set.
type memoryCache struct {
	byHash map[string]CaseResult
}

// NewMemoryCache builds an in-memory ResultCache seeded with prior
// results (hashless entries are ignored — they can never be looked up).
func NewMemoryCache(prior []CaseResult) ResultCache {
	m := &memoryCache{byHash: make(map[string]CaseResult, len(prior))}
	for _, cr := range prior {
		if cr.Case.Hash != "" {
			m.byHash[cr.Case.Hash] = cr
		}
	}
	return m
}

func (m *memoryCache) Lookup(hash string) (CaseResult, bool) {
	cr, ok := m.byHash[hash]
	return cr, ok
}

func (m *memoryCache) Store(res CaseResult) {
	if res.Case.Hash != "" {
		m.byHash[res.Case.Hash] = res
	}
}
