package core

import (
	"context"
	"reflect"
	"testing"

	"uavres/internal/obs"
)

// cachedRunner builds the small runner the cache tests share.
func cachedRunner(reg *obs.Registry) *Runner {
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = 2
	r.Checkpoint = true
	r.Batch = true
	r.Obs = reg
	return r
}

// TestRunnerCacheWarmRunIsAllHits: a cold run populates the cache; a
// warm run over the same cases replays everything — same results, zero
// fresh simulations, counters telling the story.
func TestRunnerCacheWarmRunIsAllHits(t *testing.T) {
	cases := hashedCases()
	cache := NewMemoryCache(nil)

	cold := obs.NewRegistry()
	r := cachedRunner(cold)
	r.Cache = cache
	coldResults := r.RunAll(context.Background(), cases)
	if got := cold.Counter("campaign_cache_misses_total").Value(); got != int64(len(cases)) {
		t.Fatalf("cold misses = %d, want %d", got, len(cases))
	}
	if got := cold.Counter("campaign_cache_hits_total").Value(); got != 0 {
		t.Fatalf("cold hits = %d, want 0", got)
	}

	warm := obs.NewRegistry()
	r2 := cachedRunner(warm)
	r2.Cache = cache
	var progress [][2]int
	r2.Progress = func(done, total int) { progress = append(progress, [2]int{done, total}) }
	var streamed []string
	r2.OnResult = func(res CaseResult) { streamed = append(streamed, res.Case.ID) }
	warmResults := r2.RunAll(context.Background(), cases)

	if got := warm.Counter("campaign_cache_hits_total").Value(); got != int64(len(cases)) {
		t.Errorf("warm hits = %d, want %d", got, len(cases))
	}
	if got := warm.Counter("campaign_cache_misses_total").Value(); got != 0 {
		t.Errorf("warm misses = %d", got)
	}
	if got := warm.Counter("campaign_cases_total").Value(); got != 0 {
		t.Errorf("warm run simulated %d cases, want 0", got)
	}
	// Hits count as done cases for the status arithmetic.
	if got := warm.Counter("campaign_cases_cached_total").Value(); got != int64(len(cases)) {
		t.Errorf("warm cases_cached = %d, want %d", got, len(cases))
	}

	if !reflect.DeepEqual(coldResults, warmResults) {
		t.Errorf("warm results differ from cold:\ncold %+v\nwarm %+v", coldResults, warmResults)
	}
	// Streaming and progress cover the hits, in input order, over the
	// full campaign total.
	if len(streamed) != len(cases) {
		t.Fatalf("OnResult saw %d results, want %d", len(streamed), len(cases))
	}
	for i, c := range cases {
		if streamed[i] != c.ID {
			t.Errorf("streamed[%d] = %s, want %s", i, streamed[i], c.ID)
		}
	}
	last := progress[len(progress)-1]
	if last != [2]int{len(cases), len(cases)} {
		t.Errorf("final progress = %v, want [%d %d]", last, len(cases), len(cases))
	}
}

// TestRunnerCachePartialHits: a cache holding a subset replays exactly
// that subset and simulates the complement, with progress spanning both.
func TestRunnerCachePartialHits(t *testing.T) {
	cases := hashedCases()

	// Seed the cache by running only the first two cases cold.
	cache := NewMemoryCache(nil)
	seed := cachedRunner(obs.NewRegistry())
	seed.Cache = cache
	seed.RunAll(context.Background(), cases[:2])

	reg := obs.NewRegistry()
	r := cachedRunner(reg)
	r.Cache = cache
	var progress [][2]int
	r.Progress = func(done, total int) { progress = append(progress, [2]int{done, total}) }
	results := r.RunAll(context.Background(), cases)

	if got := reg.Counter("campaign_cache_hits_total").Value(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := reg.Counter("campaign_cache_misses_total").Value(); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := reg.Counter("campaign_cases_total").Value(); got != 2 {
		t.Errorf("simulated %d cases, want 2", got)
	}
	if len(results) != len(cases) {
		t.Fatalf("got %d results, want %d", len(results), len(cases))
	}
	for i, res := range results {
		if res.Case.ID != cases[i].ID {
			t.Errorf("results[%d] is %s, want %s (order must follow input)", i, res.Case.ID, cases[i].ID)
		}
	}
	// Every progress call is monotonic over the whole campaign, ending
	// at (4, 4).
	prev := 0
	for _, p := range progress {
		if p[1] != len(cases) || p[0] <= prev {
			t.Fatalf("progress sequence broken: %v", progress)
		}
		prev = p[0]
	}
	if prev != len(cases) {
		t.Errorf("progress ended at %d, want %d", prev, len(cases))
	}
}

// TestRunnerCacheRejectsMismatches: stale entries — wrong ID for the
// hash, errored results, hashless cases — never replay.
func TestRunnerCacheRejectsMismatches(t *testing.T) {
	cases := hashedCases()
	prior := []CaseResult{
		{Case: Case{ID: "imposter", Hash: cases[0].Hash}},            // ID mismatch
		{Case: Case{ID: cases[1].ID, Hash: cases[1].Hash}, Err: "x"}, // errored
	}
	cache := NewMemoryCache(prior)
	hashless := cases[2]
	hashless.Hash = ""

	reg := obs.NewRegistry()
	r := cachedRunner(reg)
	r.Cache = cache
	r.RunAll(context.Background(), []Case{cases[0], cases[1], hashless})

	if got := reg.Counter("campaign_cache_hits_total").Value(); got != 0 {
		t.Errorf("hits = %d, want 0 (all entries unusable)", got)
	}
	if got := reg.Counter("campaign_cases_total").Value(); got != 3 {
		t.Errorf("simulated %d cases, want 3", got)
	}
}

// TestRunnerCacheHitSpans: with tracing on, each replayed case gets a
// closed cache-hit case span so span accounting matches the results file.
func TestRunnerCacheHitSpans(t *testing.T) {
	cases := hashedCases()
	cache := NewMemoryCache(nil)
	seed := cachedRunner(obs.NewRegistry())
	seed.Cache = cache
	seed.RunAll(context.Background(), cases)

	r := cachedRunner(obs.NewRegistry())
	r.Cache = cache
	r.Trace = obs.NewTracer(nil, 16)
	r.RunAll(context.Background(), cases)

	hits := 0
	for _, sp := range r.Trace.Spans() {
		if sp.Name != "case" || sp.Open {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "cache_hit" && a.Str == "true" {
				hits++
			}
		}
	}
	if hits != len(cases) {
		t.Errorf("cache-hit case spans = %d, want %d", hits, len(cases))
	}
}
