package core

import (
	"reflect"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mission"
)

// planForShards builds the paper-shaped 850-case plan: per mission, one
// gold run plus 84 faulty cases sharing a single 90-second prefix.
func planForShards() []Case {
	return Plan(mission.Valencia(), 7)
}

func TestShardCasesCoversEveryCaseOnce(t *testing.T) {
	cases := planForShards()
	shards := ShardCases(cases, 4)
	seen := map[string]int{}
	total := 0
	for _, sh := range shards {
		total += len(sh)
		for _, c := range sh {
			seen[c.ID]++
		}
	}
	if total != len(cases) {
		t.Fatalf("shards hold %d cases, plan has %d", total, len(cases))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("case %s assigned %d times", id, n)
		}
	}
}

func TestShardCasesNeverSplitsPrefixGroups(t *testing.T) {
	cases := planForShards()
	shards := ShardCases(cases, 8)
	owner := map[prefixKey]int{}
	for si, sh := range shards {
		for _, c := range sh {
			k := casePrefixKey(c)
			if k == (prefixKey{}) {
				continue // gold runs and immediate injections travel solo
			}
			if prev, ok := owner[k]; ok && prev != si {
				t.Fatalf("prefix group %+v split across shards %d and %d", k, prev, si)
			}
			owner[k] = si
		}
	}
	// The Valencia plan has one forkable prefix per mission; with more
	// shards than missions the group count bounds the spread.
	if len(owner) != 10 {
		t.Errorf("found %d prefix groups, want 10", len(owner))
	}
}

func TestShardCasesDeterministicAndBalanced(t *testing.T) {
	cases := planForShards()
	a := ShardCases(cases, 5)
	b := ShardCases(cases, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharding is not deterministic")
	}
	// 10 missions x 85 cases over 5 shards: LPT lands exactly two
	// prefix groups (plus their gold singletons) per shard.
	for si, sh := range a {
		if len(sh) != 170 {
			t.Errorf("shard %d holds %d cases, want 170", si, len(sh))
		}
	}
}

func TestShardCasesPreservesInputOrderWithinShard(t *testing.T) {
	cases := planForShards()
	pos := map[string]int{}
	for i, c := range cases {
		pos[c.ID] = i
	}
	for si, sh := range ShardCases(cases, 3) {
		prev := -1
		for _, c := range sh {
			if pos[c.ID] < prev {
				t.Fatalf("shard %d reorders cases (%s)", si, c.ID)
			}
			prev = pos[c.ID]
		}
	}
}

func TestShardCasesEdgeCounts(t *testing.T) {
	if got := ShardCases(nil, 4); got != nil {
		t.Errorf("empty input: %v", got)
	}
	one := []Case{{ID: "solo", MissionID: 1, Seed: 3}}
	if got := ShardCases(one, 8); len(got) != 1 || len(got[0]) != 1 {
		t.Errorf("single case: %v", got)
	}
	// n<1 clamps to one shard holding everything.
	cases := []Case{
		{ID: "a", MissionID: 1, Seed: 3},
		{ID: "b", MissionID: 2, Seed: 4},
	}
	if got := ShardCases(cases, 0); len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("n=0: %v", got)
	}
}

// TestShardCasesSingletonSpread: cases that cannot fork (distinct
// prefixes) still spread across shards rather than pile on one.
func TestShardCasesSingletonSpread(t *testing.T) {
	var cases []Case
	for i := 0; i < 12; i++ {
		cases = append(cases, Case{
			ID:        string(rune('a' + i)),
			MissionID: i + 1,
			Seed:      int64(i + 1),
			Injection: &faultinject.Injection{
				Primitive: faultinject.Freeze,
				Target:    faultinject.TargetGyro,
				Start:     90 * time.Second,
				Duration:  time.Second,
			},
		})
	}
	shards := ShardCases(cases, 4)
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	for si, sh := range shards {
		if len(sh) != 3 {
			t.Errorf("shard %d holds %d cases, want 3", si, len(sh))
		}
	}
}
