package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"uavres/internal/mission"
	"uavres/internal/sim"
)

// Runner executes campaign cases over a worker pool. Each case is an
// independent, deterministic simulation, so the pool scales linearly.
type Runner struct {
	// Config is the per-run simulation configuration (the Seed field is
	// overridden per case).
	Config sim.Config
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Missions indexes the scenario by mission ID; nil means the
	// Valencia scenario.
	Missions []mission.Mission
	// Progress, if non-nil, is called after every completed case with
	// (done, total). Calls are serialized.
	Progress func(done, total int)
}

// NewRunner returns a runner with the default campaign configuration.
func NewRunner() *Runner {
	return &Runner{Config: sim.DefaultConfig()}
}

// missionByID resolves a mission from the runner's scenario.
func (r *Runner) missionByID(id int) (mission.Mission, error) {
	ms := r.Missions
	if ms == nil {
		ms = mission.Valencia()
	}
	for _, m := range ms {
		if m.ID == id {
			return m, nil
		}
	}
	return mission.Mission{}, fmt.Errorf("core: unknown mission id %d", id)
}

// RunAll executes every case and returns results in the input order.
// Individual case failures are recorded in CaseResult.Err rather than
// aborting the campaign; ctx cancellation stops scheduling new cases.
func (r *Runner) RunAll(ctx context.Context, cases []Case) []CaseResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]CaseResult, len(cases))
	indexCh := make(chan int)

	var (
		wg       sync.WaitGroup
		doneMu   sync.Mutex
		doneObs  int
		progress = r.Progress
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indexCh {
				results[idx] = r.runCase(cases[idx])
				if progress != nil {
					doneMu.Lock()
					doneObs++
					progress(doneObs, len(cases))
					doneMu.Unlock()
				}
			}
		}()
	}

feed:
	for i := range cases {
		select {
		case <-ctx.Done():
			break feed
		case indexCh <- i:
		}
	}
	close(indexCh)
	wg.Wait()

	// Cases never scheduled (cancelled) are marked explicitly.
	for i := range results {
		if results[i].Case.ID == "" {
			results[i] = CaseResult{Case: cases[i], Err: "cancelled"}
		}
	}
	return results
}

func (r *Runner) runCase(c Case) CaseResult {
	m, err := r.missionByID(c.MissionID)
	if err != nil {
		return CaseResult{Case: c, Err: err.Error()}
	}
	cfg := r.Config
	cfg.Seed = c.Seed
	res, err := sim.Run(cfg, m, c.Injection, nil)
	if err != nil {
		return CaseResult{Case: c, Err: err.Error()}
	}
	return CaseResult{Case: c, Result: res}
}

// SortByID orders results by case ID (stable presentation for reports).
func SortByID(results []CaseResult) {
	sort.Slice(results, func(i, j int) bool {
		return results[i].Case.ID < results[j].Case.ID
	})
}
