package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/physics"
	"uavres/internal/sim"
)

// Runner executes campaign cases over a worker pool. Each case is an
// independent, deterministic simulation, so the pool scales linearly.
type Runner struct {
	// Config is the per-run simulation configuration (the Seed field is
	// overridden per case).
	Config sim.Config
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Missions indexes the scenario by mission ID; nil means the
	// Valencia scenario.
	Missions []mission.Mission
	// Progress, if non-nil, is called after every completed case with
	// (done, total). Calls are serialized.
	Progress func(done, total int)
	// OnResult, if non-nil, receives every finished case's FULL result in
	// completion order; calls are serialized (same lock as Progress). When
	// set, the runner strips the bulky per-case payloads (Trajectory,
	// Diagnostics) from the results slice it retains and returns, so a
	// streaming consumer bounds resident memory at O(workers) in-flight
	// cases instead of O(cases) — the aggregate tables only read the flat
	// outcome fields that remain.
	OnResult func(CaseResult)
	// Checkpoint enables checkpoint-and-fork execution: cases sharing a
	// mission, environment seed, injection scope, and injection start are
	// simulated once up to the injection point, then forked per case —
	// each fork bit-identical to a straight-through run (see
	// sim.TestForkBitIdentical). With the paper's plan, the 84 faulty
	// cases of each mission share one 90-second prefix. The zero-value
	// Runner runs every case straight through.
	Checkpoint bool
	// Batch additionally steps each prefix group's forks in lockstep
	// (sim.Batch): one donor vehicle draws the shared environment noise
	// once per tick and every fork composes it, eliminating the dominant
	// per-fork NormFloat64 cost. Outcomes stay bit-identical to the scalar
	// forked path (sim.TestBatchBitIdentical). Requires Checkpoint; groups
	// without a checkpoint (gold runs, singletons) run scalar as before.
	Batch bool
	// BatchWidth caps how many forks share one lockstep batch; <= 0 means
	// DefaultBatchWidth. Wider batches amortize the donor's draw cost over
	// more forks at the price of more resident vehicles per worker.
	BatchWidth int
	// Obs, if non-nil, receives campaign-level metrics: case and outcome
	// counters, fork/prefix accounting, and per-case/per-stage wall-clock
	// timing. Nil disables instrumentation entirely.
	Obs *obs.Registry
	// Clock supplies wall time in seconds for the timing metrics. Nil
	// means obs.Stopped(): timing metrics stay zero and the library never
	// reads the wall clock itself (cmd layers inject the real clock).
	Clock obs.Clock
	// Trace, if non-nil, receives the campaign span tree: one span per
	// stage, shared prefix, lockstep batch, and case, parented under
	// TraceRoot. A nil tracer (the default) records nothing and costs
	// nothing — every tracer method is a nil-safe no-op.
	Trace *obs.Tracer
	// TraceRoot is the parent span for everything the runner records
	// (typically the "campaign" span cmd/campaign opens); 0 makes the
	// stage and prefix spans roots.
	TraceRoot obs.SpanID
	// Cache, if non-nil, is consulted before any case is scheduled: a
	// case whose fingerprint (Case.Hash) resolves to a stored result is
	// returned as a cache hit — counted in campaign_cache_hits_total and
	// marked with a cache-hit case span — and every freshly simulated
	// result is offered back via Store. Like OnResult, the cache is a
	// streaming consumer: when it is set the runner strips the bulky
	// per-case payloads from the results slice it retains (the cache and
	// any OnResult consumer own the full payloads).
	Cache ResultCache
}

// traceCtx bundles the tracer state one RunAll threads through its
// workers: the tracer, the campaign root, and the prefix-key → span map
// built during the checkpoint stage so batches parent under their prefix.
type traceCtx struct {
	tr     *obs.Tracer
	root   obs.SpanID
	prefix map[prefixKey]obs.SpanID
}

// prefixSpan returns the span of k's shared prefix, or the root when the
// prefix was never built (gold runs, singletons, failed builds).
func (tc traceCtx) prefixSpan(k prefixKey) obs.SpanID {
	if id, ok := tc.prefix[k]; ok {
		return id
	}
	return tc.root
}

// now reads the injected clock (0 when none is wired).
func (r *Runner) now() float64 {
	if r.Clock == nil {
		return 0
	}
	return r.Clock()
}

// caseSecondsBounds buckets per-case wall time: checkpointed forks finish
// in well under a second; straight 400 s missions take a few seconds.
var caseSecondsBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// runnerMetrics holds the resolved campaign instruments. All fields are
// nil-safe to skip: a Runner without Obs never builds one.
type runnerMetrics struct {
	cases    *obs.Counter
	errors   *obs.Counter
	forked   *obs.Counter
	straight *obs.Counter
	batched  *obs.Counter
	prefixes *obs.Counter

	completed *obs.Counter
	crashed   *obs.Counter
	failsafed *obs.Counter
	timedOut  *obs.Counter

	// traceDropped accumulates per-case event-ring evictions
	// (Diagnostics.TraceDropped), surfacing what was silent truncation.
	traceDropped *obs.Counter

	caseSeconds       *obs.Histogram
	checkpointSeconds *obs.Gauge
	runSeconds        *obs.Gauge

	// activeWorkers/activeBatches are live concurrency levels for the
	// status endpoint: workers currently executing a unit, and units
	// currently inside a lockstep batch run.
	activeWorkers *obs.Gauge
	activeBatches *obs.Gauge
}

func newRunnerMetrics(reg *obs.Registry) *runnerMetrics {
	return &runnerMetrics{
		cases:    reg.Counter("campaign_cases_total"),
		errors:   reg.Counter("campaign_case_errors_total"),
		forked:   reg.Counter("campaign_cases_forked_total"),
		straight: reg.Counter("campaign_cases_straight_total"),
		batched:  reg.Counter("campaign_cases_batched_total"),
		prefixes: reg.Counter("campaign_prefixes_built_total"),

		completed: reg.Counter("campaign_outcome_completed_total"),
		crashed:   reg.Counter("campaign_outcome_crash_total"),
		failsafed: reg.Counter("campaign_outcome_failsafe_total"),
		timedOut:  reg.Counter("campaign_outcome_timeout_total"),

		traceDropped: reg.Counter("campaign_trace_dropped_total"),

		caseSeconds:       reg.Histogram("campaign_case_seconds", caseSecondsBounds),
		checkpointSeconds: reg.Gauge("campaign_checkpoint_stage_seconds"),
		runSeconds:        reg.Gauge("campaign_run_stage_seconds"),

		activeWorkers: reg.Gauge("campaign_active_workers"),
		activeBatches: reg.Gauge("campaign_active_batches"),
	}
}

// observeCase folds one finished case into the campaign counters.
func (m *runnerMetrics) observeCase(res CaseResult, forked bool, seconds float64) {
	if m == nil {
		return
	}
	m.cases.Inc()
	m.caseSeconds.Observe(seconds)
	if forked {
		m.forked.Inc()
	} else {
		m.straight.Inc()
	}
	if res.Err != "" {
		m.errors.Inc()
		return
	}
	if res.Result.Diagnostics != nil {
		m.traceDropped.Add(res.Result.Diagnostics.TraceDropped)
	}
	switch res.Result.Outcome {
	case sim.OutcomeCompleted:
		m.completed.Inc()
	case sim.OutcomeCrash:
		m.crashed.Inc()
	case sim.OutcomeFailsafe:
		m.failsafed.Inc()
	case sim.OutcomeTimeout:
		m.timedOut.Inc()
	}
}

// DefaultBatchWidth is the lockstep batch cap when Runner.BatchWidth is
// unset: wide enough to amortize the donor's draw cost to ~3% per fork,
// small enough that a worker's resident vehicle set stays modest.
const DefaultBatchWidth = 32

// NewRunner returns a runner with the default campaign configuration.
func NewRunner() *Runner {
	return &Runner{Config: sim.DefaultConfig(), Checkpoint: true, Batch: true}
}

// missionByID resolves a mission from the runner's scenario.
func (r *Runner) missionByID(id int) (mission.Mission, error) {
	ms := r.Missions
	if ms == nil {
		ms = mission.Valencia()
	}
	for _, m := range ms {
		if m.ID == id {
			return m, nil
		}
	}
	return mission.Mission{}, fmt.Errorf("core: unknown mission id %d", id)
}

// RunAll executes every case and returns results in the input order.
// Individual case failures are recorded in CaseResult.Err rather than
// aborting the campaign; ctx cancellation stops scheduling new cases.
// With a Cache wired, cases whose fingerprints are already stored are
// returned as cache hits without simulating; only the misses run.
func (r *Runner) RunAll(ctx context.Context, cases []Case) []CaseResult {
	if r.Cache != nil {
		return r.runAllCached(ctx, cases)
	}
	return r.runAll(ctx, cases)
}

// runAllCached partitions the cases against the cache, replays the hits
// through the usual streaming/progress/trace surfaces, and delegates the
// misses to the plain path with a Store hook on every fresh result.
func (r *Runner) runAllCached(ctx context.Context, cases []Case) []CaseResult {
	results := make([]CaseResult, len(cases))
	var (
		hitIdx  []int
		miss    []Case
		missIdx []int
	)
	for i, c := range cases {
		if c.Hash != "" {
			if res, ok := r.Cache.Lookup(c.Hash); ok &&
				res.Case.ID == c.ID && res.Case.Hash == c.Hash && res.Err == "" {
				results[i] = res
				hitIdx = append(hitIdx, i)
				continue
			}
		}
		miss = append(miss, c)
		missIdx = append(missIdx, i)
	}
	if r.Obs != nil {
		r.Obs.Counter("campaign_cache_hits_total").Add(int64(len(hitIdx)))
		r.Obs.Counter("campaign_cache_misses_total").Add(int64(len(miss)))
		// Cache hits are finished cases that never ran: the status
		// endpoint's done count folds them in through the same counter
		// -resume replay uses.
		r.Obs.Counter("campaign_cases_cached_total").Add(int64(len(hitIdx)))
	}
	if r.Trace != nil && len(hitIdx) > 0 {
		hits := make([]CaseResult, len(hitIdx))
		for j, i := range hitIdx {
			hits[j] = results[i]
		}
		MarkCachedCases(r.Trace, r.TraceRoot, hits)
	}
	// Hits flow through the streaming consumer and the progress callback
	// first — in input order — so a results file stays complete and the
	// done/total contract covers the whole campaign.
	done := 0
	for _, i := range hitIdx {
		if r.OnResult != nil {
			r.OnResult(results[i])
		}
		done++
		if r.Progress != nil {
			r.Progress(done, len(cases))
		}
		// The cache (and any OnResult consumer) owns the heavy payloads;
		// the retained slice keeps only the flat outcome fields, exactly
		// like the fresh-result path below.
		results[i].Result.Trajectory = nil
		results[i].Result.Diagnostics = nil
	}

	sub := *r
	sub.Cache = nil
	if r.Progress != nil {
		base, total := done, len(cases)
		sub.Progress = func(d, _ int) { r.Progress(base+d, total) }
	}
	orig := r.OnResult
	sub.OnResult = func(res CaseResult) {
		if res.Err == "" && res.Case.Hash != "" {
			r.Cache.Store(res)
		}
		if orig != nil {
			orig(res)
		}
	}
	subResults := sub.runAll(ctx, miss)
	for j, i := range missIdx {
		results[i] = subResults[j]
	}
	return results
}

// runAll is the cache-free execution path.
func (r *Runner) runAll(ctx context.Context, cases []Case) []CaseResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	if workers < 1 {
		workers = 1
	}

	var metrics *runnerMetrics
	if r.Obs != nil {
		metrics = newRunnerMetrics(r.Obs)
	}

	tc := traceCtx{tr: r.Trace, root: r.TraceRoot}

	var checkpoints map[prefixKey]*sim.Checkpoint
	if r.Checkpoint {
		stageStart := r.now()
		cpSpan := tc.tr.Start("stage:checkpoint", tc.root)
		checkpoints, tc.prefix = r.prepareCheckpoints(ctx, cases, workers, metrics, tc)
		tc.tr.End(cpSpan)
		if metrics != nil {
			metrics.checkpointSeconds.Set(r.now() - stageStart)
		}
	}

	results := make([]CaseResult, len(cases))
	units := r.workUnits(cases, checkpoints)
	unitCh := make(chan []int)

	runStart := r.now()
	runSpan := tc.tr.Start("stage:run", tc.root)
	var (
		wg       sync.WaitGroup
		doneMu   sync.Mutex
		doneObs  int
		progress = r.Progress
		onResult = r.OnResult
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for unit := range unitCh {
				if metrics != nil {
					metrics.activeWorkers.Add(1)
				}
				unitStart := r.now()
				unitResults, forked, batched := r.runUnit(cases, unit, checkpoints, tc, metrics)
				// Per-case wall time: the batch steps its forks
				// interleaved, so the chunk's time is split evenly.
				perCase := (r.now() - unitStart) / float64(len(unit))
				for j, idx := range unit {
					res := unitResults[j]
					metrics.observeCase(res, forked[j], perCase)
					if metrics != nil && batched[j] {
						metrics.batched.Inc()
					}
					if progress != nil || onResult != nil {
						doneMu.Lock()
						if onResult != nil {
							onResult(res)
						}
						if progress != nil {
							doneObs++
							progress(doneObs, len(cases))
						}
						doneMu.Unlock()
					}
					if onResult != nil {
						// The streaming consumer owns the heavy payloads
						// now; keep only the flat outcome fields resident.
						res.Result.Trajectory = nil
						res.Result.Diagnostics = nil
					}
					results[idx] = res
				}
				if metrics != nil {
					metrics.activeWorkers.Add(-1)
				}
			}
		}()
	}

feed:
	for _, u := range units {
		select {
		case <-ctx.Done():
			break feed
		case unitCh <- u:
		}
	}
	close(unitCh)
	wg.Wait()
	tc.tr.End(runSpan)
	if metrics != nil {
		metrics.runSeconds.Set(r.now() - runStart)
	}

	// Cases never scheduled (cancelled) are marked explicitly.
	for i := range results {
		if results[i].Case.ID == "" {
			results[i] = CaseResult{Case: cases[i], Err: "cancelled"}
		}
	}
	return results
}

// prefixKey identifies the cases that can share one simulated prefix:
// identical mission, environment seed, airframe, injection family,
// injection scope, and injection start mean identical vehicle state up to
// the injection point. The family matters because a sensor injector
// overwrites affected units with the primary's sample even before its
// window opens, while an actuator injector leaves the sensor stream
// alone (see sim.Checkpoint.ForkWithInjection).
type prefixKey struct {
	missionID int
	seed      int64
	airframe  string
	actuator  bool
	scope     faultinject.Scope
	start     time.Duration
}

// casePrefixKey returns the case's sharing key, or the zero key for cases
// that cannot fork (gold runs and immediate injections).
func casePrefixKey(c Case) prefixKey {
	if c.Injection == nil || c.Injection.Start <= 0 {
		return prefixKey{}
	}
	return prefixKey{
		missionID: c.MissionID,
		seed:      c.Seed,
		airframe:  c.Airframe,
		actuator:  !c.Injection.SensorTarget(),
		scope:     c.Injection.Scope,
		start:     c.Injection.Start,
	}
}

// sortPrefixKeys orders prefix keys by the lessPrefixKey total order that
// makes prefix scheduling independent of map iteration order.
func sortPrefixKeys(keys []prefixKey) {
	sort.Slice(keys, func(i, j int) bool {
		return lessPrefixKey(keys[i], keys[j])
	})
}

// lessPrefixKey is the (mission, seed, airframe, family, scope, start)
// total order shared by prefix scheduling and shard assignment.
func lessPrefixKey(a, b prefixKey) bool {
	if a.missionID != b.missionID {
		return a.missionID < b.missionID
	}
	if a.seed != b.seed {
		return a.seed < b.seed
	}
	if a.airframe != b.airframe {
		return a.airframe < b.airframe
	}
	if a.actuator != b.actuator {
		return !a.actuator // sensor prefixes before actuator prefixes
	}
	if a.scope != b.scope {
		return a.scope < b.scope
	}
	return a.start < b.start
}

// prepareCheckpoints simulates one shared prefix per group of two or more
// forkable cases, in parallel. Groups whose prefix fails to build are
// simply absent from the map; their cases run straight through. The
// second return maps each built prefix to its trace span, so batches and
// forked cases later parent under the prefix that spawned them.
func (r *Runner) prepareCheckpoints(ctx context.Context, cases []Case, workers int, metrics *runnerMetrics, tc traceCtx) (map[prefixKey]*sim.Checkpoint, map[prefixKey]obs.SpanID) {
	groups := map[prefixKey][]int{}
	for i, c := range cases {
		k := casePrefixKey(c)
		if k != (prefixKey{}) {
			groups[k] = append(groups[k], i)
		}
	}
	keys := make([]prefixKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Map order would hand prefixes to workers in a different order every
	// run; sorting keeps prefix scheduling (and the worker-count adaptive
	// paths downstream) reproducible for a given campaign.
	sortPrefixKeys(keys)
	shared := keys[:0]
	for _, k := range keys {
		if len(groups[k]) >= 2 {
			shared = append(shared, k)
		}
	}
	keys = shared
	if len(keys) == 0 {
		return nil, nil
	}

	checkpoints := make(map[prefixKey]*sim.Checkpoint, len(keys))
	prefixSpans := make(map[prefixKey]obs.SpanID, len(keys))
	var mu sync.Mutex
	keyCh := make(chan prefixKey)
	var wg sync.WaitGroup
	if workers > len(keys) {
		workers = len(keys)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range keyCh {
				span := tc.tr.Start("prefix", tc.root,
					obs.NumAttr("mission", float64(k.missionID)),
					obs.NumAttr("seed", float64(k.seed)),
					obs.StrAttr("scope", k.scope.String()),
					obs.NumAttr("start_sec", k.start.Seconds()),
					obs.NumAttr("cases", float64(len(groups[k]))))
				// The group's first case stands in for its siblings: before
				// the shared injection start, any same-scope injector is
				// behaviourally inert.
				rep := cases[groups[k][0]]
				m, err := r.missionByID(rep.MissionID)
				if err != nil {
					tc.tr.Annotate(span, obs.BoolAttr("error", true))
					tc.tr.End(span)
					continue
				}
				cfg, err := r.caseConfig(rep)
				if err != nil {
					tc.tr.Annotate(span, obs.BoolAttr("error", true))
					tc.tr.End(span)
					continue
				}
				v, err := sim.NewVehicle(cfg, m, rep.Injection, nil)
				if err != nil {
					tc.tr.Annotate(span, obs.BoolAttr("error", true))
					tc.tr.End(span)
					continue
				}
				v.RunUntil(k.start.Seconds())
				cp := v.Snapshot()
				tc.tr.End(span)
				mu.Lock()
				checkpoints[k] = cp
				prefixSpans[k] = span
				mu.Unlock()
				if metrics != nil {
					metrics.prefixes.Inc()
				}
			}
		}()
	}
	for _, k := range keys {
		select {
		case <-ctx.Done():
		case keyCh <- k:
			continue
		}
		break
	}
	close(keyCh)
	wg.Wait()
	return checkpoints, prefixSpans
}

// workUnits partitions the case indices into work units: singleton units
// for scalar cases, and (when Batch is on) chunks of up to BatchWidth
// indices per prefix group that has a checkpoint, to be stepped in
// lockstep. Unit order is deterministic: singletons in input order, then
// batch chunks in sorted prefix-key order.
func (r *Runner) workUnits(cases []Case, checkpoints map[prefixKey]*sim.Checkpoint) [][]int {
	units := make([][]int, 0, len(cases))
	if !r.Batch || len(checkpoints) == 0 {
		for i := range cases {
			units = append(units, []int{i})
		}
		return units
	}
	width := r.BatchWidth
	if width <= 0 {
		width = DefaultBatchWidth
	}
	groups := map[prefixKey][]int{}
	for i, c := range cases {
		k := casePrefixKey(c)
		if k != (prefixKey{}) && checkpoints[k] != nil {
			groups[k] = append(groups[k], i)
			continue
		}
		units = append(units, []int{i})
	}
	keys := make([]prefixKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sortPrefixKeys(keys)
	for _, k := range keys {
		idxs := groups[k]
		for lo := 0; lo < len(idxs); lo += width {
			hi := lo + width
			if hi > len(idxs) {
				hi = len(idxs)
			}
			units = append(units, idxs[lo:hi])
		}
	}
	return units
}

// runUnit executes one work unit and returns its results plus per-case
// forked/batched flags (index-aligned with unit). Multi-case units try the
// lockstep batch first and fall back to per-case scalar execution if the
// batch cannot be built.
func (r *Runner) runUnit(cases []Case, unit []int, checkpoints map[prefixKey]*sim.Checkpoint, tc traceCtx, metrics *runnerMetrics) (results []CaseResult, forked, batched []bool) {
	if len(unit) > 1 {
		k := casePrefixKey(cases[unit[0]])
		cp := checkpoints[k]
		span := tc.tr.Start("batch", tc.prefixSpan(k),
			obs.StrAttr("first", cases[unit[0]].ID),
			obs.NumAttr("cases", float64(len(unit))))
		if metrics != nil {
			metrics.activeBatches.Add(1)
		}
		out, ok := r.runBatchChunk(cases, unit, cp)
		if metrics != nil {
			metrics.activeBatches.Add(-1)
		}
		if ok {
			// The batch steps its forks interleaved, so per-case duration is
			// not individually observable: case spans carry identity and
			// outcome, the batch span carries the wall time.
			for j := range out {
				cs := tc.tr.Start("case", span,
					obs.StrAttr("id", out[j].Case.ID),
					obs.NumAttr("seed", float64(out[j].Case.Seed)),
					obs.BoolAttr("batched", true))
				annotateCaseOutcome(tc.tr, cs, out[j])
				tc.tr.End(cs)
			}
			tc.tr.End(span)
			flags := make([]bool, len(unit))
			for j := range flags {
				flags[j] = true
			}
			return out, flags, flags
		}
		tc.tr.Annotate(span, obs.BoolAttr("fallback", true))
		tc.tr.End(span)
	}
	results = make([]CaseResult, len(unit))
	forked = make([]bool, len(unit))
	batched = make([]bool, len(unit))
	for j, idx := range unit {
		results[j], forked[j] = r.runCaseTraced(cases[idx], checkpoints[casePrefixKey(cases[idx])], tc)
	}
	return results, forked, batched
}

// runCaseTraced wraps runCase in a case span: parented under the case's
// prefix when a shared checkpoint exists, under the root otherwise, with
// the outcome and fork/fallback markers annotated after the run.
func (r *Runner) runCaseTraced(c Case, cp *sim.Checkpoint, tc traceCtx) (CaseResult, bool) {
	parent := tc.root
	if cp != nil {
		parent = tc.prefixSpan(casePrefixKey(c))
	}
	span := tc.tr.Start("case", parent,
		obs.StrAttr("id", c.ID),
		obs.NumAttr("seed", float64(c.Seed)))
	res, forked := r.runCase(c, cp)
	if cp != nil && !forked {
		// A checkpoint existed but the fork was rejected: the case ran
		// straight through as a fallback.
		tc.tr.Annotate(span, obs.BoolAttr("fallback", true))
	}
	annotateCaseOutcome(tc.tr, span, res)
	tc.tr.End(span)
	return res, forked
}

// annotateCaseOutcome records a finished case's classification on its span.
func annotateCaseOutcome(tr *obs.Tracer, span obs.SpanID, res CaseResult) {
	if res.Err != "" {
		tr.Annotate(span, obs.StrAttr("outcome", "error"))
		return
	}
	tr.Annotate(span, obs.StrAttr("outcome", res.Result.Outcome.String()))
}

// runBatchChunk forks every case in the chunk from the shared checkpoint
// and steps them in lockstep (sim.Batch). Any failure — an invalid fork or
// a mid-run detach error — reports !ok and the caller falls back to the
// scalar path; a batch never produces partial results.
func (r *Runner) runBatchChunk(cases []Case, unit []int, cp *sim.Checkpoint) ([]CaseResult, bool) {
	if cp == nil {
		return nil, false
	}
	injs := make([]*faultinject.Injection, len(unit))
	for j, idx := range unit {
		injs[j] = cases[idx].Injection
	}
	b, err := sim.NewBatch(cp, injs)
	if err != nil {
		return nil, false
	}
	simResults, _, err := b.Run()
	if err != nil {
		return nil, false
	}
	out := make([]CaseResult, len(unit))
	for j, idx := range unit {
		out[j] = CaseResult{Case: cases[idx], Result: simResults[j]}
	}
	return out, true
}

// runCase executes one case, preferring the forked path when a shared
// checkpoint exists. The second return reports whether the fork was used.
func (r *Runner) runCase(c Case, cp *sim.Checkpoint) (CaseResult, bool) {
	if cp != nil {
		if v, err := cp.ForkWithInjection(c.Injection, nil); err == nil {
			return CaseResult{Case: c, Result: v.RunToEnd()}, true
		}
		// A rejected fork (mismatched scope/start, racing plan edits) is
		// not fatal: fall back to the straight-through path.
	}
	m, err := r.missionByID(c.MissionID)
	if err != nil {
		return CaseResult{Case: c, Err: err.Error()}, false
	}
	cfg, err := r.caseConfig(c)
	if err != nil {
		return CaseResult{Case: c, Err: err.Error()}, false
	}
	res, err := sim.Run(cfg, m, c.Injection, nil)
	if err != nil {
		return CaseResult{Case: c, Err: err.Error()}, false
	}
	return CaseResult{Case: c, Result: res}, false
}

// caseConfig derives the simulation config for one case from the runner's
// base config: the seed always comes from the case, and a non-empty
// Airframe overrides the rotor layout. An empty Airframe keeps the base
// config byte-for-byte, so legacy quad campaigns stay bit-identical.
func (r *Runner) caseConfig(c Case) (sim.Config, error) {
	cfg := r.Config
	cfg.Seed = c.Seed
	if c.Airframe != "" {
		frame, err := physics.ParseAirframe(c.Airframe)
		if err != nil {
			return cfg, fmt.Errorf("core: case %s: %w", c.ID, err)
		}
		cfg.Airframe.Layout = frame
	}
	return cfg, nil
}

// SortByID orders results by case ID (stable presentation for reports).
func SortByID(results []CaseResult) {
	sort.Slice(results, func(i, j int) bool {
		return results[i].Case.ID < results[j].Case.ID
	})
}
