package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/sim"
)

func TestResultsWriterRoundTrip(t *testing.T) {
	in := []CaseResult{
		mkResult(1, inj(faultinject.Freeze, faultinject.TargetIMU, 5*time.Second), sim.OutcomeFailsafe, 3, 2, 99.5, 0.4),
		mkResult(2, nil, sim.OutcomeCompleted, 0, 0, 490, 3.6),
		{Case: Case{ID: "broken", MissionID: 7}, Err: "boom"},
	}
	var buf bytes.Buffer
	w := NewResultsWriter(&buf)
	for _, r := range in {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := LoadResults(&buf)
	if err != nil {
		t.Fatalf("streamed output not loadable: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("loaded %d results, wrote %d", len(out), len(in))
	}
	if out[0].Result.Outcome != sim.OutcomeFailsafe || out[0].Case.Injection == nil {
		t.Errorf("round trip lost data: %+v", out[0])
	}
	if out[2].Err != "boom" {
		t.Errorf("round trip lost error: %+v", out[2])
	}
}

// TestResultsWriterHeader: the run-metadata header round-trips through
// both loaders — LoadResultsWithHeader surfaces it, LoadResults and
// LoadPartialResults skip it — and is rejected anywhere but first.
func TestResultsWriterHeader(t *testing.T) {
	hdr := ResultsHeader{
		SpecHash:   "abc123",
		RNGPolicy:  "ziggurat",
		RunnerMode: "batch",
		BatchWidth: 32,
		Workers:    4,
	}
	res := mkResult(1, nil, sim.OutcomeCompleted, 0, 0, 490, 3.6)
	var buf bytes.Buffer
	w := NewResultsWriter(&buf)
	if err := w.WriteHeader(hdr); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(res); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(hdr); err == nil {
		t.Error("header accepted after a result was written")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	data := buf.Bytes()
	got, out, err := LoadResultsWithHeader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("headered stream not loadable: %v (%q)", err, data)
	}
	if got == nil || *got != hdr {
		t.Errorf("header round trip: got %+v, want %+v", got, hdr)
	}
	if len(out) != 1 || out[0].Case.ID != res.Case.ID {
		t.Errorf("results alongside header: %+v", out)
	}

	plain, err := LoadResults(bytes.NewReader(data))
	if err != nil || len(plain) != 1 {
		t.Errorf("LoadResults over headered file: %d results, err %v", len(plain), err)
	}

	partial, truncated, err := LoadPartialResults(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("LoadPartialResults over headered file: %v", err)
	}
	if truncated {
		t.Error("complete headered file reported truncated")
	}
	if len(partial) != 1 || partial[0].Case.ID != res.Case.ID {
		t.Errorf("resume load over headered file: %+v", partial)
	}
}

func TestResultsWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewResultsWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := LoadResults(&buf)
	if err != nil {
		t.Fatalf("empty stream not loadable: %v (%q)", err, buf.String())
	}
	if len(out) != 0 {
		t.Fatalf("empty stream decoded to %d results", len(out))
	}
}

func TestResultsWriterClosedRejectsWrites(t *testing.T) {
	var buf bytes.Buffer
	w := NewResultsWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
	if err := w.Write(CaseResult{}); err == nil {
		t.Error("write after close accepted")
	}
}

// TestRunnerOnResultStreams: OnResult fires exactly once per case with the
// full payload (trajectory, diagnostics), and the retained results slice
// is stripped of those payloads so memory stays bounded.
func TestRunnerOnResultStreams(t *testing.T) {
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = 3
	r.Config.RecordTrajectory = true
	seen := map[string]int{}
	r.OnResult = func(res CaseResult) {
		seen[res.Case.ID]++
		if res.Err == "" {
			if res.Result.Trajectory == nil {
				t.Errorf("%s: callback saw no trajectory", res.Case.ID)
			}
			if res.Result.Diagnostics == nil {
				t.Errorf("%s: callback saw no diagnostics", res.Case.ID)
			}
		}
	}
	cases := progressCases()
	results := r.RunAll(context.Background(), cases)
	for _, c := range cases {
		if seen[c.ID] != 1 {
			t.Errorf("case %s: OnResult fired %d times", c.ID, seen[c.ID])
		}
	}
	for _, res := range results {
		if res.Result.Trajectory != nil || res.Result.Diagnostics != nil {
			t.Errorf("%s: retained result still carries heavy payloads", res.Case.ID)
		}
	}
	// The flat outcome fields the tables aggregate must survive stripping.
	if g := GoldStats(results); g.N != 1 {
		t.Errorf("gold stats over stripped results: %+v", g)
	}
}

// TestRunnerDecimationOutcomeEquivalence is the miniature version of the
// campaign-level gate: every case outcome under decimated covariance
// propagation (k=4, the default) must be identical to the exact per-step
// path (k=1) — the fault-window full-rate override plus the settle margin
// make decimation invisible to the verdict.
func TestRunnerDecimationOutcomeEquivalence(t *testing.T) {
	run := func(k int) []CaseResult {
		r := NewRunner()
		r.Missions = shortScenario()
		r.Workers = 4
		r.Config.EKF.CovarianceDecimation = k
		return r.RunAll(context.Background(), progressCases())
	}
	exact := run(1)
	decim := run(4)
	for i := range exact {
		e, d := exact[i], decim[i]
		if e.Err != d.Err {
			t.Errorf("%s: err %q vs %q", e.Case.ID, e.Err, d.Err)
		}
		if e.Result.Outcome != d.Result.Outcome ||
			e.Result.InnerViolations != d.Result.InnerViolations ||
			e.Result.OuterViolations != d.Result.OuterViolations ||
			e.Result.FailsafeCause != d.Result.FailsafeCause ||
			e.Result.CrashReason != d.Result.CrashReason {
			t.Errorf("%s: outcome differs between k=1 and k=4:\n exact %+v\n decim %+v",
				e.Case.ID, e.Result, d.Result)
		}
	}
}
