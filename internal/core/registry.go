package core

import "uavres/internal/faultinject"

// registryFunc forwards to the fault-model registry.
func registryFunc() []faultinject.FaultClass { return faultinject.Registry() }
