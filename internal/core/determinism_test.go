package core

import (
	"reflect"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/sim"
)

// TestSortPrefixKeys locks the prefix scheduling order: keys must sort
// by (mission, seed, scope, start) regardless of the map-iteration order
// they were collected in.
func TestSortPrefixKeys(t *testing.T) {
	want := []prefixKey{
		{missionID: 1, seed: 3, scope: faultinject.ScopeAllUnits, start: 30 * time.Second},
		{missionID: 1, seed: 3, scope: faultinject.ScopeAllUnits, start: 90 * time.Second},
		{missionID: 1, seed: 7, scope: faultinject.ScopeAllUnits, start: 90 * time.Second},
		{missionID: 2, seed: 1, scope: faultinject.ScopeAllUnits, start: 90 * time.Second},
		{missionID: 2, seed: 1, scope: faultinject.ScopePrimaryUnit, start: 90 * time.Second},
	}
	// Feed several adversarial permutations; every one must sort to the
	// same canonical order.
	perms := [][]int{
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
		{1, 4, 0, 3, 2},
	}
	for _, p := range perms {
		keys := make([]prefixKey, len(want))
		for i, j := range p {
			keys[i] = want[j]
		}
		sortPrefixKeys(keys)
		if !reflect.DeepEqual(keys, want) {
			t.Fatalf("permutation %v sorted to %+v, want %+v", p, keys, want)
		}
	}
}

// TestByFaultOrderStable locks the Table III row order against map
// iteration: repeated aggregation of the same results must produce the
// same row sequence, including among tied completion percentages.
func TestByFaultOrderStable(t *testing.T) {
	var results []CaseResult
	// Several labels per component, all with identical outcomes, so any
	// order leak among tied rows would surface as row shuffling.
	for _, p := range []faultinject.Primitive{faultinject.Zeros, faultinject.Noise, faultinject.Freeze, faultinject.Random} {
		for _, tg := range []faultinject.Target{faultinject.TargetAccel, faultinject.TargetGyro, faultinject.TargetIMU} {
			results = append(results,
				mkResult(1, inj(p, tg, 2*time.Second), sim.OutcomeCrash, 0, 0, 100, 1))
		}
	}
	first := ByFault(results)
	if len(first) != 12 {
		t.Fatalf("rows = %d, want 12", len(first))
	}
	for i := 0; i < 50; i++ {
		again := ByFault(results)
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("iteration %d: row order changed:\n got %+v\nwant %+v", i, again, first)
		}
	}
	// Tied rows fall back to label order within each component group.
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if componentOf(t, a.Label) == componentOf(t, b.Label) && a.CompletedPct == b.CompletedPct && a.Label >= b.Label {
			t.Fatalf("tied rows out of label order: %q before %q", a.Label, b.Label)
		}
	}
}

func componentOf(t *testing.T, label string) string {
	t.Helper()
	for _, tg := range faultinject.Targets() {
		prefix := tg.String() + " "
		if len(label) > len(prefix) && label[:len(prefix)] == prefix {
			return tg.String()
		}
	}
	t.Fatalf("label %q has no component prefix", label)
	return ""
}
