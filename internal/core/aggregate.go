package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/physics"
	"uavres/internal/sim"
)

// GroupStats aggregates one table row: the mean metrics over a group of
// runs, in the paper's units.
type GroupStats struct {
	// Label names the group ("Gold Run", "2 seconds", "Gyro Freeze", ...).
	Label string `json:"label"`
	// N is the number of runs aggregated.
	N int `json:"n"`
	// InnerViolations and OuterViolations are mean per-run counts.
	InnerViolations float64 `json:"inner_violations"`
	OuterViolations float64 `json:"outer_violations"`
	// CompletedPct is the percentage of missions completed.
	CompletedPct float64 `json:"completed_pct"`
	// DurationSec and DistanceKm are mean flight duration and distance.
	DurationSec float64 `json:"duration_sec"`
	DistanceKm  float64 `json:"distance_km"`
	// FailedPct is 100 - CompletedPct.
	FailedPct float64 `json:"failed_pct"`
	// CrashPct and FailsafePct split the FAILED runs (timeouts are
	// grouped with failsafe: an operator would have terminated them).
	CrashPct    float64 `json:"crash_pct"`
	FailsafePct float64 `json:"failsafe_pct"`
}

func aggregate(label string, runs []sim.Result) GroupStats {
	g := GroupStats{Label: label, N: len(runs)}
	if len(runs) == 0 {
		return g
	}
	var completed, crashed, failsafed int
	for _, r := range runs {
		g.InnerViolations += float64(r.InnerViolations)
		g.OuterViolations += float64(r.OuterViolations)
		g.DurationSec += r.FlightDurationSec
		g.DistanceKm += r.DistanceKm
		switch r.Outcome {
		case sim.OutcomeCompleted:
			completed++
		case sim.OutcomeCrash:
			crashed++
		default: // failsafe and timeout
			failsafed++
		}
	}
	n := float64(len(runs))
	g.InnerViolations /= n
	g.OuterViolations /= n
	g.DurationSec /= n
	g.DistanceKm /= n
	g.CompletedPct = 100 * float64(completed) / n
	g.FailedPct = 100 - g.CompletedPct
	if failed := crashed + failsafed; failed > 0 {
		g.CrashPct = 100 * float64(crashed) / float64(failed)
		g.FailsafePct = 100 * float64(failsafed) / float64(failed)
	}
	return g
}

// ok filters out infrastructure failures and returns the flight results.
func ok(results []CaseResult) (gold, faulty []CaseResult) {
	for _, cr := range results {
		if cr.Err != "" {
			continue
		}
		if cr.Case.Injection == nil {
			gold = append(gold, cr)
		} else {
			faulty = append(faulty, cr)
		}
	}
	return gold, faulty
}

func sims(crs []CaseResult) []sim.Result {
	out := make([]sim.Result, 0, len(crs))
	for _, cr := range crs {
		out = append(out, cr.Result)
	}
	return out
}

// GoldStats aggregates the fault-free reference runs.
func GoldStats(results []CaseResult) GroupStats {
	gold, _ := ok(results)
	return aggregate("Gold Run", sims(gold))
}

// ByDuration groups faulty runs by injection duration (Table II rows).
// Rows are ordered by increasing duration.
func ByDuration(results []CaseResult) []GroupStats {
	_, faulty := ok(results)
	groups := map[time.Duration][]sim.Result{}
	for _, cr := range faulty {
		d := cr.Case.Injection.Duration
		groups[d] = append(groups[d], cr.Result)
	}
	durs := make([]time.Duration, 0, len(groups))
	for d := range groups {
		durs = append(durs, d)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	out := make([]GroupStats, 0, len(durs))
	for _, d := range durs {
		out = append(out, aggregate(fmt.Sprintf("%d seconds", int(d.Seconds())), groups[d]))
	}
	return out
}

// ByFault groups faulty runs by the 21 injection labels (Table III rows).
// Rows are grouped by component (Acc, Gyro, IMU) and sorted by descending
// completion within each component, matching the paper's presentation.
func ByFault(results []CaseResult) []GroupStats {
	_, faulty := ok(results)
	groups := map[string][]sim.Result{}
	for _, cr := range faulty {
		label := cr.Case.Injection.Label()
		groups[label] = append(groups[label], cr.Result)
	}
	labels := make([]string, 0, len(groups))
	for label := range groups {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var out []GroupStats
	for _, target := range reportTargets() {
		var rows []GroupStats
		for _, label := range labels {
			if strings.HasPrefix(label, target.String()+" ") {
				rows = append(rows, aggregate(label, groups[label]))
			}
		}
		sort.Slice(rows, func(i, j int) bool {
			//lint:allow floatcmp exact compare is required for a strict weak sort order
			if rows[i].CompletedPct != rows[j].CompletedPct {
				return rows[i].CompletedPct > rows[j].CompletedPct
			}
			return rows[i].Label < rows[j].Label
		})
		out = append(out, rows...)
	}
	return out
}

// ByComponent groups faulty runs by injection target (Table IV, bottom).
func ByComponent(results []CaseResult) []GroupStats {
	_, faulty := ok(results)
	groups := map[faultinject.Target][]sim.Result{}
	for _, cr := range faulty {
		tg := cr.Case.Injection.Target
		groups[tg] = append(groups[tg], cr.Result)
	}
	out := make([]GroupStats, 0, 4)
	for _, tg := range reportTargets() {
		if runs, exists := groups[tg]; exists {
			out = append(out, aggregate(tg.String(), runs))
		}
	}
	return out
}

// reportTargets is the table row order: the paper's three sensor targets
// followed by the actuator extension.
func reportTargets() []faultinject.Target {
	return append(faultinject.Targets(), faultinject.TargetRotor)
}

// ByAirframe groups ALL runs (gold and faulty) by the case's airframe —
// the redundancy comparison: identical fault matrices flown on quad-x,
// hexa-x, and octo-x layouts. An empty Case.Airframe reports as quad-x.
func ByAirframe(results []CaseResult) []GroupStats {
	gold, faulty := ok(results)
	groups := map[string][]sim.Result{}
	for _, cr := range append(gold, faulty...) {
		label := cr.Case.Airframe
		if label == "" {
			label = physics.QuadX.String()
		}
		groups[label] = append(groups[label], cr.Result)
	}
	labels := make([]string, 0, len(groups))
	for label := range groups {
		labels = append(labels, label)
	}
	// Order by rotor count (quad, hexa, octo), unknown labels last.
	sort.Slice(labels, func(i, j int) bool {
		ri, rj := airframeRank(labels[i]), airframeRank(labels[j])
		if ri != rj {
			return ri < rj
		}
		return labels[i] < labels[j]
	})
	out := make([]GroupStats, 0, len(labels))
	for _, label := range labels {
		out = append(out, aggregate(label, groups[label]))
	}
	return out
}

func airframeRank(label string) int {
	frame, err := physics.ParseAirframe(label)
	if err != nil {
		return physics.MaxRotors + 1
	}
	return frame.Rotors()
}

// Find returns the stats row with the given label, if present.
func Find(rows []GroupStats, label string) (GroupStats, bool) {
	for _, r := range rows {
		if r.Label == label {
			return r, true
		}
	}
	return GroupStats{}, false
}
