package core

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"uavres/internal/obs"
)

// tickClock is a goroutine-safe deterministic clock: every read advances
// one millisecond. Workers read it concurrently, so the values any one
// span sees vary run to run — exactly the condition the trace export
// must be deterministic under.
func tickClock() obs.Clock {
	var n atomic.Int64
	return func() float64 { return float64(n.Add(1)) * 1e-3 }
}

// tracedRun executes the batch_test campaign under a tracer and returns
// the tracer plus the results.
func tracedRun(t *testing.T, batch bool, workers int) (*obs.Tracer, []CaseResult) {
	t.Helper()
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = workers
	r.Batch = batch
	r.BatchWidth = 8 // split the 21-case prefix group into several chunks
	r.Clock = tickClock()
	r.Trace = obs.NewTracer(tickClock(), 256)
	r.TraceRoot = r.Trace.Start("campaign", 0, obs.StrAttr("spec", "test"))
	results := r.RunAll(context.Background(), batchCases())
	r.Trace.End(r.TraceRoot)
	return r.Trace, results
}

// caseSpans filters the recorded spans down to the per-case view:
// id → outcome attribute, dropping the mode-specific markers (batched,
// fallback) that legitimately differ between batch and scalar execution.
func caseSpans(t *testing.T, tr *obs.Tracer) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, v := range tr.Spans() {
		if v.Name != "case" {
			continue
		}
		var id, outcome string
		for _, a := range v.Attrs {
			switch a.Key {
			case "id":
				id = a.Str
			case "outcome":
				outcome = a.Str
			}
		}
		if id == "" {
			t.Fatalf("case span without id attr: %+v", v)
		}
		if v.Open {
			t.Fatalf("case span %s left open", id)
		}
		if _, dup := out[id]; dup {
			t.Fatalf("duplicate case span for %s", id)
		}
		out[id] = outcome
	}
	return out
}

// TestRunnerTraceDeterministic: two identical runs must export
// byte-identical trace documents modulo wall timestamps, with exactly
// one case span per case.
func TestRunnerTraceDeterministic(t *testing.T) {
	sig := func() string {
		tr, results := tracedRun(t, true, 4)
		spans := caseSpans(t, tr)
		if len(spans) != len(results) {
			t.Fatalf("case spans = %d, cases = %d", len(spans), len(results))
		}
		for _, res := range results {
			if spans[res.Case.ID] != res.Result.Outcome.String() {
				t.Fatalf("case %s span outcome %q, result %q",
					res.Case.ID, spans[res.Case.ID], res.Result.Outcome)
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteTraceEvents(&buf); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateTraceEventJSON(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		s, err := obs.TraceSignature(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if a, b := sig(), sig(); a != b {
		t.Errorf("identical runs produced different trace signatures:\n%s\nvs\n%s", a, b)
	}
}

// TestRunnerTraceBatchVsScalar: batch and scalar modes structure their
// trees differently (batch spans exist only when batching), but the
// per-case view — every case present exactly once with the same outcome
// — must be identical.
func TestRunnerTraceBatchVsScalar(t *testing.T) {
	trBatch, resBatch := tracedRun(t, true, 4)
	trScalar, resScalar := tracedRun(t, false, 2)
	if len(resBatch) != len(resScalar) {
		t.Fatalf("result counts differ: %d vs %d", len(resBatch), len(resScalar))
	}
	b, s := caseSpans(t, trBatch), caseSpans(t, trScalar)
	if len(b) != len(s) {
		t.Fatalf("case span counts differ: batch %d, scalar %d", len(b), len(s))
	}
	for _, res := range resBatch {
		id := res.Case.ID
		if b[id] != s[id] {
			t.Errorf("case %s: batch outcome %q, scalar outcome %q", id, b[id], s[id])
		}
	}
	// Batch mode must actually have recorded batch spans (the scalar run
	// none), or this test compares two scalar runs.
	var batchSpans int
	for _, v := range trBatch.Spans() {
		if v.Name == "batch" {
			batchSpans++
		}
	}
	if batchSpans == 0 {
		t.Error("batch run recorded no batch spans")
	}
}

// TestMarkCachedCases: resume-cache hits must still appear as case spans,
// marked cache_hit, so span count keeps matching the results file.
func TestMarkCachedCases(t *testing.T) {
	tr := obs.NewTracer(tickClock(), 16)
	root := tr.Start("campaign", 0)
	reused := batchCases()[:3]
	results := make([]CaseResult, len(reused))
	for i, c := range reused {
		results[i] = CaseResult{Case: c}
	}
	results[2].Err = "boom"
	MarkCachedCases(tr, root, results)
	var hits int
	for _, v := range tr.Spans() {
		if v.Name != "case" {
			continue
		}
		hits++
		var cached bool
		for _, a := range v.Attrs {
			if a.Key == "cache_hit" && a.Str == "true" {
				cached = true
			}
		}
		if !cached {
			t.Errorf("cached case span missing cache_hit attr: %+v", v)
		}
	}
	if hits != len(reused) {
		t.Errorf("cache-hit spans = %d, want %d", hits, len(reused))
	}
}

// TestStatusSourceSnapshot: after a full run the status must reconcile
// with the results, and a fresh source must report an idle campaign.
func TestStatusSourceSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRunner()
	r.Missions = shortScenario()
	r.Workers = 2
	r.Obs = reg
	r.Clock = tickClock()
	cases := batchCases()
	src := NewStatusSource(reg, StatusConfig{
		Total:      len(cases) + 2, // pretend 2 cases came from the resume cache
		SpecHash:   "abc",
		RunnerMode: "batch",
		BatchWidth: DefaultBatchWidth,
		Workers:    2,
		Clock:      tickClock(),
	})

	idle := src.Snapshot()
	if idle.CasesDone != 0 || idle.Done || idle.ETASeconds != 0 {
		t.Errorf("idle snapshot not idle: %+v", idle)
	}

	src.AddCached(2)
	results := r.RunAll(context.Background(), cases)

	st := src.Snapshot()
	if st.CasesDone != int64(len(results)+2) || st.CasesCached != 2 {
		t.Errorf("done=%d cached=%d, want %d/2", st.CasesDone, st.CasesCached, len(results)+2)
	}
	if !st.Done {
		t.Errorf("status not done: %+v", st)
	}
	if st.ETASeconds != 0 {
		t.Errorf("finished campaign has ETA %v", st.ETASeconds)
	}
	if st.MeanCaseSeconds <= 0 {
		t.Errorf("mean case seconds = %v, want > 0 with a ticking clock", st.MeanCaseSeconds)
	}
	var completed int64
	for _, res := range results {
		if res.Err == "" && res.Result.Outcome.Completed() {
			completed++
		}
	}
	if st.Completed != completed {
		t.Errorf("status completed = %d, results say %d", st.Completed, completed)
	}
	if st.SpecHash != "abc" || st.RunnerMode != "batch" || st.Workers != 2 {
		t.Errorf("static fields lost: %+v", st)
	}
	if st.ActiveWorkers != 0 || st.ActiveBatches != 0 {
		t.Errorf("active gauges nonzero after run: %+v", st)
	}
}
