package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// LoadPartialResults reads a campaign results file written by
// ResultsWriter, tolerating the one corruption an interrupted campaign
// legitimately produces: a truncated tail (the process died mid-write,
// so the closing bracket — and possibly half an element — is missing).
// Whatever decoded cleanly before the truncation is returned with
// truncated=true; the torn element is dropped, so resume simply re-runs
// it.
//
// Anything else — corruption in the middle of the file, a malformed
// element, a document that is not a results array — is a real error
// reported with the 1-based line number where decoding failed, never a
// panic.
func LoadPartialResults(r io.Reader) (results []CaseResult, truncated bool, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, false, fmt.Errorf("core: reading results: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		// An empty file is the zero-progress campaign.
		return nil, true, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return nil, false, decodeError(data, dec, err)
	}
	if delim, ok := tok.(json.Delim); !ok || delim != '[' {
		return nil, false, fmt.Errorf("core: results file is not a JSON array (starts with %v)", tok)
	}
	for dec.More() {
		var el resultsElement
		if err := dec.Decode(&el); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				return results, true, nil
			}
			return nil, false, decodeError(data, dec, err)
		}
		if el.Header != nil {
			// Run-metadata element (see ResultsWriter.WriteHeader): not a
			// case, nothing for resume to reuse.
			continue
		}
		if el.Case.ID == "" {
			return nil, false, fmt.Errorf("core: results element %d has no case ID (line %d)",
				len(results), lineAt(data, dec.InputOffset()))
		}
		results = append(results, el.CaseResult)
	}
	// The closing bracket: absent means the writer never finished.
	if _, err := dec.Token(); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return results, true, nil
		}
		return nil, false, decodeError(data, dec, err)
	}
	return results, false, nil
}

// LoadPartialResultsFile is LoadPartialResults over a file path.
func LoadPartialResultsFile(path string) (results []CaseResult, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	results, truncated, err = LoadPartialResults(f)
	if err != nil {
		return nil, false, fmt.Errorf("%w (in %s)", err, path)
	}
	return results, truncated, nil
}

// decodeError rewrites a JSON decoding failure with the line it
// occurred on.
func decodeError(data []byte, dec *json.Decoder, err error) error {
	offset := dec.InputOffset()
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		offset = syn.Offset
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		offset = typ.Offset
	}
	return fmt.Errorf("core: corrupt results file at line %d: %w", lineAt(data, offset), err)
}

// lineAt converts a byte offset into a 1-based line number.
func lineAt(data []byte, offset int64) int {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	return 1 + bytes.Count(data[:offset], []byte{'\n'})
}

// ResumePlan partitions a compiled campaign against prior results: which
// cases still need to execute and which prior results carry forward.
type ResumePlan struct {
	// Run holds the cases to execute, in compiled order.
	Run []Case
	// Reused holds the prior results carried forward, in compiled order.
	Reused []CaseResult
	// Stale counts prior entries invalidated by a fingerprint mismatch
	// (the spec or the code-relevant config changed under them).
	Stale int
	// Errored counts prior entries re-run because they recorded an
	// execution error (including cancellation) instead of an outcome.
	Errored int
}

// PlanResume compares compiled cases against prior results by case ID
// and content hash. A prior result is reused only when its recorded
// fingerprint equals the compiled case's — both non-empty — and it
// completed without an execution error; everything else re-runs. Prior
// results for cases no longer in the plan are dropped.
func PlanResume(cases []Case, prior []CaseResult) ResumePlan {
	byID := make(map[string]CaseResult, len(prior))
	for _, cr := range prior {
		byID[cr.Case.ID] = cr // duplicates: last write wins, like the file
	}
	var p ResumePlan
	for _, c := range cases {
		old, seen := byID[c.ID]
		switch {
		case !seen:
			p.Run = append(p.Run, c)
		case old.Err != "":
			p.Errored++
			p.Run = append(p.Run, c)
		case c.Hash == "" || old.Case.Hash != c.Hash:
			p.Stale++
			p.Run = append(p.Run, c)
		default:
			p.Reused = append(p.Reused, old)
		}
	}
	return p
}
