package bubble

import (
	"math"
	"testing"
	"testing/quick"

	"uavres/internal/mathx"
	"uavres/internal/mission"
)

func testMission() mission.Mission {
	return mission.Mission{
		ID: 1, CruiseSpeedMS: 4, AltitudeM: 15,
		Drone:     mission.DroneSpec{Name: "test", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 6},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 200, Y: 0, Z: -15}},
	}
}

func TestInnerRadiusEq1(t *testing.T) {
	spec := mission.DroneSpec{DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 6}
	// D_m = 6 m/s * 1 s = 6 > D_s = 2, so inner = 0.8 + 6.
	if got := InnerRadius(spec, 1); math.Abs(got-6.8) > 1e-12 {
		t.Errorf("InnerRadius = %v, want 6.8", got)
	}
	// With a 0.25 s tracker, D_m = 1.5 < D_s = 2, so inner = 0.8 + 2.
	if got := InnerRadius(spec, 0.25); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("InnerRadius = %v, want 2.8", got)
	}
	// Non-positive interval falls back to the 1 s default.
	if got := InnerRadius(spec, 0); math.Abs(got-6.8) > 1e-12 {
		t.Errorf("InnerRadius(0) = %v, want 6.8", got)
	}
}

func TestOuterSteadyFlightEqualsInner(t *testing.T) {
	o, err := NewOuter(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Constant airspeed, sub-meter interval distance: anticipation <= 1,
	// so outer = R * inner.
	for i := 0; i < 10; i++ {
		if got := o.Update(0.9, 0.9); math.Abs(got-5) > 1e-12 {
			t.Errorf("steady outer = %v, want 5", got)
		}
	}
}

func TestOuterGrowsWithAcceleration(t *testing.T) {
	o, err := NewOuter(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	o.Update(4, 4)
	// Airspeed doubles: anticipated distance doubles (Eq. 2), outer swells.
	got := o.Update(8, 8)
	if got <= 5 {
		t.Errorf("outer after acceleration = %v, want > inner", got)
	}
	want := 1.0 * 5 * (4 * (8.0 / 4.0)) // R * inner * anticipated
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("outer = %v, want %v (Eq. 2+3)", got, want)
	}
}

func TestOuterNeverBelowInner(t *testing.T) {
	f := func(speeds []float64) bool {
		o, err := NewOuter(3, 1)
		if err != nil {
			return false
		}
		for _, s := range speeds {
			v := math.Abs(s)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			v = math.Mod(v, 30)
			if r := o.Update(v, v); r < 3-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOuterRiskFactorScales(t *testing.T) {
	base, err := NewOuter(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	risky, err := NewOuter(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := base.Update(1, 0.5)
	r := risky.Update(1, 0.5)
	if math.Abs(r-2*b) > 1e-12 {
		t.Errorf("R=2 radius %v, want twice %v", r, b)
	}
}

func TestOuterRClampedToOne(t *testing.T) {
	o, err := NewOuter(5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if o.R != 1 {
		t.Errorf("R = %v, want clamped to 1", o.R)
	}
}

func TestOuterRejectsBadInner(t *testing.T) {
	if _, err := NewOuter(0, 1); err == nil {
		t.Error("zero inner radius accepted")
	}
}

func TestOuterZeroAirspeedSafe(t *testing.T) {
	o, err := NewOuter(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	o.Update(0, 0)
	got := o.Update(5, 5) // previous airspeed zero: ratio guarded
	if math.IsNaN(got) || math.IsInf(got, 0) || got < 4 {
		t.Errorf("outer after zero airspeed = %v", got)
	}
}

func TestTrackerSamplingCadence(t *testing.T) {
	tr, err := NewTracker(testMission(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	onPath := mathx.V3(50, 0, -15)
	fired := 0
	for i := 0; i <= 1000; i++ { // 10 s at 10 ms
		if _, ok := tr.Observe(float64(i)*0.01, onPath, 4); ok {
			fired++
		}
	}
	if fired != 11 {
		t.Errorf("tracking samples in 10 s = %d, want 11", fired)
	}
	if tr.Samples() != fired {
		t.Errorf("Samples() = %d, want %d", tr.Samples(), fired)
	}
}

func TestTrackerNoViolationsOnPath(t *testing.T) {
	tr, err := NewTracker(testMission(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		// Small tracking error well inside the inner bubble (6.8 m).
		p := mathx.V3(float64(i)*2, 0.5, -14.7)
		tr.Observe(float64(i), p, 4)
	}
	if tr.InnerViolations() != 0 || tr.OuterViolations() != 0 {
		t.Errorf("violations on-path: inner=%d outer=%d", tr.InnerViolations(), tr.OuterViolations())
	}
}

func TestTrackerCountsViolations(t *testing.T) {
	tr, err := NewTracker(testMission(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 samples far off the route: every one violates both bubbles.
	for i := 0; i < 10; i++ {
		tr.Observe(float64(i), mathx.V3(50, 500, -15), 4)
	}
	if tr.InnerViolations() != 10 {
		t.Errorf("inner violations = %d, want 10", tr.InnerViolations())
	}
	if tr.OuterViolations() != 10 {
		t.Errorf("outer violations = %d, want 10", tr.OuterViolations())
	}
	s := tr.Last()
	if !s.InnerViolated || !s.OuterViolated || math.Abs(s.Deviation-500) > 1 {
		t.Errorf("last sample = %+v", s)
	}
}

func TestTrackerOuterSubsetOfInner(t *testing.T) {
	// Outer radius >= inner radius always, so outer violations can never
	// exceed inner violations.
	tr, err := NewTracker(testMission(), 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	positions := []float64{0, 3, 7, 12, 2, 30, 8, 0.5, 15, 100}
	for i, off := range positions {
		tr.Observe(float64(i), mathx.V3(50, off, -15), 4)
	}
	if tr.OuterViolations() > tr.InnerViolations() {
		t.Errorf("outer violations %d > inner %d", tr.OuterViolations(), tr.InnerViolations())
	}
	if tr.InnerViolations() == 0 {
		t.Error("test positions should violate the inner bubble at least once")
	}
}

func TestTrackerRejectsInvalidMission(t *testing.T) {
	bad := testMission()
	bad.Waypoints = nil
	if _, err := NewTracker(bad, 1, 1); err == nil {
		t.Error("invalid mission accepted")
	}
}

func TestTrackerDefaultInterval(t *testing.T) {
	tr, err := NewTracker(testMission(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Default interval is 1 s; two observations 0.5 s apart yield one sample.
	tr.Observe(0, mathx.Zero3, 0)
	if _, ok := tr.Observe(0.5, mathx.Zero3, 0); ok {
		t.Error("sampled faster than the default 1 s cadence")
	}
}
