// Package bubble implements the paper's two-layer virtual bubble for
// U-space separation management: a static inner alert bubble (Eq. 1) and a
// dynamic outer safety bubble (Eqs. 2-3), plus the tracker-rate violation
// counting used as the study's primary safety metrics.
//
// A violation is recorded when the drone's estimated position deviates
// from its assigned flight volume (the planned route) by more than the
// bubble radius at a tracking instant.
package bubble

import (
	"fmt"
	"math"

	"uavres/internal/mathx"
	"uavres/internal/mission"
)

// DefaultTrackingInterval is the U-space tracker sampling period (s).
const DefaultTrackingInterval = 1.0

// InnerRadius computes Eq. 1:
//
//	Bubble_inner = D_o + max(D_s, D_m)
//
// where D_m is the maximum distance the drone can cover at top speed
// between two tracking instances. All inputs are meters and seconds.
func InnerRadius(spec mission.DroneSpec, trackingInterval float64) float64 {
	if trackingInterval <= 0 {
		trackingInterval = DefaultTrackingInterval
	}
	dm := spec.MaxSpeedMS * trackingInterval
	return spec.DimensionM + math.Max(spec.SafetyDistM, dm)
}

// Outer computes the dynamic outer safety bubble.
type Outer struct {
	// R is the airspace risk factor (>= 1; the paper uses 1).
	R float64

	inner        float64
	prevAirspeed float64
	prevDist     float64
	primed       bool
	lastRadius   float64
}

// NewOuter returns an outer-bubble calculator over the given inner radius.
// R values below 1 are raised to 1, matching the paper's constraint.
func NewOuter(innerRadius, riskR float64) (*Outer, error) {
	if innerRadius <= 0 {
		return nil, fmt.Errorf("bubble: non-positive inner radius %v", innerRadius)
	}
	if riskR < 1 {
		riskR = 1
	}
	return &Outer{R: riskR, inner: innerRadius, lastRadius: innerRadius * riskR}, nil
}

// Update advances the dynamic bubble with the current airspeed and the
// distance covered since the previous tracking instant, returning the new
// outer radius. Eq. 2 anticipates the next interval's travel from the
// airspeed ratio; Eq. 3 scales the inner radius by that anticipation
// (floored at 1) and by R. The inner radius is always the minimum.
func (o *Outer) Update(airspeedMS, distCoveredM float64) float64 {
	anticipated := distCoveredM
	if o.primed && o.prevAirspeed > 0.1 {
		anticipated = o.prevDist * (airspeedMS / o.prevAirspeed) // Eq. 2
	}
	if math.IsNaN(anticipated) || math.IsInf(anticipated, 0) || anticipated < 0 {
		anticipated = 0
	}
	o.prevAirspeed = airspeedMS
	o.prevDist = distCoveredM
	o.primed = true

	o.lastRadius = o.R * o.inner * math.Max(1, anticipated) // Eq. 3
	return o.lastRadius
}

// Radius returns the most recently computed outer radius.
func (o *Outer) Radius() float64 { return o.lastRadius }

// Inner returns the static inner radius the outer bubble wraps.
func (o *Outer) Inner() float64 { return o.inner }

// Sample is one tracking observation with the bubble state at that instant.
type Sample struct {
	// T is the tracking timestamp (s).
	T float64
	// Deviation is the distance from the assigned flight volume (m).
	Deviation float64
	// InnerRadius and OuterRadius are the bubble radii at this instant.
	InnerRadius float64
	OuterRadius float64
	// InnerViolated and OuterViolated flag bubble excursions.
	InnerViolated bool
	OuterViolated bool
}

// Tracker samples a drone's deviation from its mission volume at the
// U-space tracking cadence and counts bubble violations.
type Tracker struct {
	mission  mission.Mission
	inner    float64
	outer    *Outer
	interval float64

	next       float64
	prevPos    mathx.Vec3
	havePrev   bool
	innerViol  int
	outerViol  int
	samples    int
	lastSample Sample
}

// NewTracker returns a tracker for one mission with the given risk factor.
func NewTracker(m mission.Mission, riskR, interval float64) (*Tracker, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("bubble: %w", err)
	}
	if interval <= 0 {
		interval = DefaultTrackingInterval
	}
	inner := InnerRadius(m.Drone, interval)
	outer, err := NewOuter(inner, riskR)
	if err != nil {
		return nil, err
	}
	return &Tracker{mission: m, inner: inner, outer: outer, interval: interval}, nil
}

// InnerRadius returns the mission's static inner bubble radius.
func (tr *Tracker) InnerRadius() float64 { return tr.inner }

// Due reports whether a tracking instant is due at sim time t without
// advancing the tracking clock (Observe advances it). The sim loop uses it
// to skip preparing observation inputs between tracking instants.
func (tr *Tracker) Due(t float64) bool { return t+1e-9 >= tr.next }

// Observe feeds the drone's estimated position and airspeed at sim time t.
// It samples at the tracking cadence and returns the sample when one was
// taken (ok=false between tracking instants).
func (tr *Tracker) Observe(t float64, estPos mathx.Vec3, airspeedMS float64) (Sample, bool) {
	if t+1e-9 < tr.next {
		return Sample{}, false
	}
	tr.next = t + tr.interval

	dist := 0.0
	if tr.havePrev {
		dist = estPos.Dist(tr.prevPos)
	}
	tr.prevPos = estPos
	tr.havePrev = true

	outerR := tr.outer.Update(airspeedMS, dist)
	dev := tr.mission.CrossTrackDistance(estPos)

	s := Sample{
		T:           t,
		Deviation:   dev,
		InnerRadius: tr.inner,
		OuterRadius: outerR,
	}
	if dev > tr.inner {
		s.InnerViolated = true
		tr.innerViol++
	}
	if dev > outerR {
		s.OuterViolated = true
		tr.outerViol++
	}
	tr.samples++
	tr.lastSample = s
	return s, true
}

// InnerViolations returns the number of inner-bubble violations so far.
func (tr *Tracker) InnerViolations() int { return tr.innerViol }

// OuterViolations returns the number of outer-bubble violations so far.
func (tr *Tracker) OuterViolations() int { return tr.outerViol }

// Samples returns how many tracking instants were observed.
func (tr *Tracker) Samples() int { return tr.samples }

// Last returns the most recent sample (zero value before the first).
func (tr *Tracker) Last() Sample { return tr.lastSample }

// TrackerSnapshot captures the tracker's complete dynamic state, including
// the outer-bubble calculator (checkpointing).
type TrackerSnapshot struct {
	next       float64
	prevPos    mathx.Vec3
	havePrev   bool
	innerViol  int
	outerViol  int
	samples    int
	lastSample Sample
	outer      Outer
}

// Snapshot captures the tracking clock, violation counts, and the dynamic
// outer-bubble state.
func (tr *Tracker) Snapshot() TrackerSnapshot {
	return TrackerSnapshot{
		next:       tr.next,
		prevPos:    tr.prevPos,
		havePrev:   tr.havePrev,
		innerViol:  tr.innerViol,
		outerViol:  tr.outerViol,
		samples:    tr.samples,
		lastSample: tr.lastSample,
		outer:      *tr.outer,
	}
}

// Restore reinstates a state captured with Snapshot. The tracker must wrap
// the same mission and tracking interval as the snapshot source.
func (tr *Tracker) Restore(s TrackerSnapshot) {
	tr.next = s.next
	tr.prevPos = s.prevPos
	tr.havePrev = s.havePrev
	tr.innerViol = s.innerViol
	tr.outerViol = s.outerViol
	tr.samples = s.samples
	tr.lastSample = s.lastSample
	outer := s.outer
	tr.outer = &outer
}
