package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureRunner lints fixture packages under testdata/ with the whole
// suite and internal-only analyzers forced on. One shared runner keeps
// the standard-library type-check cache warm across subtests.
func fixtureRunner(t *testing.T) *Runner {
	t.Helper()
	root, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{ModPath: "fixture", ModRoot: root, TreatAllInternal: true, TreatAllSimCritical: true}
}

// expectation is one "// want <check>" marker in a fixture file.
type expectation struct {
	file  string
	line  int
	check string
}

var wantRe = regexp.MustCompile(`// want (\w+)`)

// readWants collects the expectations embedded in every fixture file of
// dir.
func readWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				wants = append(wants, expectation{file: e.Name(), line: line, check: m[1]})
			}
		}
		f.Close()
	}
	return wants
}

// TestFixtures runs the full suite over each analyzer's golden fixture
// directory and requires the findings to match the embedded "// want"
// markers exactly — every marked line fires (positive fixture) and no
// unmarked line does (negative fixture).
func TestFixtures(t *testing.T) {
	r := fixtureRunner(t)
	for _, check := range []string{
		"floatcmp", "globalrand", "walltime", "mutexheld", "panicfree",
		"snapshotcomplete", "mapiter", "goroutinespawn",
	} {
		t.Run(check, func(t *testing.T) {
			dir := filepath.Join("testdata", check)
			findings, err := r.Run(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := map[expectation]int{}
			for _, f := range findings {
				got[expectation{
					file:  filepath.Base(f.Pos.Filename),
					line:  f.Pos.Line,
					check: f.Check,
				}]++
			}
			want := map[expectation]int{}
			for _, w := range readWants(t, dir) {
				want[w]++
			}
			for w, n := range want {
				if got[w] != n {
					t.Errorf("%s:%d: want %d %s finding(s), got %d", w.file, w.line, n, w.check, got[w])
				}
			}
			for g, n := range got {
				if want[g] == 0 {
					t.Errorf("%s:%d: unexpected %s finding (×%d)", g.file, g.line, g.check, n)
				}
			}
		})
	}
}

// TestSuppressionDirectives covers the //lint:allow contract: a valid
// directive (with a reason) silences the finding on its own line and the
// line below; a directive without a reason, or naming an unknown check,
// is itself reported and suppresses nothing.
func TestSuppressionDirectives(t *testing.T) {
	r := fixtureRunner(t)
	findings, err := r.Run(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	byCheck := map[string][]int{}
	for _, f := range findings {
		byCheck[f.Check] = append(byCheck[f.Check], f.Pos.Line)
	}
	// Lines 7 and 10 are validly suppressed; lines 14 and 19 carry
	// malformed directives, so their floatcmp findings survive alongside
	// one meta finding each.
	if got, want := byCheck["floatcmp"], []int{14, 19}; !equalInts(got, want) {
		t.Errorf("floatcmp findings on lines %v, want %v", got, want)
	}
	if got, want := byCheck[metaCheck], []int{14, 18}; !equalInts(got, want) {
		t.Errorf("%s findings on lines %v, want %v", metaCheck, got, want)
	}
	for check := range byCheck {
		if check != "floatcmp" && check != metaCheck {
			t.Errorf("unexpected %s findings: %v", check, byCheck[check])
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAnalyzerDisable checks per-analyzer selection: with walltime
// removed from the suite its fixture is silent.
func TestAnalyzerDisable(t *testing.T) {
	r := fixtureRunner(t)
	for _, a := range All() {
		if a.Name() != "walltime" {
			r.Analyzers = append(r.Analyzers, a)
		}
	}
	findings, err := r.Run(filepath.Join("testdata", "walltime"))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("disabled analyzer still fired: %v", findings)
	}
}

// TestSelfHost is the determinism gate's fixed point: the full suite
// over this repository must be clean, so `uavlint ./...` exits 0.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole repository")
	}
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := r.Run(modRoot + string(filepath.Separator) + "...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
