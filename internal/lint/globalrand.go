package lint

import (
	"go/ast"
)

// GlobalRand forbids package-level math/rand functions in internal/
// library code. The campaign's 850 cases are seeded per run; randomness
// must flow through an injected *rand.Rand (as internal/sensors does) so
// two runs with the same seed produce bit-identical trajectories
// regardless of scheduling, worker count, or what other code drew from
// the global source first.
type GlobalRand struct{}

func (GlobalRand) Name() string { return "globalrand" }
func (GlobalRand) Doc() string {
	return "forbid package-level math/rand calls in internal/; inject a *rand.Rand instead"
}

// randConstructors are the math/rand functions that build an explicit
// generator rather than drawing from the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (GlobalRand) Visitor(pkg *Package, f *File, report ReportFunc) VisitFunc {
	if f.IsTest || !pkg.Internal {
		return nil
	}
	return func(n ast.Node, _ []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Obj != nil { // Obj != nil: a local, not the import
			return
		}
		path := f.Imports[id.Name]
		if path != "math/rand" && path != "math/rand/v2" {
			return
		}
		if randConstructors[sel.Sel.Name] {
			return
		}
		report(call.Pos(), "package-level %s.%s draws from the shared global source; "+
			"inject a seeded *rand.Rand for reproducible runs", id.Name, sel.Sel.Name)
	}
}
