package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeFixtureModule lays out a throwaway module and returns a runner
// rooted at it with every package treated as sim-critical.
func writeFixtureModule(t *testing.T, files map[string]string) (*Runner, string) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return &Runner{ModPath: "fixture", ModRoot: dir, TreatAllInternal: true, TreatAllSimCritical: true}, dir
}

// TestApplyFixes exercises the -fix pipeline end to end: the mapiter
// sorted-keys rewrite and the floatcmp NaN-idiom rewrite are applied in
// place, and a re-run over the rewritten tree is clean.
func TestApplyFixes(t *testing.T) {
	src := `package fixture

import (
	"fmt"
	"math"
)

func hasNaN(xs []float64) bool {
	for _, x := range xs {
		if x != x {
			return true
		}
	}
	return false
}

func labelSum(m map[string]float64) string {
	out := ""
	for k, v := range m {
		out += fmt.Sprintf("%s=%v;", k, v)
	}
	return out
}

var _ = math.Pi
`
	// noparen.go has only a single-line import: the sort import must be
	// added as a standalone decl, not into a (missing) block.
	src2 := `package fixture

import "fmt"

func dump(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`
	r, dir := writeFixtureModule(t, map[string]string{"fix.go": src, "noparen.go": src2})
	findings, err := r.Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	fixable := 0
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		}
	}
	if fixable != 3 {
		t.Fatalf("want 3 fixable findings (2 mapiter + floatcmp), got %d of %d: %v", fixable, len(findings), findings)
	}

	applied, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 {
		t.Fatalf("applied %d fixes, want 3", applied)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"math.IsNaN(x)", "sort.Slice(", `"sort"`, "v := m[k]"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q:\n%s", want, fixed)
		}
	}
	fixed2, err := os.ReadFile(filepath.Join(dir, "noparen.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"import \"sort\"", "sort.Slice(", "v := m[k]"} {
		if !strings.Contains(string(fixed2), want) {
			t.Errorf("fixed noparen.go missing %q:\n%s", want, fixed2)
		}
	}

	// The rewritten tree must be clean — the fix is the whole point.
	again := &Runner{ModPath: "fixture", ModRoot: dir, TreatAllInternal: true, TreatAllSimCritical: true}
	findings, err = again.Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("findings after fix: %v", findings)
	}
}

// TestJSONReport checks the machine-readable shape CI consumes.
func TestJSONReport(t *testing.T) {
	findings := []Finding{
		{Pos: position("a.go", 3, 7), Check: "mapiter", Message: "range over map", Fix: &Fix{Message: "sort"}},
		{Pos: position("b.go", 9, 1), Check: "floatcmp", Message: "exact compare"},
	}
	var buf bytes.Buffer
	if err := WriteJSONReport(&buf, "uavres", findings); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.ModPath != "uavres" || rep.Count != 2 || len(rep.Findings) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if f := rep.Findings[0]; f.File != "a.go" || f.Line != 3 || f.Check != "mapiter" || !f.Fixable {
		t.Errorf("finding[0] = %+v", f)
	}
	if rep.Findings[1].Fixable {
		t.Errorf("finding[1] marked fixable without a fix")
	}
}

// TestUnusedSuppressions: a well-formed //lint:allow that suppresses
// nothing is reported (under the unsuppressable meta check) only when
// the audit is enabled.
func TestUnusedSuppressions(t *testing.T) {
	src := `package fixture

//lint:allow floatcmp historical; nothing here compares floats
func add(a, b int) int { return a + b }

func cmp(a, b float64) bool {
	//lint:allow floatcmp exact sentinel compare is intended here
	return a == b
}
`
	r, dir := writeFixtureModule(t, map[string]string{"sup.go": src})
	findings, err := r.Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("audit off: findings = %v", findings)
	}

	r = &Runner{ModPath: "fixture", ModRoot: dir, TreatAllInternal: true, TreatAllSimCritical: true, ReportUnusedAllows: true}
	findings, err = r.Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("audit on: findings = %v, want exactly the stale directive", findings)
	}
	f := findings[0]
	if f.Check != metaCheck || f.Pos.Line != 3 || !strings.Contains(f.Message, "unused") {
		t.Errorf("finding = %v", f)
	}
}

// TestMutationSnapshotIntegrity is the analyzer's own mutation test:
// deleting a real field capture from the repository's Snapshot/Restore
// code must turn the lint gate red. This is the guarantee the campaign
// engine leans on — an incomplete checkpoint cannot land silently.
func TestMutationSnapshotIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a mutated copy of the whole module")
	}
	tmp := t.TempDir()
	copyModuleSource(t, filepath.Join("..", ".."), tmp)

	// Mutation 1: Vehicle.Snapshot forgets the distance-flown tracker.
	mutateSource(t, filepath.Join(tmp, "internal", "sim", "checkpoint.go"),
		`(?m)^\s*distM:\s*v\.distM,\n`)
	// Mutation 2: Rand.SetState forgets the Box-Muller spare flag.
	mutateSource(t, filepath.Join(tmp, "internal", "mathx", "rand.go"),
		`(?m)^\s*r\.haveSpare = s\.HaveSpare\n`)

	r := &Runner{ModPath: "uavres", ModRoot: tmp}
	findings, err := r.Run(filepath.Join(tmp, "internal", "sim"), filepath.Join(tmp, "internal", "mathx"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distM", "haveSpare"} {
		found := false
		for _, f := range findings {
			if f.Check == "snapshotcomplete" && strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("mutation dropping %s not caught; findings: %v", want, findings)
		}
	}
}

// copyModuleSource copies the module's Go sources and go.mod into dst,
// skipping VCS, fixtures, and hidden directories.
func copyModuleSource(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if rel != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !strings.HasSuffix(path, ".go") && d.Name() != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mutateSource deletes the first match of pattern from the file,
// failing the test if the pattern no longer matches (the mutation
// target moved — update the test).
func mutateSource(t *testing.T, path, pattern string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(pattern)
	if !re.Match(data) {
		t.Fatalf("mutation pattern %q matches nothing in %s", pattern, path)
	}
	if err := os.WriteFile(path, re.ReplaceAll(data, nil), 0o644); err != nil {
		t.Fatal(err)
	}
}

func position(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}
