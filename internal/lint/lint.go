// Package lint is a simulation-aware static-analysis framework for this
// repository. The paper's campaign (850 runs, 21 injection types × 4
// durations × 10 missions) is only reproducible if the simulator stays
// bit-deterministic and numerically safe; the analyzers in this package
// encode those invariants as machine-checkable structure so every future
// performance or scaling change is automatically held to the same
// contract. Built on go/parser + go/ast + go/types only (no external
// dependencies), it parses each file once and runs all analyzers over a
// single shared AST walk.
//
// Findings can be suppressed with an explicit, reasoned directive placed
// on the offending line or the line directly above it:
//
//	//lint:allow <check> <reason>
//
// A directive without a reason is itself a finding: exemptions from the
// determinism contract must be justified in the source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding (applied by uavlint -fix).
	Fix *Fix
}

// String renders the canonical "file:line: [check] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// ReportFunc records a finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// FixReportFunc records a finding at pos carrying a suggested fix.
type FixReportFunc func(pos token.Pos, fix *Fix, format string, args ...any)

// Analyzer is one lint check.
type Analyzer interface {
	Name() string
	Doc() string
}

// VisitFunc is called for every node of a file during the shared walk.
// stack holds the path from the file root to n (stack[len(stack)-1] == n).
type VisitFunc func(n ast.Node, stack []ast.Node)

// NodeAnalyzer participates in the shared per-file AST walk. Visitor is
// called once per file and returns the node callback, or nil to skip the
// file entirely.
type NodeAnalyzer interface {
	Analyzer
	Visitor(pkg *Package, f *File, report ReportFunc) VisitFunc
}

// FixNodeAnalyzer is a NodeAnalyzer whose findings can carry suggested
// fixes. It takes precedence over NodeAnalyzer when both are
// implemented.
type FixNodeAnalyzer interface {
	Analyzer
	FixVisitor(pkg *Package, f *File, report FixReportFunc) VisitFunc
}

// PackageAnalyzer runs once per package after all files are parsed; use
// it for checks that need cross-file context (struct declarations vs.
// method bodies).
type PackageAnalyzer interface {
	Analyzer
	CheckPackage(pkg *Package, report ReportFunc)
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		FloatCmp{},
		GlobalRand{},
		WallTime{},
		MutexHeld{},
		PanicFree{},
		SnapshotComplete{},
		MapIter{},
		GoroutineSpawn{},
	}
}

// simCriticalPkgs are the internal packages whose compile order, results
// merging, and execution must stay bit-deterministic: the per-case
// simulation stack plus the plan/merge layers. MapIter applies here.
var simCriticalPkgs = map[string]bool{
	"sim": true, "ekf": true, "spec": true,
	"core": true, "sweep": true, "faultinject": true,
}

// goroutineFreePkgs lists the internal packages allowed to own
// goroutines. core owns the one sanctioned worker pool (the campaign
// runner), and telemetry/uspace are the concurrent serving layers;
// everything else in internal/ is deterministic per-case simulation code
// where a spawned goroutine would make step order scheduler-dependent.
var goroutineFreePkgs = func(base string) bool {
	switch base {
	case "core", "telemetry", "uspace":
		return false
	}
	return true
}

// internalBase returns the first path element under internal/ ("" when
// the package is not internal).
func internalBase(importPath string) string {
	_, rest, ok := strings.Cut(importPath, "internal/")
	if !ok {
		return ""
	}
	base, _, _ := strings.Cut(rest, "/")
	return strings.TrimSuffix(base, "_test")
}

// Package is one parsed (and best-effort type-checked) package under
// analysis.
type Package struct {
	// ImportPath is the package's path within the module.
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Internal reports whether the package sits under an internal/
	// directory — the determinism-critical library core.
	Internal bool
	// SimCritical reports membership in the bit-determinism core
	// (simCriticalPkgs): map iteration order and spawned goroutines are
	// findings here.
	SimCritical bool
	// GoroutineFree reports that the package may not own goroutines
	// (every internal package except the sanctioned concurrent layers).
	GoroutineFree bool
	Fset          *token.FileSet
	Files         []*File
	// TypesInfo holds best-effort expression types for non-test files.
	// Type checking is lenient (errors are ignored) so analyzers must
	// tolerate missing entries.
	TypesInfo *typeInfo
}

// File is one parsed source file.
type File struct {
	Path string
	AST  *ast.File
	// IsTest reports a _test.go file.
	IsTest bool
	// Imports maps local import name to import path ("rand" ->
	// "math/rand"), with aliases resolved.
	Imports map[string]string

	allows []allowDirective
}
