package lint

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive comment:
//
//	//lint:allow <check> <reason>
//
// The directive silences findings of <check> (or every check, with the
// special name "all") on the same line and on the line immediately
// below — so it works both as a trailing comment and as a standalone
// comment above the offending statement.
const allowPrefix = "//lint:allow"

type allowDirective struct {
	line   int
	check  string
	reason string
	pos    token.Pos
	// used records whether the directive suppressed at least one finding
	// in the current run (stale directives are themselves findings when
	// the runner audits suppressions).
	used bool
}

// parseAllows extracts suppression directives from a parsed file. Known
// analyzer names are passed in so malformed or unknown directives can be
// reported: an unexplained exemption is itself a determinism-contract
// violation.
func parseAllows(f *File, fset *token.FileSet, known map[string]bool, report ReportFunc) {
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. "//lint:allowfoo" is not a directive
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(c.Pos(), "malformed %s directive: missing check name", allowPrefix)
				continue
			}
			check := fields[0]
			if check != "all" && !known[check] {
				report(c.Pos(), "%s names unknown check %q", allowPrefix, check)
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), check))
			if reason == "" {
				report(c.Pos(), "%s %s directive needs a reason", allowPrefix, check)
				continue
			}
			f.allows = append(f.allows, allowDirective{
				line:   fset.Position(c.Pos()).Line,
				check:  check,
				reason: reason,
				pos:    c.Pos(),
			})
		}
	}
}

// allowed reports whether a finding of check at line is suppressed by a
// directive in f, marking every matching directive as used.
func (f *File) allowed(check string, line int) bool {
	hit := false
	for i := range f.allows {
		a := &f.allows[i]
		if a.check != check && a.check != "all" {
			continue
		}
		if a.line == line || a.line == line-1 {
			a.used = true
			hit = true
		}
	}
	return hit
}
