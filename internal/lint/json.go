package lint

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable form of one lint run, consumed by CI
// (recorded next to the BENCH artifacts) and by campaign workers that
// refuse to execute on a tree with open determinism findings.
type Report struct {
	// ModPath identifies the linted module.
	ModPath string `json:"module"`
	// Findings are the surviving diagnostics in position order.
	Findings []JSONFinding `json:"findings"`
	// Count duplicates len(Findings) for cheap shell-side gating.
	Count int `json:"count"`
}

// JSONFinding is one diagnostic in the JSON report.
type JSONFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
	// Fixable reports that uavlint -fix can rewrite this finding.
	Fixable bool `json:"fixable,omitempty"`
}

// WriteJSONReport renders findings as a JSON report. Paths are emitted
// as given (the caller relativizes them first if desired).
func WriteJSONReport(w io.Writer, modPath string, findings []Finding) error {
	rep := Report{ModPath: modPath, Findings: make([]JSONFinding, 0, len(findings)), Count: len(findings)}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, JSONFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
			Fixable: f.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
