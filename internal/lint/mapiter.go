package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags range statements over maps in the sim-critical packages
// (internal/{sim,ekf,spec,core,sweep,faultinject}). Go randomizes map
// iteration order per run, so anything order-sensitive built from a map
// range — compiled case order, merged results, error messages, prefix
// scheduling — differs between two executions of the same seed, which is
// exactly the class of silent nondeterminism the checkpoint-and-fork
// campaign cannot tolerate. Iterate a sorted key slice instead.
//
// Two order-insensitive idioms are exempt:
//
//   - key collection (`keys = append(keys, k)` as the entire body), the
//     first half of the sorted-iteration idiom itself, and
//   - keyless ranges (`for range m`), whose iterations cannot observe
//     the key and are therefore identical.
type MapIter struct{}

func (MapIter) Name() string { return "mapiter" }
func (MapIter) Doc() string {
	return "flag range over maps in sim-critical packages unless keys are collected and sorted first"
}

func (m MapIter) FixVisitor(pkg *Package, f *File, report FixReportFunc) VisitFunc {
	if f.IsTest || !pkg.SimCritical {
		return nil
	}
	return func(n ast.Node, _ []ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pkg.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		mt, ok := t.Underlying().(*types.Map)
		if !ok {
			return
		}
		if isKeyless(rs) || isKeyCollect(rs) {
			return
		}
		fix := m.sortedKeysFix(pkg, f, rs, mt)
		report(rs.For, fix, "range over map is iteration-order nondeterministic; "+
			"collect and sort the keys first")
	}
}

// isKeyless reports `for range m` (no key/value variables): every
// iteration is indistinguishable, so order cannot leak.
func isKeyless(rs *ast.RangeStmt) bool {
	keyless := func(e ast.Expr) bool {
		if e == nil {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	return keyless(rs.Key) && keyless(rs.Value)
}

// isKeyCollect reports the collection half of the sorted-iteration
// idiom: a body that only appends the key (and/or value) to a slice,
// which is order-insensitive because the slice is sorted before any
// order-sensitive use.
func isKeyCollect(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	return ok && dst.Name == lhs.Name
}

// sortedKeysFix builds the mechanical rewrite
//
//	keysN := make([]K, 0, len(m))
//	for k := range m {
//		keysN = append(keysN, k)
//	}
//	sort.Slice(keysN, func(i, j int) bool { return keysN[i] < keysN[j] })
//	for _, k := range keysN {
//		v := m[k]
//		...
//
// or nil when the shape is not mechanically fixable (assignment ranges,
// unordered key types, missing sort import with nowhere to add it).
func (MapIter) sortedKeysFix(pkg *Package, f *File, rs *ast.RangeStmt, mt *types.Map) *Fix {
	if rs.Tok != token.DEFINE {
		return nil
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	if !sortableKey(mt.Key()) {
		return nil
	}
	var value *ast.Ident
	if rs.Value != nil {
		v, ok := rs.Value.(*ast.Ident)
		if !ok {
			return nil
		}
		if v.Name != "_" {
			value = v
		}
	}
	mapSrc, ok := exprString(pkg.Fset, rs.X)
	if !ok {
		return nil
	}
	importEdit, ok := ensureSortImport(pkg.Fset, f)
	if !ok {
		return nil
	}

	forPos := pkg.Fset.Position(rs.For)
	keys := fmt.Sprintf("keys%d", forPos.Line)
	keyType := types.TypeString(mt.Key(), func(p *types.Package) string { return p.Name() })
	indent := strings.Repeat("\t", forPos.Column-1)

	var pre strings.Builder
	fmt.Fprintf(&pre, "%s := make([]%s, 0, len(%s))\n", keys, keyType, mapSrc)
	fmt.Fprintf(&pre, "%sfor %s := range %s {\n", indent, key.Name, mapSrc)
	fmt.Fprintf(&pre, "%s\t%s = append(%s, %s)\n", indent, keys, keys, key.Name)
	fmt.Fprintf(&pre, "%s}\n", indent)
	fmt.Fprintf(&pre, "%ssort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n",
		indent, keys, keys, keys)
	fmt.Fprintf(&pre, "%s", indent)

	header := fmt.Sprintf("for _, %s := range %s {", key.Name, keys)
	if value != nil {
		header += fmt.Sprintf("\n%s\t%s := %s[%s]", indent, value.Name, mapSrc, key.Name)
	}

	headStart := forPos
	headEnd := pkg.Fset.Position(rs.Body.Lbrace + 1)
	// One edit replaces the whole range header: the collect/sort prelude
	// and the rewritten `for` line land atomically, the body is untouched.
	edits := []TextEdit{{Start: headStart, End: headEnd, NewText: pre.String() + header}}
	if importEdit != nil {
		edits = append(edits, *importEdit)
	}
	return &Fix{Message: "iterate a sorted key slice", Edits: edits}
}

// sortableKey reports key types the generated `<` comparison orders
// totally (strings and integers, including named types like
// time.Duration). Floats are excluded: NaN breaks strict weak ordering.
func sortableKey(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsString) != 0
}

// exprString renders an expression as source text.
func exprString(fset *token.FileSet, e ast.Expr) (string, bool) {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "", false
	}
	s := buf.String()
	// A multi-line rendering (function literals etc.) would mangle the
	// generated statements; such maps are not mechanically fixable.
	return s, !strings.Contains(s, "\n")
}

// ensureSortImport returns an edit adding "sort" to the file's imports
// (nil when already imported): into the parenthesized block when there
// is one, as a standalone decl after single-line imports, or before the
// first declaration when the file imports nothing yet.
func ensureSortImport(fset *token.FileSet, f *File) (*TextEdit, bool) {
	for _, path := range f.Imports {
		if path == "sort" {
			return nil, true
		}
	}
	for _, decl := range f.AST.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() {
			continue
		}
		// Insert in path order within the first (stdlib) group.
		insert := fset.Position(gd.Rparen)
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			if strings.Trim(is.Path.Value, `"`) > "sort" {
				p := fset.Position(is.Pos())
				insert = token.Position{Filename: p.Filename, Offset: p.Offset - (p.Column - 1), Line: p.Line, Column: 1}
				break
			}
		}
		if insert.Offset == fset.Position(gd.Rparen).Offset {
			p := fset.Position(gd.Rparen)
			insert = token.Position{Filename: p.Filename, Offset: p.Offset - (p.Column - 1), Line: p.Line, Column: 1}
		}
		return &TextEdit{Start: insert, End: insert, NewText: "\t\"sort\"\n"}, true
	}
	var lastImport *ast.GenDecl
	for _, decl := range f.AST.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			lastImport = gd
		}
	}
	if lastImport != nil {
		p := fset.Position(lastImport.End())
		return &TextEdit{Start: p, End: p, NewText: "\nimport \"sort\""}, true
	}
	if len(f.AST.Decls) == 0 {
		return nil, false
	}
	// Keep a doc comment attached to the declaration it documents.
	first := f.AST.Decls[0]
	pos := first.Pos()
	switch d := first.(type) {
	case *ast.FuncDecl:
		if d.Doc != nil {
			pos = d.Doc.Pos()
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			pos = d.Doc.Pos()
		}
	}
	p := fset.Position(pos)
	lineStart := token.Position{Filename: p.Filename, Offset: p.Offset - (p.Column - 1), Line: p.Line, Column: 1}
	return &TextEdit{Start: lineStart, End: lineStart, NewText: "import \"sort\"\n\n"}, true
}
