package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// typeInfo wraps the subset of go/types results the analyzers consume.
type typeInfo struct {
	types      map[ast.Expr]types.TypeAndValue
	defs       map[*ast.Ident]types.Object
	uses       map[*ast.Ident]types.Object
	selections map[*ast.SelectorExpr]*types.Selection
}

// TypeOf returns the type of e, or nil when type checking could not
// determine one (lenient checking never guarantees full coverage).
func (ti *typeInfo) TypeOf(e ast.Expr) types.Type {
	if ti == nil {
		return nil
	}
	if tv, ok := ti.types[e]; ok {
		return tv.Type
	}
	return nil
}

// ObjectOf returns the object an identifier defines or refers to, or nil
// when type checking could not resolve it.
func (ti *typeInfo) ObjectOf(id *ast.Ident) types.Object {
	if ti == nil {
		return nil
	}
	if obj := ti.defs[id]; obj != nil {
		return obj
	}
	return ti.uses[id]
}

// SelectionOf returns the resolved selection for a selector expression
// (field access or method call through a value), or nil for qualified
// identifiers (pkg.Name) and unresolved expressions.
func (ti *typeInfo) SelectionOf(sel *ast.SelectorExpr) *types.Selection {
	if ti == nil {
		return nil
	}
	return ti.selections[sel]
}

// moduleImporter resolves imports for type checking: paths inside the
// module are type-checked from source in the repository tree; everything
// else (the standard library) is delegated to the compiler's source
// importer. All results are cached, so the expensive standard-library
// pass is paid once per Runner, not once per package.
type moduleImporter struct {
	modPath string
	modRoot string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*types.Package
}

func newModuleImporter(modPath, modRoot string, fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		modPath: modPath,
		modRoot: modRoot,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle or failed import %q", path)
		}
		return p, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		dir := filepath.Join(m.modRoot, filepath.FromSlash(strings.TrimPrefix(path, m.modPath)))
		m.cache[path] = nil // cycle guard
		p, err := m.checkDir(path, dir, nil)
		m.cache[path] = p
		return p, err
	}
	p, err := m.std.Import(path)
	if err != nil {
		return nil, err
	}
	m.cache[path] = p
	return p, nil
}

// checkDir parses and type-checks the non-test files of the package in
// dir. Type errors are ignored: analysis must degrade gracefully on
// code that is mid-refactor, and the analyzers treat unknown types as
// "not my concern". When info is non-nil, expression types are recorded
// into it.
func (m *moduleImporter) checkDir(path, dir string, info *types.Info) (*types.Package, error) {
	pkgs, err := parser.ParseDir(m.fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	for _, pkg := range pkgs {
		files := make([]*ast.File, 0, len(pkg.Files))
		for _, f := range pkg.Files {
			files = append(files, f)
		}
		conf := types.Config{Importer: m, Error: func(error) {}}
		p, _ := conf.Check(path, m.fset, files, info)
		return p, nil
	}
	return nil, fmt.Errorf("lint: no buildable package in %s", dir)
}

// typeCheck records best-effort expression types for the already-parsed
// non-test files of pkg.
func (m *moduleImporter) typeCheck(pkg *Package) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if !f.IsTest {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		return
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: m, Error: func(error) {}}
	p, _ := conf.Check(pkg.ImportPath, pkg.Fset, files, info)
	if p != nil {
		m.cache[pkg.ImportPath] = p
	}
	pkg.TypesInfo = &typeInfo{
		types:      info.Types,
		defs:       info.Defs,
		uses:       info.Uses,
		selections: info.Selections,
	}
}
