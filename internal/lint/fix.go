package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// Fix is one suggested mechanical rewrite attached to a finding. Edits
// are byte-range replacements within a single file; the fix is only
// offered when the analyzer can prove the rewrite is behavior-preserving
// modulo the determinism contract it restores (sorted map iteration,
// tolerance compares).
type Fix struct {
	// Message describes the rewrite ("iterate sorted keys", ...).
	Message string
	// Edits are the replacements, non-overlapping within the fix.
	Edits []TextEdit
}

// TextEdit replaces the half-open byte range [Start.Offset, End.Offset)
// of Start.Filename with NewText. Start and End are resolved positions so
// fixes survive serialization to the JSON report.
type TextEdit struct {
	Start   token.Position
	End     token.Position
	NewText string
}

// ApplyFixes applies every fix carried by findings to the files on disk
// and returns the number of fixes applied. Fixes whose edits overlap an
// already-applied edit in the same file are skipped (the caller re-runs
// the suite to pick them up on a clean tree); a finding without a fix is
// ignored.
func ApplyFixes(findings []Finding) (applied int, err error) {
	type edit struct {
		start, end int
		text       string
	}
	byFile := map[string][]edit{}
	for _, fd := range findings {
		if fd.Fix == nil || len(fd.Fix.Edits) == 0 {
			continue
		}
		// All edits of one fix must land atomically in one file.
		file := fd.Fix.Edits[0].Start.Filename
		candidate := byFile[file]
		ok := true
		for _, e := range fd.Fix.Edits {
			if e.Start.Filename != file || e.End.Filename != file || e.End.Offset < e.Start.Offset {
				ok = false
				break
			}
			for _, prev := range candidate {
				if e.Start.Offset < prev.end && prev.start < e.End.Offset {
					ok = false // overlaps an accepted edit: defer to a re-run
					break
				}
			}
			if !ok {
				break
			}
			candidate = append(candidate, edit{e.Start.Offset, e.End.Offset, e.NewText})
		}
		if !ok {
			continue
		}
		byFile[file] = candidate
		applied++
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := byFile[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		data, err := os.ReadFile(file)
		if err != nil {
			return 0, fmt.Errorf("lint: applying fixes: %w", err)
		}
		for _, e := range edits {
			if e.end > len(data) {
				return 0, fmt.Errorf("lint: fix edit past end of %s (stale positions?)", file)
			}
			data = append(data[:e.start], append([]byte(e.text), data[e.end:]...)...)
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			return 0, fmt.Errorf("lint: applying fixes: %w", err)
		}
	}
	return applied, nil
}
