package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SnapshotComplete verifies the checkpoint contract: for every type that
// participates in checkpoint-and-fork (it has both a capture method and
// a restore method), each field the type ever mutates must be read by
// the capture method and written by the restore method. A field that is
// mutated mid-run but missing from either side makes a restored fork
// diverge from its parent — the exact bit-identity violation the
// campaign engine's Fork machinery exists to rule out, and one that no
// test catches until a fault case happens to exercise the stale field.
//
// Method pairs are recognized by name, most specific first:
//
//	capture: Snapshot, snapshot, State
//	restore: Restore, restoreFrom, restore, SetState
//
// Field reads and writes are traced transitively through calls to other
// methods on the same receiver, so a Snapshot that delegates to a helper
// still counts as reading what the helper reads. Only pointer-receiver
// methods count as mutators (a value receiver mutates a copy). Fields
// whose type cannot or need not round-trip a snapshot — funcs,
// interfaces, channels, and sync primitives — are exempt. Derived caches
// and scratch buffers that are deliberately not captured take a
//
//	//lint:allow snapshotcomplete <why the field need not round-trip>
//
// on the field's declaration line.
type SnapshotComplete struct{}

func (SnapshotComplete) Name() string { return "snapshotcomplete" }
func (SnapshotComplete) Doc() string {
	return "every mutable field of a Snapshot/Restore type must be read by the capture method and written by the restore method"
}

// captureNames and restoreNames are the recognized method names in
// priority order; the first present on a type is its capture/restore
// method.
var (
	captureNames = []string{"Snapshot", "snapshot", "State"}
	restoreNames = []string{"Restore", "restoreFrom", "restore", "SetState"}
)

// methodFacts is the flow summary of one method body with respect to its
// receiver's fields.
type methodFacts struct {
	name    string
	ptrRecv bool
	// reads and writes are receiver field names touched directly.
	reads  map[string]bool
	writes map[string]bool
	// allRead / allWrite record whole-receiver uses (`x := *r`,
	// `*r = other`): every field is involved.
	allRead  bool
	allWrite bool
	// calls names methods invoked on the same receiver; their facts are
	// folded in transitively.
	calls map[string]bool
}

// structDecl is one struct type declaration plus its methods.
type structDecl struct {
	name    string
	fields  []structField
	methods map[string]*methodFacts
}

type structField struct {
	name   string
	ident  *ast.Ident // declaration identifier (embedded: the type name)
	typ    ast.Expr
	anonym bool
}

func (SnapshotComplete) CheckPackage(pkg *Package, report ReportFunc) {
	structs := map[string]*structDecl{}

	// Pass 1: struct declarations (non-test files only; test helpers do
	// not participate in the checkpoint contract).
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				sd := &structDecl{name: ts.Name.Name, methods: map[string]*methodFacts{}}
				for _, fld := range st.Fields.List {
					if len(fld.Names) == 0 {
						if id := embeddedName(fld.Type); id != nil {
							sd.fields = append(sd.fields, structField{
								name: id.Name, ident: id, typ: fld.Type, anonym: true,
							})
						}
						continue
					}
					for _, name := range fld.Names {
						if name.Name == "_" {
							continue
						}
						sd.fields = append(sd.fields, structField{
							name: name.Name, ident: name, typ: fld.Type,
						})
					}
				}
				structs[sd.name] = sd
			}
		}
	}

	// Pass 2: method flow facts.
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvType, ptr := receiverType(fd.Recv.List[0].Type)
			if recvType == "" {
				continue
			}
			sd := structs[recvType]
			if sd == nil {
				continue
			}
			facts := analyzeMethod(pkg, fd, ptr)
			sd.methods[fd.Name.Name] = facts
		}
	}

	for _, name := range sortedKeys(structs) {
		sd := structs[name]
		propagate(sd.methods)
		checkStruct(pkg, sd, report)
	}
}

// checkStruct applies the completeness rule to one struct once its
// method facts are propagated.
func checkStruct(pkg *Package, sd *structDecl, report ReportFunc) {
	capture := firstMethod(sd.methods, captureNames)
	restore := firstMethod(sd.methods, restoreNames)
	if capture == nil || restore == nil {
		return
	}

	for _, fld := range sd.fields {
		if exemptField(pkg, fld) {
			continue
		}
		mutators := mutatorsOf(sd, fld.name, capture.name, restore.name)
		if len(mutators) == 0 {
			continue // immutable after construction: nothing to round-trip
		}
		missRead := !capture.allRead && !capture.reads[fld.name]
		missWrite := !restore.allWrite && !restore.writes[fld.name]
		if !missRead && !missWrite {
			continue
		}
		var gap string
		switch {
		case missRead && missWrite:
			gap = fmt.Sprintf("neither read in %s nor written in %s", capture.name, restore.name)
		case missRead:
			gap = fmt.Sprintf("not read in %s", capture.name)
		default:
			gap = fmt.Sprintf("not written in %s", restore.name)
		}
		report(fld.ident.Pos(),
			"field %s.%s is mutated by %s but %s; a restored fork diverges from its parent",
			sd.name, fld.name, mutatorList(mutators), gap)
	}
}

// mutatorsOf returns the pointer-receiver methods outside the
// capture/restore pair that write the field, sorted by name.
func mutatorsOf(sd *structDecl, field, captureName, restoreName string) []string {
	var out []string
	for name, m := range sd.methods {
		if name == captureName || name == restoreName || !m.ptrRecv {
			continue
		}
		if m.allWrite || m.writes[field] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// mutatorList renders up to three mutator names.
func mutatorList(names []string) string {
	if len(names) > 3 {
		return strings.Join(names[:3], ", ") + fmt.Sprintf(" (+%d more)", len(names)-3)
	}
	return strings.Join(names, ", ")
}

// firstMethod returns the first method present from the priority list.
func firstMethod(methods map[string]*methodFacts, priority []string) *methodFacts {
	for _, name := range priority {
		if m := methods[name]; m != nil {
			return m
		}
	}
	return nil
}

// propagate folds callee facts into callers to a fixed point: a capture
// method that delegates to a same-receiver helper reads what the helper
// reads. Writes propagate only from pointer-receiver callees — a value
// receiver's "writes" land on a copy.
func propagate(methods map[string]*methodFacts) {
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			for callee := range m.calls {
				c := methods[callee]
				if c == nil || c == m {
					continue
				}
				for f := range c.reads {
					if !m.reads[f] {
						m.reads[f] = true
						changed = true
					}
				}
				if c.allRead && !m.allRead {
					m.allRead = true
					changed = true
				}
				if !c.ptrRecv {
					continue
				}
				for f := range c.writes {
					if !m.writes[f] {
						m.writes[f] = true
						changed = true
					}
				}
				if c.allWrite && !m.allWrite {
					m.allWrite = true
					changed = true
				}
			}
		}
	}
}

// receiverType extracts the receiver's type name and pointer-ness.
func receiverType(e ast.Expr) (name string, ptr bool) {
	if s, ok := e.(*ast.StarExpr); ok {
		ptr = true
		e = s.X
	}
	if ix, ok := e.(*ast.IndexExpr); ok { // generic receiver
		e = ix.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name, ptr
	}
	return "", false
}

// embeddedName returns the type identifier of an embedded field.
func embeddedName(e ast.Expr) *ast.Ident {
	switch x := e.(type) {
	case *ast.StarExpr:
		return embeddedName(x.X)
	case *ast.SelectorExpr:
		return x.Sel
	case *ast.Ident:
		return x
	}
	return nil
}

// exemptField reports fields that need not round-trip a snapshot: funcs,
// interfaces, and channels hold behavior rather than state, and sync
// primitives must never be copied at all.
func exemptField(pkg *Package, fld structField) bool {
	if exemptFieldExpr(fld.typ) {
		return true
	}
	// Named types resolving to an exempt underlying shape (e.g. a local
	// `type Observer func(...)`) need type information to classify.
	t := pkg.TypesInfo.TypeOf(fld.typ)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Signature, *types.Interface, *types.Chan:
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return true
		}
	}
	return false
}

// exemptFieldExpr is the syntactic half of exemptField, usable without
// type information.
func exemptFieldExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.FuncType, *ast.InterfaceType, *ast.ChanType:
		return true
	case *ast.StarExpr:
		return exemptFieldExpr(x.X)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && id.Name == "sync" {
			return true
		}
	}
	return false
}

// analyzeMethod walks one method body and summarizes receiver field
// flow. Receiver identity is resolved through type objects when
// available, falling back to name matching so the analyzer degrades
// rather than disappears on mid-refactor code.
func analyzeMethod(pkg *Package, fd *ast.FuncDecl, ptrRecv bool) *methodFacts {
	m := &methodFacts{
		name:    fd.Name.Name,
		ptrRecv: ptrRecv,
		reads:   map[string]bool{},
		writes:  map[string]bool{},
		calls:   map[string]bool{},
	}
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		return m // anonymous receiver: the body cannot touch fields
	}
	recvName := recv.Names[0].Name
	recvObj := pkg.TypesInfo.ObjectOf(recv.Names[0])

	isRecv := func(e ast.Expr) *ast.Ident {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.Ident:
				if recvObj != nil {
					if pkg.TypesInfo.ObjectOf(x) == recvObj {
						return x
					}
					return nil
				}
				if x.Name == recvName {
					return x
				}
				return nil
			default:
				return nil
			}
		}
	}

	// rootField resolves the receiver field at the base of a selector /
	// index / deref chain ("" when the chain is not rooted at the
	// receiver; whole=true for the bare receiver).
	var rootField func(e ast.Expr) (field string, whole bool)
	rootField = func(e ast.Expr) (string, bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				if isRecv(x.X) != nil {
					return x.Sel.Name, false
				}
				e = x.X
			case *ast.Ident:
				if isRecv(x) != nil {
					return "", true
				}
				return "", false
			default:
				return "", false
			}
		}
	}

	markWrite := func(e ast.Expr) {
		field, whole := rootField(e)
		switch {
		case whole:
			m.allWrite = true // *r = ... rewrites every field
		case field != "":
			m.writes[field] = true
		}
	}

	// consumed tracks receiver idents already accounted for as the base
	// of a selector, so the bare-receiver pass below does not double
	// count them as whole-value uses.
	consumed := map[*ast.Ident]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				// Taking a field's address lets the pointee be both read
				// and written through the escaping pointer.
				if field, _ := rootField(x.X); field != "" {
					m.reads[field] = true
					m.writes[field] = true
				}
			}
		case *ast.CallExpr:
			if fn, ok := x.Fun.(*ast.Ident); ok && fn.Name == "copy" && len(x.Args) == 2 {
				// The copy builtin writes through its destination slice.
				if field, _ := rootField(x.Args[0]); field != "" {
					m.writes[field] = true
				}
				break
			}
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				break
			}
			if id := isRecv(sel.X); id != nil {
				// r.helper(...): same-receiver call, folded in by
				// propagate. (If the name is a func-typed field rather
				// than a method, the selector read below covers it and
				// propagation finds no method to fold.)
				m.calls[sel.Sel.Name] = true
				break
			}
			// r.field.Method(...): a pointer-receiver method mutates the
			// field through the implicit &r.field.
			field, _ := rootField(sel.X)
			if field == "" {
				break
			}
			if s := pkg.TypesInfo.SelectionOf(sel); s != nil {
				if fn, ok := s.Obj().(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
							m.writes[field] = true
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if id := isRecv(x.X); id != nil {
				consumed[id] = true
				m.reads[x.Sel.Name] = true
			}
		case *ast.Ident:
			if isRecv(x) != nil && !consumed[x] {
				// Bare receiver value use (`s := *r`, `return *r`,
				// `fn(r)`): every field is (at least) read.
				m.allRead = true
			}
		}
		return true
	})
	return m
}

func sortedKeys(m map[string]*structDecl) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
