// Negative fixture: the injected-clock pattern internal/obs uses. A
// Clock function is handed in from the binary's edge; library code reads
// time only through it, so walltime has nothing to flag — the direct
// time.Now/time.Since calls live outside internal/ entirely.
package fixture

// Clock supplies seconds from an arbitrary epoch.
type Clock func() float64

// Stopped returns a clock pinned at zero (the library default: timing
// metrics read zero unless a real clock is injected).
func Stopped() Clock { return func() float64 { return 0 } }

// stage times one pipeline stage against whatever clock it was given.
type stage struct {
	clock Clock
	start float64
}

func newStage(c Clock) *stage {
	if c == nil {
		c = Stopped()
	}
	return &stage{clock: c}
}

func (s *stage) begin()           { s.start = s.clock() }
func (s *stage) elapsed() float64 { return s.clock() - s.start }
