// Negative fixture: Duration arithmetic and constants never touch the
// host clock.
package fixture

import "time"

const tick = 4 * time.Millisecond

func horizon(d time.Duration) time.Duration { return d + tick }

func seconds(d time.Duration) float64 { return d.Seconds() }
