// Positive fixture: wall-clock reads in library code must fire.
package fixture

import "time"

func stamp() time.Time {
	return time.Now() // want walltime
}

func pause() {
	time.Sleep(time.Millisecond) // want walltime
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want walltime
}

func poll() <-chan time.Time {
	return time.After(time.Second) // want walltime
}
