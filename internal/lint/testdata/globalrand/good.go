// Negative fixture: injected-generator use and constructors are legal.
package fixture

import "math/rand"

func rollFrom(rng *rand.Rand) float64 {
	return rng.Float64()
}

func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

type fakeSource struct{}

func (fakeSource) Float64() float64 { return 0.5 }

// A local variable named rand must not be mistaken for the package.
func shadowed() float64 {
	rand := fakeSource{}
	return rand.Float64()
}
