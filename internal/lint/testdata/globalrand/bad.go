// Positive fixture: package-level math/rand draws must fire.
package fixture

import "math/rand"

func roll() float64 {
	return rand.Float64() // want globalrand
}

func pick(n int) int {
	return rand.Intn(n) // want globalrand
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want globalrand
}
