// Positive fixture: the annotated field is touched without the lock.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bump() {
	c.n++ // want mutexheld
}

func (c *counter) read() int {
	return c.n // want mutexheld
}
