// Negative fixture: locking methods and *Locked helpers are clean.
package fixture

import "sync"

type gauge struct {
	mu sync.Mutex
	// v is the current reading. guarded by mu.
	v    int
	name string // not guarded: immutable after construction
}

func (g *gauge) set(x int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = x
}

func (g *gauge) get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.vLocked()
}

func (g *gauge) vLocked() int { return g.v }

func (g *gauge) label() string { return g.name }
