// Positive fixture: panic in plain library functions must fire.
package fixture

func parse(s string) int {
	if s == "" {
		panic("empty input") // want panicfree
	}
	return len(s)
}

func viaClosure(xs []int) func() {
	return func() {
		panic("from closure") // want panicfree
	}
}
