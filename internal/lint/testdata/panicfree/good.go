// Negative fixture: init and Must* keep their conventional panics.
package fixture

func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

func mustPositive(x int) int {
	if x <= 0 {
		panic("not positive")
	}
	return x
}

func init() {
	if false {
		panic("unreachable")
	}
}
