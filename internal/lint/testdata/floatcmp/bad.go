// Positive fixture: every line marked "want floatcmp" must fire.
package fixture

func equalParts(a, b float64) bool {
	return a == b // want floatcmp
}

func notEqual(a, b float32) bool {
	return a != b // want floatcmp
}

func nanIdiom(x float64) bool {
	return x != x // want floatcmp
}

func literalCompare(xs []float64) bool {
	return xs[0] == 1.5 // want floatcmp
}

func derivedCompare(a, b float64) bool {
	sum := a + b
	return sum == 0 // want floatcmp
}
