// Negative fixture: nothing here may fire.
package fixture

import "math"

func closeEnough(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func intEqual(a, b int) bool { return a == b }

func strEqual(a, b string) bool { return a == b }

func ordered(a, b float64) bool { return a < b }
