// Test files are exempt: exact compares are legitimate in assertions.
package fixture

func exactEqualForTests(a, b float64) bool { return a == b }
