// Negative fixture: nothing here may fire. Complete pairs, exempt field
// types, value-receiver writes, whole-receiver copies, delegated
// capture, the copy builtin, and reasoned suppressions are all fine.
package fixture

import "sync"

// machine: sync/func fields are exempt; scratch carries a reasoned
// suppression; state round-trips.
type machine struct {
	mu    sync.Mutex
	state int
	obs   func(int)
	//lint:allow snapshotcomplete scratch, rebuilt from inputs every step
	scratch []int
}

func (m *machine) step() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state++
	m.scratch = m.scratch[:0]
	if m.obs != nil {
		m.obs(m.state)
	}
}

type machineState struct{ state int }

func (m *machine) Snapshot() machineState { return machineState{state: m.state} }
func (m *machine) Restore(s machineState) { m.state = s.state }

// blob: y is written only through a value receiver, which mutates a
// copy — not a mutation of the receiver.
type blob struct {
	x float64
	y float64
}

func (b blob) withY(v float64) blob {
	b.y = v
	return b
}

func (b *blob) bump() { b.x++ }

type blobState struct{ x float64 }

func (b *blob) Snapshot() blobState { return blobState{x: b.x} }
func (b *blob) Restore(s blobState) { b.x = s.x }

// simple: whole-receiver copy captures and restores every field at once.
type simple struct{ a, b int }

func (s *simple) incA() { s.a++ }
func (s *simple) incB() { s.b++ }

func (s *simple) Snapshot() simple    { return *s }
func (s *simple) Restore(from simple) { *s = from }

// window: the copy builtin writes its destination, so element-wise
// buffer restores count.
type window struct {
	buf []float64
	idx int
}

func (w *window) push(x float64) {
	w.buf[w.idx] = x
	w.idx = (w.idx + 1) % len(w.buf)
}

type windowState struct {
	buf []float64
	idx int
}

func (w *window) Snapshot() windowState {
	s := windowState{idx: w.idx, buf: make([]float64, len(w.buf))}
	copy(s.buf, w.buf)
	return s
}

func (w *window) Restore(s windowState) {
	copy(w.buf, s.buf)
	w.idx = s.idx
}

// trace: Snapshot delegates to a same-receiver helper; the transitive
// read still counts.
type trace struct {
	events []string
	n      int
}

func (t *trace) add(e string) {
	t.events = append(t.events, e)
	t.n++
}

func (t *trace) copyEvents() []string {
	out := make([]string, len(t.events))
	copy(out, t.events)
	return out
}

type traceState struct {
	events []string
	n      int
}

func (t *trace) Snapshot() traceState { return traceState{events: t.copyEvents(), n: t.n} }
func (t *trace) Restore(s traceState) {
	t.events = s.events
	t.n = s.n
}

// freeform has no capture/restore pair: out of scope.
type freeform struct{ n int }

func (f *freeform) inc() { f.n++ }
