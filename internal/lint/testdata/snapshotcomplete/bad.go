// Positive fixture: every field marked "want snapshotcomplete" must
// fire — it is mutated by a pointer-receiver method outside the
// capture/restore pair but missing from one or both sides.
package fixture

// counter: stamp is mutated but appears in neither Snapshot nor Restore.
type counter struct {
	n     int
	stamp float64 // want snapshotcomplete
}

func (c *counter) bump(t float64) {
	c.n++
	c.stamp = t
}

type counterSnapshot struct{ n int }

func (c *counter) Snapshot() counterSnapshot { return counterSnapshot{n: c.n} }
func (c *counter) Restore(s counterSnapshot) { c.n = s.n }

// gauge: peak is restored but never captured, so every fork resurrects
// the parent's peak instead of its own.
type gauge struct {
	v    float64
	peak float64 // want snapshotcomplete
}

func (g *gauge) set(x float64) {
	g.v = x
	if x > g.peak {
		g.peak = x
	}
}

type gaugeState struct{ v, peak float64 }

func (g *gauge) State() gaugeState { return gaugeState{v: g.v} }
func (g *gauge) SetState(s gaugeState) {
	g.v = s.v
	g.peak = s.peak
}

// ring: idx is captured but not restored — the lowercase pair names are
// recognized too.
type ring struct {
	buf []int
	idx int // want snapshotcomplete
}

func (r *ring) push(x int) {
	r.buf[r.idx%len(r.buf)] = x
	r.idx++
}

type ringState struct {
	buf []int
	idx int
}

func (r *ring) snapshot() ringState {
	s := ringState{idx: r.idx, buf: make([]int, len(r.buf))}
	copy(s.buf, r.buf)
	return s
}

func (r *ring) restore(s ringState) {
	copy(r.buf, s.buf)
}

// latch: the mutation hides behind a same-receiver helper chain; the
// transitive write still counts.
type latch struct {
	armed bool // want snapshotcomplete
	fired bool
}

func (l *latch) observe(hot bool) {
	if hot {
		l.trip()
	}
}

func (l *latch) trip() {
	l.armed = true
	l.fired = true
}

type latchState struct{ fired bool }

func (l *latch) Snapshot() latchState { return latchState{fired: l.fired} }
func (l *latch) Restore(s latchState) { l.fired = s.fired }
