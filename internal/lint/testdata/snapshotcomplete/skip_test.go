// Test files are exempt: test doubles need not round-trip snapshots.
package fixture

type testOnly struct {
	a int
	b int
}

func (t *testOnly) bump()         { t.b++ }
func (t *testOnly) Snapshot() int { return t.a }
func (t *testOnly) Restore(v int) { t.a = v }
