// Positive fixture: every line marked "want goroutinespawn" must fire.
package fixture

type worker struct{ done chan struct{} }

func (w worker) run() {}

func spawnClosure(results chan int) {
	go func() { results <- 1 }() // want goroutinespawn
}

func spawnMethod(w worker) {
	go w.run() // want goroutinespawn
}

func spawnNamed(f func()) {
	go f() // want goroutinespawn
}
