// Negative fixture: plain calls, defers, and function values are fine —
// only the go statement spawns.
package fixture

func runInline(f func()) {
	defer f()
	f()
}

func passAround(f func()) func() {
	return f
}
