// Test files are exempt: tests may spawn goroutines (timeouts, racers).
package fixture

func spawnInTest(done chan struct{}) {
	go func() { close(done) }()
}
