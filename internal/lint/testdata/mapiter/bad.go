// Positive fixture: every line marked "want mapiter" must fire.
package fixture

import "sort"

func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want mapiter
		total += v
	}
	return total
}

func firstKey(m map[int]bool) int {
	for k := range m { // want mapiter
		return k
	}
	return -1
}

func filteredCollect(m map[string]int) []string {
	// The append is conditional, so iteration order decides the slice
	// order: not the exempt collect idiom.
	out := make([]string, 0, len(m))
	for k, v := range m { // want mapiter
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func keyAndValue(m map[string]float64) float64 {
	var acc float64
	for _, v := range m { // want mapiter
		acc += v
	}
	return acc
}
