// Negative fixture: nothing here may fire. Sorted-key iteration, the
// key-collect idiom, keyless ranges, non-map ranges, and reasoned
// suppressions are all fine.
package fixture

import "sort"

func sortedIteration(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func keylessCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func sliceRange(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}

func reasonedExemption(m map[string]int) int {
	max := 0
	//lint:allow mapiter max is order-independent (commutative fold)
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}
