// Test files are exempt: assertion helpers may range maps freely.
package fixture

func mapRangeInTest(m map[string]int) int {
	n := 0
	for k := range m {
		n += len(k)
	}
	return n
}
