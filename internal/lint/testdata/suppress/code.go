// Suppression fixture: valid directives silence findings; malformed
// directives are findings themselves (and silence nothing).
package fixture

func sentinel(a, b float64) bool {
	//lint:allow floatcmp zero is an exact sentinel in this fixture
	if a == 0 {
		return true
	}
	return a == b //lint:allow floatcmp fixture exercises same-line suppression
}

func unreasoned(a float64) bool {
	return a == 1 //lint:allow floatcmp
}

func unknownCheck(a float64) bool {
	//lint:allow nosuchcheck because the check name is misspelled
	return a == 2
}
