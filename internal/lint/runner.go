package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// metaCheck names the pseudo-analyzer that reports malformed suppression
// directives. It cannot itself be suppressed.
const metaCheck = "lint"

// Runner loads packages and applies the analyzer suite. A Runner may be
// reused across calls to Run; the standard-library type-check cache is
// retained, which makes repeated runs (watch mode, benchmarks) much
// cheaper than the first.
type Runner struct {
	// ModPath and ModRoot identify the module under analysis. NewRunner
	// fills them from go.mod.
	ModPath string
	ModRoot string
	// Analyzers is the suite to apply; defaults to All().
	Analyzers []Analyzer
	// TreatAllInternal applies the internal-only analyzers to every
	// package regardless of directory. Used by fixture tests.
	TreatAllInternal bool
	// TreatAllSimCritical applies the sim-critical analyzers (mapiter,
	// goroutinespawn) to every package. Used by fixture tests.
	TreatAllSimCritical bool
	// ReportUnusedAllows reports //lint:allow directives that suppressed
	// nothing as findings of the meta check: a stale exemption hides the
	// next real violation on its line, so CI fails until it is deleted.
	ReportUnusedAllows bool

	fset *token.FileSet
	imp  *moduleImporter
}

// NewRunner builds a Runner for the module rooted at modRoot, reading
// the module path from go.mod.
func NewRunner(modRoot string) (*Runner, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Runner{ModPath: modPath, ModRoot: abs, Analyzers: All()}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Run lints the packages matched by the given patterns (directories, or
// recursive "dir/..." patterns, resolved relative to the process working
// directory) and returns the surviving findings sorted by position.
func (r *Runner) Run(patterns ...string) ([]Finding, error) {
	if r.fset == nil {
		r.fset = token.NewFileSet()
		r.imp = newModuleImporter(r.ModPath, r.ModRoot, r.fset)
	}
	if r.Analyzers == nil {
		r.Analyzers = All()
	}
	dirs, err := resolvePatterns(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, dir := range dirs {
		pkgs, err := r.load(dir)
		if err != nil {
			return nil, err
		}
		for _, pkg := range pkgs {
			findings = append(findings, r.lintPackage(pkg)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return findings, nil
}

// resolvePatterns expands "dir/..." patterns into the directories that
// contain Go files, skipping testdata, vendor, and hidden directories.
func resolvePatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		root, recursive := strings.CutSuffix(p, "...")
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// load parses every Go file in dir (including tests, which most
// analyzers then skip) and type-checks the non-test slice.
func (r *Runner) load(dir string) ([]*Package, error) {
	astPkgs, err := parser.ParseDir(r.fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath := r.ModPath
	internal := r.TreatAllInternal
	if rel, err := filepath.Rel(r.ModRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel != "." {
			importPath = r.ModPath + "/" + filepath.ToSlash(rel)
		}
		internal = internal || rel == "internal" || strings.HasPrefix(filepath.ToSlash(rel), "internal/")
	}
	base := internalBase(importPath)
	critical := r.TreatAllSimCritical || simCriticalPkgs[base]
	noGo := r.TreatAllSimCritical || (base != "" && goroutineFreePkgs(base))

	var pkgs []*Package
	for name, astPkg := range astPkgs {
		pkg := &Package{
			ImportPath:    importPath,
			Dir:           dir,
			Internal:      internal,
			SimCritical:   critical,
			GoroutineFree: noGo,
			Fset:          r.fset,
		}
		if strings.HasSuffix(name, "_test") {
			// External test package: same import path, test files only.
			pkg.ImportPath += "_test"
		}
		paths := make([]string, 0, len(astPkg.Files))
		for p := range astPkg.Files {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			af := astPkg.Files[p]
			pkg.Files = append(pkg.Files, &File{
				Path:    p,
				AST:     af,
				IsTest:  strings.HasSuffix(p, "_test.go"),
				Imports: importNames(af),
			})
		}
		r.imp.typeCheck(pkg)
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// importNames maps each file-local import name to its import path.
// Dot and blank imports are skipped — the package-qualified analyzers
// cannot see through them.
func importNames(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		m[name] = path
	}
	return m
}

// lintPackage runs the suite over one package: suppression-directive
// parsing, the shared per-file AST walk for node analyzers, then the
// package-level analyzers, and finally suppression filtering.
func (r *Runner) lintPackage(pkg *Package) []Finding {
	var raw []Finding
	reportFixAs := func(check string) FixReportFunc {
		return func(pos token.Pos, fix *Fix, format string, args ...any) {
			raw = append(raw, Finding{
				Pos:     r.fset.Position(pos),
				Check:   check,
				Message: fmt.Sprintf(format, args...),
				Fix:     fix,
			})
		}
	}
	reportAs := func(check string) ReportFunc {
		fr := reportFixAs(check)
		return func(pos token.Pos, format string, args ...any) {
			fr(pos, nil, format, args...)
		}
	}

	// Directives are validated against the full registry, not the
	// enabled suite: disabling an analyzer must not turn its (valid)
	// suppressions into unknown-check findings.
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name()] = true
	}
	for _, a := range r.Analyzers {
		known[a.Name()] = true
	}
	for _, f := range pkg.Files {
		f.allows = nil
		parseAllows(f, r.fset, known, reportAs(metaCheck))
	}

	for _, f := range pkg.Files {
		var visitors []VisitFunc
		for _, a := range r.Analyzers {
			var v VisitFunc
			switch na := a.(type) {
			case FixNodeAnalyzer:
				v = na.FixVisitor(pkg, f, reportFixAs(a.Name()))
			case NodeAnalyzer:
				v = na.Visitor(pkg, f, reportAs(a.Name()))
			default:
				continue
			}
			if v != nil {
				visitors = append(visitors, v)
			}
		}
		if len(visitors) == 0 {
			continue
		}
		// The shared walk: one traversal per file no matter how many
		// analyzers are enabled.
		var stack []ast.Node
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			for _, v := range visitors {
				v(n, stack)
			}
			return true
		})
	}

	for _, a := range r.Analyzers {
		if pa, ok := a.(PackageAnalyzer); ok {
			pa.CheckPackage(pkg, reportAs(a.Name()))
		}
	}

	// Apply suppression directives. Meta findings (malformed directives)
	// are never suppressable.
	byFile := map[string]*File{}
	for _, f := range pkg.Files {
		byFile[f.Path] = f
	}
	findings := raw[:0]
	for _, fd := range raw {
		if fd.Check != metaCheck {
			if f := byFile[fd.Pos.Filename]; f != nil && f.allowed(fd.Check, fd.Pos.Line) {
				continue
			}
		}
		findings = append(findings, fd)
	}

	// A directive that suppressed nothing is stale: the code it excused
	// changed underneath it, and it would silently excuse the NEXT
	// violation on its line. Reported under the meta check so it cannot
	// itself be suppressed.
	if r.ReportUnusedAllows {
		for _, f := range pkg.Files {
			for _, a := range f.allows {
				if !a.used {
					findings = append(findings, Finding{
						Pos:   r.fset.Position(a.pos),
						Check: metaCheck,
						Message: fmt.Sprintf("unused %s %s directive: no %s finding on this or the next line; delete it",
							allowPrefix, a.check, a.check),
					})
				}
			}
		}
	}
	return findings
}
