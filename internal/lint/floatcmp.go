package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point expressions in
// non-test code. The EKF, physics integration, and result aggregation
// all operate on accumulated floating-point state; exact equality on
// such values is almost always a latent bug (it silently flips with any
// reordering of arithmetic) and must be replaced by a tolerance compare
// — or explicitly exempted where a bit-exact sentinel or sparsity check
// is intended.
type FloatCmp struct{}

func (FloatCmp) Name() string { return "floatcmp" }
func (FloatCmp) Doc() string {
	return "flag ==/!= between floating-point expressions outside tests; use tolerance compares"
}

func (FloatCmp) Visitor(pkg *Package, f *File, report ReportFunc) VisitFunc {
	if f.IsTest {
		return nil
	}
	return func(n ast.Node, _ []ast.Node) {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		if !isFloat(pkg.TypesInfo.TypeOf(be.X)) && !isFloat(pkg.TypesInfo.TypeOf(be.Y)) {
			return
		}
		if sameExpr(be.X, be.Y) {
			report(be.OpPos, "floating-point self-comparison; use math.IsNaN")
			return
		}
		report(be.OpPos, "floating-point %s comparison; use a tolerance (e.g. mathx.ApproxEqual)", be.Op)
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports the x != x NaN-check idiom (identical identifier or
// selector chains on both sides).
func sameExpr(x, y ast.Expr) bool {
	switch xv := x.(type) {
	case *ast.Ident:
		yv, ok := y.(*ast.Ident)
		return ok && xv.Name == yv.Name
	case *ast.SelectorExpr:
		yv, ok := y.(*ast.SelectorExpr)
		return ok && xv.Sel.Name == yv.Sel.Name && sameExpr(xv.X, yv.X)
	}
	return false
}
