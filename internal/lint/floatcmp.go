package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp flags == and != between floating-point expressions in
// non-test code. The EKF, physics integration, and result aggregation
// all operate on accumulated floating-point state; exact equality on
// such values is almost always a latent bug (it silently flips with any
// reordering of arithmetic) and must be replaced by a tolerance compare
// — or explicitly exempted where a bit-exact sentinel or sparsity check
// is intended.
//
// Where the file already imports uavres/internal/mathx (or math, for the
// x != x NaN idiom), the finding carries a mechanical fix to
// mathx.ApproxEqual / math.IsNaN.
type FloatCmp struct{}

func (FloatCmp) Name() string { return "floatcmp" }
func (FloatCmp) Doc() string {
	return "flag ==/!= between floating-point expressions outside tests; use tolerance compares"
}

func (FloatCmp) FixVisitor(pkg *Package, f *File, report FixReportFunc) VisitFunc {
	if f.IsTest {
		return nil
	}
	// Fixes only rewrite to packages the file already imports: adding an
	// import for a non-dominant path is not worth the rewrite machinery,
	// and inside mathx itself ApproxEqual is unqualified.
	mathxName, inMathx := importedName(pkg, f, "uavres/internal/mathx")
	mathName, _ := importedName(pkg, f, "math")
	return func(n ast.Node, _ []ast.Node) {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return
		}
		if !isFloat(pkg.TypesInfo.TypeOf(be.X)) && !isFloat(pkg.TypesInfo.TypeOf(be.Y)) {
			return
		}
		if sameExpr(be.X, be.Y) {
			var fix *Fix
			if mathName != "" && be.Op == token.NEQ {
				if src, ok := exprString(pkg.Fset, be.X); ok {
					fix = replaceExprFix(pkg, be, fmt.Sprintf("%s.IsNaN(%s)", mathName, src),
						"rewrite the x != x idiom as math.IsNaN")
				}
			}
			report(be.OpPos, fix, "floating-point self-comparison; use math.IsNaN")
			return
		}
		var fix *Fix
		if mathxName != "" || inMathx {
			xs, okX := exprString(pkg.Fset, be.X)
			ys, okY := exprString(pkg.Fset, be.Y)
			if okX && okY {
				call := fmt.Sprintf("ApproxEqual(%s, %s, 1e-9)", xs, ys)
				if !inMathx {
					call = mathxName + "." + call
				}
				if be.Op == token.NEQ {
					call = "!" + call
				}
				fix = replaceExprFix(pkg, be, call, "compare with a 1e-9 tolerance")
			}
		}
		report(be.OpPos, fix, "floating-point %s comparison; use a tolerance (e.g. mathx.ApproxEqual)", be.Op)
	}
}

// importedName returns the local name under which the file imports path
// ("" when it does not), and whether the file IS that package (by
// import-path suffix match on the package's own path).
func importedName(pkg *Package, f *File, path string) (string, bool) {
	if pkg.ImportPath == path || strings.TrimSuffix(pkg.ImportPath, "_test") == path {
		return "", true
	}
	for name, p := range f.Imports {
		if p == path {
			return name, false
		}
	}
	return "", false
}

// replaceExprFix builds a fix substituting the whole expression.
func replaceExprFix(pkg *Package, e ast.Expr, newText, msg string) *Fix {
	return &Fix{
		Message: msg,
		Edits: []TextEdit{{
			Start:   pkg.Fset.Position(e.Pos()),
			End:     pkg.Fset.Position(e.End()),
			NewText: newText,
		}},
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports the x != x NaN-check idiom (identical identifier or
// selector chains on both sides).
func sameExpr(x, y ast.Expr) bool {
	switch xv := x.(type) {
	case *ast.Ident:
		yv, ok := y.(*ast.Ident)
		return ok && xv.Name == yv.Name
	case *ast.SelectorExpr:
		yv, ok := y.(*ast.SelectorExpr)
		return ok && xv.Sel.Name == yv.Sel.Name && sameExpr(xv.X, yv.X)
	}
	return false
}
