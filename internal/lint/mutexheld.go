package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// MutexHeld is a heuristic lock-discipline check. A struct field whose
// declaration carries a "guarded by <mu>" comment must only be touched
// by methods that lock <mu> somewhere in their body (directly or via
// defer). Methods whose name ends in "Locked" are exempt by convention:
// their documented contract is that the caller already holds the lock.
// This is deliberately method-granular — it does not prove the access
// happens under the critical section — but it catches the common
// regression of adding a fast-path accessor and forgetting the lock.
type MutexHeld struct{}

func (MutexHeld) Name() string { return "mutexheld" }
func (MutexHeld) Doc() string {
	return `flag "guarded by mu" fields accessed in methods that never lock mu`
}

var guardedBy = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotated field of one struct type.
type guardedField struct {
	structName string
	field      string
	mutex      string
}

func (MutexHeld) CheckPackage(pkg *Package, report ReportFunc) {
	guards := map[string]map[string]string{} // struct -> field -> mutex
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		collectGuards(f.AST, guards)
	}
	if len(guards) == 0 {
		return
	}
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(fd, guards, report)
		}
	}
}

// collectGuards scans struct declarations for annotated fields. The
// annotation may sit in the field's trailing line comment or its doc
// comment.
func collectGuards(file *ast.File, guards map[string]map[string]string) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if guards[ts.Name.Name] == nil {
						guards[ts.Name.Name] = map[string]string{}
					}
					guards[ts.Name.Name][name.Name] = mu
				}
			}
		}
	}
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedBy.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkMethod reports guarded-field accesses in methods of an annotated
// struct that never lock the corresponding mutex.
func checkMethod(fd *ast.FuncDecl, guards map[string]map[string]string, report ReportFunc) {
	recvType := receiverTypeName(fd)
	fields := guards[recvType]
	if fields == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	recvName := ""
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		recvName = names[0].Name
	}
	if recvName == "" || recvName == "_" {
		return
	}

	locked := map[string]bool{} // mutex name -> Lock/RLock called
	type access struct {
		sel   *ast.SelectorExpr
		mutex string
	}
	var accesses []access
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// recv.mu.Lock() / recv.mu.RLock(): the inner selector is
		// recv.mu, the outer picks the method.
		if inner, ok := sel.X.(*ast.SelectorExpr); ok {
			if id, ok := inner.X.(*ast.Ident); ok && id.Name == recvName {
				switch sel.Sel.Name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					locked[inner.Sel.Name] = true
				}
			}
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName {
			if mu, guarded := fields[sel.Sel.Name]; guarded {
				accesses = append(accesses, access{sel: sel, mutex: mu})
			}
		}
		return true
	})
	for _, a := range accesses {
		if locked[a.mutex] {
			continue
		}
		report(a.sel.Pos(), "%s.%s is guarded by %s, but method %s never locks it",
			recvType, a.sel.Sel.Name, a.mutex, fd.Name.Name)
	}
}

func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
