package lint

import (
	"go/ast"
	"strings"
)

// PanicFree forbids panic in internal/ library code. A panic in a sweep
// worker tears down the whole campaign instead of failing one case;
// library code must return errors. Conventional escape hatches remain:
// init functions and Must* constructors, whose documented contract is to
// panic on programmer error.
type PanicFree struct{}

func (PanicFree) Name() string { return "panicfree" }
func (PanicFree) Doc() string {
	return "forbid panic in internal/ library code outside init and Must* helpers"
}

func (PanicFree) Visitor(pkg *Package, f *File, report ReportFunc) VisitFunc {
	if f.IsTest || !pkg.Internal {
		return nil
	}
	return func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" || id.Obj != nil {
			return
		}
		// The nearest enclosing declared function decides the exemption;
		// a closure inside MustX is still MustX's contract.
		for i := len(stack) - 1; i >= 0; i-- {
			if fd, ok := stack[i].(*ast.FuncDecl); ok {
				name := fd.Name.Name
				if name == "init" || strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
					return
				}
				report(call.Pos(), "panic in library function %s; return an error "+
					"(panics abort the whole campaign, not one case)", name)
				return
			}
		}
		report(call.Pos(), "panic in package-level initializer; return an error or move into init")
	}
}
