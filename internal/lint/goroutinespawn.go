package lint

import (
	"go/ast"
)

// GoroutineSpawn forbids go statements in the deterministic simulation
// packages. A case's step sequence must depend only on its seed: a
// goroutine inside the per-case stack makes memory ordering and
// completion order scheduler-dependent, which silently breaks the
// checkpoint-and-fork bit-identity the campaign results rest on. The
// campaign runner (internal/core) owns the one sanctioned worker pool,
// and the serving layers (internal/telemetry, internal/uspace) are
// concurrent by design; everything else in internal/ must stay
// goroutine-free. This analyzer replaces the old `grep 'go func'` CI
// gate and, unlike it, also catches method-value spawns (`go m.run()`)
// and survives file renames.
type GoroutineSpawn struct{}

func (GoroutineSpawn) Name() string { return "goroutinespawn" }
func (GoroutineSpawn) Doc() string {
	return "forbid go statements outside the sanctioned concurrent packages (core, telemetry, uspace)"
}

func (GoroutineSpawn) Visitor(pkg *Package, f *File, report ReportFunc) VisitFunc {
	if f.IsTest || !pkg.GoroutineFree {
		return nil
	}
	return func(n ast.Node, _ []ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		report(g.Pos(), "go statement in goroutine-free package %s; per-case simulation "+
			"code must stay single-threaded (run concurrency through core.Runner)", pkg.ImportPath)
	}
}
