package lint

import (
	"go/ast"
)

// WallTime forbids wall-clock reads and sleeps in internal/ library
// code. Simulation time advances through the fixed-step scheduler; any
// dependence on the host clock makes replays, CI runs, and the paper's
// campaign figures depend on machine load. Wall time belongs in cmd/
// entry points and tests only.
type WallTime struct{}

func (WallTime) Name() string { return "walltime" }
func (WallTime) Doc() string {
	return "forbid time.Now/Since/Sleep (and timer constructors) in internal/; use sim time"
}

// wallFuncs are the time-package functions that couple code to the host
// clock or scheduler. time.Duration arithmetic and constants stay legal.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

func (WallTime) Visitor(pkg *Package, f *File, report ReportFunc) VisitFunc {
	if f.IsTest || !pkg.Internal {
		return nil
	}
	return func(n ast.Node, _ []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Obj != nil {
			return
		}
		if f.Imports[id.Name] != "time" || !wallFuncs[sel.Sel.Name] {
			return
		}
		report(sel.Pos(), "%s.%s reads the wall clock; simulation code must take time "+
			"from the scheduler so replays stay deterministic", id.Name, sel.Sel.Name)
	}
}
