// Package telemetry implements the flight-data distribution path of the
// paper's experimental platform (Fig. 1): a compact MAVLink-flavoured
// binary message codec, a TCP publish/subscribe broker (the "core broker"
// / "edge broker" pair), and a tracker client that feeds U-space with
// 1 Hz position reports.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Frame layout (little-endian payloads):
//
//	offset 0: magic (0xFD)
//	offset 1: payload length N
//	offset 2: sequence number
//	offset 3: system ID (drone/mission number)
//	offset 4: message ID
//	offset 5: payload (N bytes)
//	offset 5+N: CRC-16/CCITT over bytes [1, 5+N)
const (
	frameMagic    = 0xFD
	headerLen     = 5
	crcLen        = 2
	maxPayloadLen = 255
)

// Message IDs.
const (
	// MsgHeartbeat announces a live system.
	MsgHeartbeat uint8 = 0
	// MsgPosition carries the EKF position/velocity solution.
	MsgPosition uint8 = 33
	// MsgAttitude carries attitude and body rates.
	MsgAttitude uint8 = 30
	// MsgBubble carries the U-space bubble status.
	MsgBubble uint8 = 100
)

// Errors returned by the decoder.
var (
	ErrBadMagic   = errors.New("telemetry: bad frame magic")
	ErrBadCRC     = errors.New("telemetry: CRC mismatch")
	ErrShortFrame = errors.New("telemetry: short frame")
)

// Frame is one wire frame.
type Frame struct {
	Seq     uint8
	SysID   uint8
	MsgID   uint8
	Payload []byte
}

// crc16 computes CRC-16/CCITT-FALSE.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode serializes the frame.
func (f Frame) Encode() ([]byte, error) {
	if len(f.Payload) > maxPayloadLen {
		return nil, fmt.Errorf("telemetry: payload %d bytes exceeds %d", len(f.Payload), maxPayloadLen)
	}
	buf := make([]byte, headerLen+len(f.Payload)+crcLen)
	buf[0] = frameMagic
	buf[1] = uint8(len(f.Payload))
	buf[2] = f.Seq
	buf[3] = f.SysID
	buf[4] = f.MsgID
	copy(buf[headerLen:], f.Payload)
	crc := crc16(buf[1 : headerLen+len(f.Payload)])
	binary.LittleEndian.PutUint16(buf[headerLen+len(f.Payload):], crc)
	return buf, nil
}

// ReadFrame reads and validates one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != frameMagic {
		return Frame{}, ErrBadMagic
	}
	n := int(hdr[1])
	rest := make([]byte, n+crcLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, ErrShortFrame
		}
		return Frame{}, err
	}
	want := binary.LittleEndian.Uint16(rest[n:])
	crcInput := make([]byte, 0, headerLen-1+n)
	crcInput = append(crcInput, hdr[1:]...)
	crcInput = append(crcInput, rest[:n]...)
	if crc16(crcInput) != want {
		return Frame{}, ErrBadCRC
	}
	return Frame{Seq: hdr[2], SysID: hdr[3], MsgID: hdr[4], Payload: rest[:n]}, nil
}

// Heartbeat announces a live system and its state.
type Heartbeat struct {
	// TimeSec is the sender's sim time.
	TimeSec float64
	// Phase encodes the flight phase (mission-executor state).
	Phase uint8
}

// Position is the EKF navigation solution in the local NED frame.
type Position struct {
	TimeSec          float64
	X, Y, Z          float64 // m, NED
	VX, VY, VZ       float64 // m/s, NED
	AirspeedMS       float64
	WaypointsReached uint8
}

// Attitude is the vehicle attitude and body rates.
type Attitude struct {
	TimeSec          float64
	Roll, Pitch, Yaw float64 // rad
	P, Q, R          float64 // rad/s body rates
}

// Bubble is the U-space bubble status at a tracking instant.
type Bubble struct {
	TimeSec       float64
	DeviationM    float64
	InnerRadiusM  float64
	OuterRadiusM  float64
	InnerViolated bool
	OuterViolated bool
}

func putF64(b []byte, off int, v float64) int {
	binary.LittleEndian.PutUint64(b[off:], math.Float64bits(v))
	return off + 8
}

func getF64(b []byte, off int) (float64, int) {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:])), off + 8
}

// EncodeHeartbeat builds a heartbeat frame.
func EncodeHeartbeat(seq, sysID uint8, h Heartbeat) (Frame, error) {
	p := make([]byte, 9)
	off := putF64(p, 0, h.TimeSec)
	p[off] = h.Phase
	return Frame{Seq: seq, SysID: sysID, MsgID: MsgHeartbeat, Payload: p}, nil
}

// DecodeHeartbeat parses a heartbeat payload.
func DecodeHeartbeat(f Frame) (Heartbeat, error) {
	if f.MsgID != MsgHeartbeat || len(f.Payload) != 9 {
		return Heartbeat{}, fmt.Errorf("telemetry: not a heartbeat frame (msg %d, %d bytes)", f.MsgID, len(f.Payload))
	}
	var h Heartbeat
	var off int
	h.TimeSec, off = getF64(f.Payload, 0)
	h.Phase = f.Payload[off]
	return h, nil
}

// EncodePosition builds a position frame.
func EncodePosition(seq, sysID uint8, m Position) (Frame, error) {
	p := make([]byte, 8*8+1)
	off := 0
	for _, v := range []float64{m.TimeSec, m.X, m.Y, m.Z, m.VX, m.VY, m.VZ, m.AirspeedMS} {
		off = putF64(p, off, v)
	}
	p[off] = m.WaypointsReached
	return Frame{Seq: seq, SysID: sysID, MsgID: MsgPosition, Payload: p}, nil
}

// DecodePosition parses a position payload.
func DecodePosition(f Frame) (Position, error) {
	if f.MsgID != MsgPosition || len(f.Payload) != 8*8+1 {
		return Position{}, fmt.Errorf("telemetry: not a position frame (msg %d, %d bytes)", f.MsgID, len(f.Payload))
	}
	var m Position
	off := 0
	for _, dst := range []*float64{&m.TimeSec, &m.X, &m.Y, &m.Z, &m.VX, &m.VY, &m.VZ, &m.AirspeedMS} {
		*dst, off = getF64(f.Payload, off)
	}
	m.WaypointsReached = f.Payload[off]
	return m, nil
}

// EncodeAttitude builds an attitude frame.
func EncodeAttitude(seq, sysID uint8, m Attitude) (Frame, error) {
	p := make([]byte, 7*8)
	off := 0
	for _, v := range []float64{m.TimeSec, m.Roll, m.Pitch, m.Yaw, m.P, m.Q, m.R} {
		off = putF64(p, off, v)
	}
	return Frame{Seq: seq, SysID: sysID, MsgID: MsgAttitude, Payload: p}, nil
}

// DecodeAttitude parses an attitude payload.
func DecodeAttitude(f Frame) (Attitude, error) {
	if f.MsgID != MsgAttitude || len(f.Payload) != 7*8 {
		return Attitude{}, fmt.Errorf("telemetry: not an attitude frame (msg %d, %d bytes)", f.MsgID, len(f.Payload))
	}
	var m Attitude
	off := 0
	for _, dst := range []*float64{&m.TimeSec, &m.Roll, &m.Pitch, &m.Yaw, &m.P, &m.Q, &m.R} {
		*dst, off = getF64(f.Payload, off)
	}
	return m, nil
}

// EncodeBubble builds a bubble-status frame.
func EncodeBubble(seq, sysID uint8, m Bubble) (Frame, error) {
	p := make([]byte, 4*8+1)
	off := 0
	for _, v := range []float64{m.TimeSec, m.DeviationM, m.InnerRadiusM, m.OuterRadiusM} {
		off = putF64(p, off, v)
	}
	var flags uint8
	if m.InnerViolated {
		flags |= 1
	}
	if m.OuterViolated {
		flags |= 2
	}
	p[off] = flags
	return Frame{Seq: seq, SysID: sysID, MsgID: MsgBubble, Payload: p}, nil
}

// DecodeBubble parses a bubble-status payload.
func DecodeBubble(f Frame) (Bubble, error) {
	if f.MsgID != MsgBubble || len(f.Payload) != 4*8+1 {
		return Bubble{}, fmt.Errorf("telemetry: not a bubble frame (msg %d, %d bytes)", f.MsgID, len(f.Payload))
	}
	var m Bubble
	off := 0
	for _, dst := range []*float64{&m.TimeSec, &m.DeviationM, &m.InnerRadiusM, &m.OuterRadiusM} {
		*dst, off = getF64(f.Payload, off)
	}
	flags := f.Payload[off]
	m.InnerViolated = flags&1 != 0
	m.OuterViolated = flags&2 != 0
	return m, nil
}

// ReadFrameBytes decodes one frame from a byte slice (allocation-light
// counterpart of ReadFrame for benchmarks and in-memory paths).
func ReadFrameBytes(raw []byte) (Frame, error) {
	if len(raw) < headerLen+crcLen {
		return Frame{}, ErrShortFrame
	}
	if raw[0] != frameMagic {
		return Frame{}, ErrBadMagic
	}
	n := int(raw[1])
	if len(raw) < headerLen+n+crcLen {
		return Frame{}, ErrShortFrame
	}
	want := binary.LittleEndian.Uint16(raw[headerLen+n:])
	if crc16(raw[1:headerLen+n]) != want {
		return Frame{}, ErrBadCRC
	}
	return Frame{Seq: raw[2], SysID: raw[3], MsgID: raw[4], Payload: raw[headerLen : headerLen+n]}, nil
}
