package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"uavres/internal/obs"
)

// Connection roles, sent as the first byte after connect.
const (
	rolePublisher  = 'P'
	roleSubscriber = 'S'
)

// Broker is a TCP publish/subscribe fan-out for telemetry frames — the
// role the paper's core/edge brokers play between the vehicles and the
// tracking system. Publishers stream frames; every validated frame is
// forwarded to all connected subscribers. A subscriber that cannot keep
// up is disconnected rather than allowed to stall the fleet.
type Broker struct {
	ln net.Listener

	mu     sync.Mutex
	subs   map[int]*subscriber // guarded by mu
	nextID int                 // guarded by mu
	closed bool                // guarded by mu

	// statsCh is closed and replaced whenever a counter changes, waking
	// WaitStats callers. guarded by mu.
	statsCh chan struct{}

	wg sync.WaitGroup

	// Stats counters (read via Stats). guarded by mu.
	framesIn   int
	framesOut  int
	dropped    int
	publishers int
}

type subscriber struct {
	ch   chan []byte
	conn net.Conn
}

// BrokerStats is a snapshot of broker counters.
type BrokerStats struct {
	FramesIn    int
	FramesOut   int
	Dropped     int
	Subscribers int
	Publishers  int
}

// NewBroker starts a broker listening on addr (e.g. "127.0.0.1:0").
func NewBroker(addr string) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: broker listen: %w", err)
	}
	b := &Broker{ln: ln, subs: map[int]*subscriber{}, statsCh: make(chan struct{})}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// Stats returns a snapshot of the broker counters.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.statsLocked()
}

func (b *Broker) statsLocked() BrokerStats {
	return BrokerStats{
		FramesIn:    b.framesIn,
		FramesOut:   b.framesOut,
		Dropped:     b.dropped,
		Subscribers: len(b.subs),
		Publishers:  b.publishers,
	}
}

// RegisterMetrics re-exports the broker counters through reg as live
// gauges, evaluated at snapshot/scrape time (cmd/trackerd's /metrics).
// The gauges read Stats(), so they stay correct without a second set of
// counters to keep in sync.
func (b *Broker) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("telemetry_frames_in", func() float64 { return float64(b.Stats().FramesIn) })
	reg.GaugeFunc("telemetry_frames_out", func() float64 { return float64(b.Stats().FramesOut) })
	reg.GaugeFunc("telemetry_frames_dropped", func() float64 { return float64(b.Stats().Dropped) })
	reg.GaugeFunc("telemetry_subscribers", func() float64 { return float64(b.Stats().Subscribers) })
	reg.GaugeFunc("telemetry_publishers", func() float64 { return float64(b.Stats().Publishers) })
}

// notifyLocked wakes every WaitStats caller after a counter change.
func (b *Broker) notifyLocked() {
	close(b.statsCh)
	b.statsCh = make(chan struct{})
}

// WaitStats blocks until pred accepts a stats snapshot. It wakes on
// every counter change rather than polling, so callers (tests above all)
// synchronize on broker state without any timing assumptions. If the
// condition can never become true the call blocks forever — pair it with
// the test binary's deadline rather than a local timeout.
func (b *Broker) WaitStats(pred func(BrokerStats) bool) {
	for {
		b.mu.Lock()
		st := b.statsLocked()
		ch := b.statsCh
		b.mu.Unlock()
		if pred(st) {
			return
		}
		<-ch
	}
}

// Close shuts the broker down and waits for connection handlers to exit.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	for id, s := range b.subs {
		close(s.ch)
		delete(b.subs, id)
	}
	b.notifyLocked()
	b.mu.Unlock()
	err := b.ln.Close()
	b.wg.Wait()
	return err
}

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go b.handle(conn)
	}
}

func (b *Broker) handle(conn net.Conn) {
	defer b.wg.Done()
	defer conn.Close()

	role := make([]byte, 1)
	if _, err := conn.Read(role); err != nil {
		return
	}
	switch role[0] {
	case rolePublisher:
		b.handlePublisher(conn)
	case roleSubscriber:
		b.handleSubscriber(conn)
	}
}

func (b *Broker) handlePublisher(conn net.Conn) {
	b.mu.Lock()
	b.publishers++
	b.notifyLocked()
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		b.publishers--
		b.notifyLocked()
		b.mu.Unlock()
	}()

	r := bufio.NewReader(conn)
	for {
		f, err := ReadFrame(r)
		if err != nil {
			// Corrupt frames poison the stream framing; drop the
			// connection (the publisher will reconnect with clean state).
			return
		}
		raw, err := f.Encode()
		if err != nil {
			return
		}
		b.fanOut(raw)
	}
}

func (b *Broker) fanOut(raw []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.framesIn++
	for id, s := range b.subs {
		select {
		case s.ch <- raw:
			b.framesOut++
		default:
			// Slow subscriber: disconnect rather than stall or buffer
			// unboundedly.
			b.dropped++
			close(s.ch)
			delete(b.subs, id)
		}
	}
	b.notifyLocked()
}

func (b *Broker) handleSubscriber(conn net.Conn) {
	s := &subscriber{ch: make(chan []byte, 256), conn: conn}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = s
	b.notifyLocked()
	b.mu.Unlock()

	defer func() {
		b.mu.Lock()
		if cur, stillThere := b.subs[id]; stillThere && cur == s {
			close(s.ch)
			delete(b.subs, id)
			b.notifyLocked()
		}
		b.mu.Unlock()
	}()

	w := bufio.NewWriter(conn)
	for raw := range s.ch {
		if _, err := w.Write(raw); err != nil {
			return
		}
		if len(s.ch) == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
	_ = w.Flush()
}

// Publisher is a client-side frame publisher.
type Publisher struct {
	conn net.Conn
	mu   sync.Mutex
	w    *bufio.Writer // guarded by mu
	seq  uint8         // guarded by mu
}

// NewPublisher connects to a broker as a publisher.
func NewPublisher(addr string) (*Publisher, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: publisher dial: %w", err)
	}
	if _, err := conn.Write([]byte{rolePublisher}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("telemetry: publisher handshake: %w", err)
	}
	return &Publisher{conn: conn, w: bufio.NewWriter(conn)}, nil
}

// Publish sends one frame, stamping the sequence number.
func (p *Publisher) Publish(f Frame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f.Seq = p.seq
	p.seq++
	raw, err := f.Encode()
	if err != nil {
		return err
	}
	if _, err := p.w.Write(raw); err != nil {
		return fmt.Errorf("telemetry: publish: %w", err)
	}
	return p.w.Flush()
}

// Close closes the connection.
func (p *Publisher) Close() error { return p.conn.Close() }

// Subscriber is a client-side frame receiver.
type Subscriber struct {
	conn net.Conn
	r    *bufio.Reader
}

// NewSubscriber connects to a broker as a subscriber.
func NewSubscriber(addr string) (*Subscriber, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: subscriber dial: %w", err)
	}
	if _, err := conn.Write([]byte{roleSubscriber}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("telemetry: subscriber handshake: %w", err)
	}
	return &Subscriber{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Next blocks until the next frame arrives or the connection closes.
func (s *Subscriber) Next() (Frame, error) {
	f, err := ReadFrame(s.r)
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return Frame{}, err
		}
		return Frame{}, err
	}
	return f, nil
}

// Close closes the connection.
func (s *Subscriber) Close() error { return s.conn.Close() }
