package telemetry

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"uavres/internal/obs"
)

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	f := Frame{Seq: 7, SysID: 3, MsgID: MsgPosition, Payload: []byte{1, 2, 3, 4, 5}}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.SysID != 3 || got.MsgID != MsgPosition || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	f := Frame{Payload: make([]byte, 300)}
	if _, err := f.Encode(); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	raw := []byte{0x55, 0, 0, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameCorruptCRC(t *testing.T) {
	f := Frame{Seq: 1, SysID: 2, MsgID: 3, Payload: []byte{9, 9}}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	raw[6] ^= 0xFF // flip a payload bit
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadCRC) {
		t.Errorf("err = %v, want ErrBadCRC", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	f := Frame{MsgID: 1, Payload: []byte{1, 2, 3}}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(raw[:len(raw)-3])); !errors.Is(err, ErrShortFrame) {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("crc16 = %#x, want 0x29B1", got)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	hb := Heartbeat{TimeSec: 12.5, Phase: 2}
	f, err := EncodeHeartbeat(1, 4, hb)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeHeartbeat(f); err != nil || got != hb {
		t.Errorf("heartbeat round trip = %+v, %v", got, err)
	}

	pos := Position{TimeSec: 90, X: 1.5, Y: -2.5, Z: -15, VX: 3, VY: -1, VZ: 0.1, AirspeedMS: 3.2, WaypointsReached: 2}
	f, err = EncodePosition(2, 4, pos)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodePosition(f); err != nil || got != pos {
		t.Errorf("position round trip = %+v, %v", got, err)
	}

	att := Attitude{TimeSec: 90, Roll: 0.1, Pitch: -0.05, Yaw: 1.7, P: 0.01, Q: 0, R: -0.02}
	f, err = EncodeAttitude(3, 4, att)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeAttitude(f); err != nil || got != att {
		t.Errorf("attitude round trip = %+v, %v", got, err)
	}

	bub := Bubble{TimeSec: 91, DeviationM: 6.2, InnerRadiusM: 5.8, OuterRadiusM: 5.8, InnerViolated: true}
	f, err = EncodeBubble(4, 4, bub)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeBubble(f); err != nil || got != bub {
		t.Errorf("bubble round trip = %+v, %v", got, err)
	}
}

func TestDecodeWrongMessageType(t *testing.T) {
	f, err := EncodeHeartbeat(0, 1, Heartbeat{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePosition(f); err == nil {
		t.Error("heartbeat decoded as position")
	}
	if _, err := DecodeBubble(f); err == nil {
		t.Error("heartbeat decoded as bubble")
	}
	if _, err := DecodeAttitude(f); err == nil {
		t.Error("heartbeat decoded as attitude")
	}
	pf, err := EncodePosition(0, 1, Position{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeHeartbeat(pf); err == nil {
		t.Error("position decoded as heartbeat")
	}
}

// Property: any frame content survives an encode/decode round trip.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq, sys, msg uint8, payload []byte) bool {
		if len(payload) > maxPayloadLen {
			payload = payload[:maxPayloadLen]
		}
		in := Frame{Seq: seq, SysID: sys, MsgID: msg, Payload: payload}
		raw, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return false
		}
		return out.Seq == seq && out.SysID == sys && out.MsgID == msg && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: position payloads round-trip exactly for arbitrary values.
func TestPositionRoundTripProperty(t *testing.T) {
	f := func(x, y, z, vx float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) || math.IsNaN(vx) {
			return true // NaN != NaN; skip
		}
		in := Position{X: x, Y: y, Z: z, VX: vx}
		fr, err := EncodePosition(0, 1, in)
		if err != nil {
			return false
		}
		out, err := DecodePosition(fr)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBrokerEndToEnd(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := NewSubscriber(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := NewPublisher(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Give the broker a moment to register the subscriber.
	b.WaitStats(func(st BrokerStats) bool { return st.Subscribers == 1 })

	want := Position{TimeSec: 42, X: 1, Y: 2, Z: -15}
	f, err := EncodePosition(0, 9, want)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(f); err != nil {
		t.Fatal(err)
	}

	got, err := sub.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.SysID != 9 {
		t.Errorf("sysID = %d", got.SysID)
	}
	pos, err := DecodePosition(got)
	if err != nil || pos != want {
		t.Errorf("received %+v, %v", pos, err)
	}
}

func TestBrokerMultipleSubscribers(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	subs := make([]*Subscriber, 3)
	for i := range subs {
		s, err := NewSubscriber(b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		subs[i] = s
	}
	b.WaitStats(func(st BrokerStats) bool { return st.Subscribers == 3 })

	pub, err := NewPublisher(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	f, err := EncodeHeartbeat(0, 1, Heartbeat{TimeSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(f); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("subscriber %d: %v", i, err)
		}
		if got.MsgID != MsgHeartbeat {
			t.Errorf("subscriber %d got msg %d", i, got.MsgID)
		}
	}
}

func TestBrokerSequenceStamping(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sub, err := NewSubscriber(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	b.WaitStats(func(st BrokerStats) bool { return st.Subscribers == 1 })

	pub, err := NewPublisher(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 3; i++ {
		f, err := EncodeHeartbeat(0, 1, Heartbeat{TimeSec: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		got, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if int(got.Seq) != i {
			t.Errorf("frame %d has seq %d", i, got.Seq)
		}
	}
}

func TestBrokerDisconnectedPublisherOnCorruptStream(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	pub, err := NewPublisher(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	b.WaitStats(func(st BrokerStats) bool { return st.Publishers == 1 })

	// Inject a full header of garbage directly: the broker must drop the
	// connection on the bad magic byte.
	if _, err := pub.conn.Write([]byte{0x00, 0x01, 0x02, 0x03, 0x04}); err != nil {
		t.Fatal(err)
	}
	b.WaitStats(func(st BrokerStats) bool { return st.Publishers == 0 })
}

func TestBrokerCloseIdempotent(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestBrokerRegisterMetrics: the broker's counters are re-exported as live
// gauges through an obs registry, tracking Stats() without a second set of
// counters.
func TestBrokerRegisterMetrics(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	reg := obs.NewRegistry()
	b.RegisterMetrics(reg)

	gauge := func(s obs.Snapshot, name string) (float64, bool) {
		for _, g := range s.Gauges {
			if g.Name == name {
				return g.Value, true
			}
		}
		return 0, false
	}

	s := reg.Snapshot()
	for _, name := range []string{
		"telemetry_frames_in", "telemetry_frames_out", "telemetry_frames_dropped",
		"telemetry_subscribers", "telemetry_publishers",
	} {
		if v, found := gauge(s, name); !found || v != 0 {
			t.Errorf("%s = %v, %v; want 0, true", name, v, found)
		}
	}

	sub, err := NewSubscriber(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := NewPublisher(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	b.WaitStats(func(st BrokerStats) bool { return st.Subscribers == 1 && st.Publishers == 1 })

	f, err := EncodePosition(0, 9, Position{TimeSec: 1, X: 1, Y: 2, Z: -15})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(f); err != nil {
		t.Fatal(err)
	}
	b.WaitStats(func(st BrokerStats) bool { return st.FramesIn == 1 && st.FramesOut == 1 })

	s = reg.Snapshot()
	if v, _ := gauge(s, "telemetry_frames_in"); v != 1 {
		t.Errorf("frames_in gauge = %v, want 1", v)
	}
	if v, _ := gauge(s, "telemetry_subscribers"); v != 1 {
		t.Errorf("subscribers gauge = %v, want 1", v)
	}
}
