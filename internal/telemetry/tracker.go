package telemetry

import (
	"uavres/internal/sim"
)

// TrackerClient adapts a simulated vehicle's 1 Hz telemetry stream into
// broker frames — the per-vehicle "edge" side of the paper's tracking
// system. Plug its Observe method into sim.Run as the Observer.
type TrackerClient struct {
	pub   *Publisher
	sysID uint8
	// Errs receives the first publish error (nil channel drops them);
	// telemetry failures must not crash the flight.
	errs chan error
}

// NewTrackerClient wraps a publisher for one vehicle.
func NewTrackerClient(pub *Publisher, sysID uint8) *TrackerClient {
	return &TrackerClient{pub: pub, sysID: sysID, errs: make(chan error, 1)}
}

// Errs returns a channel carrying the first publish error, if any.
func (tc *TrackerClient) Errs() <-chan error { return tc.errs }

// Observe publishes one telemetry observation as position + bubble frames.
// It is shaped to be used directly as a sim.Observer.
func (tc *TrackerClient) Observe(tel sim.Telemetry) {
	pos := Position{
		TimeSec: tel.T,
		X:       tel.EstPos.X, Y: tel.EstPos.Y, Z: tel.EstPos.Z,
		VX: tel.EstVel.X, VY: tel.EstVel.Y, VZ: tel.EstVel.Z,
		AirspeedMS: tel.Airspeed,
	}
	bub := Bubble{
		TimeSec:       tel.T,
		DeviationM:    tel.Bubble.Deviation,
		InnerRadiusM:  tel.Bubble.InnerRadius,
		OuterRadiusM:  tel.Bubble.OuterRadius,
		InnerViolated: tel.Bubble.InnerViolated,
		OuterViolated: tel.Bubble.OuterViolated,
	}
	pf, err := EncodePosition(0, tc.sysID, pos)
	if err == nil {
		err = tc.pub.Publish(pf)
	}
	if err == nil {
		var bf Frame
		bf, err = EncodeBubble(0, tc.sysID, bub)
		if err == nil {
			err = tc.pub.Publish(bf)
		}
	}
	if err != nil {
		select {
		case tc.errs <- err:
		default:
		}
	}
}
