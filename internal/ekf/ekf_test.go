package ekf

import (
	"math"
	"testing"
	"testing/quick"

	"uavres/internal/mathx"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// stationarySample is the ideal IMU output of a vehicle at rest: gravity
// reaction along body -Z, zero rates.
func stationarySample(t float64) sensors.IMUSample {
	return sensors.IMUSample{
		T:     t,
		Accel: mathx.V3(0, 0, -physics.Gravity),
		Gyro:  mathx.Zero3,
	}
}

func TestStationaryFilterStaysPut(t *testing.T) {
	f := New(DefaultConfig())
	const dt = 0.004
	for i := 0; i < 5000; i++ { // 20 s
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 { // 5 Hz GPS
			f.FuseGPS(sensors.GPSSample{T: tm, Valid: true})
		}
		if i%10 == 0 { // 25 Hz baro
			f.FuseBaro(sensors.BaroSample{T: tm, AltM: 0})
		}
	}
	st := f.State()
	if st.Pos.Norm() > 0.2 {
		t.Errorf("stationary position drifted to %v", st.Pos)
	}
	if st.Vel.Norm() > 0.1 {
		t.Errorf("stationary velocity drifted to %v", st.Vel)
	}
	if st.Att.TiltAngle() > 0.02 {
		t.Errorf("stationary tilt drifted to %v rad", st.Att.TiltAngle())
	}
	if f.Health().Diverged {
		t.Error("filter diverged on clean stationary data")
	}
}

func TestCovarianceContractsWithAiding(t *testing.T) {
	f := New(DefaultConfig())
	before := f.Covariance(idxPos)
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, Valid: true})
		}
	}
	after := f.Covariance(idxPos)
	if after >= before {
		t.Errorf("position variance did not contract: %v -> %v", before, after)
	}
}

func TestCovarianceGrowsWithoutAiding(t *testing.T) {
	f := New(DefaultConfig())
	const dt = 0.004
	start := f.Covariance(idxPos)
	for i := 0; i < 2500; i++ {
		f.Predict(stationarySample(float64(i)*dt), dt)
	}
	if got := f.Covariance(idxPos); got <= start {
		t.Errorf("dead-reckoning variance did not grow: %v -> %v", start, got)
	}
}

func TestGyroBiasEstimation(t *testing.T) {
	f := New(DefaultConfig())
	bias := mathx.V3(0.02, -0.015, 0)
	const dt = 0.004
	for i := 0; i < 25000; i++ { // 100 s
		tm := float64(i) * dt
		s := stationarySample(tm)
		s.Gyro = s.Gyro.Add(bias) // sensor reads true rate + bias
		f.Predict(s, dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, Valid: true})
		}
		if i%10 == 0 {
			f.FuseBaro(sensors.BaroSample{T: tm, AltM: 0})
		}
	}
	got := f.State().GyroBias
	// X/Y gyro bias is observable through gravity leveling + GPS.
	if math.Abs(got.X-bias.X) > 0.006 || math.Abs(got.Y-bias.Y) > 0.006 {
		t.Errorf("gyro bias estimate %v, want ~%v", got, bias)
	}
}

func TestTrackingConstantVelocityFlight(t *testing.T) {
	f := New(DefaultConfig())
	vel := mathx.V3(4, 3, 0)
	f.Reset(State{Att: mathx.QuatIdentity(), Vel: vel, Pos: mathx.Zero3})
	const dt = 0.004
	for i := 0; i < 12500; i++ { // 50 s of level cruise
		tm := float64(i) * dt
		truePos := vel.Scale(tm)
		f.Predict(stationarySample(tm), dt) // level flight: same specific force as rest
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, PosNED: truePos, VelNED: vel, Valid: true})
		}
		if i%10 == 0 {
			f.FuseBaro(sensors.BaroSample{T: tm, AltM: 0})
		}
	}
	st := f.State()
	wantPos := vel.Scale(12500 * dt)
	if st.Pos.Sub(wantPos).Norm() > 1 {
		t.Errorf("tracked position %v, want ~%v", st.Pos, wantPos)
	}
	if st.Vel.Sub(vel).Norm() > 0.2 {
		t.Errorf("tracked velocity %v, want %v", st.Vel, vel)
	}
}

func TestYawCourseAiding(t *testing.T) {
	f := New(DefaultConfig())
	// Vehicle actually flying north-east (course 45°) but filter believes
	// yaw 0; course aiding must pull yaw toward 45°.
	vel := mathx.V3(4, 4, 0)
	f.Reset(State{Att: mathx.QuatIdentity(), Vel: vel})
	const dt = 0.004
	for i := 0; i < 12500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, PosNED: vel.Scale(tm), VelNED: vel, Valid: true})
		}
	}
	_, _, yaw := f.State().Att.Euler()
	if math.Abs(mathx.WrapPi(yaw-math.Pi/4)) > 0.1 {
		t.Errorf("yaw after course aiding = %v rad, want ~pi/4", yaw)
	}
}

func TestYawAidingSkippedWhenSlow(t *testing.T) {
	f := New(DefaultConfig())
	// Hovering: course is meaningless and must not be fused.
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, VelNED: mathx.V3(0.2, 0.3, 0), Valid: true})
		}
	}
	_, _, yaw := f.State().Att.Euler()
	if math.Abs(yaw) > 0.05 {
		t.Errorf("hover yaw pulled to %v by bogus course", yaw)
	}
}

func TestInnovationGateRejectsOutlier(t *testing.T) {
	f := New(DefaultConfig())
	const dt = 0.004
	// Settle first.
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, Valid: true})
		}
	}
	before := f.State()
	// A 500 m jump is far outside any gate.
	f.FuseGPS(sensors.GPSSample{T: 10.0, PosNED: mathx.V3(500, 500, -500), Valid: true})
	after := f.State()
	if after.Pos.Sub(before.Pos).Norm() > 0.5 {
		t.Errorf("outlier moved estimate by %v m", after.Pos.Sub(before.Pos).Norm())
	}
	if f.Health().LastGPSRatio <= 1 {
		t.Errorf("outlier test ratio = %v, want > 1", f.Health().LastGPSRatio)
	}
}

func TestGPSRejectionTimeAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GPSResetSec = 0 // isolate the rejection clock from resets
	f := New(cfg)
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, Valid: true})
		}
	}
	// Feed outliers for 3 seconds of GPS time.
	for i := 0; i < 15; i++ {
		tm := 10 + float64(i)*0.2
		f.Predict(stationarySample(tm), dt)
		f.FuseGPS(sensors.GPSSample{T: tm, PosNED: mathx.V3(900, 0, 0), Valid: true})
	}
	if got := f.Health().GPSRejectSec; got < 2.0 {
		t.Errorf("GPSRejectSec = %v, want >= ~2.8", got)
	}
	// A good fix clears the rejection clock.
	f.FuseGPS(sensors.GPSSample{T: 13.2, Valid: true})
	if got := f.Health().GPSRejectSec; got != 0 {
		t.Errorf("GPSRejectSec after good fix = %v, want 0", got)
	}
}

func TestBaroRejectionHealth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BaroResetSec = 0 // isolate the rejection clock from resets
	f := New(cfg)
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%10 == 0 {
			f.FuseBaro(sensors.BaroSample{T: tm, AltM: 0})
		}
	}
	for i := 0; i < 50; i++ {
		tm := 10 + float64(i)*0.04
		f.FuseBaro(sensors.BaroSample{T: tm, AltM: 500})
	}
	if got := f.Health().BaroRejectSec; got < 1.5 {
		t.Errorf("BaroRejectSec = %v, want >= ~1.9", got)
	}
}

func TestGPSResetOnTimeout(t *testing.T) {
	f := New(DefaultConfig())
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, Valid: true})
		}
	}
	// A persistent 900 m offset: first rejected, then — after the reset
	// timeout — adopted wholesale.
	target := mathx.V3(900, 0, 0)
	for i := 0; i < 35; i++ { // 7 s of rejected fixes at 5 Hz
		tm := 10 + float64(i)*0.2
		f.Predict(stationarySample(tm), dt)
		f.FuseGPS(sensors.GPSSample{T: tm, PosNED: target, Valid: true})
	}
	if f.Health().Resets == 0 {
		t.Fatal("no reset despite persistent GPS rejection")
	}
	if d := f.State().Pos.Dist(target); d > 1 {
		t.Errorf("position after reset %v, want ~%v", f.State().Pos, target)
	}
	// Covariance reopened: the next fix fuses normally.
	if f.Health().GPSRejectSec != 0 {
		t.Errorf("rejection clock not cleared: %v", f.Health().GPSRejectSec)
	}
}

func TestBaroResetOnTimeout(t *testing.T) {
	f := New(DefaultConfig())
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%10 == 0 {
			f.FuseBaro(sensors.BaroSample{T: tm, AltM: 0})
		}
	}
	for i := 0; i < 150; i++ { // 6 s of rejected samples at 25 Hz
		tm := 10 + float64(i)*0.04
		f.FuseBaro(sensors.BaroSample{T: tm, AltM: 400})
	}
	if f.Health().Resets == 0 {
		t.Fatal("no baro reset despite persistent rejection")
	}
	if alt := -f.State().Pos.Z; math.Abs(alt-400) > 1 {
		t.Errorf("altitude after reset = %v, want ~400", alt)
	}
}

func TestDivergenceLatch(t *testing.T) {
	f := New(DefaultConfig())
	// Full-scale accelerometer output (what a Min/Max fault injects)
	// integrated long enough exceeds the physical velocity bound.
	s := sensors.IMUSample{Accel: mathx.V3(-sensors.AccelRange, -sensors.AccelRange, -sensors.AccelRange)}
	for i := 0; i < 4000 && !f.Health().Diverged; i++ {
		s.T = float64(i) * 0.05
		f.Predict(s, 0.05)
	}
	if !f.Health().Diverged {
		t.Fatal("filter did not latch divergence under full-scale accel")
	}
	// Once diverged, predictions and updates are inert.
	st := f.State()
	f.Predict(stationarySample(999), 0.004)
	f.FuseGPS(sensors.GPSSample{T: 999, Valid: true})
	if f.State() != st {
		t.Error("diverged filter kept mutating state")
	}
}

func TestResetClearsDivergence(t *testing.T) {
	f := New(DefaultConfig())
	f.health.Diverged = true
	f.Reset(State{Att: mathx.QuatIdentity()})
	if f.Health().Diverged {
		t.Error("Reset did not clear divergence latch")
	}
}

func TestNaNMeasurementRejected(t *testing.T) {
	f := New(DefaultConfig())
	before := f.State()
	f.FuseBaro(sensors.BaroSample{T: 1, AltM: math.NaN()})
	if f.State() != before {
		t.Error("NaN measurement mutated state")
	}
}

func TestZeroQuatStateRepairedOnReset(t *testing.T) {
	f := New(DefaultConfig())
	f.Reset(State{}) // zero attitude quaternion
	if f.State().Att != mathx.QuatIdentity() {
		t.Errorf("Reset left invalid attitude %v", f.State().Att)
	}
}

// Property: the covariance stays symmetric with positive diagonal through
// arbitrary interleavings of predicts and updates.
func TestCovarianceSymmetryProperty(t *testing.T) {
	prop := func(seed int64, ops []uint8) bool {
		f := New(DefaultConfig())
		tm := 0.0
		for _, op := range ops {
			tm += 0.02
			switch op % 4 {
			case 0, 1:
				f.Predict(stationarySample(tm), 0.02)
			case 2:
				f.FuseGPS(sensors.GPSSample{T: tm, PosNED: mathx.V3(float64(op), 0, 0), Valid: true})
			case 3:
				f.FuseBaro(sensors.BaroSample{T: tm, AltM: float64(op % 16)})
			}
		}
		for i := 0; i < dim; i++ {
			if f.p[i][i] <= 0 {
				return false
			}
			for j := i + 1; j < dim; j++ {
				if math.Abs(f.p[i][j]-f.p[j][i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMagYawFusion(t *testing.T) {
	f := New(DefaultConfig())
	// Filter believes yaw 0; magnetometer says 0.8 rad.
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%25 == 0 { // 10 Hz
			f.FuseMag(sensors.MagSample{T: tm, YawRad: 0.8})
		}
	}
	_, _, yaw := f.State().Att.Euler()
	if math.Abs(mathx.WrapPi(yaw-0.8)) > 0.05 {
		t.Errorf("yaw after mag fusion = %v, want 0.8", yaw)
	}
}

func TestGravityFusionLevelsRollError(t *testing.T) {
	f := New(DefaultConfig())
	// Start with a 0.2 rad roll error; gravity aiding must level it.
	f.Reset(State{Att: mathx.QuatFromEuler(0.2, 0, 0)})
	const dt = 0.004
	for i := 0; i < 25000; i++ { // 100 s (gravity aiding is a slow trim)
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%10 == 0 { // 25 Hz
			f.FuseGravity(stationarySample(tm))
		}
	}
	roll, _, _ := f.State().Att.Euler()
	if math.Abs(roll) > 0.05 {
		t.Errorf("roll after gravity aiding = %v, want ~0", roll)
	}
}

func TestGravityFusionSkippedWhenDynamic(t *testing.T) {
	f := New(DefaultConfig())
	f.Reset(State{Att: mathx.QuatFromEuler(0.2, 0, 0)})
	before := f.State().Att
	// |a| far from 1 g: quasi-static gate must reject.
	s := sensors.IMUSample{Accel: mathx.V3(5, 0, -15)}
	f.FuseGravity(s)
	if f.State().Att != before {
		t.Error("dynamic sample fused as gravity reference")
	}
}

func TestNotifySensorSwitchReopensCovariance(t *testing.T) {
	f := New(DefaultConfig())
	const dt = 0.004
	for i := 0; i < 2500; i++ {
		tm := float64(i) * dt
		f.Predict(stationarySample(tm), dt)
		if i%50 == 0 {
			f.FuseGPS(sensors.GPSSample{T: tm, Valid: true})
		}
	}
	before := f.Covariance(idxTheta)
	f.NotifySensorSwitch()
	if got := f.Covariance(idxTheta); got < 0.25 {
		t.Errorf("attitude variance after switch = %v, want >= 0.25 (was %v)", got, before)
	}
	if got := f.Covariance(idxVel); got < 4 {
		t.Errorf("velocity variance after switch = %v, want >= 4", got)
	}
}

func TestRealignLevelRepairsAttitude(t *testing.T) {
	f := New(DefaultConfig())
	// Estimate is badly tilted; the true vehicle is level and hovering.
	f.Reset(State{Att: mathx.QuatFromEuler(0.9, -0.7, 1.1)})
	f.RealignLevel(mathx.V3(0, 0, -physics.Gravity))
	roll, pitch, yaw := f.State().Att.Euler()
	if math.Abs(roll) > 1e-6 || math.Abs(pitch) > 1e-6 {
		t.Errorf("realigned roll/pitch = %v/%v, want 0", roll, pitch)
	}
	// Yaw is preserved (the magnetometer owns heading).
	if math.Abs(mathx.WrapPi(yaw-1.1)) > 1e-6 {
		t.Errorf("realigned yaw = %v, want preserved 1.1", yaw)
	}
}

func TestRealignLevelRespectsTrueTilt(t *testing.T) {
	f := New(DefaultConfig())
	f.Reset(State{Att: mathx.QuatIdentity()})
	// True vehicle rolled 0.3 rad: hovering specific force tilts in body Y/Z.
	trueAtt := mathx.QuatFromEuler(0.3, 0, 0)
	accelBody := trueAtt.RotateInv(mathx.V3(0, 0, -physics.Gravity))
	f.RealignLevel(accelBody)
	roll, pitch, _ := f.State().Att.Euler()
	if math.Abs(roll-0.3) > 1e-6 || math.Abs(pitch) > 1e-6 {
		t.Errorf("realigned attitude = %v/%v, want 0.3/0", roll, pitch)
	}
}

func TestRealignLevelSkipsDynamicSample(t *testing.T) {
	f := New(DefaultConfig())
	before := f.State().Att
	f.RealignLevel(mathx.V3(40, 0, -40)) // |a| far from g
	if f.State().Att != before {
		t.Error("dynamic sample used for realignment")
	}
}
