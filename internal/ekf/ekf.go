// Package ekf implements the state estimator at the heart of the paper's
// study: an error-state extended Kalman filter fusing IMU, GPS, and
// barometer, in the role PX4's ECL EKF plays on real hardware. The paper's
// headline question — how well does the EKF/controller stack tolerate
// corrupted IMU data — is answered by this filter's innovation gating,
// bias estimation, and divergence behaviour.
//
// The nominal state is attitude quaternion, NED velocity, NED position,
// gyro bias, and accelerometer bias; the 15-dimensional error state covers
// small perturbations of each block.
package ekf

import (
	"math"

	"uavres/internal/mathx"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// Config holds noise densities and gate thresholds. Defaults follow the
// consumer-MEMS class the sensors package models.
type Config struct {
	// GyroNoise is the gyro white-noise density driving attitude error
	// growth (rad/s per sqrt(s) equivalent, applied per predict step).
	GyroNoise float64
	// AccelNoise is the accel white-noise density driving velocity error.
	AccelNoise float64
	// GyroBiasWalk and AccelBiasWalk drive the bias random walks.
	GyroBiasWalk  float64
	AccelBiasWalk float64
	// GPSPosStd, GPSVelStd, BaroStd are measurement noise standard
	// deviations.
	GPSPosStd float64
	GPSVelStd float64
	BaroStd   float64
	// YawStd is the GPS-course heading-aiding noise.
	YawStd float64
	// MagYawStd is the magnetometer heading measurement noise.
	MagYawStd float64
	// GravityStd is the accelerometer gravity-direction aiding noise
	// (unitless direction components). Zero disables gravity aiding.
	GravityStd float64
	// GravityMaxDev is the quasi-static condition: gravity aiding only
	// runs when the measured specific-force magnitude is within this
	// band of 1 g (m/s^2), since maneuvering acceleration would corrupt
	// the leveling reference.
	GravityMaxDev float64
	// GateSigma is the innovation gate in standard deviations; a
	// measurement whose normalized innovation squared exceeds
	// GateSigma^2 (per axis) is rejected. Zero disables gating.
	GateSigma float64
	// CourseMinSpeed is the minimum horizontal ground speed (m/s) for
	// GPS-course heading aiding (yaw is unobservable when hovering).
	CourseMinSpeed float64
	// GPSResetSec and BaroResetSec are fusion-timeout thresholds: when an
	// aiding source has been continuously gate-rejected this long, the
	// filter hard-resets the corresponding states to the measurement and
	// inflates their covariance (PX4 EKF2's reset-on-timeout behaviour).
	// Zero disables resets.
	GPSResetSec  float64
	BaroResetSec float64
	// CovarianceDecimation is the covariance-path decimation factor k.
	// The nominal (strapdown) state advances on every Predict, while the
	// error-state covariance accumulates the compounded k-step transition
	// and applies one P ← Φ P Φᵀ + Q per k-th predict — the split PX4's
	// EKF2 makes between high-rate strapdown integration and decimated
	// covariance prediction. Values <= 1 keep the exact per-step path.
	// The accumulated transition is flushed before any consumer touches
	// the covariance (measurement updates, resets, variance queries), so
	// fusion never sees covariance older than the last flush point.
	// SetCovarianceFullRate forces the exact path while a caller-defined
	// condition holds (the simulator uses it to keep faulted flights exact
	// from launch until the fault response settles).
	CovarianceDecimation int
}

// DefaultConfig returns tuning matched to sensors.Default*Spec.
func DefaultConfig() Config {
	return Config{
		GyroNoise:            0.003,
		AccelNoise:           0.08,
		GyroBiasWalk:         5e-5,
		AccelBiasWalk:        5e-4,
		GPSPosStd:            0.5,
		GPSVelStd:            0.15,
		BaroStd:              0.25,
		YawStd:               0.08,
		MagYawStd:            0.05,
		GravityStd:           0.3,
		GravityMaxDev:        0.5,
		GateSigma:            5,
		CourseMinSpeed:       1.5,
		GPSResetSec:          5.0,
		BaroResetSec:         5.0,
		CovarianceDecimation: 4,
	}
}

// State is the EKF's nominal state estimate.
type State struct {
	// Att rotates body vectors into the world NED frame.
	Att mathx.Quat
	// Vel is the NED velocity estimate (m/s).
	Vel mathx.Vec3
	// Pos is the NED position estimate (m).
	Pos mathx.Vec3
	// GyroBias and AccelBias are the estimated sensor biases.
	GyroBias  mathx.Vec3
	AccelBias mathx.Vec3
}

// Health summarizes the filter's self-assessment, consumed by the failsafe
// module.
type Health struct {
	// GPSRejectSec and BaroRejectSec are how long each aiding source has
	// been continuously rejected by the innovation gate.
	GPSRejectSec  float64
	BaroRejectSec float64
	// LastGPSRatio and LastBaroRatio are the latest normalized innovation
	// test ratios (1.0 = exactly at the gate).
	LastGPSRatio  float64
	LastBaroRatio float64
	// LastGPSPosInnov and LastGPSVelInnov are the latest raw GPS
	// innovations (diagnostics).
	LastGPSPosInnov mathx.Vec3
	LastGPSVelInnov mathx.Vec3
	// GPSFusions and BaroFusions count fusion attempts; GPSGateRejects and
	// BaroGateRejects count attempts the innovation gate rejected (for GPS,
	// an attempt where any axis failed its gate). Cumulative over the
	// flight — the observability layer exports them as counters, and being
	// plain value fields they ride FilterSnapshot through checkpoint forks.
	GPSFusions      int64
	BaroFusions     int64
	GPSGateRejects  int64
	BaroGateRejects int64
	// MaxGPSRatio and MaxBaroRatio are the worst test ratios seen over the
	// flight (running maxima of Last*Ratio).
	MaxGPSRatio  float64
	MaxBaroRatio float64
	// Resets counts hard reset-on-timeout events (velocity/position
	// snapped back to a rejected-but-persistent aiding source).
	Resets int
	// Diverged is set when the nominal state left physical bounds; it
	// latches until Reset.
	Diverged bool
}

// Filter is the error-state EKF. Not safe for concurrent use; each vehicle
// owns one.
type Filter struct {
	cfg Config

	st State
	p  mat // error-state covariance

	health   Health
	lastGPST float64
	lastBarT float64
	inited   bool

	// Decimated-covariance state (all value fields, so FilterSnapshot
	// captures the mid-window phase and forks resume bit-identically).
	covFull bool       // full-rate forced (fault window + settle)
	pending int        // predicts accumulated since the last flush
	acc     transition // compounded transition over the pending steps
}

// New returns a filter initialized at rest at the origin with conservative
// initial uncertainty.
func New(cfg Config) *Filter {
	f := &Filter{cfg: cfg}
	f.Reset(State{Att: mathx.QuatIdentity()})
	return f
}

// Reset re-initializes the nominal state and covariance.
func (f *Filter) Reset(st State) {
	f.st = st
	//lint:allow floatcmp exact zero-norm only occurs for the zero-value quaternion
	if f.st.Att.Norm() == 0 {
		f.st.Att = mathx.QuatIdentity()
	}
	f.p = mat{}
	for i := 0; i < 3; i++ {
		f.p[idxTheta+i][idxTheta+i] = 0.02
		f.p[idxVel+i][idxVel+i] = 0.5
		f.p[idxPos+i][idxPos+i] = 1.0
		f.p[idxBg+i][idxBg+i] = 1e-4
		f.p[idxBa+i][idxBa+i] = 1e-2
	}
	f.health = Health{}
	f.inited = true
	f.pending = 0
	f.acc.reset()
}

// State returns the current nominal estimate.
func (f *Filter) State() State { return f.st }

// FilterSnapshot captures the filter's complete dynamic state — nominal
// state, covariance, health, and fusion timers (checkpointing). Every
// Filter field is a value type, so the snapshot is a plain copy.
type FilterSnapshot struct {
	f Filter
}

// Snapshot captures the filter's state.
func (f *Filter) Snapshot() FilterSnapshot { return FilterSnapshot{f: *f} }

// Restore reinstates a state captured with Snapshot, keeping the target's
// own configuration.
func (f *Filter) Restore(s FilterSnapshot) {
	cfg := f.cfg
	*f = s.f
	f.cfg = cfg
}

// Health returns the filter's self-assessment.
func (f *Filter) Health() Health { return f.health }

// Covariance returns the variance of the error-state entry at index i
// (0..14); used by tests and diagnostics. Any pending decimated
// propagation is flushed first so the value is current.
func (f *Filter) Covariance(i int) float64 {
	f.flushCovariance()
	return f.p[i][i]
}

// AttitudeStd returns the 1-sigma attitude uncertainty (rad), the largest
// of the three attitude error variances (flushing any pending decimated
// propagation first).
func (f *Filter) AttitudeStd() float64 {
	f.flushCovariance()
	v := math.Max(f.p[0][0], math.Max(f.p[1][1], f.p[2][2]))
	return math.Sqrt(v)
}

// SetCovarianceFullRate forces (true) or releases (false) full-rate
// covariance propagation regardless of CovarianceDecimation. The vehicle
// drives this from the fault-injection schedule: during an active
// injection window, and for a settle window after it, fault-response
// dynamics keep the exact per-step covariance path, so decimation only
// ever applies to benign flight. Entering full rate flushes any
// accumulated transition so no covariance time is lost.
func (f *Filter) SetCovarianceFullRate(full bool) {
	if full && !f.covFull {
		f.flushCovariance()
	}
	f.covFull = full
}

// flushCovariance applies the accumulated window transition and the
// process noise scaled over the accumulated horizon, then resets the
// window. It is a no-op when nothing is pending, so every covariance
// consumer calls it unconditionally. The integrated-noise approximation
// (Q·Σdt added once instead of interleaved per step) is the same one
// decimated flight estimators make; its error is O(k·dt) relative and is
// bounded by TestDecimationDriftBounded.
func (f *Filter) flushCovariance() {
	if f.pending == 0 {
		return
	}
	f.p.applyTransition(&f.acc)
	var q [dim]float64
	gn := f.cfg.GyroNoise * f.cfg.GyroNoise * f.acc.s
	an := f.cfg.AccelNoise * f.cfg.AccelNoise * f.acc.s
	gw := f.cfg.GyroBiasWalk * f.cfg.GyroBiasWalk * f.acc.s
	aw := f.cfg.AccelBiasWalk * f.cfg.AccelBiasWalk * f.acc.s
	for i := 0; i < 3; i++ {
		q[idxTheta+i] = gn
		q[idxVel+i] = an
		q[idxBg+i] = gw
		q[idxBa+i] = aw
	}
	f.p.addDiag(q)
	f.p.clampDiag(1e-12, 1e8)
	f.acc.reset()
	f.pending = 0
}

// NotifySensorSwitch tells the filter its IMU source just changed
// (redundancy management switched units). The moments before a switch
// were by definition fed by a distrusted sensor, so the attitude and
// velocity uncertainty are reopened: the healthy references (gravity
// direction, magnetometer, GPS) then repair the state within a second
// instead of tens of seconds.
func (f *Filter) NotifySensorSwitch() {
	f.flushCovariance()
	for i := 0; i < 3; i++ {
		if f.p[idxTheta+i][idxTheta+i] < 0.25 {
			f.p[idxTheta+i][idxTheta+i] = 0.25 // (0.5 rad)^2
		}
		if f.p[idxVel+i][idxVel+i] < 4 {
			f.p[idxVel+i][idxVel+i] = 4
		}
	}
}

// RealignLevel re-derives roll and pitch from a trusted accelerometer
// sample (quasi-static leveling), keeping the current yaw — the
// coarse re-alignment a flight EKF performs after switching to a new
// inertial source. It is skipped when the sample is clearly dynamic
// (specific-force magnitude far from 1 g).
func (f *Filter) RealignLevel(accelBody mathx.Vec3) {
	norm := accelBody.Norm()
	if norm < physics.Gravity-3 || norm > physics.Gravity+3 {
		return
	}
	// Measured body-frame down direction: the specific force at rest is
	// the gravity reaction (pointing body-up), so down is its opposite.
	downBody := accelBody.Scale(-1 / norm)
	_, _, yaw := f.st.Att.Euler()
	f.st.Att = attitudeFromDownAndYaw(downBody, yaw)
}

// attitudeFromDownAndYaw builds the body->world rotation whose body-frame
// down direction maps onto world down and whose heading is yaw.
func attitudeFromDownAndYaw(downBody mathx.Vec3, yaw float64) mathx.Quat {
	zWorld := mathx.V3(0, 0, 1)
	axis := downBody.Cross(zWorld)
	angle := math.Acos(mathx.Clamp(downBody.Dot(zWorld), -1, 1))
	tilt := mathx.QuatFromAxisAngle(axis, angle) // rotates downBody onto zWorld
	r, p, _ := tilt.Euler()
	return mathx.QuatFromEuler(r, p, yaw)
}

// Predict advances the filter with one IMU sample over dt seconds. The
// sample is the (possibly fault-corrupted) sensor output — the filter has
// no access to ground truth.
func (f *Filter) Predict(s sensors.IMUSample, dt float64) {
	if dt <= 0 || f.health.Diverged {
		return
	}
	omega := s.Gyro.Sub(f.st.GyroBias)
	accelBody := s.Accel.Sub(f.st.AccelBias)

	rot := f.st.Att.RotationMatrix()
	accelWorld := rot.MulVec(accelBody).Add(mathx.V3(0, 0, physics.Gravity))

	// Nominal propagation.
	f.st.Att = f.st.Att.Integrate(omega, dt)
	f.st.Vel = f.st.Vel.Add(accelWorld.Scale(dt))
	f.st.Pos = f.st.Pos.Add(f.st.Vel.Scale(dt))

	// Divergence latch: physical bounds for a small UAV mission area.
	if !f.st.Vel.IsFinite() || !f.st.Pos.IsFinite() ||
		f.st.Vel.Norm() > 1e4 || f.st.Pos.Norm() > 1e7 {
		f.health.Diverged = true
		return
	}

	// Error-state transition (first-order discretization):
	//   dθ' = (I - [ω]x dt) dθ          - I dt dbg
	//   dv' = -R [a]x dt dθ + dv        - R dt dba
	//   dp' = dv dt + dp
	// F's block structure is fixed — identity blocks plus the three dense
	// 3x3 couplings A/B/C and two scaled-identity couplings — so the
	// covariance propagation P ← F P Fᵀ is hand-unrolled over the blocks
	// (see mat.propagate) instead of two generic 15x15 multiplies.
	wSkew := mathx.Skew(omega)
	aSkew := mathx.Skew(accelBody)
	raSkew := rot.Mul(aSkew)
	var a, b, c [3][3]float64 // A = I - [ω]x dt, B = -R [a]x dt, C = -R dt
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a[i][j] = -wSkew.M[i][j] * dt
			b[i][j] = -raSkew.M[i][j] * dt
			c[i][j] = -rot.M[i][j] * dt
		}
		a[i][i] += 1
	}

	// Decimated path: fold this step's F into the window transition and
	// flush every k-th step. Covariance consumers flush earlier on demand.
	if k := f.cfg.CovarianceDecimation; k > 1 && !f.covFull {
		f.acc.compose(&a, &b, &c, dt)
		f.pending++
		if f.pending >= k {
			f.flushCovariance()
		}
		return
	}

	// Full-rate path (k <= 1, or forced during fault windows): the exact
	// per-step propagation. The pending check only matters if the mode
	// changed without a flush (defensive; SetCovarianceFullRate flushes).
	f.flushCovariance()
	f.p.propagate(&a, &b, &c, dt)

	var q [dim]float64
	gn := f.cfg.GyroNoise * f.cfg.GyroNoise * dt
	an := f.cfg.AccelNoise * f.cfg.AccelNoise * dt
	gw := f.cfg.GyroBiasWalk * f.cfg.GyroBiasWalk * dt
	aw := f.cfg.AccelBiasWalk * f.cfg.AccelBiasWalk * dt
	for i := 0; i < 3; i++ {
		q[idxTheta+i] = gn
		q[idxVel+i] = an
		q[idxBg+i] = gw
		q[idxBa+i] = aw
	}
	f.p.addDiag(q)
	f.p.clampDiag(1e-12, 1e8)
}
