package ekf

import (
	"testing"
	"testing/quick"
)

func TestMatIdentityMul(t *testing.T) {
	id := matIdentity()
	var a mat
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			a[i][j] = float64(i*dim + j)
		}
	}
	left := id.mul(&a)
	right := a.mul(&id)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if left[i][j] != a[i][j] || right[i][j] != a[i][j] {
				t.Fatalf("identity mul broke at %d,%d", i, j)
			}
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		var a, b mat
		sa, sb := uint64(seedA), uint64(seedB)
		next := func(s *uint64) float64 {
			*s = *s*6364136223846793005 + 1442695040888963407
			return float64(int64(*s>>33)) / float64(1<<30)
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				a[i][j] = next(&sa)
				b[i][j] = next(&sb)
			}
		}
		// a.mulT(b) must equal a.mul(transpose(b)).
		var bt mat
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				bt[i][j] = b[j][i]
			}
		}
		viaT := a.mulT(&b)
		viaMul := a.mul(&bt)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				d := viaT[i][j] - viaMul[i][j]
				if d > 1e-9 || d < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMatSymmetrizeAndClamp(t *testing.T) {
	var a mat
	a[0][1] = 2
	a[1][0] = 4
	a[2][2] = -5
	a[3][3] = 1e12
	a.symmetrize()
	if a[0][1] != 3 || a[1][0] != 3 {
		t.Errorf("symmetrize: %v, %v", a[0][1], a[1][0])
	}
	a.clampDiag(1e-12, 1e8)
	if a[2][2] != 1e-12 {
		t.Errorf("clamp low: %v", a[2][2])
	}
	if a[3][3] != 1e8 {
		t.Errorf("clamp high: %v", a[3][3])
	}
}

func TestMatAddDiag(t *testing.T) {
	var a mat
	var d [dim]float64
	for i := range d {
		d[i] = float64(i)
	}
	a.addDiag(d)
	for i := 0; i < dim; i++ {
		if a[i][i] != float64(i) {
			t.Errorf("diag %d = %v", i, a[i][i])
		}
	}
}

// TestPropagateMatchesDenseReference: the block-sparse propagate must
// reproduce the generic dense F·P·Fᵀ it replaced, to float rounding, for
// random covariances and transition blocks.
func TestPropagateMatchesDenseReference(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int64(s>>33)) / float64(1<<30)
		}

		// Symmetric positive-ish covariance: P = L·Lᵀ scaled down, plus a
		// diagonal bump.
		var l mat
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				l[i][j] = next() * 0.3
			}
		}
		p := l.mulT(&l)
		for i := 0; i < dim; i++ {
			p[i][i] += 0.1
		}

		// Random transition blocks on the magnitude scale Predict produces.
		const dt = 0.004
		var a, b, c [3][3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] = next() * 0.01
				b[i][j] = next() * 0.1
				c[i][j] = next() * dt
			}
			a[i][i] += 1
		}

		// Dense reference: assemble F explicitly.
		fm := matIdentity()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				fm[idxTheta+i][idxTheta+j] = a[i][j]
				fm[idxVel+i][idxTheta+j] = b[i][j]
				fm[idxVel+i][idxBa+j] = c[i][j]
			}
			fm[idxTheta+i][idxBg+i] = -dt
			fm[idxPos+i][idxVel+i] = dt
		}
		fp := fm.mul(&p)
		want := fp.mulT(&fm)

		got := p
		got.propagate(&a, &b, &c, dt)

		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				d := got[i][j] - want[i][j]
				if d > 1e-12 || d < -1e-12 {
					t.Logf("mismatch at %d,%d: got %v want %v", i, j, got[i][j], want[i][j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// denseStep assembles the dense per-step transition F from its blocks
// (shared by the oracle tests below).
func denseStep(a, b, c *[3][3]float64, dt float64) mat {
	fm := matIdentity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			fm[idxTheta+i][idxTheta+j] = a[i][j]
			fm[idxVel+i][idxTheta+j] = b[i][j]
			fm[idxVel+i][idxBa+j] = c[i][j]
		}
		fm[idxTheta+i][idxBg+i] = -dt
		fm[idxPos+i][idxVel+i] = dt
	}
	return fm
}

// randStepBlocks draws per-step A/B/C blocks on the magnitude scale
// Predict produces.
func randStepBlocks(next func() float64, dt float64) (a, b, c [3][3]float64) {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a[i][j] = next() * 0.01
			b[i][j] = next() * 0.1
			c[i][j] = next() * dt
		}
		a[i][i] += 1
	}
	return
}

// TestTransitionComposeMatchesDense: composing k per-step F's in block
// form must reproduce the dense product F_k···F_1 to float rounding.
func TestTransitionComposeMatchesDense(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int64(s>>33)) / float64(1<<30)
		}
		k := int(steps%8) + 1
		const dt = 0.004

		var tr transition
		tr.reset()
		phi := matIdentity()
		for n := 0; n < k; n++ {
			a, b, c := randStepBlocks(next, dt)
			tr.compose(&a, &b, &c, dt)
			fm := denseStep(&a, &b, &c, dt)
			phi = fm.mul(&phi)
		}

		got := tr.dense()
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				d := got[i][j] - phi[i][j]
				if d > 1e-12 || d < -1e-12 {
					t.Logf("k=%d mismatch at %d,%d: got %v want %v", k, i, j, got[i][j], phi[i][j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestApplyTransitionMatchesDenseReference: the one-shot block-sparse
// P ← Φ P Φᵀ over a composed window must match the generic dense product
// with the independently multiplied-out dense Φ.
func TestApplyTransitionMatchesDenseReference(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(int64(s>>33)) / float64(1<<30)
		}
		k := int(steps%8) + 1
		const dt = 0.004

		// Symmetric positive-ish covariance (the kernel's precondition).
		var l mat
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				l[i][j] = next() * 0.3
			}
		}
		p := l.mulT(&l)
		for i := 0; i < dim; i++ {
			p[i][i] += 0.1
		}

		var tr transition
		tr.reset()
		phi := matIdentity()
		for n := 0; n < k; n++ {
			a, b, c := randStepBlocks(next, dt)
			tr.compose(&a, &b, &c, dt)
			fm := denseStep(&a, &b, &c, dt)
			phi = fm.mul(&phi)
		}

		fp := phi.mul(&p)
		want := fp.mulT(&phi)

		got := p
		got.applyTransition(&tr)

		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				d := got[i][j] - want[i][j]
				if d > 1e-12 || d < -1e-12 {
					t.Logf("k=%d mismatch at %d,%d: got %v want %v", k, i, j, got[i][j], want[i][j])
					return false
				}
				if got[i][j] != got[j][i] {
					t.Logf("k=%d asymmetry at %d,%d", k, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// benchBlocks builds representative A/B/C transition blocks and a
// covariance for the propagation benchmarks.
func benchBlocks() (p mat, a, b, c [3][3]float64, dt float64) {
	dt = 0.004
	s := uint64(9)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int64(s>>33)) / float64(1<<30)
	}
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			p[i][j] = next() * 0.1
		}
		p[i][i] += 1
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a[i][j] = next() * 0.01
			b[i][j] = next() * 0.1
			c[i][j] = next() * dt
		}
		a[i][i] += 1
	}
	return
}

// BenchmarkPropagateBlockSparse measures the hand-unrolled P ← F P Fᵀ.
func BenchmarkPropagateBlockSparse(bb *testing.B) {
	p, a, b, c, dt := benchBlocks()
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		p.propagate(&a, &b, &c, dt)
	}
}

// BenchmarkMat15PropagateSym measures the symmetric block-sparse
// P ← F P Fᵀ on a symmetric covariance (the hot-loop configuration: upper
// triangle computed, lower mirrored).
func BenchmarkMat15PropagateSym(bb *testing.B) {
	p, a, b, c, dt := benchBlocks()
	p.symmetrize()
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		p.propagate(&a, &b, &c, dt)
	}
}

// BenchmarkMat15ApplyTransition measures the decimated flush kernel: one
// compounded P ← Φ P Φᵀ over a 4-step window (compare against 4x
// BenchmarkMat15PropagateSym plus 4x BenchmarkMat15TransitionCompose).
func BenchmarkMat15ApplyTransition(bb *testing.B) {
	p, a, b, c, dt := benchBlocks()
	p.symmetrize()
	var tr transition
	tr.reset()
	for n := 0; n < 4; n++ {
		tr.compose(&a, &b, &c, dt)
	}
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		p.applyTransition(&tr)
	}
}

// BenchmarkMat15TransitionCompose measures folding one per-step F into the
// window accumulator (paid every predict on the decimated path).
func BenchmarkMat15TransitionCompose(bb *testing.B) {
	_, a, b, c, dt := benchBlocks()
	var tr transition
	tr.reset()
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		tr.compose(&a, &b, &c, dt)
	}
}

// BenchmarkPropagateDenseReference measures the generic mul/mulT pair the
// block-sparse version replaced (kept as the test reference).
func BenchmarkPropagateDenseReference(bb *testing.B) {
	p, a, b, c, dt := benchBlocks()
	fm := matIdentity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			fm[idxTheta+i][idxTheta+j] = a[i][j]
			fm[idxVel+i][idxTheta+j] = b[i][j]
			fm[idxVel+i][idxBa+j] = c[i][j]
		}
		fm[idxTheta+i][idxBg+i] = -dt
		fm[idxPos+i][idxVel+i] = dt
	}
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		fp := fm.mul(&p)
		p = fp.mulT(&fm)
	}
}
