package ekf

// dim is the error-state dimension: attitude (3), velocity (3), position
// (3), gyro bias (3), accelerometer bias (3).
const dim = 15

// Error-state block offsets.
const (
	idxTheta = 0  // attitude error (rotation vector)
	idxVel   = 3  // velocity error
	idxPos   = 6  // position error
	idxBg    = 9  // gyro bias error
	idxBa    = 12 // accel bias error
)

// mat is a dense dim x dim matrix in row-major order. The EKF's covariance
// and transition matrices are small and fixed-size, so plain arrays beat a
// general matrix library and allocate nothing.
type mat [dim][dim]float64

// matIdentity returns the identity matrix.
func matIdentity() mat {
	var m mat
	for i := 0; i < dim; i++ {
		m[i][i] = 1
	}
	return m
}

// mul returns a*b.
func (a *mat) mul(b *mat) mat {
	var out mat
	for i := 0; i < dim; i++ {
		for k := 0; k < dim; k++ {
			aik := a[i][k]
			//lint:allow floatcmp sparsity skip on structurally zero entries; any nonzero must multiply
			if aik == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}

// mulT returns a*bᵀ.
func (a *mat) mulT(b *mat) mat {
	var out mat
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			var s float64
			for k := 0; k < dim; k++ {
				s += a[i][k] * b[j][k]
			}
			out[i][j] = s
		}
	}
	return out
}

// propagate computes P ← F P Fᵀ in place for the error-state transition's
// fixed block structure:
//
//	F = | A  0  0 -dt·I  0 |      A = I - [ω]x dt   (θ rows)
//	    | B  I  0  0     C |      B = -R [a]x dt    (v rows)
//	    | 0 dt·I I 0     0 |      C = -R dt         (p rows)
//	    | 0  0  0  I     0 |                        (bg rows)
//	    | 0  0  0  0     I |                        (ba rows)
//
// Exploiting the structure does ~1k multiplies instead of the ~4k a pair
// of generic 15x15 products needs, with no scratch beyond one stack
// matrix. The second pass computes only the upper triangle and mirrors it:
// F P Fᵀ is symmetric whenever P is, so the lower triangle carries no new
// information and P stays exactly symmetric by construction (no separate
// symmetrize pass). Upper-triangle term order matches the dense mul/mulT
// reference so results agree to float rounding (see
// TestPropagateMatchesDenseReference).
func (p *mat) propagate(a, b, c *[3][3]float64, dt float64) {
	// First pass: G = F·P, row-major so every read and write streams over
	// contiguous rows. F's bg/ba block-rows are identity, so those rows of
	// G equal P and are never materialized; the bottom-right 6x6 of
	// F P Fᵀ equals P's and is left untouched (same skip applyTransition
	// takes for the compounded window transition).
	var g [idxBg][dim]float64
	pt0, pt1, pt2 := &p[idxTheta], &p[idxTheta+1], &p[idxTheta+2]
	pa0, pa1, pa2 := &p[idxBa], &p[idxBa+1], &p[idxBa+2]
	for i := 0; i < 3; i++ {
		a0, a1, a2 := a[i][0], a[i][1], a[i][2]
		pg, gt := &p[idxBg+i], &g[idxTheta+i]
		for j := 0; j < dim; j++ {
			gt[j] = a0*pt0[j] + a1*pt1[j] + a2*pt2[j] - dt*pg[j]
		}
		b0, b1, b2 := b[i][0], b[i][1], b[i][2]
		c0, c1, c2 := c[i][0], c[i][1], c[i][2]
		pv, gv := &p[idxVel+i], &g[idxVel+i]
		for j := 0; j < dim; j++ {
			gv[j] = b0*pt0[j] + b1*pt1[j] + b2*pt2[j] + pv[j] +
				c0*pa0[j] + c1*pa1[j] + c2*pa2[j]
		}
		pp, gp := &p[idxPos+i], &g[idxPos+i]
		for j := 0; j < dim; j++ {
			gp[j] = dt*pv[j] + pp[j]
		}
	}
	// Second pass: P = G·Fᵀ for rows i < idxBg, entries j >= i only,
	// mirrored into the lower triangle. Entry (i,j) reads row i of G and
	// row j of F. Segmented by Fᵀ's block columns so the inner loops stay
	// branch-free; entries, order, and arithmetic match the switch form.
	for i := 0; i < idxBg; i++ {
		gi := &g[i]
		t0, t1, t2 := gi[idxTheta], gi[idxTheta+1], gi[idxTheta+2]
		a0, a1, a2 := gi[idxBa], gi[idxBa+1], gi[idxBa+2]
		j := i
		for ; j < idxVel; j++ {
			v := t0*a[j][0] + t1*a[j][1] + t2*a[j][2] - dt*gi[idxBg+j]
			p[i][j] = v
			p[j][i] = v
		}
		for ; j < idxPos; j++ {
			jc := j - idxVel
			v := t0*b[jc][0] + t1*b[jc][1] + t2*b[jc][2] + gi[j] +
				a0*c[jc][0] + a1*c[jc][1] + a2*c[jc][2]
			p[i][j] = v
			p[j][i] = v
		}
		for ; j < idxBg; j++ {
			v := dt*gi[j-3] + gi[j]
			p[i][j] = v
			p[j][i] = v
		}
		for ; j < dim; j++ {
			v := gi[j]
			p[i][j] = v
			p[j][i] = v
		}
	}
}

// transition is the compounded error-state transition Φ = F_k···F_1 over a
// window of predict steps. The per-step F's sparsity class is closed under
// composition — identity diagonal plus dense 3x3 couplings — so Φ keeps a
// fixed block form and both the per-step composition and the one-shot
// P ← Φ P Φᵀ stay block-sparse:
//
//	Φ = | Aθ  0    0  Dθ  0  |     (θ rows)
//	    | Bv  I    0  Dv  Cv |     (v rows)
//	    | Bp  s·I  I  Dp  Cp |     (p rows)
//	    | 0   0    0  I   0  |     (bg rows)
//	    | 0   0    0  0   I  |     (ba rows)
//
// where s is the accumulated step time Σdt, which is also the horizon the
// scaled process noise integrates over at flush time. The zero value is
// NOT the identity; call reset before composing.
type transition struct {
	aa, dth    [3][3]float64 // θ row:  Aθ, Dθ
	bv, dv, cv [3][3]float64 // v row:  Bv, Dv, Cv
	bp, dp, cp [3][3]float64 // p row:  Bp, Dp, Cp
	s          float64       // p←v coupling and accumulated dt
}

// reset restores the identity transition (empty window).
func (tr *transition) reset() {
	*tr = transition{}
	for i := 0; i < 3; i++ {
		tr.aa[i][i] = 1
	}
}

// compose left-multiplies one per-step transition onto the window:
// Φ ← F·Φ, with F given in propagate's A/B/C block form. Update order
// matters — the p row reads the v row's old blocks and the v row reads the
// θ row's old blocks, so rows are updated bottom-up. Cost is four 3x3
// products per step (~110 flops) versus ~1k for a full propagate, which is
// what makes decimated covariance propagation pay.
func (tr *transition) compose(a, b, c *[3][3]float64, dt float64) {
	// p row: Bp += dt·Bv, Dp += dt·Dv, Cp += dt·Cv, s += dt (old v row).
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			tr.bp[i][j] = dt*tr.bv[i][j] + tr.bp[i][j]
			tr.dp[i][j] = dt*tr.dv[i][j] + tr.dp[i][j]
			tr.cp[i][j] = dt*tr.cv[i][j] + tr.cp[i][j]
		}
	}
	tr.s += dt
	// v row: Bv ← B·Aθ + Bv, Dv ← B·Dθ + Dv, Cv ← Cv + C (old θ row).
	// The two 3x3 products share B's rows, so they run fused in one pass;
	// per-entry arithmetic order matches the separate mul3-then-add form.
	for i := 0; i < 3; i++ {
		b0, b1, b2 := b[i][0], b[i][1], b[i][2]
		for j := 0; j < 3; j++ {
			tr.bv[i][j] = b0*tr.aa[0][j] + b1*tr.aa[1][j] + b2*tr.aa[2][j] + tr.bv[i][j]
			tr.dv[i][j] = b0*tr.dth[0][j] + b1*tr.dth[1][j] + b2*tr.dth[2][j] + tr.dv[i][j]
			tr.cv[i][j] += c[i][j]
		}
	}
	// θ row: Aθ ← A·Aθ, Dθ ← A·Dθ - dt·I, same fusion over A's rows.
	var naa, ndth [3][3]float64
	for i := 0; i < 3; i++ {
		a0, a1, a2 := a[i][0], a[i][1], a[i][2]
		for j := 0; j < 3; j++ {
			naa[i][j] = a0*tr.aa[0][j] + a1*tr.aa[1][j] + a2*tr.aa[2][j]
			ndth[i][j] = a0*tr.dth[0][j] + a1*tr.dth[1][j] + a2*tr.dth[2][j]
		}
		ndth[i][i] -= dt
	}
	tr.aa = naa
	tr.dth = ndth
}

// applyTransition computes P ← Φ P Φᵀ in place for a compounded window
// transition, the decimated counterpart of propagate: one call per flush
// instead of one propagate per step. Like propagate it computes only the
// upper triangle in the second pass and mirrors, keeping P exactly
// symmetric. Term order within each entry matches the dense mul/mulT
// reference (ascending column blocks) so the quick.Check oracle agrees to
// float rounding.
func (p *mat) applyTransition(tr *transition) {
	// First pass: G = Φ·P for the θ/v/p block-rows. The bg/ba block-rows
	// of Φ are identity, so those rows of G equal P and are never
	// materialized; likewise the bottom-right 6x6 of Φ P Φᵀ equals P's
	// and is left untouched (process noise lands later via addDiag).
	// Row-major: each output row streams sequentially over the source
	// rows it combines, so every read and write walks contiguous memory.
	// Per-entry term order matches the dense oracle exactly.
	var g [idxBg][dim]float64
	pt0, pt1, pt2 := &p[idxTheta], &p[idxTheta+1], &p[idxTheta+2]
	pg0, pg1, pg2 := &p[idxBg], &p[idxBg+1], &p[idxBg+2]
	pa0, pa1, pa2 := &p[idxBa], &p[idxBa+1], &p[idxBa+2]
	for i := 0; i < 3; i++ {
		aa0, aa1, aa2 := tr.aa[i][0], tr.aa[i][1], tr.aa[i][2]
		th0, th1, th2 := tr.dth[i][0], tr.dth[i][1], tr.dth[i][2]
		gt := &g[idxTheta+i]
		for j := 0; j < dim; j++ {
			gt[j] = aa0*pt0[j] + aa1*pt1[j] + aa2*pt2[j] +
				th0*pg0[j] + th1*pg1[j] + th2*pg2[j]
		}
		bv0, bv1, bv2 := tr.bv[i][0], tr.bv[i][1], tr.bv[i][2]
		dv0, dv1, dv2 := tr.dv[i][0], tr.dv[i][1], tr.dv[i][2]
		cv0, cv1, cv2 := tr.cv[i][0], tr.cv[i][1], tr.cv[i][2]
		pv, gv := &p[idxVel+i], &g[idxVel+i]
		for j := 0; j < dim; j++ {
			gv[j] = bv0*pt0[j] + bv1*pt1[j] + bv2*pt2[j] +
				pv[j] +
				dv0*pg0[j] + dv1*pg1[j] + dv2*pg2[j] +
				cv0*pa0[j] + cv1*pa1[j] + cv2*pa2[j]
		}
		bp0, bp1, bp2 := tr.bp[i][0], tr.bp[i][1], tr.bp[i][2]
		dp0, dp1, dp2 := tr.dp[i][0], tr.dp[i][1], tr.dp[i][2]
		cp0, cp1, cp2 := tr.cp[i][0], tr.cp[i][1], tr.cp[i][2]
		pp, gp := &p[idxPos+i], &g[idxPos+i]
		for j := 0; j < dim; j++ {
			gp[j] = bp0*pt0[j] + bp1*pt1[j] + bp2*pt2[j] +
				tr.s*pv[j] + pp[j] +
				dp0*pg0[j] + dp1*pg1[j] + dp2*pg2[j] +
				cp0*pa0[j] + cp1*pa1[j] + cp2*pa2[j]
		}
	}
	// Second pass: P = G·Φᵀ for rows i < idxBg, entries j >= i only,
	// mirrored. Rows idxBg.. are identity rows of Φ: their new values are
	// G[i][j] = P[i][j] for j >= i >= idxBg, i.e. unchanged.
	for i := 0; i < idxBg; i++ {
		gi := &g[i]
		t0, t1, t2 := gi[idxTheta], gi[idxTheta+1], gi[idxTheta+2]
		b0, b1, b2 := gi[idxBg], gi[idxBg+1], gi[idxBg+2]
		a0, a1, a2 := gi[idxBa], gi[idxBa+1], gi[idxBa+2]
		// Segmented by Φᵀ's block columns so the inner loops stay
		// branch-free; entries, order, and arithmetic match the single
		// switch-based loop exactly.
		j := i
		for ; j < idxVel; j++ {
			v := t0*tr.aa[j][0] + t1*tr.aa[j][1] + t2*tr.aa[j][2] +
				b0*tr.dth[j][0] + b1*tr.dth[j][1] + b2*tr.dth[j][2]
			p[i][j] = v
			p[j][i] = v
		}
		for ; j < idxPos; j++ {
			jc := j - idxVel
			v := t0*tr.bv[jc][0] + t1*tr.bv[jc][1] + t2*tr.bv[jc][2] +
				gi[j] +
				b0*tr.dv[jc][0] + b1*tr.dv[jc][1] + b2*tr.dv[jc][2] +
				a0*tr.cv[jc][0] + a1*tr.cv[jc][1] + a2*tr.cv[jc][2]
			p[i][j] = v
			p[j][i] = v
		}
		for ; j < idxBg; j++ {
			jc := j - idxPos
			v := t0*tr.bp[jc][0] + t1*tr.bp[jc][1] + t2*tr.bp[jc][2] +
				tr.s*gi[j-3] + gi[j] +
				b0*tr.dp[jc][0] + b1*tr.dp[jc][1] + b2*tr.dp[jc][2] +
				a0*tr.cp[jc][0] + a1*tr.cp[jc][1] + a2*tr.cp[jc][2]
			p[i][j] = v
			p[j][i] = v
		}
		for ; j < dim; j++ {
			v := gi[j]
			p[i][j] = v
			p[j][i] = v
		}
	}
}

// dense returns the transition as a dense matrix (test oracle only).
func (tr *transition) dense() mat {
	m := matIdentity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m[idxTheta+i][idxTheta+j] = tr.aa[i][j]
			m[idxTheta+i][idxBg+j] = tr.dth[i][j]
			m[idxVel+i][idxTheta+j] = tr.bv[i][j]
			m[idxVel+i][idxBg+j] = tr.dv[i][j]
			m[idxVel+i][idxBa+j] = tr.cv[i][j]
			m[idxPos+i][idxTheta+j] = tr.bp[i][j]
			m[idxPos+i][idxBg+j] = tr.dp[i][j]
			m[idxPos+i][idxBa+j] = tr.cp[i][j]
		}
		m[idxPos+i][idxVel+i] = tr.s
	}
	return m
}

// addDiag adds d[i] to the diagonal.
func (a *mat) addDiag(d [dim]float64) {
	for i := 0; i < dim; i++ {
		a[i][i] += d[i]
	}
}

// symmetrize replaces a with (a + aᵀ)/2. The hot-path kernels (propagate,
// applyTransition, the scalar-update downdate) now write mirrored upper
// triangles, so the covariance is exactly symmetric by construction and
// no per-cycle symmetrize pass is needed; this remains for non-symmetric
// callers and as a test utility.
func (a *mat) symmetrize() {
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			v := (a[i][j] + a[j][i]) / 2
			a[i][j] = v
			a[j][i] = v
		}
	}
}

// clampDiag bounds diagonal entries to [lo, hi], keeping the filter
// responsive (variance cannot collapse to zero or blow up to Inf under a
// fault that starves or floods a measurement channel).
func (a *mat) clampDiag(lo, hi float64) {
	for i := 0; i < dim; i++ {
		if a[i][i] < lo {
			a[i][i] = lo
		}
		if a[i][i] > hi {
			a[i][i] = hi
		}
	}
}
