package ekf

// dim is the error-state dimension: attitude (3), velocity (3), position
// (3), gyro bias (3), accelerometer bias (3).
const dim = 15

// Error-state block offsets.
const (
	idxTheta = 0  // attitude error (rotation vector)
	idxVel   = 3  // velocity error
	idxPos   = 6  // position error
	idxBg    = 9  // gyro bias error
	idxBa    = 12 // accel bias error
)

// mat is a dense dim x dim matrix in row-major order. The EKF's covariance
// and transition matrices are small and fixed-size, so plain arrays beat a
// general matrix library and allocate nothing.
type mat [dim][dim]float64

// matIdentity returns the identity matrix.
func matIdentity() mat {
	var m mat
	for i := 0; i < dim; i++ {
		m[i][i] = 1
	}
	return m
}

// mul returns a*b.
func (a *mat) mul(b *mat) mat {
	var out mat
	for i := 0; i < dim; i++ {
		for k := 0; k < dim; k++ {
			aik := a[i][k]
			//lint:allow floatcmp sparsity skip on structurally zero entries; any nonzero must multiply
			if aik == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}

// mulT returns a*bᵀ.
func (a *mat) mulT(b *mat) mat {
	var out mat
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			var s float64
			for k := 0; k < dim; k++ {
				s += a[i][k] * b[j][k]
			}
			out[i][j] = s
		}
	}
	return out
}

// addDiag adds d[i] to the diagonal.
func (a *mat) addDiag(d [dim]float64) {
	for i := 0; i < dim; i++ {
		a[i][i] += d[i]
	}
}

// symmetrize replaces a with (a + aᵀ)/2, containing the numerical
// asymmetry that accumulates over thousands of predict/update cycles.
func (a *mat) symmetrize() {
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			v := (a[i][j] + a[j][i]) / 2
			a[i][j] = v
			a[j][i] = v
		}
	}
}

// clampDiag bounds diagonal entries to [lo, hi], keeping the filter
// responsive (variance cannot collapse to zero or blow up to Inf under a
// fault that starves or floods a measurement channel).
func (a *mat) clampDiag(lo, hi float64) {
	for i := 0; i < dim; i++ {
		if a[i][i] < lo {
			a[i][i] = lo
		}
		if a[i][i] > hi {
			a[i][i] = hi
		}
	}
}
