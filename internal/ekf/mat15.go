package ekf

// dim is the error-state dimension: attitude (3), velocity (3), position
// (3), gyro bias (3), accelerometer bias (3).
const dim = 15

// Error-state block offsets.
const (
	idxTheta = 0  // attitude error (rotation vector)
	idxVel   = 3  // velocity error
	idxPos   = 6  // position error
	idxBg    = 9  // gyro bias error
	idxBa    = 12 // accel bias error
)

// mat is a dense dim x dim matrix in row-major order. The EKF's covariance
// and transition matrices are small and fixed-size, so plain arrays beat a
// general matrix library and allocate nothing.
type mat [dim][dim]float64

// matIdentity returns the identity matrix.
func matIdentity() mat {
	var m mat
	for i := 0; i < dim; i++ {
		m[i][i] = 1
	}
	return m
}

// mul returns a*b.
func (a *mat) mul(b *mat) mat {
	var out mat
	for i := 0; i < dim; i++ {
		for k := 0; k < dim; k++ {
			aik := a[i][k]
			//lint:allow floatcmp sparsity skip on structurally zero entries; any nonzero must multiply
			if aik == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}

// mulT returns a*bᵀ.
func (a *mat) mulT(b *mat) mat {
	var out mat
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			var s float64
			for k := 0; k < dim; k++ {
				s += a[i][k] * b[j][k]
			}
			out[i][j] = s
		}
	}
	return out
}

// propagate computes P ← F P Fᵀ in place for the error-state transition's
// fixed block structure:
//
//	F = | A  0  0 -dt·I  0 |      A = I - [ω]x dt   (θ rows)
//	    | B  I  0  0     C |      B = -R [a]x dt    (v rows)
//	    | 0 dt·I I 0     0 |      C = -R dt         (p rows)
//	    | 0  0  0  I     0 |                        (bg rows)
//	    | 0  0  0  0     I |                        (ba rows)
//
// Exploiting the structure does ~1k multiplies instead of the ~4k a pair
// of generic 15x15 products needs, with no scratch beyond one stack
// matrix. Term order matches the dense mul/mulT reference so results agree
// to float rounding (see TestPropagateMatchesDenseReference).
func (p *mat) propagate(a, b, c *[3][3]float64, dt float64) {
	// First pass: G = F·P. Only the θ, v, and p block-rows differ from P.
	var g mat
	for j := 0; j < dim; j++ {
		for i := 0; i < 3; i++ {
			pt0, pt1, pt2 := p[idxTheta][j], p[idxTheta+1][j], p[idxTheta+2][j]
			g[idxTheta+i][j] = a[i][0]*pt0 + a[i][1]*pt1 + a[i][2]*pt2 - dt*p[idxBg+i][j]
			g[idxVel+i][j] = b[i][0]*pt0 + b[i][1]*pt1 + b[i][2]*pt2 + p[idxVel+i][j] +
				c[i][0]*p[idxBa][j] + c[i][1]*p[idxBa+1][j] + c[i][2]*p[idxBa+2][j]
			g[idxPos+i][j] = dt*p[idxVel+i][j] + p[idxPos+i][j]
			g[idxBg+i][j] = p[idxBg+i][j]
			g[idxBa+i][j] = p[idxBa+i][j]
		}
	}
	// Second pass: P = G·Fᵀ. Row i of the result reads only row i of G.
	for i := 0; i < dim; i++ {
		gi := &g[i]
		t0, t1, t2 := gi[idxTheta], gi[idxTheta+1], gi[idxTheta+2]
		a0, a1, a2 := gi[idxBa], gi[idxBa+1], gi[idxBa+2]
		for jc := 0; jc < 3; jc++ {
			p[i][idxTheta+jc] = t0*a[jc][0] + t1*a[jc][1] + t2*a[jc][2] - dt*gi[idxBg+jc]
			p[i][idxVel+jc] = t0*b[jc][0] + t1*b[jc][1] + t2*b[jc][2] + gi[idxVel+jc] +
				a0*c[jc][0] + a1*c[jc][1] + a2*c[jc][2]
			p[i][idxPos+jc] = dt*gi[idxVel+jc] + gi[idxPos+jc]
			p[i][idxBg+jc] = gi[idxBg+jc]
			p[i][idxBa+jc] = gi[idxBa+jc]
		}
	}
}

// addDiag adds d[i] to the diagonal.
func (a *mat) addDiag(d [dim]float64) {
	for i := 0; i < dim; i++ {
		a[i][i] += d[i]
	}
}

// symmetrize replaces a with (a + aᵀ)/2, containing the numerical
// asymmetry that accumulates over thousands of predict/update cycles.
func (a *mat) symmetrize() {
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			v := (a[i][j] + a[j][i]) / 2
			a[i][j] = v
			a[j][i] = v
		}
	}
}

// clampDiag bounds diagonal entries to [lo, hi], keeping the filter
// responsive (variance cannot collapse to zero or blow up to Inf under a
// fault that starves or floods a measurement channel).
func (a *mat) clampDiag(lo, hi float64) {
	for i := 0; i < dim; i++ {
		if a[i][i] < lo {
			a[i][i] = lo
		}
		if a[i][i] > hi {
			a[i][i] = hi
		}
	}
}
