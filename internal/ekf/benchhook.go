package ekf

import "uavres/internal/mathx"

// PropagateSymLoop runs the symmetric covariance propagation kernel
// (P ← F P Fᵀ alone, with representative step blocks) n times and returns
// the covariance trace so the work cannot be elided. It exists for
// cmd/bench's in-process micro harness, which cannot reach the unexported
// kernel; flight code never calls it.
func PropagateSymLoop(n int) float64 {
	f := New(DefaultConfig())
	const dt = 0.004
	att := mathx.QuatIdentity().Integrate(mathx.V3(0.3, 0.2, 0.1), 0.5)
	rot := att.RotationMatrix()
	wSkew := mathx.Skew(mathx.V3(0.05, -0.03, 0.02))
	raSkew := rot.Mul(mathx.Skew(mathx.V3(0.4, -0.2, -9.6)))
	var a, b, c [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a[i][j] = -wSkew.M[i][j] * dt
			b[i][j] = -raSkew.M[i][j] * dt
			c[i][j] = -rot.M[i][j] * dt
		}
		a[i][i] += 1
	}
	for i := 0; i < n; i++ {
		f.p.propagate(&a, &b, &c, dt)
	}
	tr := 0.0
	for i := 0; i < dim; i++ {
		tr += f.p[i][i]
	}
	return tr
}
