package ekf

import (
	"math"

	"uavres/internal/mathx"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// updateScalar performs one scalar measurement update with measurement row
// h, innovation y, and noise variance r. It returns whether the innovation
// passed the gate (rejected measurements leave the filter untouched).
// Vector measurements with diagonal noise are fused as sequential scalar
// updates, the standard trick that avoids matrix inversion entirely.
func (f *Filter) updateScalar(h [dim]float64, y, r float64) (accepted bool, ratio float64) {
	if f.health.Diverged || math.IsNaN(y) || math.IsInf(y, 0) {
		return false, math.Inf(1)
	}
	// Fusion must see current covariance: apply any pending decimated
	// propagation before forming the innovation variance and gain.
	f.flushCovariance()
	// Collect h's nonzero support once — observation rows have 1–3
	// nonzero entries, so ph = P hᵀ walks 15·nnz products instead of a
	// branch inside a 15x15 sweep. Ascending index order keeps every sum
	// in the exact order of the dense loop it replaced.
	var nz [dim]int
	nnz := 0
	for j := 0; j < dim; j++ {
		//lint:allow floatcmp sparsity skip: observation rows are structurally zero or exact
		if h[j] != 0 {
			nz[nnz] = j
			nnz++
		}
	}
	// ph = P hᵀ, s = h P hᵀ + r. P is exactly symmetric by construction,
	// so column j equals row j and each ph entry can accumulate over
	// contiguous rows instead of strided columns; the ascending-j
	// accumulation order (and hence every rounding) is unchanged.
	var ph [dim]float64
	var s float64
	if nnz > 0 {
		r0 := &f.p[nz[0]]
		h0 := h[nz[0]]
		for i := 0; i < dim; i++ {
			ph[i] = r0[i] * h0
		}
		for _, j := range nz[1:nnz] {
			rj := &f.p[j]
			hj := h[j]
			for i := 0; i < dim; i++ {
				ph[i] += rj[i] * hj
			}
		}
	}
	for _, j := range nz[:nnz] {
		s += h[j] * ph[j]
	}
	s += r
	if s <= 0 {
		return false, math.Inf(1)
	}
	gate := f.cfg.GateSigma
	ratio = math.Abs(y) / math.Sqrt(s)
	if gate > 0 {
		ratio /= gate
		if ratio > 1 {
			return false, ratio
		}
	} else {
		ratio = 0
	}

	// K = P hᵀ / s; error-state correction dx = K y. The gain column is
	// kept for the downdate below, which needs the same ph[i]/s values —
	// division is the slowest scalar op in the loop, so it runs once.
	var gain, dx [dim]float64
	for i := 0; i < dim; i++ {
		gain[i] = ph[i] / s
		dx[i] = gain[i] * y
	}
	// Covariance: P = (I - K h) P. For a scalar update this is the
	// rank-one downdate P - (ph)(ph)ᵀ/s, symmetric whenever P is, so only
	// the upper triangle is computed and mirrored — in place, since each
	// entry is read exactly once before being written.
	for i := 0; i < dim; i++ {
		k := gain[i]
		for j := i; j < dim; j++ {
			v := f.p[i][j] - k*ph[j]
			f.p[i][j] = v
			f.p[j][i] = v
		}
	}
	f.p.clampDiag(1e-12, 1e8)

	f.injectError(dx)
	return true, ratio
}

// injectError folds the error-state correction into the nominal state and
// implicitly resets the error to zero.
func (f *Filter) injectError(dx [dim]float64) {
	dTheta := mathx.V3(dx[idxTheta], dx[idxTheta+1], dx[idxTheta+2])
	f.st.Att = f.st.Att.Mul(mathx.QuatFromRotVec(dTheta)).Normalized()
	f.st.Vel = f.st.Vel.Add(mathx.V3(dx[idxVel], dx[idxVel+1], dx[idxVel+2]))
	f.st.Pos = f.st.Pos.Add(mathx.V3(dx[idxPos], dx[idxPos+1], dx[idxPos+2]))
	f.st.GyroBias = f.st.GyroBias.Add(mathx.V3(dx[idxBg], dx[idxBg+1], dx[idxBg+2]))
	f.st.AccelBias = f.st.AccelBias.Add(mathx.V3(dx[idxBa], dx[idxBa+1], dx[idxBa+2]))

	// Bias estimates are physically bounded; a fault that drags them to
	// absurd values would otherwise poison every later prediction.
	f.st.GyroBias = f.st.GyroBias.Clamp(0.5)
	f.st.AccelBias = f.st.AccelBias.Clamp(3.0)
}

func selectorRow(offset int) [3][dim]float64 {
	var rows [3][dim]float64
	for i := 0; i < 3; i++ {
		rows[i][offset+i] = 1
	}
	return rows
}

// FuseGPS fuses one GPS position+velocity fix and updates aiding health.
func (f *Filter) FuseGPS(s sensors.GPSSample) {
	if !s.Valid {
		return
	}
	posRows := selectorRow(idxPos)
	velRows := selectorRow(idxVel)
	posInnov := s.PosNED.Sub(f.st.Pos)
	velInnov := s.VelNED.Sub(f.st.Vel)
	f.health.LastGPSPosInnov = posInnov
	f.health.LastGPSVelInnov = velInnov

	// GPS counts as healthy only when every axis passes its gate: a single
	// diverging channel (e.g. runaway velocity under an accel fault) must
	// surface in the health report even while the other axes still agree.
	allAccepted := true
	worst := 0.0
	for i, y := range []float64{posInnov.X, posInnov.Y, posInnov.Z} {
		ok, ratio := f.updateScalar(posRows[i], y, f.cfg.GPSPosStd*f.cfg.GPSPosStd)
		allAccepted = allAccepted && ok
		worst = math.Max(worst, ratio)
	}
	for i, y := range []float64{velInnov.X, velInnov.Y, velInnov.Z} {
		ok, ratio := f.updateScalar(velRows[i], y, f.cfg.GPSVelStd*f.cfg.GPSVelStd)
		allAccepted = allAccepted && ok
		worst = math.Max(worst, ratio)
	}
	f.health.LastGPSRatio = worst
	if !math.IsInf(worst, 0) { // diverged/NaN updates report +Inf
		f.health.MaxGPSRatio = math.Max(f.health.MaxGPSRatio, worst)
	}
	f.health.GPSFusions++
	if !allAccepted {
		f.health.GPSGateRejects++
	}

	if allAccepted {
		f.health.GPSRejectSec = 0
	} else if f.lastGPST > 0 {
		f.health.GPSRejectSec += s.T - f.lastGPST
	}
	f.lastGPST = s.T

	// Reset-on-timeout: dead-reckoning has drifted so far that the gate
	// keeps rejecting a live reference. Trust the reference, snap the
	// velocity and position states to it, and reopen the covariance so
	// fusion resumes (what PX4's EKF2 does instead of failing forever).
	if f.cfg.GPSResetSec > 0 && f.health.GPSRejectSec >= f.cfg.GPSResetSec && !f.health.Diverged {
		f.flushCovariance()
		f.st.Vel = s.VelNED
		f.st.Pos = s.PosNED
		for i := 0; i < 3; i++ {
			f.p[idxVel+i][idxVel+i] = 4
			f.p[idxPos+i][idxPos+i] = 25
		}
		f.health.GPSRejectSec = 0
		f.health.Resets++
	}

	f.fuseCourseYaw(s)
}

// fuseCourseYaw aids heading from the GPS ground course when moving fast
// enough — the mag-free yaw aiding path (the paper's study excludes the
// magnetometer). The controller flies nose-along-track, making ground
// course a valid heading reference in nominal flight.
func (f *Filter) fuseCourseYaw(s sensors.GPSSample) {
	if s.VelNED.NormXY() < f.cfg.CourseMinSpeed {
		return
	}
	course := math.Atan2(s.VelNED.Y, s.VelNED.X)
	_, _, yaw := f.st.Att.Euler()
	y := mathx.WrapPi(course - yaw)

	// A world-Z rotation error maps to the local error state through the
	// attitude: dψ = e_z · (R dθ)  ⇒  h = third row of R on the θ block.
	rot := f.st.Att.RotationMatrix()
	var h [dim]float64
	h[idxTheta] = rot.M[2][0]
	h[idxTheta+1] = rot.M[2][1]
	h[idxTheta+2] = rot.M[2][2]
	f.updateScalar(h, y, f.cfg.YawStd*f.cfg.YawStd)
}

// FuseMag fuses one magnetometer heading measurement. The magnetometer is
// the vehicle's absolute yaw reference; without it yaw error is
// unobservable in coordinated flight (the controller slaves true yaw to
// estimated yaw, so GPS course can never expose the error).
func (f *Filter) FuseMag(s sensors.MagSample) {
	_, _, yaw := f.st.Att.Euler()
	y := mathx.WrapPi(s.YawRad - yaw)
	rot := f.st.Att.RotationMatrix()
	var h [dim]float64
	h[idxTheta] = rot.M[2][0]
	h[idxTheta+1] = rot.M[2][1]
	h[idxTheta+2] = rot.M[2][2]
	f.updateScalar(h, y, f.cfg.MagYawStd*f.cfg.MagYawStd)
}

// FuseGravity performs accelerometer leveling: when the vehicle is
// quasi-static (measured specific force within GravityMaxDev of 1 g) the
// measured direction is fused as an observation of "up" in the body
// frame, correcting roll/pitch drift. This is how MEMS attitude filters
// stay level without absolute attitude references — and, faithfully to
// the real failure mode, it is driven by the (possibly corrupted)
// accelerometer stream.
func (f *Filter) FuseGravity(s sensors.IMUSample) {
	if f.cfg.GravityStd <= 0 {
		return
	}
	accel := s.Accel.Sub(f.st.AccelBias)
	norm := accel.Norm()
	//lint:allow floatcmp exact zero-norm guard before dividing by the norm
	if math.Abs(norm-physics.Gravity) > f.cfg.GravityMaxDev || norm == 0 {
		return
	}
	// Measured and predicted "up" directions in the body frame. For a
	// local attitude error dθ: u_true ≈ u_pred + [u_pred]x dθ, so the
	// measurement rows are the skew matrix of the predicted direction.
	uMeas := accel.Scale(-1 / norm)
	uPred := f.st.Att.RotateInv(mathx.V3(0, 0, -1))
	hMat := mathx.Skew(uPred)
	innov := uMeas.Sub(uPred)
	r := f.cfg.GravityStd * f.cfg.GravityStd
	for row, y := range []float64{innov.X, innov.Y, innov.Z} {
		var h [dim]float64
		h[idxTheta] = hMat.M[row][0]
		h[idxTheta+1] = hMat.M[row][1]
		h[idxTheta+2] = hMat.M[row][2]
		f.updateScalar(h, y, r)
	}
}

// FuseBaro fuses one barometric altitude sample (altitude = -posZ).
func (f *Filter) FuseBaro(s sensors.BaroSample) {
	var h [dim]float64
	h[idxPos+2] = -1
	y := s.AltM - (-f.st.Pos.Z)
	ok, ratio := f.updateScalar(h, y, f.cfg.BaroStd*f.cfg.BaroStd)
	f.health.LastBaroRatio = ratio
	if !math.IsInf(ratio, 0) {
		f.health.MaxBaroRatio = math.Max(f.health.MaxBaroRatio, ratio)
	}
	f.health.BaroFusions++
	if !ok {
		f.health.BaroGateRejects++
	}
	if ok {
		f.health.BaroRejectSec = 0
	} else if f.lastBarT > 0 {
		f.health.BaroRejectSec += s.T - f.lastBarT
	}
	f.lastBarT = s.T

	// Height reset-on-timeout, mirroring the GPS path.
	if f.cfg.BaroResetSec > 0 && f.health.BaroRejectSec >= f.cfg.BaroResetSec && !f.health.Diverged {
		f.flushCovariance()
		f.st.Pos.Z = -s.AltM
		f.p[idxPos+2][idxPos+2] = 25
		f.health.BaroRejectSec = 0
		f.health.Resets++
	}
}
