package ekf

import (
	"math"
	"testing"

	"uavres/internal/mathx"
	"uavres/internal/physics"
	"uavres/internal/sensors"
)

// noisyStationaryFlight drives one filter through secs seconds of noisy
// stationary flight at 250 Hz with baro (25 Hz) + gravity (25 Hz) + GPS
// (5 Hz) aiding, recording every innovation test ratio the filter reports.
// The rng seeds make two calls produce identical measurement streams, so
// two filters differing only in covariance decimation see the same world.
func noisyStationaryFlight(f *Filter, secs float64, seed int64) (ratios []float64) {
	rng := mathx.NewRand(seed)
	const dt = 0.004
	steps := int(secs / dt)
	for i := 0; i < steps; i++ {
		tm := float64(i) * dt
		s := sensors.IMUSample{
			T:     tm,
			Accel: mathx.V3(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05, -physics.Gravity+rng.NormFloat64()*0.05),
			Gyro:  mathx.V3(rng.NormFloat64()*0.002, rng.NormFloat64()*0.002, rng.NormFloat64()*0.002),
		}
		f.Predict(s, dt)
		if i%10 == 0 { // 25 Hz
			f.FuseBaro(sensors.BaroSample{T: tm, AltM: rng.NormFloat64() * 0.1})
			ratios = append(ratios, f.Health().LastBaroRatio)
			f.FuseGravity(s)
		}
		if i%50 == 0 { // 5 Hz
			f.FuseGPS(sensors.GPSSample{
				T:      tm,
				Valid:  true,
				PosNED: mathx.V3(rng.NormFloat64()*0.3, rng.NormFloat64()*0.3, rng.NormFloat64()*0.3),
				VelNED: mathx.V3(rng.NormFloat64()*0.1, rng.NormFloat64()*0.1, rng.NormFloat64()*0.1),
			})
			ratios = append(ratios, f.Health().LastGPSRatio)
		}
	}
	return ratios
}

// TestDecimationDriftBounded is the tentpole's accuracy gate: decimated
// covariance propagation (k=4) must track the exact per-step path — the
// innovation test ratios (NEES per scalar channel, gate-normalized) and
// the covariance itself may only drift by a small bounded amount over a
// long aided flight.
func TestDecimationDriftBounded(t *testing.T) {
	cfgExact := DefaultConfig()
	cfgExact.CovarianceDecimation = 1
	cfgDecim := DefaultConfig()
	cfgDecim.CovarianceDecimation = 4

	fe := New(cfgExact)
	fd := New(cfgDecim)
	const seed = 42
	re := noisyStationaryFlight(fe, 30, seed)
	rd := noisyStationaryFlight(fd, 30, seed)

	if len(re) != len(rd) || len(re) == 0 {
		t.Fatalf("fusion counts differ: %d vs %d", len(re), len(rd))
	}
	maxRatioDrift := 0.0
	for i := range re {
		if d := math.Abs(re[i] - rd[i]); d > maxRatioDrift {
			maxRatioDrift = d
		}
	}
	// Gate-normalized ratios are O(0.1) in nominal flight; decimation may
	// shift them only marginally.
	if maxRatioDrift > 0.02 {
		t.Errorf("innovation-ratio drift %v exceeds bound 0.02", maxRatioDrift)
	}

	for i := 0; i < dim; i++ {
		ve, vd := fe.Covariance(i), fd.Covariance(i)
		if rel := math.Abs(ve-vd) / ve; rel > 0.05 {
			t.Errorf("covariance diag %d drifted %.2f%% (exact %v decimated %v)", i, rel*100, ve, vd)
		}
	}

	se, sd := fe.State(), fd.State()
	if d := se.Pos.Sub(sd.Pos).Norm(); d > 0.05 {
		t.Errorf("position estimates drifted %v m", d)
	}
	if d := se.Vel.Sub(sd.Vel).Norm(); d > 0.05 {
		t.Errorf("velocity estimates drifted %v m/s", d)
	}
}

// TestDecimationCovarianceMatchesFullRateAtFlush: with no aiding at all,
// the decimated covariance at a flush boundary must closely match the
// per-step path (the only difference is the scaled-Q interleave, which is
// second order in the window length).
func TestDecimationCovarianceMatchesFullRateAtFlush(t *testing.T) {
	cfgExact := DefaultConfig()
	cfgExact.CovarianceDecimation = 1
	cfgDecim := DefaultConfig()
	cfgDecim.CovarianceDecimation = 4
	fe := New(cfgExact)
	fd := New(cfgDecim)

	const dt = 0.004
	sample := sensors.IMUSample{
		Accel: mathx.V3(0.4, -0.2, -physics.Gravity+0.1),
		Gyro:  mathx.V3(0.05, -0.03, 0.02),
	}
	for i := 0; i < 1000; i++ { // 4 s, 250 flush windows
		tm := float64(i) * dt
		s := sample
		s.T = tm
		fe.Predict(s, dt)
		fd.Predict(s, dt)
	}
	for i := 0; i < dim; i++ {
		ve, vd := fe.Covariance(i), fd.Covariance(i)
		if rel := math.Abs(ve-vd) / ve; rel > 0.01 {
			t.Errorf("diag %d: exact %v decimated %v (rel %.3f%%)", i, ve, vd, rel*100)
		}
	}
}

// TestDecimationPhaseAndForcing exercises the window bookkeeping: the
// pending counter, flush-on-read, and the fault-window full-rate override.
func TestDecimationPhaseAndForcing(t *testing.T) {
	f := New(DefaultConfig()) // k=4
	const dt = 0.004
	step := func(n int) {
		for i := 0; i < n; i++ {
			f.Predict(stationarySample(float64(i)*dt), dt)
		}
	}

	step(3)
	if f.pending != 3 {
		t.Fatalf("pending after 3 predicts = %d, want 3", f.pending)
	}
	step(1)
	if f.pending != 0 {
		t.Fatalf("pending after flush boundary = %d, want 0", f.pending)
	}

	step(2)
	if f.pending != 2 {
		t.Fatalf("pending mid-window = %d, want 2", f.pending)
	}
	// Reading the covariance flushes the window.
	_ = f.Covariance(idxPos)
	if f.pending != 0 {
		t.Fatalf("Covariance read must flush; pending = %d", f.pending)
	}

	// Forcing full rate flushes and keeps the exact path step-by-step.
	step(2)
	f.SetCovarianceFullRate(true)
	if f.pending != 0 {
		t.Fatalf("entering full rate must flush; pending = %d", f.pending)
	}
	step(5)
	if f.pending != 0 {
		t.Fatalf("full-rate predicts must not accumulate; pending = %d", f.pending)
	}
	f.SetCovarianceFullRate(false)
	step(2)
	if f.pending != 2 {
		t.Fatalf("decimation must resume after release; pending = %d", f.pending)
	}

	// A measurement update flushes before fusing.
	f.FuseBaro(sensors.BaroSample{T: 1, AltM: 0})
	if f.pending != 0 {
		t.Fatalf("fusion must flush; pending = %d", f.pending)
	}
}

// TestDecimationSnapshotCarriesWindow: the mid-window accumulator must
// ride Snapshot/Restore so forked runs resume bit-identically.
func TestDecimationSnapshotCarriesWindow(t *testing.T) {
	f := New(DefaultConfig())
	const dt = 0.004
	for i := 0; i < 6; i++ { // pending = 2 (6 mod 4)
		f.Predict(stationarySample(float64(i)*dt), dt)
	}
	snap := f.Snapshot()

	g := New(DefaultConfig())
	g.Restore(snap)
	if g.pending != f.pending {
		t.Fatalf("pending not restored: %d vs %d", g.pending, f.pending)
	}
	if g.acc != f.acc {
		t.Fatalf("transition accumulator not restored")
	}

	// Continuing both must stay bit-identical.
	for i := 6; i < 20; i++ {
		s := stationarySample(float64(i) * dt)
		f.Predict(s, dt)
		g.Predict(s, dt)
	}
	if f.p != g.p {
		t.Fatalf("covariance diverged after restore")
	}
	if f.st != g.st {
		t.Fatalf("state diverged after restore")
	}
}

// TestPredictAllocFree pins the predict hot path at zero allocations per
// op, on both the decimated and the exact covariance path (alloc
// regression guard; the campaign runs this 250 times per sim-second).
func TestPredictAllocFree(t *testing.T) {
	for _, k := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.CovarianceDecimation = k
		f := New(cfg)
		s := stationarySample(0)
		const dt = 0.004
		if n := testing.AllocsPerRun(100, func() { f.Predict(s, dt) }); n != 0 {
			t.Errorf("Predict k=%d allocates %v per op, want 0", k, n)
		}
	}
}

// TestFuseAllocFree pins the measurement-update hot path at zero
// allocations per op.
func TestFuseAllocFree(t *testing.T) {
	f := New(DefaultConfig())
	s := stationarySample(0)
	f.Predict(s, 0.004)
	bar := sensors.BaroSample{T: 0.1, AltM: 0}
	if n := testing.AllocsPerRun(100, func() { f.FuseBaro(bar) }); n != 0 {
		t.Errorf("FuseBaro allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { f.FuseGravity(s) }); n != 0 {
		t.Errorf("FuseGravity allocates %v per op, want 0", n)
	}
}
