package physics

import (
	"testing"

	"uavres/internal/mathx"
)

// TestBodyStepAllocFree pins the 500 Hz rigid-body step at zero
// allocations per op (alloc-regression guard: the campaign runs this
// 500 times per simulated second per case).
func TestBodyStepAllocFree(t *testing.T) {
	body, err := NewBody(DefaultParams(), CalmWind())
	if err != nil {
		t.Fatal(err)
	}
	hover := DefaultParams().HoverThrustFraction()
	body.SetMotorCommands(Rotors{hover, hover, hover, hover})
	st := body.State()
	st.Pos.Z = -20
	body.SetState(st)
	if n := testing.AllocsPerRun(100, func() { body.Step(0.002) }); n != 0 {
		t.Errorf("Body.Step allocates %v per op, want 0", n)
	}
}

// TestWindStepAllocFree pins the gusty wind model (OU discretization +
// three normal draws) at zero allocations per op.
func TestWindStepAllocFree(t *testing.T) {
	w := NewWind(mathx.V3(1, 0, 0), 0.25, 2.0, mathx.NewRand(7))
	if n := testing.AllocsPerRun(100, func() { w.Step(0.002) }); n != 0 {
		t.Errorf("Wind.Step allocates %v per op, want 0", n)
	}
}
