package physics

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestNoRotorCountLiterals scans the physics and control sources for the
// hard-coded quad assumptions the airframe refactor removed: the fixed
// rotorGeom table, [4]float64 rotor vectors, and "4 * per-rotor" limit
// arithmetic. Any reappearance silently re-pins the stack to four rotors,
// so the ban is enforced at test time. (The allocator's [wrenchDims]
// arrays are wrench-space, not rotor-space, and named accordingly.)
func TestNoRotorCountLiterals(t *testing.T) {
	banned := []*regexp.Regexp{
		regexp.MustCompile(`rotorGeom`),
		regexp.MustCompile(`\[4\]float64`),
		regexp.MustCompile(`4\s*\*\s*\w*\.?MaxThrustPerRotorN`),
		regexp.MustCompile(`MaxThrustPerRotorN\s*\*\s*4\b`),
	}
	for _, dir := range []string{".", "../control"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, re := range banned {
					if re.MatchString(line) {
						t.Errorf("%s/%s:%d: rotor-count literal %q in: %s",
							dir, name, i+1, re, strings.TrimSpace(line))
					}
				}
			}
		}
	}
}
