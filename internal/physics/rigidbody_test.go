package physics

import (
	"math"
	"testing"
	"testing/quick"

	"uavres/internal/mathx"
)

func newTestBody(t *testing.T) *Body {
	t.Helper()
	b, err := NewBody(DefaultParams(), CalmWind())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
		ok     bool
	}{
		{"default", func(*Params) {}, true},
		{"zero_mass", func(p *Params) { p.MassKg = 0 }, false},
		{"neg_inertia", func(p *Params) { p.Inertia.Y = -1 }, false},
		{"zero_arm", func(p *Params) { p.ArmLengthM = 0 }, false},
		{"underpowered", func(p *Params) { p.MaxThrustPerRotorN = 1 }, false},
		{"zero_tau", func(p *Params) { p.MotorTau = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewBodyRejectsInvalidParams(t *testing.T) {
	p := DefaultParams()
	p.MassKg = -1
	if _, err := NewBody(p, nil); err == nil {
		t.Error("NewBody accepted invalid params")
	}
}

func TestHoverThrustFraction(t *testing.T) {
	p := DefaultParams()
	f := p.HoverThrustFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("hover fraction %v out of (0,1)", f)
	}
	// At the hover fraction total thrust equals weight.
	if got := f * 4 * p.MaxThrustPerRotorN; math.Abs(got-p.MassKg*Gravity) > 1e-9 {
		t.Errorf("hover thrust %v != weight %v", got, p.MassKg*Gravity)
	}
}

func TestHoverIsNearEquilibrium(t *testing.T) {
	b := newTestBody(t)
	hover := b.Params().HoverThrustFraction()
	// Start airborne with rotors pre-spun to hover.
	s := b.State()
	s.Pos.Z = -20
	for i := range s.Rotor {
		s.Rotor[i] = hover
	}
	b.SetState(s)
	b.SetMotorCommands(Rotors{hover, hover, hover, hover})
	for i := 0; i < 2500; i++ { // 5 s at 2 ms
		b.Step(0.002)
	}
	got := b.State()
	if math.Abs(got.AltitudeM()-20) > 0.5 {
		t.Errorf("altitude after 5 s hover = %v, want ~20", got.AltitudeM())
	}
	if got.Vel.Norm() > 0.2 {
		t.Errorf("velocity at hover = %v, want ~0", got.Vel)
	}
	if got.Att.TiltAngle() > 0.01 {
		t.Errorf("tilt at hover = %v rad", got.Att.TiltAngle())
	}
}

func TestFreeFallAcceleration(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -500
	b.SetState(s)
	b.SetMotorCommands(Rotors{}) // motors off
	const dt, steps = 0.002, 500     // 1 s
	for i := 0; i < steps; i++ {
		b.Step(dt)
	}
	got := b.State()
	// After 1 s of fall: v = vt*(1-exp(-t/tau)) with tau = m/c ~ 3.3 s and
	// terminal velocity ~32.7 m/s gives ~8.5 m/s; drag-free would be 9.81.
	if got.Vel.Z < 8 || got.Vel.Z > Gravity {
		t.Errorf("fall speed after 1 s = %v, want ~8.5", got.Vel.Z)
	}
	drop := got.AltitudeM() - 500
	if drop > -4 || drop < -5.2 {
		t.Errorf("altitude change after 1 s = %v, want ~-4.5", drop)
	}
}

func TestDifferentialThrustRolls(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -50
	b.SetState(s)
	hover := b.Params().HoverThrustFraction()
	// More thrust on the right side (+Y rotors 0 and 3) rolls negative X.
	b.SetMotorCommands(Rotors{hover + 0.1, hover - 0.1, hover - 0.1, hover + 0.1})
	for i := 0; i < 100; i++ {
		b.Step(0.002)
	}
	if w := b.State().Omega.X; w >= 0 {
		t.Errorf("roll rate = %v, want negative", w)
	}
}

func TestYawTorqueFromRotorPairs(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -50
	b.SetState(s)
	hover := b.Params().HoverThrustFraction()
	// Speeding up the +yaw pair (rotors 2,3) must yaw positively.
	b.SetMotorCommands(Rotors{hover - 0.05, hover - 0.05, hover + 0.05, hover + 0.05})
	for i := 0; i < 100; i++ {
		b.Step(0.002)
	}
	if w := b.State().Omega.Z; w <= 0 {
		t.Errorf("yaw rate = %v, want positive", w)
	}
}

func TestGroundSupportsRestingVehicle(t *testing.T) {
	b := newTestBody(t)
	b.SetMotorCommands(Rotors{})
	for i := 0; i < 2000; i++ {
		b.Step(0.002)
	}
	s := b.State()
	if !s.OnGround() {
		t.Error("vehicle left the ground with motors off")
	}
	if math.Abs(s.Pos.Z) > 0.15 {
		t.Errorf("resting penetration = %v m", s.Pos.Z)
	}
	if s.Vel.Norm() > 0.05 {
		t.Errorf("resting velocity = %v", s.Vel)
	}
	// On the ground an ideal accelerometer reads ~1 g upward.
	sf := b.SpecificForce()
	if math.Abs(sf.Z+Gravity) > 0.6 {
		t.Errorf("resting specific force Z = %v, want ~%v", sf.Z, -Gravity)
	}
}

func TestTouchdownSpeedRecorded(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -10 // drop from 10 m
	b.SetState(s)
	b.SetMotorCommands(Rotors{})
	for i := 0; i < 2000 && b.TouchdownSpeed() == 0; i++ {
		b.Step(0.002)
	}
	// Impact speed from 10 m is sqrt(2*g*10) ~ 14 m/s minus drag.
	v := b.TouchdownSpeed()
	if v < 10 || v > 15 {
		t.Errorf("touchdown speed = %v, want ~13-14", v)
	}
}

func TestSpecificForceInFreeFallIsZero(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -1000
	b.SetState(s)
	b.SetMotorCommands(Rotors{})
	b.Step(0.002)
	// In free fall (ignoring drag at low speed) specific force ~ 0.
	if f := b.SpecificForce().Norm(); f > 0.1 {
		t.Errorf("free-fall specific force = %v, want ~0", f)
	}
}

func TestStateIsFinite(t *testing.T) {
	s := State{Att: mathx.QuatIdentity()}
	if !s.IsFinite() {
		t.Error("zero state reported non-finite")
	}
	s.Vel.X = math.NaN()
	if s.IsFinite() {
		t.Error("NaN state reported finite")
	}
	s = State{Att: mathx.QuatIdentity()}
	s.Rotor[2] = math.NaN()
	if s.IsFinite() {
		t.Error("NaN rotor reported finite")
	}
}

func TestRateSaturation(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -100
	s.Omega = mathx.V3(1000, 1000, 1000) // absurd initial rate
	b.SetState(s)
	b.Step(0.002)
	if w := b.State().Omega.MaxAbs(); w > 50 {
		t.Errorf("rate after saturation = %v, want <= 50", w)
	}
}

func TestMixerForwardAllocateRoundTrip(t *testing.T) {
	m := NewMixer(DefaultParams())
	f := func(thrustRaw, tx, ty, tz float64) bool {
		// Wrench strictly inside the achievable envelope: per-rotor share
		// stays within [0, tMax] so no desaturation distorts the result.
		thrust := 5 + math.Mod(math.Abs(bounded(thrustRaw)), 15) // 5..20 N
		torque := mathx.V3(
			math.Mod(bounded(tx), 0.15),
			math.Mod(bounded(ty), 0.15),
			math.Mod(bounded(tz), 0.01),
		)
		cmd := m.Allocate(thrust, torque)
		var thrusts Rotors
		for i := range cmd {
			if cmd[i] < 0 || cmd[i] > 1 {
				return false
			}
			thrusts[i] = cmd[i] * DefaultParams().MaxThrustPerRotorN
		}
		gotThrust, gotTorque := m.Forward(thrusts)
		return math.Abs(gotThrust-thrust) < 1e-6 &&
			gotTorque.Sub(torque).Norm() < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMixerSaturationClampsToValidRange(t *testing.T) {
	m := NewMixer(DefaultParams())
	cmd := m.Allocate(1000, mathx.V3(50, -50, 10)) // far beyond envelope
	for i, c := range cmd {
		if c < 0 || c > 1 {
			t.Errorf("cmd[%d] = %v out of [0,1]", i, c)
		}
	}
}

func TestWindStationaryVariance(t *testing.T) {
	rng := mathx.NewRand(42)
	w := NewWind(mathx.V3(2, 0, 0), 1.5, 2.0, rng)
	var stats mathx.Running
	const dt = 0.01
	for i := 0; i < 200000; i++ {
		v := w.Step(dt)
		if i > 1000 {
			stats.Add(v.X)
		}
	}
	if math.Abs(stats.Mean()-2) > 0.15 {
		t.Errorf("gust mean = %v, want ~2 (mean wind)", stats.Mean())
	}
	if math.Abs(stats.Std()-1.5) > 0.25 {
		t.Errorf("gust std = %v, want ~1.5", stats.Std())
	}
}

func TestCalmWindIsZero(t *testing.T) {
	w := CalmWind()
	for i := 0; i < 10; i++ {
		if v := w.Step(0.01); v.Norm() != 0 {
			t.Fatalf("calm wind = %v", v)
		}
	}
	if w.Current().Norm() != 0 {
		t.Error("calm wind Current() nonzero")
	}
}

func TestWindDeterministicWithSameSeed(t *testing.T) {
	a := NewWind(mathx.Zero3, 1, 1, mathx.NewRand(5))
	b := NewWind(mathx.Zero3, 1, 1, mathx.NewRand(5))
	for i := 0; i < 100; i++ {
		if a.Step(0.01) != b.Step(0.01) {
			t.Fatal("same-seed wind diverged")
		}
	}
}

func bounded(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}
