package physics

import (
	"fmt"
	"math"
	"strings"
)

// Airframe selects a multirotor rotor layout. The zero value is the X-quad
// the paper flies, so configurations that never mention an airframe keep
// their exact legacy meaning — and their spec fingerprints.
type Airframe int

const (
	// QuadX is the PX4-style X quadrotor (rotor order FR, BL, FL, BR;
	// rotors 0/1 spin one way, 2/3 the other).
	QuadX Airframe = iota
	// HexaX is a symmetric X hexarotor: rotors every 60 deg starting at
	// 30 deg from the nose, adjacent rotors spinning opposite ways.
	HexaX
	// OctoX is a symmetric X octorotor: rotors every 45 deg starting at
	// 22.5 deg from the nose, adjacent rotors spinning opposite ways.
	OctoX
)

// MaxRotors is the widest supported airframe. Per-rotor state uses
// fixed-size vectors of this width so vehicle state stays value-copyable
// for the batch runner's structure-of-arrays slabs.
const MaxRotors = 8

// Rotors is a per-rotor value vector sized for the widest airframe. Slots
// at or beyond the active airframe's rotor count are zero and stay zero.
type Rotors [MaxRotors]float64

// Airframes lists every supported airframe in declaration order.
func Airframes() []Airframe { return []Airframe{QuadX, HexaX, OctoX} }

// Valid reports whether a is a known airframe.
func (a Airframe) Valid() bool { return a >= QuadX && a <= OctoX }

// String returns the canonical label.
func (a Airframe) String() string {
	switch a {
	case QuadX:
		return "quad-x"
	case HexaX:
		return "hexa-x"
	case OctoX:
		return "octo-x"
	}
	return fmt.Sprintf("Airframe(%d)", int(a))
}

// Slug returns the short form used in case IDs.
func (a Airframe) Slug() string {
	switch a {
	case QuadX:
		return "quad"
	case HexaX:
		return "hexa"
	case OctoX:
		return "octo"
	}
	return fmt.Sprintf("airframe%d", int(a))
}

// Rotors returns the rotor count of the airframe.
func (a Airframe) Rotors() int {
	switch a {
	case HexaX:
		return 6
	case OctoX:
		return 8
	}
	return 4
}

// ParseAirframe maps a case-insensitive label to an Airframe. Both the
// canonical form ("hexa-x") and the short slug ("hexa") are accepted.
func ParseAirframe(s string) (Airframe, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quad-x", "quad", "quadx":
		return QuadX, nil
	case "hexa-x", "hexa", "hexax", "hex":
		return HexaX, nil
	case "octo-x", "octo", "octox", "oct":
		return OctoX, nil
	}
	valid := make([]string, 0, len(Airframes()))
	for _, a := range Airframes() {
		valid = append(valid, a.String())
	}
	return 0, fmt.Errorf("physics: unknown airframe %q (valid: %s)", s, strings.Join(valid, ", "))
}

// Descriptor is the concrete rotor geometry of an airframe for a given set
// of physical parameters: dimensionless rotor directions on the body XY
// plane, spin signs, the arm scale turning directions into positions, and
// the per-rotor thrust ceiling. The mixer, the reconfiguring allocator,
// and the fault injector all consume the airframe through this one type.
type Descriptor struct {
	Frame Airframe
	N     int // rotor count
	// CosX/CosY are the dimensionless rotor directions in the FRD body
	// frame (X forward, Y right). For QuadX they are the legacy +-1 axis
	// signs (scaled by the diagonal arm projection); for HexaX/OctoX they
	// are unit-circle cosines (scaled by the full arm length).
	CosX, CosY Rotors
	// Dir is the sign of each rotor's yaw reaction torque.
	Dir Rotors
	// ScaleM converts (CosX, CosY) into body-frame rotor positions (m).
	ScaleM float64
	// MaxThrustN is the thrust one rotor produces at full command.
	MaxThrustN float64
}

// Descriptor instantiates the geometry for parameters p.
func (a Airframe) Descriptor(p Params) Descriptor {
	d := Descriptor{Frame: a, N: a.Rotors(), MaxThrustN: p.MaxThrustPerRotorN}
	switch a {
	case HexaX:
		// Rotors every 60 deg starting 30 deg off the nose, alternating
		// spin. The half-integer sines keep the allocation divisors exact.
		h := math.Sqrt(3) / 2
		d.CosX = Rotors{h, 0, -h, -h, 0, h}
		d.CosY = Rotors{0.5, 1, 0.5, -0.5, -1, -0.5}
		d.Dir = Rotors{-1, +1, -1, +1, -1, +1}
		d.ScaleM = p.ArmLengthM
	case OctoX:
		// Rotors every 45 deg starting 22.5 deg off the nose, alternating
		// spin. The +-c/+-s sign pattern cancels cross terms pairwise.
		c, s := math.Cos(math.Pi/8), math.Sin(math.Pi/8)
		d.CosX = Rotors{c, s, -s, -c, -c, -s, s, c}
		d.CosY = Rotors{s, c, c, s, -s, -c, -c, -s}
		d.Dir = Rotors{-1, +1, -1, +1, -1, +1, -1, +1}
		d.ScaleM = p.ArmLengthM
	default:
		// Legacy X-quad table: position signs scaled by the per-axis arm
		// projection ArmLengthM/sqrt(2), PX4 rotor order FR, BL, FL, BR.
		d.CosX = Rotors{+1, -1, +1, -1}
		d.CosY = Rotors{+1, -1, -1, +1}
		d.Dir = Rotors{-1, -1, +1, +1}
		d.ScaleM = p.ArmLengthM / math.Sqrt2
	}
	return d
}

// PosX returns rotor i's body-frame X position in meters.
func (d Descriptor) PosX(i int) float64 { return d.CosX[i] * d.ScaleM }

// PosY returns rotor i's body-frame Y position in meters.
func (d Descriptor) PosY(i int) float64 { return d.CosY[i] * d.ScaleM }

// Opposite returns the index of the rotor diametrically opposite rotor i —
// the partner the reconfiguring allocator derates to rebalance yaw when
// rotor i is condemned (fmdtools' opposite-rotor reconfiguration map).
func (a Airframe) Opposite(i int) int {
	switch a {
	case HexaX:
		return (i + 3) % 6
	case OctoX:
		return (i + 4) % 8
	}
	// Quad order FR, BL, FL, BR: diagonal partners are (0,1) and (2,3).
	return [4]int{1, 0, 3, 2}[i]
}
