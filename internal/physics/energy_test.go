package physics_test

import (
	"math"
	"testing"

	"uavres/internal/mathx"
	"uavres/internal/physics"
)

func newTestBody(t *testing.T) *physics.Body {
	t.Helper()
	b, err := physics.NewBody(physics.DefaultParams(), physics.CalmWind())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMotorsOffEnergyDecays: with motors off and no wind, total mechanical
// energy can only decrease (drag and ground dissipate, nothing injects).
func TestMotorsOffEnergyDecays(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -100
	s.Vel = mathx.V3(5, -3, 0)
	s.Omega = mathx.V3(2, -1, 0.5)
	b.SetState(s)
	b.SetMotorCommands(physics.Rotors{})
	p := b.Params()
	energy := func(st physics.State) float64 {
		kin := 0.5 * p.MassKg * st.Vel.NormSq()
		rot := 0.5 * (p.Inertia.X*st.Omega.X*st.Omega.X +
			p.Inertia.Y*st.Omega.Y*st.Omega.Y +
			p.Inertia.Z*st.Omega.Z*st.Omega.Z)
		pot := p.MassKg * physics.Gravity * st.AltitudeM()
		return kin + rot + pot
	}
	prev := energy(b.State())
	for i := 0; i < 1000; i++ {
		b.Step(0.002)
		cur := energy(b.State())
		if cur > prev+1e-6 {
			t.Fatalf("energy grew at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

// TestTerminalVelocity: a long free fall settles at drag-limited speed.
func TestTerminalVelocity(t *testing.T) {
	b := newTestBody(t)
	s := b.State()
	s.Pos.Z = -5000
	b.SetState(s)
	b.SetMotorCommands(physics.Rotors{})
	for i := 0; i < 10000; i++ { // 20 s
		b.Step(0.002)
	}
	p := b.Params()
	want := p.MassKg * physics.Gravity / p.LinDragCoeff.Z
	if got := b.State().Vel.Z; math.Abs(got-want) > 0.05*want {
		t.Errorf("terminal velocity = %v, want ~%v", got, want)
	}
}
