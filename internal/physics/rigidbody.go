package physics

import (
	"fmt"
	"math"

	"uavres/internal/mathx"
)

// Mixer converts between the control wrench (total thrust + body torques)
// and per-rotor thrusts for an N-rotor airframe. Both the simulator's
// forward model and the controller's allocation use this one type, so they
// can never disagree about geometry. The allocation side is the precomputed
// pseudo-inverse of the forward model: for the symmetric airframes the
// Gram matrix B*B' is diagonal, so each column reduces to a dimensionless
// numerator over an exact axis divisor — for QuadX this reproduces the
// legacy closed form bit for bit.
type Mixer struct {
	n    int     // rotor count
	tMax float64 // max thrust per rotor

	// Forward-model torque coefficient of rotor i per newton of thrust.
	rollK, pitchK, yawK Rotors

	// Pseudo-inverse allocation:
	//   t[i] = thrustN/divT + allocRoll[i]*tau.X/divRoll +
	//          allocPitch[i]*tau.Y/divPitch + allocYaw[i]*tau.Z/divYaw
	allocRoll, allocPitch, allocYaw Rotors
	divT, divRoll, divPitch, divYaw float64
}

// NewMixer builds a mixer for the given airframe.
func NewMixer(p Params) Mixer {
	d := p.Layout.Descriptor(p)
	m := Mixer{n: d.N, tMax: d.MaxThrustN}
	var sumRoll, sumPitch, sumYaw float64
	for i := 0; i < d.N; i++ {
		m.allocRoll[i] = -d.CosY[i]
		m.allocPitch[i] = d.CosX[i]
		m.allocYaw[i] = d.Dir[i]
		m.rollK[i] = m.allocRoll[i] * d.ScaleM
		m.pitchK[i] = m.allocPitch[i] * d.ScaleM
		m.yawK[i] = d.Dir[i] * p.TorqueCoeff
		sumRoll += m.allocRoll[i] * m.allocRoll[i]
		sumPitch += m.allocPitch[i] * m.allocPitch[i]
		sumYaw += d.Dir[i] * d.Dir[i]
	}
	m.divT = float64(d.N)
	m.divRoll = sumRoll * d.ScaleM
	m.divPitch = sumPitch * d.ScaleM
	m.divYaw = sumYaw * p.TorqueCoeff
	return m
}

// N returns the rotor count of the mixer's airframe.
func (m Mixer) N() int { return m.n }

// MaxThrustPerRotorN returns the per-rotor thrust ceiling (N).
func (m Mixer) MaxThrustPerRotorN() float64 { return m.tMax }

// MaxTotalThrustN returns the collective thrust ceiling across all rotors.
func (m Mixer) MaxTotalThrustN() float64 { return m.tMax * float64(m.n) }

// Forward computes total thrust (N, along body -Z) and body torque (N m)
// from per-rotor thrusts (N).
func (m Mixer) Forward(t Rotors) (thrust float64, torque mathx.Vec3) {
	for i := 0; i < m.n; i++ {
		thrust += t[i]
		torque.X += m.rollK[i] * t[i]
		torque.Y += m.pitchK[i] * t[i]
		torque.Z += m.yawK[i] * t[i]
	}
	return thrust, torque
}

// Allocate inverts Forward: it distributes a desired wrench across the
// rotors and returns normalized commands in [0, 1]. Saturation preserves
// the thrust axis first (desaturation by uniform shift), matching how PX4's
// mixer prioritizes attitude authority.
func (m Mixer) Allocate(thrustN float64, torque mathx.Vec3) Rotors {
	var t Rotors
	for i := 0; i < m.n; i++ {
		t[i] = thrustN/m.divT +
			m.allocRoll[i]*torque.X/m.divRoll +
			m.allocPitch[i]*torque.Y/m.divPitch +
			m.allocYaw[i]*torque.Z/m.divYaw
	}
	// Uniform shift desaturation: keep differential (attitude) terms intact.
	minT, maxT := t[0], t[0]
	for i := 1; i < m.n; i++ {
		minT = math.Min(minT, t[i])
		maxT = math.Max(maxT, t[i])
	}
	if minT < 0 {
		shift := math.Min(-minT, m.tMax*float64(m.n)) // bounded shift
		for i := 0; i < m.n; i++ {
			t[i] += shift
		}
	}
	if maxT > m.tMax {
		// Scale down around the mean only if still saturated.
		for i := 0; i < m.n; i++ {
			if t[i] > m.tMax {
				t[i] = m.tMax
			}
			if t[i] < 0 {
				t[i] = 0
			}
		}
	}
	var cmd Rotors
	for i := 0; i < m.n; i++ {
		cmd[i] = mathx.Clamp(t[i]/m.tMax, 0, 1)
	}
	return cmd
}

// Body simulates one multirotor rigid body.
type Body struct {
	//lint:allow snapshotcomplete immutable after NewBody; Step takes its address for read-only access
	params Params
	mixer  Mixer
	state  State
	wind   *Wind

	cmd Rotors // latest normalized rotor commands

	// Cached motor-lag coefficient 1-exp(-dt/tau), keyed on the exact
	// inputs that produced it. The 500 Hz loop always passes the same dt,
	// so the Exp is computed once per flight instead of per step.
	// Derived state: deliberately absent from BodySnapshot.
	//lint:allow snapshotcomplete derived motor-lag cache keyed on the exact (dt, tau) inputs; recomputed on any change
	cacheLagDt, cacheLagTau, lag float64

	lastSpecificForce mathx.Vec3 // body-frame specific force (what an ideal accel senses)
	lastAirspeed      float64
	touchdownSpeed    float64 // impact speed at the most recent air->ground transition
	wasAirborne       bool
}

// NewBody returns a body at rest on the ground at the world origin.
func NewBody(p Params, wind *Wind) (*Body, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("physics: %w", err)
	}
	if wind == nil {
		wind = CalmWind()
	}
	return &Body{
		params: p,
		mixer:  NewMixer(p),
		state: State{
			Att: mathx.QuatIdentity(),
		},
		wind: wind,
		// On the ground gravity is cancelled by the surface: an ideal
		// accelerometer reads +1g along body -Z (specific force up).
		lastSpecificForce: mathx.V3(0, 0, -Gravity),
	}, nil
}

// Params returns the airframe parameters.
func (b *Body) Params() Params { return b.params }

// Mixer returns the shared geometry mixer.
func (b *Body) Mixer() Mixer { return b.mixer }

// State returns a copy of the current rigid-body state.
func (b *Body) State() State { return b.state }

// SetState overrides the body state (tests and scenario setup).
func (b *Body) SetState(s State) { b.state = s }

// BodySnapshot captures the rigid body's complete dynamic state, including
// the wind process it is coupled to (checkpointing).
type BodySnapshot struct {
	state             State
	cmd               Rotors
	lastSpecificForce mathx.Vec3
	lastAirspeed      float64
	touchdownSpeed    float64
	wasAirborne       bool
	wind              WindSnapshot
}

// Snapshot captures the body state, motor commands, derived sensor
// quantities, and the wind model.
func (b *Body) Snapshot() BodySnapshot {
	return BodySnapshot{
		state:             b.state,
		cmd:               b.cmd,
		lastSpecificForce: b.lastSpecificForce,
		lastAirspeed:      b.lastAirspeed,
		touchdownSpeed:    b.touchdownSpeed,
		wasAirborne:       b.wasAirborne,
		wind:              b.wind.Snapshot(),
	}
}

// Restore reinstates a state captured with Snapshot.
func (b *Body) Restore(s BodySnapshot) error {
	if err := b.wind.Restore(s.wind); err != nil {
		return err
	}
	b.state = s.state
	b.cmd = s.cmd
	b.lastSpecificForce = s.lastSpecificForce
	b.lastAirspeed = s.lastAirspeed
	b.touchdownSpeed = s.touchdownSpeed
	b.wasAirborne = s.wasAirborne
	return nil
}

// SetMotorCommands sets the normalized rotor commands in [0, 1]; values
// outside the range are clamped.
func (b *Body) SetMotorCommands(cmd Rotors) {
	for i := range cmd {
		b.cmd[i] = mathx.Clamp(cmd[i], 0, 1)
	}
}

// MotorCommands returns the latest normalized rotor commands — the value
// actuator fault forking seeds a stuck rotor from.
func (b *Body) MotorCommands() Rotors { return b.cmd }

// RotorStates returns the lagged normalized rotor thrust states, the
// quantity a per-rotor FDI monitor compares against its expected model.
func (b *Body) RotorStates() Rotors { return b.state.Rotor }

// SpecificForce returns the body-frame specific force (m/s^2) from the last
// step — the quantity an ideal accelerometer measures.
func (b *Body) SpecificForce() mathx.Vec3 { return b.lastSpecificForce }

// AngularRate returns the true body angular rate — the quantity an ideal
// gyroscope measures.
func (b *Body) AngularRate() mathx.Vec3 { return b.state.Omega }

// Airspeed returns the magnitude of air-relative velocity from the last step.
func (b *Body) Airspeed() float64 { return b.lastAirspeed }

// TouchdownSpeed returns the total speed at the most recent transition from
// airborne to ground contact, or 0 if the vehicle has not touched down.
// The crash detector uses it to distinguish a landing from an impact.
func (b *Body) TouchdownSpeed() float64 { return b.touchdownSpeed }

// Step advances the simulation by dt seconds using semi-implicit Euler with
// exact quaternion and motor-lag integration. dt must be positive and small
// relative to the vehicle dynamics (<= 5 ms recommended). It is literally
// StepWind followed by StepWithWind — the split the batch runner uses to
// advance one shared wind process and feed its gust into every lockstep
// fork (the OU gust is a pure function of time, independent of body state,
// so the deviates are shareable).
func (b *Body) Step(dt float64) {
	b.StepWithWind(dt, b.wind.Step(dt))
}

// StepWind advances only the body's wind process by dt and returns the
// world-frame wind velocity, consuming exactly the deviates Step would.
func (b *Body) StepWind(dt float64) mathx.Vec3 { return b.wind.Step(dt) }

// AdoptWind copies the wind-process state (gust, mean, noise stream) from
// another body. The batch runner uses it when detaching a fork from
// lockstep: the donor's wind is exactly the state the fork's own would
// hold after the same number of steps, so the fork can resume stepping
// its own wind bit-identically.
func (b *Body) AdoptWind(from *Body) error {
	return b.wind.Restore(from.wind.Snapshot())
}

// StepWithWind is Step with an externally advanced wind sample: identical
// dynamics, no draw from the body's own wind process.
func (b *Body) StepWithWind(dt float64, windNED mathx.Vec3) {
	p := &b.params
	s := &b.state

	// Motor first-order lag, integrated exactly.
	//lint:allow floatcmp cache key is the exact previous inputs; any change recomputes
	if dt != b.cacheLagDt || p.MotorTau != b.cacheLagTau {
		b.cacheLagDt, b.cacheLagTau = dt, p.MotorTau
		b.lag = 1 - math.Exp(-dt/p.MotorTau)
	}
	lag := b.lag
	var rotorThrust Rotors
	for i := 0; i < b.mixer.n; i++ {
		s.Rotor[i] += (b.cmd[i] - s.Rotor[i]) * lag
		rotorThrust[i] = s.Rotor[i] * p.MaxThrustPerRotorN
	}
	thrustN, torque := b.mixer.Forward(rotorThrust)

	// Aerodynamic drag against air-relative velocity, in the body frame.
	airRelWorld := s.Vel.Sub(windNED)
	b.lastAirspeed = airRelWorld.Norm()
	airRelBody := s.Att.RotateInv(airRelWorld)
	dragBody := airRelBody.Hadamard(p.LinDragCoeff).Neg()

	// Non-gravitational force in the body frame: rotor thrust along -Z
	// plus drag (plus ground reaction, added below in the world frame).
	forceBody := mathx.V3(0, 0, -thrustN).Add(dragBody)
	forceWorld := s.Att.Rotate(forceBody)

	// Ground contact: spring-damper normal force plus horizontal friction.
	airborne := s.Pos.Z < 0
	if !airborne {
		pen := s.Pos.Z // penetration depth (>= 0)
		// Upward reaction: spring on penetration plus damping against the
		// downward velocity (Vel.Z > 0 is moving down in NED).
		normal := (p.GroundStiffness*pen + p.GroundDamping*s.Vel.Z) * p.MassKg
		if normal < 0 {
			normal = 0 // ground only pushes, never pulls
		}
		forceWorld.Z -= normal
		// Friction decelerates horizontal sliding and spins.
		forceWorld.X -= 4 * p.MassKg * s.Vel.X
		forceWorld.Y -= 4 * p.MassKg * s.Vel.Y
		torque = torque.Sub(s.Omega.Scale(0.3 * p.Inertia.MaxAbs() * p.GroundDamping))
	}
	if b.wasAirborne && !airborne {
		b.touchdownSpeed = s.Vel.Norm()
	}
	b.wasAirborne = airborne

	// Specific force excludes gravity: it is what an accelerometer senses.
	b.lastSpecificForce = s.Att.RotateInv(forceWorld.Scale(1 / p.MassKg))

	// Translational dynamics (semi-implicit Euler: velocity first).
	accel := forceWorld.Scale(1 / p.MassKg).Add(mathx.V3(0, 0, Gravity))
	s.Vel = s.Vel.Add(accel.Scale(dt))
	s.Pos = s.Pos.Add(s.Vel.Scale(dt))
	if s.Pos.Z > 0.5 {
		// Hard floor: the spring model cannot be driven deeper than half a
		// meter; clamp to keep a crashed vehicle from tunnelling.
		s.Pos.Z = 0.5
		if s.Vel.Z > 0 {
			s.Vel.Z = 0
		}
	}

	// Rotational dynamics: I*dw = tau - w x (I w) - angular drag.
	iw := p.Inertia.Hadamard(s.Omega)
	gyroscopic := s.Omega.Cross(iw)
	angDrag := s.Omega.Hadamard(p.AngDragCoeff)
	torqueTotal := torque.Sub(gyroscopic).Sub(angDrag)
	alpha := mathx.Vec3{
		X: torqueTotal.X / p.Inertia.X,
		Y: torqueTotal.Y / p.Inertia.Y,
		Z: torqueTotal.Z / p.Inertia.Z,
	}
	s.Omega = s.Omega.Add(alpha.Scale(dt))
	// Physical rate saturation: aerodynamic and structural limits keep real
	// airframes well below this; it also keeps the integrator stable when
	// the controller is fed garbage rates by an injected fault.
	const maxRate = 50 // rad/s (~2865 deg/s)
	s.Omega = s.Omega.Clamp(maxRate)

	// Exact attitude integration.
	s.Att = s.Att.Integrate(s.Omega, dt)
}
