package physics

import (
	"fmt"
	"math"

	"uavres/internal/mathx"
)

// rotorGeom encodes the X-configuration rotor layout in the FRD body frame:
// position signs (scaled by ArmLengthM/sqrt(2)) and the sign of the yaw
// reaction torque. Rotors 0/1 spin one way, 2/3 the other, PX4-style.
var rotorGeom = [4]struct{ sx, sy, yaw float64 }{
	{+1, +1, -1}, // front-right
	{-1, -1, -1}, // back-left
	{+1, -1, +1}, // front-left
	{-1, +1, +1}, // back-right
}

// Mixer converts between the control wrench (total thrust + body torques)
// and per-rotor thrusts for the X quad geometry. Both the simulator's
// forward model and the controller's allocation use this one type, so they
// can never disagree about geometry.
type Mixer struct {
	armD float64 // rotor moment arm projected on each axis: ArmLengthM/sqrt(2)
	kTau float64 // thrust -> yaw reaction torque coefficient
	tMax float64 // max thrust per rotor
}

// NewMixer builds a mixer for the given airframe.
func NewMixer(p Params) Mixer {
	return Mixer{armD: p.ArmLengthM / math.Sqrt2, kTau: p.TorqueCoeff, tMax: p.MaxThrustPerRotorN}
}

// Forward computes total thrust (N, along body -Z) and body torque (N m)
// from per-rotor thrusts (N).
func (m Mixer) Forward(t [4]float64) (thrust float64, torque mathx.Vec3) {
	for i, g := range rotorGeom {
		thrust += t[i]
		torque.X += -g.sy * m.armD * t[i]
		torque.Y += g.sx * m.armD * t[i]
		torque.Z += g.yaw * m.kTau * t[i]
	}
	return thrust, torque
}

// Allocate inverts Forward: it distributes a desired wrench across the four
// rotors and returns normalized commands in [0, 1]. Saturation preserves
// the thrust axis first (desaturation by uniform shift), matching how PX4's
// mixer prioritizes attitude authority.
func (m Mixer) Allocate(thrustN float64, torque mathx.Vec3) [4]float64 {
	var t [4]float64
	for i, g := range rotorGeom {
		t[i] = thrustN/4 +
			(-g.sy)*torque.X/(4*m.armD) +
			g.sx*torque.Y/(4*m.armD) +
			g.yaw*torque.Z/(4*m.kTau)
	}
	// Uniform shift desaturation: keep differential (attitude) terms intact.
	minT, maxT := t[0], t[0]
	for _, ti := range t[1:] {
		minT = math.Min(minT, ti)
		maxT = math.Max(maxT, ti)
	}
	if minT < 0 {
		shift := math.Min(-minT, m.tMax*4) // bounded shift
		for i := range t {
			t[i] += shift
		}
	}
	if maxT > m.tMax {
		// Scale down around the mean only if still saturated.
		for i := range t {
			if t[i] > m.tMax {
				t[i] = m.tMax
			}
			if t[i] < 0 {
				t[i] = 0
			}
		}
	}
	var cmd [4]float64
	for i := range t {
		cmd[i] = mathx.Clamp(t[i]/m.tMax, 0, 1)
	}
	return cmd
}

// Body simulates one quadrotor rigid body.
type Body struct {
	//lint:allow snapshotcomplete immutable after NewBody; Step takes its address for read-only access
	params Params
	mixer  Mixer
	state  State
	wind   *Wind

	cmd [4]float64 // latest normalized rotor commands

	// Cached motor-lag coefficient 1-exp(-dt/tau), keyed on the exact
	// inputs that produced it. The 500 Hz loop always passes the same dt,
	// so the Exp is computed once per flight instead of per step.
	// Derived state: deliberately absent from BodySnapshot.
	//lint:allow snapshotcomplete derived motor-lag cache keyed on the exact (dt, tau) inputs; recomputed on any change
	cacheLagDt, cacheLagTau, lag float64

	lastSpecificForce mathx.Vec3 // body-frame specific force (what an ideal accel senses)
	lastAirspeed      float64
	touchdownSpeed    float64 // impact speed at the most recent air->ground transition
	wasAirborne       bool
}

// NewBody returns a body at rest on the ground at the world origin.
func NewBody(p Params, wind *Wind) (*Body, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("physics: %w", err)
	}
	if wind == nil {
		wind = CalmWind()
	}
	return &Body{
		params: p,
		mixer:  NewMixer(p),
		state: State{
			Att: mathx.QuatIdentity(),
		},
		wind: wind,
		// On the ground gravity is cancelled by the surface: an ideal
		// accelerometer reads +1g along body -Z (specific force up).
		lastSpecificForce: mathx.V3(0, 0, -Gravity),
	}, nil
}

// Params returns the airframe parameters.
func (b *Body) Params() Params { return b.params }

// Mixer returns the shared geometry mixer.
func (b *Body) Mixer() Mixer { return b.mixer }

// State returns a copy of the current rigid-body state.
func (b *Body) State() State { return b.state }

// SetState overrides the body state (tests and scenario setup).
func (b *Body) SetState(s State) { b.state = s }

// BodySnapshot captures the rigid body's complete dynamic state, including
// the wind process it is coupled to (checkpointing).
type BodySnapshot struct {
	state             State
	cmd               [4]float64
	lastSpecificForce mathx.Vec3
	lastAirspeed      float64
	touchdownSpeed    float64
	wasAirborne       bool
	wind              WindSnapshot
}

// Snapshot captures the body state, motor commands, derived sensor
// quantities, and the wind model.
func (b *Body) Snapshot() BodySnapshot {
	return BodySnapshot{
		state:             b.state,
		cmd:               b.cmd,
		lastSpecificForce: b.lastSpecificForce,
		lastAirspeed:      b.lastAirspeed,
		touchdownSpeed:    b.touchdownSpeed,
		wasAirborne:       b.wasAirborne,
		wind:              b.wind.Snapshot(),
	}
}

// Restore reinstates a state captured with Snapshot.
func (b *Body) Restore(s BodySnapshot) error {
	if err := b.wind.Restore(s.wind); err != nil {
		return err
	}
	b.state = s.state
	b.cmd = s.cmd
	b.lastSpecificForce = s.lastSpecificForce
	b.lastAirspeed = s.lastAirspeed
	b.touchdownSpeed = s.touchdownSpeed
	b.wasAirborne = s.wasAirborne
	return nil
}

// SetMotorCommands sets the normalized rotor commands in [0, 1]; values
// outside the range are clamped.
func (b *Body) SetMotorCommands(cmd [4]float64) {
	for i := range cmd {
		b.cmd[i] = mathx.Clamp(cmd[i], 0, 1)
	}
}

// SpecificForce returns the body-frame specific force (m/s^2) from the last
// step — the quantity an ideal accelerometer measures.
func (b *Body) SpecificForce() mathx.Vec3 { return b.lastSpecificForce }

// AngularRate returns the true body angular rate — the quantity an ideal
// gyroscope measures.
func (b *Body) AngularRate() mathx.Vec3 { return b.state.Omega }

// Airspeed returns the magnitude of air-relative velocity from the last step.
func (b *Body) Airspeed() float64 { return b.lastAirspeed }

// TouchdownSpeed returns the total speed at the most recent transition from
// airborne to ground contact, or 0 if the vehicle has not touched down.
// The crash detector uses it to distinguish a landing from an impact.
func (b *Body) TouchdownSpeed() float64 { return b.touchdownSpeed }

// Step advances the simulation by dt seconds using semi-implicit Euler with
// exact quaternion and motor-lag integration. dt must be positive and small
// relative to the vehicle dynamics (<= 5 ms recommended). It is literally
// StepWind followed by StepWithWind — the split the batch runner uses to
// advance one shared wind process and feed its gust into every lockstep
// fork (the OU gust is a pure function of time, independent of body state,
// so the deviates are shareable).
func (b *Body) Step(dt float64) {
	b.StepWithWind(dt, b.wind.Step(dt))
}

// StepWind advances only the body's wind process by dt and returns the
// world-frame wind velocity, consuming exactly the deviates Step would.
func (b *Body) StepWind(dt float64) mathx.Vec3 { return b.wind.Step(dt) }

// AdoptWind copies the wind-process state (gust, mean, noise stream) from
// another body. The batch runner uses it when detaching a fork from
// lockstep: the donor's wind is exactly the state the fork's own would
// hold after the same number of steps, so the fork can resume stepping
// its own wind bit-identically.
func (b *Body) AdoptWind(from *Body) error {
	return b.wind.Restore(from.wind.Snapshot())
}

// StepWithWind is Step with an externally advanced wind sample: identical
// dynamics, no draw from the body's own wind process.
func (b *Body) StepWithWind(dt float64, windNED mathx.Vec3) {
	p := &b.params
	s := &b.state

	// Motor first-order lag, integrated exactly.
	//lint:allow floatcmp cache key is the exact previous inputs; any change recomputes
	if dt != b.cacheLagDt || p.MotorTau != b.cacheLagTau {
		b.cacheLagDt, b.cacheLagTau = dt, p.MotorTau
		b.lag = 1 - math.Exp(-dt/p.MotorTau)
	}
	lag := b.lag
	var rotorThrust [4]float64
	for i := range s.Rotor {
		s.Rotor[i] += (b.cmd[i] - s.Rotor[i]) * lag
		rotorThrust[i] = s.Rotor[i] * p.MaxThrustPerRotorN
	}
	thrustN, torque := b.mixer.Forward(rotorThrust)

	// Aerodynamic drag against air-relative velocity, in the body frame.
	airRelWorld := s.Vel.Sub(windNED)
	b.lastAirspeed = airRelWorld.Norm()
	airRelBody := s.Att.RotateInv(airRelWorld)
	dragBody := airRelBody.Hadamard(p.LinDragCoeff).Neg()

	// Non-gravitational force in the body frame: rotor thrust along -Z
	// plus drag (plus ground reaction, added below in the world frame).
	forceBody := mathx.V3(0, 0, -thrustN).Add(dragBody)
	forceWorld := s.Att.Rotate(forceBody)

	// Ground contact: spring-damper normal force plus horizontal friction.
	airborne := s.Pos.Z < 0
	if !airborne {
		pen := s.Pos.Z // penetration depth (>= 0)
		// Upward reaction: spring on penetration plus damping against the
		// downward velocity (Vel.Z > 0 is moving down in NED).
		normal := (p.GroundStiffness*pen + p.GroundDamping*s.Vel.Z) * p.MassKg
		if normal < 0 {
			normal = 0 // ground only pushes, never pulls
		}
		forceWorld.Z -= normal
		// Friction decelerates horizontal sliding and spins.
		forceWorld.X -= 4 * p.MassKg * s.Vel.X
		forceWorld.Y -= 4 * p.MassKg * s.Vel.Y
		torque = torque.Sub(s.Omega.Scale(0.3 * p.Inertia.MaxAbs() * p.GroundDamping))
	}
	if b.wasAirborne && !airborne {
		b.touchdownSpeed = s.Vel.Norm()
	}
	b.wasAirborne = airborne

	// Specific force excludes gravity: it is what an accelerometer senses.
	b.lastSpecificForce = s.Att.RotateInv(forceWorld.Scale(1 / p.MassKg))

	// Translational dynamics (semi-implicit Euler: velocity first).
	accel := forceWorld.Scale(1 / p.MassKg).Add(mathx.V3(0, 0, Gravity))
	s.Vel = s.Vel.Add(accel.Scale(dt))
	s.Pos = s.Pos.Add(s.Vel.Scale(dt))
	if s.Pos.Z > 0.5 {
		// Hard floor: the spring model cannot be driven deeper than half a
		// meter; clamp to keep a crashed vehicle from tunnelling.
		s.Pos.Z = 0.5
		if s.Vel.Z > 0 {
			s.Vel.Z = 0
		}
	}

	// Rotational dynamics: I*dw = tau - w x (I w) - angular drag.
	iw := p.Inertia.Hadamard(s.Omega)
	gyroscopic := s.Omega.Cross(iw)
	angDrag := s.Omega.Hadamard(p.AngDragCoeff)
	torqueTotal := torque.Sub(gyroscopic).Sub(angDrag)
	alpha := mathx.Vec3{
		X: torqueTotal.X / p.Inertia.X,
		Y: torqueTotal.Y / p.Inertia.Y,
		Z: torqueTotal.Z / p.Inertia.Z,
	}
	s.Omega = s.Omega.Add(alpha.Scale(dt))
	// Physical rate saturation: aerodynamic and structural limits keep real
	// airframes well below this; it also keeps the integrator stable when
	// the controller is fed garbage rates by an injected fault.
	const maxRate = 50 // rad/s (~2865 deg/s)
	s.Omega = s.Omega.Clamp(maxRate)

	// Exact attitude integration.
	s.Att = s.Att.Integrate(s.Omega, dt)
}
