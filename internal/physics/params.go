// Package physics implements the 6-DOF multirotor rigid-body simulation
// that replaces Gazebo in the paper's experimental stack: rotor/motor
// dynamics, aerodynamic drag, a stochastic wind model, and ground contact.
// The rotor layout is an Airframe descriptor (quad-x, hexa-x, octo-x);
// state is expressed in a local NED world frame (Z down) with an FRD body
// frame, matching PX4 conventions.
package physics

import (
	"fmt"
	"math"

	"uavres/internal/mathx"
)

// Gravity is the standard gravitational acceleration (m/s^2), positive down
// in the NED world frame.
const Gravity = 9.80665

// Params describes a multirotor airframe. The defaults model a small
// X-configuration multirotor of the class flown in the paper's Valencia
// scenario (1-2 kg delivery/survey quads).
//
// Params is part of the spec fingerprint (marshaled under Go field names),
// so any field added here must carry `json:",omitempty"` with the zero
// value meaning the legacy default — otherwise every stored result key
// changes.
type Params struct {
	// Layout selects the rotor geometry. The zero value is the X-quad the
	// paper flies.
	Layout Airframe `json:",omitempty"`
	// MassKg is the vehicle take-off mass.
	MassKg float64
	// Inertia is the diagonal body inertia (kg m^2) about X, Y, Z.
	Inertia mathx.Vec3
	// ArmLengthM is the distance from the center of mass to each rotor.
	ArmLengthM float64
	// MaxThrustPerRotorN is the thrust one rotor produces at full command.
	MaxThrustPerRotorN float64
	// TorqueCoeff maps rotor thrust (N) to reaction yaw torque (N m).
	TorqueCoeff float64
	// MotorTau is the first-order rotor spin-up time constant (s).
	MotorTau float64
	// LinDragCoeff is the linear aerodynamic drag coefficient (N per m/s)
	// applied to velocity relative to the air, per body axis.
	LinDragCoeff mathx.Vec3
	// AngDragCoeff damps body rates (N m per rad/s).
	AngDragCoeff mathx.Vec3
	// GroundStiffness and GroundDamping form the ground spring-damper.
	GroundStiffness float64
	GroundDamping   float64
}

// DefaultParams returns the reference airframe used across experiments.
func DefaultParams() Params {
	return Params{
		MassKg:             1.5,
		Inertia:            mathx.V3(0.029, 0.029, 0.055),
		ArmLengthM:         0.25,
		MaxThrustPerRotorN: 7.5, // thrust-to-weight ~2.0
		TorqueCoeff:        0.016,
		MotorTau:           0.05,
		LinDragCoeff:       mathx.V3(0.35, 0.35, 0.45),
		AngDragCoeff:       mathx.V3(0.006, 0.006, 0.009),
		GroundStiffness:    250,
		GroundDamping:      60,
	}
}

// Validate reports whether the airframe parameters are physically sane.
func (p Params) Validate() error {
	rotors := float64(p.Layout.Rotors())
	switch {
	case !p.Layout.Valid():
		return fmt.Errorf("physics: unknown airframe layout %d", int(p.Layout))
	case p.MassKg <= 0:
		return fmt.Errorf("physics: non-positive mass %v", p.MassKg)
	case p.Inertia.X <= 0 || p.Inertia.Y <= 0 || p.Inertia.Z <= 0:
		return fmt.Errorf("physics: non-positive inertia %v", p.Inertia)
	case p.ArmLengthM <= 0:
		return fmt.Errorf("physics: non-positive arm length %v", p.ArmLengthM)
	case p.MaxThrustPerRotorN*rotors <= p.MassKg*Gravity:
		return fmt.Errorf("physics: max total thrust %.2f N cannot lift %.2f kg",
			p.MaxThrustPerRotorN*rotors, p.MassKg)
	case p.MotorTau <= 0:
		return fmt.Errorf("physics: non-positive motor time constant %v", p.MotorTau)
	}
	return nil
}

// HoverThrustFraction returns the per-rotor command fraction that balances
// gravity — the controller's feed-forward operating point.
func (p Params) HoverThrustFraction() float64 {
	return p.MassKg * Gravity / (float64(p.Layout.Rotors()) * p.MaxThrustPerRotorN)
}

// State is the full rigid-body state plus rotor speeds.
type State struct {
	// Pos is the position in world NED meters (Z down; airborne is Z < 0).
	Pos mathx.Vec3
	// Vel is the velocity in world NED (m/s).
	Vel mathx.Vec3
	// Att rotates body-frame vectors into the world frame.
	Att mathx.Quat
	// Omega is the body angular rate (rad/s).
	Omega mathx.Vec3
	// Rotor holds normalized rotor thrust states in [0, 1] after the
	// first-order motor lag; slots beyond the airframe's rotor count
	// stay zero.
	Rotor Rotors
}

// AltitudeM returns height above ground (positive up).
func (s State) AltitudeM() float64 { return -s.Pos.Z }

// OnGround reports whether the vehicle is at or below ground level.
func (s State) OnGround() bool { return s.Pos.Z >= -1e-3 }

// IsFinite reports whether the state contains only finite values; a false
// result means the integration blew up and the run must be aborted.
func (s State) IsFinite() bool {
	if !s.Pos.IsFinite() || !s.Vel.IsFinite() || !s.Att.IsFinite() || !s.Omega.IsFinite() {
		return false
	}
	for _, r := range s.Rotor {
		if math.IsNaN(r) {
			return false
		}
	}
	return true
}
