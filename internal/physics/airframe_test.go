package physics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"uavres/internal/mathx"
)

// TestParseAirframeRoundTrip checks every airframe parses back from both
// its canonical name and its slug, case-insensitively.
func TestParseAirframeRoundTrip(t *testing.T) {
	for _, f := range Airframes() {
		for _, name := range []string{f.String(), f.Slug(), strings.ToUpper(f.String()), strings.Title(f.Slug())} {
			got, err := ParseAirframe(name)
			if err != nil {
				t.Errorf("ParseAirframe(%q): %v", name, err)
				continue
			}
			if got != f {
				t.Errorf("ParseAirframe(%q) = %v, want %v", name, got, f)
			}
		}
	}
}

// TestParseAirframeErrorListsValid checks an unknown name fails loudly and
// names every valid layout, so a typoed spec is self-diagnosing.
func TestParseAirframeErrorListsValid(t *testing.T) {
	_, err := ParseAirframe("tri")
	if err == nil {
		t.Fatal("ParseAirframe(\"tri\") succeeded, want error")
	}
	for _, f := range Airframes() {
		if !strings.Contains(err.Error(), f.String()) {
			t.Errorf("error %q does not name valid layout %s", err, f)
		}
	}
}

// TestDescriptorInvariants checks every layout's geometry is physically
// balanced: positions sum to zero (hover produces no net torque), spin
// directions cancel (no net yaw at rest), and the diametric-opposite map
// is a proper involution onto the geometrically opposed rotor.
func TestDescriptorInvariants(t *testing.T) {
	p := DefaultParams()
	for _, f := range Airframes() {
		d := f.Descriptor(p)
		if d.N != f.Rotors() {
			t.Errorf("%s: descriptor N = %d, want %d", f, d.N, f.Rotors())
		}
		var sx, sy, dir float64
		for i := 0; i < d.N; i++ {
			sx += d.CosX[i]
			sy += d.CosY[i]
			dir += d.Dir[i]
			if d.Dir[i] != 1 && d.Dir[i] != -1 {
				t.Errorf("%s rotor %d: spin direction %v not ±1", f, i, d.Dir[i])
			}
			// CosX/CosY are stored pre-divided by ScaleM (quad keeps exact
			// ±1 signs over armD); the physical arm length must come back.
			if r := math.Hypot(d.CosX[i], d.CosY[i]) * d.ScaleM; math.Abs(r-p.ArmLengthM) > 1e-12 {
				t.Errorf("%s rotor %d: arm radius %v, want %v", f, i, r, p.ArmLengthM)
			}
		}
		if math.Abs(sx) > 1e-12 || math.Abs(sy) > 1e-12 {
			t.Errorf("%s: rotor positions sum to (%v, %v), want origin", f, sx, sy)
		}
		if dir != 0 {
			t.Errorf("%s: spin directions sum to %v, want 0", f, dir)
		}
		for i := 0; i < d.N; i++ {
			opp := f.Opposite(i)
			if back := f.Opposite(opp); back != i {
				t.Errorf("%s: Opposite is not an involution: %d -> %d -> %d", f, i, opp, back)
			}
			if math.Abs(d.CosX[i]+d.CosX[opp]) > 1e-12 || math.Abs(d.CosY[i]+d.CosY[opp]) > 1e-12 {
				t.Errorf("%s: rotor %d's opposite %d is not diametric", f, i, opp)
			}
		}
	}
}

// legacyQuadAllocate is a verbatim copy of the pre-airframe X-quad mixer
// (fixed rotorGeom table, scalar divisions). The generalized Mixer must
// reproduce it BIT-identically on the quad: every recorded campaign
// fingerprint depends on it.
func legacyQuadAllocate(armD, kTau, tMax, thrustN float64, torque mathx.Vec3) [4]float64 {
	geom := [4]struct{ sx, sy, yaw float64 }{
		{+1, +1, -1}, {-1, -1, -1}, {+1, -1, +1}, {-1, +1, +1},
	}
	var t [4]float64
	for i, g := range geom {
		t[i] = thrustN/4 +
			(-g.sy)*torque.X/(4*armD) +
			g.sx*torque.Y/(4*armD) +
			g.yaw*torque.Z/(4*kTau)
	}
	minT, maxT := t[0], t[0]
	for _, ti := range t[1:] {
		minT = math.Min(minT, ti)
		maxT = math.Max(maxT, ti)
	}
	if minT < 0 {
		shift := math.Min(-minT, tMax*4)
		for i := range t {
			t[i] += shift
		}
	}
	if maxT > tMax {
		for i := range t {
			if t[i] > tMax {
				t[i] = tMax
			}
			if t[i] < 0 {
				t[i] = 0
			}
		}
	}
	var cmd [4]float64
	for i := range t {
		cmd[i] = mathx.Clamp(t[i]/tMax, 0, 1)
	}
	return cmd
}

func legacyQuadForward(armD, kTau float64, t [4]float64) (thrust float64, torque mathx.Vec3) {
	geom := [4]struct{ sx, sy, yaw float64 }{
		{+1, +1, -1}, {-1, -1, -1}, {+1, -1, +1}, {-1, +1, +1},
	}
	for i, g := range geom {
		thrust += t[i]
		torque.X += -g.sy * armD * t[i]
		torque.Y += g.sx * armD * t[i]
		torque.Z += g.yaw * kTau * t[i]
	}
	return thrust, torque
}

// TestQuadMixerBitIdenticalToLegacy pins the generalized mixer to the
// legacy fixed-table X-quad implementation, bit for bit, across nominal,
// saturating, and negative wrenches. quick.Check fuzzes beyond the grid.
func TestQuadMixerBitIdenticalToLegacy(t *testing.T) {
	p := DefaultParams()
	m := NewMixer(p)
	armD := p.ArmLengthM / math.Sqrt2
	check := func(thrustN float64, torque mathx.Vec3) {
		t.Helper()
		want := legacyQuadAllocate(armD, p.TorqueCoeff, p.MaxThrustPerRotorN, thrustN, torque)
		got := m.Allocate(thrustN, torque)
		for i := 0; i < 4; i++ {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("Allocate(%v, %v)[%d] = %x, legacy %x",
					thrustN, torque, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		var rot [4]float64
		copy(rot[:], got[:4])
		for i := range rot {
			rot[i] *= p.MaxThrustPerRotorN
		}
		wantT, wantTq := legacyQuadForward(armD, p.TorqueCoeff, rot)
		var r Rotors
		copy(r[:4], rot[:])
		gotT, gotTq := m.Forward(r)
		if math.Float64bits(gotT) != math.Float64bits(wantT) ||
			math.Float64bits(gotTq.X) != math.Float64bits(wantTq.X) ||
			math.Float64bits(gotTq.Y) != math.Float64bits(wantTq.Y) ||
			math.Float64bits(gotTq.Z) != math.Float64bits(wantTq.Z) {
			t.Errorf("Forward(%v) = (%v, %v), legacy (%v, %v)", rot, gotT, gotTq, wantT, wantTq)
		}
	}
	hover := p.MassKg * Gravity
	check(hover, mathx.Vec3{})
	check(hover, mathx.V3(0.3, -0.2, 0.05))
	check(0, mathx.Vec3{})
	check(4*p.MaxThrustPerRotorN*2, mathx.V3(5, 5, 1)) // deep saturation
	check(-hover, mathx.V3(-0.4, 0.1, -0.02))          // negative shift path
	check(hover, mathx.V3(100, -100, 10))              // torque-dominated
	if err := quick.Check(func(thrustN, tx, ty, tz float64) bool {
		thrustN = math.Mod(thrustN, 200)
		torque := mathx.V3(math.Mod(tx, 20), math.Mod(ty, 20), math.Mod(tz, 2))
		want := legacyQuadAllocate(armD, p.TorqueCoeff, p.MaxThrustPerRotorN, thrustN, torque)
		got := m.Allocate(thrustN, torque)
		for i := 0; i < 4; i++ {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestForwardAllocateRoundTrip property-checks the mixer pair on every
// airframe: an achievable wrench allocated to rotor commands and pushed
// back through the forward model reproduces itself; an unachievable one
// still yields commands inside [0, 1].
func TestForwardAllocateRoundTrip(t *testing.T) {
	p := DefaultParams()
	for _, f := range Airframes() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			p := p
			p.Layout = f
			m := NewMixer(p)
			n := float64(m.N())
			if err := quick.Check(func(ft, fx, fy, fz float64) bool {
				// Map the fuzz inputs into the achievable envelope: mid
				// thrust band, small torques.
				frac := 0.3 + 0.4*math.Abs(math.Mod(ft, 1))
				thrustN := frac * n * p.MaxThrustPerRotorN
				torque := mathx.V3(
					0.2*math.Mod(fx, 1),
					0.2*math.Mod(fy, 1),
					0.02*math.Mod(fz, 1))
				cmd := m.Allocate(thrustN, torque)
				var rot Rotors
				for i := 0; i < m.N(); i++ {
					if cmd[i] < 0 || cmd[i] > 1 {
						return false
					}
					rot[i] = cmd[i] * p.MaxThrustPerRotorN
				}
				gotT, gotTq := m.Forward(rot)
				tol := 1e-9 * n * p.MaxThrustPerRotorN
				return math.Abs(gotT-thrustN) < tol &&
					math.Abs(gotTq.X-torque.X) < tol &&
					math.Abs(gotTq.Y-torque.Y) < tol &&
					math.Abs(gotTq.Z-torque.Z) < tol
			}, nil); err != nil {
				t.Error(err)
			}
			// Saturating wrench: commands must stay normalized.
			cmd := m.Allocate(10*n*p.MaxThrustPerRotorN, mathx.V3(50, -50, 5))
			for i := 0; i < m.N(); i++ {
				if cmd[i] < 0 || cmd[i] > 1 {
					t.Errorf("saturated cmd[%d] = %v outside [0, 1]", i, cmd[i])
				}
			}
		})
	}
}

// TestReconfiguredAllocator checks the damped-pseudo-inverse fallback: an
// all-healthy reconfiguration matches the mixer closely, a condemned rotor
// receives exactly zero while the survivors still realize the wrench, and
// under-actuated or malformed weight sets are rejected.
func TestReconfiguredAllocator(t *testing.T) {
	p := DefaultParams()
	for _, f := range Airframes() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			p := p
			p.Layout = f
			m := NewMixer(p)
			n := m.N()
			hover := p.MassKg * Gravity
			torque := mathx.V3(0.2, -0.1, 0.01)

			var healthy Rotors
			for i := 0; i < n; i++ {
				healthy[i] = 1
			}
			a, err := m.ReconfiguredAllocator(healthy)
			if err != nil {
				t.Fatalf("all-healthy: %v", err)
			}
			want := m.Allocate(hover, torque)
			got := a.Allocate(hover, torque)
			for i := 0; i < n; i++ {
				// The Tikhonov damping (lambda ~ 1e-6 * trace) costs a few
				// 1e-5 of relative accuracy — invisible next to the motor
				// lag but never bit-identical to the undamped mixer.
				if math.Abs(got[i]-want[i]) > 1e-4 {
					t.Errorf("all-healthy cmd[%d] = %v, mixer %v", i, got[i], want[i])
				}
			}

			if n > 4 {
				weights := healthy
				weights[0] = 0
				a, err := m.ReconfiguredAllocator(weights)
				if err != nil {
					t.Fatalf("one-out: %v", err)
				}
				cmd := a.Allocate(hover, torque)
				if cmd[0] != 0 {
					t.Errorf("condemned rotor got command %v, want 0", cmd[0])
				}
				var rot Rotors
				for i := 0; i < n; i++ {
					rot[i] = cmd[i] * p.MaxThrustPerRotorN
				}
				gotT, gotTq := m.Forward(rot)
				if math.Abs(gotT-hover) > 1e-3*hover {
					t.Errorf("one-out thrust = %v, want %v", gotT, hover)
				}
				if math.Abs(gotTq.X-torque.X) > 1e-2 || math.Abs(gotTq.Y-torque.Y) > 1e-2 {
					t.Errorf("one-out torque = %v, want %v", gotTq, torque)
				}
			}

			// Fewer than four healthy rotors cannot span the wrench.
			var under Rotors
			for i := 0; i < 3 && i < n; i++ {
				under[i] = 1
			}
			if _, err := m.ReconfiguredAllocator(under); err == nil {
				t.Error("3-healthy reconfiguration succeeded, want error")
			}
			bad := healthy
			bad[1] = 1.5
			if _, err := m.ReconfiguredAllocator(bad); err == nil {
				t.Error("weight > 1 accepted, want error")
			}
		})
	}
}

// TestMixerTotals checks the rotor-count-derived limits.
func TestMixerTotals(t *testing.T) {
	p := DefaultParams()
	for _, f := range Airframes() {
		p := p
		p.Layout = f
		m := NewMixer(p)
		if m.N() != f.Rotors() {
			t.Errorf("%s: N = %d, want %d", f, m.N(), f.Rotors())
		}
		want := p.MaxThrustPerRotorN * float64(f.Rotors())
		if m.MaxTotalThrustN() != want {
			t.Errorf("%s: MaxTotalThrustN = %v, want %v", f, m.MaxTotalThrustN(), want)
		}
	}
}
