package physics

import (
	"fmt"
	"math"

	"uavres/internal/mathx"
)

// Allocator solves the wrench-to-thrust allocation for a degraded airframe
// via a weighted, damped pseudo-inverse of the mixer's forward model:
//
//	A = W B' (B W B' + lambda I)^-1
//
// where B is the 4xN effectiveness matrix (thrust, roll, pitch, yaw rows),
// W = diag(weights) carries per-rotor health (0 condemns a rotor, values in
// (0, 1] derate it), and lambda is a small Tikhonov damping that keeps the
// solve well-posed when condemned rotors collapse the Gram matrix. The
// healthy mixer stays the fast path; an Allocator only replaces it after
// FDI condemns a rotor (fdcl-ftc's FDI-driven control allocation).
// wrenchDims is the control wrench dimensionality (total thrust plus the
// three body torques) — a property of rigid-body control, not of any
// rotor count.
const wrenchDims = 4

type Allocator struct {
	n    int
	tMax float64
	caps Rotors                // per-rotor thrust ceiling (N); 0 when condemned
	rows [MaxRotors][wrenchDims]float64 // t[i] = rows[i] . [thrustN, tauX, tauY, tauZ]
}

// ReconfiguredAllocator builds the weighted allocation for the given
// per-rotor health weights. Weights must be in [0, 1]; at least four rotors
// (the controllable-wrench minimum) must keep a positive weight.
func (m Mixer) ReconfiguredAllocator(weights Rotors) (*Allocator, error) {
	a := &Allocator{n: m.n, tMax: m.tMax}
	healthy := 0
	for i := 0; i < m.n; i++ {
		w := weights[i]
		if w < 0 || w > 1 || math.IsNaN(w) {
			return nil, fmt.Errorf("physics: rotor %d weight %v outside [0, 1]", i, w)
		}
		if w > 0 {
			healthy++
			a.caps[i] = m.tMax
		}
	}
	if healthy < 4 {
		return nil, fmt.Errorf("physics: only %d healthy rotors, need at least 4 for full wrench control", healthy)
	}

	// B rows in wrench order: total thrust, roll, pitch, yaw.
	var b [4]Rotors
	for i := 0; i < m.n; i++ {
		b[0][i] = 1
		b[1][i] = m.rollK[i]
		b[2][i] = m.pitchK[i]
		b[3][i] = m.yawK[i]
	}

	// Gram matrix G = B W B', damped on the diagonal.
	var g [wrenchDims][wrenchDims]float64
	trace := 0.0
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			sum := 0.0
			for i := 0; i < m.n; i++ {
				sum += b[r][i] * weights[i] * b[c][i]
			}
			g[r][c] = sum
		}
		trace += g[r][r]
	}
	lambda := 1e-6*trace/4 + 1e-12
	for r := 0; r < 4; r++ {
		g[r][r] += lambda
	}

	inv, err := invert4(g)
	if err != nil {
		return nil, err
	}

	// rows[i][k] = w_i * sum_j B[j][i] * inv[j][k].
	for i := 0; i < m.n; i++ {
		for k := 0; k < 4; k++ {
			sum := 0.0
			for j := 0; j < 4; j++ {
				sum += b[j][i] * inv[j][k]
			}
			a.rows[i][k] = weights[i] * sum
		}
	}
	return a, nil
}

// invert4 inverts a 4x4 matrix by Gauss-Jordan with partial pivoting.
func invert4(g [wrenchDims][wrenchDims]float64) ([wrenchDims][wrenchDims]float64, error) {
	var inv [wrenchDims][wrenchDims]float64
	for i := range inv {
		inv[i][i] = 1
	}
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(g[r][col]) > math.Abs(g[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(g[pivot][col]) < 1e-300 {
			return inv, fmt.Errorf("physics: singular allocation Gram matrix")
		}
		g[col], g[pivot] = g[pivot], g[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		p := g[col][col]
		for c := 0; c < 4; c++ {
			g[col][c] /= p
			inv[col][c] /= p
		}
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := g[r][col]
			if f == 0 { //lint:allow floatcmp exact-zero skip is an optimization; any nonzero factor eliminates
				continue
			}
			for c := 0; c < 4; c++ {
				g[r][c] -= f * g[col][c]
				inv[r][c] -= f * inv[col][c]
			}
		}
	}
	return inv, nil
}

// N returns the rotor count the allocator was built for.
func (a *Allocator) N() int { return a.n }

// Caps returns the per-rotor thrust ceilings; condemned rotors read 0.
func (a *Allocator) Caps() Rotors { return a.caps }

// Allocate distributes the desired wrench across the remaining healthy
// rotors and returns normalized commands in [0, 1]. Condemned rotors are
// hard-capped at zero regardless of the solve.
//
// Saturation clamps per rotor instead of uniform-shifting like the healthy
// Mixer: the shift trick only preserves the commanded torque when each
// allocation column sums to zero across the ACTIVE rotors, and condemning
// a rotor destroys that symmetry. On a one-out hexa the minimum-norm
// solution parks the condemned rotor's diametric partner near zero thrust,
// so adverse torque demands routinely go negative there — a uniform shift
// would then pump collective thrust into every survivor (runaway climb)
// while zeroing the correction; clamping sacrifices only the torque the
// dead rotor pair genuinely cannot produce.
func (a *Allocator) Allocate(thrustN float64, torque mathx.Vec3) Rotors {
	var cmd Rotors
	for i := 0; i < a.n; i++ {
		if a.caps[i] <= 0 {
			continue
		}
		r := &a.rows[i]
		t := r[0]*thrustN + r[1]*torque.X + r[2]*torque.Y + r[3]*torque.Z
		cmd[i] = mathx.Clamp(t/a.tMax, 0, 1)
	}
	return cmd
}
