package physics

import (
	"fmt"
	"math"

	"uavres/internal/mathx"
)

// Wind models the air-mass motion as a constant mean wind plus
// first-order Gauss-Markov gusts (a discrete Ornstein-Uhlenbeck process
// per axis), a standard light-turbulence approximation of the Dryden
// model. All velocities are in the world NED frame.
type Wind struct {
	// MeanNED is the steady wind velocity.
	MeanNED mathx.Vec3
	// GustStd is the standard deviation of the stationary gust process.
	GustStd float64
	// GustTau is the gust correlation time constant (s).
	GustTau float64

	gust mathx.Vec3
	rng  *mathx.Rand

	// Cached OU discretization constants, keyed on the exact inputs that
	// produced them. The 500 Hz step loop always passes the same dt, so
	// the Exp/Sqrt pair is computed once per flight instead of per step.
	// Derived state: deliberately absent from WindSnapshot.
	//lint:allow snapshotcomplete derived OU cache keyed on the exact (dt, tau, std) inputs; recomputed on any change
	cacheDt, cacheTau, cacheStd float64
	//lint:allow snapshotcomplete derived from the cache keys above; recomputed whenever they change
	phi, sigma float64
}

// NewWind returns a wind model driven by the given random source. A nil rng
// produces a deterministic, gust-free model.
func NewWind(meanNED mathx.Vec3, gustStd, gustTau float64, rng *mathx.Rand) *Wind {
	if gustTau <= 0 {
		gustTau = 1
	}
	return &Wind{MeanNED: meanNED, GustStd: gustStd, GustTau: gustTau, rng: rng}
}

// CalmWind returns a zero-wind model (used by deterministic tests).
func CalmWind() *Wind { return &Wind{GustTau: 1} }

// Step advances the gust process by dt seconds and returns the current
// total wind velocity.
func (w *Wind) Step(dt float64) mathx.Vec3 {
	if w.rng != nil && w.GustStd > 0 {
		// Exact discretization of the OU process keeps the stationary
		// variance independent of dt.
		//lint:allow floatcmp cache key is the exact previous inputs; any change recomputes
		if dt != w.cacheDt || w.GustTau != w.cacheTau || w.GustStd != w.cacheStd {
			w.cacheDt, w.cacheTau, w.cacheStd = dt, w.GustTau, w.GustStd
			w.phi = math.Exp(-dt / w.GustTau)
			w.sigma = w.GustStd * math.Sqrt(1-w.phi*w.phi)
		}
		phi, sigma := w.phi, w.sigma
		w.gust = mathx.Vec3{
			X: phi*w.gust.X + sigma*w.rng.NormFloat64(),
			Y: phi*w.gust.Y + sigma*w.rng.NormFloat64(),
			Z: phi*w.gust.Z + sigma*0.3*w.rng.NormFloat64(), // vertical gusts are weaker
		}
	}
	return w.MeanNED.Add(w.gust)
}

// Current returns the wind velocity without advancing the process.
func (w *Wind) Current() mathx.Vec3 { return w.MeanNED.Add(w.gust) }

// WindSnapshot captures the wind model's dynamic state (checkpointing).
type WindSnapshot struct {
	mean   mathx.Vec3
	gust   mathx.Vec3
	rng    mathx.RandState
	hasRng bool
}

// Snapshot captures the mean wind, the current gust, and the gust stream.
func (w *Wind) Snapshot() WindSnapshot {
	s := WindSnapshot{mean: w.MeanNED, gust: w.gust}
	if w.rng != nil {
		s.rng = w.rng.State()
		s.hasRng = true
	}
	return s
}

// Restore reinstates a state captured with Snapshot.
func (w *Wind) Restore(s WindSnapshot) error {
	if s.hasRng != (w.rng != nil) {
		return fmt.Errorf("physics: wind snapshot rng presence mismatch")
	}
	w.MeanNED = s.mean
	w.gust = s.gust
	if w.rng != nil {
		w.rng.SetState(s.rng)
	}
	return nil
}
