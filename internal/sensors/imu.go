package sensors

import (
	"fmt"

	"uavres/internal/mathx"
)

// IMUSample is one inertial measurement: body-frame specific force and
// angular rate at simulation time T.
type IMUSample struct {
	// T is the simulation timestamp in seconds.
	T float64
	// Accel is the measured specific force (m/s^2), clipped to ±AccelRange.
	Accel mathx.Vec3
	// Gyro is the measured angular rate (rad/s), clipped to ±GyroRange.
	Gyro mathx.Vec3
}

// IMU models one accelerometer+gyroscope pair with constant per-run bias,
// white noise, and full-scale clipping.
type IMU struct {
	spec      IMUSpec
	accelBias mathx.Vec3
	gyroBias  mathx.Vec3
	rng       *mathx.Rand
	tick      Ticker
	last      IMUSample
}

// NewIMU returns an IMU whose biases are drawn once from rng. A nil rng
// yields an ideal (noise- and bias-free) sensor for deterministic tests.
func NewIMU(spec IMUSpec, rng *mathx.Rand) (*IMU, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	imu := &IMU{spec: spec, rng: rng, tick: NewTicker(spec.RateHz)}
	if rng != nil {
		imu.accelBias = randVec(rng, spec.AccelBiasStd)
		imu.gyroBias = randVec(rng, spec.GyroBiasStd)
	}
	return imu, nil
}

// Spec returns the sensor's error model.
func (m *IMU) Spec() IMUSpec { return m.spec }

// Biases returns the per-run constant biases (accel, gyro), used by tests
// and by the EKF's bias-state verification.
func (m *IMU) Biases() (accel, gyro mathx.Vec3) { return m.accelBias, m.gyroBias }

// Due reports whether a new sample is due at sim time t.
func (m *IMU) Due(t float64) bool { return m.tick.Due(t) }

// IMUNoise is one sample's worth of noise deviates for one unit, drawn by
// DrawNoise and composed by SampleWith. Splitting the draw from the
// composition lets the batch runner share one unit's deviates across every
// lockstep fork (the noise is additive to ground truth, so it is
// independent of each fork's diverged state).
type IMUNoise struct {
	Accel mathx.Vec3
	Gyro  mathx.Vec3
}

// DrawNoise advances the unit's noise stream by exactly one sample's worth
// of deviates and returns them. For a noiseless unit (nil rng) it draws
// nothing and returns zeros.
func (m *IMU) DrawNoise() IMUNoise {
	if m.rng == nil {
		return IMUNoise{}
	}
	return IMUNoise{
		Accel: randVec(m.rng, m.spec.AccelNoiseStd),
		Gyro:  randVec(m.rng, m.spec.GyroNoiseStd),
	}
}

// SampleWith composes a measurement at time t from ground truth and
// externally drawn noise, bit-identically to Sample: the noise add is
// guarded by rng presence exactly as in the fused path, so a noiseless
// unit never perturbs signed zeros. The result is retained for Last.
func (m *IMU) SampleWith(t float64, trueAccel, trueGyro mathx.Vec3, n IMUNoise) IMUSample {
	accel := trueAccel.Add(m.accelBias)
	gyro := trueGyro.Add(m.gyroBias)
	if m.rng != nil {
		accel = accel.Add(n.Accel)
		gyro = gyro.Add(n.Gyro)
	}
	s := IMUSample{
		T:     t,
		Accel: ClipVec(accel, AccelRange),
		Gyro:  ClipVec(gyro, GyroRange),
	}
	m.last = s
	return s
}

// Sample produces a measurement at time t from true specific force and
// angular rate. The result is also retained for Last. It is literally
// DrawNoise followed by SampleWith, which is what makes the batch runner's
// shared-draw path bit-exact.
func (m *IMU) Sample(t float64, trueAccel, trueGyro mathx.Vec3) IMUSample {
	return m.SampleWith(t, trueAccel, trueGyro, m.DrawNoise())
}

// Last returns the most recent sample (zero value before the first).
func (m *IMU) Last() IMUSample { return m.last }

// IMUSnapshot captures one unit's complete dynamic state (checkpointing).
type IMUSnapshot struct {
	accelBias mathx.Vec3
	gyroBias  mathx.Vec3
	rng       mathx.RandState
	hasRng    bool
	tick      Ticker
	last      IMUSample
}

// Snapshot captures the unit's state: biases, noise stream, sample clock,
// and last sample.
func (m *IMU) Snapshot() IMUSnapshot {
	s := IMUSnapshot{
		accelBias: m.accelBias,
		gyroBias:  m.gyroBias,
		tick:      m.tick,
		last:      m.last,
	}
	if m.rng != nil {
		s.rng = m.rng.State()
		s.hasRng = true
	}
	return s
}

// Restore reinstates a state captured with Snapshot. The unit must have
// been constructed with (or without) an rng matching the snapshot.
func (m *IMU) Restore(s IMUSnapshot) error {
	if s.hasRng != (m.rng != nil) {
		return fmt.Errorf("sensors: IMU snapshot rng presence mismatch")
	}
	m.accelBias = s.accelBias
	m.gyroBias = s.gyroBias
	m.tick = s.tick
	m.last = s.last
	if m.rng != nil {
		m.rng.SetState(s.rng)
	}
	return nil
}

// RedundantIMUs models PX4's multi-IMU arrangement: one primary plus spare
// sensors the failsafe isolation stage can switch to. The paper assumes the
// injected fault affects every redundant sensor, so the set shares one
// ground-truth input; each unit still carries its own bias and noise
// stream.
type RedundantIMUs struct {
	units   []*IMU
	primary int
}

// NewRedundantIMUs creates n IMUs (n >= 1) seeded from rng.
func NewRedundantIMUs(n int, spec IMUSpec, rng *mathx.Rand) (*RedundantIMUs, error) {
	if n < 1 {
		n = 1
	}
	units := make([]*IMU, 0, n)
	for i := 0; i < n; i++ {
		var unitRng *mathx.Rand
		if rng != nil {
			unitRng = rng.Child()
		}
		u, err := NewIMU(spec, unitRng)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return &RedundantIMUs{units: units}, nil
}

// Count returns the number of units in the set.
func (r *RedundantIMUs) Count() int { return len(r.units) }

// Primary returns the index of the currently selected unit.
func (r *RedundantIMUs) Primary() int { return r.primary }

// SwitchPrimary selects the next unit in round-robin order and returns its
// index; the failsafe isolation stage calls this when the current primary
// is declared unhealthy.
func (r *RedundantIMUs) SwitchPrimary() int {
	r.primary = (r.primary + 1) % len(r.units)
	return r.primary
}

// Exhausted reports whether every unit has been tried at least once, i.e.
// switching has wrapped around without finding a healthy sensor.
// The caller tracks switch count; this helper just exposes the set size.
func (r *RedundantIMUs) Exhausted(switches int) bool { return switches >= len(r.units) }

// Due reports whether the primary unit is due to sample at time t.
func (r *RedundantIMUs) Due(t float64) bool { return r.units[r.primary].Due(t) }

// Sample measures through the primary unit.
func (r *RedundantIMUs) Sample(t float64, trueAccel, trueGyro mathx.Vec3) IMUSample {
	return r.units[r.primary].Sample(t, trueAccel, trueGyro)
}

// Unit returns unit i for inspection.
func (r *RedundantIMUs) Unit(i int) *IMU { return r.units[i] }

// RedundantIMUsSnapshot captures the whole set's state (checkpointing).
type RedundantIMUsSnapshot struct {
	units   []IMUSnapshot
	primary int
}

// Snapshot captures every unit's state plus the primary selection.
func (r *RedundantIMUs) Snapshot() RedundantIMUsSnapshot {
	s := RedundantIMUsSnapshot{
		units:   make([]IMUSnapshot, len(r.units)),
		primary: r.primary,
	}
	for i, u := range r.units {
		s.units[i] = u.Snapshot()
	}
	return s
}

// Restore reinstates a state captured with Snapshot. The set must have the
// same unit count as at capture time.
func (r *RedundantIMUs) Restore(s RedundantIMUsSnapshot) error {
	if len(s.units) != len(r.units) {
		return fmt.Errorf("sensors: snapshot has %d IMU units, set has %d", len(s.units), len(r.units))
	}
	for i := range r.units {
		if err := r.units[i].Restore(s.units[i]); err != nil {
			return err
		}
	}
	r.primary = s.primary
	return nil
}

func randVec(rng *mathx.Rand, std float64) mathx.Vec3 {
	//lint:allow floatcmp zero is the exact noise-disabled sentinel, never a computed value
	if std == 0 {
		return mathx.Zero3
	}
	return mathx.Vec3{
		X: rng.NormFloat64() * std,
		Y: rng.NormFloat64() * std,
		Z: rng.NormFloat64() * std,
	}
}

// SampleAll measures every unit in the set from the same ground truth and
// returns the per-unit samples (index-aligned with Unit). Each unit
// applies its own bias and noise stream. The primary's sample is also
// retained as its Last.
func (r *RedundantIMUs) SampleAll(t float64, trueAccel, trueGyro mathx.Vec3) []IMUSample {
	return r.SampleAllInto(nil, t, trueAccel, trueGyro)
}

// SampleAllInto is SampleAll writing into dst (grown if needed), letting
// the 250 Hz sim loop reuse one buffer instead of allocating per sample.
func (r *RedundantIMUs) SampleAllInto(dst []IMUSample, t float64, trueAccel, trueGyro mathx.Vec3) []IMUSample {
	if cap(dst) < len(r.units) {
		dst = make([]IMUSample, len(r.units))
	}
	dst = dst[:len(r.units)]
	for i, u := range r.units {
		dst[i] = u.Sample(t, trueAccel, trueGyro)
	}
	return dst
}

// DrawNoiseInto draws one tick's noise for every unit in set order into
// dst (grown if needed), advancing each unit's stream exactly as
// SampleAllInto would.
func (r *RedundantIMUs) DrawNoiseInto(dst []IMUNoise) []IMUNoise {
	if cap(dst) < len(r.units) {
		dst = make([]IMUNoise, len(r.units))
	}
	dst = dst[:len(r.units)]
	for i, u := range r.units {
		dst[i] = u.DrawNoise()
	}
	return dst
}

// AdoptNoiseStreams copies every unit's noise-stream state from another
// set, leaving biases, tickers, last samples, and the primary selection
// untouched. The batch runner uses it to detach a fork from lockstep: the
// donor's streams hold exactly the state the fork's own would after the
// same draw schedule, so the fork can continue drawing for itself
// bit-identically to a straight scalar run.
func (r *RedundantIMUs) AdoptNoiseStreams(from *RedundantIMUs) error {
	if len(from.units) != len(r.units) {
		return fmt.Errorf("sensors: adopting streams from %d-unit set into %d-unit set", len(from.units), len(r.units))
	}
	for i := range r.units {
		if (r.units[i].rng != nil) != (from.units[i].rng != nil) {
			return fmt.Errorf("sensors: unit %d rng presence mismatch", i)
		}
		if r.units[i].rng != nil {
			r.units[i].rng.SetState(from.units[i].rng.State())
		}
	}
	return nil
}

// SampleAllWith is SampleAllInto composing externally drawn noise
// (index-aligned with DrawNoiseInto's output) instead of advancing the
// units' own streams.
func (r *RedundantIMUs) SampleAllWith(dst []IMUSample, t float64, trueAccel, trueGyro mathx.Vec3, noise []IMUNoise) []IMUSample {
	if cap(dst) < len(r.units) {
		dst = make([]IMUSample, len(r.units))
	}
	dst = dst[:len(r.units)]
	for i, u := range r.units {
		dst[i] = u.SampleWith(t, trueAccel, trueGyro, noise[i])
	}
	return dst
}

// voteMaxUnits bounds the stack scratch in VoteOutlier; real vehicles carry
// 3-4 redundant IMUs.
const voteMaxUnits = 8

// VoteOutlier reports whether the unit at index primary disagrees with the
// per-axis median of all units by more than the tolerances — the
// cross-IMU consistency check redundancy management runs every sample.
// With fewer than three units a majority cannot be formed and the vote
// always passes. Runs allocation-free for up to voteMaxUnits units.
func VoteOutlier(samples []IMUSample, primary int, accelTol, gyroTol float64) bool {
	n := len(samples)
	if n < 3 || primary < 0 || primary >= n {
		return false
	}
	p := &samples[primary]
	if n == 3 {
		// The common fleet (PX4 carries 3 IMUs) takes a branch-only
		// median per axis, fully unrolled: same value the sort below
		// selects, no scratch writes, no per-axis indexing switch.
		s0, s1, s2 := &samples[0], &samples[1], &samples[2]
		if d := p.Accel.X - med3(s0.Accel.X, s1.Accel.X, s2.Accel.X); d > accelTol || d < -accelTol {
			return true
		}
		if d := p.Accel.Y - med3(s0.Accel.Y, s1.Accel.Y, s2.Accel.Y); d > accelTol || d < -accelTol {
			return true
		}
		if d := p.Accel.Z - med3(s0.Accel.Z, s1.Accel.Z, s2.Accel.Z); d > accelTol || d < -accelTol {
			return true
		}
		if d := p.Gyro.X - med3(s0.Gyro.X, s1.Gyro.X, s2.Gyro.X); d > gyroTol || d < -gyroTol {
			return true
		}
		if d := p.Gyro.Y - med3(s0.Gyro.Y, s1.Gyro.Y, s2.Gyro.Y); d > gyroTol || d < -gyroTol {
			return true
		}
		if d := p.Gyro.Z - med3(s0.Gyro.Z, s1.Gyro.Z, s2.Gyro.Z); d > gyroTol || d < -gyroTol {
			return true
		}
		return false
	}
	var scratch [voteMaxUnits]float64
	vals := scratch[:0]
	if n > voteMaxUnits {
		vals = make([]float64, 0, n)
	}
	for axis := 0; axis < 6; axis++ {
		vals = vals[:n]
		for i := range samples {
			vals[i] = sampleAxis(&samples[i], axis)
		}
		// Insertion sort: the set is tiny (3-4 units).
		for i := 1; i < n; i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		med := vals[n/2]
		tol := accelTol
		if axis >= 3 {
			tol = gyroTol
		}
		if diff := sampleAxis(p, axis) - med; diff > tol || diff < -tol {
			return true
		}
	}
	return false
}

// med3 returns the median of three values (the n==3 special case of the
// sorted-middle the general vote path computes).
func med3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// sampleAxis indexes the six measured scalars: accel XYZ then gyro XYZ.
func sampleAxis(s *IMUSample, axis int) float64 {
	switch axis {
	case 0:
		return s.Accel.X
	case 1:
		return s.Accel.Y
	case 2:
		return s.Accel.Z
	case 3:
		return s.Gyro.X
	case 4:
		return s.Gyro.Y
	default:
		return s.Gyro.Z
	}
}
