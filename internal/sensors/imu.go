package sensors

import (
	"math/rand"

	"uavres/internal/mathx"
)

// IMUSample is one inertial measurement: body-frame specific force and
// angular rate at simulation time T.
type IMUSample struct {
	// T is the simulation timestamp in seconds.
	T float64
	// Accel is the measured specific force (m/s^2), clipped to ±AccelRange.
	Accel mathx.Vec3
	// Gyro is the measured angular rate (rad/s), clipped to ±GyroRange.
	Gyro mathx.Vec3
}

// IMU models one accelerometer+gyroscope pair with constant per-run bias,
// white noise, and full-scale clipping.
type IMU struct {
	spec      IMUSpec
	accelBias mathx.Vec3
	gyroBias  mathx.Vec3
	rng       *rand.Rand
	tick      Ticker
	last      IMUSample
}

// NewIMU returns an IMU whose biases are drawn once from rng. A nil rng
// yields an ideal (noise- and bias-free) sensor for deterministic tests.
func NewIMU(spec IMUSpec, rng *rand.Rand) (*IMU, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	imu := &IMU{spec: spec, rng: rng, tick: NewTicker(spec.RateHz)}
	if rng != nil {
		imu.accelBias = randVec(rng, spec.AccelBiasStd)
		imu.gyroBias = randVec(rng, spec.GyroBiasStd)
	}
	return imu, nil
}

// Spec returns the sensor's error model.
func (m *IMU) Spec() IMUSpec { return m.spec }

// Biases returns the per-run constant biases (accel, gyro), used by tests
// and by the EKF's bias-state verification.
func (m *IMU) Biases() (accel, gyro mathx.Vec3) { return m.accelBias, m.gyroBias }

// Due reports whether a new sample is due at sim time t.
func (m *IMU) Due(t float64) bool { return m.tick.Due(t) }

// Sample produces a measurement at time t from true specific force and
// angular rate. The result is also retained for Last.
func (m *IMU) Sample(t float64, trueAccel, trueGyro mathx.Vec3) IMUSample {
	accel := trueAccel.Add(m.accelBias)
	gyro := trueGyro.Add(m.gyroBias)
	if m.rng != nil {
		accel = accel.Add(randVec(m.rng, m.spec.AccelNoiseStd))
		gyro = gyro.Add(randVec(m.rng, m.spec.GyroNoiseStd))
	}
	s := IMUSample{
		T:     t,
		Accel: ClipVec(accel, AccelRange),
		Gyro:  ClipVec(gyro, GyroRange),
	}
	m.last = s
	return s
}

// Last returns the most recent sample (zero value before the first).
func (m *IMU) Last() IMUSample { return m.last }

// RedundantIMUs models PX4's multi-IMU arrangement: one primary plus spare
// sensors the failsafe isolation stage can switch to. The paper assumes the
// injected fault affects every redundant sensor, so the set shares one
// ground-truth input; each unit still carries its own bias and noise
// stream.
type RedundantIMUs struct {
	units   []*IMU
	primary int
}

// NewRedundantIMUs creates n IMUs (n >= 1) seeded from rng.
func NewRedundantIMUs(n int, spec IMUSpec, rng *rand.Rand) (*RedundantIMUs, error) {
	if n < 1 {
		n = 1
	}
	units := make([]*IMU, 0, n)
	for i := 0; i < n; i++ {
		var unitRng *rand.Rand
		if rng != nil {
			unitRng = rand.New(rand.NewSource(rng.Int63()))
		}
		u, err := NewIMU(spec, unitRng)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return &RedundantIMUs{units: units}, nil
}

// Count returns the number of units in the set.
func (r *RedundantIMUs) Count() int { return len(r.units) }

// Primary returns the index of the currently selected unit.
func (r *RedundantIMUs) Primary() int { return r.primary }

// SwitchPrimary selects the next unit in round-robin order and returns its
// index; the failsafe isolation stage calls this when the current primary
// is declared unhealthy.
func (r *RedundantIMUs) SwitchPrimary() int {
	r.primary = (r.primary + 1) % len(r.units)
	return r.primary
}

// Exhausted reports whether every unit has been tried at least once, i.e.
// switching has wrapped around without finding a healthy sensor.
// The caller tracks switch count; this helper just exposes the set size.
func (r *RedundantIMUs) Exhausted(switches int) bool { return switches >= len(r.units) }

// Due reports whether the primary unit is due to sample at time t.
func (r *RedundantIMUs) Due(t float64) bool { return r.units[r.primary].Due(t) }

// Sample measures through the primary unit.
func (r *RedundantIMUs) Sample(t float64, trueAccel, trueGyro mathx.Vec3) IMUSample {
	return r.units[r.primary].Sample(t, trueAccel, trueGyro)
}

// Unit returns unit i for inspection.
func (r *RedundantIMUs) Unit(i int) *IMU { return r.units[i] }

func randVec(rng *rand.Rand, std float64) mathx.Vec3 {
	//lint:allow floatcmp zero is the exact noise-disabled sentinel, never a computed value
	if std == 0 {
		return mathx.Zero3
	}
	return mathx.Vec3{
		X: rng.NormFloat64() * std,
		Y: rng.NormFloat64() * std,
		Z: rng.NormFloat64() * std,
	}
}

// SampleAll measures every unit in the set from the same ground truth and
// returns the per-unit samples (index-aligned with Unit). Each unit
// applies its own bias and noise stream. The primary's sample is also
// retained as its Last.
func (r *RedundantIMUs) SampleAll(t float64, trueAccel, trueGyro mathx.Vec3) []IMUSample {
	out := make([]IMUSample, len(r.units))
	for i, u := range r.units {
		out[i] = u.Sample(t, trueAccel, trueGyro)
	}
	return out
}

// VoteOutlier reports whether the unit at index primary disagrees with the
// per-axis median of all units by more than the tolerances — the
// cross-IMU consistency check redundancy management runs every sample.
// With fewer than three units a majority cannot be formed and the vote
// always passes.
func VoteOutlier(samples []IMUSample, primary int, accelTol, gyroTol float64) bool {
	if len(samples) < 3 || primary < 0 || primary >= len(samples) {
		return false
	}
	med := func(get func(IMUSample) float64) float64 {
		vals := make([]float64, len(samples))
		for i, s := range samples {
			vals[i] = get(s)
		}
		// Insertion sort: the set is tiny (3-4 units).
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return vals[len(vals)/2]
	}
	p := samples[primary]
	accessors := []struct {
		get func(IMUSample) float64
		tol float64
	}{
		{func(s IMUSample) float64 { return s.Accel.X }, accelTol},
		{func(s IMUSample) float64 { return s.Accel.Y }, accelTol},
		{func(s IMUSample) float64 { return s.Accel.Z }, accelTol},
		{func(s IMUSample) float64 { return s.Gyro.X }, gyroTol},
		{func(s IMUSample) float64 { return s.Gyro.Y }, gyroTol},
		{func(s IMUSample) float64 { return s.Gyro.Z }, gyroTol},
	}
	for _, a := range accessors {
		if diff := a.get(p) - med(a.get); diff > a.tol || diff < -a.tol {
			return true
		}
	}
	return false
}
