package sensors

import (
	"fmt"

	"uavres/internal/mathx"
)

// GPSSample is one position/velocity fix in the local NED frame.
type GPSSample struct {
	// T is the simulation timestamp in seconds.
	T float64
	// PosNED is the measured position (m).
	PosNED mathx.Vec3
	// VelNED is the measured velocity (m/s).
	VelNED mathx.Vec3
	// Valid is false when the receiver has no fix.
	Valid bool
}

// GPS models a GNSS receiver reporting local-frame position and velocity.
type GPS struct {
	spec GPSSpec
	rng  *mathx.Rand
	tick Ticker
}

// NewGPS returns a receiver model; a nil rng yields an ideal sensor.
func NewGPS(spec GPSSpec, rng *mathx.Rand) *GPS {
	return &GPS{spec: spec, rng: rng, tick: NewTicker(spec.RateHz)}
}

// Due reports whether a fix is due at sim time t.
func (g *GPS) Due(t float64) bool { return g.tick.Due(t) }

// GPSNoise is one fix's worth of noise deviates, drawn by DrawNoise and
// composed by SampleWith (the batch runner shares one draw across forks).
type GPSNoise struct {
	Pos mathx.Vec3
	Vel mathx.Vec3
}

// DrawNoise advances the receiver's noise stream by one fix's worth of
// deviates, in Sample's exact draw order.
func (g *GPS) DrawNoise() GPSNoise {
	if g.rng == nil {
		return GPSNoise{}
	}
	return GPSNoise{
		Pos: mathx.Vec3{
			X: g.rng.NormFloat64() * g.spec.PosNoiseStdM,
			Y: g.rng.NormFloat64() * g.spec.PosNoiseStdM,
			Z: g.rng.NormFloat64() * g.spec.AltNoiseStdM,
		},
		Vel: randVec(g.rng, g.spec.VelNoiseStd),
	}
}

// SampleWith composes a fix from ground truth and externally drawn noise,
// bit-identically to Sample.
func (g *GPS) SampleWith(t float64, truePos, trueVel mathx.Vec3, n GPSNoise) GPSSample {
	pos, vel := truePos, trueVel
	if g.rng != nil {
		pos = pos.Add(n.Pos)
		vel = vel.Add(n.Vel)
	}
	return GPSSample{T: t, PosNED: pos, VelNED: vel, Valid: true}
}

// Sample produces a fix from true position and velocity.
func (g *GPS) Sample(t float64, truePos, trueVel mathx.Vec3) GPSSample {
	return g.SampleWith(t, truePos, trueVel, g.DrawNoise())
}

// GPSSnapshot captures the receiver's dynamic state (checkpointing).
type GPSSnapshot struct {
	rng    mathx.RandState
	hasRng bool
	tick   Ticker
}

// Snapshot captures the noise stream and sample clock.
func (g *GPS) Snapshot() GPSSnapshot {
	s := GPSSnapshot{tick: g.tick}
	if g.rng != nil {
		s.rng = g.rng.State()
		s.hasRng = true
	}
	return s
}

// Restore reinstates a state captured with Snapshot.
func (g *GPS) Restore(s GPSSnapshot) error {
	if s.hasRng != (g.rng != nil) {
		return fmt.Errorf("sensors: GPS snapshot rng presence mismatch")
	}
	g.tick = s.tick
	if g.rng != nil {
		g.rng.SetState(s.rng)
	}
	return nil
}

// BaroSample is one barometric altitude measurement.
type BaroSample struct {
	// T is the simulation timestamp in seconds.
	T float64
	// AltM is the measured altitude above the local origin (positive up).
	AltM float64
}

// Baro models a barometric altimeter.
type Baro struct {
	spec BaroSpec
	bias float64
	rng  *mathx.Rand
	tick Ticker
}

// NewBaro returns a barometer whose constant bias is drawn once from rng;
// a nil rng yields an ideal sensor.
func NewBaro(spec BaroSpec, rng *mathx.Rand) *Baro {
	b := &Baro{spec: spec, rng: rng, tick: NewTicker(spec.RateHz)}
	if rng != nil {
		b.bias = rng.NormFloat64() * spec.BiasStdM
	}
	return b
}

// Due reports whether a sample is due at sim time t.
func (b *Baro) Due(t float64) bool { return b.tick.Due(t) }

// DrawNoise advances the barometer's noise stream by one sample's deviate.
func (b *Baro) DrawNoise() float64 {
	if b.rng == nil {
		return 0
	}
	return b.rng.NormFloat64() * b.spec.AltNoiseStdM
}

// SampleWith composes a measurement from the true altitude and an
// externally drawn noise term, bit-identically to Sample.
func (b *Baro) SampleWith(t, trueAltM, noise float64) BaroSample {
	alt := trueAltM + b.bias
	if b.rng != nil {
		alt += noise
	}
	return BaroSample{T: t, AltM: alt}
}

// Sample produces a measurement from the true altitude (positive up).
func (b *Baro) Sample(t, trueAltM float64) BaroSample {
	return b.SampleWith(t, trueAltM, b.DrawNoise())
}

// BaroSnapshot captures the barometer's dynamic state (checkpointing).
type BaroSnapshot struct {
	bias   float64
	rng    mathx.RandState
	hasRng bool
	tick   Ticker
}

// Snapshot captures the bias, noise stream, and sample clock.
func (b *Baro) Snapshot() BaroSnapshot {
	s := BaroSnapshot{bias: b.bias, tick: b.tick}
	if b.rng != nil {
		s.rng = b.rng.State()
		s.hasRng = true
	}
	return s
}

// Restore reinstates a state captured with Snapshot.
func (b *Baro) Restore(s BaroSnapshot) error {
	if s.hasRng != (b.rng != nil) {
		return fmt.Errorf("sensors: baro snapshot rng presence mismatch")
	}
	b.bias = s.bias
	b.tick = s.tick
	if b.rng != nil {
		b.rng.SetState(s.rng)
	}
	return nil
}

// MagSample is one magnetometer-derived heading measurement.
type MagSample struct {
	// T is the simulation timestamp in seconds.
	T float64
	// YawRad is the measured heading (rad), derived from the field vector.
	YawRad float64
}

// Mag models a magnetometer as a heading reference. The paper's fault
// model deliberately excludes the magnetometer as an injection target, but
// the vehicle still carries one — PX4 would not hold yaw without it — so
// it is modelled here and never routed through the fault injector.
type Mag struct {
	spec MagSpec
	bias float64
	rng  *mathx.Rand
	tick Ticker
}

// MagSpec describes the heading-reference error model.
type MagSpec struct {
	// YawNoiseStd is the per-sample heading noise (rad).
	YawNoiseStd float64
	// BiasStd is the constant per-run heading bias (soft-iron/declination
	// residual, rad).
	BiasStd float64
	// RateHz is the sample rate.
	RateHz float64
}

// DefaultMagSpec returns a calibrated consumer magnetometer model.
func DefaultMagSpec() MagSpec {
	return MagSpec{YawNoiseStd: 0.03, BiasStd: 0.02, RateHz: 10}
}

// NewMag returns a magnetometer whose constant bias is drawn once from
// rng; a nil rng yields an ideal sensor.
func NewMag(spec MagSpec, rng *mathx.Rand) *Mag {
	m := &Mag{spec: spec, rng: rng, tick: NewTicker(spec.RateHz)}
	if rng != nil {
		m.bias = rng.NormFloat64() * spec.BiasStd
	}
	return m
}

// Due reports whether a sample is due at sim time t.
func (m *Mag) Due(t float64) bool { return m.tick.Due(t) }

// DrawNoise advances the magnetometer's noise stream by one sample's
// deviate.
func (m *Mag) DrawNoise() float64 {
	if m.rng == nil {
		return 0
	}
	return m.rng.NormFloat64() * m.spec.YawNoiseStd
}

// SampleWith composes a heading measurement from the true yaw and an
// externally drawn noise term, bit-identically to Sample.
func (m *Mag) SampleWith(t, trueYawRad, noise float64) MagSample {
	yaw := trueYawRad + m.bias
	if m.rng != nil {
		yaw += noise
	}
	return MagSample{T: t, YawRad: yaw}
}

// Sample produces a heading measurement from the true yaw.
func (m *Mag) Sample(t, trueYawRad float64) MagSample {
	return m.SampleWith(t, trueYawRad, m.DrawNoise())
}

// MagSnapshot captures the magnetometer's dynamic state (checkpointing).
type MagSnapshot struct {
	bias   float64
	rng    mathx.RandState
	hasRng bool
	tick   Ticker
}

// Snapshot captures the bias, noise stream, and sample clock.
func (m *Mag) Snapshot() MagSnapshot {
	s := MagSnapshot{bias: m.bias, tick: m.tick}
	if m.rng != nil {
		s.rng = m.rng.State()
		s.hasRng = true
	}
	return s
}

// Restore reinstates a state captured with Snapshot.
func (m *Mag) Restore(s MagSnapshot) error {
	if s.hasRng != (m.rng != nil) {
		return fmt.Errorf("sensors: mag snapshot rng presence mismatch")
	}
	m.bias = s.bias
	m.tick = s.tick
	if m.rng != nil {
		m.rng.SetState(s.rng)
	}
	return nil
}
