package sensors

import (
	"math"
	"testing"

	"uavres/internal/mathx"
	"uavres/internal/physics"
)

func TestIMUSpecValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*IMUSpec)
		ok     bool
	}{
		{"default", func(*IMUSpec) {}, true},
		{"zero_rate", func(s *IMUSpec) { s.RateHz = 0 }, false},
		{"neg_noise", func(s *IMUSpec) { s.AccelNoiseStd = -1 }, false},
		{"neg_gyro_bias", func(s *IMUSpec) { s.GyroBiasStd = -0.1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := DefaultIMUSpec()
			tt.mutate(&s)
			if err := s.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestIdealIMUIsExact(t *testing.T) {
	imu, err := NewIMU(DefaultIMUSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mathx.V3(0.1, -0.2, -9.8)
	g := mathx.V3(0.01, 0.02, -0.03)
	s := imu.Sample(1.5, a, g)
	if s.Accel != a || s.Gyro != g || s.T != 1.5 {
		t.Errorf("ideal IMU distorted sample: %+v", s)
	}
	if imu.Last() != s {
		t.Error("Last() does not match most recent sample")
	}
}

func TestIMUClipping(t *testing.T) {
	imu, err := NewIMU(DefaultIMUSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := imu.Sample(0, mathx.V3(1e6, -1e6, 0), mathx.V3(-1e6, 0, 1e6))
	if s.Accel.X != AccelRange || s.Accel.Y != -AccelRange {
		t.Errorf("accel not clipped: %v", s.Accel)
	}
	if s.Gyro.X != -GyroRange || s.Gyro.Z != GyroRange {
		t.Errorf("gyro not clipped: %v", s.Gyro)
	}
}

func TestIMURanges(t *testing.T) {
	// ±16 g and ±2000 deg/s, the ranges the Min/Max faults inject.
	if math.Abs(AccelRange-16*physics.Gravity) > 1e-9 {
		t.Errorf("AccelRange = %v", AccelRange)
	}
	if math.Abs(GyroRange-mathx.Deg2Rad(2000)) > 1e-6 {
		t.Errorf("GyroRange = %v, want %v", GyroRange, mathx.Deg2Rad(2000))
	}
}

func TestIMUNoiseStatistics(t *testing.T) {
	spec := DefaultIMUSpec()
	imu, err := NewIMU(spec, mathx.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	var ax mathx.Running
	for i := 0; i < 20000; i++ {
		s := imu.Sample(float64(i)*0.004, mathx.Zero3, mathx.Zero3)
		ax.Add(s.Accel.X)
	}
	accelBias, _ := imu.Biases()
	if math.Abs(ax.Mean()-accelBias.X) > 0.005 {
		t.Errorf("accel X mean %v, want bias %v", ax.Mean(), accelBias.X)
	}
	if math.Abs(ax.Std()-spec.AccelNoiseStd) > 0.01 {
		t.Errorf("accel X std %v, want %v", ax.Std(), spec.AccelNoiseStd)
	}
}

func TestIMUBiasIsConstantPerRun(t *testing.T) {
	imu, err := NewIMU(DefaultIMUSpec(), mathx.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	a1, g1 := imu.Biases()
	imu.Sample(0, mathx.Zero3, mathx.Zero3)
	a2, g2 := imu.Biases()
	if a1 != a2 || g1 != g2 {
		t.Error("bias changed between samples")
	}
	if a1 == mathx.Zero3 && g1 == mathx.Zero3 {
		t.Error("seeded IMU has exactly zero bias (suspicious)")
	}
}

func TestTickerSchedule(t *testing.T) {
	tk := NewTicker(10) // every 0.1 s
	fires := 0
	for i := 0; i <= 100; i++ { // t = 0..1.0 in 10 ms steps
		if tk.Due(float64(i) * 0.01) {
			fires++
		}
	}
	if fires != 11 { // t=0.0, 0.1, ..., 1.0
		t.Errorf("fires = %d, want 11", fires)
	}
}

func TestTickerNoBurstAfterGap(t *testing.T) {
	tk := NewTicker(100)
	if !tk.Due(0) {
		t.Fatal("no fire at t=0")
	}
	// Jump far ahead: exactly one catch-up fire, then normal cadence.
	if !tk.Due(5.0) {
		t.Error("no fire after gap")
	}
	if tk.Due(5.001) {
		t.Error("burst fire right after catch-up")
	}
	if !tk.Due(5.011) {
		t.Error("normal cadence not resumed")
	}
}

func TestTickerZeroRate(t *testing.T) {
	tk := NewTicker(0)
	if tk.Period() != 1 {
		t.Errorf("zero-rate ticker period = %v, want fallback 1s", tk.Period())
	}
}

func TestIMUDueFollowsRate(t *testing.T) {
	spec := DefaultIMUSpec()
	spec.RateHz = 250
	imu, err := NewIMU(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	for i := 0; i < 1000; i++ { // 2 s at 2 ms steps
		if imu.Due(float64(i) * 0.002) {
			fires++
		}
	}
	if fires < 498 || fires > 502 {
		t.Errorf("fires in 2 s at 250 Hz = %d, want ~500", fires)
	}
}

func TestRedundantIMUsSwitching(t *testing.T) {
	set, err := NewRedundantIMUs(3, DefaultIMUSpec(), mathx.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 3 || set.Primary() != 0 {
		t.Fatalf("initial state: count=%d primary=%d", set.Count(), set.Primary())
	}
	if got := set.SwitchPrimary(); got != 1 {
		t.Errorf("first switch = %d, want 1", got)
	}
	if got := set.SwitchPrimary(); got != 2 {
		t.Errorf("second switch = %d, want 2", got)
	}
	if got := set.SwitchPrimary(); got != 0 {
		t.Errorf("third switch wraps to %d, want 0", got)
	}
	if !set.Exhausted(3) || set.Exhausted(2) {
		t.Error("Exhausted threshold wrong")
	}
}

func TestRedundantIMUsDistinctBiases(t *testing.T) {
	set, err := NewRedundantIMUs(3, DefaultIMUSpec(), mathx.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := set.Unit(0).Biases()
	a1, _ := set.Unit(1).Biases()
	if a0 == a1 {
		t.Error("redundant units share identical bias (should be independent)")
	}
}

func TestRedundantIMUsMinimumOne(t *testing.T) {
	set, err := NewRedundantIMUs(0, DefaultIMUSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 1 {
		t.Errorf("count = %d, want clamped to 1", set.Count())
	}
}

func TestGPSIdealAndNoisy(t *testing.T) {
	ideal := NewGPS(DefaultGPSSpec(), nil)
	pos, vel := mathx.V3(10, 20, -30), mathx.V3(1, 2, 3)
	s := ideal.Sample(2, pos, vel)
	if s.PosNED != pos || s.VelNED != vel || !s.Valid {
		t.Errorf("ideal GPS distorted: %+v", s)
	}

	noisy := NewGPS(DefaultGPSSpec(), mathx.NewRand(4))
	var errStats mathx.Running
	for i := 0; i < 5000; i++ {
		m := noisy.Sample(float64(i)*0.2, pos, vel)
		errStats.Add(m.PosNED.X - pos.X)
	}
	if math.Abs(errStats.Std()-DefaultGPSSpec().PosNoiseStdM) > 0.05 {
		t.Errorf("GPS pos noise std %v, want %v", errStats.Std(), DefaultGPSSpec().PosNoiseStdM)
	}
}

func TestBaroBiasAndNoise(t *testing.T) {
	b := NewBaro(DefaultBaroSpec(), mathx.NewRand(6))
	var stats mathx.Running
	for i := 0; i < 5000; i++ {
		stats.Add(b.Sample(float64(i)*0.04, 50).AltM)
	}
	// Mean = 50 + bias, and bias is bounded in probability by ~4 sigma.
	if math.Abs(stats.Mean()-50) > 4*DefaultBaroSpec().BiasStdM {
		t.Errorf("baro mean %v too far from 50", stats.Mean())
	}
	if math.Abs(stats.Std()-DefaultBaroSpec().AltNoiseStdM) > 0.02 {
		t.Errorf("baro noise std %v, want %v", stats.Std(), DefaultBaroSpec().AltNoiseStdM)
	}
}

func TestBaroIdeal(t *testing.T) {
	b := NewBaro(DefaultBaroSpec(), nil)
	if got := b.Sample(0, 12.5).AltM; got != 12.5 {
		t.Errorf("ideal baro = %v, want 12.5", got)
	}
}

func TestSampleAllPerUnitStreams(t *testing.T) {
	set, err := NewRedundantIMUs(3, DefaultIMUSpec(), mathx.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	all := set.SampleAll(1, mathx.V3(0, 0, -9.8), mathx.Zero3)
	if len(all) != 3 {
		t.Fatalf("samples = %d", len(all))
	}
	if all[0].Accel == all[1].Accel {
		t.Error("units produced identical noisy samples")
	}
	for i, s := range all {
		if s.T != 1 {
			t.Errorf("unit %d timestamp %v", i, s.T)
		}
		if set.Unit(i).Last() != s {
			t.Errorf("unit %d Last() mismatch", i)
		}
	}
}

func TestVoteOutlierDetectsBadPrimary(t *testing.T) {
	healthy := IMUSample{Accel: mathx.V3(0.01, 0, -9.8), Gyro: mathx.V3(0.01, 0, 0)}
	healthy2 := IMUSample{Accel: mathx.V3(-0.02, 0.03, -9.75), Gyro: mathx.V3(0, 0.005, 0)}
	bad := IMUSample{Accel: mathx.V3(0, 0, -9.8), Gyro: mathx.V3(-20, 5, 3)}

	if !VoteOutlier([]IMUSample{bad, healthy, healthy2}, 0, 3, 0.3) {
		t.Error("corrupted primary not voted out")
	}
	if VoteOutlier([]IMUSample{bad, healthy, healthy2}, 1, 3, 0.3) {
		t.Error("healthy primary voted out against corrupted minority")
	}
}

func TestVoteOutlierToleratesSensorSpread(t *testing.T) {
	// Normal bias/noise differences stay inside the tolerances.
	a := IMUSample{Accel: mathx.V3(0.05, -0.04, -9.82), Gyro: mathx.V3(0.004, -0.002, 0.001)}
	b := IMUSample{Accel: mathx.V3(-0.03, 0.06, -9.78), Gyro: mathx.V3(-0.003, 0.004, -0.002)}
	c := IMUSample{Accel: mathx.V3(0.01, 0.01, -9.80), Gyro: mathx.V3(0.001, 0.001, 0.003)}
	for p := 0; p < 3; p++ {
		if VoteOutlier([]IMUSample{a, b, c}, p, 3, 0.3) {
			t.Errorf("nominal spread voted out primary %d", p)
		}
	}
}

func TestVoteOutlierNeedsMajority(t *testing.T) {
	bad := IMUSample{Gyro: mathx.V3(-30, 0, 0)}
	ok := IMUSample{}
	if VoteOutlier([]IMUSample{bad, ok}, 0, 3, 0.3) {
		t.Error("two units cannot form a majority")
	}
	if VoteOutlier([]IMUSample{bad}, 0, 3, 0.3) {
		t.Error("single unit voted against itself")
	}
	if VoteOutlier([]IMUSample{bad, ok, ok}, 5, 3, 0.3) {
		t.Error("out-of-range primary index accepted")
	}
}

func TestVoteOutlierAllCorruptedAgree(t *testing.T) {
	// The paper's all-units assumption: every unit reads the same
	// corrupted values, so no outlier exists and voting stays silent.
	bad := IMUSample{Gyro: mathx.V3(-GyroRange, -GyroRange, -GyroRange)}
	if VoteOutlier([]IMUSample{bad, bad, bad}, 0, 3, 0.3) {
		t.Error("identical corrupted units flagged an outlier")
	}
}

func TestMagIdealAndBiased(t *testing.T) {
	ideal := NewMag(DefaultMagSpec(), nil)
	if got := ideal.Sample(0, 1.25).YawRad; got != 1.25 {
		t.Errorf("ideal mag yaw = %v", got)
	}

	biased := NewMag(DefaultMagSpec(), mathx.NewRand(11))
	var stats mathx.Running
	for i := 0; i < 5000; i++ {
		stats.Add(biased.Sample(float64(i)*0.1, 0.5).YawRad)
	}
	if math.Abs(stats.Mean()-0.5) > 4*DefaultMagSpec().BiasStd {
		t.Errorf("mag mean %v too far from 0.5", stats.Mean())
	}
	if math.Abs(stats.Std()-DefaultMagSpec().YawNoiseStd) > 0.01 {
		t.Errorf("mag noise std %v, want %v", stats.Std(), DefaultMagSpec().YawNoiseStd)
	}
}

func TestMagRate(t *testing.T) {
	mag := NewMag(DefaultMagSpec(), nil)
	fires := 0
	for i := 0; i < 1000; i++ { // 4 s at 4 ms
		if mag.Due(float64(i) * 0.004) {
			fires++
		}
	}
	if fires < 39 || fires > 42 { // 10 Hz over 4 s
		t.Errorf("mag fires = %d, want ~40", fires)
	}
}
