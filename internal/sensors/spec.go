// Package sensors models the drone's onboard sensor suite: a MEMS IMU
// (accelerometer + gyroscope, the two components the paper injects faults
// into), GPS, and barometer. Each model samples ground truth from the
// physics layer and adds per-run bias, white noise, and range clipping —
// the realistic output path the fault injector then corrupts.
//
// The magnetometer is deliberately absent: the paper explicitly excludes it
// from the study; heading aiding is emulated inside the EKF instead.
package sensors

import (
	"fmt"

	"uavres/internal/mathx"
	"uavres/internal/physics"
)

// Default full-scale ranges of the modelled MEMS IMU (ICM-20689 class, the
// part PX4 reference hardware ships): accelerometer ±16 g, gyroscope
// ±2000 deg/s. These are the Min/Max values the paper's "Min value" and
// "Max value" fault primitives inject.
const (
	// AccelRange is the accelerometer full-scale range in m/s^2 (±16 g).
	AccelRange = 16 * physics.Gravity
	// GyroRange is the gyroscope full-scale range in rad/s (±2000 deg/s).
	GyroRange = 2000 * (3.14159265358979323846 / 180)
)

// IMUSpec describes the stochastic error model of one IMU.
type IMUSpec struct {
	// AccelNoiseStd is the accelerometer white-noise standard deviation
	// per sample (m/s^2).
	AccelNoiseStd float64
	// AccelBiasStd is the standard deviation of the constant per-run
	// accelerometer bias (m/s^2).
	AccelBiasStd float64
	// GyroNoiseStd is the gyroscope white-noise standard deviation per
	// sample (rad/s).
	GyroNoiseStd float64
	// GyroBiasStd is the standard deviation of the constant per-run
	// gyroscope bias (rad/s).
	GyroBiasStd float64
	// RateHz is the IMU output data rate.
	RateHz float64
}

// DefaultIMUSpec returns a consumer-grade MEMS error model.
func DefaultIMUSpec() IMUSpec {
	return IMUSpec{
		AccelNoiseStd: 0.05,
		AccelBiasStd:  0.05,
		GyroNoiseStd:  0.002,
		GyroBiasStd:   0.003,
		RateHz:        250,
	}
}

// Validate reports whether the spec is usable.
func (s IMUSpec) Validate() error {
	if s.RateHz <= 0 {
		return fmt.Errorf("sensors: non-positive IMU rate %v", s.RateHz)
	}
	if s.AccelNoiseStd < 0 || s.AccelBiasStd < 0 || s.GyroNoiseStd < 0 || s.GyroBiasStd < 0 {
		return fmt.Errorf("sensors: negative noise parameter in %+v", s)
	}
	return nil
}

// GPSSpec describes the GPS receiver error model.
type GPSSpec struct {
	// PosNoiseStdM is the horizontal position noise standard deviation.
	PosNoiseStdM float64
	// AltNoiseStdM is the vertical position noise standard deviation.
	AltNoiseStdM float64
	// VelNoiseStd is the velocity noise standard deviation (m/s).
	VelNoiseStd float64
	// RateHz is the fix rate.
	RateHz float64
}

// DefaultGPSSpec returns a u-blox-class receiver model.
func DefaultGPSSpec() GPSSpec {
	return GPSSpec{PosNoiseStdM: 0.4, AltNoiseStdM: 0.8, VelNoiseStd: 0.1, RateHz: 5}
}

// BaroSpec describes the barometric altimeter error model.
type BaroSpec struct {
	// AltNoiseStdM is the altitude noise standard deviation.
	AltNoiseStdM float64
	// BiasStdM is the standard deviation of the constant per-run bias.
	BiasStdM float64
	// RateHz is the sample rate.
	RateHz float64
}

// DefaultBaroSpec returns an MS5611-class barometer model.
func DefaultBaroSpec() BaroSpec {
	return BaroSpec{AltNoiseStdM: 0.15, BiasStdM: 0.2, RateHz: 25}
}

// Ticker schedules fixed-rate sampling on the simulation clock. The zero
// value fires immediately at time 0 and then every period.
type Ticker struct {
	period float64
	next   float64
}

// NewTicker returns a ticker firing every 1/rateHz seconds of sim time.
func NewTicker(rateHz float64) Ticker {
	if rateHz <= 0 {
		return Ticker{period: 1}
	}
	return Ticker{period: 1 / rateHz}
}

// Due reports whether a sample is due at sim time t, advancing the schedule
// when it fires. Catch-up is suppressed: a large time jump produces one
// sample, not a burst.
func (tk *Ticker) Due(t float64) bool {
	if t+1e-12 < tk.next {
		return false
	}
	tk.next += tk.period
	if tk.next <= t {
		tk.next = t + tk.period
	}
	return true
}

// Period returns the tick period in seconds.
func (tk *Ticker) Period() float64 { return tk.period }

// ClipVec clamps each component of v to [-limit, limit], the sensor
// full-scale saturation behaviour.
func ClipVec(v mathx.Vec3, limit float64) mathx.Vec3 { return v.Clamp(limit) }
