package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("steps") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("tilt")
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	g.Max(3) // below current: no-op
	g.Max(40)
	if g.Value() != 40 {
		t.Errorf("gauge after Max = %v, want 40", g.Value())
	}
}

func TestKindCollisionReturnsDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	g := r.Gauge("x") // name taken by a counter
	g.Set(9)          // must not crash, must not leak into exposition
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 1 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 0 {
		t.Errorf("detached gauge exported: %+v", s.Gauges)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("sum = %v", h.Sum())
	}
	s := r.Snapshot()
	hv := s.Histograms[0]
	// 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=5; 100 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("live", func() float64 { return v })
	if got := r.Snapshot().Gauges[0].Value; got != 7 {
		t.Errorf("gauge func = %v", got)
	}
	v = 8
	if got := r.Snapshot().Gauges[0].Value; got != 8 {
		t.Errorf("gauge func after change = %v", got)
	}
}

// TestSnapshotRestoreFork is the checkpoint-and-fork contract: restoring
// a snapshot into a fresh registry reproduces the values, and the fork's
// subsequent updates never touch the source.
func TestSnapshotRestoreFork(t *testing.T) {
	src := NewRegistry()
	src.Counter("steps").Add(100)
	src.Gauge("tilt").Set(5)
	src.Histogram("lat", []float64{1, 10}).Observe(3)
	snap := src.Snapshot()

	fork := NewRegistry()
	forkSteps := fork.Counter("steps")
	fork.Gauge("tilt")
	fork.Histogram("lat", []float64{1, 10})
	if err := fork.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if forkSteps.Value() != 100 {
		t.Errorf("fork counter = %d", forkSteps.Value())
	}
	forkSteps.Add(50)
	if got := src.Counter("steps").Value(); got != 100 {
		t.Errorf("fork update leaked into source: %d", got)
	}
	fs := fork.Snapshot()
	if fs.Gauges[0].Value != 5 || fs.Histograms[0].Count != 1 {
		t.Errorf("fork snapshot = %+v", fs)
	}
}

func TestRestoreRejectsBucketMismatch(t *testing.T) {
	src := NewRegistry()
	src.Histogram("lat", []float64{1, 2}).Observe(1)
	snap := src.Snapshot()

	dst := NewRegistry()
	dst.Histogram("lat", []float64{1, 2, 3})
	if err := dst.Restore(snap); err == nil {
		t.Error("bucket-count mismatch accepted")
	}

	dst2 := NewRegistry()
	dst2.Histogram("lat", []float64{1, 5})
	if err := dst2.Restore(snap); err == nil {
		t.Error("bound-value mismatch accepted")
	}
}

// TestConcurrentInstruments exercises the lock-free update paths under
// the race detector (ci.sh runs this package with -race).
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2, 3})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Max(float64(w*1000 + i))
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Errorf("histogram count = %d, want 4000", h.Count())
	}
	if g.Value() != 3999 {
		t.Errorf("gauge max = %v, want 3999", g.Value())
	}
}

// TestHotPathAllocationFree pins the 500 Hz step-loop contract: updating
// resolved instruments allocates nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.001, 0.01, 0.1, 1})
	tb := NewTraceBuffer(8)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1.5)
		g.Max(2.5)
		h.Observe(0.05)
		tb.Append(Event{T: 1, Kind: EventPhase, Detail: "2"})
	}); n != 0 {
		t.Errorf("hot path allocates %.1f per op, want 0", n)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_in").Add(3)
	r.Gauge("subs.active").Set(2) // '.' must be sanitized
	h := r.Histogram("case_seconds", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{
		"# TYPE frames_in counter\nframes_in 3\n",
		"# TYPE subs_active gauge\nsubs_active 2\n",
		"# TYPE case_seconds histogram\n",
		"case_seconds_bucket{le=\"0.5\"} 1\n",
		"case_seconds_bucket{le=\"1\"} 2\n",
		"case_seconds_bucket{le=\"+Inf\"} 3\n",
		"case_seconds_sum 9.9\n",
		"case_seconds_count 3\n",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
}
