package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// WriteJSON writes the registry's snapshot as an indented JSON document —
// the -metrics-out format cmd/campaign emits and ValidateSnapshotJSON
// checks in CI.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ValidateSnapshotJSON checks that data is a well-formed metrics snapshot
// document: the exact top-level shape, non-empty unique metric names,
// non-negative counters, and internally consistent histograms (counts per
// bucket matching the declared bounds, bucket totals matching the count).
// It is the schema gate ci.sh runs against cmd/campaign's -metrics-out.
func ValidateSnapshotJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("obs: snapshot JSON: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("obs: snapshot JSON: trailing data after document")
	}
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		return fmt.Errorf("obs: snapshot JSON: counters/gauges/histograms must all be present")
	}

	seen := map[string]bool{}
	name := func(kind, n string) error {
		if n == "" {
			return fmt.Errorf("obs: snapshot JSON: %s with empty name", kind)
		}
		if seen[n] {
			return fmt.Errorf("obs: snapshot JSON: duplicate metric name %q", n)
		}
		seen[n] = true
		return nil
	}

	for _, c := range s.Counters {
		if err := name("counter", c.Name); err != nil {
			return err
		}
		if c.Value < 0 {
			return fmt.Errorf("obs: snapshot JSON: counter %q is negative (%d)", c.Name, c.Value)
		}
	}
	for _, g := range s.Gauges {
		if err := name("gauge", g.Name); err != nil {
			return err
		}
		if math.IsNaN(g.Value) {
			return fmt.Errorf("obs: snapshot JSON: gauge %q is NaN", g.Name)
		}
	}
	for _, h := range s.Histograms {
		if err := name("histogram", h.Name); err != nil {
			return err
		}
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("obs: snapshot JSON: histogram %q has %d counts for %d bounds (want bounds+1)",
				h.Name, len(h.Counts), len(h.Bounds))
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return fmt.Errorf("obs: snapshot JSON: histogram %q bounds not strictly increasing at %d", h.Name, i)
			}
		}
		var total int64
		for i, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("obs: snapshot JSON: histogram %q bucket %d is negative", h.Name, i)
			}
			total += c
		}
		if total != h.Count {
			return fmt.Errorf("obs: snapshot JSON: histogram %q buckets sum to %d but count is %d",
				h.Name, total, h.Count)
		}
		if h.Count == 0 && math.Abs(h.Sum) > 0 {
			return fmt.Errorf("obs: snapshot JSON: histogram %q has sum %v with zero observations", h.Name, h.Sum)
		}
	}
	return nil
}
