package obs

import (
	"encoding/json"
	"fmt"
)

// EventKind classifies a trace event. The taxonomy covers the flight
// lifecycle transitions the campaign's diagnostics care about; kinds are
// serialized by name so logs stay readable if the enum grows.
type EventKind uint8

// The trace-event taxonomy.
const (
	// EventPhase marks a guidance phase transition (Detail: new phase).
	EventPhase EventKind = iota + 1
	// EventInjectStart and EventInjectEnd bracket the fault window.
	EventInjectStart
	EventInjectEnd
	// EventInnerViolation and EventOuterViolation mark the tracking
	// instant a bubble excursion starts (rising edge; Value: deviation m).
	EventInnerViolation
	EventOuterViolation
	// EventMitigation marks the mitigation pipeline latching a stuck
	// sensor.
	EventMitigation
	// EventFailsafe marks flight termination (Detail: cause).
	EventFailsafe
	// EventGateReject marks the start of an EKF innovation-gate rejection
	// streak (Detail: aiding source; Value: worst test ratio).
	EventGateReject
	// EventSensorSwitch marks redundancy management switching the primary
	// IMU unit.
	EventSensorSwitch
	// EventEKFReset marks a filter reset-on-timeout.
	EventEKFReset
	// EventCrash marks crash detection (Detail: reason).
	EventCrash
	// EventComplete marks mission completion.
	EventComplete
)

var eventKindNames = map[EventKind]string{
	EventPhase:          "phase",
	EventInjectStart:    "inject_start",
	EventInjectEnd:      "inject_end",
	EventInnerViolation: "inner_violation",
	EventOuterViolation: "outer_violation",
	EventMitigation:     "mitigation",
	EventFailsafe:       "failsafe",
	EventGateReject:     "gate_reject",
	EventSensorSwitch:   "sensor_switch",
	EventEKFReset:       "ekf_reset",
	EventCrash:          "crash",
	EventComplete:       "complete",
}

var eventKindValues = func() map[string]EventKind {
	m := make(map[string]EventKind, len(eventKindNames))
	for k, n := range eventKindNames {
		m[n] = k
	}
	return m
}()

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if n, known := eventKindNames[k]; known {
		return n
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// MarshalJSON serializes the kind by name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name (round-tripping campaign results).
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, known := eventKindValues[s]
	if !known {
		return fmt.Errorf("obs: unknown event kind %q", s)
	}
	*k = v
	return nil
}

// Event is one timestamped trace record. Detail must be a static or
// pre-built string on hot paths (no formatting at append time); Value
// carries an optional kind-specific quantity.
type Event struct {
	T      float64   `json:"t"`
	Kind   EventKind `json:"kind"`
	Detail string    `json:"detail,omitempty"`
	Value  float64   `json:"value,omitempty"`
}

// DefaultTraceCapacity is the ring size a zero-configured buffer gets:
// large enough for every event of a nominal flight, small enough that a
// campaign's 850 diagnostics blocks stay light.
const DefaultTraceCapacity = 64

// TraceBuffer is a fixed-capacity ring of events. Append never allocates;
// once full, the oldest event is evicted and counted in Dropped. Not safe
// for concurrent use: each vehicle owns one (like the filter and body).
type TraceBuffer struct {
	buf     []Event
	start   int
	n       int
	dropped int64
}

// NewTraceBuffer returns a ring holding up to capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceBuffer{buf: make([]Event, capacity)}
}

// Append records one event.
func (b *TraceBuffer) Append(e Event) {
	if b.n < len(b.buf) {
		b.buf[(b.start+b.n)%len(b.buf)] = e
		b.n++
		return
	}
	b.buf[b.start] = e
	b.start = (b.start + 1) % len(b.buf)
	b.dropped++
}

// Len returns the number of retained events.
func (b *TraceBuffer) Len() int { return b.n }

// Dropped returns how many events were evicted after the ring filled.
func (b *TraceBuffer) Dropped() int64 { return b.dropped }

// Events returns the retained events oldest-first (a fresh slice).
func (b *TraceBuffer) Events() []Event {
	out := make([]Event, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.buf[(b.start+i)%len(b.buf)]
	}
	return out
}

// CountByKind tallies retained events per kind name (the diagnostics
// trace summary).
func (b *TraceBuffer) CountByKind() map[string]int {
	out := map[string]int{}
	for i := 0; i < b.n; i++ {
		out[b.buf[(b.start+i)%len(b.buf)].Kind.String()]++
	}
	return out
}

// TraceSnapshot is a deep copy of a TraceBuffer's state.
type TraceSnapshot struct {
	events  []Event
	dropped int64
}

// Snapshot deep-copies the buffer state; the snapshot stays valid while
// the source keeps appending.
func (b *TraceBuffer) Snapshot() TraceSnapshot {
	return TraceSnapshot{events: b.Events(), dropped: b.dropped}
}

// Restore reinstates a snapshot (the buffer keeps its own capacity; if
// the snapshot holds more events than fit, the oldest are dropped, exactly
// as if they had been appended live).
func (b *TraceBuffer) Restore(s TraceSnapshot) {
	b.start, b.n, b.dropped = 0, 0, 0
	for _, e := range s.events {
		b.Append(e)
	}
	b.dropped += s.dropped
}
