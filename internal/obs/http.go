package obs

import (
	"net/http"
	"net/http/pprof"
)

// MetricsMux builds the standard observability endpoint over a registry:
// Prometheus-text metrics at /metrics plus the Go profiling handlers
// under /debug/pprof/, on a private mux so nothing else in the process
// can accidentally extend the default mux into the same listener.
// cmd/trackerd serves it as-is; cmd/campaign layers its live /status
// handlers on top.
func MetricsMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
