package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat formats a float for exposition (+Inf/-Inf/NaN per the text
// format).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), the scrape payload cmd/trackerd's
// /metrics endpoint serves. Metrics appear sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		name := promName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	return bw.Flush()
}
