package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteJSONValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("cases").Add(850)
	r.Gauge("eta").Set(12.5)
	r.GaugeFunc("live", func() float64 { return 3 })
	h := r.Histogram("case_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON(buf.Bytes()); err != nil {
		t.Errorf("own output rejected: %v", err)
	}
}

func TestValidateSnapshotJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", `{`, "snapshot JSON"},
		{"unknown field", `{"counters":[],"gauges":[],"histograms":[],"extra":1}`, "unknown"},
		{"trailing data", `{"counters":[],"gauges":[],"histograms":[]} {}`, "trailing"},
		{"missing section", `{"counters":[],"gauges":[]}`, "must all be present"},
		{"empty name", `{"counters":[{"name":"","value":1}],"gauges":[],"histograms":[]}`, "empty name"},
		{"duplicate name", `{"counters":[{"name":"a","value":1},{"name":"a","value":2}],"gauges":[],"histograms":[]}`, "duplicate"},
		{"negative counter", `{"counters":[{"name":"a","value":-1}],"gauges":[],"histograms":[]}`, "negative"},
		{"bucket arity", `{"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[1,2],"counts":[1,2],"sum":3,"count":3}]}`, "bounds+1"},
		{"unsorted bounds", `{"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[2,1],"counts":[0,0,0],"sum":0,"count":0}]}`, "strictly increasing"},
		{"count mismatch", `{"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[1],"counts":[1,1],"sum":3,"count":5}]}`, "sum to"},
		{"sum without count", `{"counters":[],"gauges":[],"histograms":[{"name":"h","bounds":[1],"counts":[0,0],"sum":3,"count":0}]}`, "zero observations"},
	}
	for _, tc := range cases {
		err := ValidateSnapshotJSON([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
