// Package obs is the flight-data-recorder observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms) and a structured
// trace-event ring buffer, both with allocation-free hot paths safe for
// the 500 Hz simulation step loop and both snapshot-able so they compose
// with checkpoint-and-fork execution (a forked run carries a forked copy
// of its prefix's metrics, never a shared instance).
//
// The package is dependency-free (standard library only, no other
// internal packages) so every layer of the stack — sim, ekf, core,
// telemetry, and the cmd/ entry points — can instrument itself without
// import cycles. Exposition formats are Prometheus text (WritePrometheus)
// and a JSON snapshot document (WriteJSON / ValidateSnapshotJSON).
//
// Time never comes from the host clock here: library code receives a
// Clock value and cmd/ entry points decide whether it is wall time or a
// stopped clock (see the walltime analyzer in internal/lint).
package obs

// Clock supplies "now" in seconds. Library code must take a Clock instead
// of reading the wall clock directly: simulation code passes sim time,
// cmd/ entry points wire wall time (e.g. seconds since process start),
// and tests pass a hand-cranked counter. The zero value of a Clock field
// (nil) should be normalized with Stopped by the consumer.
type Clock func() float64

// Stopped returns a clock frozen at zero: timing instruments record
// zero-duration observations, everything else keeps working. It is the
// default for library code that was not handed a real clock.
func Stopped() Clock { return func() float64 { return 0 } }
