package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metric instruments. Registration (Counter, Gauge,
// Histogram, ...) takes a lock and may allocate; the returned instruments
// are lock-free and allocation-free to update, so callers resolve them
// once at construction time and hit only atomics in their hot loops.
// Instruments are safe for concurrent use from any number of goroutines.
type Registry struct {
	mu sync.Mutex
	//lint:allow snapshotcomplete registration table, fixed before any run; Snapshot/Restore round-trip instrument VALUES by name
	metrics map[string]*metric // guarded by mu
	//lint:allow snapshotcomplete registration order, fixed before any run; values round-trip through Snapshot/Restore
	order []*metric // registration order; guarded by mu
}

// metric kinds.
const (
	kindCounter = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	name string
	kind int

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// lookupOrAdd returns the metric registered under name, creating it with
// mk when absent. A name collision across kinds returns nil: the caller
// hands out a detached instrument so updates stay safe but the conflicting
// registration is not exported (misconfiguration must not panic a flight
// campaign).
func (r *Registry) lookupOrAdd(name string, kind int, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, exists := r.metrics[name]; exists {
		if m.kind != kind {
			return nil
		}
		return m
	}
	m := mk()
	m.name = name
	m.kind = kind
	r.metrics[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name, creating it if
// needed. If the name is already taken by a different kind, a detached
// counter (not exported by the registry) is returned.
func (r *Registry) Counter(name string) *Counter {
	m := r.lookupOrAdd(name, kindCounter, func() *metric { return &metric{counter: &Counter{}} })
	if m == nil {
		return &Counter{}
	}
	return m.counter
}

// Gauge returns the gauge registered under name, creating it if needed.
// Kind collisions return a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.lookupOrAdd(name, kindGauge, func() *metric { return &metric{gauge: &Gauge{}} })
	if m == nil {
		return &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a live gauge whose value is read by calling fn at
// snapshot/exposition time. fn must be safe to call from any goroutine.
// Re-registering an existing name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	m := r.lookupOrAdd(name, kindGaugeFunc, func() *metric { return &metric{} })
	if m == nil {
		return
	}
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram returns the fixed-bucket histogram registered under name,
// creating it with the given upper bounds (which must be sorted
// ascending; an unsorted or empty slice is sanitized). The +Inf overflow
// bucket is implicit. Kind collisions return a detached histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.lookupOrAdd(name, kindHistogram, func() *metric { return &metric{hist: newHistogram(bounds)} })
	if m == nil {
		return newHistogram(bounds)
	}
	return m.hist
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// set is used by Restore.
func (c *Counter) set(n int64) { c.v.Store(n) }

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; negative deltas allowed).
// Paired Add(1)/Add(-1) calls make a gauge a concurrency level, e.g.
// campaign_active_workers.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Max raises the gauge to v if v is larger (running maximum).
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is lock-free
// and allocation-free: a linear scan over the (small, fixed) bound slice
// plus two atomic adds.
type Histogram struct {
	bounds []float64      // immutable after construction
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    Gauge          // accumulated via CAS in observeSum
	n      atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	h.observeSum(v)
}

// observeSum adds v to the running sum with a CAS loop (no lock, no
// allocation).
func (h *Histogram) observeSum(v float64) {
	for {
		old := h.sum.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Snapshot is a point-in-time copy of every registered metric, ordered by
// name (deterministic output). It is the registry's serialization format
// (WriteJSON) and its checkpoint format (Restore): a forked simulation
// restores the prefix's snapshot into its own fresh registry, so sibling
// forks never share instruments.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's (or gauge func's) snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram's snapshot. Counts has one entry per
// bound plus the trailing +Inf overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// snapshotMetrics returns the metric list in registration order without
// holding the lock during value reads (instrument reads are atomic).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.order))
	copy(out, r.order)
	return out
}

// Snapshot captures every metric's current value. Gauge funcs are
// evaluated; they reappear as plain gauge values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   []CounterValue{},
		Gauges:     []GaugeValue{},
		Histograms: []HistogramValue{},
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterValue{Name: m.name, Value: m.counter.Value()})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeValue{Name: m.name, Value: m.gauge.Value()})
		case kindGaugeFunc:
			r.mu.Lock()
			fn := m.fn
			r.mu.Unlock()
			if fn != nil {
				s.Gauges = append(s.Gauges, GaugeValue{Name: m.name, Value: fn()})
			}
		case kindHistogram:
			h := m.hist
			hv := HistogramValue{
				Name:   m.name,
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Sum:    h.Sum(),
				Count:  h.Count(),
			}
			for i := range h.counts {
				hv.Counts[i] = h.counts[i].Load()
			}
			s.Histograms = append(s.Histograms, hv)
		}
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Restore sets every metric named in the snapshot to its recorded value.
// Metrics absent from the target registry are ignored (a snapshot may
// carry gauge-func values, which have no settable state); a histogram
// whose bucket layout differs from the target's is an error, because a
// silent partial restore would corrupt fork diagnostics.
func (r *Registry) Restore(s Snapshot) error {
	r.mu.Lock()
	byName := make(map[string]*metric, len(r.metrics))
	for name, m := range r.metrics {
		byName[name] = m
	}
	r.mu.Unlock()

	for _, cv := range s.Counters {
		if m, exists := byName[cv.Name]; exists && m.kind == kindCounter {
			m.counter.set(cv.Value)
		}
	}
	for _, gv := range s.Gauges {
		if m, exists := byName[gv.Name]; exists && m.kind == kindGauge {
			m.gauge.Set(gv.Value)
		}
	}
	for _, hv := range s.Histograms {
		m, exists := byName[hv.Name]
		if !exists || m.kind != kindHistogram {
			continue
		}
		h := m.hist
		if len(hv.Counts) != len(h.counts) || len(hv.Bounds) != len(h.bounds) {
			return fmt.Errorf("obs: restore %q: bucket layout mismatch (%d/%d buckets)",
				hv.Name, len(hv.Counts), len(h.counts))
		}
		for i, b := range hv.Bounds {
			if !approxEq(b, h.bounds[i]) {
				return fmt.Errorf("obs: restore %q: bound %d is %v, registry has %v",
					hv.Name, i, b, h.bounds[i])
			}
		}
		for i, c := range hv.Counts {
			h.counts[i].Store(c)
		}
		h.sum.Set(hv.Sum)
		h.n.Store(hv.Count)
	}
	return nil
}

// approxEq compares bucket bounds with a relative tolerance: bounds
// round-trip through JSON, which preserves float64 exactly, but a direct
// equality would trip over any future lossy serialization.
func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
