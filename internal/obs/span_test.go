package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock hands out 1, 2, 3, ... seconds.
func fakeClock() Clock {
	t := 0.0
	return func() float64 { t++; return t }
}

func TestTracerStartEndAnnotate(t *testing.T) {
	tr := NewTracer(fakeClock(), 8)
	root := tr.Start("campaign", 0, StrAttr("spec", "abc"))
	child := tr.Start("case", root, StrAttr("id", "m01-gold"), NumAttr("seed", 42))
	tr.Annotate(child, StrAttr("outcome", "completed"), BoolAttr("forked", true))
	tr.End(child)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "campaign" || spans[0].Parent != 0 {
		t.Errorf("root span: %+v", spans[0])
	}
	c := spans[1]
	if c.Parent != root {
		t.Errorf("child parent = %d, want %d", c.Parent, root)
	}
	if c.Open {
		t.Errorf("child still open after End")
	}
	if c.End <= c.Start {
		t.Errorf("child end %v <= start %v", c.End, c.Start)
	}
	want := []Attr{StrAttr("id", "m01-gold"), NumAttr("seed", 42), StrAttr("outcome", "completed"), BoolAttr("forked", true)}
	if len(c.Attrs) != len(want) {
		t.Fatalf("child attrs = %+v, want %+v", c.Attrs, want)
	}
	for i := range want {
		if c.Attrs[i] != want[i] {
			t.Errorf("attr %d = %+v, want %+v", i, c.Attrs[i], want[i])
		}
	}
}

func TestTracerEndIdempotent(t *testing.T) {
	tr := NewTracer(fakeClock(), 4)
	id := tr.Start("case", 0)
	tr.End(id)
	first := tr.Spans()[0].End
	tr.End(id) // second End must not move the timestamp
	if got := tr.Spans()[0].End; got != first {
		t.Errorf("second End moved end time %v -> %v", first, got)
	}
	tr.End(0)  // span 0 is a no-op
	tr.End(99) // out of range is a no-op
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	id := tr.Start("case", 0, StrAttr("id", "x"))
	if id != 0 {
		t.Errorf("nil tracer Start = %d, want 0", id)
	}
	tr.End(id)
	tr.Annotate(id, StrAttr("k", "v"))
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Errorf("nil tracer not inert")
	}
}

func TestTracerAttrOverflow(t *testing.T) {
	tr := NewTracer(nil, 1)
	attrs := make([]Attr, maxSpanAttrs+3)
	for i := range attrs {
		attrs[i] = NumAttr("k", float64(i))
	}
	id := tr.Start("case", 0, attrs...)
	if got := len(tr.Spans()[0].Attrs); got != maxSpanAttrs {
		t.Errorf("kept %d attrs, want %d", got, maxSpanAttrs)
	}
	tr.Annotate(id, StrAttr("late", "x"))
	if tr.droppedAttrs != 4 {
		t.Errorf("droppedAttrs = %d, want 4", tr.droppedAttrs)
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer(nil, 4)
	tr.max = 3
	for i := 0; i < 5; i++ {
		tr.Start("s", 0)
	}
	if tr.Len() != 3 {
		t.Errorf("len = %d, want 3 (capped)", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Errorf("reset left len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

// buildSample records the same span tree under the given clock.
func buildSample(clock Clock) *Tracer {
	tr := NewTracer(clock, 16)
	root := tr.Start("campaign", 0, StrAttr("spec", "abc"), NumAttr("cases", 3))
	p := tr.Start("prefix", root, NumAttr("mission", 1), NumAttr("start_sec", 90))
	tr.End(p)
	b := tr.Start("batch", p, NumAttr("cases", 2), StrAttr("first", "m01-a"))
	for _, id := range []string{"m01-b", "m01-a"} { // creation order != sorted order
		c := tr.Start("case", b, StrAttr("id", id))
		tr.Annotate(c, StrAttr("outcome", "completed"))
		tr.End(c)
	}
	tr.End(b)
	tr.End(root)
	return tr
}

func TestWriteTraceEventsValidAndDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample(fakeClock()).WriteTraceEvents(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample(fakeClock()).WriteTraceEvents(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEventJSON(a.Bytes()); err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical builds exported different bytes:\n%s\nvs\n%s", a.String(), b.String())
	}

	// A different clock changes ONLY ts/dur values.
	var c bytes.Buffer
	slow := func() Clock { t := 0.0; return func() float64 { t += 10; return t } }()
	if err := buildSample(slow).WriteTraceEvents(&c); err != nil {
		t.Fatal(err)
	}
	if got, want := stripTimes(t, c.Bytes()), stripTimes(t, a.Bytes()); got != want {
		t.Errorf("clock change altered non-timestamp content:\n%s\nvs\n%s", got, want)
	}

	// Case events must be sorted by attribute signature, not creation order.
	ids := caseIDOrder(t, a.Bytes())
	if strings.Join(ids, ",") != "m01-a,m01-b" {
		t.Errorf("case order = %v, want sorted [m01-a m01-b]", ids)
	}
}

// stripTimes is TraceSignature with test-fatal error handling.
func stripTimes(t *testing.T, data []byte) string {
	t.Helper()
	sig, err := TraceSignature(data)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// caseIDOrder extracts the "id" arg of every "case" event in emit order.
func caseIDOrder(t *testing.T, data []byte) []string {
	t.Helper()
	var doc traceEventDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, e := range doc.TraceEvents {
		if e.Name == "case" {
			ids = append(ids, e.Args["id"].(string))
		}
	}
	return ids
}

func TestWriteTraceEventsOpenSpan(t *testing.T) {
	tr := NewTracer(fakeClock(), 4)
	tr.Start("campaign", 0)
	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEventJSON(buf.Bytes()); err != nil {
		t.Fatalf("open-span export does not validate: %v", err)
	}
	if !strings.Contains(buf.String(), `"open": "true"`) {
		t.Errorf("open span not marked:\n%s", buf.String())
	}
}

func TestValidateTraceEventJSONRejects(t *testing.T) {
	bad := []string{
		`{`,
		`{"traceEvents": [{"name":"", "ph":"X", "ts":0, "dur":0, "pid":1, "tid":1}], "displayTimeUnit":"ms"}`,
		`{"traceEvents": [{"name":"x", "ph":"B", "ts":0, "dur":0, "pid":1, "tid":1}], "displayTimeUnit":"ms"}`,
		`{"traceEvents": [{"name":"x", "ph":"X", "ts":0, "dur":-1, "pid":1, "tid":1}], "displayTimeUnit":"ms"}`,
		`{"traceEvents": [{"name":"x", "ph":"X", "ts":0, "dur":0, "pid":0, "tid":1}], "displayTimeUnit":"ms"}`,
		`{"displayTimeUnit":"ms"}`,
		`{"traceEvents": [], "displayTimeUnit":"ms", "extra": 1}`,
	}
	for _, s := range bad {
		if err := ValidateTraceEventJSON([]byte(s)); err == nil {
			t.Errorf("validated bad document: %s", s)
		}
	}
	good := `{"displayTimeUnit":"ms","traceEvents":[{"name":"x","cat":"campaign","ph":"X","ts":0,"dur":5,"pid":1,"tid":1}]}`
	if err := ValidateTraceEventJSON([]byte(good)); err != nil {
		t.Errorf("rejected good document: %v", err)
	}
}

// TestSpanStartEndZeroAlloc is the hot-path allocation guard: once the
// span slice has capacity, Start+End must not allocate (the campaign
// runner calls them per case from every worker).
func TestSpanStartEndZeroAlloc(t *testing.T) {
	tr := NewTracer(Stopped(), 4096)
	root := tr.Start("campaign", 0)
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Start("case", root, StrAttr("id", "m01-gold"))
		tr.End(id)
		if tr.Len() >= 4000 {
			tr.Reset()
			root = tr.Start("campaign", 0)
		}
	})
	if allocs > 0 {
		t.Errorf("Start/End allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Add(2)
	g.Add(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
}
