package obs

import (
	"encoding/json"
	"testing"
)

func TestTraceBufferOrderAndEviction(t *testing.T) {
	b := NewTraceBuffer(3)
	for i := 1; i <= 5; i++ {
		b.Append(Event{T: float64(i), Kind: EventPhase})
	}
	if b.Len() != 3 {
		t.Errorf("len = %d, want 3", b.Len())
	}
	if b.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", b.Dropped())
	}
	ev := b.Events()
	for i, wantT := range []float64{3, 4, 5} {
		if ev[i].T != wantT {
			t.Errorf("event %d at t=%v, want %v (all: %v)", i, ev[i].T, wantT, ev)
		}
	}
}

func TestTraceSnapshotIsIndependent(t *testing.T) {
	b := NewTraceBuffer(4)
	b.Append(Event{T: 1, Kind: EventInjectStart, Detail: "gyro"})
	b.Append(Event{T: 2, Kind: EventGateReject, Detail: "gps", Value: 4.2})
	snap := b.Snapshot()

	b.Append(Event{T: 3, Kind: EventCrash})

	fork := NewTraceBuffer(4)
	fork.Restore(snap)
	if fork.Len() != 2 {
		t.Fatalf("fork len = %d, want 2", fork.Len())
	}
	ev := fork.Events()
	if ev[1].Kind != EventGateReject || ev[1].Detail != "gps" || ev[1].Value != 4.2 {
		t.Errorf("fork event 1 = %+v", ev[1])
	}
	fork.Append(Event{T: 9, Kind: EventComplete})
	if b.Len() != 3 {
		t.Errorf("fork append changed source (len=%d)", b.Len())
	}
}

func TestTraceRestoreCarriesDropped(t *testing.T) {
	b := NewTraceBuffer(2)
	for i := 0; i < 5; i++ {
		b.Append(Event{T: float64(i), Kind: EventPhase})
	}
	snap := b.Snapshot() // 2 retained, 3 dropped

	fork := NewTraceBuffer(2)
	fork.Restore(snap)
	if fork.Dropped() != 3 {
		t.Errorf("fork dropped = %d, want 3", fork.Dropped())
	}
}

func TestCountByKind(t *testing.T) {
	b := NewTraceBuffer(8)
	b.Append(Event{Kind: EventPhase})
	b.Append(Event{Kind: EventPhase})
	b.Append(Event{Kind: EventFailsafe})
	got := b.CountByKind()
	if got["phase"] != 2 || got["failsafe"] != 1 {
		t.Errorf("CountByKind = %v", got)
	}
}

func TestEventKindJSONRoundTrip(t *testing.T) {
	for k := EventPhase; k <= EventComplete; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back EventKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("kind %v: %v", k, err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	var bad EventKind
	if err := json.Unmarshal([]byte(`"warp_drive"`), &bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestEventJSONShape(t *testing.T) {
	e := Event{T: 91.5, Kind: EventInnerViolation, Detail: "inner", Value: 2.5}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"t":91.5,"kind":"inner_violation","detail":"inner","value":2.5}`
	if string(data) != want {
		t.Errorf("event JSON = %s, want %s", data, want)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Errorf("round trip = %+v", back)
	}
}
