package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SpanID identifies a span within one Tracer. The zero value means "no
// span": it is a valid parent (the span becomes a root) and a valid
// argument to End/Annotate (a no-op), so instrumented code never needs
// to branch on whether tracing is enabled.
type SpanID int32

// Attr is one span attribute: a string or numeric key/value pair.
// Attributes are campaign-level metadata (case IDs, outcomes, batch
// widths) — small, bounded, and deterministic across runs.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// StrAttr builds a string attribute.
func StrAttr(k, v string) Attr { return Attr{Key: k, Str: v} }

// NumAttr builds a numeric attribute.
func NumAttr(k string, v float64) Attr { return Attr{Key: k, Num: v, IsNum: true} }

// BoolAttr builds a boolean attribute (serialized as "true"/"false" so
// attribute signatures stay plain strings).
func BoolAttr(k string, v bool) Attr {
	if v {
		return Attr{Key: k, Str: "true"}
	}
	return Attr{Key: k, Str: "false"}
}

// maxSpanAttrs caps attributes per span; extras are counted in
// DroppedAttrs rather than silently vanishing.
const maxSpanAttrs = 8

// spanRec is one span's storage. Records live in the tracer's flat
// slice; SpanID is the 1-based index into it.
type spanRec struct {
	name   string
	parent SpanID
	start  float64
	end    float64
	open   bool
	nattrs int32
	attrs  [maxSpanAttrs]Attr
}

// DefaultMaxSpans bounds a tracer's memory: far above any real campaign
// (the paper's 850 cases produce ~1000 spans) but a hard stop against a
// runaway instrumentation loop.
const DefaultMaxSpans = 1 << 20

// Tracer records hierarchical execution spans: campaign → mission
// prefix → lockstep batch → case. It is safe for concurrent use (the
// campaign runner starts and ends spans from every worker); Start and
// End are allocation-free once the span slice has capacity, so tracing
// a full campaign costs microseconds, not milliseconds.
//
// Time comes exclusively from the injected Clock — library code never
// reads the wall clock (see the walltime analyzer) — so span TREES are
// deterministic for a given campaign: identical runs differ only in
// timestamp values, never in span names, attributes, or structure.
// Export order is sorted by (name, attribute signature), not creation
// order, so worker scheduling cannot reorder the output.
//
// A nil *Tracer is valid and inert: every method no-ops (Start returns
// 0), which is how the runner runs untraced with zero overhead.
type Tracer struct {
	mu           sync.Mutex
	clock        Clock
	spans        []spanRec
	max          int
	dropped      int64
	droppedAttrs int64
}

// NewTracer returns a tracer reading time from clock (Stopped when nil)
// with capacity preallocated for hint spans. Span count is capped at
// DefaultMaxSpans; spans started past the cap are counted in Dropped.
func NewTracer(clock Clock, hint int) *Tracer {
	if clock == nil {
		clock = Stopped()
	}
	if hint < 0 {
		hint = 0
	}
	if hint > DefaultMaxSpans {
		hint = DefaultMaxSpans
	}
	return &Tracer{clock: clock, spans: make([]spanRec, 0, hint), max: DefaultMaxSpans}
}

// Start opens a span under parent (0 = root) and returns its ID. name
// must be a static or pre-built string. Attributes beyond the per-span
// cap are dropped and counted. Start on a nil tracer returns 0.
func (t *Tracer) Start(name string, parent SpanID, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return 0
	}
	t.spans = append(t.spans, spanRec{name: name, parent: parent, start: t.clock(), open: true})
	id := SpanID(len(t.spans))
	t.appendAttrsLocked(id, attrs)
	t.mu.Unlock()
	return id
}

// appendAttrsLocked copies attrs into the record, counting overflow.
func (t *Tracer) appendAttrsLocked(id SpanID, attrs []Attr) {
	rec := &t.spans[id-1]
	for _, a := range attrs {
		if int(rec.nattrs) >= maxSpanAttrs {
			t.droppedAttrs++
			continue
		}
		rec.attrs[rec.nattrs] = a
		rec.nattrs++
	}
}

// End closes the span at the clock's current time. Ending an already
// ended span (or span 0, or a nil tracer) is a no-op, so error paths can
// End unconditionally.
func (t *Tracer) End(id SpanID) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	if int(id) <= len(t.spans) && t.spans[id-1].open {
		t.spans[id-1].end = t.clock()
		t.spans[id-1].open = false
	}
	t.mu.Unlock()
}

// Annotate adds attributes to an existing span (e.g. a case's outcome,
// known only after it ends). No-op on a nil tracer or span 0.
func (t *Tracer) Annotate(id SpanID, attrs ...Attr) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	if int(id) <= len(t.spans) {
		t.appendAttrsLocked(id, attrs)
	}
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many Start calls were refused at the span cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards every recorded span (capacity is kept). It exists for
// long-lived processes that trace campaign after campaign.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.dropped = 0
	t.droppedAttrs = 0
	t.mu.Unlock()
}

// SpanView is one span's exported state.
type SpanView struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  float64
	End    float64
	Open   bool
	Attrs  []Attr
}

// Spans returns a deep copy of every recorded span in creation order.
func (t *Tracer) Spans() []SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanView, len(t.spans))
	for i := range t.spans {
		rec := &t.spans[i]
		out[i] = SpanView{
			ID:     SpanID(i + 1),
			Parent: rec.parent,
			Name:   rec.name,
			Start:  rec.start,
			End:    rec.end,
			Open:   rec.open,
			Attrs:  append([]Attr(nil), rec.attrs[:rec.nattrs]...),
		}
	}
	return out
}

// sortKey is the deterministic ordering key for export: the span name
// plus its attribute signature in insertion order. Instrumentation gives
// sibling spans distinguishing attributes (case IDs, batch first-case,
// prefix mission/seed), so the key orders siblings independently of the
// scheduler-dependent creation order.
func (v *SpanView) sortKey() string {
	var sb strings.Builder
	sb.WriteString(v.Name)
	for _, a := range v.Attrs {
		sb.WriteByte(0x1f)
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		if a.IsNum {
			sb.WriteString(strconv.FormatFloat(a.Num, 'g', -1, 64))
		} else {
			sb.WriteString(a.Str)
		}
	}
	return sb.String()
}

// traceEvent is one Chrome/Perfetto trace-event object ("X" = complete
// event with explicit duration; ts/dur are microseconds).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceEventDoc is the exported document shape.
type traceEventDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteTraceEvents exports the recorded spans as Chrome/Perfetto
// trace-event JSON (load it in a chrome://tracing or ui.perfetto.dev
// session). Events are emitted in a deterministic depth-first order —
// parents before children, siblings sorted by (name, attributes) — so
// two runs of the same campaign produce byte-identical documents apart
// from the ts/dur timestamp values. Each top-level subtree under the
// root is assigned its own tid lane so concurrent cases render side by
// side instead of overlapping.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	spans := t.Spans()

	// Index children; spans with a missing or out-of-range parent become
	// roots so a truncated trace still exports.
	children := make(map[SpanID][]int, len(spans))
	for i := range spans {
		p := spans[i].Parent
		if int(p) < 0 || int(p) > len(spans) {
			p = 0
		}
		children[p] = append(children[p], i)
	}
	for _, idxs := range children {
		sort.Slice(idxs, func(a, b int) bool {
			ka, kb := spans[idxs[a]].sortKey(), spans[idxs[b]].sortKey()
			if ka != kb {
				return ka < kb
			}
			return idxs[a] < idxs[b] // identical-content siblings: creation order
		})
	}

	events := make([]traceEvent, 0, len(spans))
	lanes := 0
	var emit func(idx, depth, lane int)
	emit = func(idx, depth, lane int) {
		v := &spans[idx]
		end := v.End
		args := make(map[string]any, len(v.Attrs)+1)
		for _, a := range v.Attrs {
			if a.IsNum {
				args[a.Key] = a.Num
			} else {
				args[a.Key] = a.Str
			}
		}
		if v.Open {
			end = v.Start
			args["open"] = "true"
		}
		events = append(events, traceEvent{
			Name: v.Name,
			Cat:  "campaign",
			Ph:   "X",
			Ts:   v.Start * 1e6,
			Dur:  (end - v.Start) * 1e6,
			Pid:  1,
			Tid:  lane,
			Args: args,
		})
		for _, c := range children[v.ID] {
			childLane := lane
			if depth == 1 {
				// Children of a root span each open their own lane so
				// concurrently running subtrees do not overlap on one track.
				lanes++
				childLane = lanes
			}
			emit(c, depth+1, childLane)
		}
	}
	for _, r := range children[0] {
		lanes++
		emit(r, 1, lanes)
	}

	data, err := json.MarshalIndent(traceEventDoc{DisplayTimeUnit: "ms", TraceEvents: events}, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshal trace events: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// TraceSignature reduces an exported trace-event document to its
// timestamp-free form: ts and dur are zeroed and the document is
// re-marshaled compactly. Two campaign runs are "identical modulo wall
// timestamps" exactly when their signatures match — the determinism
// tests and ci.sh compare this, never the raw bytes.
func TraceSignature(data []byte) (string, error) {
	var doc traceEventDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", fmt.Errorf("obs: trace signature: %w", err)
	}
	for i := range doc.TraceEvents {
		doc.TraceEvents[i].Ts = 0
		doc.TraceEvents[i].Dur = 0
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("obs: trace signature: %w", err)
	}
	return string(out), nil
}

// ValidateTraceEventJSON checks that data is a well-formed trace-event
// document of the shape WriteTraceEvents emits: valid JSON, the exact
// top-level fields, and every event a complete ("X") event with a name,
// non-negative duration, and positive pid/tid. It is the schema gate
// ci.sh runs against cmd/campaign's -trace-out.
func ValidateTraceEventJSON(data []byte) error {
	if !json.Valid(data) {
		return fmt.Errorf("obs: trace JSON: not valid JSON")
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc traceEventDoc
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("obs: trace JSON: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("obs: trace JSON: trailing data after document")
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace JSON: traceEvents must be present")
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("obs: trace JSON: event %d has no name", i)
		}
		if e.Ph != "X" {
			return fmt.Errorf("obs: trace JSON: event %d (%s) has phase %q, want complete event \"X\"", i, e.Name, e.Ph)
		}
		if e.Dur < 0 {
			return fmt.Errorf("obs: trace JSON: event %d (%s) has negative duration %v", i, e.Name, e.Dur)
		}
		if e.Pid <= 0 || e.Tid <= 0 {
			return fmt.Errorf("obs: trace JSON: event %d (%s) has non-positive pid/tid %d/%d", i, e.Name, e.Pid, e.Tid)
		}
	}
	return nil
}
