package mitigation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"uavres/internal/mathx"
	"uavres/internal/sensors"
)

func sample(a, g mathx.Vec3) sensors.IMUSample {
	return sensors.IMUSample{Accel: a, Gyro: g}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero_disabled", Config{}, true},
		{"default", DefaultConfig(), true},
		{"neg_clamp", Config{GyroClampRad: -1}, false},
		{"huge_window", Config{MedianWindow: 100}, false},
		{"neg_stuck", Config{StuckWindow: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v", err)
			}
			if !tt.ok {
				if _, err := NewPipeline(tt.cfg); err == nil {
					t.Error("NewPipeline accepted invalid config")
				}
			}
		})
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !DefaultConfig().Enabled() {
		t.Error("default config reports disabled")
	}
}

func TestDisabledPipelineIsPassThrough(t *testing.T) {
	p, err := NewPipeline(Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := sample(mathx.V3(1, 2, -9.8), mathx.V3(30, -30, 5))
	out, stuck := p.Apply(in)
	if out != in || stuck {
		t.Errorf("pass-through distorted: %+v stuck=%v", out, stuck)
	}
}

func TestGyroClamp(t *testing.T) {
	p, err := NewPipeline(Config{GyroClampRad: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A full-scale Min injection (-34.9 rad/s) is saturated to -10.
	out, _ := p.Apply(sample(mathx.Zero3, mathx.V3(-sensors.GyroRange, sensors.GyroRange, 2)))
	if out.Gyro != mathx.V3(-10, 10, 2) {
		t.Errorf("clamped gyro = %v", out.Gyro)
	}
	// In-envelope rates pass untouched.
	out, _ = p.Apply(sample(mathx.Zero3, mathx.V3(3, -3, 1)))
	if out.Gyro != mathx.V3(3, -3, 1) {
		t.Errorf("in-envelope gyro modified: %v", out.Gyro)
	}
}

func TestMedianRemovesIsolatedSpike(t *testing.T) {
	p, err := NewPipeline(Config{MedianWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	steady := sample(mathx.V3(0, 0, -9.8), mathx.V3(0.1, 0, 0))
	for i := 0; i < 10; i++ {
		p.Apply(steady)
	}
	// One spike sample.
	p.Apply(sample(mathx.V3(150, -150, 100), mathx.V3(30, 30, 30)))
	// The next output must still be the steady value: the spike is a
	// minority within every 5-sample window.
	out, _ := p.Apply(steady)
	if out.Accel.Sub(steady.Accel).Norm() > 1e-9 || out.Gyro.Sub(steady.Gyro).Norm() > 1e-9 {
		t.Errorf("spike leaked through median: %+v", out)
	}
}

func TestMedianTracksStepAfterHalfWindow(t *testing.T) {
	p, err := NewPipeline(Config{MedianWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Apply(sample(mathx.V3(0, 0, -9.8), mathx.Zero3))
	}
	// A genuine step (maneuver) must come through after ceil(w/2) samples.
	stepped := sample(mathx.V3(2, 0, -9.8), mathx.V3(0.5, 0, 0))
	var out sensors.IMUSample
	for i := 0; i < 3; i++ {
		out, _ = p.Apply(stepped)
	}
	if out.Accel.X != 2 || out.Gyro.X != 0.5 {
		t.Errorf("step suppressed: %+v", out)
	}
}

func TestMedianEvenWindowRoundsUp(t *testing.T) {
	p, err := NewPipeline(Config{MedianWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Window 5 after rounding: two spikes in a row must still be a
	// minority.
	steady := sample(mathx.V3(0, 0, -9.8), mathx.Zero3)
	for i := 0; i < 10; i++ {
		p.Apply(steady)
	}
	spike := sample(mathx.V3(99, 99, 99), mathx.Zero3)
	p.Apply(spike)
	p.Apply(spike)
	out, _ := p.Apply(steady)
	if out.Accel.X != 0 {
		t.Errorf("two spikes in rounded-up window leaked: %v", out.Accel)
	}
}

func TestStuckGuardDetectsFreeze(t *testing.T) {
	p, err := NewPipeline(Config{StuckWindow: 10})
	if err != nil {
		t.Fatal(err)
	}
	frozen := sample(mathx.V3(0.5, 0.1, -9.7), mathx.V3(0.01, 0, 0))
	detected := false
	for i := 0; i < 10; i++ {
		_, stuck := p.Apply(frozen)
		detected = detected || stuck
	}
	if !detected {
		t.Error("10 identical samples not detected with window 10")
	}
	if !p.StuckDetected() {
		t.Error("stuck latch not set")
	}
}

func TestStuckGuardDetectsZeros(t *testing.T) {
	p, err := NewPipeline(Config{StuckWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	var detected bool
	for i := 0; i < 5; i++ {
		_, stuck := p.Apply(sample(mathx.Zero3, mathx.Zero3))
		detected = detected || stuck
	}
	if !detected {
		t.Error("all-zero stream not detected")
	}
}

func TestStuckGuardIgnoresNoisySensor(t *testing.T) {
	p, err := NewPipeline(Config{StuckWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := mathx.V3(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05, -9.8+rng.NormFloat64()*0.05)
		g := mathx.V3(rng.NormFloat64()*0.002, 0.01, 0)
		if _, stuck := p.Apply(sample(a, g)); stuck {
			t.Fatalf("noisy stream flagged stuck at sample %d", i)
		}
	}
}

func TestStuckGuardOneRepeatedSensorSuffices(t *testing.T) {
	p, err := NewPipeline(Config{StuckWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Accel noisy, gyro frozen: the gyro guard must fire.
	detected := false
	for i := 0; i < 10; i++ {
		a := mathx.V3(rng.NormFloat64(), rng.NormFloat64(), -9.8)
		_, stuck := p.Apply(sample(a, mathx.V3(0.02, -0.01, 0)))
		detected = detected || stuck
	}
	if !detected {
		t.Error("frozen gyro not detected while accel noisy")
	}
}

// Property: the median filter's output is always one of the window's
// input values and lies between the window min and max.
func TestMedianWithinInputRange(t *testing.T) {
	f := func(values []float64) bool {
		m := newMedianFilter(7)
		window := make([]float64, 0, 7)
		for _, v := range values {
			if v != v { // NaN breaks ordering; real sensors never emit it
				v = 0
			}
			out := m.push(v)
			window = append(window, v)
			if len(window) > 7 {
				window = window[1:]
			}
			lo, hi := minMax(window)
			if out < lo || out > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for a full window, push returns the true median.
func TestMedianMatchesSort(t *testing.T) {
	f := func(raw [7]float64) bool {
		m := newMedianFilter(7)
		var out float64
		vals := make([]float64, 0, 7)
		for _, v := range raw {
			if v != v {
				v = 0
			}
			vals = append(vals, v)
			out = m.push(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return out == sorted[3]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
