package mitigation

import (
	"math"

	"uavres/internal/physics"
)

// RotorMonitor is the per-rotor fault detection and isolation stage: it
// replays the body's exact first-order motor-lag model on the commands the
// controller intends and compares against the measured rotor states. A
// healthy rotor tracks the model to ~1e-16 (both sides integrate the same
// closed form), so any sustained residual is an actuator fault signature —
// loss-of-effectiveness, stuck, or float — not noise. After RotorFDIWindow
// consecutive anomalous control cycles the rotor is condemned (latched);
// the vehicle then re-solves its control allocation around it.
//
// Like the sensor pipeline, the monitor needs no ground truth: a real
// flight stack reads the same quantities from ESC RPM telemetry.
type RotorMonitor struct {
	n      int
	window int
	tol    float64
	lag    float64 // 1 - exp(-dt/motorTau) over one control cycle

	primed    bool
	prevCmd   physics.Rotors
	expected  physics.Rotors
	strikes   [physics.MaxRotors]int
	condemned [physics.MaxRotors]bool
}

// NewRotorMonitor builds a monitor for an n-rotor airframe whose motors
// have time constant motorTau, observed every dt seconds (the control
// cycle). cfg supplies the window and tolerance.
func NewRotorMonitor(cfg Config, n int, motorTau, dt float64) *RotorMonitor {
	tol := cfg.RotorFDITol
	if tol <= 0 {
		tol = DefaultRotorFDITol
	}
	return &RotorMonitor{
		n:      n,
		window: cfg.RotorFDIWindow,
		tol:    tol,
		lag:    1 - math.Exp(-dt/motorTau),
	}
}

// Observe advances the expected-rotor model by the previously intended
// commands, compares it with the measured rotor states, and updates the
// per-rotor strike counters. cmd is the command the controller intends
// THIS cycle (pre-injection — the fault acts between controller and
// motor); meas is the rotor state measured at the start of the cycle,
// which reflects commands up to the previous cycle. Observe returns true
// when a new rotor was condemned this cycle.
func (m *RotorMonitor) Observe(cmd, meas physics.Rotors) bool {
	if !m.primed {
		m.primed = true
		m.expected = meas
		m.prevCmd = cmd
		return false
	}
	changed := false
	for i := 0; i < m.n; i++ {
		m.expected[i] += (m.prevCmd[i] - m.expected[i]) * m.lag
		if m.condemned[i] {
			continue
		}
		if math.Abs(meas[i]-m.expected[i]) > m.tol {
			m.strikes[i]++
			if m.strikes[i] >= m.window {
				m.condemned[i] = true
				changed = true
			}
		} else {
			m.strikes[i] = 0
		}
	}
	m.prevCmd = cmd
	return changed
}

// AnyCondemned reports whether at least one rotor has been condemned.
func (m *RotorMonitor) AnyCondemned() bool {
	for i := 0; i < m.n; i++ {
		if m.condemned[i] {
			return true
		}
	}
	return false
}

// CondemnedCount returns how many rotors have been condemned.
func (m *RotorMonitor) CondemnedCount() int {
	c := 0
	for i := 0; i < m.n; i++ {
		if m.condemned[i] {
			c++
		}
	}
	return c
}

// Condemned reports whether rotor i has been condemned.
func (m *RotorMonitor) Condemned(i int) bool { return m.condemned[i] }

// Weights maps the condemned set to per-rotor allocation health weights:
// condemned rotors get 0 and the diametric partner of each condemned rotor
// is capped at derate (0 condemns the pair outright — see
// Config.OppositeDerate); everything else stays 1.
func (m *RotorMonitor) Weights(frame physics.Airframe, derate float64) physics.Rotors {
	var w physics.Rotors
	for i := 0; i < m.n; i++ {
		w[i] = 1
	}
	for i := 0; i < m.n; i++ {
		if !m.condemned[i] {
			continue
		}
		w[i] = 0
		opp := frame.Opposite(i)
		if !m.condemned[opp] && derate < w[opp] {
			w[opp] = derate
		}
	}
	return w
}

// RotorMonitorSnapshot captures the monitor's complete dynamic state
// (checkpointing).
type RotorMonitorSnapshot struct {
	primed    bool
	prevCmd   physics.Rotors
	expected  physics.Rotors
	strikes   [physics.MaxRotors]int
	condemned [physics.MaxRotors]bool
}

// Snapshot captures the expected model, strike counters, and condemned set.
func (m *RotorMonitor) Snapshot() RotorMonitorSnapshot {
	return RotorMonitorSnapshot{
		primed:    m.primed,
		prevCmd:   m.prevCmd,
		expected:  m.expected,
		strikes:   m.strikes,
		condemned: m.condemned,
	}
}

// Restore reinstates a state captured with Snapshot.
func (m *RotorMonitor) Restore(s RotorMonitorSnapshot) {
	m.primed = s.primed
	m.prevCmd = s.prevCmd
	m.expected = s.expected
	m.strikes = s.strikes
	m.condemned = s.condemned
}
