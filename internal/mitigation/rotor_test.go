package mitigation

import (
	"math"
	"testing"

	"uavres/internal/physics"
)

const (
	testTau = 0.05
	testDt  = 0.004
)

func testMonitor(window int) *RotorMonitor {
	cfg := Config{RotorFDIWindow: window, RotorFDITol: 0.15}
	return NewRotorMonitor(cfg, 4, testTau, testDt)
}

// motorModel integrates the body's first-order motor lag exactly like the
// monitor's internal replay — the same closed form physics.Body uses.
type motorModel struct {
	state physics.Rotors
	lag   float64
	n     int
}

func (m *motorModel) step(cmd physics.Rotors) {
	for i := 0; i < m.n; i++ {
		m.state[i] += (cmd[i] - m.state[i]) * m.lag
	}
}

// TestHealthyRotorsNeverCondemned drives the monitor with commands and a
// perfectly tracking motor model for thousands of cycles: the residual
// stays at rounding level and nothing trips.
func TestHealthyRotorsNeverCondemned(t *testing.T) {
	m := testMonitor(5)
	plant := &motorModel{lag: 1 - math.Exp(-testDt/testTau), n: 4}
	for k := 0; k < 5000; k++ {
		cmd := physics.Rotors{
			0.4 + 0.3*math.Sin(float64(k)*0.01),
			0.4 + 0.3*math.Cos(float64(k)*0.013),
			0.5, 0.6,
		}
		if m.Observe(cmd, plant.state) {
			t.Fatalf("healthy rotor condemned at cycle %d", k)
		}
		plant.step(cmd)
	}
	if m.AnyCondemned() {
		t.Error("healthy run ended with condemned rotors")
	}
}

// TestFaultedRotorCondemnedAfterWindow checks a float fault (rotor output
// pinned to 0 while commands stay high) trips after exactly window
// consecutive anomalous cycles — latched and reported once.
func TestFaultedRotorCondemnedAfterWindow(t *testing.T) {
	const window = 5
	m := testMonitor(window)
	plant := &motorModel{lag: 1 - math.Exp(-testDt/testTau), n: 4}
	cmd := physics.Rotors{0.7, 0.7, 0.7, 0.7}
	// Warm the model up to steady state.
	for k := 0; k < 2000; k++ {
		m.Observe(cmd, plant.state)
		plant.step(cmd)
	}
	if m.AnyCondemned() {
		t.Fatal("condemned during warm-up")
	}
	// Rotor 2 floats: its measured state decays toward zero while the
	// others keep tracking.
	condemnedAt := -1
	for k := 0; k < 200; k++ {
		meas := plant.state
		meas[2] = 0
		if m.Observe(cmd, meas) {
			condemnedAt = k
			break
		}
		plant.step(cmd)
	}
	if condemnedAt < 0 {
		t.Fatal("floating rotor never condemned")
	}
	if !m.Condemned(2) || m.CondemnedCount() != 1 {
		t.Errorf("condemned set wrong: rotor2=%v count=%d", m.Condemned(2), m.CondemnedCount())
	}
	// Residual exceeds tol immediately (0.7 vs 0), so the strike counter
	// trips on the window'th anomalous observation.
	if condemnedAt != window-1 {
		t.Errorf("condemned at cycle %d, want %d", condemnedAt, window-1)
	}
	// Latched: further observations never re-report.
	for k := 0; k < 50; k++ {
		meas := plant.state
		meas[2] = 0
		if m.Observe(cmd, meas) {
			t.Fatal("latched condemnation re-reported")
		}
	}
}

// TestTransientGlitchResets checks a sub-window burst of anomalies is
// forgiven once tracking resumes.
func TestTransientGlitchResets(t *testing.T) {
	m := testMonitor(5)
	plant := &motorModel{lag: 1 - math.Exp(-testDt/testTau), n: 4}
	cmd := physics.Rotors{0.6, 0.6, 0.6, 0.6}
	for k := 0; k < 1000; k++ {
		m.Observe(cmd, plant.state)
		plant.step(cmd)
	}
	for k := 0; k < 3; k++ { // 3 < window=5
		meas := plant.state
		meas[0] = 0
		if m.Observe(cmd, meas) {
			t.Fatal("condemned inside a sub-window glitch")
		}
		plant.step(cmd)
	}
	for k := 0; k < 1000; k++ {
		if m.Observe(cmd, plant.state) {
			t.Fatal("condemned after glitch cleared")
		}
		plant.step(cmd)
	}
	if m.AnyCondemned() {
		t.Error("glitch left a condemned rotor")
	}
}

// TestWeights checks the condemned set maps to allocation weights with
// opposite-rotor derating.
func TestWeights(t *testing.T) {
	m := NewRotorMonitor(Config{RotorFDIWindow: 1, RotorFDITol: 0.15}, 6, testTau, testDt)
	m.condemned[1] = true
	w := m.Weights(physics.HexaX, 0.6)
	if w[1] != 0 {
		t.Errorf("condemned weight %v, want 0", w[1])
	}
	opp := physics.HexaX.Opposite(1)
	if w[opp] != 0.6 {
		t.Errorf("opposite weight %v, want 0.6", w[opp])
	}
	for i := 0; i < 6; i++ {
		if i != 1 && i != opp && w[i] != 1 {
			t.Errorf("healthy weight[%d] = %v, want 1", i, w[i])
		}
	}
	// Derate 0 condemns the pair outright (the classic coplanar
	// strategy); derate 1 leaves the partner untouched.
	w = m.Weights(physics.HexaX, 0)
	if w[opp] != 0 {
		t.Errorf("derate-0 opposite weight %v, want 0", w[opp])
	}
	w = m.Weights(physics.HexaX, 1)
	if w[opp] != 1 {
		t.Errorf("derate-1 opposite weight %v, want 1", w[opp])
	}
}

// TestRotorMonitorSnapshotRoundTrip checks checkpoint/restore carries the
// full detection state: a restored monitor condemns at exactly the same
// cycle the original would have.
func TestRotorMonitorSnapshotRoundTrip(t *testing.T) {
	a := testMonitor(5)
	plant := &motorModel{lag: 1 - math.Exp(-testDt/testTau), n: 4}
	cmd := physics.Rotors{0.5, 0.5, 0.5, 0.5}
	for k := 0; k < 500; k++ {
		a.Observe(cmd, plant.state)
		plant.step(cmd)
	}
	// Two strikes in, snapshot, then let both finish the window.
	for k := 0; k < 2; k++ {
		meas := plant.state
		meas[3] = 0
		a.Observe(cmd, meas)
	}
	b := testMonitor(5)
	b.Restore(a.Snapshot())
	for k := 0; k < 10; k++ {
		meas := plant.state
		meas[3] = 0
		ra, rb := a.Observe(cmd, meas), b.Observe(cmd, meas)
		if ra != rb {
			t.Fatalf("cycle %d: original reported %v, restored %v", k, ra, rb)
		}
	}
	if !a.Condemned(3) || !b.Condemned(3) {
		t.Error("rotor 3 not condemned on both paths")
	}
}

// TestRotorFDIConfig checks the config gating and validation rules.
func TestRotorFDIConfig(t *testing.T) {
	if DefaultConfig().RotorFDIEnabled() {
		t.Error("rotor FDI enabled by default — this would change every stored fingerprint")
	}
	rd := DefaultConfig().RotorDefaults()
	if !rd.RotorFDIEnabled() || !rd.ReconfigAllocation {
		t.Errorf("RotorDefaults not armed: %+v", rd)
	}
	if err := rd.Validate(); err != nil {
		t.Errorf("RotorDefaults invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.ReconfigAllocation = true // without FDI nothing can trigger it
	if err := bad.Validate(); err == nil {
		t.Error("ReconfigAllocation without rotor FDI accepted")
	}
	bad = rd
	bad.RotorFDITol = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("tolerance >= 1 accepted")
	}
}
