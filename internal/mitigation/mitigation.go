// Package mitigation implements the software-based fault-tolerance
// mechanisms the paper's discussion section calls for ("software-based
// mitigation techniques in addition to hardware redundancies"): filters
// that sit on the IMU stream between the (possibly faulty) sensor and its
// consumers, plus a stuck-output detector that feeds the failsafe monitor.
//
// Each filter is deployable in a real flight stack: none requires ground
// truth, all operate sample-by-sample with bounded memory, and the whole
// pipeline adds nanoseconds per sample (see BenchmarkMicroMitigation).
package mitigation

import (
	"fmt"

	"uavres/internal/mathx"
	"uavres/internal/sensors"
)

// Config selects and parameterizes the pipeline stages. The zero value
// disables everything (no mitigation — the paper's baseline).
type Config struct {
	// GyroClampRad enables the gyro plausibility clamp when positive:
	// the airframe cannot physically rotate faster than this (rad/s),
	// so readings beyond it are saturated. A small quad's achievable
	// rate is ~8-12 rad/s; the sensor range is 35 rad/s.
	GyroClampRad float64
	// MedianWindow enables the per-axis spike-median filter when >= 3
	// (odd; even values are rounded up). It removes isolated outliers
	// at the cost of half-a-window delay.
	MedianWindow int
	// StuckWindow enables the stuck-output guard when >= 2: that many
	// identical consecutive samples on any sensor raise StuckDetected.
	// Real MEMS output is noisy, so exact repetition is a hardware or
	// injection signature (the paper's Freeze and Zeros classes).
	StuckWindow int
	// LowPassHz enables a first-order low-pass on both sensors when
	// positive — a noise-suppression stage (median filters remove spikes
	// but pass white noise). DISABLED by default: campaign evaluation
	// showed it can MASK a noisy-gyro fault from the failsafe's rate
	// threshold without restoring controllability, converting controlled
	// terminations into crashes (see BenchmarkMitigation and DESIGN.md
	// section 8). Enable only together with detection running on the raw
	// stream.
	LowPassHz float64
	// SampleRateHz is the IMU stream rate the low-pass is designed for
	// (default 250 when zero).
	SampleRateHz float64

	// The rotor-FDI fields below are opt-in (spec override rotor_reconfig)
	// and carry `json:",omitempty"`: Config is part of the spec
	// fingerprint, so their zero values must mean "disabled, legacy
	// behavior" or every stored result key changes.

	// RotorFDIWindow enables the per-rotor FDI monitor when >= 1: that
	// many consecutive control cycles with the measured rotor state
	// outside RotorFDITol of the expected motor-lag model condemn the
	// rotor.
	RotorFDIWindow int `json:",omitempty"`
	// RotorFDITol is the normalized rotor-state residual tolerance
	// (default DefaultRotorFDITol when zero). The healthy residual is
	// ~1e-16 — the monitor replays the body's exact lag integration — so
	// the tolerance only has to stay below the fault signatures.
	RotorFDITol float64 `json:",omitempty"`
	// ReconfigAllocation, with the monitor enabled, re-solves the control
	// allocation (condemned-rotor zeroing + damped pseudo-inverse) when a
	// rotor is condemned.
	ReconfigAllocation bool `json:",omitempty"`
	// OppositeDerate is the allocation weight assigned to a condemned
	// rotor's diametric partner, in [0, 1]. The zero value shuts the
	// partner down entirely — full pair condemnation, the classic
	// coplanar-multirotor strategy: removing an opposite pair restores
	// the zero-sum column symmetry the allocation needs for balanced
	// bidirectional torque authority (on a one-out hexa the minimum-norm
	// solve parks the partner at zero thrust anyway, so condemning it
	// costs nothing and removes a rotor the solver can only command
	// negatively). Set to 1 to leave the partner untouched.
	OppositeDerate float64 `json:",omitempty"`
}

// Rotor-FDI defaults installed by the spec-level rotor_reconfig override.
const (
	// DefaultRotorFDIWindow condemns after 5 consecutive anomalous
	// control cycles (20 ms at 250 Hz).
	DefaultRotorFDIWindow = 5
	// DefaultRotorFDITol is the normalized rotor-state residual that
	// counts as anomalous.
	DefaultRotorFDITol = 0.15
)

// RotorFDIEnabled reports whether the per-rotor FDI monitor is active.
func (c Config) RotorFDIEnabled() bool { return c.RotorFDIWindow >= 1 }

// RotorDefaults returns c with the rotor-FDI stack enabled at its default
// tuning (what the spec-level rotor_reconfig override installs).
func (c Config) RotorDefaults() Config {
	c.RotorFDIWindow = DefaultRotorFDIWindow
	c.RotorFDITol = DefaultRotorFDITol
	c.ReconfigAllocation = true
	return c
}

// DefaultConfig returns the evaluated mitigation stack.
func DefaultConfig() Config {
	return Config{
		GyroClampRad: 10,
		MedianWindow: 5,
		StuckWindow:  25, // 100 ms at 250 Hz
	}
}

// Enabled reports whether any stage is active.
func (c Config) Enabled() bool {
	return c.GyroClampRad > 0 || c.MedianWindow >= 3 || c.StuckWindow >= 2 || c.LowPassHz > 0
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.GyroClampRad < 0 {
		return fmt.Errorf("mitigation: negative gyro clamp %v", c.GyroClampRad)
	}
	if c.MedianWindow < 0 || c.MedianWindow > 63 {
		return fmt.Errorf("mitigation: median window %d outside [0, 63]", c.MedianWindow)
	}
	if c.StuckWindow < 0 || c.StuckWindow > 10000 {
		return fmt.Errorf("mitigation: stuck window %d outside [0, 10000]", c.StuckWindow)
	}
	if c.LowPassHz < 0 {
		return fmt.Errorf("mitigation: negative low-pass cutoff %v", c.LowPassHz)
	}
	if c.SampleRateHz < 0 {
		return fmt.Errorf("mitigation: negative sample rate %v", c.SampleRateHz)
	}
	if c.RotorFDIWindow < 0 || c.RotorFDIWindow > 10000 {
		return fmt.Errorf("mitigation: rotor FDI window %d outside [0, 10000]", c.RotorFDIWindow)
	}
	if c.RotorFDITol < 0 || c.RotorFDITol >= 1 {
		return fmt.Errorf("mitigation: rotor FDI tolerance %v outside [0, 1)", c.RotorFDITol)
	}
	if c.ReconfigAllocation && !c.RotorFDIEnabled() {
		return fmt.Errorf("mitigation: reconfig allocation requires the rotor FDI monitor (RotorFDIWindow >= 1)")
	}
	if c.OppositeDerate < 0 || c.OppositeDerate > 1 {
		return fmt.Errorf("mitigation: opposite derate %v outside [0, 1]", c.OppositeDerate)
	}
	return nil
}

// Pipeline applies the configured stages to an IMU stream. Not safe for
// concurrent use; each vehicle owns one.
type Pipeline struct {
	cfg Config

	medAccel [3]*medianFilter
	medGyro  [3]*medianFilter

	lpAccel *mathx.LowPass3
	lpGyro  *mathx.LowPass3

	stuckAccel stuckDetector
	stuckGyro  stuckDetector
}

// NewPipeline builds a pipeline for the configuration.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{cfg: cfg}
	if w := cfg.MedianWindow; w >= 3 {
		if w%2 == 0 {
			w++
		}
		for i := 0; i < 3; i++ {
			p.medAccel[i] = newMedianFilter(w)
			p.medGyro[i] = newMedianFilter(w)
		}
	}
	if cfg.StuckWindow >= 2 {
		p.stuckAccel.window = cfg.StuckWindow
		p.stuckGyro.window = cfg.StuckWindow
	}
	if cfg.LowPassHz > 0 {
		rate := cfg.SampleRateHz
		if rate <= 0 {
			rate = 250
		}
		p.lpAccel = mathx.NewLowPass3(cfg.LowPassHz, 1/rate)
		p.lpGyro = mathx.NewLowPass3(cfg.LowPassHz, 1/rate)
	}
	return p, nil
}

// Apply runs one sample through the pipeline, returning the filtered
// sample and whether a stuck output was detected on this sample's
// evidence.
func (p *Pipeline) Apply(s sensors.IMUSample) (sensors.IMUSample, bool) {
	stuck := false
	if p.cfg.StuckWindow >= 2 {
		// Detection runs on the RAW stream, before filtering can mask
		// the repetition signature.
		stuck = p.stuckAccel.observe(s.Accel) || p.stuckGyro.observe(s.Gyro)
	}
	if p.cfg.GyroClampRad > 0 {
		s.Gyro = s.Gyro.Clamp(p.cfg.GyroClampRad)
	}
	if p.medAccel[0] != nil {
		s.Accel = mathx.Vec3{
			X: p.medAccel[0].push(s.Accel.X),
			Y: p.medAccel[1].push(s.Accel.Y),
			Z: p.medAccel[2].push(s.Accel.Z),
		}
		s.Gyro = mathx.Vec3{
			X: p.medGyro[0].push(s.Gyro.X),
			Y: p.medGyro[1].push(s.Gyro.Y),
			Z: p.medGyro[2].push(s.Gyro.Z),
		}
	}
	if p.lpAccel != nil {
		s.Accel = p.lpAccel.Update(s.Accel)
		s.Gyro = p.lpGyro.Update(s.Gyro)
	}
	return s, stuck
}

// StuckDetected reports whether the guard has latched a stuck sensor.
func (p *Pipeline) StuckDetected() bool {
	return p.stuckAccel.latched || p.stuckGyro.latched
}

// PipelineSnapshot captures the pipeline's complete dynamic state: the
// median windows, low-pass states, and stuck-detector latches
// (checkpointing). Buffers are deep-copied, so one snapshot can seed many
// forked runs concurrently.
type PipelineSnapshot struct {
	medAccel   [3]medianSnapshot
	medGyro    [3]medianSnapshot
	lpAccel    mathx.LowPass3State
	lpGyro     mathx.LowPass3State
	stuckAccel stuckDetector
	stuckGyro  stuckDetector
}

type medianSnapshot struct {
	buf    []float64
	idx    int
	filled int
}

func (m *medianFilter) snapshot() medianSnapshot {
	if m == nil {
		return medianSnapshot{}
	}
	s := medianSnapshot{idx: m.idx, filled: m.filled}
	s.buf = make([]float64, len(m.buf))
	copy(s.buf, m.buf)
	return s
}

func (m *medianFilter) restore(s medianSnapshot) error {
	if (m == nil) != (s.buf == nil) {
		return fmt.Errorf("mitigation: median filter snapshot presence mismatch")
	}
	if m == nil {
		return nil
	}
	if len(s.buf) != len(m.buf) {
		return fmt.Errorf("mitigation: median window %d in snapshot, %d in pipeline", len(s.buf), len(m.buf))
	}
	copy(m.buf, s.buf)
	m.idx = s.idx
	m.filled = s.filled
	return nil
}

// Snapshot captures the pipeline's dynamic state.
func (p *Pipeline) Snapshot() PipelineSnapshot {
	s := PipelineSnapshot{stuckAccel: p.stuckAccel, stuckGyro: p.stuckGyro}
	for i := 0; i < 3; i++ {
		s.medAccel[i] = p.medAccel[i].snapshot()
		s.medGyro[i] = p.medGyro[i].snapshot()
	}
	if p.lpAccel != nil {
		s.lpAccel = p.lpAccel.Snapshot()
		s.lpGyro = p.lpGyro.Snapshot()
	}
	return s
}

// Restore reinstates a state captured with Snapshot. The pipeline must be
// configured identically to the snapshot source.
func (p *Pipeline) Restore(s PipelineSnapshot) error {
	for i := 0; i < 3; i++ {
		if err := p.medAccel[i].restore(s.medAccel[i]); err != nil {
			return err
		}
		if err := p.medGyro[i].restore(s.medGyro[i]); err != nil {
			return err
		}
	}
	if p.lpAccel != nil {
		p.lpAccel.Restore(s.lpAccel)
		p.lpGyro.Restore(s.lpGyro)
	}
	p.stuckAccel = s.stuckAccel
	p.stuckGyro = s.stuckGyro
	return nil
}

// medianFilter is a fixed-window per-axis running median.
type medianFilter struct {
	buf []float64
	//lint:allow snapshotcomplete scratch slice rebuilt from buf on every push; carries no cross-step state
	sorted []float64
	idx    int
	filled int
}

func newMedianFilter(window int) *medianFilter {
	return &medianFilter{
		buf:    make([]float64, window),
		sorted: make([]float64, 0, window),
	}
}

// push adds a sample and returns the current median. Until the window
// fills, the median of the seen samples is returned.
func (m *medianFilter) push(x float64) float64 {
	m.buf[m.idx] = x
	m.idx = (m.idx + 1) % len(m.buf)
	if m.filled < len(m.buf) {
		m.filled++
	}
	// Insertion into a small sorted scratch slice: windows are <= 63, so
	// this beats heap bookkeeping and allocates nothing after warm-up.
	m.sorted = m.sorted[:0]
	for i := 0; i < m.filled; i++ {
		v := m.buf[i]
		pos := 0
		for pos < len(m.sorted) && m.sorted[pos] < v {
			pos++
		}
		m.sorted = append(m.sorted, 0)
		copy(m.sorted[pos+1:], m.sorted[pos:])
		m.sorted[pos] = v
	}
	return m.sorted[m.filled/2]
}

// stuckDetector counts exactly-repeated consecutive vectors.
type stuckDetector struct {
	window  int
	last    mathx.Vec3
	repeats int
	primed  bool
	latched bool
}

// observe feeds one vector; returns true when the repetition count
// crosses the window (and latches).
func (d *stuckDetector) observe(v mathx.Vec3) bool {
	if d.primed && v == d.last {
		d.repeats++
	} else {
		d.repeats = 0
	}
	d.last = v
	d.primed = true
	if d.repeats+1 >= d.window {
		d.latched = true
		return true
	}
	return false
}
