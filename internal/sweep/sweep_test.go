package sweep

import (
	"context"
	"strings"
	"testing"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/obs"
)

// hop keeps sweep tests fast.
func hop() []mission.Mission {
	return []mission.Mission{{
		ID: 1, Name: "hop", CruiseSpeedMS: 3.3, AltitudeM: 15,
		Drone:     mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 0, Y: 120, Z: -15}},
	}}
}

func fastCfg() Config {
	return Config{
		Missions:  hop(),
		Primitive: faultinject.MinValue,
		Target:    faultinject.TargetGyro,
		Start:     20 * time.Second,
		Duration:  5 * time.Second,
		Seed:      3,
		Workers:   1,
	}
}

func TestStartTimesSweep(t *testing.T) {
	// A fault before landing vs. one far beyond the flight's end: the
	// late window never activates, so the mission completes.
	points := StartTimes(context.Background(), fastCfg(), []float64{20, 500})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	early, late := points[0], points[1]
	if early.N != 1 || late.N != 1 {
		t.Fatalf("runs: %d, %d", early.N, late.N)
	}
	if early.CompletedPct != 0 {
		t.Errorf("in-flight gyro-min completed %.0f%%", early.CompletedPct)
	}
	if late.CompletedPct != 100 {
		t.Errorf("never-activated fault completed %.0f%%, want 100", late.CompletedPct)
	}
}

func TestDurationsSweepMonotoneHarm(t *testing.T) {
	cfg := fastCfg()
	cfg.Primitive = faultinject.Noise
	cfg.Target = faultinject.TargetAccel
	points := Durations(context.Background(), cfg, []float64{0.5, 5})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Acc noise: both survivable on this short hop, but the longer
	// window must not show a higher completion than the shorter one.
	if points[1].CompletedPct > points[0].CompletedPct {
		t.Errorf("longer fault completed more: %.0f%% vs %.0f%%",
			points[1].CompletedPct, points[0].CompletedPct)
	}
}

func TestGyroThresholdsSweep(t *testing.T) {
	cfg := fastCfg()
	cfg.Primitive = faultinject.Noise
	cfg.Target = faultinject.TargetGyro
	points := GyroThresholds(context.Background(), cfg, []float64{30, 100000})
	if points[0].FailsafePct == 0 {
		t.Errorf("30 deg/s threshold produced no failsafes: %+v", points[0])
	}
	// An absurdly high threshold disables the gyro-rate path entirely;
	// whatever happens, it is not a gyro-rate failsafe-dominated row
	// identical to the tight-threshold one.
	if points[1].FailsafePct == points[0].FailsafePct && points[1].CompletedPct == points[0].CompletedPct {
		t.Errorf("threshold had no effect: %+v vs %+v", points[0], points[1])
	}
}

func TestRiskFactorsSweep(t *testing.T) {
	cfg := fastCfg()
	cfg.Primitive = faultinject.Zeros
	cfg.Target = faultinject.TargetAccel
	points := RiskFactors(context.Background(), cfg, []float64{1, 4})
	// A larger outer bubble can only reduce (or keep) outer violations;
	// here we check the sweep executes and aggregates.
	for i, p := range points {
		if p.N != 1 {
			t.Errorf("point %d runs = %d", i, p.N)
		}
	}
}

func TestRenderTable(t *testing.T) {
	out := Render("demo", "sec", []Point{{Value: 2, N: 10, CompletedPct: 20, CrashPct: 50, FailsafePct: 30, MeanInner: 9.9, MeanDurationSec: 180}})
	for _, want := range []string{"sweep: demo", "completed%", "20.0%", "180.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	points := StartTimes(ctx, fastCfg(), []float64{20})
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].N != 0 {
		t.Errorf("cancelled sweep ran %d missions", points[0].N)
	}
}

// TestSweepCancellationMidFlight: cancelling the context between sweep
// values stops the remaining grid — the execution engine marks the
// unscheduled cases cancelled, and the sweep reports empty rows instead
// of flying them.
func TestSweepCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := fastCfg()
	var fired int
	cfg.OnPoint = func(Point) {
		fired++
		if fired == 1 {
			cancel() // first value done: stop the sweep mid-flight
		}
	}
	points := StartTimes(ctx, cfg, []float64{20, 500, 500})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].N != 1 {
		t.Errorf("first value ran %d missions, want 1", points[0].N)
	}
	for i, p := range points[1:] {
		if p.N != 0 {
			t.Errorf("value %d ran %d missions after cancellation", i+1, p.N)
		}
	}
	if fired != 3 {
		t.Errorf("OnPoint fired %d times, want 3", fired)
	}
}

// TestSweepSharedObsMetrics: sweeps ride the campaign runner, so the
// standard campaign metrics accumulate across every sweep value.
func TestSweepSharedObsMetrics(t *testing.T) {
	cfg := fastCfg()
	cfg.Obs = obs.NewRegistry()
	points := StartTimes(context.Background(), cfg, []float64{20, 500})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if got := cfg.Obs.Counter("campaign_cases_total").Value(); got != 2 {
		t.Errorf("campaign_cases_total = %d, want 2 (one case per value)", got)
	}
}
