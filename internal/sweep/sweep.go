// Package sweep runs one-dimensional parameter sweeps around the paper's
// fixed experiment design: injection start time (the paper pins T+90 s),
// injection duration (beyond the paper's four points), the failsafe gyro
// threshold, and the outer-bubble risk factor R. Each sweep holds
// everything else at the campaign defaults and reports one row per value.
//
// A sweep is a thin spec generator: every swept value becomes one
// declarative spec.CampaignSpec (the injection grid or a config
// override), compiled to cases and executed by core.Runner — the single
// execution engine. The package owns no goroutines of its own, so sweeps
// inherit the runner's bounded worker pool, context cancellation,
// checkpoint-and-fork, observability metrics, and streaming for free.
package sweep

import (
	"context"
	"fmt"
	"strings"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/obs"
	"uavres/internal/sim"
	"uavres/internal/spec"
)

// Point is one sweep row: the swept value and the aggregated outcome over
// the missions flown at that value.
type Point struct {
	// Value is the swept parameter's value (seconds, deg/s, or unitless).
	Value float64 `json:"value"`
	// N is the number of runs aggregated.
	N int `json:"n"`
	// CompletedPct, CrashPct, FailsafePct partition the runs.
	CompletedPct float64 `json:"completed_pct"`
	CrashPct     float64 `json:"crash_pct"`
	FailsafePct  float64 `json:"failsafe_pct"`
	// MeanInner is the mean inner-bubble violation count.
	MeanInner float64 `json:"mean_inner"`
	// MeanDurationSec is the mean flight duration.
	MeanDurationSec float64 `json:"mean_duration_sec"`
}

// Config selects the experiment held constant across the sweep.
type Config struct {
	// Base is the simulation configuration (zero value: defaults).
	Base sim.Config
	// Missions are flown at every sweep value (nil: the Valencia set).
	Missions []mission.Mission
	// Primitive and Target define the injected fault.
	Primitive faultinject.Primitive
	Target    faultinject.Target
	// Start and Duration define the injection window (overridden by the
	// respective sweeps).
	Start    time.Duration
	Duration time.Duration
	// Seed is the base seed.
	Seed int64
	// Workers bounds parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Obs, if non-nil, receives the runner's campaign metrics
	// (case/outcome counters, timing histograms) accumulated across all
	// sweep values.
	Obs *obs.Registry
	// OnPoint, if non-nil, is called after each sweep value finishes —
	// a streaming hook for long grids (and the place a caller can cancel
	// the shared context mid-sweep).
	OnPoint func(Point)
}

func (c Config) defaults() Config {
	//lint:allow floatcmp zero-value detection of an unset config, never a computed value
	if c.Base.PhysicsDt == 0 {
		c.Base = sim.DefaultConfig()
	}
	if c.Missions == nil {
		c.Missions = mission.Valencia()
	}
	if c.Primitive == 0 {
		c.Primitive = faultinject.Zeros
	}
	if c.Target == 0 {
		c.Target = faultinject.TargetGyro
	}
	if c.Start == 0 {
		c.Start = 90 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// legacySeeds is the sweep package's historical seed derivation, kept
// bit-compatible across the spec refactor: env = seed + missionID*1009,
// injection = seed + missionID*31 + 7.
func legacySeeds() spec.SeedPolicy {
	return spec.SeedPolicy{Kind: "affine", EnvStride: 1009, InjStride: 31, InjOffset: 7}
}

// baseSpec is the fixed part of every sweep cell: one fault on the
// configured window, no gold runs, legacy seeds.
func (c Config) baseSpec() spec.CampaignSpec {
	gold := false
	return spec.CampaignSpec{
		Version: spec.Version,
		Seed:    c.Seed,
		Gold:    &gold,
		Matrix: spec.Matrix{
			Targets:      []string{c.Target.String()},
			Primitives:   []string{c.Primitive.String()},
			DurationsSec: []float64{c.Duration.Seconds()},
			StartsSec:    []float64{c.Start.Seconds()},
		},
		Seeds: legacySeeds(),
	}
}

// run compiles one sweep cell's spec and executes it on the shared
// engine, aggregating a Point.
func (c Config) run(ctx context.Context, value float64, s spec.CampaignSpec) (Point, error) {
	cases, err := s.Compile(c.Missions)
	if err != nil {
		return Point{}, err
	}
	cfg := c.Base
	s.Overrides.Apply(&cfg)

	runner := core.NewRunner()
	runner.Config = cfg
	runner.Workers = c.Workers
	runner.Missions = c.Missions
	runner.Obs = c.Obs
	results := runner.RunAll(ctx, cases)
	return aggregate(value, results), nil
}

// aggregate folds case results into one sweep row. Cases that errored or
// were cancelled carry CaseResult.Err and are excluded, matching the
// pre-refactor behaviour of skipping unfinished runs.
func aggregate(value float64, results []core.CaseResult) Point {
	p := Point{Value: value}
	for _, r := range results {
		if r.Err != "" {
			continue
		}
		p.N++
		switch r.Result.Outcome {
		case sim.OutcomeCompleted:
			p.CompletedPct++
		case sim.OutcomeCrash:
			p.CrashPct++
		default:
			p.FailsafePct++
		}
		p.MeanInner += float64(r.Result.InnerViolations)
		p.MeanDurationSec += r.Result.FlightDurationSec
	}
	if p.N > 0 {
		n := float64(p.N)
		p.CompletedPct *= 100 / n
		p.CrashPct *= 100 / n
		p.FailsafePct *= 100 / n
		p.MeanInner /= n
		p.MeanDurationSec /= n
	}
	return p
}

// sweep executes one spec per value sequentially (the engine
// parallelizes within a value over its worker pool).
func (c Config) sweep(ctx context.Context, values []float64, cell func(Config, float64) spec.CampaignSpec) []Point {
	c = c.defaults()
	out := make([]Point, 0, len(values))
	for _, v := range values {
		p, err := c.run(ctx, v, cell(c, v))
		if err != nil {
			// Spec generation is pure config plumbing; an error here is a
			// programming error surfaced as an empty row rather than a
			// panic mid-sweep.
			p = Point{Value: v}
		}
		out = append(out, p)
		if c.OnPoint != nil {
			c.OnPoint(p)
		}
	}
	return out
}

// StartTimes sweeps the injection start — the paper pins it at 90 s; the
// sweep reveals phase sensitivity (takeoff vs. cruise vs. turn vs.
// landing approach).
func StartTimes(ctx context.Context, c Config, startsSec []float64) []Point {
	return c.sweep(ctx, startsSec, func(c Config, v float64) spec.CampaignSpec {
		s := c.baseSpec()
		s.Name = fmt.Sprintf("sweep-start-%gs", v)
		s.Matrix.StartsSec = []float64{v}
		return s
	})
}

// Durations sweeps the injection duration on a finer grid than the
// paper's {2, 5, 10, 30}.
func Durations(ctx context.Context, c Config, durationsSec []float64) []Point {
	return c.sweep(ctx, durationsSec, func(c Config, v float64) spec.CampaignSpec {
		s := c.baseSpec()
		s.Name = fmt.Sprintf("sweep-duration-%gs", v)
		s.Matrix.DurationsSec = []float64{v}
		return s
	})
}

// GyroThresholds sweeps the failsafe gyro-rate threshold (paper default
// 60 deg/s, "configurable in the flight controller settings").
func GyroThresholds(ctx context.Context, c Config, thresholdsDegS []float64) []Point {
	return c.sweep(ctx, thresholdsDegS, func(c Config, v float64) spec.CampaignSpec {
		s := c.baseSpec()
		s.Name = fmt.Sprintf("sweep-threshold-%gdegs", v)
		s.Overrides.GyroThresholdDegS = &v
		return s
	})
}

// RiskFactors sweeps the outer-bubble risk factor R (paper uses 1).
func RiskFactors(ctx context.Context, c Config, rs []float64) []Point {
	return c.sweep(ctx, rs, func(c Config, v float64) spec.CampaignSpec {
		s := c.baseSpec()
		s.Name = fmt.Sprintf("sweep-risk-%g", v)
		s.Overrides.RiskR = &v
		return s
	})
}

// Render prints sweep rows as an aligned table.
func Render(name, unit string, points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %s\n", name)
	fmt.Fprintf(&b, "%12s %6s %12s %10s %12s %10s %14s\n",
		unit, "runs", "completed%", "crash%", "failsafe%", "inner(#)", "duration(s)")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.2f %6d %11.1f%% %9.1f%% %11.1f%% %10.2f %14.1f\n",
			p.Value, p.N, p.CompletedPct, p.CrashPct, p.FailsafePct, p.MeanInner, p.MeanDurationSec)
	}
	return b.String()
}
