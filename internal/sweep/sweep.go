// Package sweep runs one-dimensional parameter sweeps around the paper's
// fixed experiment design: injection start time (the paper pins T+90 s),
// injection duration (beyond the paper's four points), the failsafe gyro
// threshold, and the outer-bubble risk factor R. Each sweep holds
// everything else at the campaign defaults and reports one row per value.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/sim"
)

// Point is one sweep row: the swept value and the aggregated outcome over
// the missions flown at that value.
type Point struct {
	// Value is the swept parameter's value (seconds, deg/s, or unitless).
	Value float64 `json:"value"`
	// N is the number of runs aggregated.
	N int `json:"n"`
	// CompletedPct, CrashPct, FailsafePct partition the runs.
	CompletedPct float64 `json:"completed_pct"`
	CrashPct     float64 `json:"crash_pct"`
	FailsafePct  float64 `json:"failsafe_pct"`
	// MeanInner is the mean inner-bubble violation count.
	MeanInner float64 `json:"mean_inner"`
	// MeanDurationSec is the mean flight duration.
	MeanDurationSec float64 `json:"mean_duration_sec"`
}

// Config selects the experiment held constant across the sweep.
type Config struct {
	// Base is the simulation configuration (zero value: defaults).
	Base sim.Config
	// Missions are flown at every sweep value (nil: the Valencia set).
	Missions []mission.Mission
	// Primitive and Target define the injected fault.
	Primitive faultinject.Primitive
	Target    faultinject.Target
	// Start and Duration define the injection window (overridden by the
	// respective sweeps).
	Start    time.Duration
	Duration time.Duration
	// Seed is the base seed.
	Seed int64
	// Workers bounds parallelism (<= 0: GOMAXPROCS).
	Workers int
}

func (c Config) defaults() Config {
	//lint:allow floatcmp zero-value detection of an unset config, never a computed value
	if c.Base.PhysicsDt == 0 {
		c.Base = sim.DefaultConfig()
	}
	if c.Missions == nil {
		c.Missions = mission.Valencia()
	}
	if c.Primitive == 0 {
		c.Primitive = faultinject.Zeros
	}
	if c.Target == 0 {
		c.Target = faultinject.TargetGyro
	}
	if c.Start == 0 {
		c.Start = 90 * time.Second
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// run executes one (mission, config-mutation) grid and aggregates a Point.
func (c Config) run(ctx context.Context, value float64, mutate func(*sim.Config, *faultinject.Injection)) Point {
	type job struct {
		m   mission.Mission
		idx int
	}
	jobs := make(chan job)
	results := make([]sim.Result, len(c.Missions))
	var wg sync.WaitGroup
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := c.Base
				cfg.Seed = c.Seed + int64(j.m.ID)*1009
				inj := &faultinject.Injection{
					Primitive: c.Primitive, Target: c.Target,
					Start: c.Start, Duration: c.Duration,
					Seed: c.Seed + int64(j.m.ID)*31 + 7,
				}
				mutate(&cfg, inj)
				res, err := sim.Run(cfg, j.m, inj, nil)
				if err == nil {
					results[j.idx] = res
				}
			}
		}()
	}
	for i, m := range c.Missions {
		select {
		case <-ctx.Done():
		case jobs <- job{m: m, idx: i}:
		}
	}
	close(jobs)
	wg.Wait()

	p := Point{Value: value}
	for _, r := range results {
		if r.Outcome == 0 {
			continue // cancelled or errored
		}
		p.N++
		switch r.Outcome {
		case sim.OutcomeCompleted:
			p.CompletedPct++
		case sim.OutcomeCrash:
			p.CrashPct++
		default:
			p.FailsafePct++
		}
		p.MeanInner += float64(r.InnerViolations)
		p.MeanDurationSec += r.FlightDurationSec
	}
	if p.N > 0 {
		n := float64(p.N)
		p.CompletedPct *= 100 / n
		p.CrashPct *= 100 / n
		p.FailsafePct *= 100 / n
		p.MeanInner /= n
		p.MeanDurationSec /= n
	}
	return p
}

// StartTimes sweeps the injection start — the paper pins it at 90 s; the
// sweep reveals phase sensitivity (takeoff vs. cruise vs. turn vs.
// landing approach).
func StartTimes(ctx context.Context, c Config, startsSec []float64) []Point {
	c = c.defaults()
	out := make([]Point, 0, len(startsSec))
	for _, s := range startsSec {
		start := s
		out = append(out, c.run(ctx, start, func(_ *sim.Config, inj *faultinject.Injection) {
			inj.Start = time.Duration(start * float64(time.Second))
		}))
	}
	return out
}

// Durations sweeps the injection duration on a finer grid than the
// paper's {2, 5, 10, 30}.
func Durations(ctx context.Context, c Config, durationsSec []float64) []Point {
	c = c.defaults()
	out := make([]Point, 0, len(durationsSec))
	for _, d := range durationsSec {
		dur := d
		out = append(out, c.run(ctx, dur, func(_ *sim.Config, inj *faultinject.Injection) {
			inj.Duration = time.Duration(dur * float64(time.Second))
		}))
	}
	return out
}

// GyroThresholds sweeps the failsafe gyro-rate threshold (paper default
// 60 deg/s, "configurable in the flight controller settings").
func GyroThresholds(ctx context.Context, c Config, thresholdsDegS []float64) []Point {
	c = c.defaults()
	out := make([]Point, 0, len(thresholdsDegS))
	for _, th := range thresholdsDegS {
		deg := th
		out = append(out, c.run(ctx, deg, func(cfg *sim.Config, _ *faultinject.Injection) {
			cfg.Failsafe.GyroRateThreshold = mathx.Deg2Rad(deg)
		}))
	}
	return out
}

// RiskFactors sweeps the outer-bubble risk factor R (paper uses 1).
func RiskFactors(ctx context.Context, c Config, rs []float64) []Point {
	c = c.defaults()
	out := make([]Point, 0, len(rs))
	for _, r := range rs {
		rv := r
		out = append(out, c.run(ctx, rv, func(cfg *sim.Config, _ *faultinject.Injection) {
			cfg.RiskR = rv
		}))
	}
	return out
}

// Render prints sweep rows as an aligned table.
func Render(name, unit string, points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %s\n", name)
	fmt.Fprintf(&b, "%12s %6s %12s %10s %12s %10s %14s\n",
		unit, "runs", "completed%", "crash%", "failsafe%", "inner(#)", "duration(s)")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.2f %6d %11.1f%% %9.1f%% %11.1f%% %10.2f %14.1f\n",
			p.Value, p.N, p.CompletedPct, p.CrashPct, p.FailsafePct, p.MeanInner, p.MeanDurationSec)
	}
	return b.String()
}
