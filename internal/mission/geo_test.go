package mission

import (
	"math"
	"testing"

	"uavres/internal/geo"
)

func TestValenciaFrameAnchoredAtOrigin(t *testing.T) {
	f, err := ValenciaFrame()
	if err != nil {
		t.Fatal(err)
	}
	o := f.Origin()
	if o.LatDeg != ValenciaOrigin.LatDeg || o.LonDeg != ValenciaOrigin.LonDeg {
		t.Errorf("frame origin = %v", o)
	}
}

func TestGeoRouteRoundTrip(t *testing.T) {
	f, err := ValenciaFrame()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Valencia() {
		route := m.GeoRoute(f)
		if len(route) != len(m.Waypoints)+1 {
			t.Fatalf("mission %d route points = %d", m.ID, len(route))
		}
		// Rebuild the mission from the geographic route; geometry must
		// survive within millimeters.
		back, err := FromGeo(m.ID, m.Name, f, m.Drone, m.CruiseSpeedMS, m.AltitudeM, route)
		if err != nil {
			t.Fatalf("mission %d: %v", m.ID, err)
		}
		if back.Start.DistXY(m.Start) > 1e-3 {
			t.Errorf("mission %d start moved %v m", m.ID, back.Start.DistXY(m.Start))
		}
		for i := range m.Waypoints {
			if back.Waypoints[i].Dist(m.Waypoints[i]) > 1e-3 {
				t.Errorf("mission %d wp %d moved %v m", m.ID, i, back.Waypoints[i].Dist(m.Waypoints[i]))
			}
		}
		if math.Abs(back.PathLength()-m.PathLength()) > 0.01 {
			t.Errorf("mission %d path length %v -> %v", m.ID, m.PathLength(), back.PathLength())
		}
	}
}

func TestGeoRouteWithinValenciaArea(t *testing.T) {
	f, err := ValenciaFrame()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Valencia() {
		for _, p := range m.GeoRoute(f) {
			// Every point within ~0.05 degrees (~5 km) of the center.
			if math.Abs(p.LatDeg-ValenciaOrigin.LatDeg) > 0.05 ||
				math.Abs(p.LonDeg-ValenciaOrigin.LonDeg) > 0.05 {
				t.Errorf("mission %d point %v far from Valencia", m.ID, p)
			}
		}
	}
}

func TestFromGeoValidation(t *testing.T) {
	f, err := ValenciaFrame()
	if err != nil {
		t.Fatal(err)
	}
	drone := DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5}
	valid := []geo.LLA{
		{LatDeg: 39.47, LonDeg: -0.376},
		{LatDeg: 39.475, LonDeg: -0.376, AltM: 15},
	}
	if _, err := FromGeo(1, "ok", f, drone, 3, 15, valid); err != nil {
		t.Errorf("valid geo mission rejected: %v", err)
	}
	if _, err := FromGeo(1, "short", f, drone, 3, 15, valid[:1]); err == nil {
		t.Error("single-point route accepted")
	}
	bad := []geo.LLA{{LatDeg: 95}, {LatDeg: 39.47, LonDeg: -0.376}}
	if _, err := FromGeo(1, "bad", f, drone, 3, 15, bad); err == nil {
		t.Error("invalid latitude accepted")
	}
	if _, err := FromGeo(1, "alt", f, drone, 3, 99, valid); err == nil {
		t.Error("above-ceiling altitude accepted")
	}
}

func TestFromGeoFliesEndToEnd(t *testing.T) {
	// A geo-authored mission must be as flyable as a local one; checked
	// at the geometry level here (sim-level coverage lives in sim tests).
	f, err := ValenciaFrame()
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromGeo(42, "geo hop", f,
		DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		3.3, 15,
		[]geo.LLA{
			{LatDeg: 39.4699, LonDeg: -0.3763},
			{LatDeg: 39.4708, LonDeg: -0.3763, AltM: 15},
		})
	if err != nil {
		t.Fatal(err)
	}
	// ~0.0009 deg of latitude is ~100 m.
	if l := m.PathLength(); l < 90 || l > 110 {
		t.Errorf("geo hop path length = %v, want ~100 m", l)
	}
}
