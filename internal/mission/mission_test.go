package mission

import (
	"math"
	"testing"

	"uavres/internal/geo"
	"uavres/internal/mathx"
)

func TestValenciaScenarioShape(t *testing.T) {
	ms := Valencia()
	if len(ms) != 10 {
		t.Fatalf("missions = %d, want 10", len(ms))
	}
	// Paper's speed mix: 2x5, 1x10, 3x12, 3x14, 1x25 km/h.
	speedCount := map[int]int{}
	turns := 0
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("mission %d invalid: %v", m.ID, err)
		}
		speedCount[int(math.Round(m.CruiseSpeedMS*3.6))]++
		if m.HasTurns {
			turns++
			if len(m.Waypoints) < 2 {
				t.Errorf("mission %d claims turns but has %d waypoints", m.ID, len(m.Waypoints))
			}
		}
	}
	want := map[int]int{5: 2, 10: 1, 12: 3, 14: 3, 25: 1}
	for kmh, n := range want {
		if speedCount[kmh] != n {
			t.Errorf("drones at %d km/h = %d, want %d", kmh, speedCount[kmh], n)
		}
	}
	if turns != 4 {
		t.Errorf("missions with turns = %d, want 4", turns)
	}
}

func TestValenciaIDsSequential(t *testing.T) {
	for i, m := range Valencia() {
		if m.ID != i+1 {
			t.Errorf("mission at index %d has ID %d", i, m.ID)
		}
	}
}

func TestValenciaWithinArea(t *testing.T) {
	// 25 km^2 area: every coordinate within ±2.5 km of the origin.
	for _, m := range Valencia() {
		pts := append([]mathx.Vec3{m.Start}, m.Waypoints...)
		for _, p := range pts {
			if math.Abs(p.X) > 2500 || math.Abs(p.Y) > 2500 {
				t.Errorf("mission %d point %v outside 25 km^2 area", m.ID, p)
			}
		}
	}
}

func TestValenciaUnderCeiling(t *testing.T) {
	ceiling := geo.FeetToMeters(60)
	for _, m := range Valencia() {
		if m.AltitudeM > ceiling {
			t.Errorf("mission %d altitude %v above %v ceiling", m.ID, m.AltitudeM, ceiling)
		}
	}
}

func TestPlannedDurationsComparable(t *testing.T) {
	// Legs are sized so nominal durations cluster near the paper's 491 s
	// gold mean; the 90 s injection mark must fall mid-mission everywhere.
	var total float64
	for _, m := range Valencia() {
		d := m.PlannedDuration(1.5, 1.0)
		if d < 300 || d > 600 {
			t.Errorf("mission %d planned duration %v s outside [300, 600]", m.ID, d)
		}
		if d < 150 {
			t.Errorf("mission %d too short for the 90 s injection mark", m.ID)
		}
		total += d
	}
	mean := total / 10
	if mean < 420 || mean > 540 {
		t.Errorf("mean planned duration %v, want ~491 s", mean)
	}
}

func TestTurnTimesNearInjectionMark(t *testing.T) {
	// For the four turn missions the first waypoint should be reached
	// within the fault window of a 90 s injection (90-120 s), covering the
	// paper's "fault at turning point" placement.
	for _, m := range Valencia() {
		if !m.HasTurns {
			continue
		}
		takeoff := m.AltitudeM / 1.5
		first := mathx.V3(m.Start.X, m.Start.Y, -m.AltitudeM)
		legTime := first.Dist(m.Waypoints[0]) / m.CruiseSpeedMS
		turnAt := takeoff + legTime
		if turnAt < 85 || turnAt > 125 {
			t.Errorf("mission %d turn at %v s, want within the 90 s fault window", m.ID, turnAt)
		}
	}
}

func TestPathLength(t *testing.T) {
	m := Mission{
		ID: 99, CruiseSpeedMS: 2, AltitudeM: 10,
		Start: mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{
			{X: 30, Y: 0, Z: -10},
			{X: 30, Y: 40, Z: -10},
		},
	}
	if got := m.PathLength(); math.Abs(got-70) > 1e-9 {
		t.Errorf("PathLength = %v, want 70", got)
	}
}

func TestValidateRejections(t *testing.T) {
	base := Mission{
		ID: 1, CruiseSpeedMS: 2, AltitudeM: 15,
		Drone:     DroneSpec{MaxSpeedMS: 5},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 100, Z: -15}},
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base mission invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Mission)
	}{
		{"zero_speed", func(m *Mission) { m.CruiseSpeedMS = 0 }},
		{"no_waypoints", func(m *Mission) { m.Waypoints = nil }},
		{"above_ceiling", func(m *Mission) { m.AltitudeM = 30 }},
		{"zero_alt", func(m *Mission) { m.AltitudeM = 0 }},
		{"wp_alt_mismatch", func(m *Mission) { m.Waypoints = []mathx.Vec3{{X: 100, Z: -5}} }},
		{"cruise_above_top_speed", func(m *Mission) { m.CruiseSpeedMS = 6 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := base
			tt.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Error("invalid mission accepted")
			}
		})
	}
}

func TestCrossTrackDistance(t *testing.T) {
	m := Mission{
		ID: 1, CruiseSpeedMS: 2, AltitudeM: 10,
		Drone:     DroneSpec{MaxSpeedMS: 5},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 100, Y: 0, Z: -10}},
	}
	tests := []struct {
		name string
		p    mathx.Vec3
		want float64
	}{
		{"on_path", mathx.V3(50, 0, -10), 0},
		{"beside_path", mathx.V3(50, 7, -10), 7},
		{"above_path", mathx.V3(50, 0, -14), 4},
		{"on_takeoff_column", mathx.V3(0, 0, -5), 0},
		{"on_landing_column", mathx.V3(100, 0, -3), 0},
		{"beyond_end", mathx.V3(110, 0, -10), 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.CrossTrackDistance(tt.p); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("CrossTrackDistance(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestKmhToMs(t *testing.T) {
	if got := KmhToMs(36); math.Abs(got-10) > 1e-12 {
		t.Errorf("KmhToMs(36) = %v, want 10", got)
	}
}

func TestDroneClassesMonotone(t *testing.T) {
	// Faster classes are bigger and get larger safety margins.
	prev := droneClass(5)
	for _, kmh := range []float64{10, 12, 14, 25} {
		cur := droneClass(kmh)
		if cur.MaxSpeedMS <= prev.MaxSpeedMS {
			t.Errorf("class %v top speed %v not above previous %v", kmh, cur.MaxSpeedMS, prev.MaxSpeedMS)
		}
		if cur.DimensionM < prev.DimensionM {
			t.Errorf("class %v dimension shrank", kmh)
		}
		prev = cur
	}
}
