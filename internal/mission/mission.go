// Package mission defines waypoint missions and the Valencia U-space
// scenario the paper flies: ten drones with distinct speeds and payload
// classes crossing a 25 km^2 urban area under a 60-foot ceiling, four of
// them with turning points.
package mission

import (
	"fmt"
	"math"

	"uavres/internal/geo"
	"uavres/internal/mathx"
)

// DroneSpec holds the per-drone physical characteristics that enter the
// inner-bubble formula (Eq. 1): D_o, D_s, and the top speed from which D_m
// is derived.
type DroneSpec struct {
	// Name labels the airframe class.
	Name string
	// DimensionM is D_o — the drone's dimensions including wingspan (m).
	DimensionM float64
	// SafetyDistM is D_s — the manufacturer-recommended safety distance (m).
	SafetyDistM float64
	// MaxSpeedMS is the top speed (m/s) used to compute D_m, the maximum
	// distance covered between two tracking instances.
	MaxSpeedMS float64
}

// Mission is one U-space flight: a drone, a cruise speed, and a waypoint
// route at a fixed altitude in the local NED frame.
type Mission struct {
	// ID is the 1-based mission number (1..10 in the scenario).
	ID int
	// Name is a human-readable route label.
	Name string
	// Drone describes the airframe flying the mission.
	Drone DroneSpec
	// CruiseSpeedMS is the assigned cruise speed (m/s).
	CruiseSpeedMS float64
	// AltitudeM is the cruise altitude above ground (positive up).
	AltitudeM float64
	// Start is the launch point (NED, on the ground: Z = 0).
	Start mathx.Vec3
	// Waypoints are the cruise-altitude route points (NED).
	Waypoints []mathx.Vec3
	// HasTurns reports whether the route includes turning points.
	HasTurns bool
}

// Validate reports whether the mission is well-formed and inside the
// scenario envelope (the 60 ft ceiling).
func (m Mission) Validate() error {
	if m.CruiseSpeedMS <= 0 {
		return fmt.Errorf("mission %d: non-positive cruise speed", m.ID)
	}
	if len(m.Waypoints) == 0 {
		return fmt.Errorf("mission %d: no waypoints", m.ID)
	}
	ceiling := geo.FeetToMeters(60)
	if m.AltitudeM <= 0 || m.AltitudeM > ceiling {
		return fmt.Errorf("mission %d: altitude %.1f outside (0, %.1f]", m.ID, m.AltitudeM, ceiling)
	}
	for i, wp := range m.Waypoints {
		if math.Abs(-wp.Z-m.AltitudeM) > 1e-6 {
			return fmt.Errorf("mission %d: waypoint %d altitude %.1f != %.1f", m.ID, i, -wp.Z, m.AltitudeM)
		}
	}
	if m.Drone.MaxSpeedMS < m.CruiseSpeedMS {
		return fmt.Errorf("mission %d: cruise %.1f exceeds drone top speed %.1f",
			m.ID, m.CruiseSpeedMS, m.Drone.MaxSpeedMS)
	}
	return nil
}

// PathLength returns the cruise-path length (m) from above the start point
// through all waypoints.
func (m Mission) PathLength() float64 {
	prev := mathx.V3(m.Start.X, m.Start.Y, -m.AltitudeM)
	var total float64
	for _, wp := range m.Waypoints {
		total += prev.Dist(wp)
		prev = wp
	}
	return total
}

// PlannedDuration estimates the nominal mission time: vertical takeoff and
// landing at the given rates plus cruise along the path.
func (m Mission) PlannedDuration(climbRate, descendRate float64) float64 {
	if climbRate <= 0 {
		climbRate = 1.5
	}
	if descendRate <= 0 {
		descendRate = 1.0
	}
	return m.AltitudeM/climbRate + m.PathLength()/m.CruiseSpeedMS + m.AltitudeM/descendRate
}

// cruisePath returns the polyline flown at cruise altitude.
func (m Mission) cruisePath() []mathx.Vec3 {
	path := make([]mathx.Vec3, 0, len(m.Waypoints)+1)
	path = append(path, mathx.V3(m.Start.X, m.Start.Y, -m.AltitudeM))
	path = append(path, m.Waypoints...)
	return path
}

// CrossTrackDistance returns the distance from p to the nearest point of
// the planned 3D route (takeoff column, cruise legs, and landing column
// included). Bubble violations are deviations beyond the bubble radius
// from this assigned volume.
func (m Mission) CrossTrackDistance(p mathx.Vec3) float64 {
	best := math.Inf(1)
	// Takeoff column from start to cruise altitude.
	liftTop := mathx.V3(m.Start.X, m.Start.Y, -m.AltitudeM)
	best = math.Min(best, distToSegment(p, m.Start, liftTop))
	// Cruise legs.
	path := m.cruisePath()
	for i := 0; i+1 < len(path); i++ {
		best = math.Min(best, distToSegment(p, path[i], path[i+1]))
	}
	// Landing column under the final waypoint.
	last := path[len(path)-1]
	ground := mathx.V3(last.X, last.Y, 0)
	best = math.Min(best, distToSegment(p, last, ground))
	return best
}

// distToSegment returns the distance from p to segment [a, b].
func distToSegment(p, a, b mathx.Vec3) float64 {
	ab := b.Sub(a)
	denom := ab.NormSq()
	//lint:allow floatcmp exact zero guard for degenerate (zero-length) segments
	if denom == 0 {
		return p.Dist(a)
	}
	t := mathx.Clamp(p.Sub(a).Dot(ab)/denom, 0, 1)
	return p.Dist(a.Add(ab.Scale(t)))
}

// KmhToMs converts km/h (the paper's speed unit) to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }
