package mission

import (
	"fmt"

	"uavres/internal/geo"
	"uavres/internal/mathx"
)

// ValenciaFrame returns the local NED frame anchored at the scenario's
// urban-center origin, for converting mission routes to and from
// geographic coordinates (the form U-space itself exchanges).
func ValenciaFrame() (*geo.Frame, error) {
	return geo.NewFrame(geo.LLA{LatDeg: ValenciaOrigin.LatDeg, LonDeg: ValenciaOrigin.LonDeg})
}

// GeoRoute converts the mission's route (start plus waypoints) to
// geodetic coordinates in the given frame. The start is reported at
// ground level; waypoints carry the cruise altitude.
func (m Mission) GeoRoute(f *geo.Frame) []geo.LLA {
	out := make([]geo.LLA, 0, len(m.Waypoints)+1)
	out = append(out, f.ToLLA(m.Start))
	for _, wp := range m.Waypoints {
		out = append(out, f.ToLLA(wp))
	}
	return out
}

// FromGeo builds a mission from geodetic route points: the first point is
// the launch site (altitude ignored: launches are from ground), the rest
// are cruise waypoints flown at altM above ground. The route is validated
// before being returned.
func FromGeo(id int, name string, f *geo.Frame, drone DroneSpec, cruiseMS, altM float64, route []geo.LLA) (Mission, error) {
	if len(route) < 2 {
		return Mission{}, fmt.Errorf("mission: geo route needs a launch point and at least one waypoint, got %d points", len(route))
	}
	for i, p := range route {
		if err := p.Validate(); err != nil {
			return Mission{}, fmt.Errorf("mission: route point %d: %w", i, err)
		}
	}
	startNED := f.ToNED(route[0])
	m := Mission{
		ID: id, Name: name, Drone: drone,
		CruiseSpeedMS: cruiseMS, AltitudeM: altM,
		Start: mathx.V3(startNED.X, startNED.Y, 0),
	}
	for _, p := range route[1:] {
		ned := f.ToNED(p)
		m.Waypoints = append(m.Waypoints, mathx.V3(ned.X, ned.Y, -altM))
	}
	if err := m.Validate(); err != nil {
		return Mission{}, err
	}
	return m, nil
}
