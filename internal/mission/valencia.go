package mission

import "uavres/internal/mathx"

// CruiseAltM is the scenario cruise altitude: below the 60-foot (18.29 m)
// U-space ceiling.
const CruiseAltM = 15.0

// ValenciaOrigin anchors the local NED frame at the scenario's urban
// center (Valencia, Spain).
var ValenciaOrigin = struct{ LatDeg, LonDeg float64 }{39.4699, -0.3763}

// Drone classes flown in the scenario, keyed by cruise speed in km/h.
// Dimensions and safety distances grow with the airframe class.
func droneClass(speedKmh float64) DroneSpec {
	switch {
	case speedKmh <= 5:
		return DroneSpec{Name: "micro-survey", DimensionM: 0.6, SafetyDistM: 1.5, MaxSpeedMS: KmhToMs(5) * 1.5}
	case speedKmh <= 10:
		return DroneSpec{Name: "small-inspection", DimensionM: 0.7, SafetyDistM: 1.5, MaxSpeedMS: KmhToMs(10) * 1.5}
	case speedKmh <= 12:
		return DroneSpec{Name: "city-courier", DimensionM: 0.8, SafetyDistM: 2.0, MaxSpeedMS: KmhToMs(12) * 1.5}
	case speedKmh <= 14:
		return DroneSpec{Name: "parcel-quad", DimensionM: 0.8, SafetyDistM: 2.0, MaxSpeedMS: KmhToMs(14) * 1.5}
	default:
		return DroneSpec{Name: "express-cargo", DimensionM: 1.0, SafetyDistM: 3.0, MaxSpeedMS: KmhToMs(25) * 1.5}
	}
}

// Valencia returns the scenario's ten missions: a 25 km^2 urban area
// (local NED, ±2.5 km around the origin), speed mix of 2x5, 1x10, 3x12,
// 3x14, and 1x25 km/h, varied directions, and four routes with turning
// points. Leg lengths are sized so each nominal flight lasts roughly the
// same wall time (the paper's gold-run mean is 491 s), which places the
// 90-second fault-injection mark mid-route for every drone — midway along
// a leg, at a turning point, or just before or after a waypoint,
// depending on the mission.
func Valencia() []Mission {
	alt := CruiseAltM
	z := -alt
	ms := []Mission{
		{
			ID: 1, Name: "north-south slow survey",
			CruiseSpeedMS: KmhToMs(5), Drone: droneClass(5),
			Start:     mathx.V3(2000, -1500, 0),
			Waypoints: []mathx.Vec3{{X: 1375, Y: -1500, Z: z}},
		},
		{
			ID: 2, Name: "east-west slow survey",
			CruiseSpeedMS: KmhToMs(5), Drone: droneClass(5),
			Start:     mathx.V3(-1800, 2300, 0),
			Waypoints: []mathx.Vec3{{X: -1800, Y: 1675, Z: z}},
		},
		{
			ID: 3, Name: "south-north inspection with turn",
			CruiseSpeedMS: KmhToMs(10), Drone: droneClass(10),
			Start: mathx.V3(-2300, -800, 0),
			Waypoints: []mathx.Vec3{
				{X: -2050, Y: -800, Z: z}, // turn ~90 s into cruise
				{X: -2050, Y: 200, Z: z},
			},
			HasTurns: true,
		},
		{
			ID: 4, Name: "west-east courier",
			CruiseSpeedMS: KmhToMs(12), Drone: droneClass(12),
			Start:     mathx.V3(500, -2400, 0),
			Waypoints: []mathx.Vec3{{X: 500, Y: -900, Z: z}},
		},
		{
			ID: 5, Name: "north-south courier with turn",
			CruiseSpeedMS: KmhToMs(12), Drone: droneClass(12),
			Start: mathx.V3(2400, 800, 0),
			Waypoints: []mathx.Vec3{
				{X: 2100, Y: 800, Z: z}, // turn ~90 s into cruise
				{X: 2100, Y: 2000, Z: z},
			},
			HasTurns: true,
		},
		{
			ID: 6, Name: "diagonal courier",
			CruiseSpeedMS: KmhToMs(12), Drone: droneClass(12),
			Start:     mathx.V3(1200, 1200, 0),
			Waypoints: []mathx.Vec3{{X: 140, Y: 140, Z: z}},
		},
		{
			ID: 7, Name: "south-north parcel",
			CruiseSpeedMS: KmhToMs(14), Drone: droneClass(14),
			Start:     mathx.V3(-2400, -2000, 0),
			Waypoints: []mathx.Vec3{{X: -650, Y: -2000, Z: z}},
		},
		{
			ID: 8, Name: "east-west parcel with turn",
			CruiseSpeedMS: KmhToMs(14), Drone: droneClass(14),
			Start: mathx.V3(-500, 2400, 0),
			Waypoints: []mathx.Vec3{
				{X: -500, Y: 2050, Z: z}, // turn ~90 s into cruise
				{X: -1900, Y: 2050, Z: z},
			},
			HasTurns: true,
		},
		{
			ID: 9, Name: "north-south parcel",
			CruiseSpeedMS: KmhToMs(14), Drone: droneClass(14),
			Start:     mathx.V3(2200, -400, 0),
			Waypoints: []mathx.Vec3{{X: 450, Y: -400, Z: z}},
		},
		{
			ID: 10, Name: "west-east express with turn",
			CruiseSpeedMS: KmhToMs(25), Drone: droneClass(25),
			Start: mathx.V3(-1000, -2300, 0),
			Waypoints: []mathx.Vec3{
				{X: -1000, Y: -1600, Z: z}, // turn ~100 s into cruise
				{X: 1400, Y: -1600, Z: z},
			},
			HasTurns: true,
		},
	}
	for i := range ms {
		ms[i].AltitudeM = alt
	}
	return ms
}
