package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/obs"
	"uavres/internal/sim"
)

// result fabricates one stored-shape case result: a fingerprinted case
// with the heavy diagnostics payload a real campaign writes.
func result(id string, hash string, outcome sim.Outcome) core.CaseResult {
	return core.CaseResult{
		Case: core.Case{
			ID:        id,
			MissionID: 1,
			Seed:      31,
			Hash:      hash,
			Injection: &faultinject.Injection{
				Primitive: faultinject.Freeze,
				Target:    faultinject.TargetGyro,
				Start:     90 * time.Second,
				Duration:  5 * time.Second,
				Seed:      7,
			},
		},
		Result: sim.Result{
			MissionID:         1,
			Outcome:           outcome,
			FlightDurationSec: 123.456789012345,
			DistanceKm:        1.0625,
			InnerViolations:   2,
			Diagnostics: &sim.Diagnostics{
				FirstInnerViolationSec: 91.25,
				FirstOuterViolationSec: -1,
				DistanceAtFirstOuterKm: -1,
				MaxTiltDeg:             44.5,
				GPSFusions:             1200,
				TraceSummary:           map[string]int{"phase": 4, "violation": 2},
			},
		},
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	want := result("m01-gyro-freeze-5s", "00deadbeef00dead", sim.OutcomeFailsafe)
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(want.Case.Hash)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, want)
	}
	// Duplicate puts are no-ops, not errors.
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Objects != 1 || st.Puts != 1 || st.Hits != 1 || st.Shards != 1 {
		t.Fatalf("stats after one put + one hit: %+v", st)
	}
}

func TestRejectsHashlessAndErroredResults(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	hashless := result("m01-gold", "", sim.OutcomeCompleted)
	if err := s.Put(hashless); err == nil {
		t.Error("hashless result stored")
	}
	errored := result("m01-gold", "00deadbeef00dead", sim.OutcomeCompleted)
	errored.Err = "cancelled"
	if err := s.Put(errored); err == nil {
		t.Error("errored result stored")
	}
	// Path traversal can never reach the filesystem.
	if _, ok, _ := s.Get("../../etc/passwd"); ok {
		t.Error("invalid hash reported a hit")
	}
}

func TestReopenLoadsIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a := result("a", "aa11223344556677", sim.OutcomeCompleted)
	b := result("b", "bb11223344556677", sim.OutcomeCrash)
	for _, r := range []core.CaseResult{a, b} {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if st := s2.Stats(); st.Objects != 2 || st.Shards != 2 {
		t.Fatalf("reopened stats: %+v", st)
	}
	got, ok, _ := s2.Get("bb11223344556677")
	if !ok || got.Case.ID != "b" {
		t.Fatalf("reopened get: ok=%v got=%+v", ok, got)
	}
}

func TestRebuildsMissingOrCorruptIndex(t *testing.T) {
	for name, garble := range map[string]func(path string){
		"missing":  func(p string) { os.Remove(p) },
		"mid-file": func(p string) { os.WriteFile(p, []byte("v1 not hex garbage\nv1 aa11223344556677 10 a\n"), 0o644) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir)
			if err := s.Put(result("a", "aa11223344556677", sim.OutcomeCompleted)); err != nil {
				t.Fatal(err)
			}
			s.Close()
			garble(filepath.Join(dir, "index.log"))
			s2 := mustOpen(t, dir)
			if got, ok, _ := s2.Get("aa11223344556677"); !ok || got.Case.ID != "a" {
				t.Fatalf("%s index: object lost (ok=%v)", name, ok)
			}
		})
	}
}

// TestTornIndexTailDropped: a crash mid-append leaves a half-written
// final line; the store drops it and keeps the clean prefix, exactly
// like core.LoadPartialResults does for results files.
func TestTornIndexTailDropped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Put(result("a", "aa11223344556677", sim.OutcomeCompleted)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	idx := filepath.Join(dir, "index.log")
	f, err := os.OpenFile(idx, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("v1 bb112233445566") // torn: no size, no newline
	f.Close()

	s2 := mustOpen(t, dir)
	if st := s2.Stats(); st.Objects != 1 {
		t.Fatalf("torn tail not dropped: %+v", st)
	}
}

// TestCorruptObjectIsAMiss: a garbled object file must cost a re-run,
// never an error — and the poisoned object is dropped so the slot heals.
func TestCorruptObjectIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	r := result("a", "aa11223344556677", sim.OutcomeCompleted)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", "aa", "aa11223344556677.json")
	if err := os.WriteFile(path, []byte(`{"case": {"id": "a", "hash": "tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(r.Case.Hash); ok || err != nil {
		t.Fatalf("corrupt object: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Objects != 0 {
		t.Fatalf("corrupt object not dropped: %+v", st)
	}
	// A swapped object (valid JSON, wrong fingerprint inside) is dropped
	// the same way: content addressing is verified, not trusted.
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	swapped := result("b", "bb11223344556677", sim.OutcomeCrash)
	data := strings.ReplaceAll(`{"case":{"id":"b","mission_id":1,"seed":31,"hash":"HB"},"result":{"mission_id":1,"outcome":2,"flight_duration_sec":1,"distance_km":0,"inner_violations":0,"outer_violations":0,"waypoints_reached":0}}`, "HB", swapped.Case.Hash)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(r.Case.Hash); ok {
		t.Fatal("object carrying a foreign fingerprint reported as a hit")
	}
}

func TestPruneEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	old := result("old", "aa11223344556677", sim.OutcomeCompleted)
	recent := result("new", "bb11223344556677", sim.OutcomeCompleted)
	if err := s.Put(old); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(recent); err != nil {
		t.Fatal(err)
	}
	// Make the eviction order unambiguous on coarse-mtime filesystems.
	past := time.Unix(1_000_000, 0)
	if err := os.Chtimes(filepath.Join(dir, "objects", "aa", "aa11223344556677.json"), past, past); err != nil {
		t.Fatal(err)
	}
	perObject := s.Stats().Bytes / 2
	removed, err := s.Prune(perObject)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d objects, want 1", removed)
	}
	if _, ok, _ := s.Get(old.Case.Hash); ok {
		t.Error("oldest object survived prune")
	}
	if _, ok, _ := s.Get(recent.Case.Hash); !ok {
		t.Error("newest object evicted")
	}
	// The rewritten index and reopened append handle stay consistent:
	// a post-prune put must survive reopen.
	c := result("c", "cc11223344556677", sim.OutcomeCompleted)
	if err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir)
	if _, ok, _ := s2.Get(c.Case.Hash); !ok {
		t.Error("post-prune put lost across reopen")
	}
}

func TestResultCacheSurface(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	var cache core.ResultCache = s
	r := result("a", "aa11223344556677", sim.OutcomeCompleted)
	cache.Store(r)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Lookup(r.Case.Hash)
	if !ok || got.Case.ID != "a" {
		t.Fatalf("lookup: ok=%v got=%+v", ok, got)
	}
	if _, ok := cache.Lookup("ee11223344556677"); ok {
		t.Error("phantom hit")
	}

	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	snap := reg.Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Name == "store_objects" && g.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("store_objects gauge missing or wrong: %+v", snap.Gauges)
	}
}
