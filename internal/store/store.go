// Package store implements the fingerprint-keyed content-addressed
// result store behind cached campaigns: one JSON object per case
// fingerprint (internal/spec.Fingerprint), laid out in 256 two-hex-char
// shard directories, written atomically (temp file + rename) and
// indexed by an append-only log. Any campaign whose compiled grid
// overlaps a stored one — ablations share most cells — hits the store
// instead of re-simulating; cmd/campaign's -resume results-file replay
// is the degenerate single-file form of the same idea.
//
// Layout under the root directory:
//
//	objects/<hh>/<fingerprint>.json   one core.CaseResult per object
//	index.log                         "v1 <fingerprint> <size> <caseID>" lines
//
// The index is a cache of the object tree, never the source of truth: a
// missing or unparsable index is rebuilt by scanning the shards, a torn
// tail line (a crash mid-append) is dropped, and every Get re-reads and
// verifies the object itself — a corrupt or truncated object is dropped
// and reported as a miss, mirroring core.LoadPartialResults' stance
// that interrupted writes cost a re-run, never an error. Eviction is
// explicit: Prune removes oldest-first (by modification time) until the
// store fits a byte budget; nothing expires on its own.
package store

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"uavres/internal/core"
	"uavres/internal/obs"
)

// indexVersion tags index.log lines so a future layout change cannot be
// misread as today's.
const indexVersion = "v1"

// Stats is one point-in-time view of the store: persistent contents
// plus this session's traffic.
type Stats struct {
	// Objects and Bytes describe the persistent contents.
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
	// Shards counts the non-empty two-hex-char fan-out directories.
	Shards int `json:"shards"`
	// Hits, Misses, and Puts count this session's traffic.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// Corrupt counts objects dropped this session because they failed
	// verification on read.
	Corrupt int64 `json:"corrupt"`
}

// Store is the on-disk content-addressed result store. It implements
// core.ResultCache. All methods are safe for concurrent use from one
// process; cross-process writers stay consistent through the atomic
// rename (two processes racing the same fingerprint write identical
// content).
type Store struct {
	root string

	mu      sync.Mutex
	sizes   map[string]int64 // fingerprint -> object size
	indexF  *os.File         // append handle for index.log
	hits    int64
	misses  int64
	puts    int64
	corrupt int64
	err     error // first persistence error (see Err)
}

// Open creates (or reopens) the store rooted at dir. A readable index
// is loaded tolerantly — a torn final line is dropped — and a missing
// or corrupt index is rebuilt by scanning the object tree.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: dir}
	sizes, ok := s.loadIndex()
	if !ok {
		var err error
		if sizes, err = s.scanObjects(); err != nil {
			return nil, err
		}
		if err := s.rewriteIndex(sizes); err != nil {
			return nil, err
		}
	}
	s.sizes = sizes
	f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening index: %w", err)
	}
	s.indexF = f
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.root, "index.log") }

// objectPath fans fingerprints out over 256 shard directories so no
// single directory grows to millions of entries at grid scale.
func (s *Store) objectPath(hash string) string {
	shard := hash
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(s.root, "objects", shard, hash+".json")
}

// validHash accepts lowercase-hex fingerprints only: the hash becomes a
// file name, so anything else (path separators above all) is rejected.
func validHash(hash string) bool {
	if len(hash) < 4 || len(hash) > 128 {
		return false
	}
	for _, r := range hash {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// loadIndex reads index.log. ok=false means the index is absent or
// untrustworthy (a malformed line before the tail) and must be rebuilt;
// a torn final line alone is dropped silently — that is the one
// corruption a crashed append legitimately produces.
func (s *Store) loadIndex() (map[string]int64, bool) {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return nil, false
	}
	sizes := make(map[string]int64)
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 4)
		bad := len(fields) < 3 || fields[0] != indexVersion || !validHash(fields[1])
		var size int64
		if !bad {
			size, err = strconv.ParseInt(fields[2], 10, 64)
			bad = err != nil || size < 0
		}
		if bad {
			if i == len(lines)-1 || (i == len(lines)-2 && lines[len(lines)-1] == "") {
				continue // torn tail: drop the half-written line
			}
			return nil, false // mid-file corruption: rebuild from objects
		}
		sizes[fields[1]] = size
	}
	return sizes, true
}

// scanObjects rebuilds the index map from the object tree.
func (s *Store) scanObjects() (map[string]int64, error) {
	sizes := make(map[string]int64)
	root := filepath.Join(s.root, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return err
		}
		hash := strings.TrimSuffix(d.Name(), ".json")
		if !validHash(hash) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // racing deletion: skip
		}
		sizes[hash] = info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning objects: %w", err)
	}
	return sizes, nil
}

// rewriteIndex writes a fresh index.log atomically from the given map.
func (s *Store) rewriteIndex(sizes map[string]int64) error {
	hashes := make([]string, 0, len(sizes))
	for h := range sizes {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	var b strings.Builder
	for _, h := range hashes {
		fmt.Fprintf(&b, "%s %s %d\n", indexVersion, h, sizes[h])
	}
	tmp, err := os.CreateTemp(s.root, "index-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.indexPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get returns the stored result for a fingerprint. A miss returns
// ok=false with a nil error; an object that fails verification (corrupt
// JSON, truncated write, content that does not carry the requested
// fingerprint) is dropped from the store and reported as a miss — a
// cache must cost a re-run, never a failed campaign.
func (s *Store) Get(hash string) (core.CaseResult, bool, error) {
	if !validHash(hash) {
		return core.CaseResult{}, false, nil
	}
	s.mu.Lock()
	_, known := s.sizes[hash]
	s.mu.Unlock()
	if !known {
		s.note(&s.misses)
		return core.CaseResult{}, false, nil
	}
	data, err := os.ReadFile(s.objectPath(hash))
	if err != nil {
		s.drop(hash)
		s.note(&s.misses)
		return core.CaseResult{}, false, nil
	}
	var res core.CaseResult
	if err := json.Unmarshal(data, &res); err != nil || res.Case.Hash != hash || res.Case.ID == "" {
		s.drop(hash)
		s.note(&s.misses, &s.corrupt)
		return core.CaseResult{}, false, nil
	}
	s.note(&s.hits)
	return res, true, nil
}

// Put stores one finished result under its fingerprint. Hashless and
// errored results are rejected (they are not reusable facts about the
// experiment); duplicate puts are no-ops — objects are immutable, two
// writers of one fingerprint produce identical content by construction.
func (s *Store) Put(res core.CaseResult) error {
	hash := res.Case.Hash
	if !validHash(hash) {
		return fmt.Errorf("store: refusing to store case %q without a valid fingerprint", res.Case.ID)
	}
	if res.Err != "" {
		return fmt.Errorf("store: refusing to store errored case %q (%s)", res.Case.ID, res.Err)
	}
	s.mu.Lock()
	_, exists := s.sizes[hash]
	s.mu.Unlock()
	if exists {
		return nil
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding case %q: %w", res.Case.ID, err)
	}
	path := s.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Atomic publish: a reader either sees the complete object or none.
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.sizes[hash] = int64(len(data))
	s.puts++
	_, err = fmt.Fprintf(s.indexF, "%s %s %d %s\n", indexVersion, hash, len(data), res.Case.ID)
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: appending index: %w", err)
	}
	return nil
}

// Lookup implements core.ResultCache over Get.
func (s *Store) Lookup(hash string) (core.CaseResult, bool) {
	res, ok, _ := s.Get(hash)
	return res, ok
}

// Store implements core.ResultCache over Put: persistence failures are
// latched (see Err) instead of failing the campaign mid-flight.
func (s *Store) Store(res core.CaseResult) {
	if err := s.Put(res); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

// Err returns the first persistence error swallowed by the
// core.ResultCache surface, so a campaign can fail loudly at the end
// rather than silently running an unwritable cache.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// drop forgets a fingerprint and removes its object file (best effort).
func (s *Store) drop(hash string) {
	s.mu.Lock()
	delete(s.sizes, hash)
	s.mu.Unlock()
	os.Remove(s.objectPath(hash))
}

// note bumps session counters under the lock.
func (s *Store) note(counters ...*int64) {
	s.mu.Lock()
	for _, c := range counters {
		*c++
	}
	s.mu.Unlock()
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Objects: len(s.sizes),
		Hits:    s.hits,
		Misses:  s.misses,
		Puts:    s.puts,
		Corrupt: s.corrupt,
	}
	shards := make(map[string]bool, 256)
	for h, size := range s.sizes {
		st.Bytes += size
		prefix := h
		if len(prefix) > 2 {
			prefix = prefix[:2]
		}
		shards[prefix] = true
	}
	st.Shards = len(shards)
	return st
}

// RegisterMetrics exposes the store's persistent size and session
// traffic on an obs registry, alongside the runner's campaign_cache_*
// counters in the same metrics snapshot.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("store_objects", func() float64 { return float64(s.Stats().Objects) })
	reg.GaugeFunc("store_bytes", func() float64 { return float64(s.Stats().Bytes) })
	reg.GaugeFunc("store_corrupt_dropped", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.corrupt)
	})
}

// Prune evicts objects oldest-first (by file modification time) until
// the persistent contents fit maxBytes, and rewrites the index. It
// returns how many objects were removed. The store stays fully usable
// afterwards; evicted cells simply cost a re-run on their next lookup.
func (s *Store) Prune(maxBytes int64) (int, error) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	s.mu.Lock()
	type obj struct {
		hash string
		size int64
	}
	objs := make([]obj, 0, len(s.sizes))
	var total int64
	for h, size := range s.sizes {
		objs = append(objs, obj{h, size})
		total += size
	}
	s.mu.Unlock()
	if total <= maxBytes {
		return 0, nil
	}
	// Oldest-first by mtime; ties (filesystems with coarse timestamps)
	// break on the hash so eviction order stays deterministic.
	type aged struct {
		obj
		mtime int64
	}
	ages := make([]aged, 0, len(objs))
	for _, o := range objs {
		info, err := os.Stat(s.objectPath(o.hash))
		if err != nil {
			continue
		}
		ages = append(ages, aged{o, info.ModTime().UnixNano()})
	}
	sort.Slice(ages, func(i, j int) bool {
		if ages[i].mtime != ages[j].mtime {
			return ages[i].mtime < ages[j].mtime
		}
		return ages[i].hash < ages[j].hash
	})
	removed := 0
	for _, a := range ages {
		if total <= maxBytes {
			break
		}
		s.drop(a.hash)
		total -= a.size
		removed++
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sizes := make(map[string]int64, len(s.sizes))
	for h, size := range s.sizes {
		sizes[h] = size
	}
	if err := s.rewriteIndex(sizes); err != nil {
		return removed, err
	}
	// The append handle still points at the renamed-over inode; reopen it
	// so subsequent puts land in the fresh index.
	if s.indexF != nil {
		s.indexF.Close()
		f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.indexF = nil
			return removed, fmt.Errorf("store: reopening index: %w", err)
		}
		s.indexF = f
	}
	return removed, nil
}

// Close flushes and closes the index append handle. The store must not
// be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.indexF == nil {
		return nil
	}
	err := s.indexF.Close()
	s.indexF = nil
	if err != nil {
		return fmt.Errorf("store: closing index: %w", err)
	}
	return nil
}
