package flightlog

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{TimeSec: 0, TrueZ: 0, EstZ: 0},
		{TimeSec: 1, TrueX: 1.5, TrueY: -0.5, TrueZ: -3, EstX: 1.4, EstY: -0.4, EstZ: -3.1, TiltDeg: 2.5, DeviationM: 0.2},
		{TimeSec: 2, TrueX: 3, TrueZ: -10, EstX: 3.1, EstZ: -10.1, DeviationM: 6.5, Flags: FlagInnerViolation | FlagFaultActive},
		{TimeSec: 3, Flags: FlagFailsafe | FlagOuterViolation},
	}
}

func writeLog(t *testing.T, hdr Header, records []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteReadRoundTrip(t *testing.T) {
	hdr := Header{MissionID: 7, Label: "Gyro Freeze"}
	records := sampleRecords()
	raw := writeLog(t, hdr, records)

	gotHdr, gotRecords, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr != hdr {
		t.Errorf("header = %+v, want %+v", gotHdr, hdr)
	}
	if len(gotRecords) != len(records) {
		t.Fatalf("records = %d, want %d", len(gotRecords), len(records))
	}
	for i := range records {
		if gotRecords[i] != records[i] {
			t.Errorf("record %d = %+v, want %+v", i, gotRecords[i], records[i])
		}
	}
}

func TestEmptyLog(t *testing.T) {
	raw := writeLog(t, Header{MissionID: 1, Label: "Gold Run"}, nil)
	hdr, records, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Label != "Gold Run" || len(records) != 0 {
		t.Errorf("hdr=%+v records=%d", hdr, len(records))
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, _, err := Read(strings.NewReader("definitely not a log")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadDetectsTruncation(t *testing.T) {
	raw := writeLog(t, Header{MissionID: 1, Label: "x"}, sampleRecords())
	if _, _, err := Read(bytes.NewReader(raw[:len(raw)-5])); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	raw := writeLog(t, Header{MissionID: 1, Label: "x"}, sampleRecords())
	raw[20] ^= 0x01 // flip a bit inside the first record
	if _, _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestWriterCloseIdempotentAndSeals(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{MissionID: 1, Label: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := w.Append(Record{}); err == nil {
		t.Error("append after close accepted")
	}
}

func TestLongLabelTruncated(t *testing.T) {
	long := strings.Repeat("y", 100)
	raw := writeLog(t, Header{MissionID: 1, Label: long}, nil)
	hdr, _, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr.Label) != 64 {
		t.Errorf("label length = %d, want 64", len(hdr.Label))
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 records
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t,true_x") {
		t.Errorf("csv header = %q", lines[0])
	}
	// Record 2 carries inner-violation and fault flags.
	if !strings.HasSuffix(lines[3], "1,0,1,0") {
		t.Errorf("flag columns = %q", lines[3])
	}
	// Record 3 carries outer-violation and failsafe flags.
	if !strings.HasSuffix(lines[4], "0,1,0,1") {
		t.Errorf("flag columns = %q", lines[4])
	}
}

// The full export chain is lossless: records written to the binary log,
// read back, exported as CSV, and parsed again compare equal — including
// every Flags violation bit.
func TestCSVRoundTrip(t *testing.T) {
	records := sampleRecords()
	records = append(records, Record{
		TimeSec: 4.004, TrueX: 1.0 / 3.0, EstX: -math.Pi, TiltDeg: 89.999,
		DeviationM: 0.1, Flags: FlagInnerViolation | FlagOuterViolation | FlagFaultActive | FlagFailsafe,
	})

	raw := writeLog(t, Header{MissionID: 4, Label: "Accel Bias"}, records)
	_, decoded, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, decoded); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(csv.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("records = %d, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], records[i])
		}
		if got[i].Flags != records[i].Flags {
			t.Errorf("record %d flags = %04x, want %04x", i, got[i].Flags, records[i].Flags)
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, csv string
	}{
		{"empty", ""},
		{"wrong header", "time,x,y\n1,2,3\n"},
		{"short row", csvHeaderLine() + "1,2,3\n"},
		{"bad float", csvHeaderLine() + "x,0,0,0,0,0,0,0,0,0,0,0,0\n"},
		{"bad flag", csvHeaderLine() + "1,0,0,0,0,0,0,0,0,2,0,0,0\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.csv)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func csvHeaderLine() string { return csvHeader + "\n" }

// Property: any slice of records survives a write/read round trip
// (NaN-free inputs; NaN never compares equal).
func TestRoundTripProperty(t *testing.T) {
	f := func(times []float64, flags []uint16) bool {
		n := len(times)
		if len(flags) < n {
			n = len(flags)
		}
		if n > 50 {
			n = 50
		}
		records := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			v := times[i]
			if v != v { // NaN
				v = 0
			}
			records = append(records, Record{TimeSec: v, TrueX: v * 2, Flags: flags[i]})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{MissionID: 3, Label: "prop"})
		if err != nil {
			return false
		}
		for _, r := range records {
			if err := w.Append(r); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		_, got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil || len(got) != len(records) {
			return false
		}
		for i := range got {
			if got[i] != records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
