// Package flightlog records simulated flights to a compact binary log
// (ULog-inspired: magic header, typed records, CRC-protected trailer) and
// reads them back — the platform's "records all flights" capability. A CSV
// exporter supports external trajectory analysis and the paper-style
// figure generation.
package flightlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Format constants.
var logMagic = [8]byte{'U', 'A', 'V', 'L', 'O', 'G', 0, 1}

// Record is one timestamped flight-state sample.
type Record struct {
	// TimeSec is the simulation time.
	TimeSec float64
	// TrueX/Y/Z is the ground-truth NED position (m).
	TrueX, TrueY, TrueZ float64
	// EstX/Y/Z is the EKF NED position estimate (m).
	EstX, EstY, EstZ float64
	// TiltDeg is the true tilt angle (deg).
	TiltDeg float64
	// DeviationM is the distance from the assigned flight volume.
	DeviationM float64
	// Flags carries event bits.
	Flags uint16
}

// Flag bits.
const (
	// FlagInnerViolation marks an inner-bubble violation at this sample.
	FlagInnerViolation uint16 = 1 << iota
	// FlagOuterViolation marks an outer-bubble violation.
	FlagOuterViolation
	// FlagFaultActive marks the injection window.
	FlagFaultActive
	// FlagFailsafe marks failsafe engagement.
	FlagFailsafe
)

const recordLen = 9*8 + 2

// Header describes the logged flight.
type Header struct {
	// MissionID is the Valencia mission number.
	MissionID uint16
	// Label is the injection label or "Gold Run" (max 64 bytes).
	Label string
}

// Writer streams records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint32
	crc   uint32 // running additive checksum of record bytes
	done  bool
}

// NewWriter writes the log header and returns a record writer.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(logMagic[:]); err != nil {
		return nil, fmt.Errorf("flightlog: header: %w", err)
	}
	label := hdr.Label
	if len(label) > 64 {
		label = label[:64]
	}
	var meta [2 + 1]byte
	binary.LittleEndian.PutUint16(meta[:2], hdr.MissionID)
	meta[2] = uint8(len(label))
	if _, err := bw.Write(meta[:]); err != nil {
		return nil, fmt.Errorf("flightlog: header: %w", err)
	}
	if _, err := bw.WriteString(label); err != nil {
		return nil, fmt.Errorf("flightlog: header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Append writes one record.
func (w *Writer) Append(r Record) error {
	if w.done {
		return errors.New("flightlog: writer already closed")
	}
	var buf [recordLen]byte
	off := 0
	for _, v := range []float64{
		r.TimeSec, r.TrueX, r.TrueY, r.TrueZ, r.EstX, r.EstY, r.EstZ, r.TiltDeg, r.DeviationM,
	} {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint16(buf[off:], r.Flags)
	if _, err := w.w.Write(buf[:]); err != nil {
		return fmt.Errorf("flightlog: append: %w", err)
	}
	for _, b := range buf {
		w.crc += uint32(b)
	}
	w.count++
	return nil
}

// Close writes the trailer (record count + checksum) and flushes.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	var trailer [8]byte
	binary.LittleEndian.PutUint32(trailer[:4], w.count)
	binary.LittleEndian.PutUint32(trailer[4:], w.crc)
	if _, err := w.w.Write(trailer[:]); err != nil {
		return fmt.Errorf("flightlog: trailer: %w", err)
	}
	return w.w.Flush()
}

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("flightlog: bad magic")
	ErrTruncated = errors.New("flightlog: truncated log")
	ErrChecksum  = errors.New("flightlog: checksum mismatch")
)

// Read parses a complete log: header, records, and verified trailer.
func Read(r io.Reader) (Header, []Record, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Header{}, nil, ErrBadMagic
	}
	if magic != logMagic {
		return Header{}, nil, ErrBadMagic
	}
	var meta [3]byte
	if _, err := io.ReadFull(br, meta[:]); err != nil {
		return Header{}, nil, ErrTruncated
	}
	hdr := Header{MissionID: binary.LittleEndian.Uint16(meta[:2])}
	label := make([]byte, meta[2])
	if _, err := io.ReadFull(br, label); err != nil {
		return Header{}, nil, ErrTruncated
	}
	hdr.Label = string(label)

	// Records stream until exactly 8 bytes remain (the trailer). Since
	// the reader cannot seek, read greedily and detect the trailer by
	// the recorded count.
	raw, err := io.ReadAll(br)
	if err != nil {
		return Header{}, nil, fmt.Errorf("flightlog: %w", err)
	}
	if len(raw) < 8 || (len(raw)-8)%recordLen != 0 {
		return Header{}, nil, ErrTruncated
	}
	body, trailer := raw[:len(raw)-8], raw[len(raw)-8:]
	count := binary.LittleEndian.Uint32(trailer[:4])
	wantCRC := binary.LittleEndian.Uint32(trailer[4:])
	if int(count)*recordLen != len(body) {
		return Header{}, nil, ErrTruncated
	}
	var crc uint32
	for _, b := range body {
		crc += uint32(b)
	}
	if crc != wantCRC {
		return Header{}, nil, ErrChecksum
	}

	records := make([]Record, 0, count)
	for off := 0; off < len(body); off += recordLen {
		records = append(records, decodeRecord(body[off:off+recordLen]))
	}
	return hdr, records, nil
}

func decodeRecord(b []byte) Record {
	var r Record
	off := 0
	for _, dst := range []*float64{
		&r.TimeSec, &r.TrueX, &r.TrueY, &r.TrueZ, &r.EstX, &r.EstY, &r.EstZ, &r.TiltDeg, &r.DeviationM,
	} {
		*dst = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	r.Flags = binary.LittleEndian.Uint16(b[off:])
	return r
}

// csvHeader is the exported column order; ReadCSV requires it verbatim.
const csvHeader = "t,true_x,true_y,true_z,est_x,est_y,est_z,tilt_deg,deviation_m,inner_viol,outer_viol,fault,failsafe"

// WriteCSV exports records as CSV with a header row; the format the
// paper-style trajectory figures are plotted from.
func WriteCSV(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(csvHeader + "\n"); err != nil {
		return fmt.Errorf("flightlog: csv: %w", err)
	}
	for _, r := range records {
		for i, v := range []float64{r.TimeSec, r.TrueX, r.TrueY, r.TrueZ, r.EstX, r.EstY, r.EstZ, r.TiltDeg, r.DeviationM} {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return fmt.Errorf("flightlog: csv: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return fmt.Errorf("flightlog: csv: %w", err)
			}
		}
		for _, flag := range []uint16{FlagInnerViolation, FlagOuterViolation, FlagFaultActive, FlagFailsafe} {
			bit := "0"
			if r.Flags&flag != 0 {
				bit = "1"
			}
			if _, err := bw.WriteString("," + bit); err != nil {
				return fmt.Errorf("flightlog: csv: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("flightlog: csv: %w", err)
		}
	}
	return bw.Flush()
}

// ErrBadCSV reports a malformed CSV export.
var ErrBadCSV = errors.New("flightlog: malformed csv")

// ReadCSV parses a WriteCSV export back into records. Floats round-trip
// exactly (the writer uses shortest-form formatting), so
// WriteCSV -> ReadCSV is lossless including the flag bits.
func ReadCSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("flightlog: csv: %w", err)
		}
		return nil, fmt.Errorf("%w: missing header row", ErrBadCSV)
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != csvHeader {
		return nil, fmt.Errorf("%w: header %q", ErrBadCSV, got)
	}

	var records []Record
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 13 {
			return nil, fmt.Errorf("%w: line %d has %d fields, want 13", ErrBadCSV, line, len(fields))
		}
		var rec Record
		for i, dst := range []*float64{
			&rec.TimeSec, &rec.TrueX, &rec.TrueY, &rec.TrueZ,
			&rec.EstX, &rec.EstY, &rec.EstZ, &rec.TiltDeg, &rec.DeviationM,
		} {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d field %d: %v", ErrBadCSV, line, i+1, err)
			}
			*dst = v
		}
		for j, flag := range []uint16{FlagInnerViolation, FlagOuterViolation, FlagFaultActive, FlagFailsafe} {
			switch fields[9+j] {
			case "0":
			case "1":
				rec.Flags |= flag
			default:
				return nil, fmt.Errorf("%w: line %d field %d: flag must be 0 or 1, got %q", ErrBadCSV, line, 10+j, fields[9+j])
			}
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flightlog: csv: %w", err)
	}
	return records, nil
}
