// Package analysis provides secondary breakdowns of campaign results that
// the paper discusses but does not tabulate: per-mission and per-speed
// sensitivity (the scenario deliberately mixes 5-25 km/h drones), failure
// latency distributions, and failsafe-cause composition. A Markdown
// report renderer packages everything for offline reading.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"uavres/internal/core"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/sim"
)

// MissionBreakdown aggregates faulty-run outcomes for one mission.
type MissionBreakdown struct {
	MissionID    int
	Name         string
	SpeedKmh     float64
	HasTurns     bool
	N            int
	CompletedPct float64
	CrashPct     float64 // of all faulty runs
	MeanInner    float64
	MeanOuter    float64
}

// ByMission groups faulty results per mission (the campaign injects 84
// faults into each). The scenario must be supplied to label speeds/turns.
func ByMission(results []core.CaseResult, missions []mission.Mission) []MissionBreakdown {
	info := map[int]mission.Mission{}
	for _, m := range missions {
		info[m.ID] = m
	}
	type acc struct {
		n, completed, crashed int
		inner, outer          float64
	}
	agg := map[int]*acc{}
	for _, cr := range results {
		if cr.Err != "" || cr.Case.Injection == nil {
			continue
		}
		a := agg[cr.Case.MissionID]
		if a == nil {
			a = &acc{}
			agg[cr.Case.MissionID] = a
		}
		a.n++
		if cr.Result.Outcome == sim.OutcomeCompleted {
			a.completed++
		}
		if cr.Result.Outcome == sim.OutcomeCrash {
			a.crashed++
		}
		a.inner += float64(cr.Result.InnerViolations)
		a.outer += float64(cr.Result.OuterViolations)
	}
	ids := make([]int, 0, len(agg))
	for id := range agg {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]MissionBreakdown, 0, len(ids))
	for _, id := range ids {
		a := agg[id]
		b := MissionBreakdown{
			MissionID: id, N: a.n,
			CompletedPct: 100 * float64(a.completed) / float64(a.n),
			CrashPct:     100 * float64(a.crashed) / float64(a.n),
			MeanInner:    a.inner / float64(a.n),
			MeanOuter:    a.outer / float64(a.n),
		}
		if m, exists := info[id]; exists {
			b.Name = m.Name
			b.SpeedKmh = math.Round(m.CruiseSpeedMS * 3.6)
			b.HasTurns = m.HasTurns
		}
		out = append(out, b)
	}
	return out
}

// SpeedBreakdown aggregates by drone speed class.
type SpeedBreakdown struct {
	SpeedKmh     float64
	Missions     int
	N            int
	CompletedPct float64
	MeanInner    float64
}

// BySpeed groups faulty results by the drone's cruise speed class.
func BySpeed(results []core.CaseResult, missions []mission.Mission) []SpeedBreakdown {
	byMission := ByMission(results, missions)
	type acc struct {
		missions, n int
		completed   float64 // weighted by runs
		inner       float64
	}
	agg := map[float64]*acc{}
	for _, b := range byMission {
		a := agg[b.SpeedKmh]
		if a == nil {
			a = &acc{}
			agg[b.SpeedKmh] = a
		}
		a.missions++
		a.n += b.N
		a.completed += b.CompletedPct / 100 * float64(b.N)
		a.inner += b.MeanInner * float64(b.N)
	}
	speeds := make([]float64, 0, len(agg))
	for s := range agg {
		speeds = append(speeds, s)
	}
	sort.Float64s(speeds)
	out := make([]SpeedBreakdown, 0, len(speeds))
	for _, s := range speeds {
		a := agg[s]
		out = append(out, SpeedBreakdown{
			SpeedKmh: s, Missions: a.missions, N: a.n,
			CompletedPct: 100 * a.completed / float64(a.n),
			MeanInner:    a.inner / float64(a.n),
		})
	}
	return out
}

// LatencyStats summarizes fault-onset-to-failure latency for failed runs.
type LatencyStats struct {
	N      int
	MeanS  float64
	P50S   float64
	P90S   float64
	MaxS   float64
	OnsetS float64
}

// FailureLatency computes time from injection start to mission end across
// failed faulty runs.
func FailureLatency(results []core.CaseResult) LatencyStats {
	var lat []float64
	onset := 0.0
	for _, cr := range results {
		if cr.Err != "" || cr.Case.Injection == nil {
			continue
		}
		if cr.Result.Outcome == sim.OutcomeCompleted {
			continue
		}
		start := cr.Case.Injection.Start.Seconds()
		onset = start
		if cr.Result.FlightDurationSec > start {
			lat = append(lat, cr.Result.FlightDurationSec-start)
		}
	}
	if len(lat) == 0 {
		return LatencyStats{}
	}
	var r mathx.Running
	for _, v := range lat {
		r.Add(v)
	}
	return LatencyStats{
		N:      len(lat),
		MeanS:  r.Mean(),
		P50S:   mathx.Percentile(lat, 50),
		P90S:   mathx.Percentile(lat, 90),
		MaxS:   r.Max(),
		OnsetS: onset,
	}
}

// CauseComposition counts failure causes across faulty runs.
func CauseComposition(results []core.CaseResult) map[string]int {
	out := map[string]int{}
	for _, cr := range results {
		if cr.Err != "" || cr.Case.Injection == nil {
			continue
		}
		switch cr.Result.Outcome {
		case sim.OutcomeCompleted:
			out["completed"]++
		case sim.OutcomeCrash:
			out["crash: "+cr.Result.CrashReason]++
		case sim.OutcomeFailsafe:
			out["failsafe: "+cr.Result.FailsafeCause]++
		default:
			out["timeout"]++
		}
	}
	return out
}

// RenderMarkdown builds the full secondary-analysis report.
func RenderMarkdown(results []core.CaseResult, missions []mission.Mission) string {
	var b strings.Builder
	b.WriteString("# Campaign secondary analysis\n\n")

	b.WriteString("## Per-mission sensitivity\n\n")
	b.WriteString("| Mission | Speed (km/h) | Turns | Runs | Completed % | Crash % | Inner (#) |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, m := range ByMission(results, missions) {
		turns := ""
		if m.HasTurns {
			turns = "yes"
		}
		fmt.Fprintf(&b, "| %d %s | %.0f | %s | %d | %.1f | %.1f | %.1f |\n",
			m.MissionID, m.Name, m.SpeedKmh, turns, m.N, m.CompletedPct, m.CrashPct, m.MeanInner)
	}

	b.WriteString("\n## Per-speed-class sensitivity\n\n")
	b.WriteString("| Speed (km/h) | Missions | Runs | Completed % | Inner (#) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, s := range BySpeed(results, missions) {
		fmt.Fprintf(&b, "| %.0f | %d | %d | %.1f | %.1f |\n",
			s.SpeedKmh, s.Missions, s.N, s.CompletedPct, s.MeanInner)
	}

	lat := FailureLatency(results)
	b.WriteString("\n## Failure latency (onset to loss)\n\n")
	fmt.Fprintf(&b, "Failed runs: %d. Mean %.1f s, median %.1f s, p90 %.1f s, max %.1f s after the %.0f s injection mark.\n",
		lat.N, lat.MeanS, lat.P50S, lat.P90S, lat.MaxS, lat.OnsetS)

	b.WriteString("\n## Outcome composition\n\n")
	comp := CauseComposition(results)
	keys := make([]string, 0, len(comp))
	for k := range comp {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return comp[keys[i]] > comp[keys[j]] })
	for _, k := range keys {
		fmt.Fprintf(&b, "- %s: %d\n", k, comp[k])
	}
	return b.String()
}
