package analysis

import (
	"strings"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/sim"
)

func mk(missionID int, outcome sim.Outcome, inner int, dur float64, crashReason, fsCause string) core.CaseResult {
	inj := &faultinject.Injection{
		Primitive: faultinject.Zeros, Target: faultinject.TargetGyro,
		Start: 90 * time.Second, Duration: 2 * time.Second,
	}
	return core.CaseResult{
		Case: core.Case{ID: "x", MissionID: missionID, Injection: inj},
		Result: sim.Result{
			MissionID: missionID, Outcome: outcome,
			InnerViolations: inner, FlightDurationSec: dur,
			CrashReason: crashReason, FailsafeCause: fsCause,
		},
	}
}

func sample() []core.CaseResult {
	return []core.CaseResult{
		mk(1, sim.OutcomeCompleted, 2, 470, "", ""),
		mk(1, sim.OutcomeCrash, 5, 95, "hard impact", ""),
		mk(2, sim.OutcomeFailsafe, 1, 100, "", "gyro-rate"),
		mk(2, sim.OutcomeCrash, 3, 92, "flip-over", ""),
		mk(10, sim.OutcomeCompleted, 0, 460, "", ""),
		// Gold and errored cases must be excluded everywhere.
		{Case: core.Case{ID: "gold", MissionID: 1}, Result: sim.Result{Outcome: sim.OutcomeCompleted}},
		{Case: core.Case{ID: "err", MissionID: 3}, Err: "boom"},
	}
}

func TestByMission(t *testing.T) {
	rows := ByMission(sample(), mission.Valencia())
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	m1 := rows[0]
	if m1.MissionID != 1 || m1.N != 2 || m1.CompletedPct != 50 || m1.CrashPct != 50 {
		t.Errorf("mission 1 breakdown = %+v", m1)
	}
	if m1.MeanInner != 3.5 {
		t.Errorf("mission 1 mean inner = %v, want 3.5", m1.MeanInner)
	}
	if m1.SpeedKmh != 5 {
		t.Errorf("mission 1 speed = %v, want 5 km/h", m1.SpeedKmh)
	}
	m10 := rows[2]
	if m10.MissionID != 10 || m10.SpeedKmh != 25 || !m10.HasTurns {
		t.Errorf("mission 10 breakdown = %+v", m10)
	}
}

func TestBySpeed(t *testing.T) {
	rows := BySpeed(sample(), mission.Valencia())
	// Missions 1 (5 km/h), 2 (5 km/h), 10 (25 km/h) -> two speed classes.
	if len(rows) != 2 {
		t.Fatalf("speed rows = %d, want 2", len(rows))
	}
	if rows[0].SpeedKmh != 5 || rows[0].Missions != 2 || rows[0].N != 4 {
		t.Errorf("5 km/h row = %+v", rows[0])
	}
	if rows[1].SpeedKmh != 25 || rows[1].CompletedPct != 100 {
		t.Errorf("25 km/h row = %+v", rows[1])
	}
}

func TestFailureLatency(t *testing.T) {
	lat := FailureLatency(sample())
	// Failed runs at 95, 100, 92 s with onset 90 -> latencies 5, 10, 2.
	if lat.N != 3 {
		t.Fatalf("latency N = %d", lat.N)
	}
	if lat.OnsetS != 90 {
		t.Errorf("onset = %v", lat.OnsetS)
	}
	wantMean := (5.0 + 10 + 2) / 3
	if lat.MeanS != wantMean {
		t.Errorf("mean = %v, want %v", lat.MeanS, wantMean)
	}
	if lat.P50S != 5 || lat.MaxS != 10 {
		t.Errorf("p50/max = %v/%v", lat.P50S, lat.MaxS)
	}
}

func TestFailureLatencyEmpty(t *testing.T) {
	if got := FailureLatency(nil); got.N != 0 {
		t.Errorf("empty latency = %+v", got)
	}
}

func TestCauseComposition(t *testing.T) {
	comp := CauseComposition(sample())
	if comp["completed"] != 2 {
		t.Errorf("completed = %d", comp["completed"])
	}
	if comp["crash: hard impact"] != 1 || comp["crash: flip-over"] != 1 {
		t.Errorf("crash causes = %+v", comp)
	}
	if comp["failsafe: gyro-rate"] != 1 {
		t.Errorf("failsafe causes = %+v", comp)
	}
}

func TestRenderMarkdown(t *testing.T) {
	md := RenderMarkdown(sample(), mission.Valencia())
	for _, want := range []string{
		"# Campaign secondary analysis",
		"Per-mission sensitivity",
		"Per-speed-class sensitivity",
		"Failure latency",
		"Outcome composition",
		"north-south slow survey", // mission 1's name
		"crash: hard impact",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
