package uspace

import (
	"errors"
	"io"
	"sync"
	"testing"

	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/sim"
	"uavres/internal/telemetry"
)

// TestFlightThroughBrokerToUspace exercises the full Fig. 1 data path:
// a simulated flight publishes tracker-rate telemetry through the TCP
// broker; the U-space tracking service consumes it and reconstructs the
// flight's bubble-violation record.
func TestFlightThroughBrokerToUspace(t *testing.T) {
	broker, err := telemetry.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	sub, err := telemetry.NewSubscriber(broker.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	tracker := NewTracker()
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	var pumpErr error
	go func() {
		defer pumpWG.Done()
		pumpErr = Pump(sub, tracker)
	}()

	// Subscriber registration is asynchronous (the broker registers it
	// after reading the role byte); under load the whole flight could
	// stream before that happens and every frame would fan out to nobody.
	broker.WaitStats(func(st telemetry.BrokerStats) bool { return st.Subscribers >= 1 })

	pub, err := telemetry.NewPublisher(broker.Addr())
	if err != nil {
		t.Fatal(err)
	}
	client := telemetry.NewTrackerClient(pub, 42)

	m := mission.Mission{
		ID: 42, Name: "telemetry hop", CruiseSpeedMS: 3.3, AltitudeM: 15,
		Drone:     mission.DroneSpec{Name: "t", DimensionM: 0.8, SafetyDistM: 2, MaxSpeedMS: 5},
		Start:     mathx.V3(0, 0, 0),
		Waypoints: []mathx.Vec3{{X: 0, Y: 100, Z: -15}},
	}
	res, err := sim.Run(sim.DefaultConfig(), m, nil, client.Observe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != sim.OutcomeCompleted {
		t.Fatalf("flight outcome = %v", res.Outcome)
	}
	select {
	case err := <-client.Errs():
		t.Fatalf("telemetry publish error: %v", err)
	default:
	}
	pub.Close()
	// Closing the broker immediately would race the tail of the stream:
	// under load (race detector, parallel packages) it can tear down
	// before ingesting the publisher's final frames. Once the broker has
	// observed the publisher's disconnect it has read — and synchronously
	// fanned out — everything the publisher ever sent; Close then flushes
	// the subscriber's queued frames before dropping its connection.
	broker.WaitStats(func(st telemetry.BrokerStats) bool { return st.Publishers == 0 })
	broker.Close()
	pumpWG.Wait()
	if pumpErr != nil && !errors.Is(pumpErr, io.EOF) {
		// Connection teardown errors are expected forms of stream end.
		t.Logf("pump ended with: %v", pumpErr)
	}

	d, tracked := tracker.Drone(42)
	if !tracked {
		t.Fatal("U-space never saw drone 42")
	}
	// The last report should be near the landing site (waypoint, ground).
	if d.Pos.DistXY(mathx.V3(0, 100, 0)) > 10 {
		t.Errorf("last tracked position %v, want near (0, 100)", d.Pos)
	}
	// A gold run reports no violations; radii must have been transported.
	if d.InnerViolations != res.InnerViolations || d.OuterViolations != res.OuterViolations {
		t.Errorf("U-space violations %d/%d, sim reported %d/%d",
			d.InnerViolations, d.OuterViolations, res.InnerViolations, res.OuterViolations)
	}
	if d.InnerRadius <= 0 || d.OuterRadius < d.InnerRadius {
		t.Errorf("bubble radii %v/%v", d.InnerRadius, d.OuterRadius)
	}
	if got := broker.Stats(); got.FramesIn < 50 {
		t.Errorf("broker forwarded only %d frames for a ~55 s flight", got.FramesIn)
	}
}
