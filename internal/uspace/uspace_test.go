package uspace

import (
	"strings"
	"sync"
	"testing"

	"uavres/internal/mathx"
)

func TestTrackerMaintainsStates(t *testing.T) {
	tr := NewTracker()
	tr.ReportPosition(1, 10, mathx.V3(100, 0, -15), mathx.V3(3, 0, 0))
	tr.ReportPosition(2, 10, mathx.V3(500, 500, -15), mathx.Zero3)
	tr.ReportBubble(1, 10, 5, 6, false, false)

	drones := tr.Drones()
	if len(drones) != 2 {
		t.Fatalf("drones = %d", len(drones))
	}
	if drones[0].SysID != 1 || drones[1].SysID != 2 {
		t.Errorf("order: %d, %d", drones[0].SysID, drones[1].SysID)
	}
	d1, exists := tr.Drone(1)
	if !exists || d1.Pos != mathx.V3(100, 0, -15) || d1.InnerRadius != 5 {
		t.Errorf("drone 1 = %+v", d1)
	}
	if _, exists := tr.Drone(99); exists {
		t.Error("phantom drone tracked")
	}
}

func TestBubbleViolationAccumulation(t *testing.T) {
	tr := NewTracker()
	tr.ReportBubble(3, 1, 5, 6, true, false)
	tr.ReportBubble(3, 2, 5, 6, true, true)
	tr.ReportBubble(3, 3, 5, 6, false, false)
	d, _ := tr.Drone(3)
	if d.InnerViolations != 2 || d.OuterViolations != 1 {
		t.Errorf("violations = %d/%d, want 2/1", d.InnerViolations, d.OuterViolations)
	}
}

func TestSeparationConflictDetected(t *testing.T) {
	tr := NewTracker()
	tr.ReportBubble(1, 10, 5, 8, false, false)
	tr.ReportBubble(2, 10, 5, 8, false, false)
	tr.ReportPosition(1, 10, mathx.V3(0, 0, -15), mathx.Zero3)
	// 12 m apart with 8+8=16 m required: outer conflict, not critical.
	tr.ReportPosition(2, 10.2, mathx.V3(12, 0, -15), mathx.Zero3)

	conflicts := tr.Conflicts()
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(conflicts))
	}
	c := conflicts[0]
	if c.A != 1 || c.B != 2 || c.Critical {
		t.Errorf("conflict = %+v", c)
	}
	if c.DistanceM != 12 || c.RequiredM != 16 {
		t.Errorf("distances = %v/%v", c.DistanceM, c.RequiredM)
	}
}

func TestCriticalConflict(t *testing.T) {
	tr := NewTracker()
	tr.ReportBubble(1, 10, 5, 8, false, false)
	tr.ReportBubble(2, 10, 5, 8, false, false)
	tr.ReportPosition(1, 10, mathx.Zero3, mathx.Zero3)
	tr.ReportPosition(2, 10.1, mathx.V3(6, 0, 0), mathx.Zero3) // < 5+5

	conflicts := tr.Conflicts()
	if len(conflicts) != 1 || !conflicts[0].Critical {
		t.Fatalf("conflicts = %+v", conflicts)
	}
	if conflicts[0].RequiredM != 10 {
		t.Errorf("critical required = %v, want inner sum 10", conflicts[0].RequiredM)
	}
}

func TestNoConflictWhenSeparated(t *testing.T) {
	tr := NewTracker()
	tr.ReportBubble(1, 10, 5, 8, false, false)
	tr.ReportBubble(2, 10, 5, 8, false, false)
	tr.ReportPosition(1, 10, mathx.Zero3, mathx.Zero3)
	tr.ReportPosition(2, 10, mathx.V3(100, 0, 0), mathx.Zero3)
	if got := tr.Conflicts(); len(got) != 0 {
		t.Errorf("conflicts = %+v", got)
	}
}

func TestConflictDeduplicatedPerSecond(t *testing.T) {
	tr := NewTracker()
	tr.ReportBubble(1, 10, 5, 8, false, false)
	tr.ReportBubble(2, 10, 5, 8, false, false)
	// Several sub-second reports of the same infringement.
	for _, tm := range []float64{10.0, 10.2, 10.4, 10.6} {
		tr.ReportPosition(1, tm, mathx.Zero3, mathx.Zero3)
		tr.ReportPosition(2, tm, mathx.V3(10, 0, 0), mathx.Zero3)
	}
	if got := len(tr.Conflicts()); got != 1 {
		t.Errorf("conflicts = %d, want 1 (deduplicated)", got)
	}
	// After a second, the persisting conflict is recorded again.
	tr.ReportPosition(1, 11.2, mathx.Zero3, mathx.Zero3)
	if got := len(tr.Conflicts()); got != 2 {
		t.Errorf("conflicts = %d, want 2", got)
	}
}

func TestStaleTracksIgnored(t *testing.T) {
	tr := NewTracker()
	tr.ReportBubble(1, 10, 5, 8, false, false)
	tr.ReportBubble(2, 10, 5, 8, false, false)
	tr.ReportPosition(1, 10, mathx.Zero3, mathx.Zero3)
	// Drone 2 reports 100 s later at the same spot: drone 1's track is
	// long stale; no conflict can be concluded.
	tr.ReportPosition(2, 110, mathx.V3(3, 0, 0), mathx.Zero3)
	if got := tr.Conflicts(); len(got) != 0 {
		t.Errorf("conflicts with stale track = %+v", got)
	}
}

func TestZeroBubblesNeverConflict(t *testing.T) {
	tr := NewTracker()
	// No bubble reports: radii zero, separation undefined.
	tr.ReportPosition(1, 10, mathx.Zero3, mathx.Zero3)
	tr.ReportPosition(2, 10, mathx.V3(0.5, 0, 0), mathx.Zero3)
	if got := tr.Conflicts(); len(got) != 0 {
		t.Errorf("conflicts without bubbles = %+v", got)
	}
}

func TestSummaryRendering(t *testing.T) {
	tr := NewTracker()
	tr.ReportPosition(4, 10, mathx.V3(1, 2, -15), mathx.Zero3)
	s := tr.Summary()
	if !strings.Contains(s, "1 drones") || !strings.Contains(s, "drone 4") {
		t.Errorf("summary = %q", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for id := uint8(1); id <= 4; id++ {
		wg.Add(1)
		go func(id uint8) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tm := float64(i) * 0.01
				tr.ReportPosition(id, tm, mathx.V3(float64(id)*100, float64(i), -15), mathx.Zero3)
				tr.ReportBubble(id, tm, 5, 8, i%7 == 0, false)
			}
		}(id)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Drones()
			tr.Conflicts()
		}
	}()
	wg.Wait()
	<-done
	if len(tr.Drones()) != 4 {
		t.Errorf("drones = %d", len(tr.Drones()))
	}
}
