package uspace

import (
	"uavres/internal/mathx"
	"uavres/internal/telemetry"
)

// FrameSource yields telemetry frames until the stream ends (the
// *telemetry.Subscriber interface surface the pump needs).
type FrameSource interface {
	Next() (telemetry.Frame, error)
}

// Pump decodes frames from src into tracker reports until the source
// errors (broker shutdown, connection loss). Unknown or malformed frames
// are skipped: one bad publisher must not take down airspace tracking.
// It returns the terminating error.
func Pump(src FrameSource, tracker *Tracker) error {
	for {
		f, err := src.Next()
		if err != nil {
			return err
		}
		switch f.MsgID {
		case telemetry.MsgPosition:
			p, err := telemetry.DecodePosition(f)
			if err != nil {
				continue
			}
			tracker.ReportPosition(f.SysID, p.TimeSec,
				mathx.V3(p.X, p.Y, p.Z), mathx.V3(p.VX, p.VY, p.VZ))
		case telemetry.MsgBubble:
			b, err := telemetry.DecodeBubble(f)
			if err != nil {
				continue
			}
			tracker.ReportBubble(f.SysID, b.TimeSec,
				b.InnerRadiusM, b.OuterRadiusM, b.InnerViolated, b.OuterViolated)
		}
	}
}
