package uspace

import (
	"errors"
	"io"
	"testing"

	"uavres/internal/telemetry"
)

// frameQueue is an in-memory FrameSource.
type frameQueue struct {
	frames []telemetry.Frame
	idx    int
}

func (q *frameQueue) Next() (telemetry.Frame, error) {
	if q.idx >= len(q.frames) {
		return telemetry.Frame{}, io.EOF
	}
	f := q.frames[q.idx]
	q.idx++
	return f, nil
}

func TestPumpFeedsTracker(t *testing.T) {
	pos, err := telemetry.EncodePosition(0, 7, telemetry.Position{TimeSec: 5, X: 10, Y: 20, Z: -15})
	if err != nil {
		t.Fatal(err)
	}
	bub, err := telemetry.EncodeBubble(1, 7, telemetry.Bubble{TimeSec: 5, InnerRadiusM: 5, OuterRadiusM: 6, InnerViolated: true})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := telemetry.EncodeHeartbeat(2, 7, telemetry.Heartbeat{TimeSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A malformed position frame (wrong payload length) must be skipped.
	malformed := telemetry.Frame{SysID: 9, MsgID: telemetry.MsgPosition, Payload: []byte{1, 2, 3}}

	tr := NewTracker()
	err = Pump(&frameQueue{frames: []telemetry.Frame{pos, bub, hb, malformed}}, tr)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("pump ended with %v", err)
	}
	d, exists := tr.Drone(7)
	if !exists {
		t.Fatal("drone 7 not tracked")
	}
	if d.Pos.X != 10 || d.InnerRadius != 5 || d.InnerViolations != 1 {
		t.Errorf("tracked state = %+v", d)
	}
	if _, exists := tr.Drone(9); exists {
		t.Error("malformed frame created a track")
	}
}
