// Package uspace implements the U-space-side tracking service: it
// consumes telemetry position reports from the broker, maintains the last
// known state of every drone in the airspace, and monitors pairwise
// separation using the two-layer bubble model — the "tracker" box of the
// paper's platform (Fig. 1) and the conflict-rate machinery of the
// authors' companion study.
package uspace

import (
	"fmt"
	"sort"
	"sync"

	"uavres/internal/mathx"
)

// DroneState is the tracker's last known state for one drone.
type DroneState struct {
	// SysID identifies the drone (mission number).
	SysID uint8
	// TimeSec is the report timestamp.
	TimeSec float64
	// Pos and Vel are the reported NED position and velocity.
	Pos mathx.Vec3
	Vel mathx.Vec3
	// InnerRadius and OuterRadius are the drone's current bubble radii
	// (zero until a bubble report arrives).
	InnerRadius float64
	OuterRadius float64
	// InnerViolations and OuterViolations accumulate reported
	// own-volume violations.
	InnerViolations int
	OuterViolations int
	// HasPosition is false until the first position report arrives; a
	// bubble-only track carries no usable location.
	HasPosition bool
}

// Conflict is one pairwise separation infringement: two drones closer
// than the sum of their bubbles.
type Conflict struct {
	A, B      uint8
	TimeSec   float64
	DistanceM float64
	// RequiredM is the separation that should have been kept (sum of
	// outer radii; inner if Severity is SeverityCritical).
	RequiredM float64
	// Critical marks an inner-bubble (alert-layer) infringement.
	Critical bool
}

// Tracker is the U-space tracking/separation service. Safe for concurrent
// use: the telemetry pump and monitoring queries may run on different
// goroutines.
type Tracker struct {
	mu     sync.Mutex
	drones map[uint8]*DroneState // guarded by mu
	// conflicts accumulates detected infringements (deduplicated per
	// pair per tracking second). guarded by mu.
	conflicts []Conflict
	lastPair  map[[2]uint8]float64 // guarded by mu
}

// NewTracker returns an empty tracking service.
func NewTracker() *Tracker {
	return &Tracker{
		drones:   map[uint8]*DroneState{},
		lastPair: map[[2]uint8]float64{},
	}
}

// ReportPosition ingests a position report and re-evaluates separation.
func (tr *Tracker) ReportPosition(sysID uint8, timeSec float64, pos, vel mathx.Vec3) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	d := tr.droneLocked(sysID)
	d.TimeSec = timeSec
	d.Pos = pos
	d.Vel = vel
	d.HasPosition = true
	tr.checkSeparationLocked(d)
}

// ReportBubble ingests a bubble status report.
func (tr *Tracker) ReportBubble(sysID uint8, timeSec float64, innerR, outerR float64, innerViolated, outerViolated bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	d := tr.droneLocked(sysID)
	d.TimeSec = timeSec
	d.InnerRadius = innerR
	d.OuterRadius = outerR
	if innerViolated {
		d.InnerViolations++
	}
	if outerViolated {
		d.OuterViolations++
	}
}

func (tr *Tracker) droneLocked(sysID uint8) *DroneState {
	d, exists := tr.drones[sysID]
	if !exists {
		d = &DroneState{SysID: sysID}
		tr.drones[sysID] = d
	}
	return d
}

// checkSeparationLocked evaluates the moved drone against every other
// tracked drone. The caller holds tr.mu, as the name demands.
func (tr *Tracker) checkSeparationLocked(moved *DroneState) {
	for _, other := range tr.drones {
		if other.SysID == moved.SysID || !other.HasPosition {
			continue
		}
		// Stale tracks (no report within 5 s of the mover's clock) are
		// not comparable.
		if moved.TimeSec-other.TimeSec > 5 || other.TimeSec-moved.TimeSec > 5 {
			continue
		}
		dist := moved.Pos.Dist(other.Pos)
		outerReq := moved.OuterRadius + other.OuterRadius
		innerReq := moved.InnerRadius + other.InnerRadius
		if outerReq <= 0 || dist >= outerReq {
			continue
		}
		pair := pairKey(moved.SysID, other.SysID)
		// One conflict record per pair per tracking second.
		if last, seen := tr.lastPair[pair]; seen && moved.TimeSec-last < 1 {
			continue
		}
		tr.lastPair[pair] = moved.TimeSec
		c := Conflict{
			A: pair[0], B: pair[1], TimeSec: moved.TimeSec,
			DistanceM: dist, RequiredM: outerReq,
			Critical: innerReq > 0 && dist < innerReq,
		}
		if c.Critical {
			c.RequiredM = innerReq
		}
		tr.conflicts = append(tr.conflicts, c)
	}
}

func pairKey(a, b uint8) [2]uint8 {
	if a > b {
		a, b = b, a
	}
	return [2]uint8{a, b}
}

// Drones returns a snapshot of all tracked drones, ordered by SysID.
func (tr *Tracker) Drones() []DroneState {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]DroneState, 0, len(tr.drones))
	for _, d := range tr.drones {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SysID < out[j].SysID })
	return out
}

// Drone returns the state for one drone.
func (tr *Tracker) Drone(sysID uint8) (DroneState, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	d, exists := tr.drones[sysID]
	if !exists {
		return DroneState{}, false
	}
	return *d, true
}

// Conflicts returns a snapshot of all recorded separation conflicts.
func (tr *Tracker) Conflicts() []Conflict {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Conflict, len(tr.conflicts))
	copy(out, tr.conflicts)
	return out
}

// Summary renders a one-line-per-drone airspace picture.
func (tr *Tracker) Summary() string {
	drones := tr.Drones()
	conflicts := tr.Conflicts()
	s := fmt.Sprintf("airspace: %d drones, %d conflicts\n", len(drones), len(conflicts))
	for _, d := range drones {
		s += fmt.Sprintf("  drone %d: t=%.1fs pos=%s bubbles=%.1f/%.1fm violations=%d/%d\n",
			d.SysID, d.TimeSec, d.Pos, d.InnerRadius, d.OuterRadius,
			d.InnerViolations, d.OuterViolations)
	}
	return s
}
