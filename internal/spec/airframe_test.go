package spec

import (
	"strings"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/physics"
	"uavres/internal/sim"
)

// TestPinnedFingerprints pins exact fingerprint values captured before the
// airframe refactor landed. These are the contract with every stored
// result: a legacy case (no Airframe, no actuator fields) must keep
// hashing to the same digest forever, or resume and the content-addressed
// store silently orphan their history. If this test fails, the fix is
// NEVER to update the constants — it is to make the new field optional in
// the digest again.
func TestPinnedFingerprints(t *testing.T) {
	cfg := sim.DefaultConfig()
	cases, err := Paper(1).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]core.Case{}
	for _, c := range cases {
		byID[c.ID] = c
	}

	pinned := []struct {
		id   string
		hash string
	}{
		{"m01-gold", "4759303dee863c5e"},
		{"m01-gyro-freeze-10s", "dc60412d2c285d2e"},
		{"m04-acc-zeros-2s", "2127d5c726619e2d"},
	}
	for _, p := range pinned {
		c, ok := byID[p.id]
		if !ok {
			t.Fatalf("case %s missing from Paper(1)", p.id)
		}
		if got := Fingerprint(c, cfg); got != p.hash {
			t.Errorf("%s fingerprint = %s, want pinned %s", p.id, got, p.hash)
		}
	}
	if got := byID["m01-gold"].Seed; got != 8693678978585383319 {
		t.Errorf("m01 environment seed = %d, want pinned 8693678978585383319", got)
	}
	if got := byID["m04-acc-zeros-2s"].Seed; got != 5651673829277496530 {
		t.Errorf("m04 environment seed = %d, want pinned 5651673829277496530", got)
	}

	// A scoped hand-built case, exercising the scope/unit digest path.
	scoped := core.Case{
		ID: "x-scoped", MissionID: 2, Seed: 7,
		Injection: &faultinject.Injection{
			Primitive: faultinject.Noise, Target: faultinject.TargetGyro,
			Start: 90 * time.Second, Duration: 5 * time.Second,
			Scope: faultinject.ScopePrimaryUnit, Seed: 42,
		},
	}
	if got := Fingerprint(scoped, cfg); got != "5d48bb2311489b35" {
		t.Errorf("scoped fingerprint = %s, want pinned 5d48bb2311489b35", got)
	}

	if got := Paper(1).Hash(); got != "88cca60c440ba965" {
		t.Errorf("Paper(1) spec hash = %s, want pinned 88cca60c440ba965", got)
	}
}

func airframeSpec(frames ...string) CampaignSpec {
	return CampaignSpec{
		Version:   1,
		Airframes: frames,
		Matrix: Matrix{
			Targets:      []string{"gyro"},
			Primitives:   []string{"freeze"},
			DurationsSec: []float64{10},
		},
		Missions: []int{1},
	}
}

// TestCompileAirframeAxis: the airframes axis multiplies the grid with
// suffixed IDs, a shared per-mission environment seed, and — critically —
// an empty Airframe field for quad-x so pre-axis plans keep their
// fingerprints.
func TestCompileAirframeAxis(t *testing.T) {
	s := airframeSpec("quad-x", "hexa-x", "octo-x")
	cases, err := s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{
		"m01-gold", "m01-gyro-freeze-10s",
		"m01-gold-hexa", "m01-gyro-freeze-10s-hexa",
		"m01-gold-octo", "m01-gyro-freeze-10s-octo",
	}
	if len(cases) != len(wantIDs) {
		t.Fatalf("compiled %d cases, want %d", len(cases), len(wantIDs))
	}
	wantFrames := []string{"", "", "hexa-x", "hexa-x", "octo-x", "octo-x"}
	for i, c := range cases {
		if c.ID != wantIDs[i] {
			t.Errorf("case %d ID = %q, want %q", i, c.ID, wantIDs[i])
		}
		if c.Airframe != wantFrames[i] {
			t.Errorf("case %s Airframe = %q, want %q", c.ID, c.Airframe, wantFrames[i])
		}
		// Environment and injection seeds are airframe-invariant: the
		// redundancy comparison varies the vehicle, not the weather.
		if c.Seed != cases[0].Seed {
			t.Errorf("case %s environment seed %d != quad's %d", c.ID, c.Seed, cases[0].Seed)
		}
		if c.Injection != nil && c.Injection.Seed != cases[1].Injection.Seed {
			t.Errorf("case %s injection seed differs from quad's", c.ID)
		}
	}

	// Default (no axis) must compile identically to an explicit quad-x.
	defCases, err := airframeSpec().Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	quadOnly, err := airframeSpec("quad-x").Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(defCases) != 2 || len(quadOnly) != 2 {
		t.Fatalf("quad-only compile sizes %d, %d, want 2", len(defCases), len(quadOnly))
	}
	for i := range defCases {
		if defCases[i].ID != quadOnly[i].ID || defCases[i].Airframe != "" || quadOnly[i].Airframe != "" {
			t.Errorf("quad default mismatch at %d: %+v vs %+v", i, defCases[i], quadOnly[i])
		}
	}

	if _, err := airframeSpec("tri-y").Compile(nil); err == nil {
		t.Error("unknown airframe accepted")
	}
}

// TestCompileActuatorAxis: the actuators axis compiles rotor-fault cases
// with their own ID scheme, all-units scope, and the LoE factor applied
// only to loss-of-effectiveness injections.
func TestCompileActuatorAxis(t *testing.T) {
	s := airframeSpec("hexa-x")
	s.Gold = boolp(false)
	s.Matrix.Actuators = []string{"loe", "stuck", "float"}
	s.Matrix.ActuatorRotors = []int{0, 2}
	s.Matrix.LoEFactor = 0.3
	cases, err := s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1 sensor combo + 3 actuators x 2 rotors.
	if len(cases) != 7 {
		t.Fatalf("compiled %d cases, want 7", len(cases))
	}
	seeds := map[int64]bool{cases[0].Injection.Seed: true}
	for _, c := range cases[1:] {
		in := c.Injection
		if in.Target != faultinject.TargetRotor {
			t.Errorf("%s target = %v, want rotor", c.ID, in.Target)
		}
		if in.Scope != faultinject.ScopeAllUnits {
			t.Errorf("%s scope = %v, want all units", c.ID, in.Scope)
		}
		if in.Primitive == faultinject.LossOfEffectiveness {
			if in.Factor != 0.3 {
				t.Errorf("%s LoE factor = %v, want 0.3", c.ID, in.Factor)
			}
		} else if in.Factor != 0 {
			t.Errorf("%s non-LoE factor = %v, want 0", c.ID, in.Factor)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s compiled an invalid injection: %v", c.ID, err)
		}
		if seeds[in.Seed] {
			t.Errorf("%s reuses an injection seed", c.ID)
		}
		seeds[in.Seed] = true
	}
	if got, want := cases[1].ID, "m01-r0-loe-10s-hexa"; got != want {
		t.Errorf("first actuator ID = %q, want %q", got, want)
	}
	if got, want := cases[2].ID, "m01-r2-loe-10s-hexa"; got != want {
		t.Errorf("second actuator ID = %q, want %q", got, want)
	}

	// A rotor index beyond the frame's rotor count is a compile error.
	s.Matrix.ActuatorRotors = []int{7}
	if _, err := s.Compile(nil); err == nil ||
		!strings.Contains(err.Error(), "does not exist on hexa-x") {
		t.Errorf("rotor 7 on hexa accepted (err %v)", err)
	}
}

// TestActuatorMatrixValidation: axis misuse fails at parse/validate time
// with an error naming the right axis.
func TestActuatorMatrixValidation(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*CampaignSpec)
	}{
		{"rotor_in_targets", func(s *CampaignSpec) { s.Matrix.Targets = []string{"rotor"} }},
		{"actuator_in_primitives", func(s *CampaignSpec) { s.Matrix.Primitives = []string{"loe"} }},
		{"sensor_in_actuators", func(s *CampaignSpec) { s.Matrix.Actuators = []string{"freeze"} }},
		{"rotor_out_of_range", func(s *CampaignSpec) {
			s.Matrix.Actuators = []string{"loe"}
			s.Matrix.ActuatorRotors = []int{physics.MaxRotors}
		}},
		{"rotors_without_actuators", func(s *CampaignSpec) { s.Matrix.ActuatorRotors = []int{0} }},
		{"loe_factor_too_high", func(s *CampaignSpec) {
			s.Matrix.Actuators = []string{"loe"}
			s.Matrix.LoEFactor = 1.0
		}},
		{"loe_factor_negative", func(s *CampaignSpec) {
			s.Matrix.Actuators = []string{"loe"}
			s.Matrix.LoEFactor = -0.5
		}},
	}
	for _, tt := range mutate {
		t.Run(tt.name, func(t *testing.T) {
			s := airframeSpec()
			tt.f(&s)
			if _, err := s.Compile(nil); err == nil {
				t.Error("invalid matrix accepted")
			}
		})
	}
}

// TestSelectorAirframe: the airframe selector key matches compiled cases,
// treating an empty Case.Airframe as quad-x.
func TestSelectorAirframe(t *testing.T) {
	sel, err := ParseSelector("airframe=hexa-x")
	if err != nil {
		t.Fatal(err)
	}
	s := airframeSpec("quad-x", "hexa-x")
	s.Select = []Selector{sel}
	cases, err := s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("selector kept %d cases, want 2", len(cases))
	}
	for _, c := range cases {
		if !strings.HasSuffix(c.ID, "-hexa") {
			t.Errorf("selector kept non-hexa case %s", c.ID)
		}
	}

	quadSel, err := ParseSelector("frame=quad-x")
	if err != nil {
		t.Fatal(err)
	}
	if !quadSel.Matches(core.Case{ID: "m01-gold", MissionID: 1}) {
		t.Error("quad selector rejects a legacy empty-Airframe case")
	}
	if quadSel.Matches(core.Case{ID: "m01-gold-hexa", MissionID: 1, Airframe: "hexa-x"}) {
		t.Error("quad selector accepts a hexa case")
	}

	if _, err := ParseSelector("airframe=warp-core"); err == nil {
		t.Error("unknown airframe selector accepted")
	}
}
