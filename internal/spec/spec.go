// Package spec defines the declarative, versioned campaign specification:
// the experiment plan as data. A CampaignSpec names the missions, an
// injection matrix (targets x primitives x durations x start times), a
// seed policy, simulation-config overrides, and case selectors; Compile
// turns it into the []core.Case the one execution engine (core.Runner)
// consumes. The paper's 850-case design is the canonical built-in spec
// (Paper), golden-tested to reproduce core.Plan's case IDs and seeds
// bit-for-bit; sweeps, grids, and ablations are just other specs.
//
// Specs are plain JSON, so an experiment is reviewable, diffable, and
// hashable: Fingerprint digests one case plus the code-relevant sim
// config into the content hash that drives cached/resumable campaigns
// (core.PlanResume).
package spec

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/mathx"
	"uavres/internal/mission"
	"uavres/internal/physics"
	"uavres/internal/sim"
)

// Version is the spec schema version this package compiles.
const Version = 1

// PaperStartSec is the paper's canonical injection start (T+90 s). Cases
// starting there keep the legacy ID format ("m04-gyro-freeze-10s"); any
// other start is suffixed ("-t30s") so IDs stay unique across grids.
const PaperStartSec = 90

// CampaignSpec is one declarative experiment plan.
type CampaignSpec struct {
	// Version must equal Version (1). Unknown versions are rejected so a
	// future schema change cannot silently recompile an old spec.
	Version int `json:"version"`
	// Name labels the spec in reports and bench metadata.
	Name string `json:"name,omitempty"`
	// Seed is the campaign base seed (0 means 1).
	Seed int64 `json:"seed,omitempty"`
	// Missions lists scenario mission IDs; empty means every mission.
	Missions []int `json:"missions,omitempty"`
	// Airframes lists the rotor layouts the whole matrix flies on, parsed
	// by physics.ParseAirframe ("quad-x", "hexa-x", "octo-x"); empty means
	// the default quad-x. Quad-x cases keep their legacy IDs and an empty
	// Case.Airframe (so pre-airframe fingerprints survive); other layouts
	// suffix every case ID ("-hexa", "-octo") and stamp Case.Airframe.
	// Every airframe shares the mission's environment seed: the redundancy
	// comparison varies the VEHICLE between cases, not the weather.
	Airframes []string `json:"airframes,omitempty"`
	// Gold controls the one fault-free reference run per mission.
	// Omitted (null) means true, matching the paper.
	Gold *bool `json:"gold,omitempty"`
	// Matrix is the injection grid; its zero value is the paper's.
	Matrix Matrix `json:"matrix"`
	// Seeds selects how per-case seeds derive from Seed.
	Seeds SeedPolicy `json:"seeds,omitempty"`
	// Overrides adjusts the simulation config for every case.
	Overrides Overrides `json:"overrides,omitempty"`
	// Select keeps only matching cases (OR across selectors; empty
	// keeps everything).
	Select []Selector `json:"select,omitempty"`
}

// Matrix is the injection grid: the cartesian product of targets,
// primitives, durations, and start times, applied to every mission.
// Empty axes default to the paper's values.
type Matrix struct {
	// Targets are parsed by faultinject.ParseTarget ("acc", "gyro",
	// "imu"); empty means all three.
	Targets []string `json:"targets,omitempty"`
	// Primitives are parsed by faultinject.ParsePrimitive ("zeros",
	// "freeze", ...); empty means all seven.
	Primitives []string `json:"primitives,omitempty"`
	// DurationsSec defaults to the paper's {2, 5, 10, 30}.
	DurationsSec []float64 `json:"durations_sec,omitempty"`
	// StartsSec defaults to {PaperStartSec}.
	StartsSec []float64 `json:"starts_sec,omitempty"`
	// Scope is parsed by faultinject.ParseScope; empty means all-units,
	// the paper's assumption.
	Scope string `json:"scope,omitempty"`
	// Actuators lists actuator fault primitives ("loe", "stuck", "float")
	// expanded per rotor alongside the sensor grid; empty means no
	// actuator cases. Actuator injections always use all-units scope (a
	// rotor fault has no per-IMU addressing) and share the durations and
	// starts axes.
	Actuators []string `json:"actuators,omitempty"`
	// ActuatorRotors lists the rotor indices actuator faults target;
	// empty means {0}. Every index must exist on every listed airframe.
	ActuatorRotors []int `json:"actuator_rotors,omitempty"`
	// LoEFactor is the thrust multiplier "loe" cases apply to the faulted
	// rotor; 0 means faultinject.DefaultLoEFactor.
	LoEFactor float64 `json:"loe_factor,omitempty"`
}

// SeedPolicy selects the per-case seed derivation.
type SeedPolicy struct {
	// Kind is "mixed" (default: core.CaseSeed splitmix-style mixing, the
	// paper plan's policy) or "affine" (linear in the mission ID, the
	// historical sweep policy).
	Kind string `json:"kind,omitempty"`
	// Affine parameters: env seed = base + missionID*EnvStride;
	// injection seed = base + missionID*InjStride + InjOffset.
	EnvStride int64 `json:"env_stride,omitempty"`
	InjStride int64 `json:"inj_stride,omitempty"`
	InjOffset int64 `json:"inj_offset,omitempty"`
}

// Overrides are the spec-addressable simulation-config knobs. Pointers
// distinguish "leave the default" (null) from an explicit value.
type Overrides struct {
	// GyroThresholdDegS overrides the failsafe gyro-rate threshold
	// (paper default 60 deg/s).
	GyroThresholdDegS *float64 `json:"gyro_threshold_deg_s,omitempty"`
	// RiskR overrides the outer-bubble risk factor (paper: 1).
	RiskR *float64 `json:"risk_r,omitempty"`
	// CovDecimation overrides the EKF covariance decimation factor.
	CovDecimation *int `json:"cov_decimation,omitempty"`
	// CovSettleSec overrides the post-fault full-rate settle window.
	CovSettleSec *float64 `json:"cov_settle_sec,omitempty"`
	// RedundancyVoting toggles cross-IMU consistency voting.
	RedundancyVoting *bool `json:"redundancy_voting,omitempty"`
	// RNGPolicy selects the environment normal-deviate sampler: "polar"
	// (default, bit-compatible with recorded campaigns) or "ziggurat"
	// (see mathx.ParseNormPolicy).
	RNGPolicy *string `json:"rng_policy,omitempty"`
	// RotorReconfig, when true, arms the per-rotor FDI monitor and the
	// reconfiguring control allocator (mitigation.RotorDefaults) — the
	// mitigation actuator faults need. Omitted or false leaves the legacy
	// sensor-only pipeline (and its fingerprints) untouched.
	RotorReconfig *bool `json:"rotor_reconfig,omitempty"`
}

// Apply folds the overrides into a simulation config.
func (o Overrides) Apply(cfg *sim.Config) {
	if o.RNGPolicy != nil {
		cfg.RNGPolicy = *o.RNGPolicy
	}
	if o.GyroThresholdDegS != nil {
		cfg.Failsafe.GyroRateThreshold = mathx.Deg2Rad(*o.GyroThresholdDegS)
	}
	if o.RiskR != nil {
		cfg.RiskR = *o.RiskR
	}
	if o.CovDecimation != nil {
		cfg.EKF.CovarianceDecimation = *o.CovDecimation
	}
	if o.CovSettleSec != nil {
		cfg.CovSettleSec = *o.CovSettleSec
	}
	if o.RedundancyVoting != nil {
		cfg.RedundancyVoting = *o.RedundancyVoting
	}
	if o.RotorReconfig != nil && *o.RotorReconfig {
		cfg.Mitigation = cfg.Mitigation.RotorDefaults()
	}
}

// Paper returns the canonical built-in spec: the paper's 850-case design
// (21 injection types x 10 missions x 4 durations at T+90 s, plus one
// gold run per mission). Compile(Paper(seed), mission.Valencia()) is
// golden-tested to equal core.Plan(mission.Valencia(), seed).
func Paper(seed int64) CampaignSpec {
	return CampaignSpec{Version: Version, Name: "paper-850", Seed: seed}
}

// Load reads and validates a spec from a JSON file. Unknown fields are
// rejected: a typoed knob must fail loudly, not silently fall back to a
// default.
func Load(path string) (CampaignSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return CampaignSpec{}, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a spec from JSON bytes.
func Parse(data []byte) (CampaignSpec, error) {
	var s CampaignSpec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return CampaignSpec{}, fmt.Errorf("spec: parsing: %w", err)
	}
	if err := s.Validate(); err != nil {
		return CampaignSpec{}, err
	}
	return s, nil
}

// Validate checks the spec without compiling it against a scenario.
func (s CampaignSpec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (this build compiles version %d)", s.Version, Version)
	}
	if _, err := s.Matrix.parse(); err != nil {
		return err
	}
	if _, err := parseAirframes(s.Airframes); err != nil {
		return err
	}
	switch s.Seeds.Kind {
	case "", "mixed", "affine":
	default:
		return fmt.Errorf("spec: unknown seed policy %q (want mixed or affine)", s.Seeds.Kind)
	}
	if o := s.Overrides; o.CovDecimation != nil && *o.CovDecimation < 1 {
		return fmt.Errorf("spec: cov_decimation %d < 1", *o.CovDecimation)
	}
	if o := s.Overrides; o.RNGPolicy != nil {
		if _, err := mathx.ParseNormPolicy(*o.RNGPolicy); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	for i, sel := range s.Select {
		if err := sel.Validate(); err != nil {
			return fmt.Errorf("spec: selector %d: %w", i, err)
		}
	}
	return nil
}

// parsedMatrix is the matrix with every axis resolved to values.
type parsedMatrix struct {
	targets    []faultinject.Target
	primitives []faultinject.Primitive
	durations  []time.Duration
	starts     []time.Duration
	scope      faultinject.Scope
	actuators  []faultinject.Primitive
	rotors     []int
	loe        float64
}

func (m Matrix) parse() (parsedMatrix, error) {
	var p parsedMatrix
	if len(m.Targets) == 0 {
		p.targets = faultinject.Targets()
	} else {
		for _, s := range m.Targets {
			t, err := faultinject.ParseTarget(s)
			if err != nil {
				return p, fmt.Errorf("spec: %w", err)
			}
			if t == faultinject.TargetRotor {
				return p, fmt.Errorf("spec: target %q is the actuator side; list rotor faults under the actuators axis instead", s)
			}
			p.targets = append(p.targets, t)
		}
	}
	if len(m.Primitives) == 0 {
		p.primitives = faultinject.Primitives()
	} else {
		for _, s := range m.Primitives {
			pr, err := faultinject.ParsePrimitive(s)
			if err != nil {
				return p, fmt.Errorf("spec: %w", err)
			}
			if pr.Actuator() {
				return p, fmt.Errorf("spec: primitive %q is an actuator fault; list it under the actuators axis instead", s)
			}
			p.primitives = append(p.primitives, pr)
		}
	}
	for _, s := range m.Actuators {
		pr, err := faultinject.ParsePrimitive(s)
		if err != nil {
			return p, fmt.Errorf("spec: %w", err)
		}
		if !pr.Actuator() {
			return p, fmt.Errorf("spec: actuator %q is a sensor fault; list it under the primitives axis instead", s)
		}
		p.actuators = append(p.actuators, pr)
	}
	if len(p.actuators) > 0 {
		p.rotors = m.ActuatorRotors
		if len(p.rotors) == 0 {
			p.rotors = []int{0}
		}
		for _, r := range p.rotors {
			if r < 0 || r >= physics.MaxRotors {
				return p, fmt.Errorf("spec: actuator rotor %d out of range [0, %d)", r, physics.MaxRotors)
			}
		}
	} else if len(m.ActuatorRotors) > 0 {
		return p, fmt.Errorf("spec: actuator_rotors set but the actuators axis is empty")
	}
	// 0 means "use the faultinject default" and skips the range check.
	if m.LoEFactor < 0 || m.LoEFactor >= 1 {
		return p, fmt.Errorf("spec: loe_factor %v outside (0, 1)", m.LoEFactor)
	}
	p.loe = m.LoEFactor
	durs := m.DurationsSec
	if len(durs) == 0 {
		durs = []float64{2, 5, 10, 30}
	}
	for _, d := range durs {
		if d <= 0 {
			return p, fmt.Errorf("spec: non-positive injection duration %v s", d)
		}
		p.durations = append(p.durations, secToDuration(d))
	}
	starts := m.StartsSec
	if len(starts) == 0 {
		starts = []float64{PaperStartSec}
	}
	for _, st := range starts {
		if st < 0 {
			return p, fmt.Errorf("spec: negative injection start %v s", st)
		}
		p.starts = append(p.starts, secToDuration(st))
	}
	scope, err := faultinject.ParseScope(m.Scope)
	if err != nil {
		return p, fmt.Errorf("spec: %w", err)
	}
	p.scope = scope
	return p, nil
}

// Compile expands the spec against a scenario into executable cases, in
// deterministic order: missions in scenario order, gold first, then
// targets x primitives x durations x starts. Selectors are applied last.
// Compiled cases carry no fingerprint yet — the hash depends on the
// final effective sim config, so AttachFingerprints runs after every
// override source (spec and CLI) has been folded in.
func (s CampaignSpec) Compile(scenario []mission.Mission) ([]core.Case, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, err := s.Matrix.parse()
	if err != nil {
		return nil, err
	}
	if scenario == nil {
		scenario = mission.Valencia()
	}
	missions, err := selectMissions(scenario, s.Missions)
	if err != nil {
		return nil, err
	}
	base := s.Seed
	if base == 0 {
		base = 1
	}
	gold := s.Gold == nil || *s.Gold

	frames, err := parseAirframes(s.Airframes)
	if err != nil {
		return nil, err
	}

	perFrame := (len(m.targets)*len(m.primitives) + len(m.actuators)*len(m.rotors)) *
		len(m.durations) * len(m.starts)
	cases := make([]core.Case, 0, len(missions)*len(frames)*(perFrame+1))
	for _, ms := range missions {
		// Every airframe of one mission shares the environment seed: the
		// redundancy comparison varies the vehicle, not the weather.
		envSeed := s.Seeds.envSeed(base, ms.ID)
		for _, frame := range frames {
			suffix, airframe := "", ""
			if frame != physics.QuadX {
				suffix = "-" + frame.Slug()
				airframe = frame.String()
			}
			if gold {
				cases = append(cases, core.Case{
					ID:        fmt.Sprintf("m%02d-gold%s", ms.ID, suffix),
					MissionID: ms.ID,
					Seed:      envSeed,
					Airframe:  airframe,
				})
			}
			for _, target := range m.targets {
				for _, prim := range m.primitives {
					for _, dur := range m.durations {
						for _, start := range m.starts {
							inj := &faultinject.Injection{
								Primitive: prim,
								Target:    target,
								Start:     start,
								Duration:  dur,
								Scope:     m.scope,
								Seed:      s.Seeds.injSeed(base, ms.ID, target, prim, dur, start),
							}
							cases = append(cases, core.Case{
								ID:        caseID(ms.ID, target, prim, dur, start) + suffix,
								MissionID: ms.ID,
								Injection: inj,
								Seed:      envSeed,
								Airframe:  airframe,
							})
						}
					}
				}
			}
			for _, prim := range m.actuators {
				for _, rotor := range m.rotors {
					if rotor >= frame.Rotors() {
						return nil, fmt.Errorf("spec: actuator rotor %d does not exist on %s (%d rotors)",
							rotor, frame, frame.Rotors())
					}
					for _, dur := range m.durations {
						for _, start := range m.starts {
							inj := &faultinject.Injection{
								Primitive: prim,
								Target:    faultinject.TargetRotor,
								Rotor:     rotor,
								Start:     start,
								Duration:  dur,
								// Rotor faults have no per-IMU addressing.
								Scope: faultinject.ScopeAllUnits,
								Seed:  s.Seeds.actuatorSeed(base, ms.ID, prim, rotor, dur, start),
							}
							if prim == faultinject.LossOfEffectiveness {
								inj.Factor = m.loe
							}
							cases = append(cases, core.Case{
								ID:        actuatorCaseID(ms.ID, rotor, prim, dur, start) + suffix,
								MissionID: ms.ID,
								Injection: inj,
								Seed:      envSeed,
								Airframe:  airframe,
							})
						}
					}
				}
			}
		}
	}
	cases = ApplySelectors(cases, s.Select)
	if err := checkUniqueIDs(cases); err != nil {
		return nil, err
	}
	return cases, nil
}

// selectMissions resolves the spec's mission IDs against the scenario,
// preserving scenario order; empty means every mission.
func selectMissions(scenario []mission.Mission, ids []int) ([]mission.Mission, error) {
	if len(ids) == 0 {
		return scenario, nil
	}
	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make([]mission.Mission, 0, len(ids))
	for _, m := range scenario {
		if want[m.ID] {
			out = append(out, m)
			delete(want, m.ID)
		}
	}
	if len(want) > 0 {
		// Report every missing ID, sorted: ranging the map directly would
		// name an arbitrary one, making the error (and any test or log
		// matching on it) differ from run to run.
		missing := make([]int, 0, len(want))
		for id := range want {
			missing = append(missing, id)
		}
		sort.Ints(missing)
		parts := make([]string, len(missing))
		for i, id := range missing {
			parts[i] = strconv.Itoa(id)
		}
		return nil, fmt.Errorf("spec: mission(s) %s not in scenario", strings.Join(parts, ", "))
	}
	return out, nil
}

// parseAirframes resolves the spec's airframe axis; empty means quad-x.
func parseAirframes(names []string) ([]physics.Airframe, error) {
	if len(names) == 0 {
		return []physics.Airframe{physics.QuadX}, nil
	}
	out := make([]physics.Airframe, 0, len(names))
	for _, s := range names {
		f, err := physics.ParseAirframe(s)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		out = append(out, f)
	}
	return out, nil
}

// caseID builds the stable case identifier. At the paper's canonical
// start the format is the legacy one ("m04-gyro-freeze-10s"); other
// starts append "-tNNs" so grid specs stay collision-free.
func caseID(missionID int, target faultinject.Target, prim faultinject.Primitive, dur, start time.Duration) string {
	id := fmt.Sprintf("m%02d-%s-%s-%ss", missionID,
		core.Slug(target.String()), core.Slug(prim.String()), formatSec(dur.Seconds()))
	if start != PaperStartSec*time.Second {
		id += "-t" + formatSec(start.Seconds()) + "s"
	}
	return id
}

// actuatorCaseID names an actuator case by rotor and primitive
// ("m04-r0-loe-10s"); off-canonical starts get the same "-tNNs" suffix
// as sensor cases.
func actuatorCaseID(missionID, rotor int, prim faultinject.Primitive, dur, start time.Duration) string {
	id := fmt.Sprintf("m%02d-r%d-%s-%ss", missionID,
		rotor, core.Slug(prim.String()), formatSec(dur.Seconds()))
	if start != PaperStartSec*time.Second {
		id += "-t" + formatSec(start.Seconds()) + "s"
	}
	return id
}

// formatSec renders seconds compactly and uniquely: integers without a
// decimal point (matching the legacy "%d" IDs), fractions as shortest
// round-trip decimals.
func formatSec(v float64) string {
	//lint:allow floatcmp exact integrality test on a spec-authored literal, not a computed value
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func secToDuration(v float64) time.Duration {
	return time.Duration(v * float64(time.Second))
}

func checkUniqueIDs(cases []core.Case) error {
	seen := make(map[string]bool, len(cases))
	for _, c := range cases {
		if seen[c.ID] {
			return fmt.Errorf("spec: duplicate case ID %q (matrix axes collide)", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}

// envSeed derives one mission's shared environment seed: every case of a
// mission uses the same env seed so the runner can fork a shared
// pre-injection prefix (checkpoint-and-fork).
func (p SeedPolicy) envSeed(base int64, missionID int) int64 {
	if p.Kind == "affine" {
		return base + int64(missionID)*p.EnvStride
	}
	return core.CaseSeed(base, missionID, 0, 0, 0)
}

// injSeed derives one case's injection seed. The mixed policy reproduces
// the legacy plan exactly at the paper's grid (integer durations,
// T+90 s start) and folds the float bits of off-grid durations/starts
// into the mix so every grid cell keeps an independent fault stream.
func (p SeedPolicy) injSeed(base int64, missionID int, target faultinject.Target, prim faultinject.Primitive, dur, start time.Duration) int64 {
	if p.Kind == "affine" {
		return base + int64(missionID)*p.InjStride + p.InjOffset
	}
	durSec := dur.Seconds()
	seed := core.CaseSeed(base+1, missionID, int(target), int(prim), int(durSec))
	//lint:allow floatcmp exact integrality test gates seed folding; must be bit-stable, not approximate
	if durSec != math.Trunc(durSec) {
		seed = foldSeed(seed, math.Float64bits(durSec))
	}
	if start != PaperStartSec*time.Second {
		seed = foldSeed(seed, math.Float64bits(start.Seconds()))
	}
	return seed
}

// actuatorSeed derives an actuator case's injection seed the same way
// injSeed does (TargetRotor stands in for the sensor target), folding a
// nonzero rotor index so every rotor keeps an independent fault stream.
func (p SeedPolicy) actuatorSeed(base int64, missionID int, prim faultinject.Primitive, rotor int, dur, start time.Duration) int64 {
	seed := p.injSeed(base, missionID, faultinject.TargetRotor, prim, dur, start)
	if rotor != 0 {
		seed = foldSeed(seed, uint64(rotor))
	}
	return seed
}

// foldSeed mixes extra entropy into a seed (splitmix64 finalizer),
// keeping the result positive like core.CaseSeed.
func foldSeed(seed int64, bits uint64) int64 {
	x := uint64(seed) ^ bits*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x >> 1)
}
