package spec

import (
	"fmt"
	"path"
	"strconv"
	"strings"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/physics"
)

// Selector keeps a subset of compiled cases. Every set field must match
// (AND within a selector); a spec's Select list keeps a case when any
// selector matches (OR across selectors). Injection fields (target,
// primitive, duration, start) never match gold cases.
type Selector struct {
	// ID matches the case identifier, exactly or as a glob
	// (path.Match syntax: "m04-*", "*freeze*").
	ID string `json:"id,omitempty"`
	// Mission matches the mission ID (0 = any).
	Mission int `json:"mission,omitempty"`
	// Target and Primitive are parsed like matrix axes.
	Target    string `json:"target,omitempty"`
	Primitive string `json:"primitive,omitempty"`
	// DurationSec and StartSec match the injection window (0 = any).
	DurationSec float64 `json:"duration_sec,omitempty"`
	StartSec    float64 `json:"start_sec,omitempty"`
	// Gold, when set, keeps only gold (true) or only faulty (false)
	// cases.
	Gold *bool `json:"gold,omitempty"`
	// Airframe matches the case's rotor layout ("quad", "hexa-x", ...);
	// an empty Case.Airframe counts as quad-x.
	Airframe string `json:"airframe,omitempty"`
}

// Validate rejects unparseable field values and malformed globs.
func (s Selector) Validate() error {
	if s.ID != "" {
		if _, err := path.Match(s.ID, "probe"); err != nil {
			return fmt.Errorf("bad id pattern %q: %w", s.ID, err)
		}
	}
	if s.Target != "" {
		if _, err := faultinject.ParseTarget(s.Target); err != nil {
			return err
		}
	}
	if s.Primitive != "" {
		if _, err := faultinject.ParsePrimitive(s.Primitive); err != nil {
			return err
		}
	}
	if s.Airframe != "" {
		if _, err := physics.ParseAirframe(s.Airframe); err != nil {
			return err
		}
	}
	if s.DurationSec < 0 {
		return fmt.Errorf("negative duration %v", s.DurationSec)
	}
	if s.StartSec < 0 {
		return fmt.Errorf("negative start %v", s.StartSec)
	}
	if s == (Selector{}) {
		return fmt.Errorf("empty selector matches nothing")
	}
	return nil
}

// Matches reports whether the case satisfies every set field.
func (s Selector) Matches(c core.Case) bool {
	if s.ID != "" {
		if ok, _ := path.Match(s.ID, c.ID); !ok && s.ID != c.ID {
			return false
		}
	}
	if s.Mission != 0 && c.MissionID != s.Mission {
		return false
	}
	if s.Gold != nil && *s.Gold != (c.Injection == nil) {
		return false
	}
	if s.Airframe != "" {
		want, err := physics.ParseAirframe(s.Airframe)
		if err != nil {
			return false
		}
		have := physics.QuadX
		if c.Airframe != "" {
			if have, err = physics.ParseAirframe(c.Airframe); err != nil {
				return false
			}
		}
		if have != want {
			return false
		}
	}
	//lint:allow floatcmp zero-value detection of an unset selector field, never a computed value
	injectionFieldSet := s.Target != "" || s.Primitive != "" || s.DurationSec != 0 || s.StartSec != 0
	if c.Injection == nil {
		return !injectionFieldSet
	}
	if s.Target != "" {
		t, err := faultinject.ParseTarget(s.Target)
		if err != nil || c.Injection.Target != t {
			return false
		}
	}
	if s.Primitive != "" {
		p, err := faultinject.ParsePrimitive(s.Primitive)
		if err != nil || c.Injection.Primitive != p {
			return false
		}
	}
	//lint:allow floatcmp zero-value detection of an unset selector field, never a computed value
	if s.DurationSec != 0 && c.Injection.Duration != secToDuration(s.DurationSec) {
		return false
	}
	//lint:allow floatcmp zero-value detection of an unset selector field, never a computed value
	if s.StartSec != 0 && c.Injection.Start != secToDuration(s.StartSec) {
		return false
	}
	return true
}

// ApplySelectors keeps the cases matched by any selector, preserving
// order. An empty selector list keeps everything.
func ApplySelectors(cases []core.Case, sels []Selector) []core.Case {
	if len(sels) == 0 {
		return cases
	}
	out := make([]core.Case, 0, len(cases))
	for _, c := range cases {
		for _, s := range sels {
			if s.Matches(c) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// ParseSelector parses the CLI selector syntax: comma-separated
// key=value terms, ANDed. Keys: id (exact or glob), mission, target,
// primitive, duration (e.g. "10s" or "10"), start, gold (true/false).
// A bare term with no '=' is shorthand for id=<term>.
func ParseSelector(expr string) (Selector, error) {
	var s Selector
	for _, term := range strings.Split(expr, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, value, found := strings.Cut(term, "=")
		if !found {
			s.ID = term
			continue
		}
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		switch key {
		case "id":
			s.ID = value
		case "mission", "m":
			id, err := strconv.Atoi(strings.TrimPrefix(value, "m"))
			if err != nil {
				return s, fmt.Errorf("spec: bad mission %q: %w", value, err)
			}
			s.Mission = id
		case "target":
			s.Target = value
		case "primitive", "prim":
			s.Primitive = value
		case "duration", "dur":
			v, err := parseSeconds(value)
			if err != nil {
				return s, fmt.Errorf("spec: bad duration %q: %w", value, err)
			}
			s.DurationSec = v
		case "start":
			v, err := parseSeconds(value)
			if err != nil {
				return s, fmt.Errorf("spec: bad start %q: %w", value, err)
			}
			s.StartSec = v
		case "gold":
			b, err := strconv.ParseBool(value)
			if err != nil {
				return s, fmt.Errorf("spec: bad gold %q: %w", value, err)
			}
			s.Gold = &b
		case "airframe", "frame":
			s.Airframe = value
		default:
			return s, fmt.Errorf("spec: unknown selector key %q (want id, mission, target, primitive, duration, start, gold, airframe)", key)
		}
	}
	if err := s.Validate(); err != nil {
		return s, fmt.Errorf("spec: %w", err)
	}
	return s, nil
}

// SubstringSelector converts the deprecated -subset substring syntax to
// an equivalent glob selector.
func SubstringSelector(substr string) Selector {
	return Selector{ID: "*" + substr + "*"}
}

// parseSeconds accepts either a bare number of seconds ("10", "2.5") or
// a Go duration ("10s", "1m30s").
func parseSeconds(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return d.Seconds(), nil
}
