package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"uavres/internal/core"
	"uavres/internal/faultinject"
	"uavres/internal/mission"
	"uavres/internal/sim"
)

// TestPaperSpecGolden: the built-in paper spec must compile to exactly
// the cases the legacy core.Plan produced — same count, same order, same
// IDs, same environment and injection seeds — for several base seeds.
// This is the contract that lets every spec consumer (campaign, resume,
// bench) replace Plan without changing a single verdict.
func TestPaperSpecGolden(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 1 << 40} {
		want := core.Plan(mission.Valencia(), seed)
		got, err := Paper(seed).Compile(mission.Valencia())
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: compiled %d cases, Plan makes %d", seed, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("seed %d: case %d differs:\n spec %+v\n plan %+v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestPaperSpecCount(t *testing.T) {
	cases, err := Paper(1).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 850 {
		t.Fatalf("paper spec compiled to %d cases, want 850", len(cases))
	}
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	for name, s := range map[string]CampaignSpec{
		"version":   {Version: 2},
		"target":    {Version: 1, Matrix: Matrix{Targets: []string{"wing"}}},
		"primitive": {Version: 1, Matrix: Matrix{Primitives: []string{"explode"}}},
		"duration":  {Version: 1, Matrix: Matrix{DurationsSec: []float64{-1}}},
		"start":     {Version: 1, Matrix: Matrix{StartsSec: []float64{-5}}},
		"scope":     {Version: 1, Matrix: Matrix{Scope: "tertiary"}},
		"seeds":     {Version: 1, Seeds: SeedPolicy{Kind: "fibonacci"}},
		"mission":   {Version: 1, Missions: []int{99}},
		"decim":     {Version: 1, Overrides: Overrides{CovDecimation: intp(0)}},
	} {
		if _, err := s.Compile(mission.Valencia()); err == nil {
			t.Errorf("%s: bad spec compiled without error", name)
		}
	}
}

func intp(v int) *int         { return &v }
func boolp(v bool) *bool      { return &v }
func f64p(v float64) *float64 { return &v }
func strp(v string) *string   { return &v }

func TestCompileMissionSubsetAndGoldOff(t *testing.T) {
	s := Paper(1)
	s.Missions = []int{4, 7}
	s.Gold = boolp(false)
	cases, err := s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2*84 {
		t.Fatalf("compiled %d cases, want 168", len(cases))
	}
	for _, c := range cases {
		if c.MissionID != 4 && c.MissionID != 7 {
			t.Fatalf("unexpected mission %d", c.MissionID)
		}
		if c.Injection == nil {
			t.Fatalf("gold case %s compiled with gold=false", c.ID)
		}
	}
}

// TestCompileGridIDsAndSeeds: off-paper starts gain an ID suffix and an
// independent injection seed; fractional durations stay unique too.
func TestCompileGridIDsAndSeeds(t *testing.T) {
	s := CampaignSpec{
		Version: 1,
		Gold:    boolp(false),
		Matrix: Matrix{
			Targets:      []string{"gyro"},
			Primitives:   []string{"freeze"},
			DurationsSec: []float64{10},
			StartsSec:    []float64{30, 90, 120},
		},
		Missions: []int{1},
	}
	cases, err := s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("compiled %d cases, want 3", len(cases))
	}
	wantIDs := []string{"m01-gyro-freeze-10s-t30s", "m01-gyro-freeze-10s", "m01-gyro-freeze-10s-t120s"}
	seeds := map[int64]bool{}
	for i, c := range cases {
		if c.ID != wantIDs[i] {
			t.Errorf("case %d ID = %q, want %q", i, c.ID, wantIDs[i])
		}
		if seeds[c.Injection.Seed] {
			t.Errorf("injection seed %d reused across starts", c.Injection.Seed)
		}
		seeds[c.Injection.Seed] = true
	}
	// The T+90 case must keep the legacy seed (resume compatibility).
	legacy := core.CaseSeed(2, 1, int(faultinject.TargetGyro), int(faultinject.Freeze), 10)
	if cases[1].Injection.Seed != legacy {
		t.Errorf("paper-start seed %d != legacy %d", cases[1].Injection.Seed, legacy)
	}

	s.Matrix.StartsSec = []float64{90}
	s.Matrix.DurationsSec = []float64{0.5, 2.5}
	cases, err = s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cases[0].ID != "m01-gyro-freeze-0.5s" || cases[1].ID != "m01-gyro-freeze-2.5s" {
		t.Errorf("fractional-duration IDs = %q, %q", cases[0].ID, cases[1].ID)
	}
	if cases[0].Injection.Seed == cases[1].Injection.Seed {
		t.Error("fractional durations share an injection seed")
	}
}

func TestAffineSeedPolicyMatchesLegacySweep(t *testing.T) {
	s := CampaignSpec{
		Version: 1,
		Seed:    3,
		Gold:    boolp(false),
		Matrix: Matrix{
			Targets:      []string{"gyro"},
			Primitives:   []string{"min"},
			DurationsSec: []float64{5},
			StartsSec:    []float64{20},
		},
		Seeds: SeedPolicy{Kind: "affine", EnvStride: 1009, InjStride: 31, InjOffset: 7},
	}
	cases, err := s.Compile(mission.Valencia())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		// The historical sweep formulas, verbatim.
		if want := int64(3) + int64(c.MissionID)*1009; c.Seed != want {
			t.Errorf("%s: env seed %d, want %d", c.ID, c.Seed, want)
		}
		if want := int64(3) + int64(c.MissionID)*31 + 7; c.Injection.Seed != want {
			t.Errorf("%s: inj seed %d, want %d", c.ID, c.Injection.Seed, want)
		}
	}
}

func TestScopeCompiles(t *testing.T) {
	s := Paper(1)
	s.Matrix.Scope = "primary"
	cases, err := s.Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Injection != nil && c.Injection.Scope != faultinject.ScopePrimaryUnit {
			t.Fatalf("%s: scope %v, want primary-unit", c.ID, c.Injection.Scope)
		}
	}
}

func TestOverridesApply(t *testing.T) {
	cfg := sim.DefaultConfig()
	o := Overrides{
		GyroThresholdDegS: f64p(120),
		RiskR:             f64p(2.5),
		CovDecimation:     intp(1),
		CovSettleSec:      f64p(3),
		RedundancyVoting:  boolp(false),
		RNGPolicy:         strp("ziggurat"),
	}
	o.Apply(&cfg)
	if cfg.RiskR != 2.5 || cfg.EKF.CovarianceDecimation != 1 || cfg.CovSettleSec != 3 || cfg.RedundancyVoting {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if cfg.RNGPolicy != "ziggurat" {
		t.Errorf("rng policy override not applied: %q", cfg.RNGPolicy)
	}
	def := sim.DefaultConfig()
	if cfg.Failsafe.GyroRateThreshold <= def.Failsafe.GyroRateThreshold {
		t.Error("gyro threshold override not applied")
	}
	// A zero Overrides must leave the config untouched.
	clean := sim.DefaultConfig()
	Overrides{}.Apply(&clean)
	if !reflect.DeepEqual(clean, def) {
		t.Error("zero overrides mutated the config")
	}
}

// TestRNGPolicyValidated: an unknown sampler name must fail spec
// validation loudly, and the valid names must pass.
func TestRNGPolicyValidated(t *testing.T) {
	s := Paper(1)
	s.Overrides.RNGPolicy = strp("box-muller")
	if _, err := s.Compile(nil); err == nil {
		t.Fatal("unknown rng policy accepted")
	}
	for _, name := range []string{"polar", "ziggurat"} {
		s.Overrides.RNGPolicy = strp(name)
		if _, err := s.Compile(nil); err != nil {
			t.Fatalf("%s rejected: %v", name, err)
		}
	}
}

func TestParseRoundTripAndUnknownFields(t *testing.T) {
	s := Paper(7)
	s.Matrix.Scope = "primary"
	s.Overrides.RiskR = f64p(2)
	s.Select = []Selector{{Mission: 4}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round trip changed the spec:\n in  %+v\n out %+v", s, back)
	}
	if _, err := Parse([]byte(`{"version":1,"missoins":[1]}`)); err == nil {
		t.Error("typoed field accepted silently")
	}
	if !strings.Contains(string(data), `"version":1`) {
		t.Errorf("serialized spec missing version: %s", data)
	}
}

func TestSelectors(t *testing.T) {
	cases, err := Paper(1).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	count := func(sels ...Selector) int { return len(ApplySelectors(cases, sels)) }

	if n := count(Selector{ID: "m04-gyro-freeze-10s"}); n != 1 {
		t.Errorf("exact ID matched %d cases", n)
	}
	if n := count(Selector{ID: "m04-*"}); n != 85 {
		t.Errorf("glob m04-* matched %d cases, want 85", n)
	}
	if n := count(Selector{Mission: 4}); n != 85 {
		t.Errorf("mission=4 matched %d cases, want 85", n)
	}
	if n := count(Selector{Target: "gyro"}); n != 280 {
		t.Errorf("target=gyro matched %d cases, want 280", n)
	}
	if n := count(Selector{Primitive: "freeze"}); n != 120 {
		t.Errorf("primitive=freeze matched %d cases, want 120", n)
	}
	if n := count(Selector{DurationSec: 10}); n != 210 {
		t.Errorf("duration=10 matched %d cases, want 210", n)
	}
	if n := count(Selector{Gold: boolp(true)}); n != 10 {
		t.Errorf("gold=true matched %d cases, want 10", n)
	}
	if n := count(Selector{Mission: 4, Target: "gyro", Primitive: "freeze", DurationSec: 10}); n != 1 {
		t.Errorf("field AND matched %d cases, want 1", n)
	}
	// OR across selectors.
	if n := count(Selector{Mission: 4}, Selector{Mission: 7}); n != 170 {
		t.Errorf("mission 4 OR 7 matched %d cases, want 170", n)
	}
	// Injection fields never match gold runs.
	for _, c := range ApplySelectors(cases, []Selector{{Target: "gyro"}}) {
		if c.Injection == nil {
			t.Fatal("target selector matched a gold case")
		}
	}
}

func TestParseSelector(t *testing.T) {
	s, err := ParseSelector("mission=4,target=gyro,primitive=freeze,duration=10s")
	if err != nil {
		t.Fatal(err)
	}
	want := Selector{Mission: 4, Target: "gyro", Primitive: "freeze", DurationSec: 10}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("parsed %+v, want %+v", s, want)
	}
	if s, err = ParseSelector("m04-*"); err != nil || s.ID != "m04-*" {
		t.Errorf("bare glob: %+v, %v", s, err)
	}
	if s, err = ParseSelector("gold=true"); err != nil || s.Gold == nil || !*s.Gold {
		t.Errorf("gold: %+v, %v", s, err)
	}
	if s, err = ParseSelector("duration=2.5"); err != nil || s.DurationSec != 2.5 {
		t.Errorf("bare seconds: %+v, %v", s, err)
	}
	for _, bad := range []string{"planet=mars", "mission=abc", "duration=-1", "gold=maybe", ""} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) accepted", bad)
		}
	}
}

func TestSubstringSelectorMatchesLegacySubset(t *testing.T) {
	cases, err := Paper(1).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, substr := range []string{"m04", "gyro", "freeze-10s"} {
		sel := SubstringSelector(substr)
		var want int
		for _, c := range cases {
			if strings.Contains(c.ID, substr) {
				want++
			}
		}
		if got := len(ApplySelectors(cases, []Selector{sel})); got != want {
			t.Errorf("subset %q: selector matched %d, substring matches %d", substr, got, want)
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	cases, err := Paper(1).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	c := cases[1]
	h1 := Fingerprint(c, cfg)
	h2 := Fingerprint(c, cfg)
	if h1 == "" || h1 != h2 {
		t.Fatalf("fingerprint unstable: %q vs %q", h1, h2)
	}
	// The case's own Hash field must not feed back into the digest.
	c.Hash = "something"
	if Fingerprint(c, cfg) != h1 {
		t.Error("hash field fed back into the fingerprint")
	}
	// Any config or experiment change must change the hash.
	cfg2 := cfg
	cfg2.Failsafe.GyroRateThreshold *= 2
	if Fingerprint(c, cfg2) == h1 {
		t.Error("config change kept the fingerprint")
	}
	c2 := c
	c2.Injection = nil
	if Fingerprint(c2, cfg) == h1 {
		t.Error("injection change kept the fingerprint")
	}
	c3 := c
	c3.Seed++
	if Fingerprint(c3, cfg) == h1 {
		t.Error("seed change kept the fingerprint")
	}
}

func TestAttachFingerprints(t *testing.T) {
	cases, err := Paper(1).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	AttachFingerprints(cases, sim.DefaultConfig())
	seen := map[string]bool{}
	for _, c := range cases {
		if c.Hash == "" {
			t.Fatalf("%s: empty fingerprint", c.ID)
		}
		if seen[c.Hash] {
			t.Fatalf("%s: fingerprint collision", c.ID)
		}
		seen[c.Hash] = true
	}
}

func TestSpecHashDistinguishesSpecs(t *testing.T) {
	a, b := Paper(1), Paper(2)
	if a.Hash() == "" || a.Hash() != Paper(1).Hash() {
		t.Error("spec hash unstable")
	}
	if a.Hash() == b.Hash() {
		t.Error("different seeds share a spec hash")
	}
	if !strings.Contains(a.String(), "paper-850") {
		t.Errorf("String() = %q", a.String())
	}
}

func TestCompileDuplicateIDRejected(t *testing.T) {
	s := CampaignSpec{
		Version:  1,
		Gold:     boolp(false),
		Missions: []int{1},
		Matrix: Matrix{
			Targets:      []string{"gyro", "gyrometer"}, // same target twice
			Primitives:   []string{"freeze"},
			DurationsSec: []float64{10},
		},
	}
	if _, err := s.Compile(nil); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate matrix axes compiled: %v", err)
	}
}

func TestCompileSharesEnvSeedPerMission(t *testing.T) {
	// Checkpoint-and-fork depends on every case of a mission sharing one
	// env seed and start; the compiler must preserve that invariant.
	cases, err := Paper(5).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	perMission := map[int]int64{}
	for _, c := range cases {
		if s, ok := perMission[c.MissionID]; ok {
			if c.Seed != s {
				t.Fatalf("%s: env seed %d, mission uses %d", c.ID, c.Seed, s)
			}
		} else {
			perMission[c.MissionID] = c.Seed
		}
		if c.Injection != nil && c.Injection.Start != 90*time.Second {
			t.Fatalf("%s: start %v", c.ID, c.Injection.Start)
		}
	}
}

// TestExampleSpecsCompile: the shipped example specs stay loadable, and
// the paper-850 example is byte-identical to the built-in plan.
func TestExampleSpecsCompile(t *testing.T) {
	paper, err := Load("../../examples/specs/paper-850.json")
	if err != nil {
		t.Fatal(err)
	}
	got, err := paper.Compile(mission.Valencia())
	if err != nil {
		t.Fatal(err)
	}
	want := core.Plan(mission.Valencia(), paper.Seed)
	if !reflect.DeepEqual(got, want) {
		t.Error("examples/specs/paper-850.json no longer reproduces core.Plan")
	}

	abl, err := Load("../../examples/specs/redundancy-ablation.json")
	if err != nil {
		t.Fatal(err)
	}
	cases, err := abl.Compile(mission.Valencia())
	if err != nil {
		t.Fatal(err)
	}
	// 3 selected missions x 2 targets x 3 primitives x 2 durations x 3
	// starts, no gold runs.
	if len(cases) != 3*2*3*2*3 {
		t.Errorf("ablation spec compiled %d cases, want %d", len(cases), 3*2*3*2*3)
	}
	for _, c := range cases {
		if c.Injection == nil || c.Injection.Scope != faultinject.ScopePrimaryUnit {
			t.Fatalf("case %s is not primary-unit scoped", c.ID)
		}
	}
}

// TestCompileMissingMissionsDeterministic: the missing-mission error
// must name every absent ID in sorted order, not an arbitrary one drawn
// from map iteration — resumable campaigns and CI logs match on it.
func TestCompileMissingMissionsDeterministic(t *testing.T) {
	s := Paper(1)
	s.Missions = []int{4, 99, 7, 98, 42}
	want := "spec: mission(s) 42, 98, 99 not in scenario"
	for i := 0; i < 50; i++ {
		_, err := s.Compile(nil)
		if err == nil {
			t.Fatal("compile succeeded with missing missions")
		}
		if err.Error() != want {
			t.Fatalf("iteration %d: error %q, want %q", i, err, want)
		}
	}
}
