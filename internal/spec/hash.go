package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"uavres/internal/core"
	"uavres/internal/sim"
)

// fingerprintPayload is everything that invalidates a cached case
// result: the schema version, the experiment description (ID, mission,
// seeds, the full injection), and the complete effective simulation
// config. Changing any knob — physics step, sensor spec, failsafe
// threshold, decimation factor — changes the hash, so resume re-runs
// the case rather than reusing a result computed under different code
// assumptions. JSON struct encoding is deterministic (fields in
// declaration order), which makes the digest stable across runs and
// platforms.
type fingerprintPayload struct {
	Version int        `json:"version"`
	Case    core.Case  `json:"case"`
	Config  sim.Config `json:"config"`
}

// Fingerprint digests one case plus the effective simulation config
// into the stable content hash recorded in campaign_results.json and
// compared by core.PlanResume. The case's own Hash field is excluded
// (it is the output, not an input).
func Fingerprint(c core.Case, cfg sim.Config) string {
	c.Hash = ""
	payload, err := json.Marshal(fingerprintPayload{Version: Version, Case: c, Config: cfg})
	if err != nil {
		// sim.Config and core.Case are plain data; Marshal cannot fail
		// on them. Guard anyway: a hashless case is never reused.
		return ""
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:8])
}

// AttachFingerprints stamps every case with its content hash under the
// given effective config. Call it after all override sources (spec and
// CLI flags) have been applied to the config the runner will use.
func AttachFingerprints(cases []core.Case, cfg sim.Config) {
	for i := range cases {
		cases[i].Hash = Fingerprint(cases[i], cfg)
	}
}

// Hash digests the canonical JSON encoding of the whole spec — the
// experiment-design identity recorded in bench metadata so a perf
// report names exactly which plan it measured.
func (s CampaignSpec) Hash() string {
	payload, err := json.Marshal(s)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:8])
}

// String names the spec for logs: "paper-850 (spec a1b2c3d4e5f60708)".
func (s CampaignSpec) String() string {
	name := s.Name
	if name == "" {
		name = "unnamed"
	}
	return fmt.Sprintf("%s (spec %s)", name, s.Hash())
}
