#!/usr/bin/env sh
# Performance report: micro-benchmarks (go test -bench=Micro -benchmem)
# plus the cold-vs-checkpointed campaign timing, emitted as
# BENCH_<date>.json by cmd/bench. Pass -missions 10 for the paper's full
# 850-case campaign (the default slice is 2 missions / 170 cases).
set -eu

go test -run XXX -bench Micro -benchmem .
go test -run XXX -bench Propagate -benchmem ./internal/ekf/
exec go run ./cmd/bench "$@"
